package nxzip

// batch.go is the public face of batched small-request submission. The
// per-request overhead of the queued path — paste, credit, FIFO slot,
// drain round, dispatch pick — is fixed, so at few-KiB payloads it
// dominates the engine's actual work (the paper's latency-vs-size curves
// show the wall). CompressBatch amortizes it: requests are grouped by
// the device the dispatch policy picks, each device's group rides ONE
// switchboard envelope (one paste, one credit, one FIFO round), and the
// groups run concurrently across the node. Experiment E21 measures the
// crossover against the per-request path and software.

import (
	"errors"
	"fmt"
	"time"

	"nxzip/internal/admission"
	"nxzip/internal/nx"
	"nxzip/internal/telemetry"
)

// BatchRequest is one request of a CompressBatch call.
type BatchRequest struct {
	// Src is the payload to compress.
	Src []byte
	// Deadline, when non-zero, bounds this request's wall-clock,
	// including admission queueing, paste backoff and the software
	// fallback: once it passes, the request fails with
	// nx.ErrDeadlineExceeded at the next checkpoint instead of consuming
	// further capacity. That budget belongs to the caller, so expiry
	// surfaces directly — it is never absorbed by the fallback.
	Deadline time.Time
	// Cancel, when non-nil, abandons the request when the channel
	// closes, checked at the same points as Deadline (failing with
	// nx.ErrCanceled).
	Cancel <-chan struct{}
	// Dst, when non-nil, is a caller-owned output backing with the
	// append semantics of CompressGzipInto; Out may alias it.
	Dst []byte
	// Out receives the gzip frame.
	Out []byte
	// Metrics receives the request accounting. The first request of each
	// device's group additionally carries the group-level paste
	// accounting (PasteRejects/BackoffWaits/BackoffTime) — there is one
	// paste per device per dispatch wave, not one per request. (Without
	// admission a batch is a single wave; with admission enabled a batch
	// larger than the gate's in-flight ceiling dispatches in waves of at
	// most that many requests.)
	Metrics Metrics
	// Err reports a terminal per-request failure. Requests whose device
	// flaked mid-batch are transparently completed by the software
	// fallback with Metrics.Degraded set, so Err is non-nil only when
	// the input itself is at fault (or the fallback failed too), the
	// Deadline/Cancel gate tripped, or the admission gate shed the
	// request under overload (admission.ErrOverloaded).
	Err error
	// Device is the node-local index of the device that served this
	// request, -1 when the software fallback completed it. E21 uses it to
	// reconstruct each device's share of the batch timeline.
	Device int

	// req is the root-minted RequestID, stamped on the entry's CRB so the
	// request's span and digest correlate; devAttempt records whether a
	// device ran (and failed) the request before the software fallback.
	req        uint64
	devAttempt bool
}

// CompressBatch compresses every request into a gzip frame using the
// configured table mode, amortizing submission overhead: one paste and
// one FIFO round per device per batch instead of one per request.
// Results and per-request errors land on the requests themselves. Nil
// requests are skipped. Like the one-shot paths, device-local failures
// degrade to the software encoder rather than failing the batch.
func (a *Accelerator) CompressBatch(reqs []*BatchRequest) {
	if len(reqs) == 0 {
		return
	}
	rec := a.recorder()
	start := time.Now()
	n := a.nctx.Size()
	groups := make([][]nx.BatchEntry, n)
	owners := make([][]*BatchRequest, n)
	spans := make([][][2]uint64, n)
	var soft []*BatchRequest
	// Admission tickets are held per dispatch wave, not for the whole
	// batch: a batch larger than the gate's in-flight ceiling would
	// otherwise saturate the gate with its own earlier tickets and park
	// later requests behind slots nothing can free until the batch ends.
	// Requests admit with NoWait; when the gate reports full, the wave
	// accumulated so far is dispatched and its tickets released before
	// admission continues. Release is idempotent and nil-safe.
	var tickets []*admission.Ticket
	defer func() { // safety net; flush releases on the normal path
		for _, t := range tickets {
			t.Release()
		}
	}()
	// expired fails r in place when its Deadline/Cancel gate has tripped.
	expired := func(r *BatchRequest, attempts int, device string) bool {
		if r.Cancel != nil {
			select {
			case <-r.Cancel:
				r.Err = fmt.Errorf("nxzip: batch compress: %w", nx.ErrCanceled)
			default:
			}
		}
		if r.Err == nil && !r.Deadline.IsZero() && time.Now().After(r.Deadline) {
			r.Err = fmt.Errorf("nxzip: batch compress: %w", nx.ErrDeadlineExceeded)
		}
		if r.Err == nil {
			return false
		}
		a.completeDigest(rec, r.req, "batch-compress", "deflate", device, &r.Metrics, start, attempts, telemetry.OutcomeError)
		if rec != nil {
			r.Err = reqError(r.req, r.Err)
		}
		return true
	}
	// flush dispatches the accumulated wave — one envelope per device
	// with queued entries — settles its results (failing requests over to
	// soft where eligible), then releases the wave's tickets so the next
	// wave or concurrent traffic can take the slots.
	flush := func() {
		waved := false
		for i := range groups {
			if len(groups[i]) > 0 {
				waved = true
				break
			}
		}
		if waved {
			errs := a.nctx.SubmitBatch(groups)
			for i := range groups {
				if len(groups[i]) == 0 {
					continue
				}
				ctx := a.nctx.At(i)
				for k := range groups[i] {
					en := &groups[i][k]
					r := owners[i][k]
					ctx.ReleaseVA(spans[i][k][0])
					ctx.ReleaseVA(spans[i][k][1])
					err := errs[i] // device-level failure drops the whole group
					if err == nil {
						err = en.Err
					}
					if err == nil && en.CSB.CC != nx.CCSuccess {
						err = ccFail("batch compress", &en.CSB)
					}
					if err == nil {
						r.Out = en.CSB.Output
						fillMetrics(&r.Metrics, &en.Rep, &en.CSB)
						r.Device = i
						a.completeDigest(rec, r.req, "batch-compress", "deflate", a.node.Label(i), &r.Metrics, start, 1, telemetry.OutcomeOK)
						continue
					}
					if !failoverEligible(err) {
						r.Err = err
						a.completeDigest(rec, r.req, "batch-compress", "deflate", a.node.Label(i), &r.Metrics, start, 1, telemetry.OutcomeError)
						if rec != nil {
							r.Err = reqError(r.req, r.Err)
						}
						continue
					}
					r.devAttempt = true
					soft = append(soft, r)
				}
			}
		}
		for _, t := range tickets {
			t.Release()
		}
		tickets = tickets[:0]
		for i := range groups {
			groups[i] = groups[i][:0]
			owners[i] = owners[i][:0]
			spans[i] = spans[i][:0]
		}
	}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		r.Err = nil
		r.Device = -1
		r.req = nextReq()
		r.devAttempt = false
		if expired(r, 0, "") {
			continue
		}
		// Overload gate, per request: a shed fails the request with
		// ErrOverloaded before any device work; a brownout degrade routes
		// it straight to the software fallback.
		ticket, dec, aerr := a.admitOpNoWait(r.Deadline, r.Cancel)
		if errors.Is(aerr, admission.ErrWouldWait) {
			// The gate is full — possibly with this batch's own wave. Make
			// room by dispatching and releasing what we hold, then present
			// again, this time willing to queue: any further wait is
			// genuine contention with other traffic, not self-inflicted.
			flush()
			ticket, dec, aerr = a.admitOp(r.Deadline, r.Cancel)
		}
		if aerr != nil {
			r.Err = aerr
			a.completeDigest(rec, r.req, "batch-compress", "deflate", "admission", &r.Metrics, start, 0, telemetry.OutcomeShed)
			if rec != nil {
				r.Err = reqError(r.req, r.Err)
			}
			continue
		}
		tickets = append(tickets, ticket)
		if dec == admission.DecisionDegrade {
			soft = append(soft, r)
			continue
		}
		i, perr := a.nctx.PickIndexAvail()
		if perr != nil {
			soft = append(soft, r) // pool unhealthy: straight to software
			continue
		}
		ctx := a.nctx.At(i)
		srcVA, err := ctx.AcquireVA(len(r.Src))
		if err != nil {
			r.Err = err
			a.completeDigest(rec, r.req, "batch-compress", "deflate", a.node.Label(i), &r.Metrics, start, 1, telemetry.OutcomeError)
			continue
		}
		capOut := 2*len(r.Src) + 1024
		dstVA, err := ctx.AcquireVA(capOut)
		if err != nil {
			ctx.ReleaseVA(srcVA)
			r.Err = err
			a.completeDigest(rec, r.req, "batch-compress", "deflate", a.node.Label(i), &r.Metrics, start, 1, telemetry.OutcomeError)
			continue
		}
		en := nx.BatchEntry{CRB: nx.CRB{
			Func: a.funcCode(), Wrap: nx.WrapGzip, Input: r.Src,
			SourceVA: srcVA, TargetVA: dstVA, TargetCap: capOut,
			Target: r.Dst, ReqID: r.req,
			Deadline: r.Deadline, Cancel: r.Cancel,
		}}
		if en.CRB.Func == nx.FCCompressCannedDHT {
			en.CRB.DHT = a.canned
		}
		groups[i] = append(groups[i], en)
		owners[i] = append(owners[i], r)
		spans[i] = append(spans[i], [2]uint64{srcVA, dstVA})
	}
	flush()
	for _, r := range soft {
		attempts := 1
		if r.devAttempt {
			attempts = 2
		}
		if expired(r, attempts, "software") {
			continue
		}
		out, m, err := a.softCompress(r.Src, nx.WrapGzip)
		if err != nil {
			r.Err = err
			a.completeDigest(rec, r.req, "batch-compress", "deflate", "software", &r.Metrics, start, attempts, telemetry.OutcomeError)
			if rec != nil {
				r.Err = reqError(r.req, r.Err)
			}
			continue
		}
		a.met.fallback(nx.Codecs(nx.CodecDeflate))
		r.Out = append(r.Dst[:0], out...)
		r.Metrics = *m
		r.Device = -1
		a.completeDigest(rec, r.req, "batch-compress", "deflate", "software", &r.Metrics, start, attempts, telemetry.OutcomeDegraded)
	}
}
