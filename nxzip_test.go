package nxzip

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"nxzip/internal/corpus"
)

func TestOneShotGzipRoundTrip(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 256<<10, 1)
	gz, m, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio < 2 {
		t.Fatalf("ratio %.2f on text", m.Ratio)
	}
	if m.DeviceTime <= 0 || m.DeviceCycles <= 0 {
		t.Fatal("no device accounting")
	}
	got, m2, err := acc.DecompressGzip(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round-trip mismatch")
	}
	if m2.OutBytes != len(src) {
		t.Fatalf("out bytes %d", m2.OutBytes)
	}
	if m.CRC32 != m2.CRC32 {
		t.Fatal("CRC mismatch between directions")
	}
}

func TestInteropWithStdlibGzip(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.JSONLogs, 128<<10, 2)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib cannot read accelerator output")
	}
	// Reverse: accelerator reads stdlib output.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(src)
	zw.Close()
	got2, _, err := acc.DecompressGzip(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, src) {
		t.Fatal("accelerator cannot read stdlib output")
	}
}

func TestZlibAndRawWrappings(t *testing.T) {
	acc := Open(Z15())
	defer acc.Close()
	src := corpus.Generate(corpus.HTML, 100<<10, 3)
	z, _, err := acc.CompressZlib(src)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := acc.DecompressZlib(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("zlib mismatch")
	}
	raw, _, err := acc.CompressRaw(src)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := acc.DecompressRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, src) {
		t.Fatal("raw mismatch")
	}
}

func TestTableModes(t *testing.T) {
	src := corpus.Generate(corpus.DNA, 128<<10, 4)
	cfgF := P9()
	cfgF.TableMode = TableFixed
	accF := Open(cfgF)
	defer accF.Close()
	accD := Open(P9())
	defer accD.Close()
	outF, _, err := accF.CompressRaw(src)
	if err != nil {
		t.Fatal(err)
	}
	outD, _, err := accD.CompressRaw(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(outD) >= len(outF) {
		t.Fatalf("dynamic (%d) not better than fixed (%d) on DNA", len(outD), len(outF))
	}
}

func Test842API(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Zeros, 64<<10, 5)
	comp, m, err := acc.Compress842(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ratio < 10 {
		t.Fatalf("842 ratio %.1f on zeros", m.Ratio)
	}
	got, _, err := acc.Decompress842(comp, len(src)+64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("842 mismatch")
	}
}

func TestSoftwareBaseline(t *testing.T) {
	src := corpus.Generate(corpus.Text, 64<<10, 6)
	for _, level := range []int{1, 6, 9} {
		gz, err := SoftwareGzip(src, level)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SoftwareGunzip(gz)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("level %d mismatch", level)
		}
	}
}

func TestStreamingWriterReader(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Source, 5<<20, 7) // multiple chunks
	var comp bytes.Buffer
	w := acc.NewWriterChunk(&comp, 1<<20)
	// Write in awkward sizes.
	for off := 0; off < len(src); {
		n := 300000
		if off+n > len(src) {
			n = len(src) - off
		}
		if _, err := w.Write(src[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats.InBytes != len(src) {
		t.Fatalf("writer stats in %d", w.Stats.InBytes)
	}
	if w.Stats.Ratio <= 1 {
		t.Fatalf("ratio %.2f", w.Stats.Ratio)
	}
	// Our Reader.
	r := acc.NewReader(bytes.NewReader(comp.Bytes()))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("reader mismatch")
	}
	// stdlib multistream gzip reader.
	zr, err := gzip.NewReader(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sgot, src) {
		t.Fatal("stdlib multistream mismatch")
	}
	// Software multi-member helper.
	mgot, err := GunzipMulti(comp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mgot, src) {
		t.Fatal("GunzipMulti mismatch")
	}
}

func TestWriterEmptyInput(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	var comp bytes.Buffer
	w := acc.NewWriter(&comp)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := GunzipMulti(comp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d bytes from empty stream", len(got))
	}
}

func TestWriterUseAfterClose(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	var comp bytes.Buffer
	w := acc.NewWriter(&comp)
	w.Write([]byte("x"))
	w.Close()
	if _, err := w.Write([]byte("y")); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestMetricsThroughput(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 4<<20, 8)
	_, m, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	tp := m.Throughput()
	peak := acc.PipelineConfig().PeakCompressRate()
	if tp <= 0 || tp > peak {
		t.Fatalf("throughput %.0f vs peak %.0f", tp, peak)
	}
	if tp < peak/4 {
		t.Fatalf("large-buffer throughput %.0f too far below peak %.0f", tp, peak)
	}
}

func TestCorruptGzipError(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	if _, _, err := acc.DecompressGzip([]byte("not gzip at all, sorry")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDictionaryCompression(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	dict := corpus.Generate(corpus.JSONLogs, 16<<10, 1)
	msg := corpus.Generate(corpus.JSONLogs, 2<<10, 1)[:2048] // same distribution
	withDict, m, err := acc.CompressZlibDict(msg, dict)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeviceCycles <= 0 {
		t.Fatal("no accounting")
	}
	plain, _, err := acc.CompressZlib(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(withDict) >= len(plain) {
		t.Fatalf("dict stream %d not below plain %d", len(withDict), len(plain))
	}
	got, _, err := acc.DecompressZlibDict(withDict, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("mismatch")
	}
	if _, _, err := acc.DecompressZlibDict(withDict, []byte("bad dict")); err == nil {
		t.Fatal("wrong dictionary accepted")
	}
}

func TestTableCannedMode(t *testing.T) {
	cfg := P9()
	cfg.TableMode = TableCanned
	acc := Open(cfg)
	defer acc.Close()
	sample := corpus.Generate(corpus.JSONLogs, 128<<10, 50)
	if err := acc.TrainTable(sample); err != nil {
		t.Fatal(err)
	}
	src := corpus.Generate(corpus.JSONLogs, 64<<10, 51)
	canned, mc, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SoftwareGunzip(canned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("canned mode round-trip mismatch")
	}
	// Canned skips the per-request table-generation latency.
	accD := Open(P9())
	defer accD.Close()
	_, md, err := accD.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	if mc.DeviceCycles >= md.DeviceCycles {
		t.Fatalf("canned %d cycles not below dynamic %d", mc.DeviceCycles, md.DeviceCycles)
	}
	// Without training, canned mode falls back to dynamic.
	accU := Open(cfg)
	defer accU.Close()
	if _, _, err := accU.CompressGzip(src); err != nil {
		t.Fatalf("untrained canned mode: %v", err)
	}
}
