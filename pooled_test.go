package nxzip

import (
	"bytes"
	"testing"

	"nxzip/internal/corpus"
	"nxzip/internal/faultinject"
)

// TestCompressGzipIntoRoundtrip covers the caller-owned-buffer contract:
// append semantics into dst[:0], aliasing when dst is big enough, growth
// when it is not, and a byte-exact roundtrip through both Into paths.
func TestCompressGzipIntoRoundtrip(t *testing.T) {
	acc := Open(Config{Device: P9().Device, TableMode: TableFixed})
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 32<<10, 1)

	// Adequately sized dst: the frame must land in dst's backing.
	dst := make([]byte, 0, 64<<10)
	var m Metrics
	gz, err := acc.CompressGzipInto(dst, src, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) == 0 || &gz[0] != &dst[:1][0] {
		t.Fatal("result does not alias the caller's dst despite sufficient capacity")
	}
	if m.OutBytes != len(gz) || m.InBytes != len(src) {
		t.Fatalf("metrics in=%d out=%d, want %d/%d", m.InBytes, m.OutBytes, len(src), len(gz))
	}
	if m.DeviceCycles <= 0 || m.Degraded {
		t.Fatalf("device accounting missing: cycles=%d degraded=%v", m.DeviceCycles, m.Degraded)
	}
	plain, err := SoftwareGunzip(gz)
	if err != nil || !bytes.Equal(plain, src) {
		t.Fatalf("software gunzip of Into output: %v", err)
	}

	// Undersized dst: append semantics grow the backing transparently.
	small := make([]byte, 0, 16)
	gz2, err := acc.CompressGzipInto(small, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gz2, gz) {
		t.Fatal("grown-dst frame differs from aliased-dst frame")
	}

	// Nil dst is valid: plain append semantics from scratch.
	gz3, err := acc.CompressGzipInto(nil, src, nil)
	if err != nil || !bytes.Equal(gz3, gz) {
		t.Fatalf("nil-dst compress: %v", err)
	}

	// Decompress back through the Into path.
	pdst := make([]byte, 0, len(src)+1024)
	var dm Metrics
	back, err := acc.DecompressGzipInto(pdst, gz, &dm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("DecompressGzipInto roundtrip mismatch")
	}
	if len(back) > 0 && &back[0] != &pdst[:1][0] {
		t.Fatal("decompress result does not alias the caller's dst")
	}
	if dm.OutBytes != len(src) {
		t.Fatalf("decompress metrics out=%d, want %d", dm.OutBytes, len(src))
	}
}

func TestCompressZlibIntoRoundtrip(t *testing.T) {
	acc := Open(Config{Device: P9().Device, TableMode: TableFixed})
	defer acc.Close()
	src := corpus.Generate(corpus.JSONLogs, 16<<10, 2)
	z, err := acc.CompressZlibInto(make([]byte, 0, 32<<10), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := acc.DecompressZlibInto(make([]byte, 0, len(src)+64), z, nil)
	if err != nil || !bytes.Equal(back, src) {
		t.Fatalf("zlib Into roundtrip: %v", err)
	}
}

// TestIntoPathAllocFree is the tentpole's acceptance gate: once warm,
// the pooled one-shot path performs ZERO heap allocations per request,
// compress and decompress both. TableFixed avoids the per-request DHT
// sample (which allocates by design, like the silicon building its
// tables on-chip).
func TestIntoPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; gate runs in non-race builds")
	}
	acc := Open(Config{Device: P9().Device, TableMode: TableFixed})
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 8<<10, 3)
	dst := make([]byte, 0, 16<<10)
	var m Metrics
	var err error
	// Warm the pools: first calls mint the pooled blocks, arena spans and
	// engine scratch that the steady state then reuses.
	for i := 0; i < 4; i++ {
		dst, err = acc.CompressGzipInto(dst[:0], src, &m)
		if err != nil {
			t.Fatal(err)
		}
	}
	gz := append([]byte(nil), dst...)
	if n := testing.AllocsPerRun(200, func() {
		dst, err = acc.CompressGzipInto(dst[:0], src, &m)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CompressGzipInto: %.1f allocs per steady-state op, want 0", n)
	}

	pdst := make([]byte, 0, 16<<10)
	for i := 0; i < 4; i++ {
		pdst, err = acc.DecompressGzipInto(pdst[:0], gz, &m)
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		pdst, err = acc.DecompressGzipInto(pdst[:0], gz, &m)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecompressGzipInto: %.1f allocs per steady-state op, want 0", n)
	}
	if !bytes.Equal(pdst, src) {
		t.Fatal("roundtrip mismatch after alloc gate")
	}
}

// TestOneShotMappingsStable is the VA-arena regression: repeated
// one-shots must not mint fresh mappings — the mapped page count of the
// context settles after warmup and stays put. (Before the arena, every
// CompressGzip/DecompressGzip call mapped two more buffers forever.)
func TestOneShotMappingsStable(t *testing.T) {
	acc := Open(Config{Device: P9().Device, TableMode: TableFixed})
	defer acc.Close()
	src := corpus.Generate(corpus.Source, 24<<10, 4)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	warm := func() {
		if _, _, err := acc.CompressGzip(src); err != nil {
			t.Fatal(err)
		}
		if _, _, err := acc.DecompressGzip(gz); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		warm()
	}
	pages := acc.MMU().MappedPages(acc.Context().PID())
	for i := 0; i < 50; i++ {
		warm()
	}
	if got := acc.MMU().MappedPages(acc.Context().PID()); got != pages {
		t.Fatalf("mappings grew under repeated one-shots: %d -> %d pages", pages, got)
	}
}

// TestMemberGrowLoopMappingsBounded pins the decompressMemberOn leak
// fix: the CCTargetSpace grow loop recycles each outgrown destination
// span, so repeated multi-member decodes (with growth) hold the mapped
// page count flat instead of leaking every intermediate buffer.
func TestMemberGrowLoopMappingsBounded(t *testing.T) {
	acc := Open(Config{Device: P9().Device, TableMode: TableFixed})
	defer acc.Close()
	// Plaintext larger than memberCapInitial so the grow loop actually
	// runs (4 MiB initial target, 6 MiB member).
	src := corpus.Generate(corpus.Text, 6<<20, 5)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	budget := len(src) + 1024
	decode := func() {
		plain, consumed, _, err := acc.decompressMemberOn(acc.ctx, gz, budget, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(gz) || !bytes.Equal(plain, src) {
			t.Fatalf("member decode: consumed=%d/%d equal=%v", consumed, len(gz), bytes.Equal(plain, src))
		}
	}
	decode() // warm: populate the arena's size classes
	pages := acc.MMU().MappedPages(acc.Context().PID())
	for i := 0; i < 8; i++ {
		decode()
	}
	if got := acc.MMU().MappedPages(acc.Context().PID()); got != pages {
		t.Fatalf("grow-loop decode leaks mappings: %d -> %d pages", pages, got)
	}
}

// TestPooledFallbackIntoDegraded: the Into path's software fallback
// still honours the caller-owned-buffer contract and flags Degraded.
func TestPooledFallbackIntoDegraded(t *testing.T) {
	_, acc, injs := openChaosNode(t, P9Node(1), faultinject.Profile{})
	injs[0].SetOffline(true)
	src := corpus.Generate(corpus.Text, 8<<10, 6)
	dst := make([]byte, 0, 16<<10)
	var m Metrics
	gz, err := acc.CompressGzipInto(dst, src, &m)
	if err != nil {
		t.Fatalf("Into with dead pool: %v", err)
	}
	if !m.Degraded {
		t.Fatal("software-path Into result not flagged Degraded")
	}
	if len(gz) == 0 || &gz[0] != &dst[:1][0] {
		t.Fatal("fallback result does not reuse the caller's dst")
	}
	back, err := acc.DecompressGzipInto(make([]byte, 0, len(src)+64), gz, &m)
	if err != nil || !bytes.Equal(back, src) || !m.Degraded {
		t.Fatalf("degraded Into roundtrip: err=%v degraded=%v", err, m.Degraded)
	}
}
