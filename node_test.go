package nxzip

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"nxzip/internal/corpus"
	"nxzip/internal/nx"
)

// TestAcceleratorCloseIdempotent is the double-close regression test:
// repeated and concurrent Close calls are no-ops, and use after Close
// fails cleanly instead of corrupting window credits.
func TestAcceleratorCloseIdempotent(t *testing.T) {
	acc := Open(P9())
	if _, _, err := acc.CompressGzip([]byte("close me gently")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); acc.Close() }()
	}
	wg.Wait()
	acc.Close() // and serially once more
	if _, _, err := acc.CompressGzip([]byte("after close")); err == nil {
		t.Fatal("compress after Close succeeded")
	}
}

// TestContextCloseCreditRestoration checks the device-context side: the
// window's credits survive a double close (a second close must not
// re-release anything), observed through the switchboard.
func TestContextCloseCreditRestoration(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	ctx := acc.Device().OpenContext(2)
	win := ctx.Window()
	sb := acc.Device().Switchboard()
	full, err := sb.Credits(win)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctx.Compress([]byte("one request through the window"), nx.FCCompressFHT, nx.WrapGzip, true); err != nil {
		t.Fatal(err)
	}
	ctx.Close()
	ctx.Close()
	got, err := sb.Credits(win)
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatalf("credits after double close = %d, want %d", got, full)
	}
}

func TestOpenNodeUnknownPolicy(t *testing.T) {
	cfg := P9Node(2)
	cfg.Dispatch = "fastest-wins"
	if _, err := OpenNode(cfg); err == nil {
		t.Fatal("unknown dispatch policy accepted")
	}
}

// TestNodeViewCompat checks a node view behaves exactly like a classic
// Accelerator: compression round-trips and the merged snapshot keeps the
// single-device row layout on a one-device node.
func TestNodeViewCompat(t *testing.T) {
	n, err := OpenNode(P9Node(1))
	if err != nil {
		t.Fatal(err)
	}
	acc := n.View()
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 64<<10, 7)
	gz, m, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.InBytes != len(src) {
		t.Fatalf("InBytes = %d, want %d", m.InBytes, len(src))
	}
	plain, _, err := acc.DecompressGzip(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, src) {
		t.Fatal("roundtrip mismatch")
	}
	if got := acc.Metrics().Counter("nx.requests", ""); got != 2 {
		t.Fatalf("nx.requests = %d, want 2 (compress + decompress)", got)
	}
}

// TestParallelWriterShardsAcrossDevices compresses one stream through a
// four-device z15 drawer and checks every device took chunks while the
// output stays a valid in-order multi-member gzip stream.
func TestParallelWriterShardsAcrossDevices(t *testing.T) {
	n, err := OpenNode(Z15Node(1)) // one drawer = 4 zEDC units
	if err != nil {
		t.Fatal(err)
	}
	acc := n.View()
	defer acc.Close()

	src := corpus.Generate(corpus.Text, 2<<20, 11)
	var buf bytes.Buffer
	w := acc.NewParallelWriterChunk(&buf, 128<<10, 8)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := GunzipMulti(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, src) {
		t.Fatal("sharded stream does not reassemble in order")
	}
	var total int64
	for i := 0; i < n.Devices(); i++ {
		d := n.Dispatched(i)
		total += d
		if d == 0 {
			t.Fatalf("device %s received no chunks", n.Label(i))
		}
	}
	if want := int64(2 << 20 / (128 << 10)); total != want {
		t.Fatalf("dispatched %d chunks across the node, want %d", total, want)
	}

	// The merged snapshot reconciles: per-device nx.requests rows sum to
	// the aggregate row under the original empty label.
	snap := n.Metrics()
	var perDev int64
	for i := 0; i < n.Devices(); i++ {
		perDev += snap.Counter("nx.requests", n.Label(i))
	}
	if agg := snap.Counter("nx.requests", ""); agg != perDev || agg == 0 {
		t.Fatalf("aggregate nx.requests %d != per-device sum %d", agg, perDev)
	}
}

// TestStreamWriterPinsToOneDevice checks history-carrying streams stay on
// a single device of a multi-device node (history lives in the pick).
func TestStreamWriterPinsToOneDevice(t *testing.T) {
	n, err := OpenNode(Z15Node(1))
	if err != nil {
		t.Fatal(err)
	}
	acc := n.View()
	defer acc.Close()

	src := corpus.Generate(corpus.Text, 512<<10, 13)
	var buf bytes.Buffer
	w := acc.NewStreamWriterChunk(&buf, 64<<10)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := SoftwareGunzip(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, src) {
		t.Fatal("stream roundtrip mismatch")
	}
	devicesUsed := 0
	snap := n.Metrics()
	for i := 0; i < n.Devices(); i++ {
		if snap.Counter("nx.requests", n.Label(i)) > 0 {
			devicesUsed++
		}
	}
	if devicesUsed != 1 {
		t.Fatalf("stream segments landed on %d devices, want 1 (sticky pick)", devicesUsed)
	}
}

// TestNodeDispatchPolicies runs the same workload under each policy
// through the public API and checks totals are preserved.
func TestNodeDispatchPolicies(t *testing.T) {
	src := corpus.Generate(corpus.JSONLogs, 64<<10, 17)
	for _, policy := range []string{"round-robin", "least-loaded", "affinity"} {
		cfg := Z15Node(1)
		cfg.Dispatch = policy
		n, err := OpenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		acc := n.View()
		const reqs = 12
		for i := 0; i < reqs; i++ {
			if _, _, err := acc.CompressGzip(src); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
		}
		var total int64
		for i := 0; i < n.Devices(); i++ {
			total += n.Dispatched(i)
		}
		if total != reqs {
			t.Fatalf("%s: dispatched %d, want %d", policy, total, reqs)
		}
		if policy == "affinity" {
			// One context: every request must be on the same device.
			nonzero := 0
			for i := 0; i < n.Devices(); i++ {
				if n.Dispatched(i) > 0 {
					nonzero++
				}
			}
			if nonzero != 1 {
				t.Fatalf("affinity spread one context over %d devices", nonzero)
			}
		}
		acc.Close()
	}
}

// TestMergedSnapshotLabels spot-checks the prefixed-row naming contract
// documented in DESIGN.md §5c.
func TestMergedSnapshotLabels(t *testing.T) {
	n, err := OpenNode(Z15Node(1))
	if err != nil {
		t.Fatal(err)
	}
	acc := n.View()
	defer acc.Close()
	if _, _, err := acc.CompressGzip([]byte(strings.Repeat("label me ", 1<<10))); err != nil {
		t.Fatal(err)
	}
	snap := n.Metrics()
	foundPrefixed := false
	for _, c := range snap.Counters {
		if c.Name == "nx.requests" && strings.HasPrefix(c.Label, "drawer0/cp") {
			foundPrefixed = true
		}
	}
	if !foundPrefixed {
		t.Fatal("no drawer-prefixed nx.requests row in merged snapshot")
	}
}
