package nxzip_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"nxzip"
)

// ExampleAccelerator_CompressGzip shows the one-shot API and the
// device-side accounting it returns.
func ExampleAccelerator_CompressGzip() {
	acc := nxzip.Open(nxzip.P9())
	defer acc.Close()

	data := []byte(strings.Repeat("on-chip compression! ", 200))
	gz, m, err := acc.CompressGzip(data)
	if err != nil {
		panic(err)
	}
	plain, err := nxzip.SoftwareGunzip(gz) // ordinary gzip bytes
	if err != nil {
		panic(err)
	}
	fmt.Println("round-trip ok:", bytes.Equal(plain, data))
	fmt.Println("ratio > 10:", m.Ratio > 10)
	fmt.Println("device time > 0:", m.DeviceTime > 0)
	// Output:
	// round-trip ok: true
	// ratio > 10: true
	// device time > 0: true
}

// ExampleAccelerator_NewStreamWriter composes one gzip member from many
// requests, carrying the 32 KiB history window between them.
func ExampleAccelerator_NewStreamWriter() {
	acc := nxzip.Open(nxzip.Z15())
	defer acc.Close()

	var gz bytes.Buffer
	w := acc.NewStreamWriterChunk(&gz, 64<<10)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(w, "record %d: the same schema repeats across chunks\n", i)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}

	r := acc.NewStreamReader(&gz, 0)
	plain, err := io.ReadAll(r)
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Count(string(plain), "record"))
	// Output:
	// 8
}

// ExampleSoftwareGzip runs the paper's software baseline.
func ExampleSoftwareGzip() {
	gz, err := nxzip.SoftwareGzip([]byte("baseline baseline baseline"), 6)
	if err != nil {
		panic(err)
	}
	plain, err := nxzip.SoftwareGunzip(gz)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(plain))
	// Output:
	// baseline baseline baseline
}
