package nxzip

// concurrency_test.go exercises the concurrency contract: one
// Accelerator driven from N goroutines (the shared-queue multi-process
// integration story of the paper), the pipelined ParallelWriter, and the
// parallel multi-member Reader. Run with -race.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"nxzip/internal/corpus"
)

// TestConcurrentAcceleratorRoundTrips drives one Accelerator (with two
// engines behind the shared FIFO, the z15 NXU shape) from 8 goroutines
// doing compress/decompress round trips.
func TestConcurrentAcceleratorRoundTrips(t *testing.T) {
	cfg := P9()
	cfg.Device.Engines = 2
	acc := Open(cfg)
	defer acc.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				src := corpus.Generate(corpus.Kinds()[(g+i)%6], 64<<10, int64(g*100+i))
				gz, _, err := acc.CompressGzip(src)
				if err != nil {
					errs[g] = err
					return
				}
				got, _, err := acc.DecompressGzip(gz)
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(got, src) {
					errs[g] = fmt.Errorf("goroutine %d iter %d: round-trip mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentSerialWriters runs N independent Writers on one shared
// Accelerator, each from its own goroutine.
func TestConcurrentSerialWriters(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()

	const goroutines = 6
	var wg sync.WaitGroup
	type result struct {
		src []byte
		gz  bytes.Buffer
		err error
	}
	results := make([]result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := &results[g]
			r.src = corpus.Generate(corpus.Kinds()[g%6], 600<<10, int64(g))
			w := acc.NewWriterChunk(&r.gz, 128<<10)
			if _, err := w.Write(r.src); err != nil {
				r.err = err
				return
			}
			r.err = w.Close()
		}(g)
	}
	wg.Wait()
	for g := range results {
		r := &results[g]
		if r.err != nil {
			t.Fatalf("writer %d: %v", g, r.err)
		}
		got, err := GunzipMulti(r.gz.Bytes())
		if err != nil {
			t.Fatalf("writer %d decode: %v", g, err)
		}
		if !bytes.Equal(got, r.src) {
			t.Fatalf("writer %d: stream mismatch", g)
		}
	}
}

// TestParallelWriterRoundTrip checks that the ParallelWriter's output is
// a valid, in-order multi-member stream readable by the stdlib, the
// software helper, and the accelerator's own Reader.
func TestParallelWriterRoundTrip(t *testing.T) {
	cfg := P9()
	cfg.Device.Engines = 4
	acc := Open(cfg)
	defer acc.Close()
	src := corpus.Generate(corpus.Source, 6<<20, 11)

	var comp bytes.Buffer
	w := acc.NewParallelWriterChunk(&comp, 256<<10, 4)
	// Awkward write sizes so chunk boundaries never align with writes.
	for off := 0; off < len(src); {
		n := 333333
		if off+n > len(src) {
			n = len(src) - off
		}
		if _, err := w.Write(src[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats.InBytes != len(src) {
		t.Fatalf("stats in %d, want %d", w.Stats.InBytes, len(src))
	}
	if w.Stats.Ratio <= 1 {
		t.Fatalf("ratio %.2f", w.Stats.Ratio)
	}

	// stdlib multistream reader.
	zr, err := gzip.NewReader(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib multistream mismatch (member order lost?)")
	}
	// Software helper and our Reader.
	if got, err := GunzipMulti(comp.Bytes()); err != nil || !bytes.Equal(got, src) {
		t.Fatalf("GunzipMulti mismatch (err %v)", err)
	}
	got, err = io.ReadAll(acc.NewReader(bytes.NewReader(comp.Bytes())))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("Reader mismatch (err %v)", err)
	}
}

// TestParallelWriterMatchesSerial: same chunking, same table mode — the
// parallel writer must emit byte-identical output to the serial Writer
// (reordering or interleaving would break this).
func TestParallelWriterMatchesSerial(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.JSONLogs, 3<<20, 42)

	var serial bytes.Buffer
	sw := acc.NewWriterChunk(&serial, 512<<10)
	sw.Write(src)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	var parallel bytes.Buffer
	pw := acc.NewParallelWriterChunk(&parallel, 512<<10, 4)
	pw.Write(src)
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("parallel writer output differs from serial writer")
	}
}

func TestParallelWriterEmptyInput(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	var comp bytes.Buffer
	w := acc.NewParallelWriter(&comp)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := GunzipMulti(comp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d bytes from empty stream", len(got))
	}
	// Idempotent close.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelWriterSinkFailure: a failing sink must surface on Close
// and leave the writer failed, with no goroutine leaks or deadlocks.
func TestParallelWriterSinkFailure(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	w := acc.NewParallelWriterChunk(&failingWriter{n: 100}, 32<<10, 3)
	src := corpus.Generate(corpus.Random, 1<<20, 9)
	_, werr := w.Write(src)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("sink failure never surfaced")
	}
	if _, err := w.Write([]byte("more")); err == nil {
		t.Fatal("write after close accepted")
	}
}

// TestParallelReaderRoundTrip decodes a many-member stream with worker
// fan-out and checks order, contents, and accounting.
func TestParallelReaderRoundTrip(t *testing.T) {
	cfg := P9()
	cfg.Device.Engines = 4
	acc := Open(cfg)
	defer acc.Close()
	src := corpus.Generate(corpus.HTML, 4<<20, 23)

	var comp bytes.Buffer
	w := acc.NewWriterChunk(&comp, 128<<10) // 32 members
	w.Write(src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := acc.NewParallelReader(bytes.NewReader(comp.Bytes()), 4)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("parallel reader mismatch")
	}
	if r.Stats.OutBytes != len(src) {
		t.Fatalf("stats out %d, want %d", r.Stats.OutBytes, len(src))
	}
	if r.Stats.InBytes != comp.Len() {
		t.Fatalf("stats in %d, want %d", r.Stats.InBytes, comp.Len())
	}
}

// TestConcurrentMixedTraffic mixes serial writers, parallel writers and
// readers on one Accelerator — the multi-tenant picture of E9.
func TestConcurrentMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-traffic soak")
	}
	cfg := Z15()
	cfg.Device.Engines = 2
	acc := Open(cfg)
	defer acc.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := corpus.Generate(corpus.Kinds()[g%6], 1<<20, int64(g))
			var comp bytes.Buffer
			var werr error
			if g%2 == 0 {
				w := acc.NewParallelWriterChunk(&comp, 128<<10, 3)
				_, werr = w.Write(src)
				if err := w.Close(); werr == nil {
					werr = err
				}
			} else {
				w := acc.NewWriterChunk(&comp, 128<<10)
				_, werr = w.Write(src)
				if err := w.Close(); werr == nil {
					werr = err
				}
			}
			if werr != nil {
				errCh <- werr
				return
			}
			r := acc.NewParallelReader(bytes.NewReader(comp.Bytes()), 2)
			got, err := io.ReadAll(r)
			if err != nil {
				errCh <- err
				return
			}
			if !bytes.Equal(got, src) {
				errCh <- errors.New("mixed-traffic round-trip mismatch")
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestWriterCloseIdempotent: double Close returns nil (the defer-heavy
// caller pattern), and Write after Close reports ErrWriterClosed rather
// than a fake submission failure.
func TestWriterCloseIdempotent(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	var comp bytes.Buffer
	w := acc.NewWriter(&comp)
	if _, err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("third Close: %v", err)
	}
	if _, err := w.Write([]byte("late")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("write after close: %v, want ErrWriterClosed", err)
	}
	// The stream is still valid.
	if got, err := GunzipMulti(comp.Bytes()); err != nil || string(got) != "payload" {
		t.Fatalf("stream corrupted by double close (err %v)", err)
	}
}

// countingFailWriter fails on the Nth Write call.
type countingFailWriter struct {
	calls    int
	failCall int
}

func (c *countingFailWriter) Write(p []byte) (int, error) {
	c.calls++
	if c.calls >= c.failCall {
		return 0, errors.New("sink failed")
	}
	return len(p), nil
}

// TestWriterPartialProgress: when a mid-stream chunk fails, Write must
// report the bytes that actually made it out, not zero.
func TestWriterPartialProgress(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	const chunk = 4 << 10
	w := acc.NewWriterChunk(&countingFailWriter{failCall: 2}, chunk)
	p := corpus.Generate(corpus.Random, 3*chunk, 5)
	n, err := w.Write(p)
	if err == nil {
		t.Fatal("sink failure not reported")
	}
	if n != chunk {
		t.Fatalf("accepted %d bytes, want %d (first chunk emitted before failure)", n, chunk)
	}
	// The writer stays failed with the real error, not ErrWriterClosed.
	if _, err2 := w.Write([]byte("x")); err2 == nil || errors.Is(err2, ErrWriterClosed) {
		t.Fatalf("subsequent write: %v, want the original failure", err2)
	}
	if cerr := w.Close(); cerr == nil {
		t.Fatal("Close after failure returned nil")
	}
}
