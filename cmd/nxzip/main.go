// Command nxzip is a gzip-like CLI driven by the accelerator model: it
// compresses/decompresses files or stdin through the simulated POWER9 or
// z15 engine and reports the device-side accounting (what the job *would*
// have cost on the accelerator), alongside wall-clock host time.
//
// Usage:
//
//	nxzip [-d] [-chip p9|z15] [-fht] [-sw level] [-format gzip|zlib|raw|842|lz4] [-devices n] [-dispatch policy] [-metrics] [-trace out.json] [-events out.jsonl] [-o out] [file]
//
// Examples:
//
//	nxzip -o corpus.gz corpus.txt        # compress via simulated P9 NX
//	nxzip -d -o corpus.txt corpus.gz     # decompress
//	nxzip -chip z15 -v corpus.txt        # z15 model, verbose accounting
//	nxzip -sw 6 corpus.txt               # software baseline instead
//	nxzip -metrics corpus.txt            # dump the device metrics snapshot
//	nxzip -trace t.json -stream corpus.txt  # Chrome trace of every request
//	nxzip -devices 4 -v corpus.txt       # shard chunks across a 4-device node
//	nxzip -devices 4 -dispatch least-loaded corpus.txt
//	nxzip -devices 4 -chaos heavy -v corpus.txt   # inject faults; watch recovery
//	nxzip -devices 4 -chaos heavy -events ev.jsonl corpus.txt  # log quarantine/failover events
//	nxzip -chaos crc-error=1 -v corpus.txt        # kill the device: software fallback
//	nxzip -format lz4 -v corpus.txt               # LZ4 block through codec dispatch
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nxzip"
	"nxzip/internal/faultinject"
	"nxzip/internal/nx"
	"nxzip/internal/obs"
	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nxzip: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		decompress = flag.Bool("d", false, "decompress")
		chip       = flag.String("chip", "p9", "accelerator model: p9 or z15")
		fht        = flag.Bool("fht", false, "use the fixed Huffman table function code")
		swLevel    = flag.Int("sw", 0, "bypass the accelerator; software codec at this level (1..9)")
		format     = flag.String("format", "gzip", "stream format: gzip, zlib, raw, 842 or lz4")
		stream     = flag.Bool("stream", false, "single-member streaming mode with 32 KiB history carry")
		chunk      = flag.Int("chunk", 1<<20, "streaming request size in bytes")
		outPath    = flag.String("o", "", "output file (default stdout)")
		verbose    = flag.Bool("v", false, "print device accounting to stderr")
		dumpMet    = flag.Bool("metrics", false, "print the device metrics snapshot to stderr")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON of every request to this file")
		eventsPath = flag.String("events", "", "write control-plane events (quarantine, failover, fallback, ...) as JSON lines to this file")
		devices    = flag.Int("devices", 1, "device count: >1 opens a multi-accelerator node and shards compression across it")
		dispatch   = flag.String("dispatch", "", "node dispatch policy: round-robin (default), least-loaded, affinity")
		chaos      = flag.String("chaos", "", "inject faults: a named profile (mild, heavy, fault-storm, ...) or \"class=rate,...\"")
	)
	flag.Parse()
	if *devices < 1 {
		return fmt.Errorf("-devices %d: need at least one device", *devices)
	}
	ff, err := nxzip.ParseFormat(*format)
	if err != nil {
		return err
	}
	var chaosProfile faultinject.Profile
	if *chaos != "" {
		var perr error
		if chaosProfile, perr = faultinject.ParseProfile(*chaos); perr != nil {
			return perr
		}
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	var result []byte
	var metrics *nxzip.Metrics

	// open wires the observability flags into whichever accelerator the
	// mode below decides to use. The pure-software paths (-sw with the
	// gzip format) never open one, so those flags would be silently
	// inert — warn up front instead of leaving empty outputs unexplained.
	if *swLevel > 0 && ff == nxzip.FormatGzip && (*dumpMet || *tracePath != "" || *eventsPath != "") {
		fmt.Fprintln(os.Stderr, "nxzip: warning: -metrics, -trace and -events have no effect with -sw: the software-only path opens no accelerator")
	}
	var acc *nxzip.Accelerator
	var node *nxzip.Node
	var traceFile *os.File
	var eventsFile *os.File
	var eventLog *obs.EventLog
	open := func(cfg nxzip.Config) (*nxzip.Accelerator, error) {
		// -chaos needs the node path even for one device: injectors install
		// through the node, and so do failover and software fallback.
		if *devices > 1 || *dispatch != "" || *chaos != "" {
			devCfgs := make([]nx.DeviceConfig, *devices)
			for i := range devCfgs {
				devCfgs[i] = cfg.Device
			}
			ncfg := nxzip.CustomNode("cli", devCfgs...)
			ncfg.Dispatch = *dispatch
			ncfg.TableMode = cfg.TableMode
			n, nerr := nxzip.OpenNode(ncfg)
			if nerr != nil {
				return nil, nerr
			}
			node = n
			if *chaos != "" {
				n.InstallInjectors(1, chaosProfile)
			}
			acc = n.View()
		} else {
			acc = nxzip.Open(cfg)
		}
		if *tracePath != "" {
			f, ferr := os.Create(*tracePath)
			if ferr != nil {
				return nil, ferr
			}
			traceFile = f
			acc.StartTrace(telemetry.NewChromeSink(f))
		}
		if *eventsPath != "" {
			f, ferr := os.Create(*eventsPath)
			if ferr != nil {
				return nil, ferr
			}
			eventsFile = f
			eventLog = obs.NewEventLog(acc.EnableEvents(), f, 256)
		}
		return acc, nil
	}
	defer func() {
		if acc != nil {
			acc.Close()
		}
	}()

	switch {
	case ff != nxzip.FormatGzip:
		// Non-gzip formats route through the format-parameterized API:
		// zlib/raw one-shots on the DEFLATE engine, 842 and LZ4 through
		// codec-capable dispatch with per-codec software fallback.
		cfg := nxzip.P9()
		if *chip == "z15" {
			cfg = nxzip.Z15()
		} else if *chip != "p9" {
			return fmt.Errorf("unknown chip %q", *chip)
		}
		if *fht {
			cfg.TableMode = nxzip.TableFixed
		}
		if _, err := open(cfg); err != nil {
			return err
		}
		if *decompress {
			result, metrics, err = acc.DecompressFormat(ff, src, 0)
		} else {
			result, metrics, err = acc.CompressFormat(ff, src)
		}
	case *swLevel > 0 && !*decompress:
		result, err = nxzip.SoftwareGzip(src, *swLevel)
	case *swLevel > 0 && *decompress:
		result, err = nxzip.GunzipMulti(src)
	default:
		cfg := nxzip.P9()
		if *chip == "z15" {
			cfg = nxzip.Z15()
		} else if *chip != "p9" {
			return fmt.Errorf("unknown chip %q", *chip)
		}
		if *fht {
			cfg.TableMode = nxzip.TableFixed
		}
		if _, err := open(cfg); err != nil {
			return err
		}
		if *decompress && *stream {
			r := acc.NewStreamReader(bytes.NewReader(src), 0)
			if _, cerr := io.Copy(out, r); cerr != nil {
				return cerr
			}
			result = nil
			metrics = &r.Stats
		} else if *decompress {
			result, err = nxzip.GunzipMulti(src) // accept multi-member
			if err == nil {
				// Account the work on the device model as one request per
				// member equivalent; use the single-shot path when it is a
				// single member for exact metrics.
				if plain, m, derr := acc.DecompressGzip(src); derr == nil {
					result, metrics = plain, m
				}
			}
		} else if *stream && !*decompress {
			// True streaming: compressed output flows to out as chunks
			// complete; input is never fully buffered.
			w := acc.NewStreamWriterChunk(out, *chunk)
			if _, werr := w.Write(src); werr != nil {
				return werr
			}
			if werr := w.Close(); werr != nil {
				return werr
			}
			result = nil
			metrics = &w.Stats
		} else if *devices > 1 {
			// Shard the stream across the node: the ParallelWriter's chunks
			// dispatch to devices by the node policy and reassemble in order.
			var buf bytes.Buffer
			w := acc.NewParallelWriterChunk(&buf, *chunk, *devices)
			if _, werr := w.Write(src); werr != nil {
				return werr
			}
			if werr := w.Close(); werr != nil {
				return werr
			}
			result = buf.Bytes()
			metrics = &w.Stats
		} else {
			result, metrics, err = acc.CompressGzip(src)
		}
	}
	if err != nil {
		return err
	}
	if result != nil {
		if _, err := out.Write(result); err != nil {
			return err
		}
	}

	if *verbose {
		host := time.Since(start)
		outLen := int64(len(result))
		if result == nil && metrics != nil {
			outLen = int64(metrics.OutBytes)
		}
		fmt.Fprintf(os.Stderr, "%s -> %s", stats.Bytes(int64(len(src))), stats.Bytes(outLen))
		if !*decompress && outLen > 0 {
			fmt.Fprintf(os.Stderr, " (ratio %.2f)", float64(len(src))/float64(outLen))
		}
		fmt.Fprintf(os.Stderr, "\nhost time  %v\n", host)
		if metrics != nil {
			fmt.Fprintf(os.Stderr, "device time %v (%d cycles, %d faults) = %s\n",
				metrics.DeviceTime, metrics.DeviceCycles, metrics.Faults,
				stats.Rate(metrics.Throughput()))
			if metrics.Redispatches > 0 || metrics.Degraded {
				fmt.Fprintf(os.Stderr, "recovery: %d redispatches, degraded=%v\n",
					metrics.Redispatches, metrics.Degraded)
			}
		}
		if node != nil {
			fmt.Fprintf(os.Stderr, "dispatch:")
			for i := 0; i < node.Devices(); i++ {
				fmt.Fprintf(os.Stderr, " %s=%d", node.Label(i), node.Dispatched(i))
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	if traceFile != nil {
		if err := acc.StopTrace(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if eventLog != nil {
		dropped, lerr := eventLog.Close()
		if lerr != nil {
			return lerr
		}
		if cerr := eventsFile.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "events written to %s (%d dropped)\n", *eventsPath, dropped)
	}
	if *dumpMet && acc != nil {
		acc.Metrics().Format(os.Stderr)
	}
	return nil
}
