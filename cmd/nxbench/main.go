// Command nxbench regenerates every table and figure of the reproduction
// (experiments E1–E25 per DESIGN.md) plus the design-choice ablations,
// printing them as formatted text tables.
//
// Usage:
//
//	nxbench                  # all experiments
//	nxbench -only E7         # one experiment
//	nxbench -ablations       # the A1–A11 design sweeps
//	nxbench -host            # also measure this host's software codec
//	nxbench -parallel        # serial vs parallel Writer/Reader scaling
//	nxbench -trace out.json  # Chrome trace of a ParallelWriter workload
//	nxbench -metrics         # metrics snapshot of the same workload
//	nxbench -json BENCH_topology.json   # E18 sweep, points as JSON
//	nxbench -devices 8 -dispatch ll     # one topology point
//	nxbench -chaos sweep -json BENCH_chaos.json   # E19 fault-rate sweep
//	nxbench -smallreq -json BENCH_smallreq.json   # E21 batched small-request sweep
//	nxbench -codecs -json BENCH_codecs.json       # E23 codec shoot-out
//	nxbench -chaos fault-storm                    # one named chaos profile
//	nxbench -serve :8090 -serve-dur 30s           # workload behind the obs HTTP server
//	nxbench -obs-demo                             # scrape-and-parse self check
//	nxbench -obs-overhead -json BENCH_obs.json    # E20 observability overhead
//	nxbench -flightrec-demo                       # flight recorder end-to-end self check
//	nxbench -flightrec-overhead -json BENCH_flightrec.json   # E22 recorder overhead
//	nxbench -overload -json BENCH_overload.json   # E24 overload-protection sweep
//	nxbench -drain-demo                           # graceful-drain end-to-end self check
//	nxbench -tenants -json BENCH_tenants.json     # E25 tenant-interference experiment
//	nxbench -tenants-demo                         # tenant accounting plane self check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nxzip/internal/experiments"
	"nxzip/internal/topology"
)

func main() {
	only := flag.String("only", "", "run a single experiment id (E1..E25, A1..A11)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation sweeps")
	host := flag.Bool("host", false, "also measure the host software baseline")
	parallel := flag.Bool("parallel", false, "measure serial vs parallel Writer/Reader throughput scaling")
	tracePath := flag.String("trace", "", "run the trace workload and write Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "run the trace workload and print the device metrics snapshot")
	jsonPath := flag.String("json", "", "write the sweep's raw points to this file as JSON (E18 topology, or E19 with -chaos)")
	devices := flag.Int("devices", 0, "measure a single topology point with this many z15 devices")
	dispatch := flag.String("dispatch", "", "dispatch policy for the topology sweep: round-robin, least-loaded, affinity")
	smallreq := flag.Bool("smallreq", false, "run the E21 batched small-request sweep (export points with -json)")
	codecs := flag.Bool("codecs", false, "run the E23 codec shoot-out (export points with -json)")
	chaos := flag.String("chaos", "", "run the E19 chaos harness: \"sweep\", a named profile (mild, heavy, fault-storm, ...) or \"class=rate,...\"")
	serve := flag.String("serve", "", "run a workload behind the observability HTTP server on this address (e.g. :8090); combine with -chaos and -serve-dur")
	serveDur := flag.Duration("serve-dur", 0, "how long -serve runs the workload (0 = until interrupted)")
	obsDemoFlag := flag.Bool("obs-demo", false, "self-check: serve, scrape /metrics, verify Prometheus parse + counter round-trip + /healthz")
	obsOverhead := flag.Bool("obs-overhead", false, "run the E20 observability-overhead experiment (export points with -json)")
	flightDemoFlag := flag.Bool("flightrec-demo", false, "self-check: recorder attached, forced device outage, postmortem bundle verified over /debug/postmortems")
	flightOverhead := flag.Bool("flightrec-overhead", false, "run the E22 flight-recorder-overhead experiment (export points with -json)")
	overload := flag.Bool("overload", false, "run the E24 overload-protection sweep (export points with -json)")
	drainDemoFlag := flag.Bool("drain-demo", false, "self-check: graceful drain under live traffic — zero dropped in-flight, byte-exact results, clean undrain")
	tenants := flag.Bool("tenants", false, "run the E25 tenant-interference experiment (export result with -json)")
	tenantsDemoFlag := flag.Bool("tenants-demo", false, "self-check: labeled tenant rows over /tenants, exemplars resolved against the flight recorder")
	flag.Parse()

	if *serve != "" || *obsDemoFlag || *obsOverhead || *flightDemoFlag || *flightOverhead || *overload || *drainDemoFlag || *tenants || *tenantsDemoFlag {
		var err error
		switch {
		case *obsDemoFlag:
			err = obsDemo()
		case *obsOverhead:
			err = obsOverheadRun(*jsonPath)
		case *flightDemoFlag:
			err = flightrecDemo()
		case *flightOverhead:
			err = flightOverheadRun(*jsonPath)
		case *overload:
			err = overloadRun(*jsonPath)
		case *drainDemoFlag:
			err = drainDemo()
		case *tenants:
			err = tenantsRun(*jsonPath)
		case *tenantsDemoFlag:
			err = tenantsDemo()
		default:
			err = obsServe(*serve, *serveDur, *chaos)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tracePath != "" || *metrics {
		if err := traceDemo(*tracePath, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *smallreq {
		if err := smallreqRun(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *codecs {
		if err := codecsRun(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaos != "" {
		if err := chaosRun(*chaos, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" || *devices > 0 || *dispatch != "" {
		if err := topologyRun(*jsonPath, *devices, *dispatch); err != nil {
			fmt.Fprintf(os.Stderr, "nxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tables []*experiments.Table
	switch {
	case *only != "":
		tables = runOne(strings.ToUpper(*only))
		if tables == nil {
			fmt.Fprintf(os.Stderr, "nxbench: unknown experiment %q\n", *only)
			os.Exit(2)
		}
	case *parallel:
		tables = parallelTables()
	case *ablations:
		tables = experiments.Ablations()
	default:
		tables = experiments.All()
		tables = append(tables, experiments.Ablations()...)
	}
	if *host {
		tables = append(tables, experiments.EHostReference())
	}

	fmt.Println("nxzip experiment harness — reproduction of ISCA 2020 \"Data compression accelerator on IBM POWER9 and z15 processors\"")
	for _, t := range tables {
		t.Render(os.Stdout)
	}
}

func runOne(id string) []*experiments.Table {
	switch id {
	case "E1":
		return []*experiments.Table{experiments.E1CompressionRatio()}
	case "E2":
		return []*experiments.Table{experiments.E2ThroughputVsSize()}
	case "E3":
		return []*experiments.Table{experiments.E3SpeedupSingleCore()}
	case "E4":
		return []*experiments.Table{experiments.E4SpeedupWholeChip()}
	case "E5":
		return []*experiments.Table{experiments.E5Z15Doubling()}
	case "E6":
		return []*experiments.Table{experiments.E6SystemScaling()}
	case "E7":
		return []*experiments.Table{experiments.E7SparkTPCDS()}
	case "E8":
		return []*experiments.Table{experiments.E8LatencyBreakdown()}
	case "E9":
		return []*experiments.Table{experiments.E9MultiTenant()}
	case "E10":
		return []*experiments.Table{experiments.E10AreaPower()}
	case "E11":
		return []*experiments.Table{experiments.E11DHTStrategies()}
	case "E12":
		return []*experiments.Table{experiments.E12PageFaults()}
	case "E13":
		return []*experiments.Table{experiments.E13StreamComposition()}
	case "E14":
		return []*experiments.Table{experiments.E14MemoryExpansion()}
	case "E15":
		return []*experiments.Table{experiments.E15SubmissionInterfaces()}
	case "E16":
		return []*experiments.Table{experiments.E16QoS()}
	case "E17":
		return []*experiments.Table{experiments.E17SmallRequests()}
	case "E18":
		return []*experiments.Table{experiments.E18TopologyScaling()}
	case "E19":
		return []*experiments.Table{experiments.E19ChaosDegradation()}
	case "E20":
		return []*experiments.Table{experiments.E20ObservabilityOverhead()}
	case "E21":
		return []*experiments.Table{experiments.E21SmallRequestBatching()}
	case "E22":
		return []*experiments.Table{experiments.E22FlightRecorderOverhead()}
	case "E23":
		return []*experiments.Table{experiments.E23CodecShootout()}
	case "E24":
		return []*experiments.Table{experiments.E24OverloadProtection()}
	case "E25":
		return []*experiments.Table{experiments.E25TenantInterference()}
	case "A1":
		return []*experiments.Table{experiments.A1Banks()}
	case "A2":
		return []*experiments.Table{experiments.A2Ways()}
	case "A3":
		return []*experiments.Table{experiments.A3Lazy()}
	case "A4":
		return []*experiments.Table{experiments.A4Window()}
	case "A5":
		return []*experiments.Table{experiments.A5Width()}
	case "A6":
		return []*experiments.Table{experiments.A6SpecDecode()}
	case "A7":
		return []*experiments.Table{experiments.A7SampleSize()}
	case "A8":
		return []*experiments.Table{experiments.A8ERATSize()}
	case "A9":
		return []*experiments.Table{experiments.A9TableConstruction()}
	case "A10":
		return []*experiments.Table{experiments.A10ExpansionBound()}
	case "A11":
		return []*experiments.Table{experiments.A11ParseOptimality()}
	case "H0":
		return []*experiments.Table{experiments.EHostReference()}
	}
	return nil
}

// smallreqRun drives the E21 batched small-request sweep and optionally
// exports the raw points as JSON (BENCH_smallreq.json in make bench-json).
func smallreqRun(jsonPath string) error {
	t, points := experiments.SmallRequestBatching()
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// codecsRun drives the E23 codec shoot-out and optionally exports the
// raw points as JSON (BENCH_codecs.json in make bench-json).
func codecsRun(jsonPath string) error {
	t, points := experiments.CodecShootout()
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// overloadRun drives the E24 overload-protection sweep and optionally
// exports the raw points as JSON (BENCH_overload.json in make bench-json).
func overloadRun(jsonPath string) error {
	t, points := experiments.OverloadProtection()
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// topologyRun drives the E18 topology sweep (or one explicit point) and
// optionally exports the raw points as JSON.
func topologyRun(jsonPath string, devices int, dispatch string) error {
	policy, err := topology.ParsePolicy(dispatch)
	if err != nil {
		return err
	}
	counts := []int{1, 4, 8, 12, 16, 20}
	if devices > 0 {
		counts = []int{devices}
	}
	t, points := experiments.TopologyScalingCustom(counts, policy)
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
