package main

// drain.go is the graceful-drain end-to-end self check behind `nxbench
// -drain-demo` (wired into `make check`). It drives live compression
// traffic across a two-unit node, drains one device mid-flight, and
// asserts the whole drain contract: the drain quiesces within its bound,
// zero in-flight requests are dropped (every device balances dequeues
// against completes), the drained device takes no new work while traffic
// keeps flowing byte-exact on the survivor, the drain is visible on the
// event bus, and Undrain restores the device to service.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/experiments"
	"nxzip/internal/obs"
)

func drainDemo() error {
	node, err := nxzip.OpenNode(nxzip.P9Node(2))
	if err != nil {
		return err
	}
	bus := node.EnableEvents()
	acc := node.View()
	defer acc.Close()
	src := corpus.Generate(corpus.JSONLogs, 64<<10, experiments.Seed)

	// Live traffic: four workers compress and round-trip continuously;
	// any error or byte mismatch during the drain fails the check.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				out, _, cerr := acc.CompressGzip(src)
				if cerr != nil {
					errCh <- fmt.Errorf("drain-demo: worker %d compress: %w", w, cerr)
					return
				}
				rt, _, derr := acc.DecompressGzip(out)
				if derr != nil {
					errCh <- fmt.Errorf("drain-demo: worker %d decompress: %w", w, derr)
					return
				}
				if !bytes.Equal(rt, src) {
					errCh <- fmt.Errorf("drain-demo: worker %d round-trip mismatch", w)
					return
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let traffic reach both devices
	if err := node.DrainTimeout(0, 10*time.Second); err != nil {
		return fmt.Errorf("drain-demo: drain: %w", err)
	}
	if !node.Draining(0) {
		return fmt.Errorf("drain-demo: device 0 not marked draining after Drain")
	}
	pastesAtDrain := node.Device(0).Switchboard().Stats().Pastes

	time.Sleep(20 * time.Millisecond) // traffic continues on the survivor
	stop.Store(true)
	wg.Wait()
	select {
	case werr := <-errCh:
		return werr
	default:
	}

	if p := node.Device(0).Switchboard().Stats().Pastes; p != pastesAtDrain {
		return fmt.Errorf("drain-demo: drained device took %d new pastes", p-pastesAtDrain)
	}
	var completed int64
	for i := 0; i < node.Devices(); i++ {
		s := node.Device(i).Switchboard().Stats()
		if s.Dequeues != s.Completes {
			return fmt.Errorf("drain-demo: device %d dropped in-flight work: %d dequeues vs %d completes",
				i, s.Dequeues, s.Completes)
		}
		completed += s.Completes
	}
	drainSeen := false
	for _, ev := range bus.Tail(64) {
		if ev.Type == obs.EventDrain {
			drainSeen = true
		}
	}
	if !drainSeen {
		return fmt.Errorf("drain-demo: no EventDrain on the bus tail")
	}

	// Undrain restores service: device 0 must take new pastes again.
	node.Undrain(0)
	if node.Draining(0) {
		return fmt.Errorf("drain-demo: device 0 still draining after Undrain")
	}
	for i := 0; i < 64; i++ {
		out, _, cerr := acc.CompressGzip(src)
		if cerr != nil {
			return fmt.Errorf("drain-demo: post-undrain compress: %w", cerr)
		}
		rt, _, derr := acc.DecompressGzip(out)
		if derr != nil || !bytes.Equal(rt, src) {
			return fmt.Errorf("drain-demo: post-undrain round-trip failed: %v", derr)
		}
	}
	if p := node.Device(0).Switchboard().Stats().Pastes; p == pastesAtDrain {
		return fmt.Errorf("drain-demo: device 0 took no work after Undrain")
	}

	fmt.Printf("drain-demo: PASS — drain quiesced with zero dropped in-flight (%d completes across %d devices), survivor stayed byte-exact, undrain restored service\n",
		completed, node.Devices())
	return nil
}
