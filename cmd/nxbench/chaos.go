package main

import (
	"encoding/json"
	"os"

	"nxzip/internal/experiments"
	"nxzip/internal/faultinject"
)

// chaosRun drives the E19 graceful-degradation harness from the -chaos
// flag: "sweep" runs the default fault-rate sweep, anything else is
// resolved by faultinject.ParseProfile (a named profile such as "mild"
// or "fault-storm", or an explicit "class=rate,..." list) and measured
// against the clean baseline. With -json the raw points are exported
// (BENCH_chaos.json in the Makefile).
func chaosRun(profile, jsonPath string) error {
	var (
		t      *experiments.Table
		points []experiments.ChaosPoint
	)
	if profile == "sweep" {
		t, points = experiments.ChaosSweep()
	} else {
		p, err := faultinject.ParseProfile(profile)
		if err != nil {
			return err
		}
		t, points = experiments.ChaosProfile(profile, p)
	}
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
