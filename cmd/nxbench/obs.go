package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/experiments"
	"nxzip/internal/faultinject"
	"nxzip/internal/nx"
	"nxzip/internal/obs"
	"nxzip/internal/stats"
)

// obs.go drives the observability layer from nxbench: -serve runs a
// workload behind the live HTTP exposition server (poll it with nxtop
// or curl), -obs-demo is the self-check behind `make obs-demo`, and
// -obs-overhead measures E20 (exported to BENCH_obs.json with -json).

// obsOpenNode builds the 4-device z15 node the observability modes run
// on, with the chaos-harness recovery budget so injected faults resolve
// in microseconds, and installs injectors when a chaos spec is given.
func obsOpenNode(chaosSpec string) (*nxzip.Node, error) {
	devs := make([]nx.DeviceConfig, 4)
	for i := range devs {
		devs[i] = nx.Z15Device()
		devs[i].Submit = nx.SubmitPolicy{
			MaxFaultRounds:   8,
			MaxPasteAttempts: 1 << 20,
			MaxBackoffWaits:  16,
			BackoffBase:      time.Microsecond,
			BackoffMax:       8 * time.Microsecond,
		}
	}
	node, err := nxzip.OpenNode(nxzip.CustomNode("z15-obs", devs...))
	if err != nil {
		return nil, err
	}
	if chaosSpec != "" {
		p, perr := faultinject.ParseProfile(chaosSpec)
		if perr != nil {
			return nil, perr
		}
		node.InstallInjectors(experiments.Seed, p)
	}
	return node, nil
}

// obsServe runs a continuous compression workload behind the exposition
// server until dur elapses (0 = until interrupted). Combine with -chaos
// to watch quarantine/failover events arrive on /events live.
func obsServe(addr string, dur time.Duration, chaosSpec string) error {
	node, err := obsOpenNode(chaosSpec)
	if err != nil {
		return err
	}
	node.EnableFlightRecorder("") // memory-only: nxtop's flight panel goes live
	srv, err := node.ServeObs(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("nxbench: serving http://%s/{metrics,snapshot,healthz,events}", srv.Addr())
	if chaosSpec != "" {
		fmt.Printf(" with chaos profile %q", chaosSpec)
	}
	if dur > 0 {
		fmt.Printf(" for %v", dur)
	}
	fmt.Println()

	acc := node.View()
	defer acc.Close()
	const chunkSize = 256 << 10
	src := corpus.Generate(corpus.Text, 64*chunkSize, experiments.Seed)
	var deadline time.Time
	if dur > 0 {
		deadline = time.Now().Add(dur)
	}
	var bytes int64
	start := time.Now()
	for i := 0; deadline.IsZero() || time.Now().Before(deadline); i++ {
		off := (i % 64) * chunkSize
		if _, _, cerr := acc.CompressGzip(src[off : off+chunkSize]); cerr != nil {
			return cerr
		}
		bytes += chunkSize
	}
	fmt.Printf("nxbench: served %s of workload in %v (%s)\n",
		stats.Bytes(bytes), time.Since(start).Round(time.Millisecond),
		stats.Rate(float64(bytes)/time.Since(start).Seconds()))
	return nil
}

// obsDemo is the in-process self-check behind `make obs-demo`: run a
// workload behind an ephemeral server, then verify that /metrics is
// parseable Prometheus text whose key series round-trip the snapshot,
// and that /healthz answers 200 on the healthy node.
func obsDemo() error {
	node, err := obsOpenNode("")
	if err != nil {
		return err
	}
	srv, err := node.ServeObs("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	acc := node.View()
	defer acc.Close()
	const chunkSize = 256 << 10
	src := corpus.Generate(corpus.Text, 16*chunkSize, experiments.Seed)
	for i := 0; i < 16; i++ {
		if _, _, cerr := acc.CompressGzip(src[i*chunkSize : (i+1)*chunkSize]); cerr != nil {
			return cerr
		}
	}

	base := "http://" + srv.Addr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs-demo: /metrics status %d", resp.StatusCode)
	}
	series, err := obs.ParseProm(strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("obs-demo: /metrics not parseable: %w", err)
	}
	snap := node.Metrics()
	for _, name := range []string{"nx.requests", "nx.in_bytes", "nx.out_bytes", "vas.pastes"} {
		want := float64(snap.Counter(name, ""))
		got, ok := series[obs.PromSeries(name, "")]
		if !ok {
			return fmt.Errorf("obs-demo: series %s missing from /metrics", obs.PromSeries(name, ""))
		}
		// The workload is quiesced, so the scrape can only be <= the later
		// snapshot — and equal here since nothing runs between them.
		if got != want {
			return fmt.Errorf("obs-demo: %s: /metrics %v != snapshot %v", name, got, want)
		}
		if got <= 0 {
			return fmt.Errorf("obs-demo: %s: expected activity, got %v", name, got)
		}
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs-demo: /healthz status %d on healthy node", hresp.StatusCode)
	}
	fmt.Printf("obs-demo: PASS — %d series scraped, key counters round-trip, /healthz 200\n", len(series))
	return nil
}

// obsOverheadRun renders E20 and, with -json, exports the raw points
// (BENCH_obs.json in the Makefile).
func obsOverheadRun(jsonPath string) error {
	t, points := experiments.ObsOverhead()
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
