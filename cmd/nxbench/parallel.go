package main

// parallel.go implements `nxbench -parallel`: a host-side measurement of
// the pipelined ParallelWriter and parallel Reader against their serial
// counterparts. Two throughputs are reported per configuration:
//
//   - host: wall-clock rate of the Go model on this machine (bounded by
//     GOMAXPROCS — flat on a single-core container);
//   - model: modelled device throughput, where the makespan of a burst is
//     the busiest engine's cycle count. This is the paper's metric — with
//     one engine per worker behind the shared FIFO, it scales with the
//     number of requests kept in flight (claims C2/C3/C6, experiment E6).
//
// The device is configured with Engines = workers so the multi-window
// submission pattern has engines to land on; a single engine serializes
// every request exactly as the silicon does.

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/experiments"
)

const (
	parallelSrcLen = 8 << 20
	parallelRounds = 3
)

func parallelTables() []*experiments.Table {
	return []*experiments.Table{parallelWriterTable(), parallelReaderTable()}
}

// busySnapshot captures each engine's cumulative busy cycles. The count
// comes from the device itself — Engine(i) wraps modulo the engine
// count, so iterating an assumed count would silently re-read engine 0.
func busySnapshot(acc *nxzip.Accelerator) []int64 {
	s := make([]int64, acc.Device().EngineCount())
	for i := range s {
		s[i] = acc.Device().Engine(i).Counters().BusyCycles
	}
	return s
}

// makespan converts the busiest engine's cycle delta to modelled time.
func makespan(acc *nxzip.Accelerator, before []int64) time.Duration {
	var max int64
	for i := range before {
		if d := acc.Device().Engine(i).Counters().BusyCycles - before[i]; d > max {
			max = d
		}
	}
	return acc.PipelineConfig().Time(max)
}

func parallelWriterTable() *experiments.Table {
	src := corpus.Generate(corpus.Text, parallelSrcLen, 17)
	tab := &experiments.Table{
		ID:     "P1",
		Title:  "Serial vs pipelined parallel Writer (8 MiB text, one engine per worker)",
		Header: []string{"chunk", "workers", "host", "model device", "model speedup"},
	}
	for _, chunk := range []int{256 << 10, 1 << 20} {
		var base float64
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := nxzip.P9()
			cfg.Device.Engines = workers
			acc := nxzip.Open(cfg)
			before := busySnapshot(acc)
			start := time.Now()
			for round := 0; round < parallelRounds; round++ {
				var w io.WriteCloser
				if workers == 1 {
					w = acc.NewWriterChunk(io.Discard, chunk)
				} else {
					w = acc.NewParallelWriterChunk(io.Discard, chunk, workers)
				}
				if _, err := w.Write(src); err != nil {
					panic(err)
				}
				if err := w.Close(); err != nil {
					panic(err)
				}
			}
			host := float64(parallelRounds*len(src)) / time.Since(start).Seconds()
			model := float64(parallelRounds*len(src)) / makespan(acc, before).Seconds()
			acc.Close()
			if workers == 1 {
				base = model
			}
			tab.AddRow(
				fmt.Sprintf("%d KiB", chunk>>10),
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.1f MB/s", host/1e6),
				fmt.Sprintf("%.2f GB/s", model/1e9),
				fmt.Sprintf("%.2fx", model/base),
			)
		}
	}
	tab.Note("model speedup is relative to workers=1 at the same chunk size; host MB/s is bounded by this machine's core count")
	return tab
}

func parallelReaderTable() *experiments.Table {
	src := corpus.Generate(corpus.Text, parallelSrcLen, 18)
	tab := &experiments.Table{
		ID:     "P2",
		Title:  "Serial vs parallel multi-member Reader (8 MiB text, 256 KiB members)",
		Header: []string{"workers", "host", "model device", "model speedup"},
	}
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := nxzip.P9()
		cfg.Device.Engines = workers
		acc := nxzip.Open(cfg)
		var comp bytes.Buffer
		w := acc.NewWriterChunk(&comp, 256<<10)
		if _, err := w.Write(src); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		before := busySnapshot(acc)
		start := time.Now()
		for round := 0; round < parallelRounds; round++ {
			r := acc.NewReader(bytes.NewReader(comp.Bytes()))
			r.Workers = workers
			if _, err := io.Copy(io.Discard, r); err != nil {
				panic(err)
			}
		}
		host := float64(parallelRounds*len(src)) / time.Since(start).Seconds()
		model := float64(parallelRounds*len(src)) / makespan(acc, before).Seconds()
		acc.Close()
		if workers == 1 {
			base = model
		}
		tab.AddRow(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.1f MB/s", host/1e6),
			fmt.Sprintf("%.2f GB/s", model/1e9),
			fmt.Sprintf("%.2fx", model/base),
		)
	}
	tab.Note("the parallel Reader skims member boundaries on the host, then decodes members on separate engine contexts")
	return tab
}
