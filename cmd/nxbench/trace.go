package main

import (
	"fmt"
	"io"
	"os"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

// traceDemo runs a representative ParallelWriter workload — 8 MiB of
// log-like data in 1 MiB chunks over 4 worker windows — with the
// request tracer on, writing a Chrome trace_event file and/or the final
// device metrics snapshot. This is the workload `make trace-demo`
// renders; it exercises paste arbitration, FIFO queueing, and the full
// pipeline breakdown on every request.
func traceDemo(tracePath string, printMetrics bool) error {
	acc := nxzip.Open(nxzip.P9())
	defer acc.Close()

	var traceFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		traceFile = f
		acc.StartTrace(telemetry.NewChromeSink(f))
	}

	src := corpus.Generate(corpus.JSONLogs, 8<<20, 1)
	w := acc.NewParallelWriterChunk(io.Discard, 1<<20, 4)
	if _, err := w.Write(src); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	fmt.Printf("trace workload: %s -> %s (ratio %.2f) across %d members\n",
		stats.Bytes(int64(w.Stats.InBytes)), stats.Bytes(int64(w.Stats.OutBytes)),
		w.Stats.Ratio, (len(src)+(1<<20)-1)/(1<<20))

	if traceFile != nil {
		if err := acc.StopTrace(); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", tracePath)
	}
	if printMetrics {
		acc.Metrics().Format(os.Stdout)
	}
	return nil
}
