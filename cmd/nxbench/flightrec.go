package main

// flightrec.go drives the flight recorder from nxbench: -flightrec-demo
// is the end-to-end self-check behind `make flightrec-demo` (traffic →
// forced device failure → failover under one RequestID → postmortem
// bundle → served and verified over /debug/postmortems), and
// -flightrec-overhead measures E22 (exported to BENCH_flightrec.json
// with -json).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"nxzip/internal/corpus"
	"nxzip/internal/experiments"
	"nxzip/internal/faultinject"
	"nxzip/internal/telemetry"
)

// flightrecDemo exercises the whole recorder pipeline in-process:
//
//  1. a 4-device node with the recorder attached runs clean traffic,
//  2. one device is forced offline mid-run so a request re-dispatches,
//  3. the postmortem trigger fires and writes a bundle,
//  4. the bundle is fetched back through /debug/postmortems and checked
//     for the failed request's digest, its per-attempt spans, and the
//     failover/quarantine events — all carrying the same RequestID.
func flightrecDemo() error {
	dir, err := os.MkdirTemp("", "nx-flightrec-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	node, err := obsOpenNode("")
	if err != nil {
		return err
	}
	rec := node.EnableFlightRecorder(dir)
	injs := node.InstallInjectors(experiments.Seed, faultinject.Profile{})
	srv, err := node.ServeObs("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	acc := node.View()
	defer acc.Close()
	const chunkSize = 64 << 10
	src := corpus.Generate(corpus.Text, 32*chunkSize, experiments.Seed)
	chunk := func(i int) []byte { off := (i % 32) * chunkSize; return src[off : off+chunkSize] }

	for i := 0; i < 64; i++ { // clean traffic: digests accumulate
		if _, _, cerr := acc.CompressGzip(chunk(i)); cerr != nil {
			return fmt.Errorf("flightrec-demo: clean request %d: %w", i, cerr)
		}
	}
	if rec.Seq() < 64 {
		return fmt.Errorf("flightrec-demo: expected >=64 digests, have %d", rec.Seq())
	}

	// Kill device 0 and drive traffic until a request survives through
	// failover (Degraded or re-dispatched — both retain spans).
	injs[0].SetOffline(true)
	var survivors int
	for i := 0; i < 64; i++ {
		_, m, cerr := acc.CompressGzip(chunk(i))
		if cerr != nil {
			return fmt.Errorf("flightrec-demo: request %d during outage: %w", i, cerr)
		}
		if m.Redispatches > 0 || m.Degraded {
			survivors++
		}
	}
	if survivors == 0 {
		return fmt.Errorf("flightrec-demo: no request exercised failover with device 0 offline")
	}
	injs[0].SetOffline(false)

	path, err := rec.TriggerPostmortem("flightrec-demo: forced device outage")
	if err != nil {
		return fmt.Errorf("flightrec-demo: trigger: %w", err)
	}
	if path == "" {
		return fmt.Errorf("flightrec-demo: no bundle written")
	}

	// Fetch the bundle back through the server and verify the chain.
	base := "http://" + srv.Addr() + "/debug/postmortems"
	resp, err := http.Get(base)
	if err != nil {
		return err
	}
	var listing struct {
		Count   int64 `json:"count"`
		Bundles []struct {
			Name string `json:"name"`
		} `json:"bundles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("flightrec-demo: listing: %w", err)
	}
	if listing.Count < 1 || len(listing.Bundles) < 1 {
		return fmt.Errorf("flightrec-demo: listing shows no bundles")
	}
	resp, err = http.Get(base + "/" + listing.Bundles[0].Name)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("flightrec-demo: bundle fetch status %d", resp.StatusCode)
	}

	digestReqs := map[uint64]bool{} // failover-affected requests with a digest
	spanReqs := map[uint64]int{}
	eventReqs := map[uint64]bool{}
	var kinds = map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ln struct {
			Kind   string `json:"kind"`
			Digest *struct {
				Req      uint64 `json:"req"`
				Attempts int    `json:"attempts"`
				Outcome  int    `json:"outcome"`
			} `json:"digest"`
			Span *struct {
				Req uint64 `json:"req"`
			} `json:"span"`
			Event *struct {
				Req uint64 `json:"req"`
			} `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			return fmt.Errorf("flightrec-demo: bundle line not JSON: %w", err)
		}
		kinds[ln.Kind]++
		switch ln.Kind {
		case "digest":
			if ln.Digest.Attempts > 1 || ln.Digest.Outcome != int(telemetry.OutcomeOK) {
				digestReqs[ln.Digest.Req] = true
			}
		case "span":
			spanReqs[ln.Span.Req]++
		case "event":
			if ln.Event.Req != 0 {
				eventReqs[ln.Event.Req] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, k := range []string{"meta", "config", "health", "device", "digest", "snapshot"} {
		if kinds[k] == 0 {
			return fmt.Errorf("flightrec-demo: bundle missing %q lines (have %v)", k, kinds)
		}
	}
	// The acceptance chain: at least one failover-affected request whose
	// digest, spans and events all share one RequestID.
	chained := 0
	for req := range digestReqs {
		if spanReqs[req] > 0 && eventReqs[req] {
			chained++
		}
	}
	if chained == 0 {
		return fmt.Errorf("flightrec-demo: no request chains digest+spans+events under one RequestID (digests %d, span-reqs %d, event-reqs %d)",
			len(digestReqs), len(spanReqs), len(eventReqs))
	}

	st := rec.Status()
	fmt.Printf("flightrec-demo: PASS — %d requests digested, %d retained, %d failover survivors, bundle %s: %d digests / %d spans / %d events, %d request(s) fully chained\n",
		st.Requests, st.Retained, survivors, strings.TrimPrefix(path, dir+"/"),
		kinds["digest"], kinds["span"], kinds["event"], chained)
	return nil
}

// flightOverheadRun renders E22 and, with -json, exports the raw points
// (BENCH_flightrec.json in the Makefile).
func flightOverheadRun(jsonPath string) error {
	t, points := experiments.FlightOverhead()
	t.Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
