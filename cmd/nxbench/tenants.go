package main

// tenants.go is nxbench's tenant-accounting side: `-tenants` runs the
// E25 interference experiment (burn-rate paging on the offender's
// label), `-tenants-demo` is the fast end-to-end self-check behind
// `make check` — two labeled tenants, /tenants rows verified, every
// /metrics exemplar RequestID resolved against the flight recorder's
// digest ring.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"time"

	"nxzip"
	"nxzip/internal/admission"
	"nxzip/internal/corpus"
	"nxzip/internal/experiments"
	"nxzip/internal/obs"
)

// tenantsRun drives E25 and optionally exports the result as JSON
// (BENCH_tenants.json in make bench-json).
func tenantsRun(jsonPath string) error {
	t, result := experiments.TenantInterference()
	t.Render(os.Stdout)
	if !result.Summary.BurnFired {
		return fmt.Errorf("tenants: no burn-rate alert fired during interference")
	}
	if !result.Summary.OffenderIsAbuser {
		return fmt.Errorf("tenants: burn alert named %q, not the abusive tenant", result.Summary.Offender)
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// exemplarRe extracts the RequestIDs WriteProm renders as OpenMetrics
// exemplar suffixes.
var exemplarRe = regexp.MustCompile(`# \{req_id="(\d+)"\}`)

// tenantsDemo is the in-process self-check: run labeled traffic from
// two prioritised tenants behind an ephemeral server, then verify that
// /tenants carries both tenants' rows with quota standing, that the
// labeled latency series appear in /metrics with exemplars, and that
// every exemplar RequestID resolves to a digest in the flight
// recorder's ring.
func tenantsDemo() error {
	cfg := nxzip.P9Node(1)
	cfg.TableMode = nxzip.TableFixed
	node, err := nxzip.OpenNode(cfg)
	if err != nil {
		return err
	}

	node.EnableAdmission(admission.Config{})
	rec := node.EnableFlightRecorder("")
	srv, err := node.ServeObsConfig("127.0.0.1:0", nxzip.ObsConfig{
		SampleInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	inter := node.View()
	defer inter.Close()
	inter.SetPriority(admission.Interactive)
	inter.SetQuotaWeight(2)
	batch := node.View()
	defer batch.Close()
	batch.SetPriority(admission.Batch)
	batch.SetQuotaWeight(1)

	const chunk = 32 << 10
	src := corpus.Generate(corpus.JSONLogs, 8*chunk, experiments.Seed)
	for i := 0; i < 64; i++ {
		view := inter
		if i%2 == 1 {
			view = batch
		}
		off := (i % 8) * chunk
		if _, _, cerr := view.CompressGzip(src[off : off+chunk]); cerr != nil {
			return cerr
		}
	}
	// Let the sampler produce a window covering the traffic.
	time.Sleep(120 * time.Millisecond)

	base := "http://" + srv.Addr()
	resp, err := http.Get(base + "/tenants")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tenants-demo: /tenants status %d", resp.StatusCode)
	}
	var doc obs.TenantsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("tenants-demo: /tenants not parseable: %w", err)
	}
	for _, v := range []*nxzip.Accelerator{inter, batch} {
		label := nxzip.TenantLabel(v.TenantID())
		found := false
		for _, row := range doc.Tenants {
			if row.Tenant != label {
				continue
			}
			found = true
			if row.Weight == 0 {
				return fmt.Errorf("tenants-demo: row %s missing quota weight", label)
			}
		}
		if !found {
			return fmt.Errorf("tenants-demo: /tenants has no row for %s (rows: %d)", label, len(doc.Tenants))
		}
	}
	if len(doc.Burn) == 0 {
		return fmt.Errorf("tenants-demo: /tenants carries no burn-rate evaluation")
	}
	for _, a := range doc.Burn {
		if a.Firing {
			return fmt.Errorf("tenants-demo: burn alert %s/%s firing on an idle healthy node", a.SLO, a.Speed)
		}
	}

	// /metrics must expose the labeled latency family with exemplars,
	// and every exemplar RequestID must resolve to a held digest.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	text := string(mbody)
	if !regexp.MustCompile(`nxzip_tenant_latency_us_bucket\{label="t\d+/`).MatchString(text) {
		return fmt.Errorf("tenants-demo: /metrics has no labeled tenant latency buckets")
	}
	matches := exemplarRe.FindAllStringSubmatch(text, -1)
	if len(matches) == 0 {
		return fmt.Errorf("tenants-demo: /metrics carries no exemplars")
	}
	held := make(map[uint64]bool)
	for _, d := range rec.Digests(0) {
		held[d.Req] = true
	}
	for _, m := range matches {
		req, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil || req == 0 {
			return fmt.Errorf("tenants-demo: bad exemplar req_id %q", m[1])
		}
		if !held[req] {
			return fmt.Errorf("tenants-demo: exemplar req %d resolves to no digest", req)
		}
	}
	fmt.Printf("tenants-demo: PASS — %d tenant rows, %d exemplars all resolved to digests, burn evaluation quiet\n",
		len(doc.Tenants), len(matches))
	return nil
}
