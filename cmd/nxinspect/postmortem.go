package main

// postmortem.go is nxinspect's flight-recorder side: it reads a
// postmortem bundle (the JSONL file internal/flightrec writes when the
// SLO engine flips unhealthy) and renders the incident as a report —
// what triggered, the device table at that moment, the recent request
// digests, and the retained spans chained per RequestID. With -req it
// narrows to one request's full history: digest, every dispatch
// attempt's span, and the events that carry its ID.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nxzip/internal/obs"
	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

// pmSpan mirrors the telemetry span's JSON line shape (the subset the
// report prints).
type pmSpan struct {
	ID           uint64 `json:"id"`
	Req          uint64 `json:"req"`
	Hop          int    `json:"hop"`
	Tenant       uint64 `json:"tenant"`
	Priority     string `json:"priority"`
	Op           string `json:"op"`
	Engine       int    `json:"engine"`
	HostNs       int64  `json:"host_ns"`
	InBytes      int    `json:"in_bytes"`
	OutBytes     int    `json:"out_bytes"`
	CC           string `json:"cc"`
	Retries      int    `json:"retries"`
	DeviceCycles int64  `json:"device_cycles"`
	Stages       []struct {
		Stage   string `json:"stage"`
		DurNs   int64  `json:"dur_ns"`
		Cycles  int64  `json:"cycles"`
		Attempt int    `json:"attempt"`
	} `json:"stages"`
}

// pmBundleLine is one JSONL line of a bundle.
type pmBundleLine struct {
	Kind    string            `json:"kind"`
	Time    time.Time         `json:"time"`
	Reason  string            `json:"reason"`
	Ordinal int64             `json:"ordinal"`
	Seq     uint64            `json:"seq"`
	Config  json.RawMessage   `json:"config"`
	Health  json.RawMessage   `json:"health"`
	Device  *obs.DeviceStatus `json:"device"`
	Digest  *telemetry.Digest `json:"digest"`
	Span    *pmSpan           `json:"span"`
	Event   *obs.Event        `json:"event"`
}

// openBundle resolves source — a bundle file, a directory of bundles
// (newest picked), "-" for stdin, or an http(s) URL — into a reader.
func openBundle(source string) (io.ReadCloser, string, error) {
	if source == "-" {
		return io.NopCloser(os.Stdin), "stdin", nil
	}
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		resp, err := http.Get(source)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, "", fmt.Errorf("GET %s: status %d", source, resp.StatusCode)
		}
		return resp.Body, source, nil
	}
	fi, err := os.Stat(source)
	if err != nil {
		return nil, "", err
	}
	path := source
	if fi.IsDir() {
		ents, err := os.ReadDir(source)
		if err != nil {
			return nil, "", err
		}
		var names []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasPrefix(e.Name(), "postmortem-") && strings.HasSuffix(e.Name(), ".jsonl") {
				names = append(names, e.Name())
			}
		}
		if len(names) == 0 {
			return nil, "", fmt.Errorf("no postmortem bundles in %s", source)
		}
		sort.Strings(names)
		path = filepath.Join(source, names[len(names)-1]) // newest
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	return f, path, nil
}

// runPostmortem reads and renders one bundle; req narrows the report to
// a single RequestID when nonzero; tenant narrows digests, spans and
// events to one view identity when nonzero.
func runPostmortem(source string, req, tenant uint64) error {
	in, name, err := openBundle(source)
	if err != nil {
		return err
	}
	defer in.Close()

	var (
		meta    *pmBundleLine
		config  json.RawMessage
		health  json.RawMessage
		devices []*obs.DeviceStatus
		digests []*telemetry.Digest
		spans   []*pmSpan
		events  []*obs.Event
	)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ln pmBundleLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			return fmt.Errorf("%s: line %d: %w", name, lineNo, err)
		}
		switch ln.Kind {
		case "meta":
			l := ln
			meta = &l
		case "config":
			config = ln.Config
		case "health":
			health = ln.Health
		case "device":
			devices = append(devices, ln.Device)
		case "digest":
			digests = append(digests, ln.Digest)
		case "span":
			spans = append(spans, ln.Span)
		case "event":
			events = append(events, ln.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	if tenant != 0 {
		dg := digests[:0]
		for _, d := range digests {
			if d.Tenant == tenant {
				dg = append(dg, d)
			}
		}
		digests = dg
		sp := spans[:0]
		for _, s := range spans {
			if s.Tenant == tenant {
				sp = append(sp, s)
			}
		}
		spans = sp
		ev := events[:0]
		for _, e := range events {
			if e.Tenant == tenant {
				ev = append(ev, e)
			}
		}
		events = ev
	}

	fmt.Printf("postmortem: %s\n", name)
	if tenant != 0 {
		fmt.Printf("tenant:     t%d (rows filtered)\n", tenant)
	}
	if meta != nil {
		fmt.Printf("triggered:  %s  (#%d, %d requests digested)\n",
			meta.Time.Format(time.RFC3339), meta.Ordinal, meta.Seq)
		fmt.Printf("reason:     %s\n", meta.Reason)
	}
	if len(config) > 0 {
		fmt.Printf("config:     %s\n", compactJSON(config))
	}
	if len(health) > 0 {
		fmt.Printf("health:     %s\n", compactJSON(health))
	}

	if req != 0 {
		printRequest(req, digests, spans, events)
		return nil
	}

	if len(devices) > 0 {
		fmt.Printf("\n%-14s %-5s %10s %10s %6s %5s\n", "device", "state", "dispatched", "requests", "util%", "quar")
		for _, d := range devices {
			st := "ok"
			if !d.Healthy {
				st = "QUAR"
			}
			fmt.Printf("%-14s %-5s %10d %10d %6.1f %5d\n",
				d.Label, st, d.Dispatched, d.Requests, 100*d.Util, d.Quarantines)
		}
	}

	// Digest summary: totals by outcome, then the interesting tail.
	var ok, degraded, errored, shed int
	for _, d := range digests {
		switch d.Outcome {
		case telemetry.OutcomeOK:
			ok++
		case telemetry.OutcomeDegraded:
			degraded++
		case telemetry.OutcomeError:
			errored++
		case telemetry.OutcomeShed:
			shed++
		}
	}
	fmt.Printf("\ndigests: %d held (%d ok, %d degraded, %d error, %d shed)\n", len(digests), ok, degraded, errored, shed)
	interesting := make([]*telemetry.Digest, 0, len(digests))
	for _, d := range digests {
		if d.Outcome != telemetry.OutcomeOK || d.Attempts > 1 {
			interesting = append(interesting, d)
		}
	}
	show := interesting
	header := "interesting (non-ok or re-dispatched)"
	if len(show) == 0 {
		// All clean: show the slowest few instead.
		sorted := append([]*telemetry.Digest(nil), digests...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].TotalUS > sorted[j].TotalUS })
		if len(sorted) > 10 {
			sorted = sorted[:10]
		}
		show = sorted
		header = "slowest"
	} else if len(show) > 20 {
		show = show[len(show)-20:]
	}
	if len(show) > 0 {
		fmt.Printf("\n%s:\n%-8s %-16s %-12s %-14s %-7s %-11s %10s %10s %8s %4s %-8s\n",
			header, "req", "op", "codec", "device", "tenant", "prio", "total-µs", "queue-µs", "in", "att", "outcome")
		for _, d := range show {
			codec := d.Codec
			if codec == "" {
				codec = "-"
			}
			fmt.Printf("%-8d %-16s %-12s %-14s %-7s %-11s %10.0f %10.0f %8s %4d %-8s\n",
				d.Req, d.Op, codec, d.Device, tenantCol(d.Tenant), prioCol(d.Priority),
				d.TotalUS, d.QueueUS,
				stats.Bytes(int64(d.InBytes)), d.Attempts, d.Outcome.String())
		}
	}

	fmt.Printf("\nretained spans: %d (rerun with -req <id> for one request's full history)\n", len(spans))
	if len(events) > 0 {
		fmt.Printf("\nevents (last %d):\n", len(events))
		for _, e := range events {
			if e.Req != 0 {
				fmt.Printf("  %s  %-11s %-14s req=%d %s\n", e.Time.Format("15:04:05.000"), e.Type, e.Device, e.Req, e.Detail)
			} else {
				fmt.Printf("  %s  %-11s %-14s %s\n", e.Time.Format("15:04:05.000"), e.Type, e.Device, e.Detail)
			}
		}
	}
	return nil
}

// tenantCol / prioCol render the digest identity columns ("-" when the
// request predates tenant stamping or came from a raw context).
func tenantCol(id uint64) string {
	if id == 0 {
		return "-"
	}
	return fmt.Sprintf("t%d", id)
}

func prioCol(p string) string {
	if p == "" {
		return "-"
	}
	return p
}

// printRequest renders one request's chained history: its digest, each
// dispatch attempt's span (ordered by hop), and its events.
func printRequest(req uint64, digests []*telemetry.Digest, spans []*pmSpan, events []*obs.Event) {
	fmt.Printf("\nrequest %d:\n", req)
	found := false
	for _, d := range digests {
		if d.Req != req {
			continue
		}
		found = true
		fmt.Printf("  digest: op=%s codec=%s device=%s tenant=%s prio=%s total=%.0fµs queue=%.0fµs in=%s out=%s cycles=%d attempts=%d outcome=%s\n",
			d.Op, d.Codec, d.Device, tenantCol(d.Tenant), prioCol(d.Priority), d.TotalUS, d.QueueUS,
			stats.Bytes(int64(d.InBytes)), stats.Bytes(int64(d.OutBytes)),
			d.EngineCycles, d.Attempts, d.Outcome.String())
	}
	if !found {
		fmt.Println("  (no digest held — request predates the ring window)")
	}
	var mine []*pmSpan
	for _, s := range spans {
		if s.Req == req {
			mine = append(mine, s)
		}
	}
	sort.SliceStable(mine, func(i, j int) bool { return mine[i].Hop < mine[j].Hop })
	for _, s := range mine {
		fmt.Printf("  span hop=%d op=%s engine=%d cc=%s host=%s cycles=%d retries=%d in=%s out=%s\n",
			s.Hop, s.Op, s.Engine, s.CC, time.Duration(s.HostNs), s.DeviceCycles, s.Retries,
			stats.Bytes(int64(s.InBytes)), stats.Bytes(int64(s.OutBytes)))
		for _, st := range s.Stages {
			fmt.Printf("    %-10s %12s %10d cycles  (attempt %d)\n",
				st.Stage, time.Duration(st.DurNs), st.Cycles, st.Attempt)
		}
	}
	if len(mine) == 0 {
		fmt.Println("  (no spans retained — request was not tail-sampled)")
	}
	for _, e := range events {
		if e.Req != req {
			continue
		}
		fmt.Printf("  event %s %-11s %-14s %s\n", e.Time.Format("15:04:05.000"), e.Type, e.Device, e.Detail)
	}
}

func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}
