// Command nxinspect dumps the block structure of a DEFLATE / gzip / zlib
// stream: block types, header and payload bit costs, symbol mix, and
// per-block compression ratio. It is the forensic companion to nxzip —
// "why is this stream the size it is?".
//
// With -postmortem it instead reads a flight-recorder postmortem bundle
// (written by EnableFlightRecorder when the SLO engine flips unhealthy)
// and renders the incident report; -req narrows to one request's full
// chained history (digest, per-attempt spans, correlated events).
//
// Usage:
//
//	nxinspect file.gz
//	nxzip corpus.txt | nxinspect
//	nxinspect -postmortem /var/tmp/nx-postmortems            # newest bundle in dir
//	nxinspect -postmortem postmortem-0...1.jsonl -req 42     # one request
//	nxinspect -postmortem postmortem-0...1.jsonl -tenant 3   # one tenant's rows
//	nxinspect -postmortem http://127.0.0.1:8090/debug/postmortems/postmortem-0...1.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nxzip/internal/deflate"
	"nxzip/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nxinspect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	maxOut := flag.Int("max", 1<<30, "decompressed size bound")
	postmortem := flag.String("postmortem", "", "read a postmortem bundle (file, directory of bundles, '-', or URL) instead of a stream")
	reqID := flag.Uint64("req", 0, "with -postmortem: narrow the report to one RequestID")
	tenant := flag.Uint64("tenant", 0, "with -postmortem: narrow digests, spans and events to one tenant (view identity)")
	flag.Parse()

	if *postmortem != "" {
		return runPostmortem(*postmortem, *reqID, *tenant)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}

	raw, framing, err := unframe(src)
	if err != nil {
		return err
	}
	fmt.Printf("framing: %s, %s compressed\n", framing, stats.Bytes(int64(len(src))))

	for member := 0; ; member++ {
		infos, err := deflate.InspectStream(raw, *maxOut)
		if err != nil {
			return err
		}
		printMember(member, infos)
		if framing != "gzip" {
			return nil
		}
		rest, err := nextGzipMember(src, member+1)
		if err != nil || rest == nil {
			return nil
		}
		raw = rest
	}
}

// unframe strips gzip/zlib framing when present, returning the first
// member's payload for gzip (the caller iterates further members).
func unframe(src []byte) ([]byte, string, error) {
	if len(src) >= 2 && src[0] == 0x1F && src[1] == 0x8B {
		first, err := nextGzipMember(src, 0)
		if err != nil {
			return nil, "", err
		}
		if first == nil {
			return nil, "", fmt.Errorf("no gzip member found")
		}
		return first, "gzip", nil
	}
	if body, _, err := deflate.ZlibUnwrap(src); err == nil {
		return body, "zlib", nil
	}
	return src, "raw deflate", nil
}

// nextGzipMember returns the payload of member index n, or nil when the
// stream has fewer members.
func nextGzipMember(src []byte, n int) ([]byte, error) {
	rest := src
	for i := 0; ; i++ {
		hlen, err := deflate.ParseGzipHeader(rest)
		if err != nil {
			return nil, nil // no more members
		}
		_, consumed, err := deflate.DecompressTail(rest[hlen:], deflate.InflateOptions{})
		if err != nil {
			return nil, err
		}
		if i == n {
			return rest[hlen : hlen+consumed], nil
		}
		end := hlen + consumed + 8
		if end >= len(rest) {
			return nil, nil
		}
		rest = rest[end:]
	}
}

func printMember(member int, infos []deflate.BlockInfo) {
	fmt.Printf("member %d: %d block(s)\n", member, len(infos))
	fmt.Printf("  %-3s %-8s %-6s %10s %12s %9s %9s %11s %8s\n",
		"#", "type", "final", "hdr bits", "data bits", "literals", "matches", "match bytes", "ratio")
	for _, b := range infos {
		inBits := b.HeaderBits + b.DataBits
		ratio := float64(b.OutBytes*8) / float64(max(inBits, 1))
		fmt.Printf("  %-3d %-8s %-6v %10d %12d %9d %9d %11d %7.2fx\n",
			b.Index, b.TypeName(), b.Final, b.HeaderBits, b.DataBits,
			b.Literals, b.Matches, b.MatchBytes, ratio)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
