// Command nxsim runs system-level what-if simulations on the queueing
// model: accelerator counts, tenant counts, arrival rates and request
// sizes, printing throughput and latency percentiles. It is the free-form
// companion to the fixed experiments in nxbench.
//
// Usage:
//
//	nxsim -accels 4 -tenants 32 -size 262144 -rate 20000 -dur 10
//	nxsim -closed -tenants 64 -think 100us
//	nxsim -serve :8091 -rate 20000        # repeated rounds behind the obs HTTP server
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nxzip/internal/obs"
	"nxzip/internal/queueing"
	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

func main() {
	var (
		accels   = flag.Int("accels", 1, "number of accelerators")
		tenants  = flag.Int("tenants", 1, "number of tenants/clients")
		size     = flag.Int("size", 1<<20, "request size in bytes")
		rate     = flag.Float64("rate", 0, "open arrival rate (req/s); 0 = closed loop")
		think    = flag.Duration("think", 0, "closed-loop think time")
		dur      = flag.Float64("dur", 10, "simulated seconds")
		overhead = flag.Duration("overhead", 5*time.Microsecond, "per-request fixed cost")
		gbps     = flag.Float64("gbps", 7.5, "per-accelerator line rate, GB/s")
		queueCap = flag.Int("qcap", 0, "receive FIFO bound (0 = unbounded)")
		seed     = flag.Int64("seed", 1, "rng seed")
		serve    = flag.String("serve", "", "serve /metrics,/snapshot,/healthz over repeated simulation rounds on this address (e.g. :8091)")
		serveDur = flag.Duration("serve-dur", 0, "how long -serve keeps simulating (0 = until interrupted)")
	)
	flag.Parse()

	cfg := queueing.Config{
		Servers:  *accels,
		Duration: *dur,
		Seed:     *seed,
		Sources:  *tenants,
		QueueCap: *queueCap,
		Service:  queueing.AcceleratorService(overheadSec(*overhead), *gbps*1e9),
	}
	if *serve != "" {
		if err := serveSim(*serve, *serveDur, cfg, *rate, *tenants, *think, *size); err != nil {
			fmt.Fprintf(os.Stderr, "nxsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var res queueing.Result
	mode := ""
	if *rate > 0 {
		res = queueing.SimulateOpen(cfg, *rate, queueing.FixedSize(*size))
		mode = fmt.Sprintf("open arrivals @ %.0f req/s", *rate)
	} else {
		res = queueing.SimulateClosed(cfg, *tenants, think.Seconds(), queueing.FixedSize(*size))
		mode = fmt.Sprintf("closed loop, think %v", *think)
	}

	fmt.Printf("nxsim: %d accel x %s line rate, %d tenants, %s requests, %s, %gs simulated\n",
		*accels, stats.Rate(*gbps*1e9), *tenants, stats.Bytes(int64(*size)), mode, *dur)
	fmt.Printf("  completed    %d requests (%d rejected)\n", res.Completed, res.Rejected)
	fmt.Printf("  throughput   %s\n", stats.Rate(res.Throughput))
	fmt.Printf("  latency      p50 %s  p95 %s  p99 %s  max %s\n",
		durOf(res.Latency.Percentile(50)), durOf(res.Latency.Percentile(95)),
		durOf(res.Latency.Percentile(99)), durOf(res.Latency.Percentile(100)))
	fmt.Printf("  mean queue   %.1f requests\n", res.MeanQueueLen)
	for i, u := range res.Utilization {
		fmt.Printf("  accel[%d]     %.1f%% busy\n", i, u*100)
	}
	if res.Completed == 0 {
		fmt.Fprintln(os.Stderr, "nxsim: nothing completed — check rate/duration")
		os.Exit(1)
	}
}

// serveSim runs simulation rounds in a loop, folding each round's
// results into a telemetry registry served over the observability HTTP
// endpoints — a self-contained metrics source for exercising nxtop and
// scrapers without real devices. Counters reuse the device namespace
// (nx.requests, nx.in_bytes, nx.out_bytes) so the same dashboards read
// both; the latency distribution lands in nx.queue_wait_us via its
// per-round percentile profile (100 representative samples per round).
func serveSim(addr string, dur time.Duration, base queueing.Config, rate float64, tenants int, think time.Duration, size int) error {
	reg := telemetry.NewRegistry()
	requests := reg.Counter("nx.requests")
	inBytes := reg.Counter("nx.in_bytes")
	outBytes := reg.Counter("nx.out_bytes")
	rejects := reg.Counter("vas.fifo_rejects")
	queueWait := reg.Histogram("nx.queue_wait_us")
	rounds := reg.Counter("nxsim.rounds")

	srv := obs.NewServer(obs.Options{
		Addr:     addr,
		Name:     "nxsim",
		Snapshot: reg.Snapshot,
		Health:   func() (healthy, total int) { return base.Servers, base.Servers },
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("nxsim: serving http://%s/{metrics,snapshot,healthz}\n", srv.Addr())

	var deadline time.Time
	if dur > 0 {
		deadline = time.Now().Add(dur)
	}
	for round := int64(0); deadline.IsZero() || time.Now().Before(deadline); round++ {
		cfg := base
		cfg.Seed = base.Seed + round
		var res queueing.Result
		if rate > 0 {
			res = queueing.SimulateOpen(cfg, rate, queueing.FixedSize(size))
		} else {
			res = queueing.SimulateClosed(cfg, tenants, think.Seconds(), queueing.FixedSize(size))
		}
		requests.Add(res.Completed)
		inBytes.Add(res.BytesServed)
		// The queueing model moves bytes, it does not compress them; report
		// output at the paper's nominal ~2:1 text ratio so rate panels show
		// both directions.
		outBytes.Add(res.BytesServed / 2)
		rejects.Add(res.Rejected)
		for p := 1; p <= 100; p++ {
			queueWait.Observe(res.Latency.Percentile(float64(p)) * 1e6)
		}
		rounds.Inc()
		time.Sleep(200 * time.Millisecond)
	}
	return nil
}

func overheadSec(d time.Duration) float64 { return d.Seconds() }

func durOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond)
}
