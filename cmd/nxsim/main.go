// Command nxsim runs system-level what-if simulations on the queueing
// model: accelerator counts, tenant counts, arrival rates and request
// sizes, printing throughput and latency percentiles. It is the free-form
// companion to the fixed experiments in nxbench.
//
// Usage:
//
//	nxsim -accels 4 -tenants 32 -size 262144 -rate 20000 -dur 10
//	nxsim -closed -tenants 64 -think 100us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nxzip/internal/queueing"
	"nxzip/internal/stats"
)

func main() {
	var (
		accels   = flag.Int("accels", 1, "number of accelerators")
		tenants  = flag.Int("tenants", 1, "number of tenants/clients")
		size     = flag.Int("size", 1<<20, "request size in bytes")
		rate     = flag.Float64("rate", 0, "open arrival rate (req/s); 0 = closed loop")
		think    = flag.Duration("think", 0, "closed-loop think time")
		dur      = flag.Float64("dur", 10, "simulated seconds")
		overhead = flag.Duration("overhead", 5*time.Microsecond, "per-request fixed cost")
		gbps     = flag.Float64("gbps", 7.5, "per-accelerator line rate, GB/s")
		queueCap = flag.Int("qcap", 0, "receive FIFO bound (0 = unbounded)")
		seed     = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	cfg := queueing.Config{
		Servers:  *accels,
		Duration: *dur,
		Seed:     *seed,
		Sources:  *tenants,
		QueueCap: *queueCap,
		Service:  queueing.AcceleratorService(overheadSec(*overhead), *gbps*1e9),
	}
	var res queueing.Result
	mode := ""
	if *rate > 0 {
		res = queueing.SimulateOpen(cfg, *rate, queueing.FixedSize(*size))
		mode = fmt.Sprintf("open arrivals @ %.0f req/s", *rate)
	} else {
		res = queueing.SimulateClosed(cfg, *tenants, think.Seconds(), queueing.FixedSize(*size))
		mode = fmt.Sprintf("closed loop, think %v", *think)
	}

	fmt.Printf("nxsim: %d accel x %s line rate, %d tenants, %s requests, %s, %gs simulated\n",
		*accels, stats.Rate(*gbps*1e9), *tenants, stats.Bytes(int64(*size)), mode, *dur)
	fmt.Printf("  completed    %d requests (%d rejected)\n", res.Completed, res.Rejected)
	fmt.Printf("  throughput   %s\n", stats.Rate(res.Throughput))
	fmt.Printf("  latency      p50 %s  p95 %s  p99 %s  max %s\n",
		durOf(res.Latency.Percentile(50)), durOf(res.Latency.Percentile(95)),
		durOf(res.Latency.Percentile(99)), durOf(res.Latency.Percentile(100)))
	fmt.Printf("  mean queue   %.1f requests\n", res.MeanQueueLen)
	for i, u := range res.Utilization {
		fmt.Printf("  accel[%d]     %.1f%% busy\n", i, u*100)
	}
	if res.Completed == 0 {
		fmt.Fprintln(os.Stderr, "nxsim: nothing completed — check rate/duration")
		os.Exit(1)
	}
}

func overheadSec(d time.Duration) float64 { return d.Seconds() }

func durOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond)
}
