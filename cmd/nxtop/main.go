// Command nxtop is a polling terminal dashboard over the observability
// server's /snapshot endpoint: per-device utilization, credits, queue
// depth, windowed throughput and request rates, SLO verdicts and the
// recent event tail, refreshed in place like top(1).
//
// Point it at anything exporting the endpoints — `nxbench -serve :8090`,
// `nxsim -serve :8091`, or an application embedding Node.ServeObs:
//
//	nxtop -addr 127.0.0.1:8090
//	nxtop -addr 127.0.0.1:8090 -interval 500ms
//	nxtop -n 3 -plain            # three frames, no screen clearing (for logs/CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nxzip/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "observability server address")
		interval = flag.Duration("interval", time.Second, "poll interval")
		frames   = flag.Int("n", 0, "number of frames to draw (0 = until interrupted)")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place (no ANSI escapes)")
	)
	flag.Parse()
	if err := run(*addr, *interval, *frames, *plain); err != nil {
		fmt.Fprintf(os.Stderr, "nxtop: %v\n", err)
		os.Exit(1)
	}
}

// fetch polls one StatusDoc from the server.
func fetch(client *http.Client, url string) (*obs.StatusDoc, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc obs.StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	return &doc, nil
}

func run(addr string, interval time.Duration, frames int, plain bool) error {
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/snapshot"
	client := &http.Client{Timeout: 5 * time.Second}
	var prev *obs.StatusDoc
	for i := 0; frames == 0 || i < frames; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		cur, err := fetch(client, url)
		if err != nil {
			// The first poll failing means the target isn't there; mid-run
			// failures (server restarting, transient refusals) just skip a
			// frame and keep polling.
			if prev == nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "nxtop: %v (retrying)\n", err)
			continue
		}
		if !plain {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		obs.RenderText(os.Stdout, prev, cur)
		if plain {
			fmt.Println()
		}
		prev = cur
	}
	return nil
}
