// Command nxverify is the repository's differential verification harness:
// it cross-checks every encoder/decoder pair in this codebase against
// Go's standard library on randomized workloads and prints a pass/fail
// summary. It exists so the correctness claims in README.md can be
// re-established in one command on any machine:
//
//	go run ./cmd/nxverify -trials 200 -seed 42
//
// Checks per trial:
//
//	sw-enc/std-dec    our software DEFLATE decoded by compress/flate
//	hw-enc/std-dec    the accelerator model's gzip decoded by compress/gzip
//	std-enc/our-dec   stdlib flate/gzip streams decoded by our inflater
//	session           chunked Session decode equals one-shot
//	842               842 round-trip
//	checksums         CRC32/Adler-32 equality with hash/crc32, hash/adler32
package main

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"flag"
	"fmt"
	"hash/adler32"
	"hash/crc32"
	"io"
	"math/rand"
	"os"

	"nxzip"
	"nxzip/internal/checksum"
	"nxzip/internal/corpus"
	"nxzip/internal/deflate"
	"nxzip/internal/x842"
)

type tally struct {
	name string
	runs int
	fail int
	note string
}

func main() {
	trials := flag.Int("trials", 100, "randomized trials per check")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	acc := nxzip.Open(nxzip.P9())
	defer acc.Close()

	checks := []*tally{
		{name: "sw-enc/std-dec"},
		{name: "hw-enc/std-dec"},
		{name: "std-enc/our-dec"},
		{name: "session=oneshot"},
		{name: "842 roundtrip"},
		{name: "checksums"},
		{name: "stream w/r"},
		{name: "dict fdict"},
		{name: "parallel pigz"},
	}

	kinds := corpus.Kinds()
	for i := 0; i < *trials; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		size := rng.Intn(256<<10) + 1
		src := corpus.Generate(kind, size, rng.Int63())

		run(checks[0], func() bool {
			level := rng.Intn(9) + 1
			comp, err := deflate.Compress(src, deflate.Options{Level: level})
			if err != nil {
				return false
			}
			got, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
			return err == nil && bytes.Equal(got, src)
		})

		run(checks[1], func() bool {
			gz, _, err := acc.CompressGzip(src)
			if err != nil {
				return false
			}
			zr, err := gzip.NewReader(bytes.NewReader(gz))
			if err != nil {
				return false
			}
			got, err := io.ReadAll(zr)
			return err == nil && bytes.Equal(got, src)
		})

		run(checks[2], func() bool {
			var buf bytes.Buffer
			fw, _ := flate.NewWriter(&buf, rng.Intn(10))
			fw.Write(src)
			fw.Close()
			got, err := deflate.Decompress(buf.Bytes(), deflate.InflateOptions{})
			return err == nil && bytes.Equal(got, src)
		})

		run(checks[3], func() bool {
			comp, err := deflate.Compress(src, deflate.Options{BlockSize: 16 << 10})
			if err != nil {
				return false
			}
			s := deflate.NewSession(deflate.InflateOptions{})
			var out []byte
			chunk := rng.Intn(4096) + 1
			for off := 0; off < len(comp); off += chunk {
				end := off + chunk
				if end > len(comp) {
					end = len(comp)
				}
				o, err := s.Feed(comp[off:end], end == len(comp))
				if err != nil {
					return false
				}
				out = append(out, o...)
			}
			return bytes.Equal(out, src)
		})

		run(checks[4], func() bool {
			comp := x842.Compress(src)
			got, err := x842.Decompress(comp, 0)
			return err == nil && bytes.Equal(got, src)
		})

		run(checks[5], func() bool {
			return checksum.Sum32(src) == crc32.ChecksumIEEE(src) &&
				checksum.SumAdler32(src) == adler32.Checksum(src)
		})

		run(checks[6], func() bool {
			var gzb bytes.Buffer
			w := acc.NewStreamWriterChunk(&gzb, rng.Intn(64<<10)+4096)
			if _, err := w.Write(src); err != nil {
				return false
			}
			if err := w.Close(); err != nil {
				return false
			}
			sr := acc.NewStreamReader(bytes.NewReader(gzb.Bytes()), len(src)+1024)
			got, err := io.ReadAll(sr)
			if err != nil || !bytes.Equal(got, src) {
				return false
			}
			// stdlib agrees.
			zr, err := gzip.NewReader(bytes.NewReader(gzb.Bytes()))
			if err != nil {
				return false
			}
			sgot, err := io.ReadAll(zr)
			return err == nil && bytes.Equal(sgot, src)
		})

		run(checks[7], func() bool {
			dict := corpus.Generate(kind, 8<<10, rng.Int63())
			comp, err := deflate.CompressZlibDict(src, dict, deflate.Options{})
			if err != nil {
				return false
			}
			got, err := deflate.DecompressZlibDict(comp, dict, deflate.InflateOptions{})
			return err == nil && bytes.Equal(got, src)
		})

		run(checks[8], func() bool {
			comp, err := deflate.CompressGzipParallel(src, 6, 4, 32<<10)
			if err != nil {
				return false
			}
			got, err := deflate.DecompressGzipMulti(comp, deflate.InflateOptions{})
			return err == nil && bytes.Equal(got, src)
		})
	}

	exit := 0
	fmt.Printf("nxverify: %d trials, seed %d\n", *trials, *seed)
	for _, c := range checks {
		status := "PASS"
		if c.fail > 0 {
			status = "FAIL"
			exit = 1
		}
		fmt.Printf("  %-16s %s  (%d/%d ok)%s\n", c.name, status, c.runs-c.fail, c.runs, c.note)
	}
	os.Exit(exit)
}

func run(t *tally, f func() bool) {
	t.runs++
	defer func() {
		if r := recover(); r != nil {
			t.fail++
			t.note = fmt.Sprintf("  PANIC: %v", r)
		}
	}()
	if !f() {
		t.fail++
	}
}
