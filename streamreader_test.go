package nxzip

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"nxzip/internal/corpus"
)

func TestStreamReaderRoundTrip(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 3<<20, 70)
	var gz bytes.Buffer
	w := acc.NewStreamWriterChunk(&gz, 256<<10)
	w.Write(src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := acc.NewStreamReader(bytes.NewReader(gz.Bytes()), len(src)+1024)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("mismatch: %d vs %d bytes", len(got), len(src))
	}
	if r.Stats.DeviceCycles <= 0 {
		t.Fatal("no device accounting")
	}
	if r.Stats.OutBytes != len(src) {
		t.Fatalf("out bytes %d", r.Stats.OutBytes)
	}
}

func TestStreamReaderStdlibInput(t *testing.T) {
	// Streams produced by stdlib gzip decode incrementally too.
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.JSONLogs, 1<<20, 71)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Name = "logs.json"
	zw.Write(src)
	zw.Close()
	r := acc.NewStreamReader(bytes.NewReader(gz.Bytes()), 0)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
}

func TestStreamReaderSmallReads(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Source, 200<<10, 72)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	r := acc.NewStreamReader(bytes.NewReader(gz), 0)
	var got []byte
	buf := make([]byte, 137)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
}

func TestStreamReaderDetectsCorruptTrailer(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 64<<10, 73)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, gz...)
	bad[len(bad)-6] ^= 0xFF // CRC byte
	r := acc.NewStreamReader(bytes.NewReader(bad), 0)
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("corrupt trailer accepted")
	}
}

func TestStreamReaderTruncated(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	src := corpus.Generate(corpus.Text, 256<<10, 74)
	gz, _, err := acc.CompressGzip(src)
	if err != nil {
		t.Fatal(err)
	}
	r := acc.NewStreamReader(bytes.NewReader(gz[:len(gz)/2]), 0)
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestStreamReaderEmptyStream(t *testing.T) {
	acc := Open(P9())
	defer acc.Close()
	gz, _, err := acc.CompressGzip(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := acc.NewStreamReader(bytes.NewReader(gz), 0)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d bytes", len(got))
	}
}
