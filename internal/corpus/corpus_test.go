package corpus

import (
	"bytes"
	"testing"

	"nxzip/internal/deflate"
)

func TestGenerateSizes(t *testing.T) {
	for _, k := range Kinds() {
		for _, size := range []int{0, 1, 7, 100, 4096, 100000} {
			got := Generate(k, size, 1)
			if len(got) != size {
				t.Fatalf("%s size %d: got %d bytes", k, size, len(got))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		a := Generate(k, 20000, 99)
		b := Generate(k, 20000, 99)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: not deterministic", k)
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	for _, k := range Kinds() {
		if k == Zeros {
			continue
		}
		a := Generate(k, 20000, 1)
		b := Generate(k, 20000, 2)
		if bytes.Equal(a, b) {
			t.Fatalf("%s: seed does not change output", k)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestEntropyOrdering pins the classes to their intended compressibility
// regimes using the real software codec. This is what makes the corpus a
// valid stand-in for the paper's file sets.
func TestEntropyOrdering(t *testing.T) {
	ratio := func(k Kind) float64 {
		src := Generate(k, 256<<10, 7)
		comp, err := deflate.Compress(src, deflate.Options{Level: 6})
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(src)) / float64(len(comp))
	}
	r := map[Kind]float64{}
	for _, k := range Kinds() {
		r[k] = ratio(k)
		t.Logf("%-9s ratio %.2f", k, r[k])
	}
	if r[Random] > 1.05 {
		t.Fatalf("random compresses %.2fx", r[Random])
	}
	if r[Zeros] < 50 {
		t.Fatalf("zeros only %.2fx", r[Zeros])
	}
	for _, k := range []Kind{Text, HTML, JSONLogs, Source, Columnar} {
		if r[k] < 2 {
			t.Fatalf("%s ratio %.2f: structured classes must compress >2x", k, r[k])
		}
	}
	if r[DNA] < 1.5 {
		t.Fatalf("dna ratio %.2f", r[DNA])
	}
	if r[Binary] < 1.2 || r[Binary] > r[JSONLogs] {
		t.Fatalf("binary ratio %.2f should sit between noise and logs (logs %.2f)", r[Binary], r[JSONLogs])
	}
}

func BenchmarkGenerateText(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		Generate(Text, 1<<20, int64(i))
	}
}
