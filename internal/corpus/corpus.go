// Package corpus generates deterministic synthetic workloads standing in
// for the corpora the paper evaluates on (Calgary/Canterbury/Silesia-class
// files plus datacenter data). The generators are seeded and offline: the
// same (kind, size, seed) always produces the same bytes, so experiments
// are reproducible run to run.
//
// What matters for reproducing the paper's tables is not file identity but
// *entropy class*: English-like text, markup, machine logs, columnar
// database data, genomic strings, binary code, incompressible data, and
// all-zero pages each exercise a distinct region of the ratio/throughput
// space.
package corpus

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
)

// Kind identifies a data class.
type Kind int

const (
	// Text is Markov-chain English prose (Calgary "book" class).
	Text Kind = iota
	// HTML is tag-heavy markup (Canterbury "html" class).
	HTML
	// JSONLogs is newline-delimited structured log records (cloud class).
	JSONLogs
	// Source is C-like program text (Calgary "progc" class).
	Source
	// Columnar is TPC-DS-like tabular data: sorted keys, enumerated
	// dimensions, skewed numerics (the Spark shuffle payload class).
	Columnar
	// DNA is a 4-symbol genomic string (Silesia "dna" class).
	DNA
	// Binary is mixed executable-like content (Silesia "mozilla" class).
	Binary
	// Random is incompressible noise (worst case).
	Random
	// Zeros is the best case (empty pages, sparse files).
	Zeros
)

// Kinds lists every generator in presentation order.
func Kinds() []Kind {
	return []Kind{Text, HTML, JSONLogs, Source, Columnar, DNA, Binary, Random, Zeros}
}

func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case HTML:
		return "html"
	case JSONLogs:
		return "jsonlogs"
	case Source:
		return "source"
	case Columnar:
		return "columnar"
	case DNA:
		return "dna"
	case Binary:
		return "binary"
	case Random:
		return "random"
	case Zeros:
		return "zeros"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("corpus: unknown kind %q", s)
}

// Generate produces exactly size bytes of the given class.
func Generate(k Kind, size int, seed int64) []byte {
	if size <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ int64(k)<<32))
	switch k {
	case Text:
		return genText(rng, size)
	case HTML:
		return genHTML(rng, size)
	case JSONLogs:
		return genJSONLogs(rng, size)
	case Source:
		return genSource(rng, size)
	case Columnar:
		return genColumnar(rng, size)
	case DNA:
		return genDNA(rng, size)
	case Binary:
		return genBinary(rng, size)
	case Random:
		return genRandom(rng, size)
	case Zeros:
		return make([]byte, size)
	}
	panic("corpus: unknown kind")
}

var textWords = strings.Fields(`
the of and to a in that is was he for it with as his on be at by i this had
not are but from or have an they which one you were her all she there would
their we him been has when who will more no if out so said what up its about
into than them can only other new some could time these two may then do first
any my now such like our over man me even most made after also did many before
must through back years where much your way well down should because each just
those people mr how too little state good very make world still own see men
work long get here between both life being under never day same another know
while last might us great old year off come since against go came right used
take three system processor accelerator compression throughput latency memory
queue hardware software pipeline buffer request engine data page cache`)

func genText(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+16)
	sentence := 0
	for len(out) < size {
		w := textWords[rng.Intn(len(textWords))]
		if sentence == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		out = append(out, w...)
		sentence++
		if sentence > 6+rng.Intn(12) {
			out = append(out, '.', ' ')
			sentence = 0
		} else {
			out = append(out, ' ')
		}
		if rng.Intn(15) == 0 {
			out = append(out, '\n')
		}
	}
	return out[:size]
}

var htmlTags = []string{"div", "span", "p", "a", "li", "td", "tr", "h2", "em", "section"}

func genHTML(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+64)
	out = append(out, "<!DOCTYPE html><html><head><title>report</title></head><body>"...)
	for len(out) < size {
		tag := htmlTags[rng.Intn(len(htmlTags))]
		out = append(out, fmt.Sprintf(`<%s class="c%d" id="n%d">`, tag, rng.Intn(8), rng.Intn(10000))...)
		for i, n := 0, rng.Intn(8)+1; i < n; i++ {
			out = append(out, textWords[rng.Intn(len(textWords))]...)
			out = append(out, ' ')
		}
		out = append(out, "</"...)
		out = append(out, tag...)
		out = append(out, '>', '\n')
	}
	return out[:size]
}

var logLevels = []string{"DEBUG", "INFO", "INFO", "INFO", "WARN", "ERROR"}
var logOps = []string{"GET /api/v1/items", "PUT /api/v1/items", "GET /healthz", "POST /api/v1/orders", "GET /metrics"}

func genJSONLogs(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+128)
	ts := int64(1700000000000)
	for len(out) < size {
		ts += int64(rng.Intn(500))
		out = append(out, fmt.Sprintf(
			`{"ts":%d,"level":%q,"svc":"frontend-%d","op":%q,"status":%d,"latency_us":%d,"bytes":%d}`+"\n",
			ts, logLevels[rng.Intn(len(logLevels))], rng.Intn(4),
			logOps[rng.Intn(len(logOps))], 200+10*rng.Intn(4), rng.Intn(40000), rng.Intn(65536))...)
	}
	return out[:size]
}

var srcSnippets = []string{
	"for (int i = 0; i < n; i++) {\n",
	"    sum += buf[i] * weight[i];\n",
	"}\n",
	"if (ret != 0) {\n    return -EINVAL;\n}\n",
	"static inline uint32_t hash(uint32_t v) {\n    return v * 2654435761u;\n}\n",
	"memcpy(dst, src, len);\n",
	"/* submit the request block to the accelerator */\n",
	"struct crb *crb = queue_next(q);\n",
	"crb->csb_addr = (uint64_t)&csb;\n",
	"while (!csb.valid)\n    barrier();\n",
}

func genSource(rng *rand.Rand, size int) []byte {
	out := make([]byte, 0, size+64)
	for len(out) < size {
		out = append(out, srcSnippets[rng.Intn(len(srcSnippets))]...)
	}
	return out[:size]
}

var dims = []string{"AAA", "BBB", "CCC", "DDD", "EEE", "FFF", "GGG", "HHH"}

func genColumnar(rng *rand.Rand, size int) []byte {
	// Row groups: monotonically increasing surrogate keys, low-cardinality
	// dimension strings, zipf-ish measures — the shape of a TPC-DS fact
	// table serialized row-wise for a shuffle.
	out := make([]byte, 0, size+64)
	key := int64(100000)
	for len(out) < size {
		key += int64(rng.Intn(3) + 1)
		q := rng.Intn(100)
		price := 100 + rng.Intn(90)*100
		out = append(out, fmt.Sprintf("%d|%s|%s|%d|%d.%02d|N\n",
			key, dims[rng.Intn(len(dims))], dims[rng.Intn(3)],
			q, price/100, price%100)...)
	}
	return out[:size]
}

func genDNA(rng *rand.Rand, size int) []byte {
	const bases = "ACGT"
	out := make([]byte, size)
	// Long-range repeats: occasionally copy an earlier segment, as real
	// genomes do.
	i := 0
	for i < size {
		if i > 4096 && rng.Intn(4) == 0 {
			n := 256 + rng.Intn(1024)
			src := rng.Intn(i - n)
			if src >= 0 && n <= size-i {
				copy(out[i:], out[src:src+n])
				i += n
				continue
			}
		}
		out[i] = bases[rng.Intn(4)]
		i++
	}
	return out
}

func genBinary(rng *rand.Rand, size int) []byte {
	// Interleaved regions: instruction-like patterns, pointer tables with
	// shared high bytes, string table, and noise.
	out := make([]byte, 0, size+4096)
	for len(out) < size {
		switch rng.Intn(4) {
		case 0: // opcode-ish: limited byte alphabet with structure
			n := 512 + rng.Intn(2048)
			for i := 0; i < n; i++ {
				out = append(out, byte(0x40+rng.Intn(16)), byte(rng.Intn(8)<<3), byte(rng.Intn(256)), 0x00)
			}
		case 1: // pointer table
			base := uint64(0x7F0000000000) | uint64(rng.Intn(1<<20))<<12
			n := 128 + rng.Intn(512)
			var b [8]byte
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(b[:], base+uint64(i*16))
				out = append(out, b[:]...)
			}
		case 2: // string table
			for i, n := 0, 16+rng.Intn(64); i < n; i++ {
				out = append(out, textWords[rng.Intn(len(textWords))]...)
				out = append(out, 0)
			}
		case 3: // high-entropy section
			n := 256 + rng.Intn(1024)
			b := make([]byte, n)
			rng.Read(b)
			out = append(out, b...)
		}
	}
	return out[:size]
}

func genRandom(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	rng.Read(out)
	return out
}
