package pipeline

import (
	"testing"
	"time"
)

func TestCompressBreakdownAdds(t *testing.T) {
	c := P9()
	b := c.Compress(1<<20, 300<<10, 150000, 500, true)
	want := b.Setup + b.DHTGen + maxStage(b) + b.Complete
	if b.Total != want {
		t.Fatalf("Total = %d, want %d", b.Total, want)
	}
	if b.DHTGen != c.DHTGenCycles {
		t.Fatalf("DHTGen = %d", b.DHTGen)
	}
	b2 := c.Compress(1<<20, 300<<10, 150000, 500, false)
	if b2.DHTGen != 0 || b2.Total >= b.Total {
		t.Fatalf("FHT should be cheaper: %d vs %d", b2.Total, b.Total)
	}
}

func maxStage(b Breakdown) int64 {
	m := b.DMAIn
	for _, x := range []int64{b.LZ, b.Encode, b.DMAOut, b.Decode, b.Translate} {
		if x > m {
			m = x
		}
	}
	return m
}

func TestLZIsBottleneckForLargeCompress(t *testing.T) {
	c := P9()
	n := 8 << 20
	lz := int64(n / c.LZBytesPerCycle) // line-rate LZ
	b := c.Compress(n, n/3, lz, 0, false)
	if got := maxStage(b); got != b.LZ {
		t.Fatalf("bottleneck %d is not LZ %d", got, b.LZ)
	}
}

func TestDecompressBreakdown(t *testing.T) {
	c := Z15()
	b := c.Decompress(1<<20, 3<<20, 100)
	if b.Decode <= 0 || b.LZ != 0 || b.Encode != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total != b.Setup+maxStage(b)+b.Complete {
		t.Fatal("total mismatch")
	}
}

func TestTimeAndRate(t *testing.T) {
	c := Config{ClockGHz: 2.0}
	if got := c.Time(2000); got != time.Microsecond {
		t.Fatalf("Time = %v", got)
	}
	// 1000 bytes in 1000 cycles at 2 GHz = 2 GB/s.
	if got := c.Rate(1000, 1000); got != 2e9 {
		t.Fatalf("Rate = %v", got)
	}
	if c.Rate(1000, 0) != 0 {
		t.Fatal("zero cycles rate")
	}
	var zero Config
	if zero.Time(100) != 0 {
		t.Fatal("zero clock time")
	}
}

func TestPeakRates(t *testing.T) {
	p9, z15 := P9(), Z15()
	if p9.PeakCompressRate() != 8e9 {
		t.Fatalf("P9 peak = %v", p9.PeakCompressRate())
	}
	if z15.PeakCompressRate() != 2*p9.PeakCompressRate() {
		t.Fatal("z15 must double P9 (abstract claim C5)")
	}
	if p9.PeakDecompressRate() <= 0 {
		t.Fatal("decode rate")
	}
}

func TestSmallRequestLatencyBound(t *testing.T) {
	c := P9()
	b := c.Compress(512, 300, 64, 0, true)
	fixed := c.SetupCycles + c.DHTGenCycles + c.CompleteCycles
	if b.Total-fixed > fixed/2 {
		t.Fatalf("small request should be dominated by fixed costs: total %d, fixed %d", b.Total, fixed)
	}
}

func TestDivCeilGuards(t *testing.T) {
	if divCeil(10, 0) != 10 {
		t.Fatal("divCeil by zero must pass through")
	}
	if divCeil(10, 3) != 4 {
		t.Fatal("divCeil rounding")
	}
}

func TestStringer(t *testing.T) {
	if s := P9().String(); s == "" {
		t.Fatal("empty String()")
	}
}
