// Package pipeline is the cycle-approximate timing model of the
// compression/decompression engine. The functional work (producing real
// compressed bits) is done by lz77/deflate; this package turns the
// measured stage work of a request into a cycle and wall-time breakdown
// using the engine's configured widths, clock and fixed latencies.
//
// The model is deliberately simple and documented: the engine is a
// streaming pipeline (DMA-in → LZ → Huffman-encode → DMA-out for
// compression), so a request's data-dependent time is governed by its
// slowest stage, plus the serial parts: request setup, address
// translation, dynamic-table generation, and completion writeback. This is
// the same first-order model the paper uses when it explains why small
// requests are latency-bound and large requests run at the LZ line rate.
package pipeline

import (
	"fmt"
	"time"
)

// Config describes one engine's timing parameters.
type Config struct {
	Name     string
	ClockGHz float64 // nest clock the engine runs at

	SetupCycles    int64 // CRB fetch + engine dispatch (async queue path)
	CompleteCycles int64 // CSB writeback + interrupt/credit return
	// SyncSetupCycles is the dispatch cost of the synchronous-instruction
	// interface (z15's DFLTCC-style call): no queue traversal, the CPU
	// waits. Zero means the device has no synchronous path.
	SyncSetupCycles int64

	// ChainSetupCycles is the dispatch cost of a request that arrived
	// chained behind another in the same batch envelope: the descriptor
	// is already resident in the FIFO entry, so the engine advances to it
	// without a fresh paste-to-dispatch round trip. ChainCompleteCycles
	// is the matching writeback cost when a later chained request carries
	// the envelope's completion: the CSB store happens, but the
	// interrupt/credit return is deferred to the end of the chain. Zero
	// means the device has no chained path and every request pays the
	// full setup/complete cost.
	ChainSetupCycles    int64
	ChainCompleteCycles int64

	DMABytesPerCycle    int // bus read/write width
	LZBytesPerCycle     int // compression ingest width (matches lz77.HWParams)
	EncodeBytesPerCycle int // Huffman encoder drain width, input-referred
	DecodeBytesPerCycle int // decompressor output width (speculative decode)

	DHTGenCycles   int64 // latency of building a dynamic table from the sample
	DHTSampleBytes int   // bytes sampled before the table is frozen
}

// P9 returns the POWER9 NX GZIP engine model: ~8 GB/s compression,
// ~6 GB/s decompression at a 1.0 GHz effective nest clock, and a few
// microseconds of fixed request overhead.
func P9() Config {
	return Config{
		Name:                "POWER9 NX",
		ClockGHz:            1.0,
		SetupCycles:         2500, // ~2.5us: paste-to-engine-start
		CompleteCycles:      1000, // ~1us: CSB write + wakeup
		ChainSetupCycles:    150,  // descriptor advance within a resident envelope
		ChainCompleteCycles: 100,  // CSB store, interrupt deferred to chain end
		DMABytesPerCycle:    64,
		LZBytesPerCycle:     8,
		EncodeBytesPerCycle: 16,
		DecodeBytesPerCycle: 6,
		DHTGenCycles:        4000,
		DHTSampleBytes:      32 << 10,
	}
}

// Z15 returns the z15 Integrated Accelerator for zEDC model: double the
// POWER9 ingest width (the abstract's "doubles the compression rate"),
// faster decode, and on-the-fly DHT generation with a larger sample.
func Z15() Config {
	return Config{
		Name:                "z15 zEDC",
		ClockGHz:            1.0,
		SetupCycles:         2000,
		SyncSetupCycles:     400, // DFLTCC-style dispatch: no queue, no doorbell
		CompleteCycles:      800,
		ChainSetupCycles:    120,
		ChainCompleteCycles: 80,
		DMABytesPerCycle:    128,
		LZBytesPerCycle:     16,
		EncodeBytesPerCycle: 32,
		DecodeBytesPerCycle: 12,
		DHTGenCycles:        3000,
		DHTSampleBytes:      64 << 10,
	}
}

// Breakdown is the cycle ledger for one request.
type Breakdown struct {
	Setup     int64
	Translate int64 // ERAT/table-walk cycles charged by the NMMU
	DMAIn     int64
	LZ        int64 // compression only
	DHTGen    int64 // compression with dynamic table only
	Encode    int64 // compression only
	Decode    int64 // decompression only
	DMAOut    int64
	Complete  int64
	Total     int64
}

func divCeil(n int64, d int64) int64 {
	if d <= 0 {
		return n
	}
	return (n + d - 1) / d
}

func max64(xs ...int64) int64 {
	m := int64(0)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Compress computes the breakdown for a compression request that read
// inBytes, wrote outBytes, spent lzCycles in the match stage (from
// lz77.HWStats, which includes bank-conflict replays), and charged
// translateCycles of NMMU work. dynamicDHT adds the table-generation
// latency.
func (c Config) Compress(inBytes, outBytes int, lzCycles, translateCycles int64, dynamicDHT bool) Breakdown {
	b := Breakdown{
		Setup:     c.SetupCycles,
		Translate: translateCycles,
		DMAIn:     divCeil(int64(inBytes), int64(c.DMABytesPerCycle)),
		LZ:        lzCycles,
		Encode:    divCeil(int64(inBytes), int64(c.EncodeBytesPerCycle)),
		DMAOut:    divCeil(int64(outBytes), int64(c.DMABytesPerCycle)),
		Complete:  c.CompleteCycles,
	}
	if dynamicDHT {
		b.DHTGen = c.DHTGenCycles
	}
	// Streaming overlap: data-dependent stages run concurrently, and
	// ERAT walks overlap with streaming DMA, so the request occupies the
	// engine for the slowest of them. Setup, DHT generation and
	// completion are serial.
	b.Total = b.Setup + b.DHTGen +
		max64(b.DMAIn, b.LZ, b.Encode, b.DMAOut, b.Translate) + b.Complete
	return b
}

// Decompress computes the breakdown for a decompression request reading
// inBytes of compressed data and producing outBytes.
func (c Config) Decompress(inBytes, outBytes int, translateCycles int64) Breakdown {
	b := Breakdown{
		Setup:     c.SetupCycles,
		Translate: translateCycles,
		DMAIn:     divCeil(int64(inBytes), int64(c.DMABytesPerCycle)),
		Decode:    divCeil(int64(outBytes), int64(c.DecodeBytesPerCycle)),
		DMAOut:    divCeil(int64(outBytes), int64(c.DMABytesPerCycle)),
		Complete:  c.CompleteCycles,
	}
	b.Total = b.Setup +
		max64(b.DMAIn, b.Decode, b.DMAOut, b.Translate) + b.Complete
	return b
}

// Time converts a cycle count to wall time at the engine clock.
func (c Config) Time(cycles int64) time.Duration {
	if c.ClockGHz <= 0 {
		return 0
	}
	return time.Duration(float64(cycles) / c.ClockGHz * float64(time.Nanosecond))
}

// Rate returns the effective bytes/second for processing n bytes in the
// given number of cycles.
func (c Config) Rate(n int, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(n) / (float64(cycles) / (c.ClockGHz * 1e9))
}

// PeakCompressRate returns the line-rate bound of the LZ stage in bytes/s.
func (c Config) PeakCompressRate() float64 {
	return float64(c.LZBytesPerCycle) * c.ClockGHz * 1e9
}

// PeakDecompressRate returns the decode-stage bound in bytes/s.
func (c Config) PeakDecompressRate() float64 {
	return float64(c.DecodeBytesPerCycle) * c.ClockGHz * 1e9
}

// String implements fmt.Stringer for experiment tables.
func (c Config) String() string {
	return fmt.Sprintf("%s (%.1f GHz, LZ %dB/cyc)", c.Name, c.ClockGHz, c.LZBytesPerCycle)
}
