// Package nx is the core of the reproduction: a functional and
// cycle-approximate model of the POWER9 NX GZIP unit and the z15
// Integrated Accelerator for zEDC. It executes real DEFLATE (and 842)
// work — the bytes it produces interoperate with zlib/gzip — while
// charging cycles from the pipeline model, translating addresses through
// the NMMU, and accepting requests through VAS windows, so the system-level
// behaviour the paper evaluates (latency vs size, faults, sharing) is
// observable.
package nx

import (
	"errors"
	"fmt"
	"time"

	"nxzip/internal/deflate"
	"nxzip/internal/lz77"
	"nxzip/internal/pipeline"
)

// FuncCode selects the engine operation, mirroring the NX function codes.
type FuncCode int

const (
	// FCCompressFHT compresses with the fixed Huffman table.
	FCCompressFHT FuncCode = iota
	// FCCompressDHT compresses with an engine-generated dynamic table
	// (single pass: the table is built from a sample of the input).
	FCCompressDHT
	// FCCompressCannedDHT compresses with a caller-supplied table.
	FCCompressCannedDHT
	// FCDecompress inflates a DEFLATE stream.
	FCDecompress
	// FC842Compress compresses with the 842 engine.
	FC842Compress
	// FC842Decompress decompresses 842 data.
	FC842Decompress
	// FCMove copies source to target computing CRC32/Adler-32 inline
	// without compressing — the engine's checksum/memcpy offload.
	FCMove
	// FCLZ4Compress compresses with the LZ4 block engine.
	FCLZ4Compress
	// FCLZ4Decompress decompresses an LZ4 block.
	FCLZ4Decompress
	// FCTranscode decodes CRB.SourceCodec input and re-encodes it as
	// CRB.TargetCodec in one engine pass (DEFLATE output framed per
	// CRB.Wrap) — the recompression pipeline as a single node request.
	FCTranscode
)

func (f FuncCode) String() string {
	switch f {
	case FCCompressFHT:
		return "compress-fht"
	case FCCompressDHT:
		return "compress-dht"
	case FCCompressCannedDHT:
		return "compress-canned"
	case FCDecompress:
		return "decompress"
	case FC842Compress:
		return "842-compress"
	case FC842Decompress:
		return "842-decompress"
	case FCMove:
		return "move"
	case FCLZ4Compress:
		return "lz4-compress"
	case FCLZ4Decompress:
		return "lz4-decompress"
	case FCTranscode:
		return "transcode"
	}
	return fmt.Sprintf("FuncCode(%d)", int(f))
}

// Wrap selects stream framing applied inline by the engine.
type Wrap int

const (
	// WrapRaw emits/consumes a bare DEFLATE stream.
	WrapRaw Wrap = iota
	// WrapGzip emits/consumes RFC 1952 framing with CRC32.
	WrapGzip
	// WrapZlib emits/consumes RFC 1950 framing with Adler-32.
	WrapZlib
)

func (w Wrap) String() string {
	switch w {
	case WrapRaw:
		return "raw"
	case WrapGzip:
		return "gzip"
	case WrapZlib:
		return "zlib"
	}
	return fmt.Sprintf("Wrap(%d)", int(w))
}

// CC is the CSB completion code.
type CC int

const (
	// CCSuccess: operation completed.
	CCSuccess CC = iota
	// CCTranslationFault: a source/target page was not translatable; the
	// faulting address is in CSB.FaultVA. Software touches the page and
	// resubmits.
	CCTranslationFault
	// CCTargetSpace: the output exceeded the target buffer.
	CCTargetSpace
	// CCDataCorrupt: decompression found an invalid stream or checksum.
	CCDataCorrupt
	// CCInvalidCRB: malformed request.
	CCInvalidCRB
	// CCCRCError: the engine's inline read-back verify found a CRC
	// mismatch between what was written and what was computed — a
	// transient data-path flake, not a property of the input, so software
	// retries the request (usually on another device).
	CCCRCError

	// ccCount sizes per-CC counter arrays.
	ccCount
)

func (c CC) String() string {
	switch c {
	case CCSuccess:
		return "success"
	case CCTranslationFault:
		return "translation-fault"
	case CCTargetSpace:
		return "target-space-exhausted"
	case CCDataCorrupt:
		return "data-corrupt"
	case CCInvalidCRB:
		return "invalid-crb"
	case CCCRCError:
		return "crc-error"
	}
	return fmt.Sprintf("CC(%d)", int(c))
}

// Typed errors for every non-OK completion code, so callers can sort
// retryable from fatal completions with errors.Is instead of parsing
// messages. Compress/Decompress/submit wrap these (with the CSB detail
// string) into the errors they return.
var (
	// ErrTranslationFault is normally consumed by the touch-and-resubmit
	// protocol; it surfaces only when the fault handler itself fails.
	ErrTranslationFault = errors.New("nx: translation fault")
	// ErrTargetSpace: output exceeded the target buffer. Retryable with
	// a larger buffer (the grow-and-resubmit loop), fatal as-is.
	ErrTargetSpace = errors.New("nx: target buffer space exhausted")
	// ErrDataCorrupt: the stream failed to decode or checksum. Fatal for
	// a genuinely corrupt input; a fault-injected data check on intact
	// input is indistinguishable here, which is why the fallback layer
	// re-verifies in software before reporting corruption.
	ErrDataCorrupt = errors.New("nx: data corrupt")
	// ErrInvalidCRB: malformed request. Fatal — resubmitting the same
	// block cannot succeed (an injected flake is the one exception the
	// failover layer absorbs by rebuilding the request elsewhere).
	ErrInvalidCRB = errors.New("nx: invalid CRB")
	// ErrCRCMismatch: inline verify failed. Retryable.
	ErrCRCMismatch = errors.New("nx: crc mismatch")
)

// Err maps a completion code to its typed error (nil for CCSuccess).
func (c CC) Err() error {
	switch c {
	case CCSuccess:
		return nil
	case CCTranslationFault:
		return ErrTranslationFault
	case CCTargetSpace:
		return ErrTargetSpace
	case CCDataCorrupt:
		return ErrDataCorrupt
	case CCInvalidCRB:
		return ErrInvalidCRB
	case CCCRCError:
		return ErrCRCMismatch
	}
	return fmt.Errorf("nx: unknown completion code %d", int(c))
}

// ccError wraps a non-OK completion into a typed, errors.Is-able error
// carrying the human-readable CSB detail.
func ccError(op string, csb *CSB) error {
	err := csb.CC.Err()
	if err == nil {
		return nil
	}
	if csb.Detail != "" {
		return fmt.Errorf("nx: %s: %w: %s", op, err, csb.Detail)
	}
	return fmt.Errorf("nx: %s: %w", op, err)
}

// CRB is the coprocessor request block: one self-describing request.
// Payload data travels as Go slices (the model's stand-in for DMA), while
// SourceVA/TargetVA drive the translation model; a zero VA means the
// buffer is pre-pinned (kernel use) and skips translation.
type CRB struct {
	Func FuncCode
	Wrap Wrap

	// SourceCodec/TargetCodec select the two sides of an FCTranscode
	// request: Input is a SourceCodec stream (framed per Wrap when
	// DEFLATE), Output a TargetCodec stream. Ignored by every other
	// function code, whose codec comes from the function-code table.
	SourceCodec Codec
	TargetCodec Codec

	// ReqID is the root-level request identity stamped by the public API:
	// every span and event this submission produces carries it, across
	// failover re-dispatches and fault resubmits, so the whole history of
	// one caller-visible request links up. Zero when unset (internal
	// traffic, raw Context users).
	ReqID uint64
	// Hop is the dispatch attempt ordinal under ReqID: 0 for the original
	// dispatch, 1.. for failover re-dispatches to other devices.
	Hop int

	Input     []byte
	SourceVA  uint64
	TargetVA  uint64
	TargetCap int // output bound; 0 means 2x input + 1 KiB

	// SourceDDE/TargetDDE describe scatter/gathered operands; when set
	// they take precedence over SourceVA/TargetVA for translation. Input
	// still carries the logical (gathered) bytes — see GatherDDE.
	SourceDDE *DDE
	TargetDDE *DDE

	// DHT supplies the canned table for FCCompressCannedDHT.
	DHT *deflate.DHT

	// History carries the previous 32 KiB of the logical stream for
	// compression continuation: matches may reach into it and the engine
	// replays it through the LZ stage (costing input beats). Only
	// meaningful for the compression function codes.
	History []byte
	// NotFinal marks this request as a non-terminal stream segment: the
	// engine emits a non-final block followed by a sync flush so segment
	// outputs concatenate into one valid DEFLATE stream. Streaming
	// segments must use WrapRaw; framing belongs to the stream owner.
	NotFinal bool

	// Target, when non-nil, is the caller-owned output backing: the
	// engine appends into Target[:0] and CSB.Output aliases it (or a
	// regrown copy when the result outgrew cap(Target) — recover the
	// larger backing from CSB.Output). This is the model's target DMA
	// buffer: supplying it makes the request path allocation-free.
	// Callers reusing Target across requests must copy CSB.Output out
	// before the next submission, and Target must not alias Input.
	// Nil keeps the engine-allocates behaviour.
	Target []byte

	// MaxOutput bounds decompression output (guards zip bombs); 0 = 1 GiB.
	MaxOutput int

	// FirstMemberOnly, with FCDecompress+WrapGzip, stops after the first
	// gzip member instead of requiring Input to be exactly one member:
	// SPBC reports the bytes consumed (header + stream + trailer) so the
	// caller can advance through a multi-member stream decoding each
	// member exactly once — the CSB's source-processed count doing the
	// job it does on hardware.
	FirstMemberOnly bool

	// DecompState carries decompression resume state across requests
	// (FCDecompress with streaming input). When set, Input is the next
	// chunk of one logical raw DEFLATE stream and NotFinal marks
	// intermediate chunks.
	DecompState *DecompState

	// SyncSubmit marks a request entered through the synchronous
	// instruction interface (z15 DFLTCC style): the CPU issues the
	// operation and waits, skipping the VAS queue and its setup cost.
	// Only honoured on devices whose pipeline has SyncSetupCycles > 0.
	SyncSubmit bool

	// Chained marks a request that arrived behind another in the same
	// batch envelope: the descriptor was already resident when the engine
	// reached it, so setup costs ChainSetupCycles instead of the full
	// paste-to-dispatch SetupCycles. ChainedComplete marks a request
	// whose envelope completion is carried by a later entry: the CSB
	// store happens, but the interrupt/credit return is deferred, so
	// completion costs ChainCompleteCycles. SubmitBatch sets both; they
	// are only honoured on devices whose pipeline defines the chained
	// costs.
	Chained         bool
	ChainedComplete bool

	// Deadline, when non-zero, bounds this request's wall-clock
	// lifetime: paste retries, backoff waits and fault-resubmit rounds
	// all check it, and submission fails with ErrDeadlineExceeded once it
	// passes. Zero applies the device's SubmitPolicy.Timeout (if any).
	Deadline time.Time
	// Cancel, when non-nil, aborts the request between recovery rounds
	// when the channel closes (submission fails with ErrCanceled). A
	// round already running on the engine completes; cancellation is
	// checked at the same points as Deadline.
	Cancel <-chan struct{}
}

// CSB is the coprocessor status block written back at completion.
type CSB struct {
	CC      CC
	FaultVA uint64

	SPBC int // source processed byte count
	TPBC int // target processed byte count

	CRC32   uint32 // over the uncompressed data (gzip direction)
	Adler32 uint32 // over the uncompressed data (zlib direction)

	Output []byte

	Cycles pipeline.Breakdown
	// ERATHits/ERATMisses split this request's translation work (pages
	// resolved from the ERAT vs table walks, the faulting page included in
	// the misses). Carried per-CSB like LZ so concurrent submitters never
	// read another request's counters.
	ERATHits   int64
	ERATMisses int64
	// LZ reports the match-search statistics of this request (compression
	// function codes only). Carried per-CSB so concurrent submitters never
	// read another request's counters.
	LZ lz77.HWStats
	// QueueWait is the request's receive-FIFO residency (paste accept to
	// dequeue) for the attempt that produced this completion — the raw
	// sample behind the nx.queue_wait_us histogram, surfaced per-CSB so
	// the flight recorder can digest it without a registry read.
	QueueWait time.Duration
	Detail    string // human-readable error detail for corrupt data
}

// reset clears a status block for reuse before the engine writes a fresh
// completion into it (the hardware overwrites the CSB cacheline whole).
func (csb *CSB) reset() { *csb = CSB{} }
