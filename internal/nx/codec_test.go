package nx

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nxzip/internal/lz4"
)

func TestCodecSetSemantics(t *testing.T) {
	var all CodecSet // zero advertised set = everything
	for _, c := range AllCodecs() {
		if !all.Supports(Codecs(c)) {
			t.Fatalf("zero set does not support %s", c)
		}
	}
	only := Codecs(CodecDeflate)
	if only.Supports(Codecs(CodecLZ4)) {
		t.Fatal("deflate-only set claims LZ4 support")
	}
	if !only.Supports(0) {
		t.Fatal("zero need (FCMove) must be supported by any set")
	}
	both := Codecs(CodecDeflate, CodecLZ4)
	if !both.Supports(Codecs(CodecLZ4)) || both.Supports(Codecs(Codec842)) {
		t.Fatalf("two-codec set semantics wrong: %s", both)
	}
	if got := both.String(); got != "deflate+lz4" {
		t.Fatalf("CodecSet.String() = %q", got)
	}
	if got := (CodecSet(0)).String(); got != "all" {
		t.Fatalf("zero CodecSet.String() = %q", got)
	}
}

func TestParseCodec(t *testing.T) {
	for name, want := range map[string]Codec{
		"deflate": CodecDeflate, "GZIP": CodecDeflate, "842": Codec842, "lz4": CodecLZ4,
	} {
		got, err := ParseCodec(name)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseCodec("brotli"); err == nil {
		t.Fatal("ParseCodec accepted unknown codec")
	}
}

func TestRequiredCodecs(t *testing.T) {
	cases := []struct {
		crb  CRB
		want CodecSet
	}{
		{CRB{Func: FCCompressDHT}, Codecs(CodecDeflate)},
		{CRB{Func: FC842Decompress}, Codecs(Codec842)},
		{CRB{Func: FCLZ4Compress}, Codecs(CodecLZ4)},
		{CRB{Func: FCMove}, 0},
		{CRB{Func: FCTranscode, SourceCodec: CodecLZ4, TargetCodec: CodecDeflate}, Codecs(CodecLZ4, CodecDeflate)},
	}
	for _, c := range cases {
		if got := c.crb.RequiredCodecs(); got != c.want {
			t.Fatalf("RequiredCodecs(%s) = %s, want %s", c.crb.Func, got, c.want)
		}
	}
}

// TestEngineCapabilityGate: a deflate-only engine NACKs block-codec and
// transcode requests with CCInvalidCRB before spending any cycles, while
// an unconstrained engine serves them.
func TestEngineCapabilityGate(t *testing.T) {
	cfg := P9Device()
	cfg.Engine.Codecs = Codecs(CodecDeflate)
	ctx := NewDevice(cfg).OpenContext(100)
	src := bytes.Repeat([]byte("capability gate "), 512)

	csb, rep, err := ctx.Submit(&CRB{Func: FCLZ4Compress, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCInvalidCRB {
		t.Fatalf("deflate-only engine served LZ4: CC=%v", csb.CC)
	}
	if !strings.Contains(csb.Detail, "lz4") {
		t.Fatalf("rejection detail does not name the codec: %q", csb.Detail)
	}
	if rep != nil && rep.TotalCycles != 0 {
		t.Fatalf("rejected request charged %d cycles, want 0", rep.TotalCycles)
	}
	// DEFLATE still works.
	if csb, _, err := ctx.Submit(&CRB{Func: FCCompressDHT, Wrap: WrapGzip, Input: src}); err != nil || csb.CC != CCSuccess {
		t.Fatalf("deflate on deflate-only engine: cc=%v err=%v", csb.CC, err)
	}
	// Transcode needs both sides: deflate-only cannot serve lz4→deflate.
	csb2, _, err := ctx.Submit(&CRB{Func: FCTranscode, SourceCodec: CodecLZ4, TargetCodec: CodecDeflate, Input: lz4.Compress(src)})
	if err != nil || csb2.CC != CCInvalidCRB {
		t.Fatalf("deflate-only engine accepted transcode: cc=%v err=%v", csb2.CC, err)
	}
}

// TestLZ4FuncCodes: the LZ4 function codes round-trip through the
// engine and interoperate with the pure-Go block codec.
func TestLZ4FuncCodes(t *testing.T) {
	ctx := NewDevice(P9Device()).OpenContext(100)
	src := bytes.Repeat([]byte("lz4 hardware block lz4 hardware block "), 300)

	csb, rep, err := ctx.Submit(&CRB{Func: FCLZ4Compress, Input: src})
	if err != nil || csb.CC != CCSuccess {
		t.Fatalf("FCLZ4Compress: cc=%v err=%v", csb.CC, err)
	}
	if rep.TotalCycles <= 0 {
		t.Fatal("LZ4 compress charged no cycles")
	}
	// Interop: software decode of the engine's block.
	plain, err := lz4.Decompress(csb.Output, len(src)+16)
	if err != nil || !bytes.Equal(plain, src) {
		t.Fatalf("software decode of engine LZ4 block: %v", err)
	}
	// Engine decode of a software block.
	back, _, err := ctx.Submit(&CRB{Func: FCLZ4Decompress, Input: lz4.Compress(src), TargetCap: len(src) + 16, MaxOutput: len(src) + 16})
	if err != nil || back.CC != CCSuccess || !bytes.Equal(back.Output, src) {
		t.Fatalf("engine decode of software LZ4 block: cc=%v err=%v", back.CC, err)
	}
	// Corrupt block → CCDataCorrupt.
	bad, _, err := ctx.Submit(&CRB{Func: FCLZ4Decompress, Input: []byte{0xF7, 0x01}, TargetCap: 1 << 10, MaxOutput: 1 << 10})
	if err != nil || bad.CC != CCDataCorrupt {
		t.Fatalf("corrupt LZ4 block: cc=%v err=%v", bad.CC, err)
	}
	if !errors.Is(bad.CC.Err(), ErrDataCorrupt) {
		t.Fatal("CCDataCorrupt does not map to ErrDataCorrupt")
	}
}

// TestTranscodeEngine: FCTranscode decodes the source codec and
// re-encodes the target in one request, charging both passes' cycles.
func TestTranscodeEngine(t *testing.T) {
	ctx := NewDevice(P9Device()).OpenContext(100)
	src := bytes.Repeat([]byte("transcode me through one round trip "), 400)

	// lz4 → deflate(gzip): output must gunzip back to the plaintext.
	blk := lz4.Compress(src)
	csb, rep, err := ctx.Submit(&CRB{Func: FCTranscode, Wrap: WrapGzip, SourceCodec: CodecLZ4, TargetCodec: CodecDeflate, Input: blk})
	if err != nil || csb.CC != CCSuccess {
		t.Fatalf("transcode lz4→gzip: cc=%v err=%v", csb.CC, err)
	}
	if csb.SPBC != len(blk) {
		t.Fatalf("transcode SPBC = %d, want %d", csb.SPBC, len(blk))
	}
	back, _, err := ctx.Submit(&CRB{Func: FCDecompress, Wrap: WrapGzip, Input: csb.Output, TargetCap: len(src) + 64, MaxOutput: len(src) + 64})
	if err != nil || !bytes.Equal(back.Output, src) {
		t.Fatalf("gunzip of transcoded stream: %v", err)
	}
	// Both passes charged: more cycles than a lone LZ4 decode.
	dec, _, _ := ctx.Submit(&CRB{Func: FCLZ4Decompress, Input: blk, TargetCap: len(src) + 16, MaxOutput: len(src) + 16})
	_ = dec
	if rep.TotalCycles <= 0 {
		t.Fatal("transcode charged no cycles")
	}

	// deflate(gzip) → 842 and back.
	csb2, _, err := ctx.Submit(&CRB{Func: FCTranscode, Wrap: WrapGzip, SourceCodec: CodecDeflate, TargetCodec: Codec842, Input: csb.Output})
	if err != nil || csb2.CC != CCSuccess {
		t.Fatalf("transcode gzip→842: cc=%v err=%v", csb2.CC, err)
	}
	p842, _, err := ctx.Submit(&CRB{Func: FC842Decompress, Input: csb2.Output, TargetCap: len(src) + 64, MaxOutput: len(src) + 64})
	if err != nil || !bytes.Equal(p842.Output, src) {
		t.Fatalf("842 decode of transcoded stream: %v", err)
	}

	// Same codec both sides is an invalid CRB.
	same, _, err := ctx.Submit(&CRB{Func: FCTranscode, SourceCodec: CodecLZ4, TargetCodec: CodecLZ4, Input: blk})
	if err != nil || same.CC != CCInvalidCRB {
		t.Fatalf("same-codec transcode: cc=%v err=%v", same.CC, err)
	}
}
