package nx

// codec.go is the codec-plural seam: a first-class Codec identity for
// every request, a CodecSet capability mask engines advertise, and the
// per-codec function-code table that replaces the ad-hoc FC842* special
// cases. The topology layer routes requests to capable devices by the
// CRB's required codec set; the engine rejects requests outside its
// advertised set with CCInvalidCRB, exactly as hardware NACKs a function
// code it does not implement.

import (
	"fmt"
	"strings"

	"nxzip/internal/lz4"
	"nxzip/internal/x842"
)

// Codec identifies a compression format family implemented by an engine.
type Codec int

const (
	// CodecDeflate is the DEFLATE family (raw/zlib/gzip wraps) — the
	// paper's primary engine.
	CodecDeflate Codec = iota
	// Codec842 is the 842 recompression engine (z15 memory expansion).
	Codec842
	// CodecLZ4 is the LZ4 block engine (high-throughput, byte-aligned).
	CodecLZ4

	// codecCount sizes per-codec tables and counter arrays.
	codecCount
)

// CodecCount is the number of codecs, for sizing per-codec arrays
// outside the package.
const CodecCount = int(codecCount)

func (c Codec) String() string {
	switch c {
	case CodecDeflate:
		return "deflate"
	case Codec842:
		return "842"
	case CodecLZ4:
		return "lz4"
	}
	return fmt.Sprintf("Codec(%d)", int(c))
}

// ParseCodec maps a codec name to its Codec.
func ParseCodec(s string) (Codec, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "deflate", "gzip", "zlib", "raw":
		return CodecDeflate, nil
	case "842":
		return Codec842, nil
	case "lz4":
		return CodecLZ4, nil
	}
	return 0, fmt.Errorf("unknown codec %q (want deflate, 842 or lz4)", s)
}

// AllCodecs lists every codec, for iteration.
func AllCodecs() []Codec { return []Codec{CodecDeflate, Codec842, CodecLZ4} }

// CodecSet is a capability bitmask. The zero value means "all codecs" —
// a device that does not advertise a set serves everything, which keeps
// every pre-existing DeviceConfig working unchanged.
type CodecSet uint32

// Codecs builds a CodecSet from an explicit codec list.
func Codecs(cs ...Codec) CodecSet {
	var s CodecSet
	for _, c := range cs {
		s |= 1 << uint(c)
	}
	return s
}

// Has reports whether the set explicitly contains c. The zero set
// contains nothing; use Supports for capability checks where zero means
// "everything".
func (s CodecSet) Has(c Codec) bool { return s&(1<<uint(c)) != 0 }

// With returns the set with c added.
func (s CodecSet) With(c Codec) CodecSet { return s | 1<<uint(c) }

// Supports reports whether a device advertising this set can serve a
// request requiring need. The zero advertised set means all codecs; the
// zero need means no codec requirement (e.g. FCMove).
func (s CodecSet) Supports(need CodecSet) bool {
	if s == 0 {
		return true
	}
	return s&need == need
}

func (s CodecSet) String() string {
	if s == 0 {
		return "all"
	}
	var names []string
	for _, c := range AllCodecs() {
		if s.Has(c) {
			names = append(names, c.String())
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, "+")
}

// funcCodecs is the per-codec function-code table: which codec each
// function code belongs to, and whether it is a compress or decompress
// op. FCMove and FCTranscode are special: move needs no codec, and
// transcode derives its requirement from the CRB's source/target codecs.
var funcCodecs = map[FuncCode]Codec{
	FCCompressFHT:       CodecDeflate,
	FCCompressDHT:       CodecDeflate,
	FCCompressCannedDHT: CodecDeflate,
	FCDecompress:        CodecDeflate,
	FC842Compress:       Codec842,
	FC842Decompress:     Codec842,
	FCLZ4Compress:       CodecLZ4,
	FCLZ4Decompress:     CodecLZ4,
}

// Codec returns the codec a function code belongs to. FCMove and
// FCTranscode report CodecDeflate as a neutral default; use
// CRB.RequiredCodecs for routing.
func (f FuncCode) Codec() Codec {
	if c, ok := funcCodecs[f]; ok {
		return c
	}
	return CodecDeflate
}

// compressFunc maps a codec to its compress function code (DHT mode for
// DEFLATE: transcode is a ratio play, so it pays for the sampled table).
func compressFunc(c Codec) FuncCode {
	switch c {
	case Codec842:
		return FC842Compress
	case CodecLZ4:
		return FCLZ4Compress
	}
	return FCCompressDHT
}

// decompressFunc maps a codec to its decompress function code.
func decompressFunc(c Codec) FuncCode {
	switch c {
	case Codec842:
		return FC842Decompress
	case CodecLZ4:
		return FCLZ4Decompress
	}
	return FCDecompress
}

// CompressFunc returns the function code that compresses with this
// codec (DHT mode for DEFLATE).
func (c Codec) CompressFunc() FuncCode { return compressFunc(c) }

// DecompressFunc returns the function code that decompresses this codec.
func (c Codec) DecompressFunc() FuncCode { return decompressFunc(c) }

// RequiredCodecs returns the capability set a device must advertise to
// serve this request. FCMove needs none (every engine moves bytes);
// FCTranscode needs both sides.
func (crb *CRB) RequiredCodecs() CodecSet {
	switch crb.Func {
	case FCMove:
		return 0
	case FCTranscode:
		return Codecs(crb.SourceCodec, crb.TargetCodec)
	}
	return Codecs(crb.Func.Codec())
}

// blockCodec describes a byte-aligned block codec (842, LZ4) behind the
// generic engine dispatch: compress, bounded decompress, and the
// ingest-lane multiplier for the per-codec cycle model. LZ4's
// byte-aligned tokens let the match pipeline consume twice the DEFLATE
// input width per cycle (Chen et al.); 842's template scheme runs at
// line rate (multiplier 1).
type blockCodec struct {
	compress    func(src []byte) []byte
	decompress  func(src []byte, maxOutput int) ([]byte, error)
	ingestLanes int
}

// blockCodecs is indexed by Codec; CodecDeflate stays nil — DEFLATE runs
// the full LZ/Huffman pipeline, not the block path.
var blockCodecs = [codecCount]blockCodec{
	Codec842: {compress: x842.Compress, decompress: x842.Decompress, ingestLanes: 1},
	CodecLZ4: {compress: lz4.Compress, decompress: lz4.Decompress, ingestLanes: 2},
}
