package nx

import (
	"errors"
	"fmt"
	"time"

	"nxzip/internal/telemetry"
	"nxzip/internal/vas"
)

// Batched small-request submission.
//
// The per-request cost of the queued path — a paste, a send-window
// credit, a FIFO slot, and a drain round — is fixed, so it dominates once
// payloads shrink to a few KiB (the paper's latency-vs-size curves show
// exactly this wall). Software batches: one switchboard envelope carries
// a whole slice of requests, paying the submission overhead once, and the
// dequeuer runs the entries back to back across the device's engines the
// way a driver services a ring of descriptors.

// BatchEntry is one request of a batch: the caller embeds the request
// and completion blocks by value so a batch is a single contiguous
// allocation (or a pooled slice) rather than N boxed requests.
type BatchEntry struct {
	CRB CRB
	CSB CSB
	Rep Report
	// Err reports per-entry submission-protocol failures (a fault
	// resubmit that exhausted its budget, a failed touch). Data-plane
	// completions are CSB.CC, exactly as for single submission.
	Err error

	// span is the per-entry trace record when a tracer is installed: the
	// shared submit/FIFO phases of the envelope plus this entry's own
	// pipeline breakdown, so chained-setup savings are visible per entry.
	span *telemetry.Span
}

// SubmitBatch pastes the whole batch as one switchboard envelope — one
// paste, one credit, one FIFO round for len(entries) requests — and
// waits for the dequeuer to run every entry. Entries that complete with
// CCTranslationFault are touched and resubmitted individually through
// the full single-request protocol; their Err fields carry any terminal
// submission failure. Per-entry Deadline/Cancel gates are honored at
// the same boundaries as single submission: entries whose gate has
// tripped before the paste (or while the envelope waits out paste
// backoff) complete with ErrDeadlineExceeded/ErrCanceled and never
// reach an engine; once the envelope is pasted the batch runs as one
// unit, and only the fault-straggler resubmission path re-checks. An
// injected engine hang drops the whole batch (ErrEngineHang), mirroring
// a wedged descriptor ring.
func (c *Context) SubmitBatch(entries []BatchEntry) error {
	if len(entries) == 0 {
		return nil
	}
	d := c.dev
	pol := d.cfg.Submit
	if d.Offline() {
		d.met.offlineRejects.Inc()
		return ErrDeviceOffline
	}
	p := getPending()
	defer putPending(p)
	p.batch = entries
	p.submitStart = time.Now()
	tr := d.tracer.Load()
	if tr != nil {
		for i := range entries {
			en := &entries[i]
			sp := tr.Start(en.CRB.Func.String(), int(c.pid), c.window)
			sp.ReqID = en.CRB.ReqID
			sp.Hop = en.CRB.Hop
			sp.Tenant = c.tenant
			sp.Priority = c.priorityName()
			en.span = sp
		}
	}
	// expireEntries fails entries whose liveness gates tripped and
	// reports how many are still live. Run before the paste and after
	// each backoff sleep — the points where the envelope is still ours.
	expireEntries := func() (live int) {
		now := time.Now()
		for i := range entries {
			en := &entries[i]
			if en.Err != nil {
				continue
			}
			if en.CRB.Cancel != nil {
				select {
				case <-en.CRB.Cancel:
					en.Err = ErrCanceled
					if en.span != nil {
						en.span.CC = "canceled"
						tr.Finish(en.span)
						en.span = nil
					}
					continue
				default:
				}
			}
			if !en.CRB.Deadline.IsZero() && now.After(en.CRB.Deadline) {
				d.met.deadlineFails.Inc()
				en.Err = fmt.Errorf("%w (expired before batch dispatch)", ErrDeadlineExceeded)
				if en.span != nil {
					en.span.CC = "deadline"
					tr.Finish(en.span)
					en.span = nil
				}
				continue
			}
			live++
		}
		return live
	}
	if expireEntries() == 0 {
		return nil
	}
	// finishSpans closes every still-open entry span; cc overrides the
	// completion label for envelope-level failures (the dequeuer stamps
	// per-entry CCs on success).
	finishSpans := func(cc string) {
		if tr == nil {
			return
		}
		for i := range entries {
			en := &entries[i]
			if en.span == nil {
				continue
			}
			if cc != "" {
				en.span.CC = cc
			}
			tr.Finish(en.span)
			en.span = nil
		}
	}
	wrapped := &p.wrapped
	var (
		rejects     int
		waits       int
		backoffTime time.Duration
	)
	backoff := pol.BackoffBase
	pasted := false
	for try := 0; try < pol.MaxPasteAttempts && waits < pol.MaxBackoffWaits; try++ {
		p.pastedAt = time.Now()
		err := d.sb.Paste(c.window, wrapped)
		if err == nil {
			pasted = true
			break
		}
		if errors.Is(err, vas.ErrWindowClosed) {
			finishSpans("window-closed")
			return err
		}
		rejects++
		if d.Offline() {
			d.met.offlineRejects.Inc()
			finishSpans("device-offline")
			return ErrDeviceOffline
		}
		if pending := d.sb.Dequeue(); pending != nil {
			c.runOne(pending)
			continue
		}
		sleep := jitter(backoff)
		time.Sleep(sleep)
		waits++
		backoffTime += sleep
		d.met.backoffWaits.Inc()
		if backoff *= 2; backoff > pol.BackoffMax {
			backoff = pol.BackoffMax
		}
		if expireEntries() == 0 {
			// Every entry's gate tripped while we backed off; the
			// envelope has nothing left to carry.
			if backoffTime > 0 {
				d.met.backoffUS.Observe(float64(backoffTime) / float64(time.Microsecond))
			}
			return nil
		}
	}
	if backoffTime > 0 {
		d.met.backoffUS.Observe(float64(backoffTime) / float64(time.Microsecond))
	}
	if !pasted {
		finishSpans("device-busy")
		return fmt.Errorf("%w (batch of %d: %d rejects, %d backoff waits)", ErrDeviceBusy, len(entries), rejects, waits)
	}
	// Drain until our batch completes, running whatever we dequeue —
	// the same submitter-as-engine-driver protocol as SubmitInto.
	waiting := true
	for waiting {
		select {
		case <-p.done:
			waiting = false
		default:
			if pending := d.sb.Dequeue(); pending != nil {
				c.runOne(pending)
				continue
			}
			<-p.done
			waiting = false
		}
	}
	if !p.ran {
		finishSpans("engine-hang")
		return fmt.Errorf("%w (batch of %d)", ErrEngineHang, len(entries))
	}
	pasteAccounted := false
	for i := range entries {
		en := &entries[i]
		if en.Err != nil {
			// Expired/canceled before the paste: never ran, CSB is zero.
			continue
		}
		if en.CSB.CC == CCTranslationFault {
			// Touch-and-resubmit, per entry: the rest of the batch is
			// done, so the straggler goes back through the single-request
			// protocol (which touches again on repeat faults). The entry's
			// batch span closes on the fault; the resubmission emits its
			// own span under the same ReqID.
			if en.span != nil {
				tr.Finish(en.span)
				en.span = nil
			}
			wasted := en.CSB.Cycles.Total
			d.met.faultRetries.Inc()
			if terr := d.mmu.Touch(c.pid, en.CSB.FaultVA); terr != nil {
				en.Err = fmt.Errorf("nx: fault handler: %w", terr)
				continue
			}
			// The straggler resubmits alone: full setup/complete again.
			en.CRB.Chained = false
			en.CRB.ChainedComplete = false
			en.Err = c.SubmitInto(&en.CRB, &en.CSB, &en.Rep)
			if en.Err == nil {
				en.Rep.Retries++
				en.Rep.WastedCycles += wasted
				en.Rep.TotalCycles += wasted
			}
			continue
		}
		fillReport(d, &en.CRB, &en.CSB, &en.Rep)
		if !pasteAccounted {
			// Batch-level paste accounting rides on the first entry that
			// completed in the envelope (there is one paste for the whole
			// batch, not N).
			en.Rep.PasteRejects = rejects
			en.Rep.BackoffWaits = waits
			en.Rep.BackoffTime = backoffTime
			pasteAccounted = true
		}
	}
	finishSpans("")
	return nil
}

// runBatch is the dequeuer side of SubmitBatch: every entry runs back to
// back, spread round-robin across the device's engines, then the single
// envelope completes and the owner gets its token. Called from runOne
// with the injected-hang gate already passed.
func (c *Context) runBatch(wrapped *vas.CRB, p *pendingCRB, dequeuedAt time.Time) {
	m := c.dev.met
	queueWait := dequeuedAt.Sub(p.pastedAt)
	m.queueWaitUS.Observe(float64(queueWait) / float64(time.Microsecond))
	// Entries whose Deadline/Cancel gate tripped before the paste carry a
	// pre-set Err and never run; the chained-setup flags are computed over
	// the entries that actually execute.
	last := -1
	for i := range p.batch {
		if p.batch[i].Err == nil {
			last = i
		}
	}
	ran := 0
	for i := range p.batch {
		en := &p.batch[i]
		if en.Err != nil {
			continue
		}
		// The first run entry pays the envelope's full paste-to-dispatch
		// setup; the rest chain behind it. The last run entry's CSB
		// writeback doubles as the envelope completion; earlier entries
		// only store their CSB.
		en.CRB.Chained = ran > 0
		en.CRB.ChainedComplete = i != last
		ran++
		idx := int(c.dev.nextEng.Add(1)-1) % len(c.dev.engines)
		engStart := time.Now()
		c.dev.engines[idx].ProcessInto(wrapped.PID, &en.CRB, &en.CSB)
		en.CSB.QueueWait = queueWait
		m.requests.Inc()
		m.inBytes.Add(int64(en.CSB.SPBC))
		m.outBytes.Add(int64(en.CSB.TPBC))
		m.bumpCodec(&en.CRB, &en.CSB)
		if cc := en.CSB.CC; cc >= 0 && cc < ccCount {
			m.cc[cc].Inc()
		}
		if s := en.span; s != nil {
			// Each entry's span shares the envelope's submit/FIFO phases
			// and carries its own pipeline breakdown — the chained-setup
			// discount shows up as a smaller setup stage on entries > 0.
			s.Engine = idx
			s.ERATHits += en.CSB.ERATHits
			s.ERATMisses += en.CSB.ERATMisses
			s.DeviceCycles += en.CSB.Cycles.Total
			s.InBytes = en.CSB.SPBC
			s.OutBytes = en.CSB.TPBC
			s.CC = en.CSB.CC.String()
			s.RecordStage(telemetry.StageSubmit, p.submitStart, p.pastedAt, 0)
			s.RecordStage(telemetry.StageFIFO, p.pastedAt, dequeuedAt, 0)
			s.RecordPipeline(engStart, time.Now(), pipelineStages(en.CSB.Cycles))
		}
	}
	p.ran = true
	c.dev.sb.Complete(wrapped)
	p.done <- struct{}{}
}
