package nx

import (
	"errors"
	"testing"
	"time"

	"nxzip/internal/faultinject"
)

// chaosDevice builds a device with a fast recovery budget (so storm
// tests trip their caps in microseconds, not milliseconds) and the given
// injection profile installed.
func chaosDevice(p faultinject.Profile, tune func(*DeviceConfig)) (*Device, *faultinject.Injector) {
	cfg := P9Device()
	cfg.Submit = SubmitPolicy{
		MaxFaultRounds:   4,
		MaxBackoffWaits:  4,
		BackoffBase:      time.Microsecond,
		BackoffMax:       2 * time.Microsecond,
		MaxPasteAttempts: 1 << 20,
	}
	if tune != nil {
		tune(&cfg)
	}
	dev := NewDevice(cfg)
	inj := faultinject.New(42, p)
	dev.SetInjector(inj)
	return dev, inj
}

func TestCCErrMapping(t *testing.T) {
	cases := []struct {
		cc   CC
		want error
	}{
		{CCTranslationFault, ErrTranslationFault},
		{CCTargetSpace, ErrTargetSpace},
		{CCDataCorrupt, ErrDataCorrupt},
		{CCInvalidCRB, ErrInvalidCRB},
		{CCCRCError, ErrCRCMismatch},
	}
	seen := map[error]bool{}
	for _, c := range cases {
		got := c.cc.Err()
		if !errors.Is(got, c.want) {
			t.Errorf("CC %s Err() = %v, want %v", c.cc, got, c.want)
		}
		if seen[got] {
			t.Errorf("CC %s maps to an error already used by another CC", c.cc)
		}
		seen[got] = true
	}
	if CCSuccess.Err() != nil {
		t.Errorf("CCSuccess.Err() = %v, want nil", CCSuccess.Err())
	}
}

func TestInjectedCCBecomesTypedError(t *testing.T) {
	cases := []struct {
		name    string
		profile faultinject.Profile
		want    error
	}{
		{"crc-error", faultinject.Profile{CRCError: 1}, ErrCRCMismatch},
		{"data-check", faultinject.Profile{DataCheck: 1}, ErrDataCorrupt},
		{"invalid-crb", faultinject.Profile{InvalidCRB: 1}, ErrInvalidCRB},
	}
	src := []byte("the quick brown fox jumps over the lazy dog")
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dev, _ := chaosDevice(c.profile, nil)
			ctx := dev.OpenContext(1)
			defer ctx.Close()
			_, _, err := ctx.Compress(src, FCCompressFHT, WrapGzip, true)
			if !errors.Is(err, c.want) {
				t.Fatalf("injected %s: err = %v, not errors.Is %v", c.name, err, c.want)
			}
		})
	}
}

func TestFaultStormTripsRoundCap(t *testing.T) {
	dev, inj := chaosDevice(faultinject.Profile{TransFault: 1}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	_, _, err := ctx.Compress([]byte("storm storm storm"), FCCompressFHT, WrapGzip, true)
	if !errors.Is(err, ErrFaultStorm) {
		t.Fatalf("permanent injected faults: err = %v, want ErrFaultStorm", err)
	}
	if !Retryable(err) {
		t.Fatal("ErrFaultStorm must be retryable (another device may be healthy)")
	}
	if inj.Injected(faultinject.TransFault) == 0 {
		t.Fatal("injector recorded no translation faults")
	}
	if got := dev.MetricsSnapshot().Counter("nx.fault_storms", ""); got != 1 {
		t.Fatalf("nx.fault_storms = %d, want 1", got)
	}
}

func TestEngineHangSurfaces(t *testing.T) {
	dev, _ := chaosDevice(faultinject.Profile{EngineHang: 1}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	_, _, err := ctx.Compress([]byte("hang"), FCCompressFHT, WrapGzip, true)
	if !errors.Is(err, ErrEngineHang) {
		t.Fatalf("hung engine: err = %v, want ErrEngineHang", err)
	}
	if !Retryable(err) {
		t.Fatal("ErrEngineHang must be retryable")
	}
	// The credit must have been returned even though the CSB never was:
	// a second request on a healed device still has credits to paste with.
	dev.SetInjector(nil)
	if _, _, err := ctx.Compress([]byte("healed"), FCCompressFHT, WrapGzip, true); err != nil {
		t.Fatalf("request after hang: %v (credit leaked by hang path?)", err)
	}
}

func TestDeviceOfflineAndRevive(t *testing.T) {
	dev, inj := chaosDevice(faultinject.Profile{}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	inj.SetOffline(true)
	if !dev.Offline() {
		t.Fatal("Device.Offline() false after SetOffline(true)")
	}
	_, _, err := ctx.Compress([]byte("dead"), FCCompressFHT, WrapGzip, true)
	if !errors.Is(err, ErrDeviceOffline) {
		t.Fatalf("offlined device: err = %v, want ErrDeviceOffline", err)
	}
	inj.SetOffline(false)
	if _, _, err := ctx.Compress([]byte("alive"), FCCompressFHT, WrapGzip, true); err != nil {
		t.Fatalf("revived device: %v", err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	dev, _ := chaosDevice(faultinject.Profile{}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	csb, _, err := ctx.Submit(&CRB{
		Func: FCCompressFHT, Wrap: WrapGzip, Input: []byte("late"),
		Deadline: time.Now().Add(-time.Millisecond),
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v (csb %v), want ErrDeadlineExceeded", err, csb)
	}
	if got := dev.MetricsSnapshot().Counter("nx.deadline_exceeded", ""); got != 1 {
		t.Fatalf("nx.deadline_exceeded = %d, want 1", got)
	}
}

func TestCancelation(t *testing.T) {
	dev, _ := chaosDevice(faultinject.Profile{}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	cancel := make(chan struct{})
	close(cancel)
	_, _, err := ctx.Submit(&CRB{
		Func: FCCompressFHT, Wrap: WrapGzip, Input: []byte("nope"),
		Cancel: cancel,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled request: err = %v, want ErrCanceled", err)
	}
	if Retryable(err) {
		t.Fatal("ErrCanceled must not be retryable — the caller gave up")
	}
}

func TestCreditLeakWedgesWindow(t *testing.T) {
	dev, inj := chaosDevice(faultinject.Profile{CreditLeak: 1}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	src := []byte("leak leak leak leak")
	// Every completion leaks its credit; the window has a finite pool, so
	// requests succeed until it runs dry, then paste bounces with an empty
	// FIFO until the backoff cap trips ErrDeviceBusy.
	var err error
	for i := 0; i < 64; i++ {
		if _, _, err = ctx.Compress(src, FCCompressFHT, WrapGzip, true); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrDeviceBusy) {
		t.Fatalf("wedged window: err = %v, want ErrDeviceBusy", err)
	}
	if inj.Injected(faultinject.CreditLeak) == 0 {
		t.Fatal("injector recorded no credit leaks")
	}
	if got := dev.Switchboard().Stats().CreditLeaks; got == 0 {
		t.Fatal("switchboard stats recorded no credit leaks")
	}
}

func TestPasteRejectionBackoffAccounting(t *testing.T) {
	dev, _ := chaosDevice(faultinject.Profile{PasteReject: 0.6}, func(cfg *DeviceConfig) {
		cfg.Submit.MaxBackoffWaits = 64
	})
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	src := []byte("backoff backoff backoff backoff")
	var rejects, waits int
	var backoffTime time.Duration
	for i := 0; i < 16; i++ {
		_, rep, err := ctx.Compress(src, FCCompressFHT, WrapGzip, true)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		rejects += rep.PasteRejects
		waits += rep.BackoffWaits
		backoffTime += rep.BackoffTime
		if rep.BackoffWaits > 0 && rep.WastedCycles == 0 {
			t.Fatal("backoff waits taken but WastedCycles = 0 — waits not charged")
		}
	}
	if rejects == 0 {
		t.Fatal("0.6 paste-reject rate over 16 requests produced no rejects")
	}
	if waits == 0 || backoffTime == 0 {
		t.Fatalf("rejected pastes with an empty FIFO must backoff: waits=%d time=%v", waits, backoffTime)
	}
	snap := dev.MetricsSnapshot()
	if got := snap.Counter("nx.backoff_waits", ""); got != int64(waits) {
		t.Fatalf("nx.backoff_waits = %d, reports summed to %d", got, waits)
	}
}

// TestResumeRequestsExemptFromInjectedCC pins the state-safety contract:
// a CRB carrying DecompState has already advanced the inflate session by
// the time a CC would be injected, so the engine never flips its
// completion — otherwise the stream owner could neither retry (double
// feed) nor surface a truthful error.
func TestResumeRequestsExemptFromInjectedCC(t *testing.T) {
	clean := NewDevice(P9Device())
	cctx := clean.OpenContext(1)
	defer cctx.Close()
	plain := []byte("resume me resume me resume me resume me")
	raw, _, err := cctx.Compress(plain, FCCompressFHT, WrapRaw, true)
	if err != nil {
		t.Fatal(err)
	}

	dev, _ := chaosDevice(faultinject.Profile{CRCError: 1, DataCheck: 1, InvalidCRB: 1}, nil)
	ctx := dev.OpenContext(1)
	defer ctx.Close()
	st := NewDecompState(0)
	csb, _, err := ctx.Submit(&CRB{Func: FCDecompress, Wrap: WrapRaw, Input: raw, DecompState: st})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("resume request got injected CC %s — resume state is now unrecoverable", csb.CC)
	}
	if string(csb.Output) != string(plain) {
		t.Fatalf("resume output mismatch: %q", csb.Output)
	}
}
