package nx

import (
	"nxzip/internal/deflate"
)

// DecompState is the decompression suspend/resume state a stream owner
// carries between requests: the inflate session (bit position within the
// pending input plus the 32 KiB output window). The paper describes
// exactly this state as what the decompressor must externalize when one
// DEFLATE stream spans multiple CRBs.
type DecompState struct {
	session *deflate.Session
	// produced counts total plaintext emitted across requests.
	produced int64
}

// NewDecompState creates resume state for a raw DEFLATE stream bounded by
// maxOutput (0 = 1 GiB).
func NewDecompState(maxOutput int) *DecompState {
	return &DecompState{session: deflate.NewSession(deflate.InflateOptions{MaxOutput: maxOutput})}
}

// NewDecompStateWithDict seeds the window with a preset dictionary.
func NewDecompStateWithDict(maxOutput int, dict []byte) *DecompState {
	return &DecompState{session: deflate.NewSessionWithWindow(deflate.InflateOptions{MaxOutput: maxOutput}, dict)}
}

// Done reports whether the stream's final block has been decoded.
func (d *DecompState) Done() bool { return d.session.Done() }

// Produced reports total plaintext bytes across all requests.
func (d *DecompState) Produced() int64 { return d.produced }

// Tail returns unconsumed bytes after the final block (stream trailer).
func (d *DecompState) Tail() []byte { return d.session.Tail() }

// SoftFeed advances the stream in software: the same inflate session the
// engine drives processes input on the host instead. A stream can move
// between device and software freely across requests — the resume state
// is this object either way. This is the degraded path the failover
// layer uses when no healthy device remains.
func (d *DecompState) SoftFeed(input []byte, final bool) ([]byte, error) {
	out, err := d.session.Feed(input, final)
	if err != nil {
		return nil, err
	}
	d.produced += int64(len(out))
	return out, nil
}

// decompressResume feeds one request's input into the carried session.
// Wrap must be WrapRaw: framing belongs to the stream owner, exactly as
// with compression segments.
func (e *Engine) decompressResume(crb *CRB, csb *CSB, translateCycles int64) {
	if crb.Wrap != WrapRaw {
		csb.CC = CCInvalidCRB
		csb.Detail = "resumable decompression requires raw wrap"
		return
	}
	st := crb.DecompState
	out, err := st.session.Feed(crb.Input, !crb.NotFinal)
	if err != nil {
		csb.CC = CCDataCorrupt
		csb.Detail = err.Error()
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), 0, translateCycles)
		return
	}
	// The compressed-to-plaintext ratio of one chunk is unbounded, so the
	// heuristic 2x default cap does not apply here; only an explicit
	// TargetCap bounds a single resume step (the session's MaxOutput
	// bounds the whole stream regardless).
	if crb.TargetCap > 0 && len(out) > crb.TargetCap {
		csb.CC = CCTargetSpace
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), len(out), translateCycles)
		return
	}
	st.produced += int64(len(out))
	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = len(crb.Input)
	csb.TPBC = len(out)
	csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), len(out), translateCycles)
}
