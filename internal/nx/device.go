package nx

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nxzip/internal/lz77"
	"nxzip/internal/nmmu"
	"nxzip/internal/pipeline"
	"nxzip/internal/vas"
)

// DeviceConfig assembles a full accelerator: engine model, translation
// unit and switchboard.
type DeviceConfig struct {
	Engine EngineConfig
	MMU    nmmu.Config
	VAS    vas.Config
	// Engines is the number of identical engines sharing the receive FIFO
	// (the P9 NX has separate gzip/842 engines; the z15 NXU has two
	// compression cores). Default 1.
	Engines int
}

// P9Device returns the POWER9 single-chip device configuration.
func P9Device() DeviceConfig {
	return DeviceConfig{Engine: P9Engine(), MMU: nmmu.DefaultConfig(), VAS: vas.DefaultConfig(), Engines: 1}
}

// Z15Device returns the z15 on-chip NXU configuration.
func Z15Device() DeviceConfig {
	return DeviceConfig{Engine: Z15Engine(), MMU: nmmu.DefaultConfig(), VAS: vas.DefaultConfig(), Engines: 1}
}

// Device is one on-chip accelerator instance: a receive FIFO fed by user
// windows, N engines, and the shared NMMU.
type Device struct {
	cfg     DeviceConfig
	mmu     *nmmu.MMU
	sb      *vas.Switchboard
	engines []*Engine
	nextEng atomic.Int64
	ctxSeq  atomic.Uint64
}

// NewDevice builds a device.
func NewDevice(cfg DeviceConfig) *Device {
	if cfg.Engines <= 0 {
		cfg.Engines = 1
	}
	d := &Device{
		cfg: cfg,
		mmu: nmmu.New(cfg.MMU),
		sb:  vas.New(cfg.VAS),
	}
	for i := 0; i < cfg.Engines; i++ {
		d.engines = append(d.engines, NewEngine(cfg.Engine, d.mmu))
	}
	return d
}

// MMU exposes the translation unit (tests and the fault experiments evict
// pages through it).
func (d *Device) MMU() *nmmu.MMU { return d.mmu }

// Switchboard exposes the VAS instance.
func (d *Device) Switchboard() *vas.Switchboard { return d.sb }

// Engine returns engine i.
func (d *Device) Engine(i int) *Engine { return d.engines[i%len(d.engines)] }

// PipelineConfig returns the engine timing model.
func (d *Device) PipelineConfig() pipeline.Config { return d.cfg.Engine.Pipeline }

// Context is a process's view of the device: an address space, a send
// window, and a bump allocator for buffer VAs. A Context is safe for
// concurrent use by multiple goroutines: requests from all of them ride
// the same send window (sharing its credits) and buffer VAs are handed
// out under a lock. Callers that want per-worker windows — the
// multi-window submission pattern the VAS design is built for — open one
// Context per worker instead.
type Context struct {
	dev    *Device
	pid    nmmu.PID
	window int

	mu     sync.Mutex
	nextVA uint64
}

// ctxVASpan is the size of each context's private VA region. Contexts of
// the same address space allocate from disjoint regions so concurrent
// contexts never alias pages.
const ctxVASpan = 1 << 44

// OpenContext registers an address space and opens a send window.
func (d *Device) OpenContext(pid nmmu.PID) *Context {
	d.mmu.CreateSpace(pid)
	return &Context{
		dev:    d,
		pid:    pid,
		window: d.sb.OpenSendWindow(pid),
		// Leave a null guard region at the bottom of the region.
		nextVA: d.ctxSeq.Add(1)*ctxVASpan + 1<<20,
	}
}

// Close releases the context's send window.
func (c *Context) Close() { c.dev.sb.CloseSendWindow(c.window) }

// PID returns the context's address-space id.
func (c *Context) PID() nmmu.PID { return c.pid }

// MapBuffer reserves a buffer VA range. resident=false maps it
// demand-paged, so the engine faults on first access (experiment E12).
func (c *Context) MapBuffer(size int, resident bool) (uint64, error) {
	if size <= 0 {
		size = 1
	}
	ps := uint64(c.dev.mmu.Config().PageSize)
	span := (uint64(size) + ps - 1) / ps * ps
	c.mu.Lock()
	va := c.nextVA
	c.nextVA += span + ps // guard page between buffers
	c.mu.Unlock()
	if err := c.dev.mmu.Map(c.pid, va, size, resident); err != nil {
		return 0, err
	}
	return va, nil
}

// Report summarizes one completed (possibly retried) request.
type Report struct {
	Engine       string
	Func         FuncCode
	Wrap         Wrap
	InBytes      int
	OutBytes     int
	Ratio        float64 // input/output for compression, output/input for decompression
	Breakdown    pipeline.Breakdown
	Retries      int   // fault-and-resubmit rounds
	WastedCycles int64 // cycles burned by faulted attempts
	TotalCycles  int64 // wasted + final attempt
	Time         time.Duration
	LZ           lz77.HWStats
}

// ErrDeviceBusy is returned when paste retries exhaust (queue saturated).
var ErrDeviceBusy = errors.New("nx: device busy: paste rejected repeatedly")

// maxPasteRetries bounds the submission spin.
const maxPasteRetries = 1 << 20

// pendingCRB is the switchboard payload for one in-flight request: the
// request itself plus a completion slot. Whichever submitter goroutine
// dequeues the entry runs it and closes done; the owner waits on done, so
// concurrent submitters never lose a request another goroutine drained.
type pendingCRB struct {
	crb  *CRB
	csb  *CSB
	done chan struct{}
}

// submit pastes the CRB, runs an engine, and implements the OS side of
// the fault protocol: on CCTranslationFault, touch the page and resubmit.
// Safe for concurrent callers: the model has no dedicated engine thread,
// so every submitter doubles as an engine driver — it drains the receive
// FIFO (running whatever it dequeues, its own request or a neighbour's)
// until its own request completes, then builds the report from its CSB.
func (c *Context) submit(crb *CRB) (*CSB, *Report, error) {
	var (
		retries int
		wasted  int64
	)
	for {
		p := &pendingCRB{crb: crb, done: make(chan struct{})}
		wrapped := &vas.CRB{Payload: p}
		pasted := false
		for try := 0; try < maxPasteRetries; try++ {
			err := c.dev.sb.Paste(c.window, wrapped)
			if err == nil {
				pasted = true
				break
			}
			if errors.Is(err, vas.ErrWindowClosed) {
				return nil, nil, err
			}
			// Credit/FIFO pressure: drain one entry and retry. If the FIFO
			// is empty the backlog is running on other goroutines — yield
			// until a credit comes back.
			if pending := c.dev.sb.Dequeue(); pending != nil {
				c.runOne(pending)
			} else {
				runtime.Gosched()
			}
		}
		if !pasted {
			return nil, nil, ErrDeviceBusy
		}
		// Engine picks up work in FIFO order; drain until ours completes.
		// An empty FIFO before our completion means another submitter
		// dequeued our entry — wait for it to finish the run.
		var csb *CSB
		for csb == nil {
			select {
			case <-p.done:
				csb = p.csb
			default:
				if pending := c.dev.sb.Dequeue(); pending != nil {
					c.runOne(pending)
					continue
				}
				<-p.done
				csb = p.csb
			}
		}
		if csb.CC != CCTranslationFault {
			rep := &Report{
				Engine:       c.dev.cfg.Engine.Pipeline.Name,
				Func:         crb.Func,
				Wrap:         crb.Wrap,
				InBytes:      csb.SPBC,
				OutBytes:     csb.TPBC,
				Breakdown:    csb.Cycles,
				Retries:      retries,
				WastedCycles: wasted,
				TotalCycles:  wasted + csb.Cycles.Total,
				LZ:           csb.LZ,
			}
			rep.Time = c.dev.cfg.Engine.Pipeline.Time(rep.TotalCycles)
			if csb.SPBC > 0 && csb.TPBC > 0 {
				rep.Ratio = float64(csb.SPBC) / float64(csb.TPBC)
			}
			return csb, rep, nil
		}
		// Fault protocol: touch and resubmit.
		retries++
		wasted += csb.Cycles.Total
		if err := c.dev.mmu.Touch(c.pid, csb.FaultVA); err != nil {
			return csb, nil, fmt.Errorf("nx: fault handler: %w", err)
		}
	}
}

// runOne executes a dequeued CRB on the next engine (round-robin across
// the device's engines, which process concurrently — the z15 NXU pairs
// two compression cores behind one queue), completes it at the
// switchboard, and signals the submitting goroutine.
func (c *Context) runOne(wrapped *vas.CRB) {
	p := wrapped.Payload.(*pendingCRB)
	idx := int(c.dev.nextEng.Add(1)-1) % len(c.dev.engines)
	p.csb = c.dev.engines[idx].Process(wrapped.PID, p.crb)
	c.dev.sb.Complete(wrapped)
	close(p.done)
}

// Compress runs a full user-level compression: map buffers, submit,
// handle faults, return output and accounting.
func (c *Context) Compress(input []byte, fc FuncCode, wrap Wrap, resident bool) ([]byte, *Report, error) {
	srcVA, err := c.MapBuffer(len(input), resident)
	if err != nil {
		return nil, nil, err
	}
	capOut := 2*len(input) + 1024
	dstVA, err := c.MapBuffer(capOut, resident)
	if err != nil {
		return nil, nil, err
	}
	crb := &CRB{
		Func:      fc,
		Wrap:      wrap,
		Input:     input,
		SourceVA:  srcVA,
		TargetVA:  dstVA,
		TargetCap: capOut,
	}
	csb, rep, err := c.submit(crb)
	if err != nil {
		return nil, rep, err
	}
	if csb.CC != CCSuccess {
		return nil, rep, fmt.Errorf("nx: %s: %s %s", fc, csb.CC, csb.Detail)
	}
	return csb.Output, rep, nil
}

// Decompress runs a full user-level decompression.
func (c *Context) Decompress(input []byte, wrap Wrap, maxOutput int, resident bool) ([]byte, *Report, error) {
	srcVA, err := c.MapBuffer(len(input), resident)
	if err != nil {
		return nil, nil, err
	}
	if maxOutput <= 0 {
		maxOutput = 64 * len(input)
	}
	dstVA, err := c.MapBuffer(maxOutput, resident)
	if err != nil {
		return nil, nil, err
	}
	crb := &CRB{
		Func:      FCDecompress,
		Wrap:      wrap,
		Input:     input,
		SourceVA:  srcVA,
		TargetVA:  dstVA,
		TargetCap: maxOutput,
		MaxOutput: maxOutput,
	}
	csb, rep, err := c.submit(crb)
	if err != nil {
		return nil, rep, err
	}
	if csb.CC != CCSuccess {
		return nil, rep, fmt.Errorf("nx: decompress: %s %s", csb.CC, csb.Detail)
	}
	return csb.Output, rep, nil
}

// Submit exposes the raw CRB path for callers that build their own
// request blocks (the canned-DHT experiment, 842, corrupt-data tests).
func (c *Context) Submit(crb *CRB) (*CSB, *Report, error) {
	return c.submit(crb)
}

// SyncCall submits a request through the synchronous-instruction
// interface (the z15 integration style): no VAS paste, no queue — the
// calling CPU dispatches the engine directly and waits. The fault
// protocol still applies (the instruction completes partially and
// software retries after touching the page). Returns an error on devices
// without a synchronous path.
func (c *Context) SyncCall(crb *CRB) (*CSB, *Report, error) {
	if c.dev.cfg.Engine.Pipeline.SyncSetupCycles <= 0 {
		return nil, nil, fmt.Errorf("nx: %s has no synchronous submission interface", c.dev.cfg.Engine.Pipeline.Name)
	}
	crb.SyncSubmit = true
	var (
		retries int
		wasted  int64
	)
	for {
		idx := int(c.dev.nextEng.Add(1)-1) % len(c.dev.engines)
		csb := c.dev.engines[idx].Process(c.pid, crb)
		if csb.CC != CCTranslationFault {
			rep := &Report{
				Engine:       c.dev.cfg.Engine.Pipeline.Name,
				Func:         crb.Func,
				Wrap:         crb.Wrap,
				InBytes:      csb.SPBC,
				OutBytes:     csb.TPBC,
				Breakdown:    csb.Cycles,
				Retries:      retries,
				WastedCycles: wasted,
				TotalCycles:  wasted + csb.Cycles.Total,
				LZ:           csb.LZ,
			}
			rep.Time = c.dev.cfg.Engine.Pipeline.Time(rep.TotalCycles)
			if csb.SPBC > 0 && csb.TPBC > 0 {
				rep.Ratio = float64(csb.SPBC) / float64(csb.TPBC)
			}
			return csb, rep, nil
		}
		retries++
		wasted += csb.Cycles.Total
		if err := c.dev.mmu.Touch(c.pid, csb.FaultVA); err != nil {
			return csb, nil, fmt.Errorf("nx: fault handler: %w", err)
		}
	}
}

// Device returns the device this context is bound to.
func (c *Context) Device() *Device { return c.dev }
