package nx

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nxzip/internal/faultinject"
	"nxzip/internal/lz77"
	"nxzip/internal/nmmu"
	"nxzip/internal/obs"
	"nxzip/internal/pipeline"
	"nxzip/internal/telemetry"
	"nxzip/internal/vas"
)

// DeviceConfig assembles a full accelerator: engine model, translation
// unit and switchboard.
type DeviceConfig struct {
	Engine EngineConfig
	MMU    nmmu.Config
	VAS    vas.Config
	// Engines is the number of identical engines sharing the receive FIFO
	// (the P9 NX has separate gzip/842 engines; the z15 NXU has two
	// compression cores). Default 1.
	Engines int
	// Submit bounds the recovery work one request may consume (fault
	// resubmit rounds, paste retries, backoff waits, wall-clock). Zero
	// fields take DefaultSubmitPolicy values.
	Submit SubmitPolicy
}

// SubmitPolicy is the submission-side recovery budget: how hard
// Context.submit fights for one request before reporting a typed
// failure instead of spinning forever.
type SubmitPolicy struct {
	// MaxFaultRounds caps translation-fault touch-and-resubmit rounds;
	// beyond it submission fails with ErrFaultStorm. A page that never
	// becomes resident (or an injected fault storm) is bounded by this.
	MaxFaultRounds int
	// MaxPasteAttempts caps paste tries per round (draining the FIFO
	// between tries, as before); beyond it submission fails with
	// ErrDeviceBusy.
	MaxPasteAttempts int
	// MaxBackoffWaits caps how many backoff sleeps a round may take while
	// the FIFO is empty and the paste keeps bouncing — the signature of a
	// wedged window (leaked credits) rather than ordinary saturation.
	// Beyond it submission fails with ErrDeviceBusy.
	MaxBackoffWaits int
	// BackoffBase/BackoffMax shape the exponential backoff (with jitter)
	// between paste retries when there is no queued work to drain,
	// replacing the old busy yield loop.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Timeout, when non-zero, is the default per-request deadline applied
	// to CRBs that carry none of their own.
	Timeout time.Duration
}

// DefaultSubmitPolicy returns the shipped recovery budget.
func DefaultSubmitPolicy() SubmitPolicy {
	return SubmitPolicy{
		MaxFaultRounds:   64,
		MaxPasteAttempts: 1 << 20,
		MaxBackoffWaits:  2048,
		BackoffBase:      2 * time.Microsecond,
		BackoffMax:       time.Millisecond,
	}
}

// withDefaults fills zero fields from DefaultSubmitPolicy.
func (p SubmitPolicy) withDefaults() SubmitPolicy {
	def := DefaultSubmitPolicy()
	if p.MaxFaultRounds <= 0 {
		p.MaxFaultRounds = def.MaxFaultRounds
	}
	if p.MaxPasteAttempts <= 0 {
		p.MaxPasteAttempts = def.MaxPasteAttempts
	}
	if p.MaxBackoffWaits <= 0 {
		p.MaxBackoffWaits = def.MaxBackoffWaits
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = def.BackoffMax
		if p.BackoffMax < p.BackoffBase {
			p.BackoffMax = p.BackoffBase
		}
	}
	return p
}

// P9Device returns the POWER9 single-chip device configuration.
func P9Device() DeviceConfig {
	return DeviceConfig{Engine: P9Engine(), MMU: nmmu.DefaultConfig(), VAS: vas.DefaultConfig(), Engines: 1}
}

// Z15Device returns the z15 on-chip NXU configuration.
func Z15Device() DeviceConfig {
	return DeviceConfig{Engine: Z15Engine(), MMU: nmmu.DefaultConfig(), VAS: vas.DefaultConfig(), Engines: 1}
}

// Device is one on-chip accelerator instance: a receive FIFO fed by user
// windows, N engines, and the shared NMMU.
type Device struct {
	cfg     DeviceConfig
	mmu     *nmmu.MMU
	sb      *vas.Switchboard
	engines []*Engine
	nextEng atomic.Int64
	ctxSeq  atomic.Uint64

	reg     *telemetry.Registry
	met     *devMetrics
	tracer  atomic.Pointer[telemetry.Tracer]
	inj     atomic.Pointer[faultinject.Injector]
	events  atomic.Pointer[eventHook]
	created time.Time
}

// eventHook pairs the node's event bus with this device's topology
// label, so device-local transitions (engine hangs, credit leaks)
// publish under the right name.
type eventHook struct {
	bus   *obs.Bus
	label string
}

// devMetrics holds the device-level instruments, resolved once at
// construction so the request path pays only atomic updates.
type devMetrics struct {
	requests     *telemetry.Counter
	inBytes      *telemetry.Counter
	outBytes     *telemetry.Counter
	faultRetries *telemetry.Counter
	syncCalls    *telemetry.Counter
	queueWaitUS  *telemetry.Histogram // paste-accept to dequeue, µs wall-clock
	cc           [ccCount]*telemetry.Counter

	// Per-codec traffic split (nx.codec.* vecs, labeled by codec name):
	// the aggregate nx.requests/in_bytes/out_bytes stay untouched — the
	// SLO engine reads them by exact name.
	codecRequests [codecCount]*telemetry.Counter
	codecInBytes  [codecCount]*telemetry.Counter
	codecOutBytes [codecCount]*telemetry.Counter

	// Recovery instruments (the failure model's visible surface).
	faultStorms    *telemetry.Counter   // submissions that hit the fault-round cap
	engineHangs    *telemetry.Counter   // requests dropped without a CSB write
	offlineRejects *telemetry.Counter   // submissions refused: device offline
	deadlineFails  *telemetry.Counter   // submissions that ran out of deadline
	backoffWaits   *telemetry.Counter   // paste backoff sleeps taken
	backoffUS      *telemetry.Histogram // per-request total backoff, µs wall-clock
}

// bumpCodec splits one completed request into the per-codec series.
// Transcode requests bump both sides; FCMove (no codec) bumps none.
// Allocation-free: it runs on the pooled zero-alloc path.
func (m *devMetrics) bumpCodec(crb *CRB, csb *CSB) {
	need := crb.RequiredCodecs()
	for c := Codec(0); c < codecCount; c++ {
		if need.Has(c) {
			m.codecRequests[c].Inc()
			m.codecInBytes[c].Add(int64(csb.SPBC))
			m.codecOutBytes[c].Add(int64(csb.TPBC))
		}
	}
}

// NewDevice builds a device.
func NewDevice(cfg DeviceConfig) *Device {
	if cfg.Engines <= 0 {
		cfg.Engines = 1
	}
	cfg.Submit = cfg.Submit.withDefaults()
	reg := telemetry.NewRegistry()
	d := &Device{
		cfg:     cfg,
		mmu:     nmmu.New(cfg.MMU),
		sb:      vas.New(cfg.VAS),
		reg:     reg,
		created: time.Now(),
	}
	d.met = &devMetrics{
		requests:     reg.Counter("nx.requests"),
		inBytes:      reg.Counter("nx.in_bytes"),
		outBytes:     reg.Counter("nx.out_bytes"),
		faultRetries: reg.Counter("nx.fault_retries"),
		syncCalls:    reg.Counter("nx.sync_calls"),
		queueWaitUS:  reg.Histogram("nx.queue_wait_us"),

		faultStorms:    reg.Counter("nx.fault_storms"),
		engineHangs:    reg.Counter("nx.engine_hangs"),
		offlineRejects: reg.Counter("nx.offline_rejects"),
		deadlineFails:  reg.Counter("nx.deadline_exceeded"),
		backoffWaits:   reg.Counter("nx.backoff_waits"),
		backoffUS:      reg.Histogram("nx.backoff_us"),
	}
	ccVec := reg.CounterVec("nx.cc")
	for cc := CC(0); cc < ccCount; cc++ {
		d.met.cc[cc] = ccVec.With(cc.String())
	}
	codecReqVec := reg.CounterVec("nx.codec.requests")
	codecInVec := reg.CounterVec("nx.codec.in_bytes")
	codecOutVec := reg.CounterVec("nx.codec.out_bytes")
	for _, c := range AllCodecs() {
		d.met.codecRequests[c] = codecReqVec.With(c.String())
		d.met.codecInBytes[c] = codecInVec.With(c.String())
		d.met.codecOutBytes[c] = codecOutVec.With(c.String())
	}
	d.mmu.SetMetrics(reg)
	d.sb.SetMetrics(reg)
	for i := 0; i < cfg.Engines; i++ {
		d.engines = append(d.engines, NewEngine(cfg.Engine, d.mmu))
	}
	return d
}

// Registry exposes the device's metrics registry so callers can add
// their own instruments (the root package's writer/reader stats live
// here too, keeping one snapshot for the whole stack).
func (d *Device) Registry() *telemetry.Registry { return d.reg }

// StartTrace installs a tracer: from now on every request carries a
// span emitted to sink at CSB completion. Replaces any previous tracer
// without closing its sink. With no tracer installed the request path
// allocates nothing for tracing.
func (d *Device) StartTrace(sink telemetry.Sink) {
	d.tracer.Store(telemetry.NewTracer(sink))
}

// StopTrace uninstalls the tracer and closes its sink. In-flight spans
// started under the old tracer still emit to it.
func (d *Device) StopTrace() error {
	return d.tracer.Swap(nil).Close()
}

// InstallTracer installs an existing tracer without building a new one —
// node-level tracing shares one tracer (one span-id sequence, one sink)
// across every device of a pool.
func (d *Device) InstallTracer(t *telemetry.Tracer) { d.tracer.Store(t) }

// RemoveTracer uninstalls and returns the tracer without closing its
// sink, so a shared sink is closed exactly once by the owner.
func (d *Device) RemoveTracer() *telemetry.Tracer { return d.tracer.Swap(nil) }

// Tracer returns the installed tracer, or nil when tracing is off.
func (d *Device) Tracer() *telemetry.Tracer { return d.tracer.Load() }

// SetInjector installs a fault injector across every layer of the
// device — submission path, engines, translation unit and switchboard
// all consult it at their hook points. Passing nil uninstalls it. With
// no injector installed (the default) every hook is an atomic load plus
// a nil check, mirroring the tracer wiring.
func (d *Device) SetInjector(inj *faultinject.Injector) {
	d.inj.Store(inj)
	for _, e := range d.engines {
		e.SetInjector(inj)
	}
	d.mmu.SetInjector(inj)
	d.sb.SetInjector(inj)
}

// Injector returns the installed injector, or nil when fault injection
// is off.
func (d *Device) Injector() *faultinject.Injector { return d.inj.Load() }

// SetEventBus attaches the node's event bus; label names this device in
// published events. Device-local transitions — engine hangs and
// switchboard credit leaks — publish through it. Passing a nil bus
// detaches, restoring the zero-cost path (one atomic load + nil check).
func (d *Device) SetEventBus(bus *obs.Bus, label string) {
	if bus == nil {
		d.events.Store(nil)
		d.sb.SetCreditLeakHook(nil)
		return
	}
	d.events.Store(&eventHook{bus: bus, label: label})
	d.sb.SetCreditLeakHook(func() {
		bus.Publish(obs.Event{Type: obs.EventCreditLeak, Device: label, Detail: "completion swallowed send-window credit"})
	})
}

// Offline reports whether the device is currently offlined by the
// injector (the chaos harness's kill switch). An offline device refuses
// new submissions with ErrDeviceOffline; requests already on an engine
// complete normally, like a drawer being fenced.
func (d *Device) Offline() bool { return d.inj.Load().Offline() }

// engineStageNames orders a breakdown's per-stage sums for labeling.
var engineStageNames = []string{
	"setup", "translate", "dht-gen", "dma-in", "lz", "encode", "decode", "dma-out", "complete",
}

func breakdownByStage(b pipeline.Breakdown) []int64 {
	return []int64{b.Setup, b.Translate, b.DHTGen, b.DMAIn, b.LZ, b.Encode, b.Decode, b.DMAOut, b.Complete}
}

// MetricsSnapshot captures every instrument: the registry (vas.*,
// nmmu.*, nx.* and anything callers registered) plus the per-engine
// counters harvested under each engine's lock — requests, bytes, CC
// counts, per-stage cycle sums, and busy/idle cycles (idle = wall-clock
// since device creation converted at the modelled clock, minus busy).
func (d *Device) MetricsSnapshot() *telemetry.Snapshot {
	snap := d.reg.Snapshot()
	elapsedCycles := d.UptimeCycles()
	for i, e := range d.engines {
		ct := e.Counters()
		label := strconv.Itoa(i)
		idle := elapsedCycles - ct.BusyCycles
		if idle < 0 {
			idle = 0
		}
		snap.Counters = append(snap.Counters,
			telemetry.CounterSnapshot{Name: "nx.engine.requests", Label: label, Value: ct.Requests},
			telemetry.CounterSnapshot{Name: "nx.engine.busy_cycles", Label: label, Value: ct.BusyCycles},
			telemetry.CounterSnapshot{Name: "nx.engine.idle_cycles", Label: label, Value: idle},
			telemetry.CounterSnapshot{Name: "nx.engine.in_bytes", Label: label, Value: ct.InBytes},
			telemetry.CounterSnapshot{Name: "nx.engine.out_bytes", Label: label, Value: ct.OutBytes},
		)
		stages := breakdownByStage(ct.StageCycles)
		for si, name := range engineStageNames {
			snap.Counters = append(snap.Counters, telemetry.CounterSnapshot{
				Name: "nx.engine.stage_cycles", Label: label + "/" + name, Value: stages[si],
			})
		}
		for cc := CC(0); cc < ccCount; cc++ {
			if n := ct.CCCounts[cc]; n > 0 {
				snap.Counters = append(snap.Counters, telemetry.CounterSnapshot{
					Name: "nx.engine.cc", Label: label + "/" + cc.String(), Value: n,
				})
			}
		}
	}
	snap.Sort()
	return snap
}

// UptimeCycles returns wall-clock time since device creation converted
// to modelled engine cycles — the denominator for utilization.
func (d *Device) UptimeCycles() int64 {
	return int64(time.Since(d.created).Seconds() * d.cfg.Engine.Pipeline.ClockGHz * 1e9)
}

// BusyCycles sums the busy cycles across the device's engines; paired
// with UptimeCycles it yields device utilization.
func (d *Device) BusyCycles() int64 {
	var total int64
	for _, e := range d.engines {
		total += e.Counters().BusyCycles
	}
	return total
}

// MMU exposes the translation unit (tests and the fault experiments evict
// pages through it).
func (d *Device) MMU() *nmmu.MMU { return d.mmu }

// Switchboard exposes the VAS instance.
func (d *Device) Switchboard() *vas.Switchboard { return d.sb }

// EngineCount returns the number of engines behind the receive FIFO.
func (d *Device) EngineCount() int { return len(d.engines) }

// Codecs returns the codec capability set this device's engines
// advertise (zero means all codecs). Dispatch layers route by it.
func (d *Device) Codecs() CodecSet { return d.cfg.Engine.Codecs }

// Engine returns engine i, wrapping modulo EngineCount: Engine(i) never
// panics for i >= 0, which serves callers spreading work with an
// unbounded counter. Callers indexing a known engine range should use
// EngineAt, which refuses out-of-range indices instead of silently
// aliasing engine i%N.
func (d *Device) Engine(i int) *Engine { return d.engines[i%len(d.engines)] }

// EngineAt returns engine i with strict bounds checking — no modulo
// wrap. It reports an error when i is outside [0, EngineCount).
func (d *Device) EngineAt(i int) (*Engine, error) {
	if i < 0 || i >= len(d.engines) {
		return nil, fmt.Errorf("nx: engine index %d out of range [0,%d)", i, len(d.engines))
	}
	return d.engines[i], nil
}

// PipelineConfig returns the engine timing model.
func (d *Device) PipelineConfig() pipeline.Config { return d.cfg.Engine.Pipeline }

// Context is a process's view of the device: an address space, a send
// window, and a bump allocator for buffer VAs. A Context is safe for
// concurrent use by multiple goroutines: requests from all of them ride
// the same send window (sharing its credits) and buffer VAs are handed
// out under a lock. Callers that want per-worker windows — the
// multi-window submission pattern the VAS design is built for — open one
// Context per worker instead.
type Context struct {
	dev    *Device
	pid    nmmu.PID
	window int
	closed atomic.Bool

	// tenant is the node-level view identity this context submits under
	// (topology.Context.ID): stamped onto every span so traces join with
	// admission quotas and tenant-labeled latency series. 0 for raw
	// single-device contexts opened outside a node view.
	tenant uint64
	// prio points at the admission-class name the owning view currently
	// carries ("interactive", "batch", "background"); nil when the view
	// never set one. A pointer to a static name keeps the span-start
	// read allocation-free.
	prio atomic.Pointer[string]

	mu     sync.Mutex
	nextVA uint64
	// Reusable VA arena: released spans pool in per-size-class free
	// lists (class = log2 of the page count, rounded up) and are handed
	// back by AcquireVA without touching the MMU — steady-state one-shot
	// traffic mints no fresh translations. vaClass remembers each arena
	// span's class so ReleaseVA is self-describing.
	arena   [arenaClasses][]uint64
	vaClass map[uint64]uint8
}

// arenaClasses bounds the arena's size-class ladder: class c spans
// 1<<c pages, so 32 classes cover far beyond any modelled buffer.
const arenaClasses = 32

// ctxVASpan is the size of each context's private VA region. Contexts of
// the same address space allocate from disjoint regions so concurrent
// contexts never alias pages.
const ctxVASpan = 1 << 44

// OpenContext registers an address space and opens a send window.
func (d *Device) OpenContext(pid nmmu.PID) *Context {
	d.mmu.CreateSpace(pid)
	return &Context{
		dev:    d,
		pid:    pid,
		window: d.sb.OpenSendWindow(pid),
		// Leave a null guard region at the bottom of the region.
		nextVA: d.ctxSeq.Add(1)*ctxVASpan + 1<<20,
	}
}

// Close releases the context's send window. Close is idempotent: the
// window is released exactly once and repeated calls are no-ops, so a
// double close can neither panic nor disturb the switchboard's credit
// accounting. Requests in flight at Close drain normally (their credits
// return via Complete); new submissions fail with vas.ErrWindowClosed.
func (c *Context) Close() {
	if c.closed.CompareAndSwap(false, true) {
		c.dev.sb.CloseSendWindow(c.window)
	}
}

// PID returns the context's address-space id.
func (c *Context) PID() nmmu.PID { return c.pid }

// Window returns the context's VAS send-window id (tests and tools
// inspect credits through it).
func (c *Context) Window() int { return c.window }

// SetTenant stamps the node-level view identity this context submits
// under. Setup-time configuration: call before concurrent submission
// begins (the topology layer sets it at context open).
func (c *Context) SetTenant(id uint64) { c.tenant = id }

// Tenant returns the context's view identity (0 when unset).
func (c *Context) Tenant() uint64 { return c.tenant }

// SetPriorityName publishes the admission-class name this context's
// requests carry; spans started afterwards are stamped with it. Safe
// to call concurrently with submission.
func (c *Context) SetPriorityName(name string) { c.prio.Store(&name) }

// priorityName reads the current class name without allocating.
func (c *Context) priorityName() string {
	if p := c.prio.Load(); p != nil {
		return *p
	}
	return ""
}

// MapBuffer reserves a buffer VA range. resident=false maps it
// demand-paged, so the engine faults on first access (experiment E12).
func (c *Context) MapBuffer(size int, resident bool) (uint64, error) {
	if size <= 0 {
		size = 1
	}
	ps := uint64(c.dev.mmu.Config().PageSize)
	span := (uint64(size) + ps - 1) / ps * ps
	c.mu.Lock()
	va := c.nextVA
	c.nextVA += span + ps // guard page between buffers
	c.mu.Unlock()
	if err := c.dev.mmu.Map(c.pid, va, size, resident); err != nil {
		return 0, err
	}
	return va, nil
}

// AcquireVA returns a resident mapping for a buffer of size bytes from
// the context's reusable arena. The first acquisition of a size class
// maps fresh pages; after ReleaseVA the span is handed out again with no
// MMU work at all, so repeated one-shot requests stop minting fresh
// translations (the leak MapBuffer's bump-only allocator had). Spans are
// rounded up to a power-of-two page count and keep a guard page after
// them. Use MapBuffer instead for demand-paged (resident=false) ranges.
func (c *Context) AcquireVA(size int) (uint64, error) {
	if size <= 0 {
		size = 1
	}
	ps := c.dev.mmu.Config().PageSize
	pages := (size + ps - 1) / ps
	cls := uint8(0)
	for 1<<cls < pages {
		cls++
	}
	span := (uint64(1) << cls) * uint64(ps)
	c.mu.Lock()
	if l := c.arena[cls]; len(l) > 0 {
		va := l[len(l)-1]
		c.arena[cls] = l[:len(l)-1]
		c.mu.Unlock()
		return va, nil
	}
	va := c.nextVA
	c.nextVA += span + uint64(ps) // guard page between spans
	if c.vaClass == nil {
		c.vaClass = make(map[uint64]uint8)
	}
	c.vaClass[va] = cls
	c.mu.Unlock()
	if err := c.dev.mmu.Map(c.pid, va, int(span), true); err != nil {
		return 0, err
	}
	return va, nil
}

// ReleaseVA returns an AcquireVA span to the arena for reuse. The pages
// stay mapped (software keeps its buffer pool warm; translations are the
// expensive part). Releasing a VA not handed out by AcquireVA is a no-op.
func (c *Context) ReleaseVA(va uint64) {
	if va == 0 {
		return
	}
	c.mu.Lock()
	if cls, ok := c.vaClass[va]; ok {
		c.arena[cls] = append(c.arena[cls], va)
	}
	c.mu.Unlock()
}

// Report summarizes one completed (possibly retried) request.
type Report struct {
	Engine       string
	Func         FuncCode
	Wrap         Wrap
	InBytes      int
	OutBytes     int
	Ratio        float64 // input/output for compression, output/input for decompression
	Breakdown    pipeline.Breakdown
	Retries      int // fault-and-resubmit rounds
	PasteRejects int // paste bounces (credit/FIFO/injected) across all rounds
	BackoffWaits int // backoff sleeps taken while pasting
	BackoffTime  time.Duration
	WastedCycles int64 // cycles burned by faulted attempts and backoff waits
	TotalCycles  int64 // wasted + final attempt
	Time         time.Duration
	LZ           lz77.HWStats
}

// Submission-path errors. All are errors.Is-able; Retryable classifies
// them for the failover layer.
var (
	// ErrDeviceBusy: the recovery budget for paste retries/backoff waits
	// exhausted (queue saturated or window wedged by leaked credits).
	ErrDeviceBusy = errors.New("nx: device busy: paste rejected repeatedly")
	// ErrFaultStorm: the translation-fault resubmit round cap tripped —
	// a page that never becomes resident, or an injected fault storm.
	ErrFaultStorm = errors.New("nx: translation-fault storm: resubmit budget exhausted")
	// ErrDeviceOffline: the device is fenced (chaos kill, hardware gone).
	ErrDeviceOffline = errors.New("nx: device offline")
	// ErrEngineHang: the engine dropped the request without writing its
	// CSB; the OS-side watchdog reset the engine and reclaimed the credit.
	ErrEngineHang = errors.New("nx: engine hang: no CSB written")
	// ErrDeadlineExceeded: the request's wall-clock budget ran out
	// between recovery rounds.
	ErrDeadlineExceeded = errors.New("nx: request deadline exceeded")
	// ErrCanceled: the request's Cancel channel closed.
	ErrCanceled = errors.New("nx: request canceled")
)

// Retryable reports whether a submission error is worth re-dispatching
// (to the same or, better, another device): the input is intact and the
// failure was transient or device-local. Deadline/cancel failures are
// not retryable (the budget belongs to the caller), and data-plane
// completions (ErrDataCorrupt, ErrInvalidCRB, ErrTargetSpace) are not
// retryable as-is — the failover layer handles those by re-checking or
// rebuilding in software.
func Retryable(err error) bool {
	return errors.Is(err, ErrCRCMismatch) ||
		errors.Is(err, ErrEngineHang) ||
		errors.Is(err, ErrDeviceOffline) ||
		errors.Is(err, ErrDeviceBusy) ||
		errors.Is(err, ErrFaultStorm)
}

// backoffSeq drives the deterministic-enough jitter of paste backoff.
var backoffSeq atomic.Uint64

// jitter returns a sleep in [d/2, d].
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	z := backoffSeq.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= z >> 27
	half := uint64(d) / 2
	return time.Duration(half + z%(half+1))
}

// pendingCRB is the switchboard payload for one in-flight request: the
// request itself plus a completion slot. Whichever submitter goroutine
// dequeues the entry runs it and signals done; the owner waits on done,
// so concurrent submitters never lose a request another goroutine
// drained.
//
// Entries are pooled: done is a buffered (capacity-1) channel carrying
// one token per completed round instead of being closed, so the same
// entry cycles through fault rounds and back into the pool. ran replaces
// the old nil-CSB hang check — the CSB is caller-owned now and may hold
// stale bytes, so only the dequeuer's explicit flag says whether a
// completion was written.
//
// The trace fields cross goroutines with well-defined happens-before
// edges: the owner writes span/submitStart/pastedAt/pasteRejects before
// the successful Paste (the switchboard mutex publishes them to the
// dequeuer); the dequeuer writes the span's execution stages before the
// done send publishes them back to the owner.
type pendingCRB struct {
	crb  *CRB
	csb  *CSB
	done chan struct{}

	wrapped vas.CRB // reusable switchboard envelope; Payload points back here
	ran     bool    // dequeuer wrote a CSB (false after an engine hang)

	// batch, when non-nil, replaces crb/csb: the dequeuer runs every
	// entry in order on the device's engines and completes the envelope
	// once — one paste, one credit, one FIFO slot for the whole batch.
	batch []BatchEntry

	span         *telemetry.Span
	submitStart  time.Time // first paste attempt of this round
	pastedAt     time.Time // stamped just before each paste attempt
	pasteRejects int       // credit/FIFO bounces this round
}

// pendingPool recycles pendingCRBs (and their done channels and
// switchboard envelopes) so the steady-state submission path allocates
// nothing per request.
var pendingPool = sync.Pool{New: func() any {
	p := &pendingCRB{done: make(chan struct{}, 1)}
	p.wrapped.Payload = p
	return p
}}

func getPending() *pendingCRB { return pendingPool.Get().(*pendingCRB) }

// putPending drops request references before pooling so recycled entries
// pin no caller buffers.
func putPending(p *pendingCRB) {
	p.crb = nil
	p.csb = nil
	p.batch = nil
	p.span = nil
	p.ran = false
	p.pasteRejects = 0
	pendingPool.Put(p)
}

// backoffCycles converts wall-clock backoff into engine cycles at the
// modelled clock, so recovery waits show up in the cycle accounting.
func backoffCycles(d *Device, t time.Duration) int64 {
	return int64(t.Seconds() * d.cfg.Engine.Pipeline.ClockGHz * 1e9)
}

// fillReport builds the success-side accounting from a completion block;
// submission-level extras (retries, paste/backoff counts, wasted cycles)
// are layered on by the caller.
func fillReport(d *Device, crb *CRB, csb *CSB, rep *Report) {
	*rep = Report{
		Engine:      d.cfg.Engine.Pipeline.Name,
		Func:        crb.Func,
		Wrap:        crb.Wrap,
		InBytes:     csb.SPBC,
		OutBytes:    csb.TPBC,
		Breakdown:   csb.Cycles,
		TotalCycles: csb.Cycles.Total,
		LZ:          csb.LZ,
	}
	rep.Time = d.cfg.Engine.Pipeline.Time(rep.TotalCycles)
	if csb.SPBC > 0 && csb.TPBC > 0 {
		rep.Ratio = float64(csb.SPBC) / float64(csb.TPBC)
	}
}

// SubmitInto pastes the CRB, runs an engine, and implements the OS side
// of the recovery protocol: on CCTranslationFault, touch the page and
// resubmit (bounded by SubmitPolicy.MaxFaultRounds — ErrFaultStorm
// beyond it); on paste rejection, drain the FIFO and retry with
// exponential backoff and jitter (bounded by MaxPasteAttempts /
// MaxBackoffWaits — ErrDeviceBusy beyond them). Deadlines, cancellation
// and device offlining are checked between rounds. Safe for concurrent
// callers: the model has no dedicated engine thread, so every submitter
// doubles as an engine driver — it drains the receive FIFO (running
// whatever it dequeues, its own request or a neighbour's) until its own
// request completes.
//
// The caller owns csb and rep (typically pooled or stack-resident): the
// engine writes the completion into csb and the accounting into rep, so
// the steady-state path allocates nothing. On error rep is left partially
// filled and csb holds the last completion written — zero-valued when
// the request never reached an engine.
func (c *Context) SubmitInto(crb *CRB, csb *CSB, rep *Report) error {
	d := c.dev
	pol := d.cfg.Submit
	deadline := crb.Deadline
	if deadline.IsZero() && pol.Timeout > 0 {
		deadline = time.Now().Add(pol.Timeout)
	}
	tr := d.tracer.Load()
	span := tr.Start(crb.Func.String(), int(c.pid), c.window)
	if span != nil {
		span.ReqID = crb.ReqID
		span.Hop = crb.Hop
		span.Tenant = c.tenant
		span.Priority = c.priorityName()
	}
	var (
		retries      int
		wasted       int64
		pasteRejects int
		backoffWaits int
		backoffTime  time.Duration
	)
	// fail finishes the span and surfaces err; the caller-owned csb holds
	// whatever completion was last written.
	fail := func(label string, err error) error {
		if backoffTime > 0 {
			d.met.backoffUS.Observe(float64(backoffTime) / float64(time.Microsecond))
		}
		if span != nil {
			span.CC = label
		}
		tr.Finish(span)
		return err
	}
	// abort checks the request's liveness gates: cancellation, deadline,
	// device offline. Called between recovery rounds, never mid-engine.
	abort := func() (string, error) {
		if crb.Cancel != nil {
			select {
			case <-crb.Cancel:
				return "canceled", ErrCanceled
			default:
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			d.met.deadlineFails.Inc()
			return "deadline", fmt.Errorf("%w (after %d fault rounds, %d backoff waits)", ErrDeadlineExceeded, retries, backoffWaits)
		}
		if d.Offline() {
			d.met.offlineRejects.Inc()
			return "device-offline", ErrDeviceOffline
		}
		return "", nil
	}
	p := getPending()
	defer putPending(p)
	p.crb = crb
	p.csb = csb
	p.span = span
	wrapped := &p.wrapped
	for {
		if label, err := abort(); err != nil {
			return fail(label, err)
		}
		p.ran = false
		p.pasteRejects = 0
		p.submitStart = time.Now()
		pasted := false
		backoff := pol.BackoffBase
		roundWaits := 0
		for try := 0; try < pol.MaxPasteAttempts && roundWaits < pol.MaxBackoffWaits; try++ {
			p.pastedAt = time.Now()
			err := d.sb.Paste(c.window, wrapped)
			if err == nil {
				pasted = true
				break
			}
			if errors.Is(err, vas.ErrWindowClosed) {
				return fail("window-closed", err)
			}
			p.pasteRejects++
			if label, aerr := abort(); aerr != nil {
				pasteRejects += p.pasteRejects
				return fail(label, aerr)
			}
			// Credit/FIFO pressure: drain one entry and retry. An empty
			// FIFO with the paste still bouncing means the backlog is
			// running on other goroutines — or the window's credits have
			// leaked — so back off exponentially instead of spinning.
			if pending := d.sb.Dequeue(); pending != nil {
				c.runOne(pending)
				continue
			}
			sleep := jitter(backoff)
			time.Sleep(sleep)
			roundWaits++
			backoffTime += sleep
			d.met.backoffWaits.Inc()
			if backoff *= 2; backoff > pol.BackoffMax {
				backoff = pol.BackoffMax
			}
		}
		backoffWaits += roundWaits
		if !pasted {
			pasteRejects += p.pasteRejects
			return fail("device-busy", fmt.Errorf("%w (%d rejects, %d backoff waits)", ErrDeviceBusy, pasteRejects, backoffWaits))
		}
		// Engine picks up work in FIFO order; drain until ours completes.
		// An empty FIFO before our completion means another submitter
		// dequeued our entry — wait for it to finish the run.
		waiting := true
		for waiting {
			select {
			case <-p.done:
				waiting = false
			default:
				if pending := d.sb.Dequeue(); pending != nil {
					c.runOne(pending)
					continue
				}
				<-p.done
				waiting = false
			}
		}
		pasteRejects += p.pasteRejects
		if !p.ran {
			// Engine hang: the dequeuer dropped the request without a CSB
			// write (runOne counted it; the watchdog reset reclaimed the
			// window credit).
			return fail("engine-hang", fmt.Errorf("%w (func %s)", ErrEngineHang, crb.Func))
		}
		if csb.CC != CCTranslationFault {
			wastedAll := wasted + backoffCycles(d, backoffTime)
			fillReport(d, crb, csb, rep)
			rep.Retries = retries
			rep.PasteRejects = pasteRejects
			rep.BackoffWaits = backoffWaits
			rep.BackoffTime = backoffTime
			rep.WastedCycles = wastedAll
			rep.TotalCycles = wastedAll + csb.Cycles.Total
			rep.Time = d.cfg.Engine.Pipeline.Time(rep.TotalCycles)
			if backoffTime > 0 {
				d.met.backoffUS.Observe(float64(backoffTime) / float64(time.Microsecond))
			}
			if span != nil {
				span.InBytes = csb.SPBC
				span.OutBytes = csb.TPBC
				span.CC = csb.CC.String()
			}
			tr.Finish(span)
			return nil
		}
		// Fault protocol: touch and resubmit, bounded by the round cap.
		retries++
		wasted += csb.Cycles.Total
		d.met.faultRetries.Inc()
		if retries >= pol.MaxFaultRounds {
			d.met.faultStorms.Inc()
			return fail("fault-storm", fmt.Errorf("%w (%d rounds, va %#x)", ErrFaultStorm, retries, csb.FaultVA))
		}
		faultStart := time.Now()
		if err := d.mmu.Touch(c.pid, csb.FaultVA); err != nil {
			if span != nil {
				span.CC = csb.CC.String()
			}
			tr.Finish(span)
			return fmt.Errorf("nx: fault handler: %w", err)
		}
		if span != nil {
			// The done channel has closed, so the span is ours again:
			// record the OS interlude, attributed to the round that
			// faulted, then open the next round.
			span.RecordStage(telemetry.StageFault, faultStart, time.Now(), csb.Cycles.Total)
			span.Retries++
		}
	}
}

// runOne executes a dequeued CRB on the next engine (round-robin across
// the device's engines, which process concurrently — the z15 NXU pairs
// two compression cores behind one queue), completes it at the
// switchboard, and signals the submitting goroutine.
func (c *Context) runOne(wrapped *vas.CRB) {
	p := wrapped.Payload.(*pendingCRB)
	dequeuedAt := time.Now()
	if c.dev.inj.Load().Decide(faultinject.EngineHang) {
		// Hung engine: the request (or whole batch) is dropped without a
		// CSB write. The OS watchdog resets the engine and completes the
		// window credit so the queue keeps flowing; the submitter sees
		// ran=false and reports ErrEngineHang. Modelled as an immediate
		// drop — no wall-clock stall — to keep chaos tests deterministic
		// and fast.
		c.dev.met.engineHangs.Inc()
		if h := c.dev.events.Load(); h != nil {
			var req uint64
			if p.crb != nil {
				req = p.crb.ReqID
			} else if len(p.batch) > 0 {
				req = p.batch[0].CRB.ReqID
			}
			h.bus.Publish(obs.Event{Type: obs.EventEngineHang, Device: h.label, Req: req,
				Detail: "request dropped without CSB write; watchdog reclaimed credit"})
		}
		if s := p.span; s != nil {
			s.Engine = -1
			s.PasteRejects += p.pasteRejects
			s.RecordStage(telemetry.StageSubmit, p.submitStart, p.pastedAt, 0)
			s.RecordStage(telemetry.StageFIFO, p.pastedAt, dequeuedAt, 0)
		}
		for i := range p.batch {
			if s := p.batch[i].span; s != nil {
				s.Engine = -1
				s.RecordStage(telemetry.StageSubmit, p.submitStart, p.pastedAt, 0)
				s.RecordStage(telemetry.StageFIFO, p.pastedAt, dequeuedAt, 0)
			}
		}
		c.dev.sb.Complete(wrapped)
		p.done <- struct{}{}
		return
	}
	if p.batch != nil {
		c.runBatch(wrapped, p, dequeuedAt)
		return
	}
	idx := int(c.dev.nextEng.Add(1)-1) % len(c.dev.engines)
	c.dev.engines[idx].ProcessInto(wrapped.PID, p.crb, p.csb)
	p.ran = true
	engineEnd := time.Now()
	queueWait := dequeuedAt.Sub(p.pastedAt)
	p.csb.QueueWait = queueWait
	m := c.dev.met
	m.requests.Inc()
	m.inBytes.Add(int64(p.csb.SPBC))
	m.outBytes.Add(int64(p.csb.TPBC))
	m.bumpCodec(p.crb, p.csb)
	if cc := p.csb.CC; cc >= 0 && cc < ccCount {
		m.cc[cc].Inc()
	}
	m.queueWaitUS.Observe(float64(queueWait) / float64(time.Microsecond))
	if s := p.span; s != nil {
		// This goroutine owns the span between Dequeue and the done send.
		s.Engine = idx
		s.ERATHits += p.csb.ERATHits
		s.ERATMisses += p.csb.ERATMisses
		s.DeviceCycles += p.csb.Cycles.Total
		s.PasteRejects += p.pasteRejects
		s.RecordStage(telemetry.StageSubmit, p.submitStart, p.pastedAt, 0)
		s.RecordStage(telemetry.StageFIFO, p.pastedAt, dequeuedAt, 0)
		s.RecordPipeline(dequeuedAt, engineEnd, pipelineStages(p.csb.Cycles))
	}
	c.dev.sb.Complete(wrapped)
	p.done <- struct{}{}
}

// pipelineStages flattens a modelled breakdown into span stages (only
// called on the traced path).
func pipelineStages(b pipeline.Breakdown) []telemetry.PipelineStage {
	return []telemetry.PipelineStage{
		{Stage: telemetry.StageSetup, Cycles: b.Setup},
		{Stage: telemetry.StageTranslate, Cycles: b.Translate},
		{Stage: telemetry.StageDHTGen, Cycles: b.DHTGen},
		{Stage: telemetry.StageDMAIn, Cycles: b.DMAIn},
		{Stage: telemetry.StageLZ, Cycles: b.LZ},
		{Stage: telemetry.StageEncode, Cycles: b.Encode},
		{Stage: telemetry.StageDecode, Cycles: b.Decode},
		{Stage: telemetry.StageDMAOut, Cycles: b.DMAOut},
		{Stage: telemetry.StageComplete, Cycles: b.Complete},
	}
}

// Compress runs a full user-level compression: map buffers, submit,
// handle faults, return output and accounting.
func (c *Context) Compress(input []byte, fc FuncCode, wrap Wrap, resident bool) ([]byte, *Report, error) {
	srcVA, err := c.MapBuffer(len(input), resident)
	if err != nil {
		return nil, nil, err
	}
	capOut := 2*len(input) + 1024
	dstVA, err := c.MapBuffer(capOut, resident)
	if err != nil {
		return nil, nil, err
	}
	crb := &CRB{
		Func:      fc,
		Wrap:      wrap,
		Input:     input,
		SourceVA:  srcVA,
		TargetVA:  dstVA,
		TargetCap: capOut,
	}
	csb, rep, err := c.Submit(crb)
	if err != nil {
		return nil, rep, err
	}
	if csb.CC != CCSuccess {
		return nil, rep, ccError(fc.String(), csb)
	}
	return csb.Output, rep, nil
}

// Decompress runs a full user-level decompression.
func (c *Context) Decompress(input []byte, wrap Wrap, maxOutput int, resident bool) ([]byte, *Report, error) {
	srcVA, err := c.MapBuffer(len(input), resident)
	if err != nil {
		return nil, nil, err
	}
	if maxOutput <= 0 {
		maxOutput = 64 * len(input)
	}
	dstVA, err := c.MapBuffer(maxOutput, resident)
	if err != nil {
		return nil, nil, err
	}
	crb := &CRB{
		Func:      FCDecompress,
		Wrap:      wrap,
		Input:     input,
		SourceVA:  srcVA,
		TargetVA:  dstVA,
		TargetCap: maxOutput,
		MaxOutput: maxOutput,
	}
	csb, rep, err := c.Submit(crb)
	if err != nil {
		return nil, rep, err
	}
	if csb.CC != CCSuccess {
		return nil, rep, ccError("decompress", csb)
	}
	return csb.Output, rep, nil
}

// Submit exposes the raw CRB path for callers that build their own
// request blocks (the canned-DHT experiment, 842, corrupt-data tests).
// It allocates the CSB and Report per call; allocation-free callers use
// SubmitInto with pooled blocks instead. On error the returned CSB is
// non-nil and holds the last completion written — zero-valued when the
// request never reached an engine.
func (c *Context) Submit(crb *CRB) (*CSB, *Report, error) {
	csb := &CSB{}
	rep := &Report{}
	if err := c.SubmitInto(crb, csb, rep); err != nil {
		return csb, nil, err
	}
	return csb, rep, nil
}

// SyncCall submits a request through the synchronous-instruction
// interface (the z15 integration style): no VAS paste, no queue — the
// calling CPU dispatches the engine directly and waits. The fault
// protocol still applies (the instruction completes partially and
// software retries after touching the page). Returns an error on devices
// without a synchronous path.
func (c *Context) SyncCall(crb *CRB) (*CSB, *Report, error) {
	if c.dev.cfg.Engine.Pipeline.SyncSetupCycles <= 0 {
		return nil, nil, fmt.Errorf("nx: %s has no synchronous submission interface", c.dev.cfg.Engine.Pipeline.Name)
	}
	crb.SyncSubmit = true
	tr := c.dev.tracer.Load()
	// Window -1: the synchronous interface bypasses the VAS queue.
	span := tr.Start(crb.Func.String(), int(c.pid), -1)
	if span != nil {
		span.ReqID = crb.ReqID
		span.Hop = crb.Hop
		span.Tenant = c.tenant
		span.Priority = c.priorityName()
	}
	var (
		retries int
		wasted  int64
	)
	for {
		start := time.Now()
		idx := int(c.dev.nextEng.Add(1)-1) % len(c.dev.engines)
		csb := c.dev.engines[idx].Process(c.pid, crb)
		m := c.dev.met
		m.requests.Inc()
		m.syncCalls.Inc()
		m.inBytes.Add(int64(csb.SPBC))
		m.outBytes.Add(int64(csb.TPBC))
		m.bumpCodec(crb, csb)
		if cc := csb.CC; cc >= 0 && cc < ccCount {
			m.cc[cc].Inc()
		}
		if span != nil {
			span.Engine = idx
			span.ERATHits += csb.ERATHits
			span.ERATMisses += csb.ERATMisses
			span.DeviceCycles += csb.Cycles.Total
			span.RecordPipeline(start, time.Now(), pipelineStages(csb.Cycles))
		}
		if csb.CC != CCTranslationFault {
			rep := &Report{
				Engine:       c.dev.cfg.Engine.Pipeline.Name,
				Func:         crb.Func,
				Wrap:         crb.Wrap,
				InBytes:      csb.SPBC,
				OutBytes:     csb.TPBC,
				Breakdown:    csb.Cycles,
				Retries:      retries,
				WastedCycles: wasted,
				TotalCycles:  wasted + csb.Cycles.Total,
				LZ:           csb.LZ,
			}
			rep.Time = c.dev.cfg.Engine.Pipeline.Time(rep.TotalCycles)
			if csb.SPBC > 0 && csb.TPBC > 0 {
				rep.Ratio = float64(csb.SPBC) / float64(csb.TPBC)
			}
			if span != nil {
				span.InBytes = csb.SPBC
				span.OutBytes = csb.TPBC
				span.CC = csb.CC.String()
			}
			tr.Finish(span)
			return csb, rep, nil
		}
		retries++
		wasted += csb.Cycles.Total
		c.dev.met.faultRetries.Inc()
		if retries >= c.dev.cfg.Submit.MaxFaultRounds {
			c.dev.met.faultStorms.Inc()
			if span != nil {
				span.CC = "fault-storm"
			}
			tr.Finish(span)
			return csb, nil, fmt.Errorf("%w (%d rounds, va %#x)", ErrFaultStorm, retries, csb.FaultVA)
		}
		faultStart := time.Now()
		if err := c.dev.mmu.Touch(c.pid, csb.FaultVA); err != nil {
			if span != nil {
				span.CC = csb.CC.String()
			}
			tr.Finish(span)
			return csb, nil, fmt.Errorf("nx: fault handler: %w", err)
		}
		if span != nil {
			span.RecordStage(telemetry.StageFault, faultStart, time.Now(), csb.Cycles.Total)
			span.Retries++
		}
	}
}

// Device returns the device this context is bound to.
func (c *Context) Device() *Device { return c.dev }
