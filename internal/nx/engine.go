package nx

import (
	"errors"
	"sync"
	"sync/atomic"

	"nxzip/internal/checksum"
	"nxzip/internal/deflate"
	"nxzip/internal/faultinject"
	"nxzip/internal/lz77"
	"nxzip/internal/nmmu"
	"nxzip/internal/pipeline"
)

// EngineConfig assembles an engine model.
type EngineConfig struct {
	Pipeline pipeline.Config
	LZ       lz77.HWParams
	// Codecs advertises which codec families this engine implements.
	// The zero value means all of them, so existing configurations keep
	// serving everything; a restricted set makes the engine NACK
	// out-of-set requests with CCInvalidCRB, and the topology layer
	// routes around it.
	Codecs CodecSet
}

// P9Engine returns the POWER9 NX GZIP engine configuration.
func P9Engine() EngineConfig {
	return EngineConfig{Pipeline: pipeline.P9(), LZ: lz77.P9HWParams()}
}

// Z15Engine returns the z15 zEDC engine configuration.
func Z15Engine() EngineConfig {
	return EngineConfig{Pipeline: pipeline.Z15(), LZ: lz77.Z15HWParams()}
}

// Engine executes CRBs one at a time, like the silicon: requests from all
// windows serialize at the engine. Safe for concurrent Process calls (they
// queue on an internal mutex).
type Engine struct {
	cfg EngineConfig
	mmu *nmmu.MMU
	inj atomic.Pointer[faultinject.Injector]

	mu      sync.Mutex
	matcher *lz77.HWMatcher
	// Request-path scratch, reused across requests under mu — the
	// engine's fixed internal SRAM rather than per-request allocations.
	tokBuf []lz77.Token
	enc    deflate.StreamEncoder

	// accumulated counters
	requests    int64
	busyCycles  int64
	inBytes     int64
	outBytes    int64
	stageCycles pipeline.Breakdown // per-stage sums across all requests
	ccCounts    [ccCount]int64     // completions by CC
	lastLZ      lz77.HWStats
}

// NewEngine builds an engine bound to an MMU (nil disables translation,
// for bare functional use).
func NewEngine(cfg EngineConfig, mmu *nmmu.MMU) *Engine {
	return &Engine{cfg: cfg, mmu: mmu, matcher: lz77.NewHWMatcher(cfg.LZ)}
}

// Config returns the engine configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// SetInjector installs (or, with nil, removes) the fault injector
// consulted after each successful completion to force CSB error codes.
func (e *Engine) SetInjector(inj *faultinject.Injector) { e.inj.Store(inj) }

// injectCC flips a successful completion into an injected error CC:
// CRC mismatch (inline read-back verify failed), data check, or invalid
// CRB. The work was done — cycles stand — but the output is withheld,
// exactly as hardware suppresses the target store on a failed verify.
// Resume requests are exempt: hardware checkpoints suspend/resume state
// only on successful completion, but the model's session advances as it
// feeds, so an injected failure here would leave state the submitter
// cannot safely replay.
func (e *Engine) injectCC(crb *CRB, csb *CSB) {
	inj := e.inj.Load()
	if inj == nil || csb.CC != CCSuccess || crb.DecompState != nil {
		return
	}
	var cc CC
	switch {
	case inj.Decide(faultinject.CRCError):
		cc = CCCRCError
	case inj.Decide(faultinject.DataCheck):
		cc = CCDataCorrupt
	case inj.Decide(faultinject.InvalidCRB):
		cc = CCInvalidCRB
	default:
		return
	}
	csb.CC = cc
	csb.Detail = "injected " + cc.String()
	csb.Output = nil
	csb.TPBC = 0
}

// Process executes one request for the given address space and returns the
// completion status block. It never returns a Go error for data-plane
// problems — those are CSB completion codes, exactly as on hardware.
func (e *Engine) Process(pid nmmu.PID, crb *CRB) *CSB {
	csb := &CSB{}
	e.ProcessInto(pid, crb, csb)
	return csb
}

// ProcessInto is Process writing the completion into a caller-owned
// status block (reset first), so pooled submitters allocate nothing per
// request. With CRB.Target set the output lands in caller memory too.
func (e *Engine) ProcessInto(pid nmmu.PID, crb *CRB, csb *CSB) {
	e.mu.Lock()
	defer e.mu.Unlock()

	csb.reset()

	// Capability gate before any work: a function code outside the
	// engine's advertised codec set is NACKed at CRB parse, exactly as
	// hardware rejects an unimplemented function code. No cycles charged
	// — the request never entered the pipeline.
	if need := crb.RequiredCodecs(); !e.cfg.Codecs.Supports(need) {
		csb.CC = CCInvalidCRB
		csb.Detail = "codec not supported: " + need.String() + " (engine serves " + e.cfg.Codecs.String() + ")"
		return
	}

	// Address translation first: the engine touches the source range, then
	// the target range. A fault suspends the job; software resolves it and
	// resubmits, and the engine restarts the request (P9 semantics).
	var translateCycles int64
	if e.mmu != nil {
		operands := []struct {
			dde *DDE
			va  uint64
			n   int
		}{
			{crb.SourceDDE, crb.SourceVA, len(crb.Input)},
			{crb.TargetDDE, crb.TargetVA, targetCap(crb)},
		}
		for _, op := range operands {
			var (
				rs  nmmu.RangeStats
				err error
			)
			switch {
			case op.dde != nil:
				rs, err = translateDDE(e.mmu, pid, *op.dde)
			case op.va != 0:
				rs, err = e.mmu.TranslateRangeStats(pid, op.va, op.n)
			default:
				continue
			}
			translateCycles += rs.Cycles
			csb.ERATHits += rs.Hits
			csb.ERATMisses += rs.Misses
			if fault := asFault(err); fault != nil {
				e.faultCSB(csb, fault, translateCycles)
				return
			} else if err != nil {
				csb.CC = CCInvalidCRB
				csb.Detail = err.Error()
				return
			}
		}
	}

	switch crb.Func {
	case FCCompressFHT, FCCompressDHT, FCCompressCannedDHT:
		e.compress(pid, crb, csb, translateCycles)
	case FCDecompress:
		if crb.DecompState != nil {
			e.decompressResume(crb, csb, translateCycles)
		} else {
			e.decompress(pid, crb, csb, translateCycles)
		}
	case FC842Compress, FCLZ4Compress:
		e.blockCompress(crb, csb, translateCycles, crb.Func.Codec())
	case FC842Decompress, FCLZ4Decompress:
		e.blockDecompress(crb, csb, translateCycles, crb.Func.Codec())
	case FCTranscode:
		e.transcode(pid, crb, csb, translateCycles)
	case FCMove:
		e.move(crb, csb, translateCycles)
	default:
		csb.CC = CCInvalidCRB
		csb.Detail = "unknown function code"
	}

	e.injectCC(crb, csb)

	if crb.SyncSubmit && e.cfg.Pipeline.SyncSetupCycles > 0 {
		// Synchronous-instruction dispatch replaces the queued setup cost.
		delta := e.cfg.Pipeline.SetupCycles - e.cfg.Pipeline.SyncSetupCycles
		if delta > 0 && csb.Cycles.Setup >= e.cfg.Pipeline.SetupCycles {
			csb.Cycles.Setup -= delta
			csb.Cycles.Total -= delta
			e.busyCycles -= delta
		}
	}
	if crb.Chained && e.cfg.Pipeline.ChainSetupCycles > 0 {
		// Chained behind the previous envelope entry: descriptor advance,
		// not a fresh paste round trip.
		delta := e.cfg.Pipeline.SetupCycles - e.cfg.Pipeline.ChainSetupCycles
		if delta > 0 && csb.Cycles.Setup >= e.cfg.Pipeline.SetupCycles {
			csb.Cycles.Setup -= delta
			csb.Cycles.Total -= delta
		}
	}
	if crb.ChainedComplete && e.cfg.Pipeline.ChainCompleteCycles > 0 {
		// A later entry carries the envelope's interrupt/credit return;
		// this one only stores its CSB.
		delta := e.cfg.Pipeline.CompleteCycles - e.cfg.Pipeline.ChainCompleteCycles
		if delta > 0 && csb.Cycles.Complete >= e.cfg.Pipeline.CompleteCycles {
			csb.Cycles.Complete -= delta
			csb.Cycles.Total -= delta
		}
	}
	e.requests++
	e.busyCycles += csb.Cycles.Total
	e.inBytes += int64(csb.SPBC)
	e.outBytes += int64(csb.TPBC)
	e.accumStages(csb)
}

// accumStages folds one request's breakdown and completion code into the
// lifetime per-stage accounting. Called with e.mu held.
func (e *Engine) accumStages(csb *CSB) {
	b := &e.stageCycles
	b.Setup += csb.Cycles.Setup
	b.Translate += csb.Cycles.Translate
	b.DMAIn += csb.Cycles.DMAIn
	b.LZ += csb.Cycles.LZ
	b.DHTGen += csb.Cycles.DHTGen
	b.Encode += csb.Cycles.Encode
	b.Decode += csb.Cycles.Decode
	b.DMAOut += csb.Cycles.DMAOut
	b.Complete += csb.Cycles.Complete
	b.Total += csb.Cycles.Total
	if csb.CC >= 0 && csb.CC < ccCount {
		e.ccCounts[csb.CC]++
	}
}

func targetCap(crb *CRB) int {
	if crb.TargetCap > 0 {
		return crb.TargetCap
	}
	return 2*len(crb.Input) + 1024
}

func asFault(err error) *nmmu.Fault {
	if err == nil {
		// Early out before declaring the target: errors.As forces its
		// target to escape, which would cost an allocation on every
		// translation even when nothing faulted.
		return nil
	}
	var f *nmmu.Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

func (e *Engine) faultCSB(csb *CSB, f *nmmu.Fault, translateCycles int64) {
	csb.CC = CCTranslationFault
	csb.FaultVA = f.VA
	// A faulted attempt still consumed setup plus the translation work up
	// to the fault.
	csb.Cycles = pipeline.Breakdown{
		Setup:     e.cfg.Pipeline.SetupCycles,
		Translate: translateCycles,
		Complete:  e.cfg.Pipeline.CompleteCycles,
	}
	csb.Cycles.Total = csb.Cycles.Setup + csb.Cycles.Translate + csb.Cycles.Complete
	e.requests++
	e.busyCycles += csb.Cycles.Total
	e.accumStages(csb)
}

// compress runs the DEFLATE compression path: hardware LZ, table
// selection per function code, inline checksum, framing.
func (e *Engine) compress(pid nmmu.PID, crb *CRB, csb *CSB, translateCycles int64) {
	input := crb.Input
	if crb.NotFinal && crb.Wrap != WrapRaw {
		csb.CC = CCInvalidCRB
		csb.Detail = "stream segments must use raw wrap"
		return
	}
	var (
		tokens  []lz77.Token
		lzStats lz77.HWStats
	)
	if len(crb.History) > 0 {
		tokens, lzStats = e.matcher.TokenizeWithHistory(e.tokBuf[:0], crb.History, input)
	} else {
		tokens, lzStats = e.matcher.Tokenize(e.tokBuf[:0], input)
	}
	e.tokBuf = tokens // keep any growth for the next request
	e.lastLZ = lzStats
	csb.LZ = lzStats

	var (
		mode deflate.BlockMode
		dht  *deflate.DHT
	)
	switch crb.Func {
	case FCCompressFHT:
		mode = deflate.ModeFixed
	case FCCompressDHT:
		mode = deflate.ModeDynamic
		dht = e.sampleDHT(tokens, input)
	case FCCompressCannedDHT:
		mode = deflate.ModeDynamic
		dht = crb.DHT
		if dht == nil {
			csb.CC = CCInvalidCRB
			csb.Detail = "canned-DHT compression without a DHT"
			return
		}
	}

	// Frame inline on the output path, exactly as the hardware's wrap
	// function codes do on the target DMA stream: header, DEFLATE body,
	// trailer, all appended to one buffer. With CRB.Target set that
	// buffer is caller memory and the whole path allocates nothing.
	out := crb.Target[:0]
	if crb.Target == nil {
		out = make([]byte, 0, len(input)/2+128)
	}
	switch crb.Wrap {
	case WrapGzip:
		out = deflate.AppendGzipHeader(out)
	case WrapZlib:
		out = deflate.AppendZlibHeader(out)
	}
	out, err := e.enc.EncodeStream(out, tokens, input, mode, dht, !crb.NotFinal)
	if err != nil {
		csb.CC = CCInvalidCRB
		csb.Detail = err.Error()
		return
	}
	crc := checksum.Sum32(input)
	adler := checksum.SumAdler32(input)
	switch crb.Wrap {
	case WrapGzip:
		out = deflate.AppendGzipTrailer(out, crc, len(input))
	case WrapZlib:
		out = deflate.AppendZlibTrailer(out, adler)
	}
	if len(out) > targetCap(crb) {
		csb.CC = CCTargetSpace
		csb.SPBC = 0
		csb.TPBC = 0
		// The engine discovered the overflow while draining output: charge
		// a full pass.
		csb.Cycles = e.cfg.Pipeline.Compress(len(input), len(out), lzStats.Cycles, translateCycles, crb.Func == FCCompressDHT)
		return
	}

	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = len(input)
	csb.TPBC = len(out)
	csb.CRC32 = crc
	csb.Adler32 = adler
	// Only the generate-DHT function code pays table-build latency; canned
	// tables arrive with the CRB.
	csb.Cycles = e.cfg.Pipeline.Compress(len(input), len(out), lzStats.Cycles, translateCycles, crb.Func == FCCompressDHT)
}

// sampleDHT builds the single-pass dynamic table: frequencies are counted
// only over tokens covering the first DHTSampleBytes of input, then every
// symbol receives a +1 floor so the table is complete (the hardware
// requires a decodable-by-construction table because data after the sample
// may use any symbol).
func (e *Engine) sampleDHT(tokens []lz77.Token, input []byte) *deflate.DHT {
	sampleBytes := e.cfg.Pipeline.DHTSampleBytes
	covered := 0
	end := 0
	for i, t := range tokens {
		if covered >= sampleBytes {
			break
		}
		if t.IsMatch() {
			covered += t.Length()
		} else {
			covered++
		}
		end = i + 1
	}
	lf, df := deflate.CountFrequencies(tokens[:end])
	for i := range lf {
		lf[i]++
	}
	for i := range df {
		df[i]++
	}
	dht, err := deflate.BuildDHT(lf, df)
	if err != nil {
		// Frequencies are all positive; construction cannot fail. Fall
		// back to nil (generated-per-block) defensively.
		return nil
	}
	_ = input
	return dht
}

func (e *Engine) decompress(pid nmmu.PID, crb *CRB, csb *CSB, translateCycles int64) {
	var (
		out      []byte
		err      error
		consumed = len(crb.Input)
	)
	// The decoder stops as soon as output exceeds what the target buffer
	// can hold (or the caller's explicit budget, whichever is smaller):
	// the engine never materializes bytes it has nowhere to put, so a
	// decompression bomb costs one buffer's worth of work, not the bomb's.
	limit := crb.MaxOutput
	if tc := targetCap(crb); limit <= 0 || tc < limit {
		limit = tc
	}
	// Dst threads the caller-owned target buffer into the inflate loop so
	// a pooled decompression allocates nothing when the output fits.
	opts := deflate.InflateOptions{MaxOutput: limit, Dst: crb.Target}
	switch {
	case crb.Wrap == WrapGzip && crb.FirstMemberOnly:
		out, consumed, err = deflate.DecompressGzipTail(crb.Input, opts)
	case crb.Wrap == WrapGzip:
		out, err = deflate.DecompressGzip(crb.Input, opts)
	case crb.Wrap == WrapZlib:
		out, err = deflate.DecompressZlib(crb.Input, opts)
	default:
		out, err = deflate.Decompress(crb.Input, opts)
	}
	if err != nil {
		if errors.Is(err, deflate.ErrTooLarge) {
			// The output budget tripped mid-decode: target space, not
			// corruption — software enlarges the buffer (or rejects the
			// bomb) and resubmits.
			csb.CC = CCTargetSpace
		} else {
			csb.CC = CCDataCorrupt
		}
		csb.Detail = err.Error()
		// Detection cost: the engine read the input before tripping.
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), 0, translateCycles)
		return
	}
	if len(out) > targetCap(crb) {
		csb.CC = CCTargetSpace
		csb.Cycles = e.cfg.Pipeline.Decompress(consumed, len(out), translateCycles)
		return
	}
	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = consumed
	csb.TPBC = len(out)
	csb.CRC32 = checksum.Sum32(out)
	csb.Adler32 = checksum.SumAdler32(out)
	csb.Cycles = e.cfg.Pipeline.Decompress(consumed, len(out), translateCycles)
}

// blockCompress runs any byte-aligned block codec (842, LZ4) through one
// generalized path: codec table lookup, compress, inline CRC over the
// input, and the per-codec cycle model — the ingest-lane multiplier
// scales how many input bytes the match pipeline consumes per cycle.
func (e *Engine) blockCompress(crb *CRB, csb *CSB, translateCycles int64, codec Codec) {
	bt := blockCodecs[codec]
	if bt.compress == nil {
		csb.CC = CCInvalidCRB
		csb.Detail = "no block compressor for codec " + codec.String()
		return
	}
	out := bt.compress(crb.Input)
	ingest := int64(len(crb.Input)/(e.cfg.LZ.InputWidth*bt.ingestLanes) + 1)
	cycles := e.cfg.Pipeline.Compress(len(crb.Input), len(out), ingest, translateCycles, false)
	if len(out) > targetCap(crb) {
		csb.CC = CCTargetSpace
		csb.Cycles = cycles
		return
	}
	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = len(crb.Input)
	csb.TPBC = len(out)
	csb.CRC32 = checksum.Sum32(crb.Input)
	csb.Cycles = cycles
}

// blockDecompress is the matching generalized decompress path.
func (e *Engine) blockDecompress(crb *CRB, csb *CSB, translateCycles int64, codec Codec) {
	bt := blockCodecs[codec]
	if bt.decompress == nil {
		csb.CC = CCInvalidCRB
		csb.Detail = "no block decompressor for codec " + codec.String()
		return
	}
	out, err := bt.decompress(crb.Input, crb.MaxOutput)
	if err != nil {
		csb.CC = CCDataCorrupt
		csb.Detail = err.Error()
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), 0, translateCycles)
		return
	}
	if len(out) > targetCap(crb) {
		csb.CC = CCTargetSpace
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), len(out), translateCycles)
		return
	}
	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = len(crb.Input)
	csb.TPBC = len(out)
	csb.CRC32 = checksum.Sum32(out)
	csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), len(out), translateCycles)
}

// transcode decodes CRB.SourceCodec input and re-encodes the plaintext
// as CRB.TargetCodec without leaving the engine — the paper's
// recompression pipeline (e.g. LZ4 ingest → DEFLATE at rest) as one
// request. Setup/complete are paid once; the decode pass's translate,
// DMA-in and decode cycles fold into the encode pass's breakdown. The
// intermediate plaintext never crosses the bus, so there is no DMA-out
// charge for stage one.
func (e *Engine) transcode(pid nmmu.PID, crb *CRB, csb *CSB, translateCycles int64) {
	if crb.SourceCodec == crb.TargetCodec {
		csb.CC = CCInvalidCRB
		csb.Detail = "transcode with identical source and target codec " + crb.SourceCodec.String()
		return
	}
	limit := crb.MaxOutput
	if limit <= 0 {
		limit = 1 << 30
	}
	var (
		plain []byte
		err   error
	)
	if crb.SourceCodec == CodecDeflate {
		opts := deflate.InflateOptions{MaxOutput: limit}
		switch crb.Wrap {
		case WrapGzip:
			plain, err = deflate.DecompressGzip(crb.Input, opts)
		case WrapZlib:
			plain, err = deflate.DecompressZlib(crb.Input, opts)
		default:
			plain, err = deflate.Decompress(crb.Input, opts)
		}
	} else {
		plain, err = blockCodecs[crb.SourceCodec].decompress(crb.Input, limit)
	}
	if err != nil {
		csb.CC = CCDataCorrupt
		csb.Detail = err.Error()
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), 0, translateCycles)
		return
	}
	dec := e.cfg.Pipeline.Decompress(len(crb.Input), len(plain), translateCycles)

	// Re-encode through the regular compress paths so wrap, checksum and
	// target-space handling are not duplicated; translate was already
	// charged on the decode pass.
	inner := CRB{
		Func:      compressFunc(crb.TargetCodec),
		Wrap:      crb.Wrap,
		Input:     plain,
		TargetCap: crb.TargetCap,
		Target:    crb.Target,
	}
	if crb.TargetCodec == CodecDeflate {
		e.compress(pid, &inner, csb, 0)
	} else {
		e.blockCompress(&inner, csb, 0, crb.TargetCodec)
	}
	csb.Cycles.Translate += dec.Translate
	csb.Cycles.DMAIn += dec.DMAIn
	csb.Cycles.Decode += dec.Decode
	csb.Cycles.Total += dec.Translate + dec.DMAIn + dec.Decode
	if csb.CC == CCSuccess {
		// Source-processed counts the codec-side input, not the
		// intermediate plaintext.
		csb.SPBC = len(crb.Input)
	}
}

// move is the checksum/copy offload: data streams through the DMA path
// untouched while the checksum units run. Useful on its own (CRC offload)
// and as the engine's data-movement baseline.
func (e *Engine) move(crb *CRB, csb *CSB, translateCycles int64) {
	if len(crb.Input) > targetCap(crb) {
		csb.CC = CCTargetSpace
		csb.Cycles = e.cfg.Pipeline.Decompress(len(crb.Input), 0, translateCycles)
		return
	}
	out := append([]byte{}, crb.Input...)
	csb.CC = CCSuccess
	csb.Output = out
	csb.SPBC = len(crb.Input)
	csb.TPBC = len(out)
	csb.CRC32 = checksum.Sum32(crb.Input)
	csb.Adler32 = checksum.SumAdler32(crb.Input)
	// Pure data movement: bounded by the DMA width on both sides.
	b := pipeline.Breakdown{
		Setup:     e.cfg.Pipeline.SetupCycles,
		Translate: translateCycles,
		DMAIn:     int64(len(crb.Input)+e.cfg.Pipeline.DMABytesPerCycle-1) / int64(e.cfg.Pipeline.DMABytesPerCycle),
		Complete:  e.cfg.Pipeline.CompleteCycles,
	}
	b.DMAOut = b.DMAIn
	stage := b.DMAIn
	if b.Translate > stage {
		stage = b.Translate
	}
	b.Total = b.Setup + stage + b.Complete
	csb.Cycles = b
}

// Counters is the engine's lifetime accounting.
type Counters struct {
	Requests   int64
	BusyCycles int64
	InBytes    int64
	OutBytes   int64
	// StageCycles sums each pipeline stage's cycles across every request
	// this engine ran (Total included, so idle = elapsed - Total).
	StageCycles pipeline.Breakdown
	// CCCounts is the number of completions per CC code, indexed by CC.
	CCCounts [ccCount]int64
	LastLZ   lz77.HWStats
}

// Counters returns a snapshot of lifetime counters.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Counters{
		Requests:    e.requests,
		BusyCycles:  e.busyCycles,
		InBytes:     e.inBytes,
		OutBytes:    e.outBytes,
		StageCycles: e.stageCycles,
		CCCounts:    e.ccCounts,
		LastLZ:      e.lastLZ,
	}
}
