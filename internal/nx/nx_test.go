package nx

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"sync"
	"testing"

	"nxzip/internal/corpus"
	"nxzip/internal/deflate"
	"nxzip/internal/lz77"
	"nxzip/internal/nmmu"
)

func newP9Context(tb testing.TB) *Context {
	tb.Helper()
	dev := NewDevice(P9Device())
	return dev.OpenContext(100)
}

func TestCompressDecompressAllFuncs(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Text, 200<<10, 1)
	for _, fc := range []FuncCode{FCCompressFHT, FCCompressDHT} {
		for _, wrap := range []Wrap{WrapRaw, WrapGzip, WrapZlib} {
			out, rep, err := ctx.Compress(src, fc, wrap, true)
			if err != nil {
				t.Fatalf("%s/%s: %v", fc, wrap, err)
			}
			if rep.Ratio < 1.5 {
				t.Fatalf("%s/%s: ratio %.2f too low for text", fc, wrap, rep.Ratio)
			}
			back, rep2, err := ctx.Decompress(out, wrap, len(src)+1024, true)
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", fc, wrap, err)
			}
			if !bytes.Equal(back, src) {
				t.Fatalf("%s/%s: round-trip mismatch", fc, wrap)
			}
			if rep2.OutBytes != len(src) {
				t.Fatalf("TPBC = %d", rep2.OutBytes)
			}
		}
	}
}

func TestAcceleratorOutputReadableByStdlib(t *testing.T) {
	// The headline interop property: gzip output of the device model is a
	// valid gzip file.
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.JSONLogs, 300<<10, 2)
	out, _, err := ctx.Compress(src, FCCompressDHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib gunzip mismatch")
	}
}

func TestAcceleratorReadsStdlibStreams(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Source, 150<<10, 3)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(src)
	zw.Close()
	got, _, err := ctx.Decompress(buf.Bytes(), WrapGzip, len(src)+1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
}

func TestCannedDHTFuncCode(t *testing.T) {
	ctx := newP9Context(t)
	src := []byte(strings.Repeat("canned table payload; ", 2000))
	// Build a complete canned table (floor of 1 on every symbol).
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	toks, _ := m.Tokenize(nil, src)
	lf, df := deflate.CountFrequencies(toks)
	for i := range lf {
		lf[i]++
	}
	for i := range df {
		df[i]++
	}
	dht, err := deflate.BuildDHT(lf, df)
	if err != nil {
		t.Fatal(err)
	}
	srcVA, _ := ctx.MapBuffer(len(src), true)
	dstVA, _ := ctx.MapBuffer(2*len(src)+1024, true)
	csb, _, err := ctx.Submit(&CRB{
		Func: FCCompressCannedDHT, Wrap: WrapGzip, Input: src,
		SourceVA: srcVA, TargetVA: dstVA, DHT: dht,
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s (%s)", csb.CC, csb.Detail)
	}
	zr, err := gzip.NewReader(bytes.NewReader(csb.Output))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(zr)
	if !bytes.Equal(got, src) {
		t.Fatal("canned round-trip mismatch")
	}
	// Missing table -> CCInvalidCRB.
	csb2, _, err := ctx.Submit(&CRB{Func: FCCompressCannedDHT, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csb2.CC != CCInvalidCRB {
		t.Fatalf("CC = %s", csb2.CC)
	}
}

func Test842FuncCodes(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Columnar, 100<<10, 4)
	csb, rep, err := ctx.Submit(&CRB{Func: FC842Compress, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s", csb.CC)
	}
	if rep.Ratio <= 1.0 {
		t.Fatalf("842 ratio %.2f on columnar", rep.Ratio)
	}
	back, _, err := ctx.Submit(&CRB{Func: FC842Decompress, Input: csb.Output, TargetCap: len(src) + 64, MaxOutput: len(src) + 64})
	if err != nil {
		t.Fatal(err)
	}
	if back.CC != CCSuccess {
		t.Fatalf("CC = %s (%s)", back.CC, back.Detail)
	}
	if !bytes.Equal(back.Output, src) {
		t.Fatal("842 round-trip mismatch")
	}
}

func TestCorruptInputGivesCCDataCorrupt(t *testing.T) {
	ctx := newP9Context(t)
	csb, _, err := ctx.Submit(&CRB{Func: FCDecompress, Wrap: WrapGzip, Input: []byte("definitely not gzip data")})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCDataCorrupt {
		t.Fatalf("CC = %s", csb.CC)
	}
	if csb.Detail == "" {
		t.Fatal("no detail for corrupt data")
	}
}

func TestTargetSpaceExhausted(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Random, 64<<10, 5)
	csb, _, err := ctx.Submit(&CRB{Func: FCCompressFHT, Wrap: WrapGzip, Input: src, TargetCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCTargetSpace {
		t.Fatalf("CC = %s", csb.CC)
	}
}

func TestChecksumsInCSB(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Text, 50<<10, 6)
	csb, _, err := ctx.Submit(&CRB{Func: FCCompressDHT, Wrap: WrapRaw, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CRC32 == 0 || csb.Adler32 == 0 {
		t.Fatal("checksums not computed")
	}
	// Decompression of the raw stream reports the same checksums.
	back, _, err := ctx.Submit(&CRB{Func: FCDecompress, Wrap: WrapRaw, Input: csb.Output, TargetCap: len(src) + 64, MaxOutput: len(src) + 64})
	if err != nil {
		t.Fatal(err)
	}
	if back.CRC32 != csb.CRC32 || back.Adler32 != csb.Adler32 {
		t.Fatal("checksum mismatch across round-trip")
	}
}

func TestPageFaultTouchResubmit(t *testing.T) {
	dev := NewDevice(P9Device())
	ctx := dev.OpenContext(7)
	src := corpus.Generate(corpus.Text, 300<<10, 7)
	// Non-resident buffers: the engine faults, the context touches and
	// resubmits until it completes.
	out, rep, err := ctx.Compress(src, FCCompressDHT, WrapGzip, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("expected at least one translation fault retry")
	}
	if rep.WastedCycles <= 0 {
		t.Fatal("no wasted cycles accounted")
	}
	if rep.TotalCycles <= rep.Breakdown.Total {
		t.Fatal("total cycles must exceed the final attempt")
	}
	got, _, err := ctx.Decompress(out, WrapGzip, len(src)+1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("faulted round-trip mismatch")
	}
	if dev.MMU().Stats().Faults == 0 {
		t.Fatal("MMU recorded no faults")
	}
}

func TestCycleModelShape(t *testing.T) {
	ctx := newP9Context(t)
	small := corpus.Generate(corpus.Text, 4<<10, 8)
	large := corpus.Generate(corpus.Text, 4<<20, 8)
	_, repS, err := ctx.Compress(small, FCCompressDHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	_, repL, err := ctx.Compress(large, FCCompressDHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	rateS := float64(repS.InBytes) / repS.Time.Seconds()
	rateL := float64(repL.InBytes) / repL.Time.Seconds()
	if rateL < 4*rateS {
		t.Fatalf("large-buffer rate %.0f must dwarf small-buffer rate %.0f (latency-bound)", rateL, rateS)
	}
	peak := ctx.dev.PipelineConfig().PeakCompressRate()
	if rateL > peak {
		t.Fatalf("effective rate %.0f exceeds line rate %.0f", rateL, peak)
	}
	if rateL < 0.3*peak {
		t.Fatalf("large-buffer rate %.0f too far below line rate %.0f", rateL, peak)
	}
}

func TestZ15DoublesP9(t *testing.T) {
	src := corpus.Generate(corpus.Text, 4<<20, 9)
	p9 := NewDevice(P9Device()).OpenContext(1)
	z15 := NewDevice(Z15Device()).OpenContext(1)
	_, repP9, err := p9.Compress(src, FCCompressDHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	_, repZ, err := z15.Compress(src, FCCompressDHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	rp := float64(repP9.InBytes) / repP9.Time.Seconds()
	rz := float64(repZ.InBytes) / repZ.Time.Seconds()
	if rz < 1.6*rp || rz > 2.6*rp {
		t.Fatalf("z15/p9 rate ratio %.2f outside [1.6, 2.6]", rz/rp)
	}
}

func TestEngineCounters(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Text, 32<<10, 10)
	ctx.Compress(src, FCCompressFHT, WrapRaw, true)
	ctx.Compress(src, FCCompressFHT, WrapRaw, true)
	cnt := ctx.dev.Engine(0).Counters()
	if cnt.Requests != 2 {
		t.Fatalf("requests = %d", cnt.Requests)
	}
	if cnt.InBytes != int64(2*len(src)) {
		t.Fatalf("inBytes = %d", cnt.InBytes)
	}
	if cnt.BusyCycles <= 0 {
		t.Fatal("no busy cycles")
	}
}

func TestEmptyInput(t *testing.T) {
	ctx := newP9Context(t)
	out, _, err := ctx.Compress(nil, FCCompressFHT, WrapGzip, true)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ctx.Decompress(out, WrapGzip, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestDHTBeatsFHTOnSkewedData(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.DNA, 256<<10, 11)
	outF, _, err := ctx.Compress(src, FCCompressFHT, WrapRaw, true)
	if err != nil {
		t.Fatal(err)
	}
	outD, _, err := ctx.Compress(src, FCCompressDHT, WrapRaw, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(outD) >= len(outF) {
		t.Fatalf("DHT (%d) not smaller than FHT (%d) on 4-symbol data", len(outD), len(outF))
	}
}

func BenchmarkDeviceCompressP9(b *testing.B) {
	ctx := newP9Context(b)
	src := corpus.Generate(corpus.Text, 1<<20, 1)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, _, err := ctx.Compress(src, FCCompressDHT, WrapGzip, true); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiEngineDispatch(t *testing.T) {
	cfg := P9Device()
	cfg.Engines = 2
	dev := NewDevice(cfg)
	src := corpus.Generate(corpus.Text, 64<<10, 20)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := dev.OpenContext(nmmu.PID(g + 1))
			defer ctx.Close()
			for i := 0; i < 8; i++ {
				out, _, err := ctx.Compress(src, FCCompressFHT, WrapGzip, true)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				back, _, err := ctx.Decompress(out, WrapGzip, len(src)+1024, true)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !bytes.Equal(back, src) {
					t.Errorf("goroutine %d: mismatch", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c0 := dev.Engine(0).Counters().Requests
	c1 := dev.Engine(1).Counters().Requests
	if c0 == 0 || c1 == 0 {
		t.Fatalf("engine distribution %d/%d: one engine idle", c0, c1)
	}
}

func TestMoveFuncCode(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Binary, 256<<10, 30)
	csb, rep, err := ctx.Submit(&CRB{Func: FCMove, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s", csb.CC)
	}
	if !bytes.Equal(csb.Output, src) {
		t.Fatal("move altered data")
	}
	if csb.CRC32 == 0 || csb.Adler32 == 0 {
		t.Fatal("no checksums")
	}
	// Move must be faster than compressing the same bytes (DMA-bound vs
	// LZ-bound).
	_, repC, err := ctx.Compress(src, FCCompressDHT, WrapRaw, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles >= repC.TotalCycles {
		t.Fatalf("move %d cycles not below compress %d", rep.TotalCycles, repC.TotalCycles)
	}
	// And its CRC matches the checksum package.
	var want = csb.CRC32
	csb2, _, _ := ctx.Submit(&CRB{Func: FCMove, Input: src})
	if csb2.CRC32 != want {
		t.Fatal("nondeterministic CRC")
	}
}

func TestSyncCallZ15(t *testing.T) {
	dev := NewDevice(Z15Device())
	ctx := dev.OpenContext(1)
	src := corpus.Generate(corpus.Text, 8<<10, 40)
	csbA, repA, err := ctx.Submit(&CRB{Func: FCCompressFHT, Wrap: WrapGzip, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	csbS, repS, err := ctx.SyncCall(&CRB{Func: FCCompressFHT, Wrap: WrapGzip, Input: src})
	if err != nil {
		t.Fatal(err)
	}
	if csbS.CC != CCSuccess || csbA.CC != CCSuccess {
		t.Fatalf("CCs %s / %s", csbS.CC, csbA.CC)
	}
	if !bytes.Equal(csbS.Output, csbA.Output) {
		t.Fatal("sync and async produced different bytes")
	}
	// Sync dispatch must be cheaper for a small request.
	if repS.TotalCycles >= repA.TotalCycles {
		t.Fatalf("sync %d cycles not below async %d", repS.TotalCycles, repA.TotalCycles)
	}
	want := repA.TotalCycles - (dev.PipelineConfig().SetupCycles - dev.PipelineConfig().SyncSetupCycles)
	if repS.TotalCycles != want {
		t.Fatalf("sync cycles %d, want %d", repS.TotalCycles, want)
	}
}

func TestSyncCallUnsupportedOnP9(t *testing.T) {
	ctx := newP9Context(t)
	_, _, err := ctx.SyncCall(&CRB{Func: FCCompressFHT, Input: []byte("x")})
	if err == nil {
		t.Fatal("P9 accepted a synchronous call")
	}
}

func TestSyncCallFaultProtocol(t *testing.T) {
	dev := NewDevice(Z15Device())
	ctx := dev.OpenContext(1)
	src := corpus.Generate(corpus.Text, 128<<10, 41)
	srcVA, _ := ctx.MapBuffer(len(src), false) // demand-paged
	dstVA, _ := ctx.MapBuffer(2*len(src)+1024, true)
	csb, rep, err := ctx.SyncCall(&CRB{
		Func: FCCompressFHT, Wrap: WrapRaw, Input: src,
		SourceVA: srcVA, TargetVA: dstVA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s", csb.CC)
	}
	if rep.Retries == 0 {
		t.Fatal("no fault retries on demand-paged sync call")
	}
}

func TestResumableDecompression(t *testing.T) {
	ctx := newP9Context(t)
	src := corpus.Generate(corpus.Text, 512<<10, 60)
	// One logical stream built from history-carried segments.
	var stream []byte
	var history []byte
	const chunk = 64 << 10
	for off := 0; off < len(src); off += chunk {
		end := off + chunk
		if end > len(src) {
			end = len(src)
		}
		csb, _, err := ctx.Submit(&CRB{
			Func: FCCompressDHT, Wrap: WrapRaw, Input: src[off:end],
			History: history, NotFinal: end != len(src),
		})
		if err != nil || csb.CC != CCSuccess {
			t.Fatalf("compress segment: %v %v", err, csb.CC)
		}
		stream = append(stream, csb.Output...)
		history = src[:end]
		if len(history) > 32<<10 {
			history = history[len(history)-(32<<10):]
		}
	}
	// Decompress it through resume-state requests of awkward sizes.
	st := NewDecompState(len(src) + 1024)
	var got []byte
	var totalCycles int64
	for off := 0; off < len(stream); off += 9973 {
		end := off + 9973
		if end > len(stream) {
			end = len(stream)
		}
		csb, rep, err := ctx.Submit(&CRB{
			Func: FCDecompress, Wrap: WrapRaw, Input: stream[off:end],
			DecompState: st, NotFinal: end != len(stream),
		})
		if err != nil || csb.CC != CCSuccess {
			t.Fatalf("resume at %d: %v %v %s", off, err, csb.CC, csb.Detail)
		}
		got = append(got, csb.Output...)
		totalCycles += rep.TotalCycles
	}
	if !st.Done() {
		t.Fatal("state not done")
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("resumable decode mismatch: %d vs %d bytes", len(got), len(src))
	}
	if st.Produced() != int64(len(src)) {
		t.Fatalf("produced %d", st.Produced())
	}
	if totalCycles <= 0 {
		t.Fatal("no cycles")
	}
}

func TestResumableDecompressionRejectsWrappedInput(t *testing.T) {
	ctx := newP9Context(t)
	st := NewDecompState(0)
	csb, _, err := ctx.Submit(&CRB{Func: FCDecompress, Wrap: WrapGzip, Input: []byte{1}, DecompState: st})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCInvalidCRB {
		t.Fatalf("CC = %s", csb.CC)
	}
}

func TestResumableDecompressionCorrupt(t *testing.T) {
	ctx := newP9Context(t)
	st := NewDecompState(0)
	csb, _, err := ctx.Submit(&CRB{
		Func: FCDecompress, Wrap: WrapRaw, DecompState: st,
		Input: []byte{0x07, 0xFF, 0xFF}, // final+reserved block type
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCDataCorrupt {
		t.Fatalf("CC = %s (%s)", csb.CC, csb.Detail)
	}
}
