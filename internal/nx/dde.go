package nx

import (
	"fmt"

	"nxzip/internal/nmmu"
)

// DDE is a Data Descriptor Element: how a CRB names a memory operand.
// A direct DDE describes one contiguous virtual range; an indirect DDE
// points at a list of direct DDEs (scatter/gather), which is how the NX
// accepts page-fragmented buffers without requiring the OS to allocate
// contiguous memory. Data still travels as Go slices in the model; the
// DDE's role is to drive translation and segment accounting exactly the
// way the silicon's DMA engine does.
type DDE struct {
	// VA/Len describe a direct element. For an indirect DDE, List is
	// non-nil and VA/Len are ignored.
	VA   uint64
	Len  int
	List []DDE
}

// DirectDDE builds a single-extent descriptor.
func DirectDDE(va uint64, n int) DDE { return DDE{VA: va, Len: n} }

// IndirectDDE builds a scatter/gather descriptor.
func IndirectDDE(elems ...DDE) DDE { return DDE{List: elems} }

// TotalLen sums the bytes described.
func (d DDE) TotalLen() int {
	if d.List == nil {
		return d.Len
	}
	total := 0
	for _, e := range d.List {
		total += e.TotalLen()
	}
	return total
}

// flatten returns the direct extents in order. Nested indirection is
// limited to one level, as on hardware; deeper nesting is rejected.
func (d DDE) flatten() ([]DDE, error) {
	if d.List == nil {
		return []DDE{d}, nil
	}
	out := make([]DDE, 0, len(d.List))
	for _, e := range d.List {
		if e.List != nil {
			return nil, fmt.Errorf("nx: DDE indirection deeper than one level")
		}
		out = append(out, e)
	}
	return out, nil
}

// translateDDE walks every page of every extent, accumulating translation
// cycles and the ERAT hit/miss split, and returns the first fault
// encountered.
func translateDDE(mmu *nmmu.MMU, pid nmmu.PID, d DDE) (nmmu.RangeStats, error) {
	extents, err := d.flatten()
	if err != nil {
		return nmmu.RangeStats{}, err
	}
	var rs nmmu.RangeStats
	for _, e := range extents {
		if e.VA == 0 || e.Len == 0 {
			continue
		}
		s, err := mmu.TranslateRangeStats(pid, e.VA, e.Len)
		rs.Cycles += s.Cycles
		rs.Hits += s.Hits
		rs.Misses += s.Misses
		if err != nil {
			return rs, err
		}
	}
	return rs, nil
}

// GatherDDE assembles the logical source buffer for a scatter/gather
// request from per-extent fragments. Fragment i corresponds to extent i
// of the flattened DDE and must match its length — the model's stand-in
// for the DMA engine reading each extent.
func GatherDDE(d DDE, fragments [][]byte) ([]byte, error) {
	extents, err := d.flatten()
	if err != nil {
		return nil, err
	}
	if len(fragments) != len(extents) {
		return nil, fmt.Errorf("nx: %d fragments for %d extents", len(fragments), len(extents))
	}
	out := make([]byte, 0, d.TotalLen())
	for i, e := range extents {
		if len(fragments[i]) != e.Len {
			return nil, fmt.Errorf("nx: fragment %d is %d bytes, extent says %d", i, len(fragments[i]), e.Len)
		}
		out = append(out, fragments[i]...)
	}
	return out, nil
}
