package nx

import (
	"bytes"
	"testing"

	"nxzip/internal/corpus"
)

func TestDDEGather(t *testing.T) {
	frags := [][]byte{[]byte("abc"), []byte("defgh"), []byte("i")}
	dde := IndirectDDE(DirectDDE(0x1000, 3), DirectDDE(0x2000, 5), DirectDDE(0x3000, 1))
	if dde.TotalLen() != 9 {
		t.Fatalf("TotalLen = %d", dde.TotalLen())
	}
	got, err := GatherDDE(dde, frags)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdefghi" {
		t.Fatalf("gathered %q", got)
	}
}

func TestDDEGatherValidation(t *testing.T) {
	dde := IndirectDDE(DirectDDE(0x1000, 3))
	if _, err := GatherDDE(dde, [][]byte{[]byte("toolong")}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := GatherDDE(dde, nil); err == nil {
		t.Fatal("fragment-count mismatch accepted")
	}
	nested := IndirectDDE(IndirectDDE(DirectDDE(0x1000, 3)))
	if _, err := GatherDDE(nested, [][]byte{[]byte("abc")}); err == nil {
		t.Fatal("two-level indirection accepted")
	}
}

func TestDirectDDEFlattensToItself(t *testing.T) {
	d := DirectDDE(0x1000, 64)
	got, err := GatherDDE(d, [][]byte{make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestScatterGatherRequest(t *testing.T) {
	// A compression request whose source is three discontiguous extents:
	// the engine translates every extent and the data round-trips.
	dev := NewDevice(P9Device())
	ctx := dev.OpenContext(1)
	pieces := [][]byte{
		corpus.Generate(corpus.Text, 40<<10, 1),
		corpus.Generate(corpus.Text, 8<<10, 2),
		corpus.Generate(corpus.Text, 100<<10, 3),
	}
	var extents []DDE
	for _, p := range pieces {
		va, err := ctx.MapBuffer(len(p), true)
		if err != nil {
			t.Fatal(err)
		}
		extents = append(extents, DirectDDE(va, len(p)))
	}
	src := IndirectDDE(extents...)
	input, err := GatherDDE(src, pieces)
	if err != nil {
		t.Fatal(err)
	}
	dstVA, err := ctx.MapBuffer(2*len(input)+1024, true)
	if err != nil {
		t.Fatal(err)
	}
	csb, rep, err := ctx.Submit(&CRB{
		Func: FCCompressDHT, Wrap: WrapGzip, Input: input,
		SourceDDE: &src, TargetVA: dstVA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s (%s)", csb.CC, csb.Detail)
	}
	if rep.Breakdown.Translate <= 0 {
		t.Fatal("no translation cycles for scattered source")
	}
	back, _, err := ctx.Decompress(csb.Output, WrapGzip, len(input)+1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, input) {
		t.Fatal("scatter/gather round-trip mismatch")
	}
}

func TestScatterGatherFaultMidExtent(t *testing.T) {
	dev := NewDevice(P9Device())
	ctx := dev.OpenContext(1)
	a := corpus.Generate(corpus.Text, 64<<10, 4)
	b := corpus.Generate(corpus.Text, 64<<10, 5)
	vaA, _ := ctx.MapBuffer(len(a), true)
	vaB, _ := ctx.MapBuffer(len(b), false) // second extent demand-paged
	src := IndirectDDE(DirectDDE(vaA, len(a)), DirectDDE(vaB, len(b)))
	input := append(append([]byte{}, a...), b...)
	dstVA, _ := ctx.MapBuffer(2*len(input)+1024, true)

	csb, rep, err := ctx.Submit(&CRB{
		Func: FCCompressFHT, Wrap: WrapRaw, Input: input,
		SourceDDE: &src, TargetVA: dstVA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCSuccess {
		t.Fatalf("CC = %s", csb.CC)
	}
	// The second extent faulted; the context's fault loop touched pages
	// and resubmitted.
	if rep.Retries == 0 {
		t.Fatal("expected retries from the demand-paged extent")
	}
}

func TestDDEDeepNestingRejectedByEngine(t *testing.T) {
	dev := NewDevice(P9Device())
	ctx := dev.OpenContext(1)
	va, _ := ctx.MapBuffer(100, true)
	bad := IndirectDDE(IndirectDDE(DirectDDE(va, 100)))
	csb, _, err := ctx.Submit(&CRB{
		Func: FCCompressFHT, Input: make([]byte, 100), SourceDDE: &bad,
	})
	if err != nil {
		t.Fatal(err)
	}
	if csb.CC != CCInvalidCRB {
		t.Fatalf("CC = %s", csb.CC)
	}
}
