package telemetry

// delta.go turns cumulative snapshots into windowed ones: the
// observability layer samples the registry on an interval and diffs
// consecutive snapshots, so lifetime aggregates become rates over time
// without any cost on the instrumented hot paths.

// Delta returns the change from prev to s, instrument by instrument
// (matched on name+label).
//
// Semantics per section:
//   - Counters: Value is s minus prev. An instrument absent from prev
//     (registered mid-window) contributes its full value. Counters are
//     monotone, so a negative difference can only mean prev belongs to
//     a different registry generation; it is clamped to the current
//     value rather than reported as a negative rate.
//   - Gauges: instantaneous by nature — the current value and high-water
//     mark are carried through unchanged.
//   - Histograms: Count and Sum are differenced (so Mean becomes the
//     within-window mean Sum/Count); Min/Max/P50/P95/P99 cannot be
//     recovered from two cumulative summaries and keep the current
//     snapshot's values, which the bounded sample ring already biases
//     toward recent observations. Exemplars likewise carry the current
//     snapshot's slots (each is already the most recent request to
//     cross its bucket).
//
// Both snapshots are left unmodified. A nil prev yields a copy of s.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make([]CounterSnapshot, len(s.Counters)),
		Gauges:     make([]GaugeSnapshot, len(s.Gauges)),
		Histograms: make([]HistogramSnapshot, len(s.Histograms)),
	}
	copy(out.Counters, s.Counters)
	copy(out.Gauges, s.Gauges)
	copy(out.Histograms, s.Histograms)
	if prev == nil {
		return out
	}

	type key struct{ name, label string }
	pc := make(map[key]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[key{c.Name, c.Label}] = c.Value
	}
	for i := range out.Counters {
		c := &out.Counters[i]
		if v, ok := pc[key{c.Name, c.Label}]; ok && v <= c.Value {
			c.Value -= v
		}
	}
	ph := make(map[key]HistogramSnapshot, len(prev.Histograms))
	for _, h := range prev.Histograms {
		ph[key{h.Name, h.Label}] = h
	}
	for i := range out.Histograms {
		h := &out.Histograms[i]
		p, ok := ph[key{h.Name, h.Label}]
		if !ok || p.Count > h.Count {
			continue
		}
		h.Count -= p.Count
		h.Sum -= p.Sum
		if h.Count > 0 {
			h.Mean = h.Sum / float64(h.Count)
		} else {
			h.Sum, h.Mean = 0, 0
		}
		// Cumulative bucket counts difference elementwise (clamped like
		// counters); the slice is copied so neither input is mutated.
		if h.Buckets != nil && len(p.Buckets) == len(h.Buckets) {
			b := make([]int64, len(h.Buckets))
			for j := range b {
				if d := h.Buckets[j] - p.Buckets[j]; d > 0 {
					b[j] = d
				}
			}
			h.Buckets = b
		}
	}
	return out
}

// Histogram returns the named histogram snapshot (label "" for the
// unlabeled instrument) and whether it was found.
func (s *Snapshot) Histogram(name, label string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.Label == label {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Gauge returns the value of the named gauge (label "" for the
// unlabeled instrument), or 0 if absent.
func (s *Snapshot) Gauge(name, label string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name && g.Label == label {
			return g.Value
		}
	}
	return 0
}
