package telemetry

import "testing"

func deltaSnap(pairs ...any) *Snapshot {
	// pairs: alternating name string, value int64 for counters only.
	s := &Snapshot{}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Counters = append(s.Counters, CounterSnapshot{
			Name: pairs[i].(string), Value: int64(pairs[i+1].(int)),
		})
	}
	s.Sort()
	return s
}

func TestDeltaCounters(t *testing.T) {
	prev := deltaSnap("a", 10, "b", 5)
	cur := deltaSnap("a", 30, "b", 5, "c", 7)
	d := cur.Delta(prev)
	if got := d.Counter("a", ""); got != 20 {
		t.Fatalf("a delta = %d, want 20", got)
	}
	if got := d.Counter("b", ""); got != 0 {
		t.Fatalf("unchanged counter delta = %d, want 0", got)
	}
	if got := d.Counter("c", ""); got != 7 {
		t.Fatalf("mid-window counter = %d, want full 7", got)
	}
	// Source snapshots untouched.
	if cur.Counter("a", "") != 30 || prev.Counter("a", "") != 10 {
		t.Fatal("Delta mutated its inputs")
	}
}

func TestDeltaClampsRegistryRestart(t *testing.T) {
	// prev ahead of cur means prev is from a different registry
	// generation; the delta falls back to the current value rather than
	// going negative.
	prev := deltaSnap("a", 100)
	cur := deltaSnap("a", 3)
	if got := cur.Delta(prev).Counter("a", ""); got != 3 {
		t.Fatalf("restart delta = %d, want clamp to 3", got)
	}
}

func TestDeltaGaugesCarriedThrough(t *testing.T) {
	prev := &Snapshot{Gauges: []GaugeSnapshot{{Name: "g", Value: 9, Max: 9}}}
	cur := &Snapshot{Gauges: []GaugeSnapshot{{Name: "g", Value: 2, Max: 11}}}
	d := cur.Delta(prev)
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 2 || d.Gauges[0].Max != 11 {
		t.Fatalf("gauge not carried: %+v", d.Gauges)
	}
}

func TestDeltaHistograms(t *testing.T) {
	prev := &Snapshot{Histograms: []HistogramSnapshot{
		{Name: "h", Count: 10, Sum: 100, Mean: 10, P99: 40},
	}}
	cur := &Snapshot{Histograms: []HistogramSnapshot{
		{Name: "h", Count: 30, Sum: 600, Mean: 20, Min: 1, Max: 90, P50: 15, P95: 60, P99: 80},
	}}
	h, ok := cur.Delta(prev).Histogram("h", "")
	if !ok {
		t.Fatal("histogram missing from delta")
	}
	if h.Count != 20 || h.Sum != 500 {
		t.Fatalf("Count/Sum not differenced: %+v", h)
	}
	if h.Mean != 25 {
		t.Fatalf("window mean = %v, want 500/20", h.Mean)
	}
	// Percentiles/min/max keep the (recent-biased) current values.
	if h.P99 != 80 || h.Max != 90 {
		t.Fatalf("order stats not carried: %+v", h)
	}
}

func TestDeltaHistogramIdleWindow(t *testing.T) {
	same := &Snapshot{Histograms: []HistogramSnapshot{{Name: "h", Count: 5, Sum: 50, Mean: 10}}}
	h, _ := same.Delta(same).Histogram("h", "")
	if h.Count != 0 || h.Sum != 0 || h.Mean != 0 {
		t.Fatalf("idle window not zeroed: %+v", h)
	}
}

func TestDeltaNilPrevCopies(t *testing.T) {
	cur := deltaSnap("a", 4)
	d := cur.Delta(nil)
	if d.Counter("a", "") != 4 {
		t.Fatalf("nil-prev delta = %d", d.Counter("a", ""))
	}
	d.Counters[0].Value = 99
	if cur.Counter("a", "") != 4 {
		t.Fatal("nil-prev delta aliases the source")
	}
}

func TestHistogramSnapshotSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	hs, ok := r.Snapshot().Histogram("lat", "")
	if !ok {
		t.Fatal("histogram missing")
	}
	if hs.Sum != 10 {
		t.Fatalf("Sum = %v, want 10", hs.Sum)
	}
	if hs.Mean != 2.5 {
		t.Fatalf("Mean = %v", hs.Mean)
	}
}

func TestMergedHistogramSumAdds(t *testing.T) {
	mk := func(vals ...float64) *Snapshot {
		r := NewRegistry()
		h := r.Histogram("lat")
		for _, v := range vals {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	m := MergeSnapshots([]LabeledSnapshot{
		{Label: "d0", Snap: mk(1, 2)},
		{Label: "d1", Snap: mk(3, 4)},
	})
	agg, ok := m.Histogram("lat", "")
	if !ok {
		t.Fatal("aggregate histogram missing")
	}
	if agg.Sum != 10 || agg.Count != 4 {
		t.Fatalf("aggregate Sum/Count = %v/%d, want 10/4", agg.Sum, agg.Count)
	}
	per, ok := m.Histogram("lat", "d0")
	if !ok || per.Sum != 3 {
		t.Fatalf("per-device sum = %v ok=%v", per.Sum, ok)
	}
}

func TestSnapshotGaugeAccessor(t *testing.T) {
	s := &Snapshot{Gauges: []GaugeSnapshot{{Name: "g", Label: "d0", Value: 6}}}
	if s.Gauge("g", "d0") != 6 || s.Gauge("g", "") != 0 || s.Gauge("missing", "") != 0 {
		t.Fatalf("gauge accessor wrong: %d %d", s.Gauge("g", "d0"), s.Gauge("g", ""))
	}
}
