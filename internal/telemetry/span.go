package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a request's lifecycle. The first group
// are host-side queueing phases measured in wall-clock; the second group
// are the engine's modelled pipeline stages, whose Cycles field is exact
// and whose host interval is synthesized (see Span.RecordPipeline).
type Stage uint8

const (
	// StageSubmit covers paste attempts including credit-wait spinning,
	// from first paste try to the paste that was accepted.
	StageSubmit Stage = iota
	// StageFIFO is receive-FIFO residency: paste accept to dequeue.
	StageFIFO
	// StageSetup is CRB fetch + engine dispatch.
	StageSetup
	// StageTranslate is NMMU address translation (ERAT hits/walks).
	StageTranslate
	// StageDHTGen is dynamic Huffman table generation.
	StageDHTGen
	// StageDMAIn is the source-operand DMA read.
	StageDMAIn
	// StageLZ is the match-search stage (compression).
	StageLZ
	// StageEncode is the Huffman encode stage (compression).
	StageEncode
	// StageDecode is the decode stage (decompression).
	StageDecode
	// StageDMAOut is the target-operand DMA write.
	StageDMAOut
	// StageComplete is CSB writeback and credit return.
	StageComplete
	// StageFault is one OS-side fault-handling interlude: the touch of
	// the faulting page between a CCTranslationFault and the resubmit.
	// Its Cycles field carries the faulted attempt's wasted device
	// cycles.
	StageFault

	numStages
)

var stageNames = [numStages]string{
	"submit", "fifo", "setup", "translate", "dht-gen", "dma-in", "lz",
	"encode", "decode", "dma-out", "complete", "fault",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// StageRecord is one timed lifecycle phase. Start/End are host
// wall-clock; Cycles is the modelled device-cycle cost (0 for phases
// the device model does not charge, like FIFO residency).
type StageRecord struct {
	Stage   Stage
	Start   time.Time
	End     time.Time
	Cycles  int64
	Attempt int // fault-and-resubmit round this record belongs to
}

// Span is the trace record of one request, from first paste attempt to
// CSB completion, including every fault/resubmit round. A span is only
// allocated when a tracer is installed; all recording methods are
// nil-safe so instrumentation sites need no guards.
//
// Concurrency: a span is written by at most one goroutine at a time —
// the submitter before paste and after completion, the goroutine that
// dequeued the request in between — with the switchboard mutex and the
// completion channel providing the happens-before edges.
type Span struct {
	ID uint64
	// ReqID is the root-level request identity: every span belonging to
	// one public API call — the original attempt, failover re-dispatches,
	// batch entries, the fault-resubmit straggler — carries the same
	// ReqID, so one grep over a sink reconstructs the request's history.
	// Zero when the caller did not mint one (internal traffic).
	ReqID uint64
	// Hop is the dispatch attempt ordinal under one ReqID: 0 for the
	// original dispatch, 1.. for failover re-dispatches.
	Hop int
	// Tenant is the node-level view identity (topology context ID) the
	// submitting context carries — the admission gate's quota key. 0 for
	// raw single-device contexts.
	Tenant uint64
	// Priority is the admission-class name the view carried at span
	// start ("interactive", "batch", "background"); empty when unset.
	Priority string
	Op       string // function code
	PID      int
	Window   int
	Engine   int // engine index of the final attempt
	Start    time.Time
	End      time.Time
	InBytes  int
	OutBytes int
	CC       string
	Retries  int // fault-and-resubmit rounds
	// PasteRejects counts paste attempts bounced for credits/FIFO space
	// before the request entered the FIFO (summed across resubmits).
	PasteRejects int
	ERATHits     int64
	ERATMisses   int64
	// DeviceCycles is the total modelled cost including faulted attempts.
	DeviceCycles int64
	Stages       []StageRecord
}

// RecordStage appends one timed lifecycle phase.
func (s *Span) RecordStage(st Stage, start, end time.Time, cycles int64) {
	if s == nil {
		return
	}
	s.Stages = append(s.Stages, StageRecord{
		Stage: st, Start: start, End: end, Cycles: cycles, Attempt: s.Retries,
	})
}

// PipelineStage pairs a modelled stage with its cycle cost, for
// RecordPipeline.
type PipelineStage struct {
	Stage  Stage
	Cycles int64
}

// RecordPipeline appends the engine's modelled stage breakdown for one
// attempt. The cycle counts are exact; since the model charges the
// engine for max(overlapped stages) rather than their sum, the host
// intervals are synthesized — the [start, end] engine-occupancy window
// is divided proportionally to each stage's cycle share — so a trace
// renders the relative weight of every stage with monotonic boundaries.
func (s *Span) RecordPipeline(start, end time.Time, stages []PipelineStage) {
	if s == nil {
		return
	}
	var total int64
	for _, st := range stages {
		total += st.Cycles
	}
	span := end.Sub(start)
	at := start
	for i, st := range stages {
		if st.Cycles <= 0 {
			continue
		}
		var d time.Duration
		if total > 0 {
			d = time.Duration(float64(span) * float64(st.Cycles) / float64(total))
		}
		stEnd := at.Add(d)
		if i == len(stages)-1 || stEnd.After(end) {
			stEnd = end // absorb rounding into the last stage
		}
		s.RecordStage(st.Stage, at, stEnd, st.Cycles)
		at = stEnd
	}
}

// CyclesFor sums the modelled cycles recorded for one stage across all
// attempts.
func (s *Span) CyclesFor(st Stage) int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for _, r := range s.Stages {
		if r.Stage == st {
			sum += r.Cycles
		}
	}
	return sum
}

// FinalAttemptCyclesFor sums the modelled cycles recorded for one stage
// in the final (successful) attempt only.
func (s *Span) FinalAttemptCyclesFor(st Stage) int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for _, r := range s.Stages {
		if r.Stage == st && r.Attempt == s.Retries {
			sum += r.Cycles
		}
	}
	return sum
}

// Monotonic reports whether the span's stage records are chronologically
// ordered: each record's End is not before its Start, and record starts
// never go backwards. The soak tests assert this for every span of a
// concurrent run.
func (s *Span) Monotonic() bool {
	if s == nil {
		return true
	}
	var prev time.Time
	for _, r := range s.Stages {
		if r.End.Before(r.Start) || r.Start.Before(prev) {
			return false
		}
		prev = r.Start
	}
	return true
}

// spanStageCap is the Stages capacity new (and recycled) spans carry:
// enough for the submit/FIFO records plus a full pipeline breakdown
// without growing on the fault-free path.
const spanStageCap = 12

// Tracer hands out spans and forwards finished ones to its sink. A nil
// *Tracer is a valid no-op tracer: Start returns nil and every Span
// method on nil is a no-op, which is the zero-cost disabled path.
type Tracer struct {
	sink Sink
	seq  atomic.Uint64
	// pool, when non-nil, recycles spans: Start draws from it and the
	// sink's owner returns consumed spans with Recycle, so an always-on
	// recorder keeps the steady-state request path allocation-free.
	pool *sync.Pool
}

// NewTracer builds a tracer emitting to sink.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// NewPooledTracer builds a tracer whose spans recycle through a
// sync.Pool: Start reuses spans previously returned with Recycle
// (preserving their Stages backing), so a sink that calls Recycle once
// it is done with each span — the flight recorder does — makes tracing
// allocation-free in the steady state.
func NewPooledTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, pool: &sync.Pool{New: func() any {
		return &Span{Stages: make([]StageRecord, 0, spanStageCap)}
	}}}
}

// Recycle returns a consumed span to the tracer's pool (no-op for
// unpooled tracers). The caller must not touch s afterwards.
func (t *Tracer) Recycle(s *Span) {
	if t == nil || t.pool == nil || s == nil {
		return
	}
	*s = Span{Stages: s.Stages[:0]}
	t.pool.Put(s)
}

// Start opens a span for one request. Returns nil on a nil tracer.
func (t *Tracer) Start(op string, pid, window int) *Span {
	if t == nil {
		return nil
	}
	if t.pool != nil {
		s := t.pool.Get().(*Span)
		s.ID = t.seq.Add(1)
		s.Op = op
		s.PID = pid
		s.Window = window
		s.Start = time.Now()
		return s
	}
	return &Span{
		ID:     t.seq.Add(1),
		Op:     op,
		PID:    pid,
		Window: window,
		Start:  time.Now(),
		Stages: make([]StageRecord, 0, spanStageCap),
	}
}

// Finish stamps the span's end time and emits it to the sink. Nil-safe.
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.End = time.Now()
	if t.sink != nil {
		t.sink.Emit(s)
	}
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}
