package telemetry

import (
	"sort"
	"sync"
)

// digest.go is the flight recorder's cheap half: a fixed-size digest per
// request — identity, size, cost, outcome — recorded for EVERY request
// into a bounded ring. Where a Span is the full story of one request
// (and is only retained for interesting requests), the digest ring is
// the always-on index: constant size, no pointers into request data,
// one mutexed struct copy per request.

// Outcome classifies how a request ended.
type Outcome uint8

const (
	// OutcomeOK is a device-path success.
	OutcomeOK Outcome = iota
	// OutcomeError is a terminal failure surfaced to the caller.
	OutcomeError
	// OutcomeDegraded is a success produced by the software fallback.
	OutcomeDegraded
	// OutcomeShed is a request refused by the admission gate under
	// overload — no device or software cycles were spent on it.
	OutcomeShed

	// OutcomeCount sizes per-outcome arrays.
	OutcomeCount
)

var outcomeNames = [...]string{"ok", "error", "degraded", "shed"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome?"
}

// Digest is the fixed-size flight record of one root-level request.
// String fields hold constant strings (function-code names, device
// labels), so recording a digest copies no request data and performs no
// allocation.
type Digest struct {
	// Seq is the ring's monotone record number, stamped by Record.
	Seq uint64 `json:"seq"`
	// Req is the root-minted RequestID shared with the request's spans,
	// events and errors.
	Req uint64 `json:"req"`
	// Op is the function-code name ("compress-dht", "decompress", …).
	Op string `json:"op"`
	// Codec names the codec family the request ran under ("deflate",
	// "842", "lz4", or "deflate+lz4" for a transcode). Empty in digests
	// recorded before codec-plural dispatch existed.
	Codec string `json:"codec,omitempty"`
	// Device is the serving device's label, "software" for fallback
	// results, "" when the request failed before any device ran it.
	Device string `json:"device"`
	// Tenant is the VAS context ID of the view that issued the request —
	// the same identity the admission gate quotas on. 0 in digests
	// recorded before tenant accounting existed.
	Tenant uint64 `json:"tenant,omitempty"`
	// Priority is the admission class the request carried ("interactive",
	// "batch", "background"). Empty in pre-tenant digests.
	Priority string `json:"priority,omitempty"`
	InBytes  int    `json:"in_bytes"`
	OutBytes int    `json:"out_bytes"`
	// QueueUS is receive-FIFO residency (paste accept to dequeue) in
	// microseconds, for the winning attempt.
	QueueUS float64 `json:"queue_us"`
	// TotalUS is the request's total wall-clock latency in microseconds,
	// measured at the root API (all attempts plus fallback).
	TotalUS float64 `json:"total_us"`
	// EngineCycles is the modelled device-cycle cost including faulted
	// and failed attempts.
	EngineCycles int64 `json:"engine_cycles"`
	// Attempts counts dispatch attempts: 1 on first-try success, +1 per
	// failover re-dispatch (the software fallback does not count).
	Attempts int     `json:"attempts"`
	Outcome  Outcome `json:"outcome"`
}

// DigestRing is a bounded, concurrency-safe ring of request digests.
// Record is allocation-free (a locked struct copy); Snapshot and
// Slowest allocate and are meant for scrape-time readers.
type DigestRing struct {
	mu   sync.Mutex
	buf  []Digest
	next uint64 // total records ever; buf[(next-1) % len] is the newest
}

// NewDigestRing builds a ring holding the last size digests (minimum 1).
func NewDigestRing(size int) *DigestRing {
	if size < 1 {
		size = 1
	}
	return &DigestRing{buf: make([]Digest, size)}
}

// Record stamps d.Seq with the next monotone sequence number and stores
// a copy in the ring, returning the stamped sequence.
func (r *DigestRing) Record(d *Digest) uint64 {
	r.mu.Lock()
	seq := r.next + 1
	r.next = seq
	d.Seq = seq
	r.buf[(seq-1)%uint64(len(r.buf))] = *d
	r.mu.Unlock()
	return seq
}

// Seq returns the total number of digests ever recorded (the newest
// record's Seq).
func (r *DigestRing) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns up to n of the most recent digests, oldest first.
// n <= 0 means everything the ring holds.
func (r *DigestRing) Snapshot(n int) []Digest {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := int(r.next)
	if held > len(r.buf) {
		held = len(r.buf)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Digest, n)
	for i := 0; i < n; i++ {
		seq := r.next - uint64(n) + uint64(i) + 1
		out[i] = r.buf[(seq-1)%uint64(len(r.buf))]
	}
	return out
}

// Slowest returns up to n held digests ordered by TotalUS descending —
// the "slowest recent requests" feed for dashboards.
func (r *DigestRing) Slowest(n int) []Digest {
	all := r.Snapshot(0)
	sort.Slice(all, func(i, j int) bool {
		if all[i].TotalUS != all[j].TotalUS {
			return all[i].TotalUS > all[j].TotalUS
		}
		return all[i].Seq > all[j].Seq
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}
