// Package telemetry is the observability layer of the accelerator model:
// a low-overhead metrics registry (atomic counters, gauges and bounded
// histograms, with labeled families) plus per-request trace spans that
// ride a CRB through its whole lifecycle — paste and credit wait, receive
// FIFO residency, translation (ERAT hits/misses and fault/resubmit
// rounds), the engine pipeline stages, and CSB completion — in both
// modelled device cycles and host wall-clock.
//
// The contract the request hot path depends on: with no tracer installed
// every instrument is a plain atomic update on a pre-resolved pointer —
// no allocation, no lock on counters/gauges, one short mutex on
// histograms — and span recording costs exactly one nil check.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"nxzip/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value with a high-water mark. Set and Add are
// atomic; Max tracks the largest value ever set.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	g.bumpMax(v)
	return v
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histogramWindow bounds the sample reservoir a Histogram keeps for
// percentile queries. Mean/min/max/count are exact over every
// observation; percentiles are computed over the most recent
// histogramWindow observations.
const histogramWindow = 4096

// bucketBounds is the fixed cumulative-bucket ladder every Histogram
// counts observations into: a 1-2.5-5 decade ladder spanning 1..5e8 in
// the instrument's own unit (microseconds for the latency histograms).
// Observations above the last bound land only in the implicit +Inf
// bucket (the total count). A fixed ladder keeps Observe allocation-free
// and makes per-device bucket rows mergeable by plain elementwise
// addition.
var bucketBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5,
	1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8,
}

// BucketBounds returns the shared histogram bucket ladder (callers must
// not modify it). HistogramSnapshot.Buckets is indexed the same way.
func BucketBounds() []float64 { return bucketBounds }

// Exemplar links one histogram bucket back to a concrete request: the
// most recent root-minted RequestID whose observation landed in the
// bucket, plus the observed value. Req 0 means the bucket has no
// exemplar (RequestIDs start at 1). Exemplars are the OpenMetrics
// bridge from an aggregate latency series to the flight recorder's
// per-request digests.
type Exemplar struct {
	Req   uint64  `json:"req"`
	Value float64 `json:"value"`
}

// Histogram records a distribution: an exact streaming summary
// (stats.Summary), per-bucket counts over the fixed ladder, plus a
// bounded ring of recent samples for percentile queries (stats.Samples
// at snapshot time). Observe never allocates after construction; a short
// mutex keeps snapshot-during-update tear-free. Exemplar slots (one per
// bucket, last slot = +Inf) are allocated lazily on the first
// ObserveExemplar call, so histograms bumped only via Observe pay
// nothing for the feature.
type Histogram struct {
	mu     sync.Mutex
	sum    stats.Summary
	ring   []float64
	n      int64 // total observations (ring writes wrap at histogramWindow)
	counts []int64
	ex     []Exemplar // len(bucketBounds)+1 slots, nil until first ObserveExemplar
}

func newHistogram() *Histogram {
	return &Histogram{
		ring:   make([]float64, 0, histogramWindow),
		counts: make([]int64, len(bucketBounds)),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.observeLocked(v)
	h.mu.Unlock()
}

// ObserveExemplar records one observation and stamps req as the
// exemplar of the bucket it lands in (the implicit +Inf bucket for
// values above the ladder). Allocation-free after the first call.
func (h *Histogram) ObserveExemplar(v float64, req uint64) {
	h.mu.Lock()
	i := h.observeLocked(v)
	if h.ex == nil {
		h.ex = make([]Exemplar, len(bucketBounds)+1)
	}
	h.ex[i] = Exemplar{Req: req, Value: v}
	h.mu.Unlock()
}

// observeLocked is the shared bump body; it returns the bucket index the
// observation landed in (len(bucketBounds) for +Inf).
func (h *Histogram) observeLocked(v float64) int {
	h.sum.Add(v)
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, v)
	} else {
		h.ring[h.n%histogramWindow] = v
	}
	h.n++
	i := sort.SearchFloat64s(bucketBounds, v)
	if i < len(h.counts) {
		h.counts[i]++
	}
	return i
}

// snapshot captures the histogram under its lock.
func (h *Histogram) snapshot(name, label string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:  name,
		Label: label,
		Count: h.sum.N(),
		Sum:   h.sum.Sum(),
		Mean:  h.sum.Mean(),
		Min:   h.sum.Min(),
		Max:   h.sum.Max(),
	}
	if h.counts != nil {
		s.Buckets = make([]int64, len(h.counts))
		var cum int64
		for i, c := range h.counts {
			cum += c
			s.Buckets[i] = cum
		}
	}
	if h.ex != nil {
		s.Exemplars = append([]Exemplar(nil), h.ex...)
	}
	if len(h.ring) > 0 {
		var ps stats.Samples
		for _, v := range h.ring {
			ps.Add(v)
		}
		s.P50 = ps.Percentile(50)
		s.P95 = ps.Percentile(95)
		s.P99 = ps.Percentile(99)
	}
	return s
}

// CounterVec is a labeled family of counters (per-engine, per-context,
// per-priority, per-CC...). With is safe for concurrent use and returns a
// stable *Counter for the label, so hot paths resolve once and then pay
// only the atomic add.
type CounterVec struct {
	m sync.Map // label -> *Counter
}

// With returns the counter for label, creating it on first use.
func (v *CounterVec) With(label string) *Counter {
	if c, ok := v.m.Load(label); ok {
		return c.(*Counter)
	}
	c, _ := v.m.LoadOrStore(label, &Counter{})
	return c.(*Counter)
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	m sync.Map // label -> *Gauge
}

// With returns the gauge for label, creating it on first use.
func (v *GaugeVec) With(label string) *Gauge {
	if g, ok := v.m.Load(label); ok {
		return g.(*Gauge)
	}
	g, _ := v.m.LoadOrStore(label, &Gauge{})
	return g.(*Gauge)
}

// HistogramVec is a labeled family of histograms.
type HistogramVec struct {
	m sync.Map // label -> *Histogram
}

// With returns the histogram for label, creating it on first use.
func (v *HistogramVec) With(label string) *Histogram {
	if h, ok := v.m.Load(label); ok {
		return h.(*Histogram)
	}
	h, _ := v.m.LoadOrStore(label, newHistogram())
	return h.(*Histogram)
}

// retireMatch reports whether a series label belongs to the retired
// prefix: an exact match, or prefix followed by a "/" segment separator
// ("t5" retires "t5" and "t5/batch/ok", never "t51").
func retireMatch(label, prefix string) bool {
	if label == prefix {
		return true
	}
	return len(label) > len(prefix) && label[:len(prefix)] == prefix && label[len(prefix)] == '/'
}

// Retire deletes every series whose label matches prefix (see
// retireMatch), returning how many were removed. Callers holding stale
// *Counter pointers keep bumping a detached instrument — harmless, it
// just never appears in a snapshot again.
func (v *CounterVec) Retire(prefix string) int {
	var n int
	v.m.Range(func(k, _ any) bool {
		if retireMatch(k.(string), prefix) {
			v.m.Delete(k)
			n++
		}
		return true
	})
	return n
}

// Retire deletes every series whose label matches prefix.
func (v *GaugeVec) Retire(prefix string) int {
	var n int
	v.m.Range(func(k, _ any) bool {
		if retireMatch(k.(string), prefix) {
			v.m.Delete(k)
			n++
		}
		return true
	})
	return n
}

// Retire deletes every series whose label matches prefix.
func (v *HistogramVec) Retire(prefix string) int {
	var n int
	v.m.Range(func(k, _ any) bool {
		if retireMatch(k.(string), prefix) {
			v.m.Delete(k)
			n++
		}
		return true
	})
	return n
}

// Registry is a named set of instruments. Lookup methods get-or-create;
// callers resolve instruments once (at device construction) and hold the
// returned pointer, so the request path never touches the registry maps.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*CounterVec
	gauges     map[string]*GaugeVec
	histograms map[string]*HistogramVec
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*CounterVec),
		gauges:     make(map[string]*GaugeVec),
		histograms: make(map[string]*HistogramVec),
	}
}

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counters[name]
	if !ok {
		v = &CounterVec{}
		r.counters[name] = v
	}
	return v
}

// Counter returns the unlabeled counter name.
func (r *Registry) Counter(name string) *Counter { return r.CounterVec(name).With("") }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	if !ok {
		v = &GaugeVec{}
		r.gauges[name] = v
	}
	return v
}

// Gauge returns the unlabeled gauge name.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeVec(name).With("") }

// HistogramVec returns the labeled histogram family name.
func (r *Registry) HistogramVec(name string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histograms[name]
	if !ok {
		v = &HistogramVec{}
		r.histograms[name] = v
	}
	return v
}

// Histogram returns the unlabeled histogram name.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramVec(name).With("") }

// RetireLabelPrefix deletes, across every instrument family, each series
// whose label is prefix or begins with prefix+"/". It is the series
// garbage collector behind tenant retirement: when a tenant's views are
// closed and its admission entry swept, retiring "t<id>" drops its
// labeled rows from future snapshots so the exposition does not grow
// without bound under view churn. Returns the number of series removed.
func (r *Registry) RetireLabelPrefix(prefix string) int {
	if prefix == "" {
		return 0
	}
	r.mu.Lock()
	cvecs := make([]*CounterVec, 0, len(r.counters))
	for _, v := range r.counters {
		cvecs = append(cvecs, v)
	}
	gvecs := make([]*GaugeVec, 0, len(r.gauges))
	for _, v := range r.gauges {
		gvecs = append(gvecs, v)
	}
	hvecs := make([]*HistogramVec, 0, len(r.histograms))
	for _, v := range r.histograms {
		hvecs = append(hvecs, v)
	}
	r.mu.Unlock()
	var n int
	for _, v := range cvecs {
		n += v.Retire(prefix)
	}
	for _, v := range gvecs {
		n += v.Retire(prefix)
	}
	for _, v := range hvecs {
		n += v.Retire(prefix)
	}
	return n
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value and high-water mark.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramSnapshot summarizes one histogram. Count/Sum/Mean/Min/Max
// are exact over all observations; P50/P95/P99 cover the most recent
// histogramWindow observations. Sum lets consumers derive mean rates
// from snapshot deltas without access to the sample ring.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets are cumulative observation counts per BucketBounds entry
	// (Prometheus _bucket semantics: Buckets[i] counts observations
	// <= BucketBounds()[i]; the implicit +Inf bucket is Count). Nil on
	// snapshots assembled without bucket data.
	Buckets []int64 `json:"buckets,omitempty"`
	// Exemplars holds one entry per bucket (len(BucketBounds())+1; the
	// last is the +Inf bucket): the most recent RequestID whose
	// observation crossed that bucket. Req 0 = no exemplar. Nil on
	// histograms never bumped via ObserveExemplar.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time view of every instrument, sorted by name
// then label. Each instrument is read atomically (counters/gauges) or
// under its lock (histograms), so no individual value is torn; the
// snapshot as a whole is not a cross-instrument atomic cut.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.histograms)
	cvecs := make([]*CounterVec, len(cnames))
	for i, n := range cnames {
		cvecs[i] = r.counters[n]
	}
	gvecs := make([]*GaugeVec, len(gnames))
	for i, n := range gnames {
		gvecs[i] = r.gauges[n]
	}
	hvecs := make([]*HistogramVec, len(hnames))
	for i, n := range hnames {
		hvecs[i] = r.histograms[n]
	}
	r.mu.Unlock()

	s := &Snapshot{}
	for i, v := range cvecs {
		name := cnames[i]
		v.m.Range(func(k, val any) bool {
			s.Counters = append(s.Counters, CounterSnapshot{
				Name: name, Label: k.(string), Value: val.(*Counter).Value(),
			})
			return true
		})
	}
	for i, v := range gvecs {
		name := gnames[i]
		v.m.Range(func(k, val any) bool {
			g := val.(*Gauge)
			s.Gauges = append(s.Gauges, GaugeSnapshot{
				Name: name, Label: k.(string), Value: g.Value(), Max: g.Max(),
			})
			return true
		})
	}
	for i, v := range hvecs {
		name := hnames[i]
		v.m.Range(func(k, val any) bool {
			s.Histograms = append(s.Histograms, val.(*Histogram).snapshot(name, k.(string)))
			return true
		})
	}
	s.Sort()
	return s
}

// Sort orders every section by name then label (snapshots assembled from
// several sources call this once at the end).
func (s *Snapshot) Sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Label < s.Counters[j].Label
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Label < s.Gauges[j].Label
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].Label < s.Histograms[j].Label
	})
}

// Append concatenates o's instruments onto s (no sorting or merging —
// call Sort once every source is in). Callers assembling a snapshot from
// several registries (a node registry plus per-device registries) use
// this to build one view.
func (s *Snapshot) Append(o *Snapshot) {
	if o == nil {
		return
	}
	s.Counters = append(s.Counters, o.Counters...)
	s.Gauges = append(s.Gauges, o.Gauges...)
	s.Histograms = append(s.Histograms, o.Histograms...)
}

// LabeledSnapshot pairs one source's snapshot with the label identifying
// it (a device label in a multi-accelerator node).
type LabeledSnapshot struct {
	Label string
	Snap  *Snapshot
}

// joinLabel prefixes an instrument label with its source label:
// "drawer0/cp1" alone when the instrument was unlabeled, otherwise
// "drawer0/cp1/<label>".
func joinLabel(source, label string) string {
	if label == "" {
		return source
	}
	return source + "/" + label
}

// MergeSnapshots combines per-source snapshots into one view. Every
// instrument appears twice: once per source under its source-prefixed
// label ("<source>" or "<source>/<label>"), and once as an aggregate row
// under the original name+label summed across sources — so a consumer
// that knew the single-device layout reads the same rows with the same
// totals, and per-device detail sits alongside.
//
// Aggregation semantics: counters sum. Gauge values sum; the aggregate
// Max is the sum of per-source maxes, an upper bound on the (unknowable
// after the fact) true combined high-water. Histogram Count/Min/Max
// merge exactly and Mean is count-weighted; the aggregate percentiles
// are count-weighted means of per-source percentiles — an approximation,
// exact only when the sources are identically distributed.
func MergeSnapshots(sources []LabeledSnapshot) *Snapshot {
	out := &Snapshot{}
	type key struct{ name, label string }
	cagg := make(map[key]*CounterSnapshot)
	gagg := make(map[key]*GaugeSnapshot)
	hagg := make(map[key]*HistogramSnapshot)
	var corder, gorder, horder []key
	for _, src := range sources {
		if src.Snap == nil {
			continue
		}
		for _, c := range src.Snap.Counters {
			out.Counters = append(out.Counters, CounterSnapshot{
				Name: c.Name, Label: joinLabel(src.Label, c.Label), Value: c.Value,
			})
			k := key{c.Name, c.Label}
			if a := cagg[k]; a != nil {
				a.Value += c.Value
			} else {
				cagg[k] = &CounterSnapshot{Name: c.Name, Label: c.Label, Value: c.Value}
				corder = append(corder, k)
			}
		}
		for _, g := range src.Snap.Gauges {
			out.Gauges = append(out.Gauges, GaugeSnapshot{
				Name: g.Name, Label: joinLabel(src.Label, g.Label), Value: g.Value, Max: g.Max,
			})
			k := key{g.Name, g.Label}
			if a := gagg[k]; a != nil {
				a.Value += g.Value
				a.Max += g.Max
			} else {
				gagg[k] = &GaugeSnapshot{Name: g.Name, Label: g.Label, Value: g.Value, Max: g.Max}
				gorder = append(gorder, k)
			}
		}
		for _, h := range src.Snap.Histograms {
			hh := h
			hh.Label = joinLabel(src.Label, h.Label)
			out.Histograms = append(out.Histograms, hh)
			k := key{h.Name, h.Label}
			a := hagg[k]
			if a == nil {
				cp := h
				// The aggregate row owns its bucket and exemplar slices:
				// merging in later sources must not mutate the per-source
				// row.
				if h.Buckets != nil {
					cp.Buckets = append([]int64(nil), h.Buckets...)
				}
				if h.Exemplars != nil {
					cp.Exemplars = append([]Exemplar(nil), h.Exemplars...)
				}
				hagg[k] = &cp
				horder = append(horder, k)
				continue
			}
			mergeHistogram(a, h)
		}
	}
	for _, k := range corder {
		out.Counters = append(out.Counters, *cagg[k])
	}
	for _, k := range gorder {
		out.Gauges = append(out.Gauges, *gagg[k])
	}
	for _, k := range horder {
		out.Histograms = append(out.Histograms, *hagg[k])
	}
	out.Sort()
	return out
}

// mergeHistogram folds h into a (see MergeSnapshots for the semantics).
func mergeHistogram(a *HistogramSnapshot, h HistogramSnapshot) {
	if h.Count == 0 {
		return
	}
	if a.Count == 0 {
		label := a.Label
		*a = h
		a.Label = label
		if h.Buckets != nil {
			a.Buckets = append([]int64(nil), h.Buckets...)
		}
		if h.Exemplars != nil {
			a.Exemplars = append([]Exemplar(nil), h.Exemplars...)
		}
		return
	}
	n := a.Count + h.Count
	wa, wh := float64(a.Count)/float64(n), float64(h.Count)/float64(n)
	a.Sum += h.Sum
	a.Mean = a.Mean*wa + h.Mean*wh
	a.P50 = a.P50*wa + h.P50*wh
	a.P95 = a.P95*wa + h.P95*wh
	a.P99 = a.P99*wa + h.P99*wh
	if h.Min < a.Min {
		a.Min = h.Min
	}
	if h.Max > a.Max {
		a.Max = h.Max
	}
	a.Count = n
	// Cumulative bucket rows over the shared fixed ladder sum
	// elementwise.
	for i := 0; i < len(a.Buckets) && i < len(h.Buckets); i++ {
		a.Buckets[i] += h.Buckets[i]
	}
	// RequestIDs are minted by one process-wide monotone counter, so the
	// larger Req is the more recent exemplar: merge slots elementwise by
	// max-Req.
	if h.Exemplars != nil {
		if a.Exemplars == nil {
			a.Exemplars = append([]Exemplar(nil), h.Exemplars...)
		} else {
			for i := 0; i < len(a.Exemplars) && i < len(h.Exemplars); i++ {
				if h.Exemplars[i].Req > a.Exemplars[i].Req {
					a.Exemplars[i] = h.Exemplars[i]
				}
			}
		}
	}
}

// Counter returns the value of the named counter (label "" for the
// unlabeled instrument), or 0 if absent.
func (s *Snapshot) Counter(name, label string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Label == label {
			return c.Value
		}
	}
	return 0
}

// CounterSum returns the sum across every label of the named family.
func (s *Snapshot) CounterSum(name string) int64 {
	var sum int64
	for _, c := range s.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

// Format renders the snapshot as an aligned text table.
func (s *Snapshot) Format(w io.Writer) {
	fmt.Fprintf(w, "-- counters --\n")
	for _, c := range s.Counters {
		fmt.Fprintf(w, "%-36s %12d\n", instrumentName(c.Name, c.Label), c.Value)
	}
	fmt.Fprintf(w, "-- gauges --\n")
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "%-36s %12d  (max %d)\n", instrumentName(g.Name, g.Label), g.Value, g.Max)
	}
	fmt.Fprintf(w, "-- histograms --\n")
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "%-36s n=%d mean=%.2f min=%.2f max=%.2f p50=%.2f p95=%.2f p99=%.2f\n",
			instrumentName(h.Name, h.Label), h.Count, h.Mean, h.Min, h.Max, h.P50, h.P95, h.P99)
	}
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func instrumentName(name, label string) string {
	if label == "" {
		return name
	}
	return name + "{" + label + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
