package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink receives finished spans. Implementations must be safe for
// concurrent Emit calls (finished requests complete on arbitrary
// goroutines). Emit after Close is a no-op.
type Sink interface {
	Emit(*Span)
	Close() error
}

// CollectSink buffers spans in memory — the sink tests and the
// telemetry-driven experiments read from.
type CollectSink struct {
	mu     sync.Mutex
	spans  []*Span
	closed bool
}

// NewCollectSink builds an empty collecting sink.
func NewCollectSink() *CollectSink { return &CollectSink{} }

// Emit appends the span.
func (c *CollectSink) Emit(s *Span) {
	c.mu.Lock()
	if !c.closed {
		c.spans = append(c.spans, s)
	}
	c.mu.Unlock()
}

// Close stops collection.
func (c *CollectSink) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// Spans returns the collected spans in completion order.
func (c *CollectSink) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Last returns the most recently completed span, or nil.
func (c *CollectSink) Last() *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) == 0 {
		return nil
	}
	return c.spans[len(c.spans)-1]
}

// Reset drops collected spans.
func (c *CollectSink) Reset() {
	c.mu.Lock()
	c.spans = c.spans[:0]
	c.mu.Unlock()
}

// TextSink writes one human-readable line per span (plus one indented
// line per stage) as spans finish.
type TextSink struct {
	mu     sync.Mutex
	w      io.Writer
	closed bool
}

// NewTextSink builds a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit formats the span.
func (t *TextSink) Emit(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	fmt.Fprintf(t.w, "span %d %s pid=%d win=%d eng=%d cc=%s in=%d out=%d cycles=%d retries=%d host=%v\n",
		s.ID, s.Op, s.PID, s.Window, s.Engine, s.CC, s.InBytes, s.OutBytes,
		s.DeviceCycles, s.Retries, s.End.Sub(s.Start))
	for _, r := range s.Stages {
		fmt.Fprintf(t.w, "  %-10s host=%-12v cycles=%d\n", r.Stage, r.End.Sub(r.Start), r.Cycles)
	}
}

// Close marks the sink closed.
func (t *TextSink) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return nil
}

// spanJSON is the export shape of a span (JSONSink).
type spanJSON struct {
	ID           uint64      `json:"id"`
	Req          uint64      `json:"req,omitempty"`
	Hop          int         `json:"hop,omitempty"`
	Tenant       uint64      `json:"tenant,omitempty"`
	Priority     string      `json:"priority,omitempty"`
	Op           string      `json:"op"`
	PID          int         `json:"pid"`
	Window       int         `json:"window"`
	Engine       int         `json:"engine"`
	StartUnixNs  int64       `json:"start_unix_ns"`
	HostNs       int64       `json:"host_ns"`
	InBytes      int         `json:"in_bytes"`
	OutBytes     int         `json:"out_bytes"`
	CC           string      `json:"cc"`
	Retries      int         `json:"retries"`
	PasteRejects int         `json:"paste_rejects"`
	ERATHits     int64       `json:"erat_hits"`
	ERATMisses   int64       `json:"erat_misses"`
	DeviceCycles int64       `json:"device_cycles"`
	Stages       []stageJSON `json:"stages"`
}

type stageJSON struct {
	Stage   string `json:"stage"`
	OffNs   int64  `json:"off_ns"` // start offset from span start
	DurNs   int64  `json:"dur_ns"`
	Cycles  int64  `json:"cycles"`
	Attempt int    `json:"attempt"`
}

func spanToJSON(s *Span) spanJSON {
	j := spanJSON{
		ID: s.ID, Req: s.ReqID, Hop: s.Hop,
		Tenant: s.Tenant, Priority: s.Priority,
		Op: s.Op, PID: s.PID, Window: s.Window, Engine: s.Engine,
		StartUnixNs: s.Start.UnixNano(), HostNs: s.End.Sub(s.Start).Nanoseconds(),
		InBytes: s.InBytes, OutBytes: s.OutBytes, CC: s.CC,
		Retries: s.Retries, PasteRejects: s.PasteRejects,
		ERATHits: s.ERATHits, ERATMisses: s.ERATMisses, DeviceCycles: s.DeviceCycles,
	}
	for _, r := range s.Stages {
		j.Stages = append(j.Stages, stageJSON{
			Stage: r.Stage.String(), OffNs: r.Start.Sub(s.Start).Nanoseconds(),
			DurNs: r.End.Sub(r.Start).Nanoseconds(), Cycles: r.Cycles, Attempt: r.Attempt,
		})
	}
	return j
}

// MarshalJSON exports the span in the JSONSink line shape, so external
// serializers (the flight recorder's postmortem bundles) emit spans
// identically to the trace sinks.
func (s *Span) MarshalJSON() ([]byte, error) { return json.Marshal(spanToJSON(s)) }

// JSONSink writes one JSON object per line per span (JSON Lines).
type JSONSink struct {
	mu     sync.Mutex
	enc    *json.Encoder
	closed bool
}

// NewJSONSink builds a JSON-lines sink over w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Emit encodes the span as one JSON line.
func (j *JSONSink) Emit(s *Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	_ = j.enc.Encode(spanToJSON(s))
}

// Close marks the sink closed.
func (j *JSONSink) Close() error {
	j.mu.Lock()
	j.closed = true
	j.mu.Unlock()
	return nil
}

// chromeEvent is one Chrome trace_event entry ("X" complete events plus
// "M" metadata). https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeSink accumulates spans and, on Close, writes a Chrome
// trace_event JSON document ({"traceEvents": [...]}) that loads in
// chrome://tracing and Perfetto. Every request becomes one track (tid =
// span ID, named after the request) under the process (pid = address
// space), with an enclosing request slice and one nested slice per
// lifecycle stage; modelled cycle counts ride the args.
type ChromeSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
	epoch  time.Time
	closed bool
}

// NewChromeSink builds a Chrome-trace sink over w.
func NewChromeSink(w io.Writer) *ChromeSink { return &ChromeSink{w: w} }

func (c *ChromeSink) ts(t time.Time) float64 {
	return float64(t.Sub(c.epoch)) / float64(time.Microsecond)
}

// Emit converts the span into trace events.
func (c *ChromeSink) Emit(s *Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.epoch.IsZero() || s.Start.Before(c.epoch) {
		if c.epoch.IsZero() {
			c.epoch = s.Start
		} else {
			// Shift existing events so timestamps stay non-negative.
			delta := c.ts(s.Start)
			for i := range c.events {
				c.events[i].Ts -= delta
			}
			c.epoch = s.Start
		}
	}
	c.events = append(c.events,
		chromeEvent{
			Name: "thread_name", Ph: "M", PID: s.PID, TID: s.ID,
			Args: map[string]any{"name": fmt.Sprintf("req %d %s w%d", s.ID, s.Op, s.Window)},
		},
		chromeEvent{
			Name: s.Op, Ph: "X", Cat: "request",
			Ts: c.ts(s.Start), Dur: c.ts(s.End) - c.ts(s.Start),
			PID: s.PID, TID: s.ID,
			Args: map[string]any{
				"cc": s.CC, "in_bytes": s.InBytes, "out_bytes": s.OutBytes,
				"device_cycles": s.DeviceCycles, "retries": s.Retries,
				"paste_rejects": s.PasteRejects,
				"erat_hits":     s.ERATHits, "erat_misses": s.ERATMisses,
				"engine": s.Engine, "window": s.Window,
				"req": s.ReqID, "hop": s.Hop,
			},
		})
	for _, r := range s.Stages {
		c.events = append(c.events, chromeEvent{
			Name: r.Stage.String(), Ph: "X", Cat: "stage",
			Ts: c.ts(r.Start), Dur: c.ts(r.End) - c.ts(r.Start),
			PID: s.PID, TID: s.ID,
			Args: map[string]any{"cycles": r.Cycles, "attempt": r.Attempt},
		})
	}
}

// Close writes the accumulated trace document.
func (c *ChromeSink) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayTimeUnit: "ns"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(c.w)
	return enc.Encode(doc)
}
