package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Parallel increments across labeled families must sum exactly — no lost
// updates, and With must return a stable instrument per label even when
// goroutines race to create it.
func TestCounterVecParallelSumsExactly(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("test.requests")
	const (
		goroutines = 16
		perG       = 5000
		labels     = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				vec.With(fmt.Sprintf("lane-%d", (g+i)%labels)).Inc()
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got, want := snap.CounterSum("test.requests"), int64(goroutines*perG); got != want {
		t.Fatalf("counter sum %d, want %d", got, want)
	}
	// Every label saw exactly its share.
	for l := 0; l < labels; l++ {
		want := int64(goroutines * perG / labels)
		if got := snap.Counter("test.requests", fmt.Sprintf("lane-%d", l)); got != want {
			t.Fatalf("label lane-%d = %d, want %d", l, got, want)
		}
	}
}

// Snapshots taken while updates are in flight must be tear-free: every
// read value is one the instrument actually held (monotone for
// counters), and the snapshot never crashes or races.
func TestSnapshotDuringUpdateIsTearFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i % 100))
				h.Observe(float64(i % 1000))
			}
		}()
	}
	var prev int64 = -1
	for i := 0; i < 200; i++ {
		snap := reg.Snapshot()
		v := snap.Counter("c", "")
		if v < prev {
			t.Fatalf("counter went backwards: %d after %d", v, prev)
		}
		prev = v
		for _, gs := range snap.Gauges {
			if gs.Value < 0 || gs.Value > gs.Max {
				t.Fatalf("gauge value %d outside [0, max=%d]", gs.Value, gs.Max)
			}
		}
		for _, hs := range snap.Histograms {
			if hs.Count > 0 && (hs.Min < 0 || hs.Max > 999 || hs.Mean < hs.Min || hs.Mean > hs.Max) {
				t.Fatalf("torn histogram snapshot: %+v", hs)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(17)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 17 {
		t.Fatalf("gauge value=%d max=%d, want 3/17", g.Value(), g.Max())
	}
	g.Add(20)
	if g.Value() != 23 || g.Max() != 23 {
		t.Fatalf("gauge after Add: value=%d max=%d, want 23/23", g.Value(), g.Max())
	}
}

// The histogram reservoir is bounded: observing far more samples than
// the window must not grow memory, while count/mean stay exact.
func TestHistogramBounded(t *testing.T) {
	h := newHistogram()
	const n = 3 * histogramWindow
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if len(h.ring) != histogramWindow || cap(h.ring) != histogramWindow {
		t.Fatalf("ring len=%d cap=%d, want %d", len(h.ring), cap(h.ring), histogramWindow)
	}
	s := h.snapshot("h", "")
	if s.Count != n {
		t.Fatalf("count %d, want %d", s.Count, n)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Fatalf("min/max %v/%v, want 0/%d", s.Min, s.Max, n-1)
	}
	// Percentiles cover the most recent window only.
	if s.P50 < float64(n-histogramWindow) {
		t.Fatalf("p50 %v reaches outside the bounded window", s.P50)
	}
}

func mkSpan(id uint64) *Span {
	base := time.Now()
	s := &Span{ID: id, Op: "compress-dht", PID: 1, Window: 2, Start: base,
		InBytes: 100, OutBytes: 50, CC: "success", DeviceCycles: 1234}
	s.RecordStage(StageSubmit, base, base.Add(time.Microsecond), 0)
	s.RecordStage(StageFIFO, base.Add(time.Microsecond), base.Add(2*time.Microsecond), 0)
	s.RecordPipeline(base.Add(2*time.Microsecond), base.Add(10*time.Microsecond), []PipelineStage{
		{StageSetup, 2500}, {StageTranslate, 300}, {StageDHTGen, 4000},
		{StageDMAIn, 100}, {StageLZ, 800}, {StageEncode, 400},
		{StageDMAOut, 60}, {StageComplete, 1000},
	})
	s.End = base.Add(10 * time.Microsecond)
	return s
}

func TestSpanMonotonicAndCycleSums(t *testing.T) {
	s := mkSpan(1)
	if !s.Monotonic() {
		t.Fatal("synthesized span should be monotonic")
	}
	if got := s.CyclesFor(StageDHTGen); got != 4000 {
		t.Fatalf("dht-gen cycles %d, want 4000", got)
	}
	if got := s.CyclesFor(StageFIFO); got != 0 {
		t.Fatalf("fifo cycles %d, want 0", got)
	}
	// Pipeline host intervals must tile [start, end] exactly.
	last := s.Stages[len(s.Stages)-1]
	if !last.End.Equal(s.End) {
		t.Fatalf("last stage ends %v, span ends %v", last.End, s.End)
	}
	// Nil spans are safe everywhere.
	var nilSpan *Span
	nilSpan.RecordStage(StageSubmit, time.Now(), time.Now(), 0)
	nilSpan.RecordPipeline(time.Now(), time.Now(), nil)
	if !nilSpan.Monotonic() || nilSpan.CyclesFor(StageLZ) != 0 {
		t.Fatal("nil span methods misbehave")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("op", 1, 0)
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	tr.Finish(s)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChromeSinkEmitsValidTraceEventJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := NewTracer(sink)
	for i := 0; i < 3; i++ {
		s := mkSpan(uint64(i + 1))
		tr.Finish(s)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var xEvents, mEvents int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", e)
			}
		case "M":
			mEvents++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// 3 spans x (1 request slice + 10 stage slices) and one metadata
	// event per span.
	if xEvents != 3*11 || mEvents != 3 {
		t.Fatalf("got %d X events and %d M events, want %d/%d", xEvents, mEvents, 33, 3)
	}
	// Emit after Close must be dropped, not crash or corrupt output.
	sink.Emit(mkSpan(99))
}

func TestJSONAndTextSinks(t *testing.T) {
	var jbuf, tbuf bytes.Buffer
	js := NewJSONSink(&jbuf)
	ts := NewTextSink(&tbuf)
	s := mkSpan(7)
	js.Emit(s)
	ts.Emit(s)
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal(jbuf.Bytes(), &line); err != nil {
		t.Fatalf("json sink line does not parse: %v", err)
	}
	if line["op"] != "compress-dht" {
		t.Fatalf("json line op = %v", line["op"])
	}
	if tbuf.Len() == 0 {
		t.Fatal("text sink wrote nothing")
	}
	// Closed sinks drop emits.
	js.Emit(s)
	ts.Emit(s)
}

func TestSnapshotFormatAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(3)
	reg.GaugeVec("b.depth").With("0").Set(5)
	reg.Histogram("c.wait").Observe(1.5)
	snap := reg.Snapshot()
	var text bytes.Buffer
	snap.Format(&text)
	if text.Len() == 0 {
		t.Fatal("empty text format")
	}
	var jb bytes.Buffer
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(jb.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if round.Counter("a.count", "") != 3 {
		t.Fatalf("roundtripped counter = %d", round.Counter("a.count", ""))
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := &Snapshot{
		Counters: []CounterSnapshot{
			{Name: "nx.requests", Value: 3},
			{Name: "nx.engine.requests", Label: "0/comp", Value: 2},
		},
		Gauges: []GaugeSnapshot{{Name: "vas.fifo_occupancy", Value: 1, Max: 4}},
		Histograms: []HistogramSnapshot{
			{Name: "lat", Count: 2, Mean: 10, Min: 5, Max: 15, P50: 10, P95: 14, P99: 15},
		},
	}
	b := &Snapshot{
		Counters: []CounterSnapshot{
			{Name: "nx.requests", Value: 5},
			{Name: "nx.engine.requests", Label: "0/comp", Value: 7},
		},
		Gauges: []GaugeSnapshot{{Name: "vas.fifo_occupancy", Value: 2, Max: 3}},
		Histograms: []HistogramSnapshot{
			{Name: "lat", Count: 6, Mean: 30, Min: 20, Max: 40, P50: 30, P95: 38, P99: 40},
		},
	}
	m := MergeSnapshots([]LabeledSnapshot{{Label: "cp0", Snap: a}, {Label: "cp1", Snap: b}})

	// Aggregate rows keep the original name+label and sum across sources.
	if got := m.Counter("nx.requests", ""); got != 8 {
		t.Fatalf("aggregate nx.requests = %d, want 8", got)
	}
	if got := m.Counter("nx.engine.requests", "0/comp"); got != 9 {
		t.Fatalf("aggregate engine row = %d, want 9", got)
	}
	// Per-source rows carry the source-prefixed label.
	if got := m.Counter("nx.requests", "cp0"); got != 3 {
		t.Fatalf("cp0 row = %d, want 3", got)
	}
	if got := m.Counter("nx.engine.requests", "cp1/0/comp"); got != 7 {
		t.Fatalf("cp1 engine row = %d, want 7", got)
	}
	// Gauges: aggregate value and max are sums across sources.
	for _, g := range m.Gauges {
		if g.Name == "vas.fifo_occupancy" && g.Label == "" {
			if g.Value != 3 || g.Max != 7 {
				t.Fatalf("aggregate gauge = %+v", g)
			}
		}
	}
	// Histograms: exact count/min/max, count-weighted mean.
	for _, h := range m.Histograms {
		if h.Name == "lat" && h.Label == "" {
			if h.Count != 8 || h.Min != 5 || h.Max != 40 {
				t.Fatalf("aggregate hist = %+v", h)
			}
			if want := (10.0*2 + 30.0*6) / 8; h.Mean != want {
				t.Fatalf("weighted mean = %v, want %v", h.Mean, want)
			}
		}
	}
	// 2 sources x 2 counters + 2 aggregates = 6 counter rows, sorted.
	if len(m.Counters) != 6 {
		t.Fatalf("counter rows = %d, want 6", len(m.Counters))
	}
	for i := 1; i < len(m.Counters); i++ {
		p, c := m.Counters[i-1], m.Counters[i]
		if p.Name > c.Name || (p.Name == c.Name && p.Label > c.Label) {
			t.Fatal("merged counters not sorted")
		}
	}
}

func TestSnapshotAppend(t *testing.T) {
	s := &Snapshot{Counters: []CounterSnapshot{{Name: "a", Value: 1}}}
	s.Append(nil) // nil-safe
	s.Append(&Snapshot{Counters: []CounterSnapshot{{Name: "b", Value: 2}}})
	if len(s.Counters) != 2 || s.Counter("b", "") != 2 {
		t.Fatalf("append result = %+v", s.Counters)
	}
}
