// Package experiments implements the reproduction's experiment harness:
// one function per paper table/figure (E1–E17, per DESIGN.md) plus the
// design-choice ablations. Each returns a Table that cmd/nxbench renders
// and bench_test.go exercises.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: an id, headline, column headers, and
// formatted rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Cell helpers keep row formatting consistent across experiments.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func gbs(v float64) string { return fmt.Sprintf("%.2f GB/s", v/1e9) }
func mbs(v float64) string { return fmt.Sprintf("%.0f MB/s", v/1e6) }
func us(sec float64) string {
	return fmt.Sprintf("%.1f us", sec*1e6)
}
