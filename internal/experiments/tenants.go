package experiments

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"nxzip"
	"nxzip/internal/admission"
	"nxzip/internal/corpus"
	"nxzip/internal/obs"
	"nxzip/internal/stats"
)

// E25 measures what the tenant accounting plane buys during noisy-
// neighbour interference. One abusive tenant (background class) floods
// the node far past its fair share while well-behaved interactive
// tenants keep a steady modest load. The property under test: the
// multi-window burn-rate evaluator pages on the ABUSER'S label —
// tenant-scoped, actionable — while the global /healthz verdict is
// still healthy, because the node-wide lifetime ratios move much more
// slowly than a windowed per-label burn. The experiment also measures
// the accounting plane's overhead with a closed-loop A/B (labeled
// bumps on vs DisableTenantAccounting).

// TenantPoint is one (phase, tenant) cell — the JSON shape
// `nxbench -tenants` emits inside TenantResult.
type TenantPoint struct {
	Phase string `json:"phase"` // "baseline" | "interference"
	// Tenant is the accounting-plane series label ("t3").
	Tenant string `json:"tenant"`
	Role   string `json:"role"` // "well-behaved" | "abusive"
	// OfferedRPS is the tenant's arrival rate: the pacing target for
	// open-loop loads, the achieved rate for the closed-loop flood.
	OfferedRPS float64 `json:"offered_rps"`
	Arrivals   int     `json:"arrivals"`
	Completed  int     `json:"completed"`
	// Shed counts typed ErrOverloaded rejections; Errors anything else
	// (must stay zero).
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	ShedRatio float64 `json:"shed_ratio"`
	P99Ms     float64 `json:"p99_ms"`
	// Burn marks the tenant a firing burn alert named as top offender.
	Burn bool `json:"burn"`
}

// TenantSummary is the experiment's headline verdicts.
type TenantSummary struct {
	// CapacityRPS is the closed-loop calibrated node capacity.
	CapacityRPS float64 `json:"capacity_rps"`
	// BurnFired reports whether any burn-rate alert fired during the
	// interference phase.
	BurnFired bool `json:"burn_fired"`
	// Offender is the tenant label the first firing alert carried.
	Offender string `json:"offender"`
	// OffenderIsAbuser verifies the attribution: the named label is the
	// abusive tenant's.
	OffenderIsAbuser bool `json:"offender_is_abuser"`
	// BurnAtMs is when the first alert fired, ms after interference
	// start.
	BurnAtMs float64 `json:"burn_at_ms"`
	// HealthzAtBurn reports whether GET /healthz still answered 200 at
	// the moment the alert fired — the tenant-scoped page beat the
	// global verdict.
	HealthzAtBurn bool `json:"healthz_at_burn"`
	// OverheadPct is the closed-loop cost of the accounting plane:
	// (accounting on − off) / off, percent. Negative values are timing
	// noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// TenantResult is the `nxbench -tenants -json` document.
type TenantResult struct {
	Summary TenantSummary `json:"summary"`
	Points  []TenantPoint `json:"points"`
}

const (
	// tenantPayload matches E24's small-request regime.
	tenantPayload = 4 << 10
	// tenantWells is how many well-behaved tenants share the node.
	tenantWells = 3
	// tenantBaselineDur is the baseline phase length. It is deliberately
	// long: the global shed-ratio SLO is a lifetime ratio, so baseline
	// history is the ballast that keeps /healthz green while the
	// windowed burn evaluator pages — exactly the production dynamic
	// under test.
	tenantBaselineDur = 8 * time.Second
	// tenantInterfereDur bounds the interference phase.
	tenantInterfereDur = 3500 * time.Millisecond
	// tenantCalWorkers/tenantCalReqs shape the capacity calibration.
	tenantCalWorkers = 16
	tenantCalReqs    = 1024
	// tenantWellFrac / tenantAbuseBaseline are per-tenant offered load as
	// a fraction of capacity: wells stay at 0.1x each through both
	// phases; the abuser offers 0.2x at baseline.
	tenantWellFrac      = 0.10
	tenantAbuseBaseline = 0.20
	// During the storm the abuser switches to a closed-loop flood from
	// tenantAbuseWorkers goroutines — a real noisy neighbour saturates
	// its connection pool rather than pacing arrivals. A paced open-loop
	// storm past capacity is also unusable here: each arrival past
	// capacity parks a goroutine, the run queue grows by thousands per
	// second, and the starved sampler stops producing the very windows
	// the burn evaluator reads. On a shed the worker backs off
	// tenantAbuseBackoff — a fraction of the gate's retry-after hint
	// (abusive, not suicidal) — which also bounds the shed rate so the
	// windowed burn SLI trips well before the node's lifetime shed
	// ratio erodes the baseline ballast.
	tenantAbuseWorkers = 64
	tenantAbuseBackoff = 10 * time.Millisecond
)

// tenantBurnConfig compresses the SRE-workbook windows to experiment
// scale: the fast pair fires within ~1s of sustained excess, long
// before the lifetime ratios move. The shed budget is tighter than the
// global MaxShedRatio rule (0.10 vs 0.25) — the backoff-throttled flood
// settles near a 0.25 aggregate shed fraction, which a 0.25-budget burn
// reads as exactly 1x (healthy); a paging policy wants its budget below
// the rule it fronts so sustained abuse burns visibly. The queue-wait
// budget is loosened: storm queue waits crowd just under QueueBudgetUS,
// and the experiment wants the shed SLO, not wait jitter, to page.
func tenantBurnConfig() obs.BurnConfig {
	return obs.BurnConfig{
		FastShort: 300 * time.Millisecond, FastLong: time.Second, FastRate: 1.5,
		SlowShort: 600 * time.Millisecond, SlowLong: 2 * time.Second, SlowRate: 1.2,
		ShedBudget:           0.10,
		QueueViolationBudget: 0.20,
		MinRequests:          50,
	}
}

// E25TenantInterference renders the experiment as a table.
func E25TenantInterference() *Table {
	t, _ := TenantInterference()
	return t
}

// tenantLoad is one tenant's load source for one phase: open-loop
// paced at rps, or (workers > 0) a closed-loop flood.
type tenantLoad struct {
	view    *nxzip.Accelerator
	role    string
	rps     float64
	workers int
}

// tenantTally accumulates one tenant's outcomes for one phase.
type tenantTally struct {
	mu                             sync.Mutex
	arrivals, completed, shed, err int
	lat                            stats.Samples
}

// runPhase offers each load for dur and returns per-load tallies
// (indexed like loads). It returns once every arrival has completed or
// been refused.
func runPhase(loads []tenantLoad, payloads [][]byte, dur time.Duration) []*tenantTally {
	tallies := make([]*tenantTally, len(loads))
	record := func(tl *tenantTally, err error, lat time.Duration) {
		tl.mu.Lock()
		tl.arrivals++
		switch {
		case err == nil:
			tl.completed++
			tl.lat.Add(float64(lat) / float64(time.Millisecond))
		case errors.Is(err, admission.ErrOverloaded):
			tl.shed++
		default:
			tl.err++
		}
		tl.mu.Unlock()
	}
	var wg sync.WaitGroup
	for li := range loads {
		tallies[li] = &tenantTally{}
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			ld, tl := loads[li], tallies[li]
			deadline := time.Now().Add(dur)
			var inner sync.WaitGroup
			if ld.workers > 0 {
				// Closed-loop flood: workers hammer back-to-back, pausing
				// only the token backoff after a refusal.
				for w := 0; w < ld.workers; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						var m nxzip.Metrics
						for i := w; time.Now().Before(deadline); i += ld.workers {
							t0 := time.Now()
							_, err := ld.view.CompressGzipInto(nil, payloads[i%len(payloads)], &m)
							record(tl, err, time.Since(t0))
							if errors.Is(err, admission.ErrOverloaded) {
								time.Sleep(tenantAbuseBackoff)
							}
						}
					}(w)
				}
				inner.Wait()
				return
			}
			// Open-loop pacing: arrivals at rps regardless of completions.
			interval := time.Duration(float64(time.Second) / ld.rps)
			next := time.Now()
			for i := 0; time.Now().Before(deadline); i++ {
				if wait := time.Until(next); wait > 100*time.Microsecond {
					time.Sleep(wait)
				}
				next = next.Add(interval)
				inner.Add(1)
				go func(i int) {
					defer inner.Done()
					var m nxzip.Metrics
					t0 := time.Now()
					_, err := ld.view.CompressGzipInto(nil, payloads[i%len(payloads)], &m)
					record(tl, err, time.Since(t0))
				}(i)
			}
			inner.Wait()
		}(li)
	}
	wg.Wait()
	return tallies
}

// TenantInterference runs the experiment on a one-unit POWER9 node and
// returns both the table and the raw result for -json export.
func TenantInterference() (*Table, *TenantResult) {
	t := &Table{
		ID:    "E25",
		Title: "tenant interference: burn-rate paging on the offender's label before the global SLO flips (1 NX unit, FHT)",
		Header: []string{"phase", "tenant", "role", "offered req/s", "arrivals",
			"completed", "shed", "shed%", "p99 ms", "burn"},
	}
	cfg := nxzip.P9Node(1)
	cfg.TableMode = nxzip.TableFixed
	node, err := nxzip.OpenNode(cfg)
	if err != nil {
		panic(err)
	}
	node.EnableAdmission(admission.Config{
		QueueLimit:  8192,
		QueueTarget: 50 * time.Millisecond,
		MaxWait:     time.Second,
	})
	srv, err := node.ServeObsConfig("127.0.0.1:0", nxzip.ObsConfig{
		SampleInterval: 100 * time.Millisecond,
		Burn:           tenantBurnConfig(),
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Views: wells are interactive weight-1 tenants; the abuser is a
	// background-class tenant, so the brownout ladder sheds its excess
	// first — the accounting plane must pin the resulting burn on it.
	wells := make([]*nxzip.Accelerator, tenantWells)
	for i := range wells {
		wells[i] = node.View()
		wells[i].SetPriority(admission.Interactive)
		wells[i].SetQuotaWeight(1)
		defer wells[i].Close()
	}
	abuser := node.View()
	abuser.SetPriority(admission.Background)
	abuser.SetQuotaWeight(1)
	defer abuser.Close()
	abuserLabel := nxzip.TenantLabel(abuser.TenantID())

	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = corpus.Generate(corpus.JSONLogs, tenantPayload, Seed+int64(i))
	}

	// Closed-loop calibration on a well-behaved view (gate included).
	var wg sync.WaitGroup
	per := tenantCalReqs / tenantCalWorkers
	calStart := time.Now()
	for w := 0; w < tenantCalWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var m nxzip.Metrics
			for k := 0; k < per; k++ {
				p := payloads[(w*per+k)%len(payloads)]
				if _, err := wells[0].CompressGzipInto(nil, p, &m); err != nil {
					panic(fmt.Sprintf("E25 calibration: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	capacity := float64(tenantCalWorkers*per) / time.Since(calStart).Seconds()

	loads := make([]tenantLoad, 0, tenantWells+1)
	for _, v := range wells {
		loads = append(loads, tenantLoad{view: v, role: "well-behaved", rps: tenantWellFrac * capacity})
	}
	loads = append(loads, tenantLoad{view: abuser, role: "abusive", rps: tenantAbuseBaseline * capacity})
	abuserIdx := len(loads) - 1

	var result TenantResult
	result.Summary.CapacityRPS = capacity
	addPoints := func(phase string, loads []tenantLoad, tallies []*tenantTally, dur time.Duration) {
		for li, tl := range tallies {
			label := nxzip.TenantLabel(loads[li].view.TenantID())
			ratio := 0.0
			if tot := tl.completed + tl.shed; tot > 0 {
				ratio = float64(tl.shed) / float64(tot)
			}
			offered := loads[li].rps
			if loads[li].workers > 0 {
				// Closed-loop: the offered rate is whatever the flood
				// achieved.
				offered = float64(tl.arrivals) / dur.Seconds()
			}
			result.Points = append(result.Points, TenantPoint{
				Phase: phase, Tenant: label, Role: loads[li].role,
				OfferedRPS: offered, Arrivals: tl.arrivals,
				Completed: tl.completed, Shed: tl.shed, Errors: tl.err,
				ShedRatio: ratio, P99Ms: tl.lat.Percentile(99),
				Burn: phase == "interference" && result.Summary.BurnFired && label == result.Summary.Offender,
			})
		}
	}

	// Phase 1 — baseline: everyone inside fair share. This also banks
	// the admitted-count history the lifetime SLO averages over.
	baseTallies := runPhase(loads, payloads, tenantBaselineDur)
	addPoints("baseline", loads, baseTallies, tenantBaselineDur)

	// Phase 2 — interference: the abuser switches to a closed-loop
	// flood. A bus watcher catches the first firing EventBurnRate and
	// immediately probes /healthz, capturing the ordering the experiment
	// asserts.
	sub := node.Bus().Subscribe(64)
	stormStart := time.Now()
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for e := range sub.C() {
			// Only a tenant-attributed page counts: the property under
			// test is offender-labeled alerting, not just alerting.
			if e.Type != obs.EventBurnRate || !strings.Contains(e.Detail, "firing") || e.Tenant == 0 {
				continue
			}
			resp, err := http.Get(base + "/healthz")
			healthy := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				resp.Body.Close()
			}
			result.Summary.BurnFired = true
			result.Summary.BurnAtMs = float64(time.Since(stormStart)) / float64(time.Millisecond)
			if e.Tenant != 0 {
				result.Summary.Offender = nxzip.TenantLabel(e.Tenant)
			}
			result.Summary.HealthzAtBurn = healthy
			return
		}
	}()
	storm := append([]tenantLoad(nil), loads...)
	storm[abuserIdx].rps = 0
	storm[abuserIdx].workers = tenantAbuseWorkers
	stormTallies := runPhase(storm, payloads, tenantInterfereDur)
	sub.Close()
	<-watcherDone
	result.Summary.OffenderIsAbuser = result.Summary.Offender == abuserLabel
	addPoints("interference", storm, stormTallies, tenantInterfereDur)

	srv.Close()

	// Overhead A/B: identical closed-loop work with the accounting plane
	// on vs off, best-of-3 each, interleaved to share thermal context.
	result.Summary.OverheadPct = tenantAccountingOverhead(payloads)

	for _, p := range result.Points {
		burn := "-"
		if p.Burn {
			burn = "PAGE"
		}
		t.AddRow(p.Phase, p.Tenant, p.Role,
			fmt.Sprintf("%.0f", p.OfferedRPS),
			fmt.Sprintf("%d", p.Arrivals),
			fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%.1f", 100*p.ShedRatio),
			fmt.Sprintf("%.2f", p.P99Ms),
			burn)
	}
	s := result.Summary
	abuserOffered := float64(stormTallies[abuserIdx].arrivals) / tenantInterfereDur.Seconds()
	t.Note("calibrated capacity %.0f req/s; storm: abuser floods closed-loop from %d workers (%.0f arrivals/s, %.1fx capacity)",
		s.CapacityRPS, tenantAbuseWorkers, abuserOffered, abuserOffered/s.CapacityRPS)
	if s.BurnFired {
		verdict := "UNHEALTHY"
		if s.HealthzAtBurn {
			verdict = "still healthy"
		}
		t.Note("burn-rate alert fired %.0f ms into the storm naming %s (abuser: %v); global /healthz was %s at that moment",
			s.BurnAtMs, s.Offender, s.OffenderIsAbuser, verdict)
	} else {
		t.Note("no burn-rate alert fired during the storm — investigate")
	}
	t.Note("tenant accounting plane overhead (median of 5 paired on/off reps): %+.2f%% — sign varies run to run; the effect sits below this box's ±4%% timing noise floor", s.OverheadPct)
	return t, &result
}

// tenantAccountingOverhead measures the closed-loop cost of the labeled
// bump path: the same work on two fresh nodes, accounting on vs
// DisableTenantAccounting. Each rep runs the pair back-to-back and
// takes the on/off ratio — pairing cancels slow machine drift (thermal,
// cache pressure from neighbours) that dwarfs the effect itself — and
// the reported figure is the median rep, with an untimed warmup round
// per node (handle resolution, table population, allocator steady
// state) so the timed window sees only the per-request path.
func tenantAccountingOverhead(payloads [][]byte) float64 {
	const workers, perW, warmup = 8, 768, 32
	run := func(disable bool) time.Duration {
		cfg := nxzip.P9Node(1)
		cfg.TableMode = nxzip.TableFixed
		cfg.DisableTenantAccounting = disable
		node, err := nxzip.OpenNode(cfg)
		if err != nil {
			panic(err)
		}

		v := node.View()
		defer v.Close()
		round := func(per int) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var m nxzip.Metrics
					for k := 0; k < per; k++ {
						if _, err := v.CompressGzipInto(nil, payloads[(w*per+k)%len(payloads)], &m); err != nil {
							panic(fmt.Sprintf("E25 overhead: %v", err))
						}
					}
				}(w)
			}
			wg.Wait()
		}
		round(warmup)
		start := time.Now()
		round(perW)
		return time.Since(start)
	}
	ratios := make([]float64, 0, 5)
	for rep := 0; rep < cap(ratios); rep++ {
		on := run(false)
		off := run(true)
		ratios = append(ratios, float64(on)/float64(off))
	}
	sort.Float64s(ratios)
	return 100 * (ratios[len(ratios)/2] - 1)
}
