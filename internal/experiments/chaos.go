package experiments

import (
	"fmt"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/faultinject"
	"nxzip/internal/nx"
	"nxzip/internal/stats"
)

// ChaosRates is the default fault-rate sweep of E19: every injectable
// class fired uniformly at the given per-decision probability.
var ChaosRates = []float64{0, 0.001, 0.01, 0.05, 0.10, 0.25}

// ChaosPoint is one measured fault rate of the E19 sweep — the JSON
// shape `nxbench -json` emits alongside the topology points.
type ChaosPoint struct {
	Profile      string  `json:"profile,omitempty"` // set for named-profile runs
	Rate         float64 `json:"rate"`
	GBs          float64 `json:"gbs"`    // end-to-end wall-clock rate, recovery included
	P99Ms        float64 `json:"p99_ms"` // 99th-percentile per-request wall latency
	Relative     float64 `json:"relative"`
	Redispatches int64   `json:"redispatches"`
	Fallbacks    int64   `json:"fallbacks"`
	Quarantines  int64   `json:"quarantines"`
	Injected     int64   `json:"injected"`
}

// chaosRequests x chaosChunkSize is the work each sweep point pushes
// through the node; 256 KiB keeps a point fast while still large enough
// that per-request recovery overhead, not fixed cost, dominates.
const (
	chaosRequests  = 48
	chaosChunkSize = 256 << 10
)

// measureChaos drives one fault rate through the full recovery stack: a
// z15 drawer (4 zEDC units) with a deterministic injector installed on
// every device, requests routed by the dispatcher with health-scoreboard
// failover and software fallback live. Rates are wall-clock because
// that is what recovery costs — backoff sleeps, wasted attempts and
// software-path compute all land on the caller.
func measureChaos(rate float64, p faultinject.Profile) (ChaosPoint, error) {
	// A z15 drawer (4 zEDC units), each with a trimmed recovery budget:
	// the default policy is sized for production patience (up to 2048
	// millisecond-scale backoff waits), which under sustained injection
	// turns one sweep point into minutes of sleeping. Capping the budget
	// makes a wedged device give up in microseconds and hand the request
	// to failover — the behavior under test — without changing semantics.
	devs := make([]nx.DeviceConfig, 4)
	for i := range devs {
		devs[i] = nx.Z15Device()
		devs[i].Submit = nx.SubmitPolicy{
			MaxFaultRounds:   8,
			MaxPasteAttempts: 1 << 20,
			MaxBackoffWaits:  16,
			BackoffBase:      time.Microsecond,
			BackoffMax:       8 * time.Microsecond,
		}
	}
	node, err := nxzip.OpenNode(nxzip.CustomNode("z15-chaos", devs...))
	if err != nil {
		return ChaosPoint{}, err
	}
	injs := node.InstallInjectors(Seed, p)
	acc := node.View()
	defer acc.Close()

	src := corpus.Generate(corpus.Text, chaosRequests*chaosChunkSize, Seed)
	lat := &stats.Samples{}
	start := time.Now()
	for i := 0; i < chaosRequests; i++ {
		chunk := src[i*chaosChunkSize : (i+1)*chaosChunkSize]
		t0 := time.Now()
		if _, _, err := acc.CompressGzip(chunk); err != nil {
			return ChaosPoint{}, fmt.Errorf("E19 rate %g request %d: %w", rate, i, err)
		}
		lat.Add(float64(time.Since(t0).Microseconds()) / 1e3)
	}
	wall := time.Since(start)

	var injected int64
	for _, inj := range injs {
		injected += inj.TotalInjected()
	}
	snap := node.Metrics()
	return ChaosPoint{
		Rate:         rate,
		GBs:          float64(chaosRequests*chaosChunkSize) / wall.Seconds() / 1e9,
		P99Ms:        lat.Percentile(99),
		Redispatches: snap.Counter("nxzip.redispatches", ""),
		Fallbacks:    snap.Counter("nxzip.fallbacks", ""),
		Quarantines:  snap.Counter("topology.quarantines", ""),
		Injected:     injected,
	}, nil
}

// ChaosSweep runs the default fault-rate sweep.
func ChaosSweep() (*Table, []ChaosPoint) {
	return ChaosSweepCustom(ChaosRates)
}

// ChaosSweepCustom sweeps explicit fault rates, returning both the
// rendered table and the raw points (for -json export). The claim under
// test is graceful degradation: throughput falls and tail latency grows
// roughly in proportion to the injected rate, every request still
// completes correctly, and at no rate does the node collapse — the
// worst case is the software-fallback floor, not an error.
func ChaosSweepCustom(rates []float64) (*Table, []ChaosPoint) {
	t := &Table{
		ID:     "E19",
		Title:  "throughput and p99 latency vs injected fault rate (graceful degradation)",
		Header: []string{"fault-rate", "rate", "relative", "p99-latency", "redispatch", "fallback", "quarantine", "injected"},
	}
	var (
		points []ChaosPoint
		base   float64
	)
	for _, r := range rates {
		p, err := measureChaos(r, faultinject.Uniform(r))
		if err != nil {
			panic(err) // deterministic workload; any error is a harness bug
		}
		if base == 0 {
			base = p.GBs
		}
		p.Relative = p.GBs / base
		points = append(points, p)
		chaosRow(t, fmt.Sprintf("%g", p.Rate), p)
	}
	chaosNotes(t)
	return t, points
}

// chaosRow appends one measured point under the shared E19 header.
func chaosRow(t *Table, label string, p ChaosPoint) {
	t.AddRow(label, gbs(p.GBs*1e9), f2(p.Relative),
		fmt.Sprintf("%.2f ms", p.P99Ms), fmt.Sprintf("%d", p.Redispatches),
		fmt.Sprintf("%d", p.Fallbacks), fmt.Sprintf("%d", p.Quarantines),
		fmt.Sprintf("%d", p.Injected))
}

func chaosNotes(t *Table) {
	t.Note("z15 drawer (4 zEDC units), %d x %d KiB requests per point; seed %d",
		chaosRequests, chaosChunkSize>>10, Seed)
	t.Note("rates are wall-clock: backoff sleeps, wasted attempts and software-fallback compute charge the caller")
	t.Note("every request completes byte-correct at every rate; degradation is throughput/latency, never availability")
}

// ChaosProfile measures one named injection profile (the `-chaos mild`
// CLI path) against the clean baseline, so the row's relative column is
// meaningful on its own.
func ChaosProfile(name string, p faultinject.Profile) (*Table, []ChaosPoint) {
	t := &Table{
		ID:     "E19",
		Title:  fmt.Sprintf("chaos profile %q vs clean baseline", name),
		Header: []string{"profile", "rate", "relative", "p99-latency", "redispatch", "fallback", "quarantine", "injected"},
	}
	clean, err := measureChaos(0, faultinject.Profile{})
	if err != nil {
		panic(err)
	}
	clean.Profile = "off"
	clean.Relative = 1
	pt, err := measureChaos(0, p)
	if err != nil {
		panic(err)
	}
	pt.Profile = name
	if clean.GBs > 0 {
		pt.Relative = pt.GBs / clean.GBs
	}
	chaosRow(t, "off", clean)
	chaosRow(t, name, pt)
	chaosNotes(t)
	return t, []ChaosPoint{clean, pt}
}

// E19ChaosDegradation is the table-only entry point All uses.
func E19ChaosDegradation() *Table {
	t, _ := ChaosSweep()
	return t
}
