package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"nxzip/internal/topology"
)

// cell parses a numeric cell that may carry a unit suffix.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	s := tab.Rows[row][col]
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	fields := strings.Fields(s)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q: %v", tab.ID, row, col, s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab := E1CompressionRatio()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		name := row[0]
		fht := cell(t, tab, i, 1)
		dht := cell(t, tab, i, 2)
		z6 := cell(t, tab, i, 5)
		switch name {
		case "random":
			if dht > 1.02 || dht < 0.95 {
				t.Fatalf("random dht ratio %v", dht)
			}
		case "zeros":
			if dht < 100 {
				t.Fatalf("zeros dht ratio %v", dht)
			}
		default:
			// DHT beats FHT, and hardware is within 2x of zlib-6 on every
			// non-degenerate class (the paper's "competitive ratio" claim).
			if dht < fht {
				t.Fatalf("%s: dht %v < fht %v", name, dht, fht)
			}
			if name != "dna" && dht < 0.75*z6 {
				t.Fatalf("%s: dht %v too far below zlib-6 %v", name, dht, z6)
			}
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2ThroughputVsSize()
	n := len(tab.Rows)
	// Throughput must rise monotonically with size (latency → line rate)
	// and the largest size must approach the P9 8 GB/s line rate.
	for col := 1; col <= 4; col++ {
		prev := 0.0
		for row := 0; row < n; row++ {
			v := cell(t, tab, row, col)
			if v < prev*0.98 {
				t.Fatalf("col %d: %v after %v — not rising", col, v, prev)
			}
			prev = v
		}
	}
	if last := cell(t, tab, n-1, 1); last < 6.0 || last > 8.0 {
		t.Fatalf("P9 large-buffer rate %v outside [6, 8] GB/s", last)
	}
}

func TestE3Claim388x(t *testing.T) {
	tab := E3SpeedupSingleCore()
	best := cell(t, tab, 2, 3) // level 9 speedup
	if best < 330 || best > 450 {
		t.Fatalf("level-9 speedup %v outside the 388x regime", best)
	}
}

func TestE4Claim13x(t *testing.T) {
	tab := E4SpeedupWholeChip()
	sp := cell(t, tab, 1, 3)
	if sp < 10 || sp > 16 {
		t.Fatalf("whole-chip speedup %v outside the 13x regime", sp)
	}
}

func TestE5ClaimDoubling(t *testing.T) {
	tab := E5Z15Doubling()
	last := cell(t, tab, len(tab.Rows)-1, 3)
	if last < 1.7 || last > 2.3 {
		t.Fatalf("z15/p9 at large size %v, want ~2", last)
	}
}

func TestE6Claim280(t *testing.T) {
	tab := E6SystemScaling()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "20" {
		t.Fatalf("last row chips = %s", last[0])
	}
	agg := cell(t, tab, len(tab.Rows)-1, 1)
	if agg < 240 || agg > 300 {
		t.Fatalf("20-chip aggregate %v GB/s, want ~280", agg)
	}
	// Near-linear scaling.
	if sc := cell(t, tab, len(tab.Rows)-1, 2); sc < 18 {
		t.Fatalf("scaling %vx at 20 chips", sc)
	}
}

func TestE7Claim23Percent(t *testing.T) {
	tab := E7SparkTPCDS()
	sp := cell(t, tab, 1, 4)
	if sp < 15 || sp > 32 {
		t.Fatalf("Spark speedup %v%% outside the 23%% regime", sp)
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8LatencyBreakdown()
	// Total latency rises with size; small-request total is dominated by
	// fixed overheads (setup+dht+complete ≈ 7.5us).
	first := cell(t, tab, 0, 6)
	last := cell(t, tab, len(tab.Rows)-1, 6)
	if first > 15 {
		t.Fatalf("4KB total %v us too high", first)
	}
	if last < 20*first {
		t.Fatalf("8MB total %v not much above 4KB %v", last, first)
	}
}

func TestE9Shape(t *testing.T) {
	tab := E9MultiTenant()
	// Aggregate throughput saturates; P99 grows with tenants; FIFO stays
	// fair (within 2x worst/best tenant).
	p99First := cell(t, tab, 0, 3)
	p99Last := cell(t, tab, len(tab.Rows)-1, 3)
	if p99Last < 4*p99First {
		t.Fatalf("P99 %v -> %v: no queueing growth", p99First, p99Last)
	}
	for i := range tab.Rows {
		if fair := cell(t, tab, i, 4); fair > 2.0 {
			t.Fatalf("row %d fairness %v", i, fair)
		}
	}
}

func TestE10Claims(t *testing.T) {
	tab := E10AreaPower()
	// P9 accel chip fraction < 0.5%.
	if frac := cell(t, tab, 0, 2); frac >= 0.5 {
		t.Fatalf("P9 area fraction %v%%", frac)
	}
	// Accelerator GB/s/W must dwarf software.
	accel := cell(t, tab, 0, 3)
	sw := cell(t, tab, 1, 3)
	if accel < 100*sw {
		t.Fatalf("efficiency accel %v vs sw %v", accel, sw)
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11DHTStrategies()
	for i, row := range tab.Rows {
		fht := cell(t, tab, i, 1)
		dht := cell(t, tab, i, 2)
		canned := cell(t, tab, i, 3)
		if dht < fht {
			t.Fatalf("%s: dht %v < fht %v", row[0], dht, fht)
		}
		// Canned tables trained on similar data should be close to the
		// per-request table, slightly below or occasionally above.
		if canned < 0.8*dht {
			t.Fatalf("%s: canned %v far below dht %v", row[0], canned, dht)
		}
		// FHT requests must be cheaper per KB than DHT requests.
		if cell(t, tab, i, 4) >= cell(t, tab, i, 5) {
			t.Fatalf("%s: fht cycles not below dht", row[0])
		}
	}
}

func TestE12Shape(t *testing.T) {
	tab := E12PageFaults()
	// Retries grow with non-resident fraction and effective rate falls.
	prevRate := 1e18
	for i := range tab.Rows {
		rate := cell(t, tab, i, 3)
		if rate > prevRate {
			t.Fatalf("rate increased with fault fraction")
		}
		prevRate = rate
	}
	if r := cell(t, tab, 0, 1); r != 0 {
		t.Fatalf("resident run had %v retries", r)
	}
	if r := cell(t, tab, len(tab.Rows)-1, 1); r < 4 {
		t.Fatalf("fully non-resident run had only %v retries", r)
	}
	// The paper's point: even 100% faulting costs only a modest factor.
	if rel := cell(t, tab, len(tab.Rows)-1, 4); rel < 0.4 {
		t.Fatalf("fault overhead slowdown to %vx: too severe", rel)
	}
}

func TestAblationShapes(t *testing.T) {
	a1 := A1Banks()
	// More banks -> fewer conflicts (monotone non-increasing).
	prev := int64(1 << 62)
	for i := range a1.Rows {
		c, _ := strconv.ParseInt(a1.Rows[i][3], 10, 64)
		if c > prev {
			t.Fatalf("A1: conflicts rose with banks")
		}
		prev = c
	}
	a2 := A2Ways()
	if cell(t, a2, 0, 1) > cell(t, a2, len(a2.Rows)-1, 1) {
		t.Fatalf("A2: ratio fell with more ways")
	}
	a3 := A3Lazy()
	if cell(t, a3, 1, 1) < cell(t, a3, 0, 1) {
		t.Fatalf("A3: lazy did not improve ratio (%v vs %v)",
			cell(t, a3, 1, 1), cell(t, a3, 0, 1))
	}
	a4 := A4Window()
	if cell(t, a4, 0, 1) > cell(t, a4, len(a4.Rows)-1, 1) {
		t.Fatalf("A4: ratio fell with larger window")
	}
	a5 := A5Width()
	if rel := cell(t, a5, len(a5.Rows)-1, 3); rel < 4 {
		t.Fatalf("A5: 32B width only %vx of 4B", rel)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "title", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 42)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T — title", "a", "bb", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tab := E13StreamComposition()
	for i := range tab.Rows {
		member := cell(t, tab, i, 1)
		history := cell(t, tab, i, 2)
		oneShot := cell(t, tab, i, 3)
		if history <= member {
			t.Fatalf("row %d: history ratio %v not above member %v", i, history, member)
		}
		if history < 0.9*oneShot {
			t.Fatalf("row %d: history %v too far below one-shot %v", i, history, oneShot)
		}
	}
	// Replay overhead must shrink as chunks grow.
	first := cell(t, tab, 0, 4)
	last := cell(t, tab, len(tab.Rows)-1, 4)
	if last >= first {
		t.Fatalf("replay overhead did not amortize: %v -> %v", first, last)
	}
}

func TestE14Shape(t *testing.T) {
	tab := E14MemoryExpansion()
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	randRow, ok := byName["random"]
	if !ok {
		t.Fatal("no random row")
	}
	if randRow[1] != "1.00x" {
		t.Fatalf("random expansion %s", randRow[1])
	}
	zf, _ := strconv.ParseFloat(strings.TrimSuffix(byName["zeros"][1], "x"), 64)
	tf, _ := strconv.ParseFloat(strings.TrimSuffix(byName["text"][1], "x"), 64)
	if zf <= tf || tf <= 1.1 {
		t.Fatalf("ordering broken: zeros %v, text %v", zf, tf)
	}
}

func TestE15Shape(t *testing.T) {
	tab := E15SubmissionInterfaces()
	// Sync benefit must shrink with request size.
	prev := 1e18
	for i := range tab.Rows {
		b := cell(t, tab, i, 3)
		if b >= prev {
			t.Fatalf("sync benefit not shrinking: row %d = %v", i, b)
		}
		prev = b
	}
	// CPU-free fraction must grow with request size.
	if cell(t, tab, 0, 4) >= cell(t, tab, len(tab.Rows)-1, 4) {
		t.Fatal("async cpu-free fraction not growing")
	}
}

func TestA6Shape(t *testing.T) {
	tab := A6SpecDecode()
	for i, row := range tab.Rows {
		sync := cell(t, tab, i, 1)
		if sync < 90 {
			t.Fatalf("%s: sync rate %v%%", row[0], sync)
		}
		l2 := cell(t, tab, i, 3)
		l8 := cell(t, tab, i, 5)
		if l2 < 1.5 || l8 < 6 || l8 > 8 {
			t.Fatalf("%s: lane speedups %v / %v implausible", row[0], l2, l8)
		}
	}
}

func TestA7Shape(t *testing.T) {
	tab := A7SampleSize()
	// Ratio must be non-decreasing with sample size on both columns.
	for col := 1; col <= 2; col++ {
		prev := 0.0
		for i := range tab.Rows {
			v := cell(t, tab, i, col)
			if v < prev-0.01 {
				t.Fatalf("col %d: ratio fell with larger sample (%v -> %v)", col, prev, v)
			}
			prev = v
		}
	}
	// Tiny samples must hurt visibly on text.
	if cell(t, tab, 0, 1) >= 0.95*cell(t, tab, len(tab.Rows)-1, 1) {
		t.Fatal("4 KiB sample should cost ratio vs full pass")
	}
}

func TestA8Shape(t *testing.T) {
	tab := A8ERATSize()
	// Translate cycles non-increasing; large ERAT hit rate near 100%.
	prev := int64(1 << 62)
	for i := range tab.Rows {
		v, _ := strconv.ParseInt(tab.Rows[i][1], 10, 64)
		if v > prev {
			t.Fatalf("translate cycles rose with bigger ERAT")
		}
		prev = v
	}
	if hr := cell(t, tab, len(tab.Rows)-1, 2); hr < 90 {
		t.Fatalf("large-ERAT hit rate %v%%", hr)
	}
	if hr := cell(t, tab, 0, 2); hr > 50 {
		t.Fatalf("tiny-ERAT hit rate %v%% too high for a thrash test", hr)
	}
}

func TestE16Shape(t *testing.T) {
	tab := E16QoS()
	fifoUrgent := cell(t, tab, 0, 2)
	priUrgent := cell(t, tab, 1, 2)
	if priUrgent >= fifoUrgent/2 {
		t.Fatalf("priority urgent p99 %v not well below FIFO %v", priUrgent, fifoUrgent)
	}
	// Bulk pays little and throughput stays close.
	fifoTp := cell(t, tab, 0, 4)
	priTp := cell(t, tab, 1, 4)
	if priTp < 0.9*fifoTp {
		t.Fatalf("priority throughput %v collapsed vs %v", priTp, fifoTp)
	}
}

func TestE17Shape(t *testing.T) {
	tab := E17SmallRequests()
	// FHT beats DHT at the smallest size; DHT wins at the largest.
	if cell(t, tab, 0, 2) <= cell(t, tab, 0, 1) {
		t.Fatal("FHT should beat DHT at 512 B (header overhead)")
	}
	last := len(tab.Rows) - 1
	if cell(t, tab, last, 1) <= cell(t, tab, last, 2) {
		t.Fatal("DHT should beat FHT at 1 MiB")
	}
	// Header share decays monotonically.
	prev := 101.0
	for i := range tab.Rows {
		v := cell(t, tab, i, 4)
		if v >= prev {
			t.Fatalf("header share not decaying: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestE18Shape(t *testing.T) {
	// A trimmed sweep keeps the test cheap; nxbench runs the full one.
	tab, points := TopologyScalingCustom([]int{1, 4}, topology.RoundRobin())
	if len(points) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("points = %d, rows = %d", len(points), len(tab.Rows))
	}
	one, four := points[0], points[1]
	if four.Drawers != 1 {
		t.Fatalf("4 devices = %d drawers", four.Drawers)
	}
	// z15 per-unit regime: roughly double the P9 ~8 GB/s line rate.
	if one.GBs < 10 || one.GBs > 18 {
		t.Fatalf("single z15 unit %v GB/s outside the doubled-P9 regime", one.GBs)
	}
	// Near-linear scaling through the dispatch layer (acceptance: >= 0.8).
	if four.Efficiency < 0.8 {
		t.Fatalf("4-device efficiency %v below 0.8", four.Efficiency)
	}
	if four.Scaling < 3.2 || four.Scaling > 4.05 {
		t.Fatalf("4-device scaling %vx implausible", four.Scaling)
	}
}

func TestA10Shape(t *testing.T) {
	tab := A10ExpansionBound()
	for i, row := range tab.Rows {
		exp := cell(t, tab, i, 3)
		if exp < -0.5 {
			t.Fatalf("%s: negative expansion %v%% on random data", row[0], exp)
		}
		switch row[0] {
		case "842":
			if exp > 8.0 {
				t.Fatalf("842 expansion %v%% beyond template bound", exp)
			}
		case "sw auto (stored fallback)":
			if exp > 0.1 {
				t.Fatalf("stored fallback expansion %v%%", exp)
			}
		case "nx fht":
			if exp > 10 {
				t.Fatalf("fht expansion %v%%", exp)
			}
		}
	}
}

func TestA11Shape(t *testing.T) {
	tab := A11ParseOptimality()
	for i, row := range tab.Rows {
		hw := cell(t, tab, i, 1)
		sw := cell(t, tab, i, 2)
		opt := cell(t, tab, i, 3)
		if !(hw <= sw*1.01 && sw <= opt*1.01) {
			t.Fatalf("%s: ordering broken hw=%v sw=%v opt=%v", row[0], hw, sw, opt)
		}
		if hw < 0.7*opt {
			t.Fatalf("%s: hw %v implausibly far from optimal %v", row[0], hw, opt)
		}
	}
}
