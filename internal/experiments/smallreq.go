package experiments

import (
	"fmt"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/stats"
)

// E21 measures what the batched submission path buys. The device model
// charges every queued request a fixed protocol cost — paste-to-dispatch
// setup plus completion writeback, ~3 us on both chips — which dominates
// once payloads shrink to a few KiB (the paper's latency-vs-size curves
// show exactly this wall). CompressBatch pays it once per device per
// batch: chained entries cost only a descriptor advance and a CSB store.
// The experiment sweeps payload size and reports modeled request rates
// for the unbatched per-request path and the batched path, plus the
// measured software baseline, locating the batching win and the
// software crossover.

// SmallReqPoint is one measured payload size of the small-request sweep
// — the JSON shape `nxbench -smallreq` emits. Accelerator rates come
// from the device timeline (the same modeled clock as E8/E15); the
// software rate is measured on this host, the same mixed convention as
// the E3/E4 speedup tables.
type SmallReqPoint struct {
	Size         int     `json:"size"`
	Requests     int     `json:"requests"`
	UnbatchedRPS float64 `json:"unbatched_rps"`
	BatchedRPS   float64 `json:"batched_rps"`
	SoftwareRPS  float64 `json:"software_rps"`
	Speedup      float64 `json:"speedup"` // batched over unbatched
}

// smallreqCount is the number of requests timed per payload size.
const smallreqCount = 256

// E21SmallRequestBatching renders the sweep as a table.
func E21SmallRequestBatching() *Table {
	t, _ := SmallRequestBatching()
	return t
}

// SmallRequestBatching runs the sweep on a one-drawer z15 node (four
// zEDC units) and returns both the table and the raw points for -json
// export. The node runs fixed Huffman tables — E17's conclusion for
// small requests, where the dynamic-table header and generation latency
// never pay for themselves.
func SmallRequestBatching() (*Table, []SmallReqPoint) {
	t := &Table{
		ID:     "E21",
		Title:  "batched small requests: one paste per device per batch (4 zEDC units, FHT)",
		Header: []string{"size", "unbatched req/s", "batched req/s", "software req/s", "batch speedup"},
	}
	cfg := nxzip.Z15Node(1)
	cfg.TableMode = nxzip.TableFixed
	node, err := nxzip.OpenNode(cfg)
	if err != nil {
		panic(err)
	}
	acc := node.View()
	defer acc.Close()
	devices := node.Devices()

	var points []SmallReqPoint
	for _, size := range []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		payloads := make([][]byte, smallreqCount)
		for i := range payloads {
			payloads[i] = corpus.Generate(corpus.JSONLogs, size, Seed+int64(i))
		}

		// Unbatched: a synchronous caller submits one request at a time
		// and eats the full queued-protocol latency per request, so the
		// modeled timeline is the sum of per-request device times.
		var m nxzip.Metrics
		var unbatchedTime time.Duration
		for _, p := range payloads {
			if _, err := acc.CompressGzipInto(nil, p, &m); err != nil {
				panic(fmt.Sprintf("E21 unbatched %d: %v", size, err))
			}
			unbatchedTime += m.DeviceTime
		}
		unbatched := float64(smallreqCount) / unbatchedTime.Seconds()

		// Batched: each device's group runs as one chained envelope and
		// the groups run in parallel across the node, so the makespan is
		// the busiest device's share of the timeline.
		reqs := make([]*nxzip.BatchRequest, smallreqCount)
		for i, p := range payloads {
			reqs[i] = &nxzip.BatchRequest{Src: p}
		}
		acc.CompressBatch(reqs)
		perDevice := make([]time.Duration, devices)
		for i, r := range reqs {
			if r.Err != nil {
				panic(fmt.Sprintf("E21 batched %d req %d: %v", size, i, r.Err))
			}
			if r.Metrics.Degraded || r.Device < 0 {
				panic(fmt.Sprintf("E21 batched %d req %d degraded on a healthy node", size, i))
			}
			perDevice[r.Device] += r.Metrics.DeviceTime
		}
		var makespan time.Duration
		for _, d := range perDevice {
			if d > makespan {
				makespan = d
			}
		}
		batched := float64(smallreqCount) / makespan.Seconds()

		start := time.Now()
		for _, p := range payloads {
			if _, err := nxzip.SoftwareGzip(p, 6); err != nil {
				panic(err)
			}
		}
		software := float64(smallreqCount) / time.Since(start).Seconds()

		speedup := 0.0
		if unbatched > 0 {
			speedup = batched / unbatched
		}
		points = append(points, SmallReqPoint{
			Size: size, Requests: smallreqCount,
			UnbatchedRPS: unbatched, BatchedRPS: batched, SoftwareRPS: software,
			Speedup: speedup,
		})
		t.AddRow(stats.Bytes(int64(size)),
			fmt.Sprintf("%.0f", unbatched),
			fmt.Sprintf("%.0f", batched),
			fmt.Sprintf("%.0f", software),
			fmt.Sprintf("%.2fx", speedup))
	}
	t.Note("unbatched pays paste-to-dispatch setup + completion per request; batched pays it once per device envelope")
	t.Note("accelerator req/s from the modeled device timeline (batch = busiest device); software req/s measured on this host")
	return t, points
}
