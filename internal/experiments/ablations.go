package experiments

import (
	"fmt"

	"nxzip/internal/corpus"
	"nxzip/internal/deflate"
	"nxzip/internal/huffman"
	"nxzip/internal/lz77"
	"nxzip/internal/nx"
	"nxzip/internal/specdec"
	"nxzip/internal/stats"
)

// ablationInput is the shared workload for design-choice sweeps.
func ablationInput() []byte {
	return corpus.Generate(corpus.Text, 1<<20, Seed)
}

// hwRatioAndCycles compresses src through the hardware matcher + DHT
// block writer with the given LZ parameters, returning (ratio,
// cycles/KB).
func hwRatioAndCycles(p lz77.HWParams, src []byte) (float64, float64) {
	m := lz77.NewHWMatcher(p)
	tokens, st := m.Tokenize(nil, src)
	out, err := deflate.EncodeTokens(tokens, src, deflate.ModeDynamic, nil)
	if err != nil {
		panic(err)
	}
	return ratioOf(len(src), len(out)), float64(st.Cycles) / (float64(len(src)) / 1024)
}

// A1Banks sweeps hash-table bank count: fewer banks mean more same-beat
// conflicts and replay cycles, at identical ratio.
func A1Banks() *Table {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: hash-table banks (conflict replays vs area)",
		Header: []string{"banks", "ratio", "cycles/KB", "conflicts"},
	}
	src := ablationInput()
	for _, banks := range []int{2, 4, 8, 16, 32} {
		p := lz77.P9HWParams()
		p.Banks = banks
		m := lz77.NewHWMatcher(p)
		tokens, st := m.Tokenize(nil, src)
		out, err := deflate.EncodeTokens(tokens, src, deflate.ModeDynamic, nil)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprintf("%d", banks), f2(ratioOf(len(src), len(out))),
			f1(float64(st.Cycles)/(float64(len(src))/1024)),
			fmt.Sprintf("%d", st.BankConflicts))
	}
	return t
}

// A2Ways sweeps set associativity: more candidate comparisons per probe
// buy ratio with parallel comparators, not cycles.
func A2Ways() *Table {
	t := &Table{
		ID:     "A2",
		Title:  "ablation: candidate set size (ways)",
		Header: []string{"ways", "ratio", "cycles/KB"},
	}
	src := ablationInput()
	for _, ways := range []int{1, 2, 4, 8, 16} {
		p := lz77.P9HWParams()
		p.Ways = ways
		r, c := hwRatioAndCycles(p, src)
		t.AddRow(fmt.Sprintf("%d", ways), f2(r), f1(c))
	}
	return t
}

// A3Lazy compares the z15 one-deep lazy refinement against the P9 greedy
// policy at equal width.
func A3Lazy() *Table {
	t := &Table{
		ID:     "A3",
		Title:  "ablation: greedy vs one-deep lazy matching",
		Header: []string{"policy", "ratio", "cycles/KB"},
	}
	src := ablationInput()
	for _, lazy := range []bool{false, true} {
		p := lz77.P9HWParams()
		p.Lazy = lazy
		r, c := hwRatioAndCycles(p, src)
		name := "greedy (P9)"
		if lazy {
			name = "lazy-1 (z15)"
		}
		t.AddRow(name, f2(r), f1(c))
	}
	return t
}

// A4Window sweeps the history window below DEFLATE's 32 KiB maximum.
func A4Window() *Table {
	t := &Table{
		ID:     "A4",
		Title:  "ablation: history window size",
		Header: []string{"window", "ratio"},
	}
	src := ablationInput()
	for _, win := range []int{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		p := lz77.P9HWParams()
		p.MaxDist = win
		r, _ := hwRatioAndCycles(p, src)
		t.AddRow(fmt.Sprintf("%d KiB", win>>10), f2(r))
	}
	return t
}

// A5Width sweeps the ingest width (the P9->z15 scaling axis).
func A5Width() *Table {
	t := &Table{
		ID:     "A5",
		Title:  "ablation: LZ ingest width (bytes/cycle)",
		Header: []string{"width", "ratio", "cycles/KB", "rel rate"},
	}
	src := ablationInput()
	var base float64
	for _, w := range []int{4, 8, 16, 32} {
		p := lz77.P9HWParams()
		p.InputWidth = w
		r, c := hwRatioAndCycles(p, src)
		if base == 0 {
			base = c
		}
		t.AddRow(fmt.Sprintf("%dB", w), f2(r), f1(c), f2(base/c)+"x")
	}
	t.Note("rate scales with width because beats = ceil(n/width); conflicts dampen it slightly")
	return t
}

// Ablations runs every design-choice sweep.
func Ablations() []*Table {
	return []*Table{A1Banks(), A2Ways(), A3Lazy(), A4Window(), A5Width(), A6SpecDecode(), A7SampleSize(), A8ERATSize(), A9TableConstruction(), A10ExpansionBound(), A11ParseOptimality()}
}

// A6SpecDecode measures Huffman self-synchronization on real blocks and
// derives the lane-count scaling of a speculative parallel decoder — the
// microarchitectural basis for the decompressor's multi-byte-per-cycle
// output rate.
func A6SpecDecode() *Table {
	t := &Table{
		ID:     "A6",
		Title:  "ablation: speculative parallel decode (self-synchronization)",
		Header: []string{"corpus", "sync rate", "mean sync", "2 lanes", "4 lanes", "8 lanes"},
	}
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	for _, k := range []corpus.Kind{corpus.Text, corpus.JSONLogs, corpus.DNA, corpus.Binary} {
		src := corpus.Generate(k, 64<<10, Seed)
		toks, _ := m.Tokenize(nil, src)
		stream, err := deflate.EncodeTokens(toks, src, deflate.ModeDynamic, nil)
		if err != nil {
			panic(err)
		}
		an, err := specdec.Analyze(stream, 0)
		if err != nil {
			panic(err)
		}
		const segment = 4096 // bits per lane segment
		t.AddRow(k.String(),
			fmt.Sprintf("%.1f%%", an.SyncRate*100),
			fmt.Sprintf("%.0f bits", an.MeanSyncBits),
			f2(an.Speedup(2, segment))+"x",
			f2(an.Speedup(4, segment))+"x",
			f2(an.Speedup(8, segment))+"x")
	}
	t.Note("4 KiB-bit segments; a synced lane loses only its resynchronization prefix")
	t.Note("this scaling justifies the pipeline model's multi-byte/cycle decode rates")
	return t
}

// A7SampleSize sweeps the single-pass DHT sample window: the engine
// freezes the table after sampling the first N KiB, so a small sample
// risks mismatching the rest of the request. This is the central
// compression-side approximation of the design.
func A7SampleSize() *Table {
	t := &Table{
		ID:     "A7",
		Title:  "ablation: single-pass DHT sample size",
		Header: []string{"sample", "text ratio", "shifting-data ratio"},
	}
	// "Shifting" data changes symbol statistics mid-request: first half
	// text, second half DNA — the adversarial case for sampling.
	text := corpus.Generate(corpus.Text, 1<<20, Seed)
	shifting := append(append([]byte{}, corpus.Generate(corpus.Text, 512<<10, Seed)...),
		corpus.Generate(corpus.DNA, 512<<10, Seed)...)
	for _, sample := range []int{4 << 10, 16 << 10, 32 << 10, 128 << 10, 1 << 20} {
		cfg := nx.P9Device()
		cfg.Engine.Pipeline.DHTSampleBytes = sample
		ctx := nx.NewDevice(cfg).OpenContext(1)
		row := []string{stats.Bytes(int64(sample))}
		for _, src := range [][]byte{text, shifting} {
			out, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapRaw, true)
			if err != nil {
				panic(err)
			}
			row = append(row, f2(ratioOf(len(src), len(out))))
		}
		t.AddRow(row...)
	}
	t.Note("stationary data needs only a small sample; shifting statistics reward sampling more")
	return t
}

// A8ERATSize sweeps the translation cache under request reuse: repeated
// requests over the same buffers hit a big-enough ERAT (only the first
// pass walks the tables) but thrash a small one. A single streaming pass
// is all compulsory misses, so the cache only pays off across requests —
// the common pattern for a service compressing into reused buffers.
func A8ERATSize() *Table {
	t := &Table{
		ID:     "A8",
		Title:  "ablation: ERAT entries vs translation cycles (32 requests, reused buffers)",
		Header: []string{"erat entries", "total translate", "hit rate"},
	}
	const size = 256 << 10 // 4 source pages + 9 target pages
	src := corpus.Generate(corpus.Text, size, Seed)
	for _, entries := range []int{2, 8, 32, 128} {
		cfg := nx.P9Device()
		cfg.MMU.ERATEntries = entries
		dev := nx.NewDevice(cfg)
		ctx := dev.OpenContext(1)
		srcVA, err := ctx.MapBuffer(size, true)
		if err != nil {
			panic(err)
		}
		dstVA, err := ctx.MapBuffer(2*size+1024, true)
		if err != nil {
			panic(err)
		}
		var total int64
		for i := 0; i < 32; i++ {
			csb, rep, err := ctx.Submit(&nx.CRB{
				Func: nx.FCCompressFHT, Wrap: nx.WrapRaw, Input: src,
				SourceVA: srcVA, TargetVA: dstVA, TargetCap: 2*size + 1024,
			})
			if err != nil || csb.CC != nx.CCSuccess {
				panic(fmt.Sprintf("A8: %v %v", err, csb.CC))
			}
			total += rep.Breakdown.Translate
		}
		st := dev.MMU().Stats()
		hitRate := float64(st.Hits) / float64(st.Hits+st.Misses) * 100
		t.AddRow(fmt.Sprintf("%d", entries),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.0f%%", hitRate))
	}
	t.Note("13 pages in flight: an ERAT below the working set walks every page of every request")
	return t
}

// A9TableConstruction compares the hardware-friendly table constructor
// (unconstrained Huffman + clamp-and-repair, what a cheap DHT generator
// implements) against provably optimal package-merge, on real per-request
// frequencies. The punchline the hardware design relies on: for DEFLATE's
// 15-bit limit and real data, the heuristic's loss is negligible.
func A9TableConstruction() *Table {
	t := &Table{
		ID:     "A9",
		Title:  "ablation: DHT construction — repair heuristic vs package-merge",
		Header: []string{"corpus", "heuristic bits", "optimal bits", "excess"},
	}
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	for _, k := range []corpus.Kind{corpus.Text, corpus.JSONLogs, corpus.DNA, corpus.Binary} {
		src := corpus.Generate(k, 1<<20, Seed)
		toks, _ := m.Tokenize(nil, src)
		lf, df := deflate.CountFrequencies(toks)
		cost := func(build func([]int64, int) ([]uint8, error)) int64 {
			ll, err := build(lf, 15)
			if err != nil {
				panic(err)
			}
			dl, err := build(df, 15)
			if err != nil {
				panic(err)
			}
			var bits int64
			for s, f := range lf {
				bits += f * int64(ll[s])
			}
			for s, f := range df {
				bits += f * int64(dl[s])
			}
			return bits
		}
		heur := cost(huffman.BuildLengths)
		opt := cost(huffman.BuildLengthsOptimal)
		t.AddRow(k.String(), fmt.Sprintf("%d", heur), fmt.Sprintf("%d", opt),
			fmt.Sprintf("%+.4f%%", float64(heur-opt)/float64(opt)*100))
	}
	t.Note("payload bits only (headers excluded); the 15-bit DEFLATE limit rarely binds on real data")
	return t
}

// A10ExpansionBound measures worst-case output expansion on
// incompressible data per block mode. Storage stacks need a hard bound to
// size target buffers; DEFLATE's stored fallback caps expansion at ~5
// bytes per 64 KiB plus framing, and the auto mode always takes it.
func A10ExpansionBound() *Table {
	t := &Table{
		ID:     "A10",
		Title:  "ablation: worst-case expansion on incompressible data",
		Header: []string{"mode", "in", "out", "expansion"},
	}
	src := corpus.Generate(corpus.Random, 1<<20, Seed)
	runs := []struct {
		name string
		comp func() []byte
	}{
		{"nx fht", func() []byte {
			ctx := nx.NewDevice(nx.P9Device()).OpenContext(1)
			out, _, err := ctx.Compress(src, nx.FCCompressFHT, nx.WrapGzip, true)
			if err != nil {
				panic(err)
			}
			return out
		}},
		{"nx dht", func() []byte {
			ctx := nx.NewDevice(nx.P9Device()).OpenContext(1)
			out, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
			if err != nil {
				panic(err)
			}
			return out
		}},
		{"sw auto (stored fallback)", func() []byte {
			out, err := deflate.CompressGzip(src, deflate.Options{Mode: deflate.ModeAuto})
			if err != nil {
				panic(err)
			}
			return out
		}},
		{"842", func() []byte {
			ctx := nx.NewDevice(nx.P9Device()).OpenContext(1)
			csb, _, err := ctx.Submit(&nx.CRB{Func: nx.FC842Compress, Input: src})
			if err != nil || csb.CC != nx.CCSuccess {
				panic(fmt.Sprintf("%v %v", err, csb.CC))
			}
			return csb.Output
		}},
	}
	for _, r := range runs {
		out := r.comp()
		t.AddRow(r.name, stats.Bytes(int64(len(src))), stats.Bytes(int64(len(out))),
			fmt.Sprintf("%+.2f%%", (float64(len(out))/float64(len(src))-1)*100))
	}
	t.Note("842's template floor is 69/64 bits per phrase (~7.8%%); DEFLATE's stored fallback caps near 0%%")
	return t
}

// A11ParseOptimality measures how far the matchers sit from a
// near-optimal parse: the DP reference bounds what any match-selection
// policy could achieve, putting the hardware's few-percent loss in
// context.
func A11ParseOptimality() *Table {
	t := &Table{
		ID:     "A11",
		Title:  "ablation: parse optimality — hw probe vs lazy sw vs DP reference",
		Header: []string{"corpus", "nx-hw ratio", "zlib-9 ratio", "optimal ratio", "hw gap"},
	}
	hw := lz77.NewHWMatcher(lz77.P9HWParams())
	sw := lz77.NewSoftMatcher(lz77.LevelParams(9))
	opt := lz77.NewOptimalMatcher()
	for _, k := range []corpus.Kind{corpus.Text, corpus.JSONLogs, corpus.Source} {
		src := corpus.Generate(k, 256<<10, Seed)
		ratio := func(tokens []lz77.Token) float64 {
			out, err := deflate.EncodeTokens(tokens, src, deflate.ModeDynamic, nil)
			if err != nil {
				panic(err)
			}
			return ratioOf(len(src), len(out))
		}
		ht, _ := hw.Tokenize(nil, src)
		rh := ratio(ht)
		rs := ratio(sw.Tokenize(nil, src))
		ro := ratio(opt.Tokenize(nil, src))
		t.AddRow(k.String(), f2(rh), f2(rs), f2(ro),
			fmt.Sprintf("-%.1f%%", (1-rh/ro)*100))
	}
	t.Note("the DP reference is near-optimal under a fixed cost model (chains capped at 512)")
	return t
}
