package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"nxzip/internal/ame"
	"nxzip/internal/bitio"
	"nxzip/internal/corpus"
	"nxzip/internal/deflate"
	"nxzip/internal/lz77"
	"nxzip/internal/nx"
	"nxzip/internal/power"
	"nxzip/internal/queueing"
	"nxzip/internal/sparkmodel"
	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

// Seed fixes every experiment's data so runs are reproducible.
const Seed = 20200530 // ISCA 2020 session date

// ratioKinds is the corpus mix used by the ratio experiments.
var ratioKinds = []corpus.Kind{
	corpus.Text, corpus.HTML, corpus.JSONLogs, corpus.Source,
	corpus.Columnar, corpus.DNA, corpus.Binary, corpus.Random, corpus.Zeros,
}

// newCtx builds a fresh device context.
func newCtx(cfg nx.DeviceConfig) *nx.Context {
	return nx.NewDevice(cfg).OpenContext(1)
}

// ratioOf returns input/output.
func ratioOf(in, out int) float64 {
	if out == 0 {
		return 0
	}
	return float64(in) / float64(out)
}

// E1CompressionRatio reproduces the paper's compression-ratio table:
// hardware FHT/DHT (P9 and z15) versus software zlib levels 1/6/9 on the
// nine corpus classes.
func E1CompressionRatio() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "compression ratio: accelerator vs zlib levels (claim C7)",
		Header: []string{"corpus", "nx-p9-fht", "nx-p9-dht", "nx-z15-dht", "zlib-1", "zlib-6", "zlib-9"},
	}
	const size = 1 << 20
	p9 := newCtx(nx.P9Device())
	z15 := newCtx(nx.Z15Device())
	var geoRel float64
	var geoN int
	for _, k := range ratioKinds {
		src := corpus.Generate(k, size, Seed)
		row := []string{k.String()}
		for _, run := range []struct {
			ctx *nx.Context
			fc  nx.FuncCode
		}{{p9, nx.FCCompressFHT}, {p9, nx.FCCompressDHT}, {z15, nx.FCCompressDHT}} {
			out, _, err := run.ctx.Compress(src, run.fc, nx.WrapRaw, true)
			if err != nil {
				panic(fmt.Sprintf("E1 %s: %v", k, err))
			}
			row = append(row, f2(ratioOf(len(src), len(out))))
		}
		var z6 float64
		for _, level := range []int{1, 6, 9} {
			out, err := deflate.Compress(src, deflate.Options{Level: level})
			if err != nil {
				panic(err)
			}
			row = append(row, f2(ratioOf(len(src), len(out))))
			if level == 6 {
				z6 = ratioOf(len(src), len(out))
			}
		}
		t.AddRow(row...)
		// Aggregate over the general-purpose classes; random/zeros are
		// degenerate and DNA is a known weak spot of bounded search.
		if k != corpus.Random && k != corpus.Zeros && k != corpus.DNA && z6 > 0 {
			hw, _ := strconv.ParseFloat(row[2], 64)
			geoRel += math.Log(hw / z6)
			geoN++
		}
	}
	t.Note("paper claim: hardware DHT ratio within a few %% of zlib-6; geomean hw/z6 = %.3f over general classes", math.Exp(geoRel/float64(geoN)))
	t.Note("dna is an honest outlier: bounded single-probe search misses long-range genomic repeats")
	return t
}

// sizeSweep is the buffer-size axis shared by E2/E8.
var sizeSweep = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20}

// E2ThroughputVsSize reproduces the throughput-vs-request-size figure:
// small requests are latency-bound, large requests hit the LZ line rate.
func E2ThroughputVsSize() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "single-accelerator throughput vs request size",
		Header: []string{"size", "p9 comp", "p9 decomp", "z15 comp", "z15 decomp"},
	}
	p9 := newCtx(nx.P9Device())
	z15 := newCtx(nx.Z15Device())
	for _, size := range sizeSweep {
		src := corpus.Generate(corpus.Text, size, Seed)
		row := []string{stats.Bytes(int64(size))}
		for _, ctx := range []*nx.Context{p9, z15} {
			comp, rep, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
			if err != nil {
				panic(err)
			}
			row = append(row, gbs(float64(size)/rep.Time.Seconds()))
			_, rep2, err := ctx.Decompress(comp, nx.WrapGzip, size+1024, true)
			if err != nil {
				panic(err)
			}
			row = append(row, gbs(float64(size)/rep2.Time.Seconds()))
		}
		// reorder: p9 comp, p9 decomp, z15 comp, z15 decomp already in order
		t.AddRow(row...)
	}
	t.Note("fixed request overheads (setup+DHT-gen+completion) dominate below ~64 KiB")
	return t
}

// E3SpeedupSingleCore reproduces claim C2: the 388x factor over zlib
// software on one general-purpose core.
func E3SpeedupSingleCore() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "speedup over single-core zlib software (claim C2: 388x)",
		Header: []string{"zlib level", "core sw rate", "p9 accel rate", "speedup"},
	}
	m := power.P9()
	ctx := newCtx(nx.P9Device())
	src := corpus.Generate(corpus.Text, 8<<20, Seed)
	_, rep, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
	if err != nil {
		panic(err)
	}
	accel := float64(len(src)) / rep.Time.Seconds()
	for _, level := range []int{1, 6, 9} {
		sw := m.SWCompRate[level]
		t.AddRow(fmt.Sprintf("%d", level), mbs(sw), gbs(accel), f0(accel/sw)+"x")
	}
	t.Note("core rates are calibration constants (power.P9); accel rate is the cycle model on 8 MiB text")
	t.Note("paper reports 388x against its measured zlib configuration")
	return t
}

// E4SpeedupWholeChip reproduces claim C3: one accelerator vs the entire
// chip of cores running zlib, via the queueing simulator.
func E4SpeedupWholeChip() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "one accelerator vs whole-chip software (claim C3: 13x)",
		Header: []string{"config", "servers", "throughput", "speedup"},
	}
	m := power.P9()
	ctx := newCtx(nx.P9Device())
	src := corpus.Generate(corpus.Text, 1<<20, Seed)
	_, rep, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
	if err != nil {
		panic(err)
	}
	peak := ctx.Device().PipelineConfig().PeakCompressRate()
	overhead := rep.Time.Seconds() - float64(len(src))/peak

	// Whole chip running zlib-9 in parallel (SMT yield applied), saturated.
	level := 9
	coreRate := m.SWCompRate[level] * m.SMTScaling
	swRes := queueing.SimulateClosed(queueing.Config{
		Servers: m.Cores, Duration: 30, Seed: Seed,
		Service: queueing.CoreService(coreRate),
	}, 2*m.Cores, 0, queueing.FixedSize(1<<20))

	accRes := queueing.SimulateClosed(queueing.Config{
		Servers: 1, Duration: 30, Seed: Seed,
		Service: queueing.AcceleratorService(overhead, peak),
	}, 8, 0, queueing.FixedSize(1<<20))

	t.AddRow(fmt.Sprintf("%d-core chip, zlib-%d", m.Cores, level), fmt.Sprintf("%d", m.Cores),
		gbs(swRes.Throughput), "1.0x")
	t.AddRow("1 on-chip accelerator", "1", gbs(accRes.Throughput),
		f1(accRes.Throughput/swRes.Throughput)+"x")
	t.Note("paper claim: 13x over the entire chip of cores")
	return t
}

// E5Z15Doubling reproduces claim C5 across the size sweep.
func E5Z15Doubling() *Table {
	t := &Table{
		ID:     "E5",
		Title:  "z15 doubles the POWER9 compression rate (claim C5)",
		Header: []string{"size", "p9", "z15", "z15/p9"},
	}
	p9 := newCtx(nx.P9Device())
	z15 := newCtx(nx.Z15Device())
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		src := corpus.Generate(corpus.Text, size, Seed)
		_, repP, err := p9.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
		if err != nil {
			panic(err)
		}
		_, repZ, err := z15.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
		if err != nil {
			panic(err)
		}
		rp := float64(size) / repP.Time.Seconds()
		rz := float64(size) / repZ.Time.Seconds()
		t.AddRow(stats.Bytes(int64(size)), gbs(rp), gbs(rz), f2(rz/rp)+"x")
	}
	return t
}

// E6SystemScaling reproduces claim C6: aggregate rate of the maximal z15
// topology approaching 280 GB/s.
func E6SystemScaling() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "aggregate compression rate vs accelerator count (claim C6: 280 GB/s)",
		Header: []string{"chips", "throughput", "scaling"},
	}
	m := power.Z15()
	var base float64
	for _, n := range []int{1, 2, 4, 8, 12, 16, 20} {
		res := queueing.SimulateClosed(queueing.Config{
			Servers: n, Duration: 5, Seed: Seed,
			Service: queueing.AcceleratorService(5e-6, m.AccelCompRate),
		}, 8*n, 0, queueing.FixedSize(1<<20))
		if n == 1 {
			base = res.Throughput
		}
		t.AddRow(fmt.Sprintf("%d", n), gbs(res.Throughput), f2(res.Throughput/base)+"x")
	}
	t.Note("20 CP chips = 5 CPC drawers x 4 chips, the maximal z15 topology")
	return t
}

// E7SparkTPCDS reproduces claim C4: the 23%% end-to-end Spark speedup.
func E7SparkTPCDS() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Apache Spark TPC-DS end-to-end (claim C4: 23% speedup)",
		Header: []string{"codec", "elapsed", "codec core-s", "io s", "speedup"},
	}
	queries := sparkmodel.GenerateTPCDS(3<<40, 99, 42)
	c := sparkmodel.DefaultCluster()
	base := sparkmodel.Run(queries, c, sparkmodel.SoftwareZlib())
	acc := sparkmodel.Run(queries, c, sparkmodel.NXGzip())
	t.AddRow(base.Codec, f0(base.ElapsedSec)+" s", f0(base.CodecCPU), f0(base.IOSec), "-")
	t.AddRow(acc.Codec, f0(acc.ElapsedSec)+" s", f0(acc.CodecCPU), f0(acc.IOSec),
		f1(sparkmodel.Speedup(base, acc)*100)+"%")
	return t
}

// E8LatencyBreakdown reproduces the request-latency decomposition
// figure. The per-stage cycle counts are read from each request's
// telemetry trace span — the same records a -trace run exports — so this
// table and a trace of the same run can never disagree.
func E8LatencyBreakdown() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "P9 compression request latency breakdown (translate overlaps the pipeline)",
		Header: []string{"size", "setup", "translate", "dht-gen", "pipeline", "complete", "total"},
	}
	dev := nx.NewDevice(nx.P9Device())
	sink := telemetry.NewCollectSink()
	dev.StartTrace(sink)
	ctx := dev.OpenContext(1)
	cfg := dev.PipelineConfig()
	for _, size := range sizeSweep {
		src := corpus.Generate(corpus.Text, size, Seed)
		if _, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true); err != nil {
			panic(err)
		}
		span := sink.Last()
		if span == nil {
			panic("E8: request completed without a trace span")
		}
		setup := span.CyclesFor(telemetry.StageSetup)
		dht := span.CyclesFor(telemetry.StageDHTGen)
		complete := span.CyclesFor(telemetry.StageComplete)
		total := span.DeviceCycles
		// Everything between DHT generation and completion overlaps in the
		// engine: the model charges max(stages), reported as "pipeline".
		pipe := total - setup - dht - complete
		toUS := func(c int64) string { return us(cfg.Time(c).Seconds()) }
		t.AddRow(stats.Bytes(int64(size)), toUS(setup), toUS(span.CyclesFor(telemetry.StageTranslate)),
			toUS(dht), toUS(pipe), toUS(complete), toUS(total))
	}
	_ = dev.StopTrace()
	return t
}

// E9MultiTenant reproduces the sharing/fairness figure: latency under an
// increasing number of tenants through one shared FIFO.
func E9MultiTenant() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "multi-tenant sharing of one accelerator (claim C8)",
		Header: []string{"tenants", "agg throughput", "p50 latency", "p99 latency", "fairness"},
	}
	for _, tenants := range []int{1, 4, 16, 64} {
		sizes := func(rng *rand.Rand) int { return 4<<10 + rng.Intn(1<<20) }
		res := queueing.SimulateClosed(queueing.Config{
			Servers: 1, Duration: 10, Seed: Seed,
			Service: queueing.AcceleratorService(5e-6, 7.5e9),
		}, tenants, 50e-6, sizes)
		worst, best := 0.0, 1e18
		for _, s := range res.PerSource {
			if s.N() == 0 {
				continue
			}
			m := s.Mean()
			if m > worst {
				worst = m
			}
			if m < best {
				best = m
			}
		}
		fair := "1.00"
		if best > 0 {
			fair = f2(worst / best)
		}
		t.AddRow(fmt.Sprintf("%d", tenants), gbs(res.Throughput),
			us(res.Latency.Percentile(50)), us(res.Latency.Percentile(99)), fair)
	}
	t.Note("fairness = worst/best per-tenant mean latency through the shared FIFO")
	return t
}

// E10AreaPower reproduces the area/power-efficiency table (claim C1).
func E10AreaPower() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "area and power efficiency (claim C1: <0.5% chip area)",
		Header: []string{"config", "area", "chip %", "GB/s per W", "GB/s per mm2", "nJ per byte"},
	}
	for _, m := range []power.ChipModel{power.P9(), power.Z15()} {
		aw, am := m.AccelEfficiency()
		ej, _ := m.EnergyPerByte(6)
		t.AddRow(m.Name+" accel", f1(m.AccelAreaMM2)+" mm2",
			fmt.Sprintf("%.2f%%", m.AreaFraction()*100), f2(aw), f2(am), f2(ej*1e9))
		sw, sm := m.SoftwareEfficiency(6)
		_, cj := m.EnergyPerByte(6)
		t.AddRow(fmt.Sprintf("%s %d cores zlib-6", m.Name, m.Cores),
			f0(m.CoreAreaMM2*float64(m.Cores))+" mm2", "-",
			fmt.Sprintf("%.4f", sw), fmt.Sprintf("%.4f", sm), f2(cj*1e9))
	}
	return t
}

// E11DHTStrategies reproduces the Huffman-table trade-off table: fixed vs
// sampled-dynamic vs canned tables.
func E11DHTStrategies() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "Huffman table strategy: ratio vs request cycles",
		Header: []string{"corpus", "fht ratio", "dht ratio", "canned ratio", "fht cycles/KB", "dht cycles/KB"},
	}
	ctx := newCtx(nx.P9Device())
	const size = 1 << 20
	for _, k := range []corpus.Kind{corpus.Text, corpus.JSONLogs, corpus.DNA, corpus.Binary} {
		src := corpus.Generate(k, size, Seed)
		outF, repF, err := ctx.Compress(src, nx.FCCompressFHT, nx.WrapRaw, true)
		if err != nil {
			panic(err)
		}
		outD, repD, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapRaw, true)
		if err != nil {
			panic(err)
		}
		canned := cannedRatio(ctx, k, src)
		t.AddRow(k.String(), f2(ratioOf(size, len(outF))), f2(ratioOf(size, len(outD))),
			f2(canned),
			f1(float64(repF.Breakdown.Total)/(size/1024)),
			f1(float64(repD.Breakdown.Total)/(size/1024)))
	}
	t.Note("canned tables are built from a different sample of the same corpus class")
	return t
}

// cannedRatio compresses src with a table trained on a different seed of
// the same kind.
func cannedRatio(ctx *nx.Context, k corpus.Kind, src []byte) float64 {
	train := corpus.Generate(k, 256<<10, Seed+1)
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	toks, _ := m.Tokenize(nil, train)
	lf, df := deflate.CountFrequencies(toks)
	for i := range lf {
		lf[i]++
	}
	for i := range df {
		df[i]++
	}
	dht, err := deflate.BuildDHT(lf, df)
	if err != nil {
		panic(err)
	}
	csb, _, err := ctx.Submit(&nx.CRB{Func: nx.FCCompressCannedDHT, Wrap: nx.WrapRaw, Input: src, DHT: dht})
	if err != nil || csb.CC != nx.CCSuccess {
		panic(fmt.Sprintf("canned: %v %v", err, csb.CC))
	}
	return ratioOf(len(src), len(csb.Output))
}

// E12PageFaults reproduces the demand-paging figure: touch-and-resubmit
// overhead as a function of how much of the buffer is non-resident.
func E12PageFaults() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "translation-fault handling: touch-and-resubmit overhead (claim C8)",
		Header: []string{"non-resident", "retries", "wasted cycles", "effective rate", "vs resident"},
	}
	const size = 1 << 20
	src := corpus.Generate(corpus.Text, size, Seed)
	var baseRate float64
	for _, fraction := range []float64{0, 0.25, 0.5, 1.0} {
		dev := nx.NewDevice(nx.P9Device())
		ctx := dev.OpenContext(1)
		ps := dev.MMU().Config().PageSize
		srcVA, err := ctx.MapBuffer(size, true)
		if err != nil {
			panic(err)
		}
		dstVA, err := ctx.MapBuffer(2*size+1024, true)
		if err != nil {
			panic(err)
		}
		// Evict a fraction of the source pages.
		pages := (size + ps - 1) / ps
		evict := int(fraction * float64(pages))
		for p := 0; p < evict; p++ {
			dev.MMU().Evict(1, srcVA+uint64(p*ps))
		}
		csb, rep, err := ctx.Submit(&nx.CRB{
			Func: nx.FCCompressDHT, Wrap: nx.WrapGzip, Input: src,
			SourceVA: srcVA, TargetVA: dstVA, TargetCap: 2*size + 1024,
		})
		if err != nil || csb.CC != nx.CCSuccess {
			panic(fmt.Sprintf("E12: %v %v", err, csb.CC))
		}
		rate := float64(size) / (float64(rep.TotalCycles) / (dev.PipelineConfig().ClockGHz * 1e9))
		if fraction == 0 {
			baseRate = rate
		}
		t.AddRow(fmt.Sprintf("%.0f%%", fraction*100), fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%d", rep.WastedCycles), gbs(rate), f2(rate/baseRate)+"x")
	}
	t.Note("P9 protocol: a faulted request is terminated, the OS touches the page, software resubmits")
	return t
}

// hostTimed measures the host-machine software baseline for reference
// (reported by nxbench, not used in any speedup computation).
func hostTimed(src []byte, level int) float64 {
	start := time.Now()
	if _, err := deflate.Compress(src, deflate.Options{Level: level}); err != nil {
		panic(err)
	}
	return float64(len(src)) / time.Since(start).Seconds()
}

// EHostReference reports this repository's own software codec measured on
// the host, to make the calibration constants auditable.
func EHostReference() *Table {
	t := &Table{
		ID:     "H0",
		Title:  "host-measured software baseline (reference only)",
		Header: []string{"zlib level", "host rate"},
	}
	src := corpus.Generate(corpus.Text, 4<<20, Seed)
	for _, level := range []int{1, 6, 9} {
		t.AddRow(fmt.Sprintf("%d", level), mbs(hostTimed(src, level)))
	}
	t.Note("host rates vary by machine; the paper's speedups use the calibrated P9 core constants")
	return t
}

// All runs every experiment in order.
func All() []*Table {
	return []*Table{
		E1CompressionRatio(),
		E2ThroughputVsSize(),
		E3SpeedupSingleCore(),
		E4SpeedupWholeChip(),
		E5Z15Doubling(),
		E6SystemScaling(),
		E7SparkTPCDS(),
		E8LatencyBreakdown(),
		E9MultiTenant(),
		E10AreaPower(),
		E11DHTStrategies(),
		E12PageFaults(),
		E13StreamComposition(),
		E14MemoryExpansion(),
		E15SubmissionInterfaces(),
		E16QoS(),
		E17SmallRequests(),
		E18TopologyScaling(),
		E19ChaosDegradation(),
		E20ObservabilityOverhead(),
		E21SmallRequestBatching(),
		E22FlightRecorderOverhead(),
		E23CodecShootout(),
		E24OverloadProtection(),
		E25TenantInterference(),
	}
}

// E13StreamComposition reproduces the library-level trade-off of
// composing one long stream out of buffer-sized requests: independent
// gzip members (no history, no replay cost) versus a single member with
// 32 KiB history carry (better ratio, replay beats). This is the design
// discussion behind the paper's "integration into the system stack".
func E13StreamComposition() *Table {
	t := &Table{
		ID:     "E13",
		Title:  "stream composition: members vs history carry, by chunk size",
		Header: []string{"chunk", "member ratio", "history ratio", "one-shot ratio", "replay overhead"},
	}
	const total = 4 << 20
	src := corpus.Generate(corpus.Text, total, Seed)
	ctx := newCtx(nx.P9Device())

	oneShot, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapRaw, true)
	if err != nil {
		panic(err)
	}
	oneShotRatio := ratioOf(total, len(oneShot))

	for _, chunk := range []int{8 << 10, 32 << 10, 128 << 10, 1 << 20} {
		var memberOut, histOut int
		var memberCycles, histCycles int64
		var history []byte
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			piece := src[off:end]
			// Independent member.
			csb, rep, err := ctx.Submit(&nx.CRB{Func: nx.FCCompressDHT, Wrap: nx.WrapRaw, Input: piece})
			if err != nil || csb.CC != nx.CCSuccess {
				panic(fmt.Sprintf("E13 member: %v %v", err, csb.CC))
			}
			memberOut += len(csb.Output)
			memberCycles += rep.TotalCycles
			// History-carried segment.
			csb2, rep2, err := ctx.Submit(&nx.CRB{
				Func: nx.FCCompressDHT, Wrap: nx.WrapRaw, Input: piece,
				History: history, NotFinal: end != total,
			})
			if err != nil || csb2.CC != nx.CCSuccess {
				panic(fmt.Sprintf("E13 history: %v %v", err, csb2.CC))
			}
			histOut += len(csb2.Output)
			histCycles += rep2.TotalCycles
			history = append(history, piece...)
			if len(history) > 32<<10 {
				history = history[len(history)-(32<<10):]
			}
		}
		t.AddRow(stats.Bytes(int64(chunk)),
			f2(ratioOf(total, memberOut)), f2(ratioOf(total, histOut)),
			f2(oneShotRatio),
			fmt.Sprintf("+%.0f%%", 100*(float64(histCycles)/float64(memberCycles)-1)))
	}
	t.Note("history carry recovers the one-shot ratio at small chunks for the price of replaying 32 KiB per request")
	return t
}

// E14MemoryExpansion exercises the second engine in its shipped role:
// Active Memory Expansion via 842. The table sweeps page-content classes
// and reports the expansion factor achieved and the engine overhead per
// access under a hot/cold workload.
func E14MemoryExpansion() *Table {
	t := &Table{
		ID:     "E14",
		Title:  "842 active memory expansion: factor vs overhead",
		Header: []string{"page class", "expansion", "expand rate", "cycles/access"},
	}
	for _, k := range []corpus.Kind{corpus.Text, corpus.JSONLogs, corpus.Binary, corpus.Random, corpus.Zeros} {
		cfg := ame.DefaultConfig()
		cfg.UncompressedTarget = 64
		pool := ame.New(cfg)
		st, err := ame.Workload{
			Pages: 256, HotFraction: 0.2, HotWeight: 0.9,
			Accesses: 4000, Seed: Seed,
		}.Run(pool, func(id int) []byte {
			return corpus.Generate(k, cfg.PageSize, int64(id))
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(k.String(),
			f2(st.ExpansionFactor())+"x",
			fmt.Sprintf("%.1f%%", st.ExpansionRate()*100),
			f0(float64(st.EngineCycles)/float64(st.Accesses)))
	}
	t.Note("256 logical pages, 64 resident frames, 90%% of accesses to the hot 20%%")
	return t
}

// E15SubmissionInterfaces compares the two integration styles the two
// chips shipped: POWER9's asynchronous VAS paste (queue + doorbell, CPU
// free during the operation) versus z15's synchronous instruction
// dispatch (DFLTCC style: cheaper entry, CPU waits). Small requests favor
// the cheap synchronous entry; large requests are line-rate-bound either
// way, and the async path frees the core.
func E15SubmissionInterfaces() *Table {
	t := &Table{
		ID:     "E15",
		Title:  "submission interface: async queue (paste) vs sync instruction",
		Header: []string{"size", "async latency", "sync latency", "sync benefit", "cpu-free (async)"},
	}
	ctx := newCtx(nx.Z15Device())
	cfg := ctx.Device().PipelineConfig()
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		src := corpus.Generate(corpus.Text, size, Seed)
		_, repA, err := ctx.Compress(src, nx.FCCompressFHT, nx.WrapGzip, true)
		if err != nil {
			panic(err)
		}
		csb, repS, err := ctx.SyncCall(&nx.CRB{Func: nx.FCCompressFHT, Wrap: nx.WrapGzip, Input: src})
		if err != nil || csb.CC != nx.CCSuccess {
			panic(fmt.Sprintf("E15: %v %v", err, csb.CC))
		}
		benefit := float64(repA.TotalCycles-repS.TotalCycles) / float64(repA.TotalCycles) * 100
		// Async frees the core for everything except submission+completion
		// handling; sync burns the whole duration on the calling CPU.
		cpuFree := float64(repA.TotalCycles-cfg.SetupCycles-cfg.CompleteCycles) / float64(repA.TotalCycles) * 100
		t.AddRow(stats.Bytes(int64(size)),
			us(repA.Time.Seconds()), us(repS.Time.Seconds()),
			fmt.Sprintf("%.1f%%", benefit), fmt.Sprintf("%.1f%%", cpuFree))
	}
	t.Note("sync dispatch (z15 DFLTCC style) saves fixed cycles; async (P9 VAS) returns the core to software")
	return t
}

// E16QoS reproduces the priority-FIFO behaviour: a latency-sensitive
// tenant sharing one accelerator with bulk traffic, with and without the
// high-priority receive FIFO (claim C8's "shared queues" story at its
// sharpest).
func E16QoS() *Table {
	t := &Table{
		ID:     "E16",
		Title:  "QoS: high-priority FIFO under bulk load",
		Header: []string{"discipline", "urgent p50", "urgent p99", "bulk p99", "agg throughput"},
	}
	base := queueing.Config{Servers: 1, Duration: 10, Seed: Seed, Sources: 9,
		Service: queueing.AcceleratorService(5e-6, 7.5e9),
		// Source 0 is the urgent tenant with small requests; sources
		// 1..8 saturate with 1 MiB bulk.
		SizeFor: func(src int, _ *rand.Rand) int {
			if src == 0 {
				return 16 << 10
			}
			return 1 << 20
		}}
	run := func(pri bool) queueing.Result {
		cfg := base
		if pri {
			cfg.Priority = func(src int) int {
				if src == 0 {
					return 1
				}
				return 0
			}
		}
		return queueing.SimulateClosed(cfg, 9, 50e-6, queueing.FixedSize(1<<20))
	}
	for _, pri := range []bool{false, true} {
		res := run(pri)
		name := "single FIFO"
		if pri {
			name = "priority FIFO"
		}
		urgent := res.PerSource[0]
		worstBulk := 0.0
		for _, s := range res.PerSource[1:] {
			if v := s.Percentile(99); v > worstBulk {
				worstBulk = v
			}
		}
		t.AddRow(name, us(urgent.Percentile(50)), us(urgent.Percentile(99)),
			us(worstBulk), gbs(res.Throughput))
	}
	t.Note("8 bulk tenants saturate the engine; the urgent tenant's requests jump the queue under priority")
	return t
}

// E17SmallRequests reproduces the ratio-vs-request-size behaviour: fixed
// stream overheads (block headers, DHT serialization, gzip framing) eat
// into the ratio for small buffers — why the NX library documents a
// minimum recommended request size.
func E17SmallRequests() *Table {
	t := &Table{
		ID:     "E17",
		Title:  "small-request ratio overhead (why the library batches)",
		Header: []string{"size", "nx-dht ratio", "nx-fht ratio", "zlib-6 ratio", "dht hdr share"},
	}
	ctx := newCtx(nx.P9Device())
	for _, size := range []int{512, 2 << 10, 8 << 10, 64 << 10, 1 << 20} {
		src := corpus.Generate(corpus.JSONLogs, size, Seed)
		outD, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
		if err != nil {
			panic(err)
		}
		outF, _, err := ctx.Compress(src, nx.FCCompressFHT, nx.WrapGzip, true)
		if err != nil {
			panic(err)
		}
		z6, err := deflate.CompressGzip(src, deflate.Options{Level: 6})
		if err != nil {
			panic(err)
		}
		// DHT header share: dynamic-stream bytes minus fixed-stream payload
		// difference approximates the table header cost.
		rawD, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapRaw, true)
		if err != nil {
			panic(err)
		}
		hdrShare := headerShare(rawD)
		t.AddRow(stats.Bytes(int64(size)),
			f2(ratioOf(size, len(outD))), f2(ratioOf(size, len(outF))),
			f2(ratioOf(size, len(z6))),
			fmt.Sprintf("%.1f%%", hdrShare*100))
	}
	t.Note("below ~8 KiB the dynamic table header and gzip framing dominate; FHT or canned tables win there")
	return t
}

// headerShare estimates the fraction of a raw dynamic stream spent on the
// block header by re-parsing it.
func headerShare(stream []byte) float64 {
	r := bitio.NewReader(stream)
	if _, err := deflate.ReadBlockHeader(r); err != nil {
		return 0
	}
	return float64(r.BitsConsumed()) / float64(len(stream)*8)
}
