package experiments

import (
	"fmt"

	"nxzip/internal/corpus"
	"nxzip/internal/nx"
	"nxzip/internal/topology"
)

// TopologyTargetGBs is the paper's aggregate-rate claim for the maximal
// z15 configuration (claim C6): 5 CPC drawers x 4 CP chips, each with one
// on-chip zEDC unit, approaching 280 GB/s. The figure is reconstructed
// from the paper's text, not measured on hardware.
const TopologyTargetGBs = 280.0

// TopologyPoint is one measured configuration of the topology sweep —
// the JSON shape `nxbench -json` emits.
type TopologyPoint struct {
	Devices      int     `json:"devices"`
	Drawers      int     `json:"drawers,omitempty"` // set when devices is a whole drawer count
	GBs          float64 `json:"gbs"`
	PerDeviceGBs float64 `json:"per_device_gbs"`
	Scaling      float64 `json:"scaling"`    // rate / single-device rate
	Efficiency   float64 `json:"efficiency"` // scaling / devices
}

// topologyChunksPerDevice x topologyChunkSize is the work each device
// receives in the sweep; 1 MiB requests sit on the flat part of the
// throughput-vs-size curve (E2), so the sweep measures scaling, not
// per-request overhead.
const (
	topologyChunksPerDevice = 4
	topologyChunkSize       = 1 << 20
)

// deviceBusyTime returns the wall-clock the device's engines were busy,
// at the engine clock. Engines within a device run in parallel behind
// the shared FIFO, but the sweep's serial submission keeps one request
// in flight per device, so summing engine busy cycles is exact here.
func deviceBusyTime(d *nx.Device) float64 {
	var busy int64
	for i := 0; i < d.EngineCount(); i++ {
		e, err := d.EngineAt(i)
		if err != nil {
			panic(err) // unreachable: i < EngineCount
		}
		busy += e.Counters().BusyCycles
	}
	return d.PipelineConfig().Time(busy).Seconds()
}

// measureTopology drives one node configuration through the real
// dispatch layer: a node of `devices` z15 units is built, every chunk is
// routed by the policy (device picked before buffers map — VAs are
// per-device), and the aggregate rate is total bytes over the makespan,
// the busiest device's engine-busy time. Chunks are distinct corpus
// slices, so per-device work varies slightly and the efficiency number
// is honest rather than definitionally 1.0.
func measureTopology(devices int, policy topology.Policy) (totalBytes int, makespan float64) {
	specs := make([]topology.DeviceSpec, devices)
	for i := range specs {
		specs[i] = topology.DeviceSpec{Config: nx.Z15Device()}
	}
	node := topology.New(topology.Custom(fmt.Sprintf("z15-%ddev", devices), specs...), policy)
	nctx := node.OpenContext(1)
	defer nctx.Close()

	chunks := devices * topologyChunksPerDevice
	src := corpus.Generate(corpus.Text, chunks*topologyChunkSize, Seed)
	for i := 0; i < chunks; i++ {
		chunk := src[i*topologyChunkSize : (i+1)*topologyChunkSize]
		ctx, done := nctx.Pick()
		_, _, err := ctx.Compress(chunk, nx.FCCompressDHT, nx.WrapGzip, true)
		done(err)
		if err != nil {
			panic(fmt.Sprintf("E18 %d devices: %v", devices, err))
		}
	}

	for i := 0; i < node.Size(); i++ {
		if t := deviceBusyTime(node.Device(i)); t > makespan {
			makespan = t
		}
	}
	return chunks * topologyChunkSize, makespan
}

// TopologyScaling runs the default sweep: a single z15 unit, then whole
// CPC drawers up to the maximal five (4, 8, 12, 16, 20 zEDC units),
// dispatched round-robin.
func TopologyScaling() (*Table, []TopologyPoint) {
	return TopologyScalingCustom([]int{1, 4, 8, 12, 16, 20}, topology.RoundRobin())
}

// TopologyScalingCustom sweeps explicit device counts under an explicit
// dispatch policy, returning both the rendered table and the raw points
// (for -json export).
func TopologyScalingCustom(deviceCounts []int, policy topology.Policy) (*Table, []TopologyPoint) {
	t := &Table{
		ID:     "E18",
		Title:  "aggregate rate vs device count through the dispatch layer (claim C6: 280 GB/s)",
		Header: []string{"devices", "drawers", "aggregate", "per-device", "scaling", "efficiency"},
	}
	var (
		points []TopologyPoint
		base   float64
	)
	for _, n := range deviceCounts {
		bytes, makespan := measureTopology(n, policy)
		rate := float64(bytes) / makespan
		if base == 0 {
			base = rate / float64(n)
		}
		p := TopologyPoint{
			Devices:      n,
			GBs:          rate / 1e9,
			PerDeviceGBs: rate / float64(n) / 1e9,
			Scaling:      rate / base,
			Efficiency:   rate / base / float64(n),
		}
		drawerCell := "-"
		if n%z15DrawerChips == 0 {
			p.Drawers = n / z15DrawerChips
			drawerCell = fmt.Sprintf("%d", p.Drawers)
		}
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%d", n), drawerCell, gbs(rate), gbs(rate/float64(n)),
			f2(p.Scaling)+"x", f2(p.Efficiency))
	}
	t.Note("policy: %s; makespan = busiest device's engine-busy time; chunks are distinct 1 MiB corpus slices", policy.Name())
	t.Note("paper claim C6 (reconstructed): maximal z15 (5 drawers, 20 zEDC units) approaches %.0f GB/s aggregate", TopologyTargetGBs)
	return t, points
}

// z15DrawerChips mirrors the topology package's CP-chips-per-drawer
// constant for drawer labeling in the table.
const z15DrawerChips = 4

// E18TopologyScaling is the table-only entry point All uses.
func E18TopologyScaling() *Table {
	t, _ := TopologyScaling()
	return t
}
