package experiments

// E23 is the codec shoot-out behind the codec-plural API: the same
// corpus mix through all three engine families — DEFLATE (the paper's
// flagship), 842 (z15 memory expansion) and LZ4 (byte-aligned,
// throughput-first) — measuring ratio, modeled compress/decompress
// rates and engine cycles per input byte. The table quantifies the
// trade the capability-advertising dispatch layer lets one node offer:
// DEFLATE buys ratio with the full LZ/Huffman pipeline, LZ4 buys ingest
// rate with two match lanes and no entropy stage, 842 sits between on
// its fixed templates.

import (
	"fmt"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
)

// CodecPoint is one codec's aggregate over the corpus mix — the JSON
// shape `nxbench -codecs` exports.
type CodecPoint struct {
	Codec         string  `json:"codec"`
	InBytes       int     `json:"in_bytes"`
	OutBytes      int     `json:"out_bytes"`
	Ratio         float64 `json:"ratio"`
	CompressGBs   float64 `json:"compress_gbs"`
	DecompressGBs float64 `json:"decompress_gbs"`
	CyclesPerByte float64 `json:"cycles_per_byte"`
}

// codecShootoutFormats pairs each codec family with the wire format the
// sweep drives it through.
var codecShootoutFormats = []nxzip.Format{nxzip.FormatGzip, nxzip.Format842, nxzip.FormatLZ4}

// E23CodecShootout renders the shoot-out as a table.
func E23CodecShootout() *Table {
	t, _ := CodecShootout()
	return t
}

// CodecShootout runs the sweep on one P9 device (the zero capability
// set: every codec) and returns the table plus the raw points for -json
// export. Every codec sees the identical corpus mix — the nine ratio
// kinds at 1 MiB each — through the format-routed API, so the numbers
// compare engines, not data.
func CodecShootout() (*Table, []CodecPoint) {
	t := &Table{
		ID:     "E23",
		Title:  "codec shoot-out: one API, three engines (P9, 1 MiB x 9 kinds)",
		Header: []string{"codec", "ratio", "compress", "decompress", "cycles/byte"},
	}
	acc := nxzip.Open(nxzip.P9())
	defer acc.Close()
	const size = 1 << 20

	srcs := make([][]byte, len(ratioKinds))
	for i, k := range ratioKinds {
		srcs[i] = corpus.Generate(k, size, Seed)
	}

	var points []CodecPoint
	for _, f := range codecShootoutFormats {
		var (
			in, out    int
			compCycles int64
			compTime   time.Duration
			decTime    time.Duration
		)
		for _, src := range srcs {
			enc, m, err := acc.CompressFormat(f, src)
			if err != nil {
				panic(fmt.Sprintf("E23 %s compress: %v", f, err))
			}
			if m.Degraded {
				panic(fmt.Sprintf("E23 %s compress degraded on a healthy device", f))
			}
			in += len(src)
			out += len(enc)
			compCycles += m.DeviceCycles
			compTime += m.DeviceTime

			plain, dm, err := acc.DecompressFormat(f, enc, len(src)+64)
			if err != nil || len(plain) != len(src) {
				panic(fmt.Sprintf("E23 %s decompress: %v", f, err))
			}
			decTime += dm.DeviceTime
		}
		p := CodecPoint{
			Codec:    f.Codec().String(),
			InBytes:  in,
			OutBytes: out,
			Ratio:    ratioOf(in, out),
		}
		if compTime > 0 {
			p.CompressGBs = float64(in) / compTime.Seconds() / 1e9
		}
		if decTime > 0 {
			p.DecompressGBs = float64(in) / decTime.Seconds() / 1e9
		}
		if in > 0 {
			p.CyclesPerByte = float64(compCycles) / float64(in)
		}
		points = append(points, p)
		t.AddRow(p.Codec, f2(p.Ratio),
			fmt.Sprintf("%.2f GB/s", p.CompressGBs),
			fmt.Sprintf("%.2f GB/s", p.DecompressGBs),
			f2(p.CyclesPerByte))
	}
	t.Note("identical corpus per codec: the nine E1 kinds at 1 MiB; rates from the modeled device timeline")
	t.Note("deflate = full LZ/Huffman pipeline (DHT); lz4 = two byte-aligned match lanes, no entropy stage; 842 = fixed templates")
	return t, points
}
