package experiments

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"nxzip"
	"nxzip/internal/corpus"
	"nxzip/internal/nx"
)

// E20: the observability layer must be close to free. The claim under
// test is that attaching the full operational surface — event bus wired
// through every layer, window sampler ticking, HTTP server up with a
// client scraping /metrics throughout the run — costs less than ~2% of
// the clean node's throughput, because every hook on the request path
// is an atomic load plus a nil check and the exposition work happens on
// snapshot copies outside the request path.

// ObsPoint is one measured mode of the E20 overhead comparison — the
// JSON shape `nxbench -obs-overhead -json` emits (BENCH_obs.json).
type ObsPoint struct {
	Mode     string  `json:"mode"` // "off" or "on"
	GBs      float64 `json:"gbs"`
	Relative float64 `json:"relative"` // vs the off mode
}

// Workload sizing mirrors E19: enough 256 KiB requests that per-request
// cost dominates fixed cost, small enough that a mode measures in
// around a second. A claim about a ~2% margin needs noise control:
// each run warms up untimed first, modes are measured interleaved (so
// host drift hits both equally), and each mode keeps its best-of-N.
const (
	obsRequests  = 48
	obsWarmup    = 4
	obsChunkSize = 256 << 10
	obsTrials    = 5
)

// obsNode builds the measurement node: a z15 drawer (4 zEDC units) with
// the same trimmed recovery budget the chaos harness uses, so the two
// experiments' baselines agree.
func obsNode() (*nxzip.Node, error) {
	devs := make([]nx.DeviceConfig, 4)
	for i := range devs {
		devs[i] = nx.Z15Device()
		devs[i].Submit = nx.SubmitPolicy{
			MaxFaultRounds:   8,
			MaxPasteAttempts: 1 << 20,
			MaxBackoffWaits:  16,
			BackoffBase:      time.Microsecond,
			BackoffMax:       8 * time.Microsecond,
		}
	}
	return nxzip.OpenNode(nxzip.CustomNode("z15-obs", devs...))
}

// measureObs runs the workload once and returns wall-clock GB/s. With
// observe=true the full surface is live: events enabled across every
// layer, the HTTP server up with its sampler, and a scraper goroutine
// polling /metrics for the duration of the run.
func measureObs(observe bool) (float64, error) {
	node, err := obsNode()
	if err != nil {
		return 0, err
	}
	acc := node.View()
	defer acc.Close()

	if observe {
		srv, serr := node.ServeObs("127.0.0.1:0")
		if serr != nil {
			return 0, serr
		}
		defer srv.Close()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			client := &http.Client{Timeout: time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if resp, gerr := client.Get("http://" + srv.Addr() + "/metrics"); gerr == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
		defer func() { close(stop); <-done }()
	}

	src := corpus.Generate(corpus.Text, obsRequests*obsChunkSize, Seed)
	for i := 0; i < obsWarmup; i++ { // untimed: fault in pages, settle pools
		chunk := src[i*obsChunkSize : (i+1)*obsChunkSize]
		if _, _, cerr := acc.CompressGzip(chunk); cerr != nil {
			return 0, fmt.Errorf("E20 warmup %d: %w", i, cerr)
		}
	}
	start := time.Now()
	for i := 0; i < obsRequests; i++ {
		chunk := src[i*obsChunkSize : (i+1)*obsChunkSize]
		if _, _, cerr := acc.CompressGzip(chunk); cerr != nil {
			return 0, fmt.Errorf("E20 request %d: %w", i, cerr)
		}
	}
	wall := time.Since(start)
	return float64(obsRequests*obsChunkSize) / wall.Seconds() / 1e9, nil
}

// bestBothObs measures the two modes interleaved — off, on, off, on —
// keeping each mode's best-of-obsTrials, so slow host drift lands on
// both sides of the comparison instead of biasing one.
func bestBothObs() (off, on float64, err error) {
	for t := 0; t < obsTrials; t++ {
		g, merr := measureObs(false)
		if merr != nil {
			return 0, 0, merr
		}
		off = max(off, g)
		g, merr = measureObs(true)
		if merr != nil {
			return 0, 0, merr
		}
		on = max(on, g)
	}
	return off, on, nil
}

// ObsOverhead measures both modes, returning the rendered table and the
// raw points for -json export.
func ObsOverhead() (*Table, []ObsPoint) {
	t := &Table{
		ID:     "E20",
		Title:  "observability overhead: clean node vs full surface live (events + sampler + /metrics scraper)",
		Header: []string{"mode", "rate", "relative"},
	}
	off, on, err := bestBothObs()
	if err != nil {
		panic(err) // deterministic workload; any error is a harness bug
	}
	points := []ObsPoint{
		{Mode: "off", GBs: off, Relative: 1},
		{Mode: "on", GBs: on},
	}
	if off > 0 {
		points[1].Relative = on / off
	}
	for _, p := range points {
		t.AddRow(p.Mode, gbs(p.GBs*1e9), f2(p.Relative))
	}
	t.Note("z15 drawer (4 zEDC units), %d x %d KiB requests after %d warmup, modes interleaved, best of %d runs per mode; seed %d",
		obsRequests, obsChunkSize>>10, obsWarmup, obsTrials, Seed)
	t.Note("on = events wired through every layer, window sampler ticking, HTTP server up, /metrics scraped every 10 ms")
	t.Note("request-path hooks are an atomic load + nil check; exposition works on snapshot copies off the request path")
	return t, points
}

// E20ObservabilityOverhead is the table-only entry point All uses.
func E20ObservabilityOverhead() *Table {
	t, _ := ObsOverhead()
	return t
}
