package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nxzip"
	"nxzip/internal/admission"
	"nxzip/internal/corpus"
	"nxzip/internal/stats"
)

// E24 measures what the admission gate buys past saturation. Credit/paste
// flow control alone (C4, C8) degrades badly when offered load exceeds
// capacity: every caller spins in paste-reject backoff and the tail grows
// without bound. The brownout ladder makes the degradation deliberate —
// background work is denied first, batch work re-routes to the software
// fallback next, and interactive work rides a bounded CoDel-policed
// queue. The experiment calibrates the node's closed-loop capacity, then
// offers an open-loop 20/40/40 interactive/batch/background mix at 0.5x,
// 1x, 2x and 4x that rate and reports per-class goodput, degradation,
// sheds and p99 latency. The property under test: at 2x offered load the
// interactive class still completes everything it offers.

// OverloadPoint is one (offered multiplier, class) cell of the overload
// sweep — the JSON shape `nxbench -overload` emits.
type OverloadPoint struct {
	// Multiplier is offered load as a fraction of calibrated capacity.
	Multiplier float64 `json:"multiplier"`
	// OfferedRPS is the open-loop arrival rate of the whole mix.
	OfferedRPS float64 `json:"offered_rps"`
	Class      string  `json:"class"`
	Arrivals   int     `json:"arrivals"`
	// Completed counts requests that returned data (Degraded is the
	// software-fallback subset, the brownout re-route).
	Completed int `json:"completed"`
	Degraded  int `json:"degraded"`
	// Shed counts typed ErrOverloaded rejections; Errors counts anything
	// else (must stay zero — overload never corrupts or fails work).
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`
	GoodputRPS float64 `json:"goodput_rps"`
	P99Ms      float64 `json:"p99_ms"`
	// Level is the highest brownout-ladder rung observed during the point.
	Level string `json:"level"`
}

const (
	// overloadPayload is the request size: 4 KiB, the small-request regime
	// where per-request protocol cost matters and overload bites first.
	overloadPayload = 4 << 10
	// overloadArrivals is the open-loop arrival count per sweep point —
	// fixed, so higher multipliers compress the same work into less wall
	// time instead of growing the experiment.
	overloadArrivals = 3000
	// overloadCalWorkers/overloadCalReqs shape the closed-loop
	// calibration run that measures node capacity.
	overloadCalWorkers = 16
	overloadCalReqs    = 1024
)

// overloadMults is the offered-load sweep, in units of calibrated
// capacity. Ascending order so early points see a cold pressure EWMA.
var overloadMults = []float64{0.5, 1, 2, 4}

// overloadClassOf deals arrivals 20/40/40: of every five arrivals, one
// interactive, two batch, two background.
func overloadClassOf(i int) admission.Class {
	switch i % 5 {
	case 0:
		return admission.Interactive
	case 1, 2:
		return admission.Batch
	default:
		return admission.Background
	}
}

// levelRank orders ladder names for the max-level sampler.
var levelRank = map[string]int{"normal": 0, "shed-background": 1, "shed-batch": 2, "saturated": 3}

// E24OverloadProtection renders the sweep as a table.
func E24OverloadProtection() *Table {
	t, _ := OverloadProtection()
	return t
}

// OverloadProtection runs the sweep on a one-unit POWER9 node with
// admission enabled and returns both the table and the raw points for
// -json export. The queue policy is deliberately generous (deep queue,
// 1s MaxWait) so the interactive class absorbs the burst by waiting
// rather than timing out — the sweep points are short, so queued work
// always outlives the burst that queued it.
func OverloadProtection() (*Table, []OverloadPoint) {
	t := &Table{
		ID:    "E24",
		Title: "overload protection: 20/40/40 class mix at 0.5x-4x offered capacity (1 NX unit, FHT)",
		Header: []string{"offered", "class", "arrivals", "completed", "degraded",
			"shed", "errors", "goodput req/s", "p99 ms", "peak level"},
	}
	cfg := nxzip.P9Node(1)
	cfg.TableMode = nxzip.TableFixed
	node, err := nxzip.OpenNode(cfg)
	if err != nil {
		panic(err)
	}
	ctrl := node.EnableAdmission(admission.Config{
		QueueLimit:  8192,
		QueueTarget: 50 * time.Millisecond,
		MaxWait:     time.Second,
	})

	var views [admission.ClassCount]*nxzip.Accelerator
	for cl := admission.Class(0); cl < admission.ClassCount; cl++ {
		v := node.View()
		v.SetPriority(cl)
		views[cl] = v
		defer v.Close()
	}

	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = corpus.Generate(corpus.JSONLogs, overloadPayload, Seed+int64(i))
	}

	// Closed-loop calibration: a fixed worker pool measures the request
	// rate the node sustains when callers wait for completions, gate
	// included. This is the capacity the sweep's multipliers scale.
	var wg sync.WaitGroup
	per := overloadCalReqs / overloadCalWorkers
	calStart := time.Now()
	for w := 0; w < overloadCalWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var m nxzip.Metrics
			for k := 0; k < per; k++ {
				p := payloads[(w*per+k)%len(payloads)]
				if _, err := views[admission.Interactive].CompressGzipInto(nil, p, &m); err != nil {
					panic(fmt.Sprintf("E24 calibration: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	capacity := float64(overloadCalWorkers*per) / time.Since(calStart).Seconds()

	type outcome struct {
		class    admission.Class
		latency  time.Duration
		degraded bool
		err      error
	}
	var points []OverloadPoint
	for _, mult := range overloadMults {
		rate := mult * capacity
		interval := time.Duration(float64(time.Second) / rate)
		results := make([]outcome, overloadArrivals)

		// Max-level sampler: polls the ladder while the point runs so the
		// row records the deepest brownout rung the burst reached.
		peak := 0
		stop := make(chan struct{})
		var sampler sync.WaitGroup
		sampler.Add(1)
		go func() {
			defer sampler.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
					if r := levelRank[ctrl.StatusNow().Level]; r > peak {
						peak = r
					}
				}
			}
		}()

		pointStart := time.Now()
		next := pointStart
		for i := 0; i < overloadArrivals; i++ {
			if wait := time.Until(next); wait > 100*time.Microsecond {
				time.Sleep(wait)
			}
			next = next.Add(interval)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cl := overloadClassOf(i)
				var m nxzip.Metrics
				t0 := time.Now()
				_, err := views[cl].CompressGzipInto(nil, payloads[i%len(payloads)], &m)
				results[i] = outcome{cl, time.Since(t0), m.Degraded, err}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(pointStart).Seconds()
		close(stop)
		sampler.Wait()

		var (
			arrivals, completed, degraded, shed, errCount [admission.ClassCount]int
			lat                                           [admission.ClassCount]stats.Samples
		)
		for _, r := range results {
			arrivals[r.class]++
			switch {
			case r.err == nil:
				completed[r.class]++
				if r.degraded {
					degraded[r.class]++
				}
				lat[r.class].Add(float64(r.latency) / float64(time.Millisecond))
			case errors.Is(r.err, admission.ErrOverloaded):
				shed[r.class]++
			default:
				errCount[r.class]++
			}
		}
		level := "normal"
		for name, r := range levelRank {
			if r == peak {
				level = name
			}
		}
		for cl := admission.Class(0); cl < admission.ClassCount; cl++ {
			goodput := float64(completed[cl]) / elapsed
			p99 := lat[cl].Percentile(99)
			points = append(points, OverloadPoint{
				Multiplier: mult, OfferedRPS: rate, Class: cl.String(),
				Arrivals: arrivals[cl], Completed: completed[cl],
				Degraded: degraded[cl], Shed: shed[cl], Errors: errCount[cl],
				GoodputRPS: goodput, P99Ms: p99, Level: level,
			})
			t.AddRow(fmt.Sprintf("%.1fx", mult), cl.String(),
				fmt.Sprintf("%d", arrivals[cl]),
				fmt.Sprintf("%d", completed[cl]),
				fmt.Sprintf("%d", degraded[cl]),
				fmt.Sprintf("%d", shed[cl]),
				fmt.Sprintf("%d", errCount[cl]),
				fmt.Sprintf("%.0f", goodput),
				fmt.Sprintf("%.2f", p99),
				level)
		}
	}
	t.Note("closed-loop calibrated capacity: %.0f req/s (%d workers, %s payloads); offered load is open-loop at the multiplier",
		capacity, overloadCalWorkers, stats.Bytes(overloadPayload))
	t.Note("ladder: background denied first, batch degrades to software under brownout, interactive queues (bounded, CoDel-policed)")
	t.Note("errors must stay zero in every cell — overload protection sheds work, it never corrupts or fails it")
	return t, points
}
