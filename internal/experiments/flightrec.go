package experiments

import (
	"fmt"
	"time"

	"nxzip/internal/corpus"
)

// E22: the flight recorder must be close to free. The claim under test
// is that leaving the recorder attached — every request minting a
// RequestID, carrying it through dispatch, completing a digest into the
// ring, and flowing its span through the pooled tracer and tail sampler
// — costs less than ~2% of the clean node's throughput. The design
// basis: the digest is one locked struct copy, spans recycle through a
// sync.Pool instead of allocating, and the p99 recalculation amortizes
// over 64 completions on a preallocated scratch buffer.

// flightTrials is E22's best-of count — higher than E20's because the
// claim under test is a ≤2 % delta, below host wall-clock jitter on a
// single trial.
const flightTrials = 8

// FlightPoint is one measured mode of the E22 overhead comparison — the
// JSON shape `nxbench -flightrec-overhead -json` emits
// (BENCH_flightrec.json).
type FlightPoint struct {
	Mode     string  `json:"mode"` // "off" or "on"
	GBs      float64 `json:"gbs"`
	Relative float64 `json:"relative"` // vs the off mode
}

// measureFlight runs the E20 workload shape once and returns wall-clock
// GB/s. With record=true the flight recorder is attached (memory-only:
// digest ring, tail sampler and pooled tracer live; no postmortem dir,
// so no disk I/O muddies the measurement).
func measureFlight(record bool) (float64, error) {
	node, err := obsNode()
	if err != nil {
		return 0, err
	}
	acc := node.View()
	defer acc.Close()

	if record {
		node.EnableFlightRecorder("")
	}

	src := corpus.Generate(corpus.Text, obsRequests*obsChunkSize, Seed)
	for i := 0; i < obsWarmup; i++ { // untimed: fault in pages, settle pools
		chunk := src[i*obsChunkSize : (i+1)*obsChunkSize]
		if _, _, cerr := acc.CompressGzip(chunk); cerr != nil {
			return 0, fmt.Errorf("E22 warmup %d: %w", i, cerr)
		}
	}
	start := time.Now()
	for i := 0; i < obsRequests; i++ {
		chunk := src[i*obsChunkSize : (i+1)*obsChunkSize]
		if _, _, cerr := acc.CompressGzip(chunk); cerr != nil {
			return 0, fmt.Errorf("E22 request %d: %w", i, cerr)
		}
	}
	wall := time.Since(start)
	return float64(obsRequests*obsChunkSize) / wall.Seconds() / 1e9, nil
}

// bestBothFlight measures the two modes interleaved — off, on, off, on
// — keeping each mode's best-of-obsTrials, so slow host drift lands on
// both sides of the comparison instead of biasing one.
func bestBothFlight() (off, on float64, err error) {
	for t := 0; t < flightTrials; t++ {
		g, merr := measureFlight(false)
		if merr != nil {
			return 0, 0, merr
		}
		off = max(off, g)
		g, merr = measureFlight(true)
		if merr != nil {
			return 0, 0, merr
		}
		on = max(on, g)
	}
	return off, on, nil
}

// FlightOverhead measures both modes, returning the rendered table and
// the raw points for -json export.
func FlightOverhead() (*Table, []FlightPoint) {
	t := &Table{
		ID:     "E22",
		Title:  "flight recorder overhead: clean node vs recorder attached (RequestID + digest ring + tail sampler)",
		Header: []string{"mode", "rate", "relative"},
	}
	off, on, err := bestBothFlight()
	if err != nil {
		panic(err) // deterministic workload; any error is a harness bug
	}
	points := []FlightPoint{
		{Mode: "off", GBs: off, Relative: 1},
		{Mode: "on", GBs: on},
	}
	if off > 0 {
		points[1].Relative = on / off
	}
	for _, p := range points {
		t.AddRow(p.Mode, gbs(p.GBs*1e9), f2(p.Relative))
	}
	t.Note("z15 drawer (4 zEDC units), %d x %d KiB requests after %d warmup, modes interleaved, best of %d runs per mode; seed %d",
		obsRequests, obsChunkSize>>10, obsWarmup, flightTrials, Seed)
	t.Note("on = every request mints a RequestID, stamps it through dispatch, completes a digest; spans pool-recycle through the tail sampler")
	t.Note("digest = one locked struct copy; p99 recalc amortized over 64 completions on preallocated scratch; steady state allocates nothing")
	return t, points
}

// E22FlightRecorderOverhead is the table-only entry point All uses.
func E22FlightRecorderOverhead() *Table {
	t, _ := FlightOverhead()
	return t
}
