package sparkmodel

import (
	"testing"
)

func defaultRun(t *testing.T) (Result, Result, float64) {
	t.Helper()
	queries := GenerateTPCDS(3<<40, 99, 42) // ~3 TB power run
	c := DefaultCluster()
	base := Run(queries, c, SoftwareZlib())
	acc := Run(queries, c, NXGzip())
	return base, acc, Speedup(base, acc)
}

func TestEndToEndSpeedupShape(t *testing.T) {
	base, acc, sp := defaultRun(t)
	t.Logf("baseline %.0fs, accelerated %.0fs, speedup %.1f%%", base.ElapsedSec, acc.ElapsedSec, sp*100)
	// The abstract's claim is 23%; the model must land in that regime.
	if sp < 0.10 || sp > 0.40 {
		t.Fatalf("end-to-end speedup %.1f%% outside [10%%, 40%%]", sp*100)
	}
	if acc.ElapsedSec >= base.ElapsedSec {
		t.Fatal("acceleration did not help")
	}
}

func TestCodecCPUCollapses(t *testing.T) {
	base, acc, _ := defaultRun(t)
	// Offload must remove the overwhelming majority of codec core-seconds.
	if acc.CodecCPU > 0.15*base.CodecCPU {
		t.Fatalf("codec CPU %.1fs vs baseline %.1fs: offload ineffective", acc.CodecCPU, base.CodecCPU)
	}
}

func TestComputeBoundQueriesBarelyChange(t *testing.T) {
	// A pure-compute query must see almost no benefit (honest model).
	q := Query{Name: "cpu", Stages: []Stage{{ComputeSec: 10}}}
	c := DefaultCluster()
	base := Run([]Query{q}, c, SoftwareZlib())
	acc := Run([]Query{q}, c, NXGzip())
	if s := Speedup(base, acc); s > 0.01 {
		t.Fatalf("compute-bound query sped up %.2f%%", s*100)
	}
}

func TestShuffleHeavyQueriesGainMost(t *testing.T) {
	c := DefaultCluster()
	heavy := Query{Stages: []Stage{{ComputeSec: 2, ShuffleWrite: 200 << 30, ShuffleRead: 200 << 30}}}
	light := Query{Stages: []Stage{{ComputeSec: 2, ShuffleWrite: 1 << 30, ShuffleRead: 1 << 30}}}
	sh := Speedup(Run([]Query{heavy}, c, SoftwareZlib()), Run([]Query{heavy}, c, NXGzip()))
	sl := Speedup(Run([]Query{light}, c, SoftwareZlib()), Run([]Query{light}, c, NXGzip()))
	if sh <= sl {
		t.Fatalf("shuffle-heavy speedup %.1f%% <= light %.1f%%", sh*100, sl*100)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateTPCDS(1<<40, 20, 7)
	b := GenerateTPCDS(1<<40, 20, 7)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if len(a[i].Stages) != len(b[i].Stages) || a[i].Stages[0] != b[i].Stages[0] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestPerQueryAccounting(t *testing.T) {
	queries := GenerateTPCDS(1<<40, 10, 1)
	res := Run(queries, DefaultCluster(), SoftwareZlib())
	if len(res.PerQuery) != 10 {
		t.Fatalf("per-query entries %d", len(res.PerQuery))
	}
	var sum float64
	for _, v := range res.PerQuery {
		if v <= 0 {
			t.Fatal("non-positive query time")
		}
		sum += v
	}
	if diff := sum - res.ElapsedSec; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum %.3f != elapsed %.3f", sum, res.ElapsedSec)
	}
}
