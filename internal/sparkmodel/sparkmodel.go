// Package sparkmodel is an analytic end-to-end model of an Apache Spark
// TPC-DS run with compression on the shuffle/spill path — the workload
// behind the abstract's claim C4 ("23% end-to-end speedup ... compared to
// the software baseline").
//
// Spark compresses every shuffle partition on write and decompresses it on
// read. With a software codec those cycles compete with query execution on
// the same cores; with the on-chip accelerator they are offloaded almost
// entirely. The model captures exactly that contention: per query-stage,
// elapsed time is compute + codec-CPU + I/O, with the codec's ratio also
// scaling the I/O volume.
package sparkmodel

import (
	"fmt"
	"math/rand"
)

// Codec describes a shuffle codec's performance envelope.
type Codec struct {
	Name string
	// Ratio is the compression ratio on shuffle data (uncomp/comp).
	Ratio float64
	// CompRate / DecompRate are per-core software rates in bytes/sec.
	// Ignored when Offloaded.
	CompRate   float64
	DecompRate float64
	// Offloaded routes codec work to the accelerator.
	Offloaded bool
	// AccelRate is the accelerator's effective rate (bytes/sec) and
	// AccelOverhead the per-request fixed time, when Offloaded.
	AccelRate     float64
	AccelOverhead float64
	// CPUAssistFraction is the fraction of codec work that still burns
	// core time when offloaded (request setup, touching pages): a few %.
	CPUAssistFraction float64
}

// SoftwareZlib is the paper's baseline: a gzip-class software codec on the
// shuffle path (the paper compares gzip-class codecs, not lz4-class).
func SoftwareZlib() Codec {
	return Codec{
		Name:       "zlib-sw",
		Ratio:      3.0,
		CompRate:   42e6, // zlib level 6 on a P9 core (calibration constant)
		DecompRate: 250e6,
	}
}

// NXGzip is the accelerator-backed codec.
func NXGzip() Codec {
	return Codec{
		Name:              "nx-gzip",
		Ratio:             2.9, // hardware gives up a little ratio
		Offloaded:         true,
		AccelRate:         7.5e9,
		AccelOverhead:     5e-6,
		CPUAssistFraction: 0.03,
	}
}

// Cluster sizes the modelled system.
type Cluster struct {
	Nodes        int
	CoresPerNode int
	// DiskBW / NetBW are per-node bandwidths in bytes/sec for shuffle
	// write (disk) and shuffle read (network).
	DiskBW float64
	NetBW  float64
	// Accelerators per node (when the codec is offloaded).
	AccelPerNode int
}

// DefaultCluster mirrors the paper's testbed scale: a small POWER9 cluster.
func DefaultCluster() Cluster {
	return Cluster{Nodes: 4, CoresPerNode: 40, DiskBW: 2e9, NetBW: 1.25e9, AccelPerNode: 2}
}

// Stage is one Spark stage of a query.
type Stage struct {
	ComputeSec   float64 // pure query compute on all cores
	ShuffleWrite int64   // bytes produced (uncompressed)
	ShuffleRead  int64   // bytes consumed (uncompressed)
	SpillBytes   int64   // spill traffic (uncompressed)
}

// Query is a named sequence of stages.
type Query struct {
	Name   string
	Stages []Stage
}

// GenerateTPCDS synthesizes a deterministic query mix with the skew of a
// TPC-DS power run at the given scale factor (bytes of raw data): a few
// giant shuffle-heavy joins, many mid-weight aggregations, and a tail of
// compute-bound queries.
func GenerateTPCDS(scaleBytes int64, queries int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, queries)
	for q := 0; q < queries; q++ {
		var qq Query
		qq.Name = fmt.Sprintf("q%02d", q+1)
		class := rng.Intn(10)
		nstages := 2 + rng.Intn(4)
		for s := 0; s < nstages; s++ {
			var st Stage
			frac := float64(scaleBytes) * (0.5 + rng.Float64()) / float64(queries)
			switch {
			case class < 2: // shuffle-heavy join
				st.ComputeSec = 2 + 3*rng.Float64()
				st.ShuffleWrite = int64(frac * 0.8)
				st.ShuffleRead = int64(frac * 0.8)
				st.SpillBytes = int64(frac * 0.2)
			case class < 7: // mid-weight aggregation
				st.ComputeSec = 3 + 4*rng.Float64()
				st.ShuffleWrite = int64(frac * 0.25)
				st.ShuffleRead = int64(frac * 0.25)
			default: // compute-bound
				st.ComputeSec = 5 + 5*rng.Float64()
				st.ShuffleWrite = int64(frac * 0.04)
				st.ShuffleRead = int64(frac * 0.04)
			}
			qq.Stages = append(qq.Stages, st)
		}
		out = append(out, qq)
	}
	return out
}

// StageResult is the timing decomposition of one stage.
type StageResult struct {
	Compute  float64
	CodecCPU float64
	AccelSec float64
	IO       float64
	Total    float64
}

// RunStage computes elapsed time for one stage.
func RunStage(st Stage, c Cluster, codec Codec) StageResult {
	cores := float64(c.Nodes * c.CoresPerNode)
	var r StageResult
	r.Compute = st.ComputeSec

	compBytes := float64(st.ShuffleWrite + st.SpillBytes)
	decompBytes := float64(st.ShuffleRead + st.SpillBytes)

	if codec.Offloaded {
		accels := float64(c.Nodes * c.AccelPerNode)
		requests := (compBytes + decompBytes) / (1 << 20) // ~1 MiB partitions
		r.AccelSec = (compBytes+decompBytes)/(codec.AccelRate*accels) +
			requests*codec.AccelOverhead/accels
		// Residual CPU assist competes with compute.
		r.CodecCPU = codec.CPUAssistFraction * (compBytes + decompBytes) / (200e6 * cores)
	} else {
		r.CodecCPU = compBytes/(codec.CompRate*cores) + decompBytes/(codec.DecompRate*cores)
	}

	// I/O moves compressed bytes.
	r.IO = compBytes/codec.Ratio/(c.DiskBW*float64(c.Nodes)) +
		decompBytes/codec.Ratio/(c.NetBW*float64(c.Nodes))

	// Codec CPU serializes with compute (same cores); accelerator time and
	// I/O overlap with whichever is longer.
	cpu := r.Compute + r.CodecCPU
	overlapped := maxf(r.IO, r.AccelSec)
	r.Total = maxf(cpu, overlapped) + 0.25*minf(cpu, overlapped)
	return r
}

// Result summarizes a full run.
type Result struct {
	Codec      string
	ElapsedSec float64
	CodecCPU   float64 // total core-seconds burned by the codec
	IOSec      float64
	PerQuery   []float64
}

// Run executes the whole query list under a codec.
func Run(queries []Query, c Cluster, codec Codec) Result {
	res := Result{Codec: codec.Name}
	for _, q := range queries {
		var qt float64
		for _, st := range q.Stages {
			sr := RunStage(st, c, codec)
			qt += sr.Total
			res.CodecCPU += sr.CodecCPU
			res.IOSec += sr.IO
		}
		res.PerQuery = append(res.PerQuery, qt)
		res.ElapsedSec += qt
	}
	return res
}

// Speedup returns (baseline - accelerated) / baseline as a fraction.
func Speedup(baseline, accelerated Result) float64 {
	if baseline.ElapsedSec == 0 {
		return 0
	}
	return (baseline.ElapsedSec - accelerated.ElapsedSec) / baseline.ElapsedSec
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
