package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterBasic(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11, 2)
	w.WriteBits(0b0, 1)
	w.WriteBits(0b11, 2)
	// bits, LSB first: 1 0 1 1 1 0 1 1 -> byte 0b11011101 = 0xDD
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0xDD {
		t.Fatalf("got % x, want dd", got)
	}
}

func TestWriterCrossesByteBoundary(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0xABCD, 16)
	got := w.Bytes()
	want := []byte{0xCD, 0xAB}
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x want % x", got, want)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(1, 1)
	if pad := w.AlignByte(); pad != 7 {
		t.Fatalf("pad = %d, want 7", pad)
	}
	if !w.Aligned() {
		t.Fatal("not aligned after AlignByte")
	}
	if pad := w.AlignByte(); pad != 0 {
		t.Fatalf("second AlignByte pad = %d, want 0", pad)
	}
	w.WriteBytes([]byte{0x42})
	got := w.Bytes()
	want := []byte{0x01, 0x42}
	if !bytes.Equal(got, want) {
		t.Fatalf("got % x want % x", got, want)
	}
}

func TestBitsWritten(t *testing.T) {
	w := NewWriter(nil)
	if w.BitsWritten() != 0 {
		t.Fatal("fresh writer has bits")
	}
	w.WriteBits(0, 5)
	if got := w.BitsWritten(); got != 5 {
		t.Fatalf("BitsWritten = %d, want 5", got)
	}
	w.WriteBits(0, 13)
	if got := w.BitsWritten(); got != 18 {
		t.Fatalf("BitsWritten = %d, want 18", got)
	}
}

func TestWriteBytesUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unaligned WriteBytes")
		}
	}()
	w := NewWriter(nil)
	w.WriteBits(1, 1)
	w.WriteBytes([]byte{0})
}

func TestReaderBasic(t *testing.T) {
	r := NewReader([]byte{0xDD})
	for i, want := range []uint64{0b101, 0b11, 0, 0b11} {
		n := []uint{3, 2, 1, 2}[i]
		got, err := r.ReadBits(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("field %d: got %b want %b", i, got, want)
		}
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderPeekAndSkip(t *testing.T) {
	r := NewReader([]byte{0xCD, 0xAB})
	v, avail := r.PeekBits(16)
	if avail != 16 || v != 0xABCD {
		t.Fatalf("peek got %x/%d", v, avail)
	}
	if err := r.SkipBits(4); err != nil {
		t.Fatal(err)
	}
	v, _ = r.PeekBits(12)
	if v != 0xABC {
		t.Fatalf("after skip got %x", v)
	}
	// Peek past EOF: available bits capped.
	if err := r.SkipBits(12); err != nil {
		t.Fatal(err)
	}
	_, avail = r.PeekBits(8)
	if avail != 0 {
		t.Fatalf("avail at EOF = %d", avail)
	}
}

func TestReaderAlignAndBytes(t *testing.T) {
	r := NewReader([]byte{0x01, 0x42, 0x43})
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	if drop := r.AlignByte(); drop != 7 {
		t.Fatalf("drop = %d", drop)
	}
	p := make([]byte, 2)
	if err := r.ReadBytes(p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{0x42, 0x43}) {
		t.Fatalf("ReadBytes got % x", p)
	}
	if err := r.ReadBytes(make([]byte, 1)); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestReaderBitsAccounting(t *testing.T) {
	r := NewReader(make([]byte, 4))
	if r.BitsRemaining() != 32 || r.BitsConsumed() != 0 {
		t.Fatal("fresh accounting wrong")
	}
	_, _ = r.ReadBits(11)
	if r.BitsConsumed() != 11 || r.BitsRemaining() != 21 {
		t.Fatalf("consumed=%d remaining=%d", r.BitsConsumed(), r.BitsRemaining())
	}
}

func TestReverse(t *testing.T) {
	cases := []struct {
		v    uint32
		n    uint
		want uint32
	}{
		{0b1, 1, 0b1},
		{0b10, 2, 0b01},
		{0b110, 3, 0b011},
		{0x1, 15, 0x4000},
		{0, 8, 0},
	}
	for _, c := range cases {
		if got := Reverse(c.v, c.n); got != c.want {
			t.Errorf("Reverse(%b,%d) = %b, want %b", c.v, c.n, got, c.want)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(v uint32, n8 uint8) bool {
		n := uint(n8%16) + 1
		v &= (1 << n) - 1
		return Reverse(Reverse(v, n), n) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripRandom writes random-width fields and reads them back.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		type field struct {
			v uint64
			n uint
		}
		var fields []field
		w := NewWriter(nil)
		nf := rng.Intn(300)
		for i := 0; i < nf; i++ {
			n := uint(rng.Intn(48) + 1)
			v := rng.Uint64() & ((1 << n) - 1)
			fields = append(fields, field{v, n})
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, f := range fields {
			got, err := r.ReadBits(f.n)
			if err != nil {
				t.Fatalf("trial %d field %d: %v", trial, i, err)
			}
			if got != f.v {
				t.Fatalf("trial %d field %d: got %x want %x", trial, i, got, f.v)
			}
		}
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(nil)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitsWritten() != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteBits(0x2, 2)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0x02 {
		t.Fatalf("after reset got % x", got)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(make([]byte, 0, 1<<20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitsWritten() > 1<<22 {
			w.Reset()
		}
		w.WriteBits(uint64(i), uint(i%32)+1)
	}
}

func BenchmarkReadBits(b *testing.B) {
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := NewReader(data)
	b.SetBytes(4)
	for i := 0; i < b.N; i++ {
		if r.BitsRemaining() < 64 {
			r.Reset(data)
		}
		_, _ = r.ReadBits(32)
	}
}
