package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the input.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int    // next byte index to load
	acc  uint64 // bit accumulator
	nacc uint   // valid bits in acc
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-points the Reader at data and rewinds it.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

// fill loads bytes into the accumulator until it holds at least want bits
// or input is exhausted.
func (r *Reader) fill(want uint) {
	for r.nacc < want && r.pos < len(r.data) {
		r.acc |= uint64(r.data[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// ReadBits reads n bits (n <= 48) and returns them as the low bits of the
// result. It returns ErrUnexpectedEOF if fewer than n bits remain.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 48 {
		panic("bitio: ReadBits count out of range")
	}
	r.fill(n)
	if r.nacc < n {
		return 0, ErrUnexpectedEOF
	}
	v := r.acc & ((1 << n) - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

// PeekBits returns up to n bits without consuming them. If fewer than n
// bits remain, the missing high bits are zero; ok reports how many bits
// were actually available. Decoders use this for table lookups near EOF.
func (r *Reader) PeekBits(n uint) (v uint64, avail uint) {
	if n > 48 {
		panic("bitio: PeekBits count out of range")
	}
	r.fill(n)
	avail = r.nacc
	if avail > n {
		avail = n
	}
	return r.acc & ((1 << n) - 1), avail
}

// SkipBits discards n bits. It returns ErrUnexpectedEOF if fewer remain.
func (r *Reader) SkipBits(n uint) error {
	for n > 48 {
		if _, err := r.ReadBits(48); err != nil {
			return err
		}
		n -= 48
	}
	_, err := r.ReadBits(n)
	return err
}

// ReadBool reads a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// AlignByte discards bits up to the next byte boundary and returns the
// number discarded (0..7).
func (r *Reader) AlignByte() uint {
	drop := r.nacc % 8
	r.acc >>= drop
	r.nacc -= drop
	return drop
}

// ReadBytes copies n whole bytes into p's first n entries after aligning is
// the caller's responsibility; the stream must already be byte-aligned.
func (r *Reader) ReadBytes(p []byte) error {
	if r.nacc%8 != 0 {
		panic("bitio: ReadBytes on unaligned stream")
	}
	for i := range p {
		if r.nacc >= 8 {
			p[i] = byte(r.acc)
			r.acc >>= 8
			r.nacc -= 8
			continue
		}
		if r.pos >= len(r.data) {
			return fmt.Errorf("%w: need %d more bytes", ErrUnexpectedEOF, len(p)-i)
		}
		p[i] = r.data[r.pos]
		r.pos++
	}
	return nil
}

// BitsRemaining reports the number of unread bits.
func (r *Reader) BitsRemaining() int {
	return (len(r.data)-r.pos)*8 + int(r.nacc)
}

// BitsConsumed reports the number of bits consumed so far.
func (r *Reader) BitsConsumed() int {
	return len(r.data)*8 - r.BitsRemaining()
}

// Reverse returns the low n bits of v in reversed order. DEFLATE stores
// Huffman codes MSB-first inside the LSB-first transport, so encoders
// reverse each code once at table-build time.
func Reverse(v uint32, n uint) uint32 {
	var out uint32
	for i := uint(0); i < n; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}
