// Package bitio implements least-significant-bit-first bit streams as used
// by the DEFLATE format (RFC 1951) and by the POWER9/z15 compression
// accelerator's output stage.
//
// DEFLATE packs bits into bytes starting at the least significant bit.
// Huffman codes are written most-significant-bit first *within the code*
// (i.e. the code must be bit-reversed before being fed to WriteBits), while
// extra-bit fields and lengths are written LSB-first as plain integers.
// This package deals only in the raw LSB-first transport; callers perform
// any per-field bit reversal.
package bitio

// Writer accumulates bits LSB-first into an in-memory buffer.
//
// The zero value is ready to use. Writer never fails: all state lives in
// memory and growth is handled by append.
type Writer struct {
	buf   []byte
	acc   uint64 // bit accumulator, valid low `nacc` bits
	nacc  uint   // number of valid bits in acc (< 8 after flushAcc)
	start int    // length of buf at last Reset, for Len accounting
}

// NewWriter returns a Writer that appends to buf (which may be nil).
func NewWriter(buf []byte) *Writer {
	return &Writer{buf: buf, start: len(buf)}
}

// Reset discards all written data and starts over with an empty buffer,
// retaining the allocated storage.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nacc = 0
	w.start = 0
}

// ResetTo discards all state and continues appending to buf, which must
// be byte-aligned (any []byte is). Unlike Reset it adopts the caller's
// buffer, so an encoder can emit directly into caller-owned storage
// without the Writer holding onto it afterwards.
func (w *Writer) ResetTo(buf []byte) {
	w.buf = buf
	w.acc = 0
	w.nacc = 0
	w.start = len(buf)
}

// WriteBits writes the low n bits of v, LSB first. n must be in [0, 48].
// Bits above n in v are ignored.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 48 {
		panic("bitio: WriteBits count out of range")
	}
	v &= (1 << n) - 1
	w.acc |= v << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// WriteBool writes a single bit.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// AlignByte pads the stream with zero bits up to the next byte boundary.
// It returns the number of padding bits written (0..7).
func (w *Writer) AlignByte() uint {
	pad := (8 - w.nacc%8) % 8
	if pad > 0 {
		w.WriteBits(0, pad)
	}
	return pad
}

// WriteBytes writes whole bytes. The stream must be byte-aligned; callers
// that may be mid-byte should call AlignByte first. Panics otherwise, since
// an unaligned byte copy indicates an encoder bug, not an input error.
func (w *Writer) WriteBytes(p []byte) {
	if w.nacc != 0 {
		panic("bitio: WriteBytes on unaligned stream")
	}
	w.buf = append(w.buf, p...)
}

// BitsWritten reports the total number of bits written since creation or
// the last Reset, including bits still in the accumulator.
func (w *Writer) BitsWritten() int {
	return (len(w.buf)-w.start)*8 + int(w.nacc)
}

// Bytes flushes the accumulator (zero-padding to a byte boundary) and
// returns the underlying buffer. The Writer remains usable; subsequent
// writes continue byte-aligned.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Aligned reports whether the stream is currently at a byte boundary.
func (w *Writer) Aligned() bool { return w.nacc == 0 }
