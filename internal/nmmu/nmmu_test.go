package nmmu

import (
	"errors"
	"testing"
)

func newTestMMU() *MMU {
	cfg := DefaultConfig()
	cfg.PageSize = 4096 // small pages make range tests cheap
	cfg.ERATEntries = 4
	m := New(cfg)
	m.CreateSpace(1)
	return m
}

func TestTranslateResident(t *testing.T) {
	m := newTestMMU()
	if err := m.Map(1, 0x10000, 8192, true); err != nil {
		t.Fatal(err)
	}
	pa1, c1, err := m.Translate(1, 0x10010)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != m.Config().WalkCycles {
		t.Fatalf("first access cost %d, want walk %d", c1, m.Config().WalkCycles)
	}
	// Second access: ERAT hit, cheap, same PA.
	pa2, c2, err := m.Translate(1, 0x10020)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != m.Config().ERATHitCycles {
		t.Fatalf("hit cost %d", c2)
	}
	if pa2 != pa1+0x10 {
		t.Fatalf("same-page offsets disagree: %#x vs %#x", pa1, pa2)
	}
}

func TestTranslateFaultNonResident(t *testing.T) {
	m := newTestMMU()
	if err := m.Map(1, 0x20000, 4096, false); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Translate(1, 0x20000)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want Fault", err)
	}
	if f.VA != 0x20000 || f.PID != 1 {
		t.Fatalf("fault = %+v", f)
	}
	// Touch-and-retry succeeds: the demand-paging protocol.
	if err := m.Touch(1, 0x20000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Translate(1, 0x20000); err != nil {
		t.Fatalf("after touch: %v", err)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	m := newTestMMU()
	if _, _, err := m.Translate(1, 0xdead0000); err == nil {
		t.Fatal("unmapped address translated")
	}
	if _, _, err := m.Translate(99, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("unknown pid: %v", err)
	}
	if err := m.Touch(1, 0xdead0000); err == nil {
		t.Fatal("touch of unmapped accepted")
	}
}

func TestTranslateRange(t *testing.T) {
	m := newTestMMU()
	if err := m.Map(1, 0x40000, 5*4096, true); err != nil {
		t.Fatal(err)
	}
	cycles, err := m.TranslateRange(1, 0x40000, 5*4096)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * m.Config().WalkCycles; cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
	// Second pass: but ERAT holds only 4 entries with FIFO replacement,
	// so a 5-page sequential walk keeps missing (classic thrash).
	cycles2, err := m.TranslateRange(1, 0x40000, 5*4096)
	if err != nil {
		t.Fatal(err)
	}
	if cycles2 != cycles {
		t.Fatalf("thrash pass cost %d, want %d", cycles2, cycles)
	}
}

func TestTranslateRangeMidFault(t *testing.T) {
	m := newTestMMU()
	if err := m.Map(1, 0x50000, 4*4096, true); err != nil {
		t.Fatal(err)
	}
	m.Evict(1, 0x52000) // third page gone
	cycles, err := m.TranslateRange(1, 0x50000, 4*4096)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if f.VA != 0x52000 {
		t.Fatalf("fault at %#x", f.VA)
	}
	if cycles <= 0 {
		t.Fatal("no cycles charged before fault")
	}
	st := m.Stats()
	if st.Faults != 1 {
		t.Fatalf("faults = %d", st.Faults)
	}
}

func TestERATInvalidate(t *testing.T) {
	m := newTestMMU()
	m.Map(1, 0, 4096, true)
	m.Translate(1, 0)
	m.Translate(1, 16) // hit
	m.InvalidateERAT()
	_, c, err := m.Translate(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c != m.Config().WalkCycles {
		t.Fatalf("post-invalidate cost %d", c)
	}
}

func TestEvictDropsERAT(t *testing.T) {
	m := newTestMMU()
	m.Map(1, 0, 4096, true)
	m.Translate(1, 0)
	m.Evict(1, 0)
	if _, _, err := m.Translate(1, 0); err == nil {
		t.Fatal("evicted page still translates (stale ERAT)")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := newTestMMU()
	m.Map(1, 0, 2*4096, true)
	m.Translate(1, 0)
	m.Translate(1, 8)
	m.Translate(1, 4096)
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Cycles != 2*m.Config().WalkCycles+m.Config().ERATHitCycles {
		t.Fatalf("cycles = %d", st.Cycles)
	}
}

func TestMapZeroLength(t *testing.T) {
	m := newTestMMU()
	if err := m.Map(1, 0x1000, 0, true); err != nil {
		t.Fatal(err)
	}
	if c, err := m.TranslateRange(1, 0x1000, 0); err != nil || c != 0 {
		t.Fatalf("zero-length range: %d, %v", c, err)
	}
}

func TestDistinctSpacesDistinctPAs(t *testing.T) {
	m := newTestMMU()
	m.CreateSpace(2)
	m.Map(1, 0, 4096, true)
	m.Map(2, 0, 4096, true)
	pa1, _, err := m.Translate(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa2, _, err := m.Translate(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa1 == pa2 {
		t.Fatal("two spaces share a physical page")
	}
}
