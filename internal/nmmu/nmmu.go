// Package nmmu models the Nest MMU, the shared address-translation unit
// that lets the on-chip accelerator operate directly on user virtual
// addresses. This is one of the system-integration pieces the paper calls
// out: the accelerator needs no pinned buffers or kernel bounce buffers —
// it walks the same page tables as the cores, caches translations in an
// ERAT, and reports translation faults to software, which touches the page
// and resubmits the request.
package nmmu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nxzip/internal/faultinject"
	"nxzip/internal/telemetry"
)

// PID identifies an address space (process).
type PID int

// Fault is the error reported when a virtual address has no valid,
// present translation. The device model copies the address into the CSB so
// the OS can touch it and resubmit.
type Fault struct {
	PID PID
	VA  uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("nmmu: translation fault pid %d va %#x", f.PID, f.VA)
}

// ErrNoSpace is returned for an unknown address space.
var ErrNoSpace = errors.New("nmmu: unknown address space")

// pageState tracks one virtual page.
type pageState struct {
	present bool   // backed by a physical page right now
	pa      uint64 // assigned physical page number << pageShift
}

// Config sets geometry and timing.
type Config struct {
	PageSize        int   // bytes; POWER9 uses 64 KiB pages for NX buffers
	ERATEntries     int   // translation cache entries
	ERATHitCycles   int64 // per translated page on hit
	WalkCycles      int64 // page-table walk on ERAT miss
	FaultTripCycles int64 // engine-side cost of detecting + reporting a fault
}

// DefaultConfig mirrors the POWER9 nest: 64 KiB pages, a small ERAT, and a
// multi-hundred-cycle table walk.
func DefaultConfig() Config {
	return Config{
		PageSize:        64 << 10,
		ERATEntries:     32,
		ERATHitCycles:   1,
		WalkCycles:      300,
		FaultTripCycles: 1000,
	}
}

// Stats counts translation activity.
type Stats struct {
	Hits    int64
	Misses  int64
	Faults  int64
	Touches int64 // OS touch-and-resubmit fault handling rounds
	Cycles  int64 // total translation cycles spent
	// InjectedFaults counts faults forced by the fault injector on pages
	// that were actually resident (included in Faults too).
	InjectedFaults int64
}

// RangeStats is the per-call accounting of one TranslateRangeStats:
// cycles charged plus the ERAT hit/miss split, so a request span can
// attribute translation behaviour to the extent that caused it.
type RangeStats struct {
	Cycles int64
	Hits   int64
	Misses int64
}

// metrics holds pre-resolved registry instruments (nil when no registry
// is installed).
type metrics struct {
	hits    *telemetry.Counter
	misses  *telemetry.Counter
	faults  *telemetry.Counter
	touches *telemetry.Counter
}

// MMU is the translation unit. Safe for concurrent use.
type MMU struct {
	cfg Config

	mu     sync.Mutex
	spaces map[PID]*space
	erat   map[eratKey]uint64 // (pid, vpn) -> pa
	eratQ  []eratKey          // FIFO replacement order
	nextPA uint64
	stats  Stats
	met    *metrics

	inj atomic.Pointer[faultinject.Injector]
}

type space struct {
	pages map[uint64]*pageState // vpn -> state
}

type eratKey struct {
	pid PID
	vpn uint64
}

// New builds an MMU.
func New(cfg Config) *MMU {
	if cfg.PageSize <= 0 {
		cfg = DefaultConfig()
	}
	return &MMU{
		cfg:    cfg,
		spaces: make(map[PID]*space),
		erat:   make(map[eratKey]uint64),
	}
}

// Config returns the active configuration.
func (m *MMU) Config() Config { return m.cfg }

// SetMetrics attaches a telemetry registry ("nmmu.*" namespace).
// Instruments are resolved once; afterwards every update is an atomic op.
func (m *MMU) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	met := &metrics{
		hits:    reg.Counter("nmmu.erat_hits"),
		misses:  reg.Counter("nmmu.erat_misses"),
		faults:  reg.Counter("nmmu.faults"),
		touches: reg.Counter("nmmu.touches"),
	}
	m.mu.Lock()
	m.met = met
	m.mu.Unlock()
}

// SetInjector installs (or, with nil, removes) the fault injector
// consulted on every translation to force faults on resident pages — a
// translation-fault storm at high rates.
func (m *MMU) SetInjector(inj *faultinject.Injector) { m.inj.Store(inj) }

// CreateSpace registers an address space for pid (idempotent).
func (m *MMU) CreateSpace(pid PID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.spaces[pid]; !ok {
		m.spaces[pid] = &space{pages: make(map[uint64]*pageState)}
	}
}

// Map creates valid translations for [va, va+length), initially present
// (resident) or not according to resident. Non-resident pages fault on
// first access until touched, modelling demand paging.
func (m *MMU) Map(pid PID, va uint64, length int, resident bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.spaces[pid]
	if !ok {
		return ErrNoSpace
	}
	ps := uint64(m.cfg.PageSize)
	for vpn := va / ps; vpn <= (va+uint64(length)-1)/ps; vpn++ {
		if length == 0 {
			break
		}
		if _, exists := sp.pages[vpn]; !exists {
			m.nextPA++
			sp.pages[vpn] = &pageState{present: resident, pa: m.nextPA * ps}
		} else if resident {
			sp.pages[vpn].present = true
		}
	}
	return nil
}

// Touch makes the page containing va present (what the OS fault handler
// does before resubmitting a faulted request). It is an error to touch an
// unmapped address.
func (m *MMU) Touch(pid PID, va uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.spaces[pid]
	if !ok {
		return ErrNoSpace
	}
	vpn := va / uint64(m.cfg.PageSize)
	st, ok := sp.pages[vpn]
	if !ok {
		return fmt.Errorf("nmmu: touch of unmapped va %#x", va)
	}
	st.present = true
	m.stats.Touches++
	if m.met != nil {
		m.met.touches.Inc()
	}
	return nil
}

// Evict marks the page containing va not-present (page stolen by the OS),
// and drops any cached translation.
func (m *MMU) Evict(pid PID, va uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.spaces[pid]
	if !ok {
		return
	}
	vpn := va / uint64(m.cfg.PageSize)
	if st, ok := sp.pages[vpn]; ok {
		st.present = false
	}
	delete(m.erat, eratKey{pid, vpn})
}

// Translate resolves one virtual address, charging ERAT/walk cycles to the
// returned count. On a translation fault the cycles already spent are
// still reported.
func (m *MMU) Translate(pid PID, va uint64) (pa uint64, cycles int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pa, cycles, _, err = m.translateLocked(pid, va)
	return pa, cycles, err
}

func (m *MMU) translateLocked(pid PID, va uint64) (pa uint64, cycles int64, hit bool, err error) {
	sp, ok := m.spaces[pid]
	if !ok {
		return 0, 0, false, ErrNoSpace
	}
	ps := uint64(m.cfg.PageSize)
	vpn := va / ps
	if m.inj.Load().Decide(faultinject.TransFault) {
		// Injected fault: report the page not translatable even when it
		// is resident. The OS touch-and-resubmit protocol runs exactly as
		// for a real fault; the submit-side round cap bounds the storm.
		m.stats.Faults++
		m.stats.InjectedFaults++
		if m.met != nil {
			m.met.faults.Inc()
		}
		cycles = m.cfg.WalkCycles + m.cfg.FaultTripCycles
		m.stats.Cycles += cycles
		delete(m.erat, eratKey{pid, vpn})
		return 0, cycles, false, &Fault{PID: pid, VA: va}
	}
	key := eratKey{pid, vpn}
	if pa, ok := m.erat[key]; ok {
		m.stats.Hits++
		m.stats.Cycles += m.cfg.ERATHitCycles
		if m.met != nil {
			m.met.hits.Inc()
		}
		return pa + va%ps, m.cfg.ERATHitCycles, true, nil
	}
	m.stats.Misses++
	if m.met != nil {
		m.met.misses.Inc()
	}
	cycles = m.cfg.WalkCycles
	st, ok := sp.pages[vpn]
	if !ok || !st.present {
		m.stats.Faults++
		if m.met != nil {
			m.met.faults.Inc()
		}
		cycles += m.cfg.FaultTripCycles
		m.stats.Cycles += cycles
		return 0, cycles, false, &Fault{PID: pid, VA: va}
	}
	m.insertERAT(key, st.pa)
	m.stats.Cycles += cycles
	return st.pa + va%ps, cycles, false, nil
}

// TranslateRange resolves every page in [va, va+length), returning the
// accumulated translation cycles. On fault it reports the faulting VA and
// the cycles spent up to and including the fault.
func (m *MMU) TranslateRange(pid PID, va uint64, length int) (cycles int64, err error) {
	rs, err := m.TranslateRangeStats(pid, va, length)
	return rs.Cycles, err
}

// TranslateRangeStats is TranslateRange plus the per-call ERAT hit/miss
// split, for callers (the engine) that attribute translation behaviour
// to individual request extents.
func (m *MMU) TranslateRangeStats(pid PID, va uint64, length int) (rs RangeStats, err error) {
	if length <= 0 {
		return RangeStats{}, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := uint64(m.cfg.PageSize)
	for p := va / ps; p <= (va+uint64(length)-1)/ps; p++ {
		_, c, hit, err := m.translateLocked(pid, p*ps)
		rs.Cycles += c
		if hit {
			rs.Hits++
		} else {
			rs.Misses++
		}
		if err != nil {
			return rs, err
		}
	}
	return rs, nil
}

func (m *MMU) insertERAT(key eratKey, pa uint64) {
	if len(m.erat) >= m.cfg.ERATEntries {
		// FIFO eviction; shift in place so the queue reuses its backing
		// array instead of advancing it and reallocating on every append.
		old := m.eratQ[0]
		copy(m.eratQ, m.eratQ[1:])
		m.eratQ = m.eratQ[:len(m.eratQ)-1]
		delete(m.erat, old)
	}
	m.erat[key] = pa
	m.eratQ = append(m.eratQ, key)
}

// Unmap removes the translations for [va, va+length) and drops their
// cached ERAT entries. Software frees the virtual range; subsequent
// device access faults as unmapped.
func (m *MMU) Unmap(pid PID, va uint64, length int) {
	if length <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.spaces[pid]
	if !ok {
		return
	}
	ps := uint64(m.cfg.PageSize)
	for vpn := va / ps; vpn <= (va+uint64(length)-1)/ps; vpn++ {
		delete(sp.pages, vpn)
		delete(m.erat, eratKey{pid, vpn})
	}
}

// MappedPages reports how many virtual pages pid currently has valid
// translations for — the regression handle that catches request paths
// minting fresh mappings forever instead of reusing or releasing them.
func (m *MMU) MappedPages(pid PID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, ok := m.spaces[pid]
	if !ok {
		return 0
	}
	return len(sp.pages)
}

// InvalidateERAT drops all cached translations (context switch / tlbie).
func (m *MMU) InvalidateERAT() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.erat = make(map[eratKey]uint64)
	m.eratQ = nil
}

// Stats returns a snapshot of translation counters.
func (m *MMU) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
