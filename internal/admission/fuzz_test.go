package admission

import "testing"

// FuzzParseConfig fuzzes the -admission flag grammar: whatever the
// input, ParseConfig must return cleanly (no panic) and any accepted
// config must survive withDefaults with ordered thresholds and sane
// bounds — the invariants the controller relies on.
func FuzzParseConfig(f *testing.F) {
	f.Add("")
	f.Add("inflight=32,queue=10")
	f.Add("target=2ms,interval=50ms,maxwait=100ms")
	f.Add("bg=0.5,batch=0.7,alpha=0.9")
	f.Add("inflight=,queue==,target=2")
	f.Add("bg=1e308,alpha=0.0000001")
	f.Add(",,,=,")
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseConfig(s)
		if err != nil {
			return
		}
		d := cfg.withDefaults()
		if d.ShedBatch < d.ShedBackground {
			t.Fatalf("ParseConfig(%q): thresholds inverted after defaults: %+v", s, d)
		}
		if d.PressureAlpha <= 0 || d.PressureAlpha > 1 {
			t.Fatalf("ParseConfig(%q): alpha out of range: %+v", s, d)
		}
		if d.QueueLimit <= 0 || d.QueueTarget <= 0 || d.QueueInterval <= 0 || d.MaxWait <= 0 {
			t.Fatalf("ParseConfig(%q): non-positive queue bounds: %+v", s, d)
		}
	})
}
