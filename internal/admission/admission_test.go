package admission

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// admitN admits n requests of class cl and returns their tickets,
// failing the test on any shed.
func admitN(t *testing.T, c *Controller, cl Class, tenant uint64, n int) []*Ticket {
	t.Helper()
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, dec, err := c.Admit(AdmitRequest{Class: cl, Tenant: tenant})
		if err != nil || dec != DecisionAdmit {
			t.Fatalf("admit %d/%d: dec=%v err=%v", i, n, dec, err)
		}
		tickets = append(tickets, tk)
	}
	return tickets
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	tk, dec, err := c.Admit(AdmitRequest{Class: Background})
	if err != nil || dec != DecisionAdmit {
		t.Fatalf("nil controller: dec=%v err=%v", dec, err)
	}
	tk.Release() // nil ticket must be safe
	if s := c.StatusNow(); s.Inflight != 0 {
		t.Fatalf("nil controller status: %+v", s)
	}
}

func TestAdmitNormalLoadAllClasses(t *testing.T) {
	c := NewController(Config{MaxInflight: 8}, nil, nil)
	for _, cl := range []Class{Interactive, Batch, Background} {
		tk, dec, err := c.Admit(AdmitRequest{Class: cl})
		if err != nil || dec != DecisionAdmit || tk == nil {
			t.Fatalf("%v: dec=%v err=%v", cl, dec, err)
		}
		tk.Release()
	}
	s := c.StatusNow()
	if s.Inflight != 0 || s.Level != "normal" {
		t.Fatalf("after release: %+v", s)
	}
}

func TestTicketReleaseIdempotent(t *testing.T) {
	c := NewController(Config{MaxInflight: 2}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]
	tk.Release()
	tk.Release()
	if got := c.StatusNow().Inflight; got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}

// TestBrownoutLadder drives pressure through the rungs with a synthetic
// probe and checks each class's fate at each rung.
func TestBrownoutLadder(t *testing.T) {
	var mu sync.Mutex
	occ := 0.0
	probe := func() Load {
		mu.Lock()
		defer mu.Unlock()
		return Load{Queued: occ, Capacity: 1}
	}
	setOcc := func(v float64) { mu.Lock(); occ = v; mu.Unlock() }
	// alpha=1: the EWMA tracks the probe instantly; period tiny so every
	// Admit resamples.
	c := NewController(Config{MaxInflight: 100, PressureAlpha: 1, PressurePeriod: time.Nanosecond}, probe, nil)

	// Rung 1: background denied, batch and interactive admitted.
	setOcc(0.80)
	if _, _, err := c.Admit(AdmitRequest{Class: Background}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("background at 0.80: err=%v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	_, _, err := c.Admit(AdmitRequest{Class: Background})
	if !errors.As(err, &oe) || oe.Reason != "brownout" || oe.RetryAfter <= 0 {
		t.Fatalf("background shed error = %#v", err)
	}
	for _, cl := range []Class{Interactive, Batch} {
		tk, dec, err := c.Admit(AdmitRequest{Class: cl})
		if err != nil || dec != DecisionAdmit {
			t.Fatalf("%v at 0.80: dec=%v err=%v", cl, dec, err)
		}
		tk.Release()
	}

	// Rung 2: batch degrades to software, interactive still admitted.
	setOcc(0.95)
	if _, dec, err := c.Admit(AdmitRequest{Class: Batch}); err != nil || dec != DecisionDegrade {
		t.Fatalf("batch at 0.95: dec=%v err=%v, want DecisionDegrade", dec, err)
	}
	tk, dec, err := c.Admit(AdmitRequest{Class: Interactive})
	if err != nil || dec != DecisionAdmit {
		t.Fatalf("interactive at 0.95: dec=%v err=%v", dec, err)
	}
	tk.Release()

	// Back to calm: everything admits again (work-conserving).
	setOcc(0.0)
	tk, dec, err = c.Admit(AdmitRequest{Class: Background})
	if err != nil || dec != DecisionAdmit {
		t.Fatalf("background after recovery: dec=%v err=%v", dec, err)
	}
	tk.Release()

	s := c.StatusNow()
	if s.Shed[Background] != 2 || s.Degraded[Batch] != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// TestSaturationQueueGrant fills every slot, parks an interactive
// waiter, and checks a Release hands it the slot.
func TestSaturationQueueGrant(t *testing.T) {
	c := NewController(Config{MaxInflight: 2, MaxWait: time.Second}, nil, nil)
	tickets := admitN(t, c, Interactive, 1, 2)

	got := make(chan error, 1)
	go func() {
		tk, dec, err := c.Admit(AdmitRequest{Class: Interactive})
		if err == nil && dec == DecisionAdmit {
			tk.Release()
		}
		got <- err
	}()
	// Wait until the waiter is parked, then free a slot.
	deadline := time.Now().Add(time.Second)
	for c.StatusNow().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	tickets[0].Release()
	if err := <-got; err != nil {
		t.Fatalf("queued interactive request: %v", err)
	}
	tickets[1].Release()
	if s := c.StatusNow(); s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("final status: %+v", s)
	}
}

// TestSaturationShedsBatchAndBackground: with every slot held, batch
// degrades and background sheds instead of queueing.
func TestSaturationShedsBatchAndBackground(t *testing.T) {
	c := NewController(Config{MaxInflight: 1}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]
	defer tk.Release()

	if _, dec, err := c.Admit(AdmitRequest{Class: Batch}); err != nil || dec != DecisionDegrade {
		t.Fatalf("saturated batch: dec=%v err=%v", dec, err)
	}
	if _, _, err := c.Admit(AdmitRequest{Class: Background}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated background: err=%v", err)
	}
}

func TestQueueTimeoutAndLimit(t *testing.T) {
	c := NewController(Config{MaxInflight: 1, QueueLimit: 1, MaxWait: 20 * time.Millisecond}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]
	defer tk.Release()

	// First waiter occupies the queue slot and will time out.
	first := make(chan error, 1)
	go func() {
		_, _, err := c.Admit(AdmitRequest{Class: Interactive})
		first <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.StatusNow().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Second interactive request overflows the bounded queue.
	var oe *OverloadError
	if _, _, err := c.Admit(AdmitRequest{Class: Interactive}); !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Fatalf("queue overflow: %v", err)
	}
	// And the first eventually sheds on queue-timeout.
	err := <-first
	if !errors.As(err, &oe) || oe.Reason != "queue-timeout" {
		t.Fatalf("queue timeout: %v", err)
	}
}

func TestQueueDeadlineAndCancel(t *testing.T) {
	c := NewController(Config{MaxInflight: 1, MaxWait: time.Second}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]
	defer tk.Release()

	// Deadline tighter than MaxWait evicts with reason "deadline".
	var oe *OverloadError
	_, _, err := c.Admit(AdmitRequest{Class: Interactive, Deadline: time.Now().Add(10 * time.Millisecond)})
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("deadline eviction: %v", err)
	}

	// Cancel aborts the wait with ErrCanceled (not overload).
	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Admit(AdmitRequest{Class: Interactive, Cancel: cancel})
		got <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.StatusNow().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(cancel)
	if err := <-got; !errors.Is(err, ErrCanceled) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancel: %v", err)
	}
}

// TestTenantQuota: under brownout a heavy tenant is capped at its
// weight share while a light tenant still admits; at normal load the
// same tenant may use the whole node (work-conserving).
func TestTenantQuota(t *testing.T) {
	var mu sync.Mutex
	occ := 0.0
	probe := func() Load {
		mu.Lock()
		defer mu.Unlock()
		return Load{Queued: occ, Capacity: 1}
	}
	// ShedBackground sits above 3/4 so the in-flight fraction of a full
	// calm node does not itself trip brownout.
	c := NewController(Config{MaxInflight: 4, ShedBackground: 0.76, ShedBatch: 0.95,
		PressureAlpha: 1, PressurePeriod: time.Nanosecond}, probe, nil)
	c.RegisterTenant(1, 1)
	c.RegisterTenant(2, 1)

	// Calm: tenant 1 takes every slot.
	all := admitN(t, c, Interactive, 1, 4)
	for _, tk := range all {
		tk.Release()
	}
	// Tenant 2 issues traffic so it counts as active: quotas divide only
	// among tenants in the activity window, not every tenant ever seen.
	admitN(t, c, Interactive, 2, 1)[0].Release()

	// Brownout: both tenants are active, so tenant 1's quota is
	// ceil(1/2 · 4) = 2.
	mu.Lock()
	occ = 0.80
	mu.Unlock()
	held := admitN(t, c, Interactive, 1, 2)
	var oe *OverloadError
	if _, _, err := c.Admit(AdmitRequest{Class: Interactive, Tenant: 1}); !errors.As(err, &oe) || oe.Reason != "quota" {
		t.Fatalf("over-quota tenant: %v", err)
	}
	// Tenant 2 still has headroom.
	tk2, dec, err := c.Admit(AdmitRequest{Class: Interactive, Tenant: 2})
	if err != nil || dec != DecisionAdmit {
		t.Fatalf("light tenant under brownout: dec=%v err=%v", dec, err)
	}
	tk2.Release()
	for _, tk := range held {
		tk.Release()
	}
}

// TestCoDelEviction holds the queue above target long enough that a
// drain observes CoDel evictions rather than delivering every stale
// waiter.
func TestCoDelEviction(t *testing.T) {
	c := NewController(Config{
		MaxInflight:   1,
		QueueLimit:    64,
		QueueTarget:   time.Millisecond,
		QueueInterval: 5 * time.Millisecond,
		MaxWait:       2 * time.Second,
	}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]

	const waiters = 16
	var wg sync.WaitGroup
	results := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, dec, err := c.Admit(AdmitRequest{Class: Interactive})
			if err == nil && dec == DecisionAdmit {
				// Hold briefly so the queue stays above target, then pass the
				// slot on.
				time.Sleep(2 * time.Millisecond)
				tk.Release()
			}
			results <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.StatusNow().Queued < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters queued", c.StatusNow().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	// Age the queue past target+interval, then start the drain.
	time.Sleep(10 * time.Millisecond)
	tk.Release()
	wg.Wait()
	close(results)

	granted, evicted := 0, 0
	var oe *OverloadError
	for err := range results {
		switch {
		case err == nil:
			granted++
		case errors.As(err, &oe) && oe.Reason == "codel-evict":
			evicted++
		default:
			t.Fatalf("unexpected waiter outcome: %v", err)
		}
	}
	if granted == 0 || evicted == 0 {
		t.Fatalf("granted=%d evicted=%d, want both > 0 (CoDel must shed stale waiters but not starve)", granted, evicted)
	}
	if got := c.StatusNow().Evicted; got != int64(evicted) {
		t.Fatalf("evicted counter = %d, want %d", got, evicted)
	}
}

// TestAdmitNoWait: with every slot held, a NoWait attempt returns
// ErrWouldWait immediately — neither queued nor counted as a shed — and
// succeeds again once a slot frees.
func TestAdmitNoWait(t *testing.T) {
	c := NewController(Config{MaxInflight: 1}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]

	_, _, err := c.Admit(AdmitRequest{Class: Interactive, NoWait: true})
	if !errors.Is(err, ErrWouldWait) {
		t.Fatalf("NoWait on saturated gate: err = %v, want ErrWouldWait", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("ErrWouldWait must not read as an overload shed")
	}
	s := c.StatusNow()
	if s.Queued != 0 || s.Shed[Interactive] != 0 {
		t.Fatalf("NoWait left state behind: %+v", s)
	}

	tk.Release()
	tk2, dec, err := c.Admit(AdmitRequest{Class: Interactive, NoWait: true})
	if err != nil || dec != DecisionAdmit {
		t.Fatalf("NoWait with a free slot: dec=%v err=%v", dec, err)
	}
	tk2.Release()
}

// TestCancelGrantRaceReturnsCanceled: a waiter whose slot grant races
// its cancellation must still observe ErrCanceled, with the granted
// slot handed back — the caller has abandoned the request and must not
// dispatch it. White-box: the race is staged deterministically by
// granting a hand-queued waiter before invoking its abandon path.
func TestCancelGrantRaceReturnsCanceled(t *testing.T) {
	c := NewController(Config{MaxInflight: 1}, nil, nil)
	tk := admitN(t, c, Interactive, 1, 1)[0]

	w := &waiter{class: Interactive, tenant: 7, enq: c.now(), grant: make(chan error, 1)}
	c.mu.Lock()
	w.elem = c.queues[Interactive].PushBack(w)
	c.queued++
	c.mu.Unlock()

	tk.Release() // grants w: the slot transfers before the cancel lands
	if _, _, err := c.abandon(w, "", ErrCanceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled waiter after racing grant: err = %v, want ErrCanceled", err)
	}
	s := c.StatusNow()
	if s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("granted slot not handed back after cancel: %+v", s)
	}
	// The freed slot must be usable again.
	admitN(t, c, Interactive, 1, 1)[0].Release()
}

// TestTenantChurnQuota: a long-running node that has seen many
// short-lived tenants must not collapse a live tenant's brownout quota —
// the denominator covers only active tenants, and idle entries are
// swept so the map stays bounded.
func TestTenantChurnQuota(t *testing.T) {
	var mu sync.Mutex
	occ := 0.0
	probe := func() Load {
		mu.Lock()
		defer mu.Unlock()
		return Load{Queued: occ, Capacity: 1}
	}
	c := NewController(Config{MaxInflight: 4, ShedBackground: 0.76, ShedBatch: 0.95,
		PressureAlpha: 1, PressurePeriod: time.Nanosecond}, probe, nil)
	cur := time.Now()
	c.now = func() time.Time { return cur }

	// 100 one-shot tenants come and go.
	for id := uint64(100); id < 200; id++ {
		tk, dec, err := c.Admit(AdmitRequest{Class: Interactive, Tenant: id})
		if err != nil || dec != DecisionAdmit {
			t.Fatalf("churn tenant %d: dec=%v err=%v", id, dec, err)
		}
		tk.Release()
	}
	// They fall out of the activity window; brownout hits with only
	// tenant 1 live — its quota must be the whole node, not 1/101 of it.
	cur = cur.Add(2 * tenantActiveWindow)
	mu.Lock()
	occ = 0.80
	mu.Unlock()
	held := admitN(t, c, Interactive, 1, 4)
	for _, tk := range held {
		tk.Release()
	}

	// Past the idle age the sweep reaps the churned entries.
	cur = cur.Add(2 * tenantIdleEvict)
	admitN(t, c, Interactive, 1, 1)[0].Release()
	c.mu.Lock()
	n := len(c.tenants)
	c.mu.Unlock()
	if n > 2 {
		t.Fatalf("tenant map holds %d entries after sweep, want <= 2", n)
	}
}

// TestUnregisterTenant: unregistering removes an idle tenant entry
// outright and demotes a busy one for the sweep to reap once drained.
func TestUnregisterTenant(t *testing.T) {
	c := NewController(Config{MaxInflight: 4}, nil, nil)
	c.RegisterTenant(1, 3)
	c.RegisterTenant(2, 1)

	c.UnregisterTenant(2) // idle: gone immediately
	c.mu.Lock()
	_, ok := c.tenants[2]
	c.mu.Unlock()
	if ok {
		t.Fatal("idle tenant still present after UnregisterTenant")
	}

	tk := admitN(t, c, Interactive, 1, 1)[0]
	c.UnregisterTenant(1) // busy: kept until its work drains
	c.mu.Lock()
	t1, ok := c.tenants[1]
	c.mu.Unlock()
	if !ok || t1.registered {
		t.Fatalf("busy tenant entry = %+v, ok=%v; want demoted but present", t1, ok)
	}
	tk.Release()
	c.UnregisterTenant(99) // unknown: no-op
}

func TestShedHookFires(t *testing.T) {
	c := NewController(Config{MaxInflight: 1}, nil, nil)
	var mu sync.Mutex
	var calls []string
	c.SetShedHook(func(s ShedInfo) {
		mu.Lock()
		calls = append(calls, fmt.Sprintf("%v/%s/%v", s.Class, s.Reason, s.RetryAfter > 0))
		mu.Unlock()
	})
	tk := admitN(t, c, Interactive, 1, 1)[0]
	defer tk.Release()
	c.Admit(AdmitRequest{Class: Background})
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != "background/brownout/true" {
		t.Fatalf("hook calls = %v", calls)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{
		"interactive": Interactive, "INT": Interactive, "i": Interactive,
		"batch": Batch, "b": Batch,
		"background": Background, "bg": Background, "best-effort": Background,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("turbo"); err == nil {
		t.Fatal("ParseClass(turbo) succeeded")
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(" inflight=32, queue=10, target=2ms, interval=50ms, maxwait=100ms, bg=0.5, batch=0.7, alpha=0.9 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{MaxInflight: 32, QueueLimit: 10, QueueTarget: 2 * time.Millisecond,
		QueueInterval: 50 * time.Millisecond, MaxWait: 100 * time.Millisecond,
		ShedBackground: 0.5, ShedBatch: 0.7, PressureAlpha: 0.9}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseConfig(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty config: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"inflight", "inflight=-1", "target=xyz", "alpha=2", "bg=NaN", "zap=1"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig(%q) succeeded", bad)
		}
	}
}

func TestWithDefaultsOrdersThresholds(t *testing.T) {
	// ShedBatch below ShedBackground is clamped up, not left inverted.
	cfg := Config{ShedBackground: 0.9, ShedBatch: 0.5}.withDefaults()
	if cfg.ShedBatch < cfg.ShedBackground {
		t.Fatalf("thresholds inverted: %+v", cfg)
	}
}

func TestRetryAfterHelper(t *testing.T) {
	err := &OverloadError{Class: Background, Reason: "brownout", RetryAfter: 42 * time.Millisecond}
	if got := RetryAfter(fmt.Errorf("wrapped: %w", err)); got != 42*time.Millisecond {
		t.Fatalf("RetryAfter = %v", got)
	}
	if got := RetryAfter(errors.New("other")); got != 0 {
		t.Fatalf("RetryAfter(other) = %v", got)
	}
}

// TestConcurrentChurn hammers the gate from many goroutines mixing all
// classes — meaningful mainly under -race.
func TestConcurrentChurn(t *testing.T) {
	c := NewController(Config{MaxInflight: 8, QueueLimit: 32, MaxWait: 50 * time.Millisecond}, nil, nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tk, dec, _ := c.Admit(AdmitRequest{Class: Class(i % int(ClassCount)), Tenant: uint64(g % 4)})
				if dec == DecisionAdmit && tk != nil {
					tk.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.StatusNow(); s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("gate leaked state: %+v", s)
	}
}
