package admission

import (
	"container/list"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"nxzip/internal/telemetry"
)

// ErrCanceled reports a request whose Cancel channel fired while it sat
// in the pending queue. It is caller cancellation, not overload:
// errors.Is(err, ErrOverloaded) is false.
var ErrCanceled = errors.New("admission: request canceled while queued")

// ErrWouldWait reports a NoWait admission attempt that found no free
// slot: the gate would have parked the request in the pending queue.
// It is not a shed — nothing is counted and no hook fires — the caller
// is expected to make progress (dispatch and release tickets it already
// holds) and present the request again.
var ErrWouldWait = errors.New("admission: would wait for a slot")

// Load is one sample of the dispatch tier's congestion, produced by the
// probe closure the owner wires in (the root samples every device's
// receive-FIFO occupancy and the health scoreboard):
//
//	Queued   — total receive-FIFO occupancy across all devices;
//	Capacity — total FIFO slots on devices currently accepting work
//	           (healthy, not draining). Shrinks as devices quarantine
//	           or drain, so losing half the pool doubles the pressure
//	           of the same queue depth.
type Load struct {
	Queued   float64
	Capacity float64
}

// Decision is the controller's verdict on an admitted request.
type Decision int

const (
	// DecisionAdmit: proceed to hardware dispatch; the returned Ticket
	// holds an in-flight slot until Release.
	DecisionAdmit Decision = iota
	// DecisionDegrade: brownout re-route — run the software fallback
	// instead of hardware. No slot is held; there is no ticket.
	DecisionDegrade
)

// AdmitRequest describes one request presenting at the gate.
type AdmitRequest struct {
	Class  Class
	Tenant uint64 // per-Context/view identity for quota accounting
	// Deadline bounds queue wait: a queued request is evicted early
	// enough that the caller sees the shed before the deadline passes.
	// Zero means no deadline (MaxWait still applies).
	Deadline time.Time
	// Cancel aborts a queued wait when closed.
	Cancel <-chan struct{}
	// NoWait makes a saturated gate return ErrWouldWait instead of
	// parking the request in the pending queue. Batch submission uses
	// it: the batch path holds a ticket per request it has accepted so
	// far, and parking behind slots it holds itself would stall until
	// MaxWait with no possible granter.
	NoWait bool
}

// Ticket is an admitted request's in-flight slot. Release it exactly
// once when the request completes (success or failure); Release is
// idempotent so defer is safe alongside explicit calls.
type Ticket struct {
	c      *Controller
	tenant uint64
	once   sync.Once
}

// Release frees the slot, handing it to the oldest highest-priority
// queued waiter if one is pending.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.once.Do(func() { t.c.release(t.tenant) })
}

// tenantActiveWindow is how long an idle tenant keeps counting toward
// the quota denominator after its last admission: long enough that a
// tenant issuing serial requests holds a stable share, short enough
// that a departed tenant stops diluting everyone else's.
const tenantActiveWindow = time.Second

// tenantIdleEvict is both the sweep cadence and the idle age at which
// an unregistered tenant entry is deleted, bounding the tenants map on
// nodes with view churn. Explicitly registered tenants are removed by
// UnregisterTenant (the root wires it to view Close).
const tenantIdleEvict = 10 * time.Second

// tenantState is one tenant's quota accounting.
type tenantState struct {
	weight     int
	inflight   int
	registered bool      // declared via RegisterTenant; exempt from the idle sweep
	lastSeen   time.Time // last Admit; drives the active window and the sweep
}

// waiter is one queued request, parked in Admit until a slot frees, a
// timer fires, or CoDel evicts it.
type waiter struct {
	class  Class
	tenant uint64
	enq    time.Time
	grant  chan error // buffered(1): nil = slot granted, else shed error
	elem   *list.Element
	done   bool // guarded by Controller.mu: granted or evicted
}

// Controller is the admission gate. One per node; safe for concurrent
// use. All state is under one mutex — the hot path is a sample (rate
// limited), a ladder check and a couple of integer updates, far below
// the cost of the dispatch it guards.
type Controller struct {
	cfg   Config
	probe func() Load
	now   func() time.Time // injectable for deterministic queue tests

	mu       sync.Mutex
	inflight int
	pressure float64
	sampled  time.Time
	tenants  map[uint64]*tenantState
	swept    time.Time // last idle-tenant sweep

	// Pending queue: one FIFO per class, granted in class order so a
	// freed slot always goes to the oldest waiter of the best class.
	queues [ClassCount]*list.List
	queued int

	// CoDel state (see codelDropLocked).
	firstAbove time.Time
	dropping   bool
	dropCount  int
	dropNext   time.Time

	shedHook func(ShedInfo)

	admitted [ClassCount]*telemetry.Counter // admission.admitted{class}
	shed     [ClassCount]*telemetry.Counter // admission.shed{class}
	degraded [ClassCount]*telemetry.Counter // admission.degraded{class}
	evicted  *telemetry.Counter             // admission.evicted (CoDel + timeout)
	waitHist *telemetry.Histogram           // admission.queue_wait_us
	presG    *telemetry.Gauge               // admission.pressure_x1000
	inflG    *telemetry.Gauge               // admission.inflight
	queueG   *telemetry.Gauge               // admission.queued
	levelG   *telemetry.Gauge               // admission.level
}

// NewController builds the gate. probe supplies congestion samples (nil
// means "no occupancy signal": pressure derives from in-flight count
// alone); instruments register in reg (nil gets a private registry).
// A zero cfg.MaxInflight defaults to 64 — owners should derive it from
// topology capacity instead.
func NewController(cfg Config, probe func() Load, reg *telemetry.Registry) *Controller {
	cfg = cfg.withDefaults()
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Controller{
		cfg:     cfg,
		probe:   probe,
		now:     time.Now,
		tenants: make(map[uint64]*tenantState),
	}
	aVec := reg.CounterVec("admission.admitted")
	sVec := reg.CounterVec("admission.shed")
	dVec := reg.CounterVec("admission.degraded")
	for cl := Class(0); cl < ClassCount; cl++ {
		c.admitted[cl] = aVec.With(cl.String())
		c.shed[cl] = sVec.With(cl.String())
		c.degraded[cl] = dVec.With(cl.String())
		c.queues[cl] = list.New()
	}
	c.evicted = reg.Counter("admission.evicted")
	c.waitHist = reg.Histogram("admission.queue_wait_us")
	c.presG = reg.Gauge("admission.pressure_x1000")
	c.inflG = reg.Gauge("admission.inflight")
	c.queueG = reg.Gauge("admission.queued")
	c.levelG = reg.Gauge("admission.level")
	return c
}

// ShedInfo describes one shed decision for the hook: the refused class
// and tenant, the ladder rung that refused it, and the retry-after
// hint the caller was given.
type ShedInfo struct {
	Class      Class
	Tenant     uint64
	Reason     string
	RetryAfter time.Duration
}

// SetShedHook installs a callback invoked (outside the controller lock)
// for every shed decision — the root publishes obs.EventShed through
// it. Call before traffic.
func (c *Controller) SetShedHook(fn func(ShedInfo)) {
	c.mu.Lock()
	c.shedHook = fn
	c.mu.Unlock()
}

// RegisterTenant declares a tenant's quota weight (default 1 when a
// tenant first appears unregistered). Quotas divide capacity by weight
// share among currently active tenants, enforced only under brownout —
// the gate is work-conserving at normal load.
func (c *Controller) RegisterTenant(id uint64, weight int) {
	if weight < 1 {
		weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tenants[id]
	if !ok {
		t = &tenantState{}
		c.tenants[id] = t
	}
	t.weight = weight
	t.registered = true
}

// UnregisterTenant removes a tenant's registration — the root calls it
// when a view closes. An entry with requests still in flight is only
// demoted to unregistered (so release accounting stays balanced); the
// idle sweep reaps it once it drains.
func (c *Controller) UnregisterTenant(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tenants[id]
	if !ok {
		return
	}
	t.registered = false
	if t.inflight == 0 {
		delete(c.tenants, id)
	}
}

// tenantLocked returns (auto-registering) the tenant's state, stamping
// its activity for the quota window.
func (c *Controller) tenantLocked(id uint64, now time.Time) *tenantState {
	t, ok := c.tenants[id]
	if !ok {
		t = &tenantState{weight: 1}
		c.tenants[id] = t
	}
	t.lastSeen = now
	return t
}

// activeWeightLocked sums the quota weights of tenants currently
// active — holding in-flight work or seen within tenantActiveWindow.
// Quotas divide by this, not by every tenant ever seen, so view churn
// on a long-running node cannot collapse live tenants' shares.
func (c *Controller) activeWeightLocked(now time.Time) int {
	w := 0
	for _, t := range c.tenants {
		if t.inflight > 0 || now.Sub(t.lastSeen) <= tenantActiveWindow {
			w += t.weight
		}
	}
	return w
}

// sweepTenantsLocked evicts long-idle unregistered tenant entries, rate
// limited to one scan per tenantIdleEvict, bounding the map under view
// churn.
func (c *Controller) sweepTenantsLocked(now time.Time) {
	if !c.swept.IsZero() && now.Sub(c.swept) < tenantIdleEvict {
		return
	}
	c.swept = now
	for id, t := range c.tenants {
		if t.inflight == 0 && !t.registered && now.Sub(t.lastSeen) > tenantIdleEvict {
			delete(c.tenants, id)
		}
	}
}

// samplePressureLocked advances the EWMA pressure estimate, rate
// limited to one probe per PressurePeriod so the admission path does
// not scan every device FIFO on every request.
func (c *Controller) samplePressureLocked(now time.Time) {
	if !c.sampled.IsZero() && now.Sub(c.sampled) < c.cfg.PressurePeriod {
		return
	}
	c.sampled = now
	sample := float64(c.inflight) / float64(c.cfg.MaxInflight)
	if c.probe != nil {
		l := c.probe()
		occ := 2.0 // no accepting capacity left: fully saturated
		if l.Capacity > 0 {
			occ = l.Queued / l.Capacity
		} else if l.Queued == 0 {
			occ = 0
		}
		if occ > sample {
			sample = occ
		}
	}
	c.pressure += c.cfg.PressureAlpha * (sample - c.pressure)
	c.presG.Set(int64(c.pressure * 1000))
}

// levelLocked maps the current estimate onto the brownout ladder.
func (c *Controller) levelLocked() Level {
	lvl := LevelNormal
	switch {
	case c.inflight >= c.cfg.MaxInflight:
		lvl = LevelSaturated
	case c.pressure >= c.cfg.ShedBatch:
		lvl = LevelShedBatch
	case c.pressure >= c.cfg.ShedBackground:
		lvl = LevelShedBackground
	}
	c.levelG.Set(int64(lvl))
	return lvl
}

// retryAfterLocked sizes the retry-after hint by how deep into overload
// the node is: one CoDel interval at the brownout threshold, growing
// linearly with excess pressure.
func (c *Controller) retryAfterLocked() time.Duration {
	over := c.pressure - c.cfg.ShedBackground
	if over < 0 {
		over = 0
	}
	d := c.cfg.QueueInterval + time.Duration(over*float64(c.cfg.QueueInterval))
	if max := 5 * time.Second; d > max {
		d = max
	}
	return d
}

// rejectLocked mints the shed error, counts it, and returns the hook to
// run after unlock.
func (c *Controller) rejectLocked(class Class, tenant uint64, reason string) (error, func()) {
	retry := c.retryAfterLocked()
	c.shed[class].Inc()
	err := &OverloadError{Class: class, Tenant: tenant, Reason: reason, RetryAfter: retry}
	hook := c.shedHook
	if hook == nil {
		return err, nil
	}
	info := ShedInfo{Class: class, Tenant: tenant, Reason: reason, RetryAfter: retry}
	return err, func() { hook(info) }
}

// Admit presents one request at the gate. Outcomes:
//
//	Ticket, DecisionAdmit, nil   — dispatch to hardware; Release the ticket.
//	nil, DecisionDegrade, nil    — brownout: run the software fallback.
//	nil, _, err                  — shed (errors.Is(err, ErrOverloaded)) or
//	                               canceled while queued (ErrCanceled).
//	                               With NoWait set, a saturated gate
//	                               returns ErrWouldWait (neither a shed
//	                               nor counted) instead of queueing.
//
// A nil *Controller admits everything (no gate configured): callers on
// the hot path pay a single nil check.
func (c *Controller) Admit(req AdmitRequest) (*Ticket, Decision, error) {
	if c == nil {
		return nil, DecisionAdmit, nil
	}
	class := req.Class
	if class < 0 || class >= ClassCount {
		class = Batch
	}
	now := c.now()

	c.mu.Lock()
	c.samplePressureLocked(now)
	c.sweepTenantsLocked(now)
	level := c.levelLocked()

	// Brownout ladder, top rung first. Background is denied at the first
	// rung; batch re-routes to software at the second; interactive rides
	// through to the slot check and, past saturation, the pending queue.
	if level >= LevelShedBackground && class == Background {
		err, hook := c.rejectLocked(class, req.Tenant, "brownout")
		c.mu.Unlock()
		if hook != nil {
			hook()
		}
		return nil, 0, err
	}
	if level >= LevelShedBatch && class == Batch {
		c.degraded[class].Inc()
		c.mu.Unlock()
		return nil, DecisionDegrade, nil
	}

	// A NoWait caller asks only "is there a free slot right now": a full
	// gate answers ErrWouldWait, checked before quota enforcement — the
	// caller's own outstanding tickets are usually what holds the slots,
	// and a quota shed here would misread self-occupancy as overload.
	if req.NoWait && c.inflight >= c.cfg.MaxInflight {
		c.mu.Unlock()
		return nil, 0, ErrWouldWait
	}

	// Weighted tenant quota, enforced only under brownout so the gate is
	// work-conserving: at normal load any tenant may use the whole node.
	// The denominator is the weight of *active* tenants (this one just
	// stamped itself active), so a lone live tenant keeps the whole node
	// no matter how many others came and went.
	t := c.tenantLocked(req.Tenant, now)
	if level > LevelNormal {
		if aw := c.activeWeightLocked(now); aw > 0 {
			quota := int(math.Ceil(float64(t.weight) / float64(aw) * float64(c.cfg.MaxInflight)))
			if t.inflight >= quota {
				err, hook := c.rejectLocked(class, req.Tenant, "quota")
				c.mu.Unlock()
				if hook != nil {
					hook()
				}
				return nil, 0, err
			}
		}
	}

	// Free slot: admit.
	if c.inflight < c.cfg.MaxInflight {
		c.inflight++
		t.inflight++
		c.inflG.Set(int64(c.inflight))
		c.admitted[class].Inc()
		c.mu.Unlock()
		return &Ticket{c: c, tenant: req.Tenant}, DecisionAdmit, nil
	}

	// No slot: level was LevelSaturated (the lock pins inflight), so the
	// ladder above already denied background and degraded batch, and a
	// NoWait caller was already answered — only blocking interactive
	// work reaches here. Park it in the bounded pending queue.
	if c.queued >= c.cfg.QueueLimit {
		err, hook := c.rejectLocked(class, req.Tenant, "queue-full")
		c.mu.Unlock()
		if hook != nil {
			hook()
		}
		return nil, 0, err
	}
	w := &waiter{class: class, tenant: req.Tenant, enq: now, grant: make(chan error, 1)}
	w.elem = c.queues[class].PushBack(w)
	c.queued++
	c.queueG.Set(int64(c.queued))
	c.mu.Unlock()

	return c.wait(w, req)
}

// wait parks a queued request until grant, timeout, deadline or cancel.
func (c *Controller) wait(w *waiter, req AdmitRequest) (*Ticket, Decision, error) {
	timeout := c.cfg.MaxWait
	reason := "queue-timeout"
	if !req.Deadline.IsZero() {
		if d := req.Deadline.Sub(w.enq); d < timeout {
			timeout = d
			reason = "deadline"
		}
	}
	if timeout < 0 {
		timeout = 0
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	select {
	case err := <-w.grant:
		if err != nil {
			return nil, 0, err
		}
		return &Ticket{c: c, tenant: w.tenant}, DecisionAdmit, nil
	case <-timer.C:
		return c.abandon(w, reason, nil)
	case <-req.Cancel:
		return c.abandon(w, "", ErrCanceled)
	}
}

// abandon removes a waiter that gave up (timer, deadline, cancel). If a
// grant raced in first and the waiter merely timed out, the grant wins —
// the slot is already ours. A *canceled* waiter must never dispatch,
// so a racing grant is handed straight back and the caller still sees
// ErrCanceled.
func (c *Controller) abandon(w *waiter, reason string, cause error) (*Ticket, Decision, error) {
	c.mu.Lock()
	if w.done {
		c.mu.Unlock()
		if err := <-w.grant; err != nil {
			return nil, 0, err
		}
		if cause != nil {
			(&Ticket{c: c, tenant: w.tenant}).Release()
			return nil, 0, cause
		}
		return &Ticket{c: c, tenant: w.tenant}, DecisionAdmit, nil
	}
	w.done = true
	c.queues[w.class].Remove(w.elem)
	c.queued--
	c.queueG.Set(int64(c.queued))
	if cause != nil {
		c.mu.Unlock()
		return nil, 0, cause
	}
	c.evicted.Inc()
	err, hook := c.rejectLocked(w.class, w.tenant, reason)
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	return nil, 0, err
}

// release frees one in-flight slot, preferring to hand it straight to a
// queued waiter (oldest of the best class), evicting stale heads per
// the CoDel law on the way.
func (c *Controller) release(tenant uint64) {
	now := c.now()
	var hooks []func()
	c.mu.Lock()
	if t, ok := c.tenants[tenant]; ok && t.inflight > 0 {
		t.inflight--
	}
	if !c.grantLocked(now, &hooks) {
		c.inflight--
		c.inflG.Set(int64(c.inflight))
	}
	c.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// grantLocked hands the freed slot to a waiter, returning false when
// the queue is empty (the slot goes back to the pool). Heads whose
// sojourn violates the CoDel law are evicted and the scan continues.
func (c *Controller) grantLocked(now time.Time, hooks *[]func()) bool {
	for {
		var w *waiter
		for cl := Class(0); cl < ClassCount; cl++ {
			if front := c.queues[cl].Front(); front != nil {
				w = front.Value.(*waiter)
				break
			}
		}
		if w == nil {
			// Empty queue: standing down resets the CoDel state.
			c.firstAbove = time.Time{}
			c.dropping = false
			c.dropCount = 0
			return false
		}
		c.queues[w.class].Remove(w.elem)
		c.queued--
		c.queueG.Set(int64(c.queued))
		w.done = true

		sojourn := now.Sub(w.enq)
		if c.codelDropLocked(sojourn, now) {
			c.evicted.Inc()
			err, hook := c.rejectLocked(w.class, w.tenant, "codel-evict")
			if hook != nil {
				*hooks = append(*hooks, hook)
			}
			w.grant <- err
			continue
		}
		c.waitHist.Observe(float64(sojourn.Microseconds()))
		c.tenantLocked(w.tenant, now).inflight++
		c.admitted[w.class].Inc()
		w.grant <- nil // slot transfers: c.inflight is unchanged
		return true
	}
}

// codelDropLocked is the CoDel-style control law, evaluated on each
// dequeue: once the head sojourn has stayed above QueueTarget for a
// full QueueInterval the controller enters dropping state and evicts at
// an accelerating rate — the k-th eviction after interval/sqrt(k) — un-
// til a head dequeues below target, which resets everything. Keeps the
// standing queue near the target sojourn instead of letting it sit at
// MaxWait.
func (c *Controller) codelDropLocked(sojourn time.Duration, now time.Time) bool {
	if sojourn < c.cfg.QueueTarget {
		c.firstAbove = time.Time{}
		c.dropping = false
		c.dropCount = 0
		return false
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.cfg.QueueInterval)
		return false
	}
	if now.Before(c.firstAbove) {
		return false
	}
	if !c.dropping {
		c.dropping = true
		c.dropCount = 1
		c.dropNext = now.Add(time.Duration(float64(c.cfg.QueueInterval) / math.Sqrt(float64(c.dropCount))))
		return true
	}
	if now.After(c.dropNext) {
		c.dropCount++
		c.dropNext = now.Add(time.Duration(float64(c.cfg.QueueInterval) / math.Sqrt(float64(c.dropCount))))
		return true
	}
	return false
}

// Status is one coherent snapshot of the gate for /snapshot and nxtop.
type Status struct {
	Level       string            `json:"level"`
	Pressure    float64           `json:"pressure"`
	Inflight    int               `json:"inflight"`
	MaxInflight int               `json:"max_inflight"`
	Queued      int               `json:"queued"`
	Admitted    [ClassCount]int64 `json:"admitted"` // indexed Interactive, Batch, Background
	Shed        [ClassCount]int64 `json:"shed"`
	Degraded    [ClassCount]int64 `json:"degraded"`
	Evicted     int64             `json:"evicted"`
}

// StatusNow samples the gate. Nil-safe (zero Status).
func (c *Controller) StatusNow() Status {
	if c == nil {
		return Status{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Level:       c.levelLocked().String(),
		Pressure:    c.pressure,
		Inflight:    c.inflight,
		MaxInflight: c.cfg.MaxInflight,
		Queued:      c.queued,
		Evicted:     c.evicted.Value(),
	}
	for cl := Class(0); cl < ClassCount; cl++ {
		s.Admitted[cl] = c.admitted[cl].Value()
		s.Shed[cl] = c.shed[cl].Value()
		s.Degraded[cl] = c.degraded[cl].Value()
	}
	return s
}

// TenantStatus is one tenant's quota standing at the gate.
type TenantStatus struct {
	ID       uint64 `json:"id"`
	Weight   int    `json:"weight"`
	Inflight int    `json:"inflight"`
	// Registered marks tenants declared via RegisterTenant (exempt from
	// the idle sweep); auto-registered tenants show false.
	Registered bool `json:"registered,omitempty"`
	// Active marks tenants currently counting toward the quota
	// denominator (in-flight work or seen within the active window).
	Active bool `json:"active"`
	// Share is the tenant's weight fraction of the active weight — the
	// capacity fraction quotas guarantee it under brownout. 0 for
	// inactive tenants.
	Share float64 `json:"share"`
}

// TenantsNow samples every tenant the gate currently tracks, sorted by
// ID. Nil-safe (nil slice).
func (c *Controller) TenantsNow() []TenantStatus {
	if c == nil {
		return nil
	}
	now := c.now()
	c.mu.Lock()
	aw := c.activeWeightLocked(now)
	out := make([]TenantStatus, 0, len(c.tenants))
	for id, t := range c.tenants {
		ts := TenantStatus{
			ID:         id,
			Weight:     t.weight,
			Inflight:   t.inflight,
			Registered: t.registered,
			Active:     t.inflight > 0 || now.Sub(t.lastSeen) <= tenantActiveWindow,
		}
		if ts.Active && aw > 0 {
			ts.Share = float64(t.weight) / float64(aw)
		}
		out = append(out, ts)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Config returns the active (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }
