// Package admission is the overload-protection layer between the root
// API and topology dispatch. The paper's credit/paste flow control (C4,
// C8) pushes backpressure to the requester — a paste with no credit
// bounces — but backpressure alone degrades badly past saturation:
// every caller spins in paste-reject backoff, wasting cycles on work
// that will be too late by the time it completes, and the tail grows
// without bound. This package makes the degradation deliberate:
//
//   - an admission gate samples per-device FIFO occupancy and
//     quarantine state into a smoothed pressure signal, and refuses work
//     *before* it burns engine cycles;
//   - requests carry a priority class (interactive / batch /
//     background) and a tenant identity with a weighted quota, so one
//     context cannot starve the node under pressure;
//   - a bounded, deadline-aware pending queue absorbs bursts for the
//     classes worth waiting for, with CoDel-style eviction so stale
//     requests are shed instead of queued to death;
//   - a brownout ladder degrades in steps — deny background work first,
//     route batch work to the software fallback next, and only then
//     reject with a typed ErrOverloaded carrying a retry-after hint.
//
// The controller is pull-free: there is no background goroutine. Every
// Admit call advances the pressure estimate (rate-limited), consults
// the ladder, and either takes an in-flight slot, waits on the pending
// queue, re-routes to the fallback, or rejects. Release hands freed
// slots to queued waiters in priority order.
package admission

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Class is a request's priority class. Lower values are more
// latency-sensitive and are shed last.
type Class int

const (
	// Interactive is user-facing work: never brown-routed to software,
	// queued (bounded) when the node saturates, shed only when the queue
	// itself overflows or CoDel evicts it.
	Interactive Class = iota
	// Batch is throughput work that tolerates the software path: under
	// brownout it degrades to the fallback codec before being rejected.
	Batch
	// Background is best-effort work (scrubbers, re-compressors): the
	// first class denied when pressure rises.
	Background

	// ClassCount sizes per-class arrays.
	ClassCount
)

var classNames = [...]string{"interactive", "batch", "background"}

func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass maps a class name to its Class — the -priority flag parser.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "interactive", "int", "i":
		return Interactive, nil
	case "batch", "b":
		return Batch, nil
	case "background", "bg", "best-effort":
		return Background, nil
	}
	return 0, fmt.Errorf("admission: unknown priority class %q (want interactive, batch or background)", s)
}

// ErrOverloaded is the typed rejection every shed decision wraps:
// errors.Is(err, ErrOverloaded) identifies load shedding regardless of
// which rung of the ladder produced it. Shed errors are terminal — not
// retryable on another device (every device sits behind the same gate)
// and not a health strike against any device.
var ErrOverloaded = errors.New("admission: node overloaded")

// OverloadError is the concrete shed error: which class was refused,
// for which tenant, why, and how long the caller should wait before
// retrying (the retry-after hint an HTTP front end maps to Retry-After).
type OverloadError struct {
	Class Class
	// Tenant is the refused request's view identity (0 when the caller
	// presented no tenant), so shed errors correlate with the
	// tenant-labeled accounting plane and per-tenant quotas.
	Tenant     uint64
	Reason     string // "brownout", "quota", "queue-full", "codel-evict", "queue-timeout", "deadline", "draining"
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Tenant != 0 {
		return fmt.Sprintf("admission: node overloaded: %s request shed (%s, tenant t%d), retry after %v",
			e.Class, e.Reason, e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("admission: node overloaded: %s request shed (%s), retry after %v",
		e.Class, e.Reason, e.RetryAfter)
}

// Unwrap makes every OverloadError errors.Is-able as ErrOverloaded.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the retry-after hint from a shed error (0 when
// err is not an overload rejection).
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Level is a rung of the brownout ladder, derived from the pressure
// signal on every admission decision.
type Level int

const (
	// LevelNormal: everything admits.
	LevelNormal Level = iota
	// LevelShedBackground: background work is rejected.
	LevelShedBackground
	// LevelShedBatch: batch work re-routes to the software fallback;
	// background stays rejected.
	LevelShedBatch
	// LevelSaturated: the in-flight ceiling is hit — interactive work
	// queues (bounded, CoDel-policed); everything else is shed.
	LevelSaturated
)

var levelNames = [...]string{"normal", "shed-background", "shed-batch", "saturated"}

func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Config tunes the controller. The zero value means "use the default"
// for every field (withDefaults fills them in), so callers set only
// what they care about.
type Config struct {
	// MaxInflight is the node-wide concurrency ceiling the gate
	// enforces — admitted requests holding tickets. 0 lets the caller
	// derive it from topology capacity (the root wires devices × a
	// fraction of the FIFO depth).
	MaxInflight int

	// QueueLimit bounds the pending queue of saturated-mode waiters.
	// Beyond it, even interactive work is shed (queue-full).
	QueueLimit int
	// QueueTarget is the CoDel target sojourn: when the minimum queue
	// wait over QueueInterval exceeds it, the controller starts evicting
	// waiters at an accelerating rate (the sqrt control law).
	QueueTarget time.Duration
	// QueueInterval is the CoDel observation interval.
	QueueInterval time.Duration
	// MaxWait caps how long any waiter sits in the pending queue before
	// being shed (queue-timeout) — the outer bound a request's own
	// Deadline can only tighten.
	MaxWait time.Duration

	// ShedBackground / ShedBatch are the pressure thresholds of the
	// brownout ladder (fractions of capacity; pressure can exceed 1).
	ShedBackground float64
	ShedBatch      float64

	// PressureAlpha is the EWMA weight of a fresh load sample
	// (0 < alpha <= 1); PressurePeriod rate-limits probe sampling so a
	// hot admission path does not scan every device FIFO per request.
	PressureAlpha  float64
	PressurePeriod time.Duration
}

// DefaultConfig returns the shipped overload policy.
func DefaultConfig() Config {
	return Config{
		QueueLimit:     256,
		QueueTarget:    5 * time.Millisecond,
		QueueInterval:  100 * time.Millisecond,
		MaxWait:        250 * time.Millisecond,
		ShedBackground: 0.75,
		ShedBatch:      0.90,
		PressureAlpha:  0.3,
		PressurePeriod: 200 * time.Microsecond,
	}
}

// withDefaults fills zero fields from DefaultConfig (MaxInflight stays
// 0 — the owner derives it from capacity).
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.QueueLimit <= 0 {
		c.QueueLimit = def.QueueLimit
	}
	if c.QueueTarget <= 0 {
		c.QueueTarget = def.QueueTarget
	}
	if c.QueueInterval <= 0 {
		c.QueueInterval = def.QueueInterval
	}
	if c.MaxWait <= 0 {
		c.MaxWait = def.MaxWait
	}
	if c.ShedBackground <= 0 {
		c.ShedBackground = def.ShedBackground
	}
	if c.ShedBatch <= 0 {
		c.ShedBatch = def.ShedBatch
	}
	if c.ShedBatch < c.ShedBackground {
		c.ShedBatch = c.ShedBackground
	}
	if c.PressureAlpha <= 0 || c.PressureAlpha > 1 {
		c.PressureAlpha = def.PressureAlpha
	}
	if c.PressurePeriod <= 0 {
		c.PressurePeriod = def.PressurePeriod
	}
	return c
}

// ParseConfig parses a comma-separated "key=value" overload policy —
// the -admission flag parser. Keys: inflight (int), queue (int),
// target/interval/maxwait (durations), bg/batch (pressure fractions),
// alpha (EWMA weight). Empty input returns the zero Config (defaults).
func ParseConfig(s string) (Config, error) {
	var cfg Config
	s = strings.TrimSpace(s)
	if s == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("admission: config %q: want key=value", part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "inflight", "maxinflight":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("admission: config %s=%q: want a non-negative integer", k, v)
			}
			cfg.MaxInflight = n
		case "queue", "queuelimit":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("admission: config %s=%q: want a non-negative integer", k, v)
			}
			cfg.QueueLimit = n
		case "target", "interval", "maxwait":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("admission: config %s=%q: want a non-negative duration", k, v)
			}
			switch k {
			case "target":
				cfg.QueueTarget = d
			case "interval":
				cfg.QueueInterval = d
			case "maxwait":
				cfg.MaxWait = d
			}
		case "bg", "shedbackground", "batch", "shedbatch", "alpha":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				return cfg, fmt.Errorf("admission: config %s=%q: want a non-negative number", k, v)
			}
			switch k {
			case "bg", "shedbackground":
				cfg.ShedBackground = f
			case "batch", "shedbatch":
				cfg.ShedBatch = f
			case "alpha":
				if f > 1 {
					return cfg, fmt.Errorf("admission: config alpha=%q: want (0, 1]", v)
				}
				cfg.PressureAlpha = f
			}
		default:
			return cfg, fmt.Errorf("admission: unknown config key %q (want inflight, queue, target, interval, maxwait, bg, batch or alpha)", k)
		}
	}
	return cfg, nil
}
