package deflate

import (
	"bytes"
	"testing"
)

// Fuzz targets double as robustness tests: `go test` runs the seed corpus,
// and `go test -fuzz=FuzzX` explores further. The invariant under fuzzing
// is "no panic, and any successfully decoded stream re-encodes losslessly".

func FuzzDecompress(f *testing.F) {
	// Seeds: valid streams of each block type, plus corruptions.
	for _, src := range [][]byte{
		{}, []byte("a"), []byte("hello hello hello hello"), bytes.Repeat([]byte("xyz"), 500),
	} {
		for _, mode := range []BlockMode{ModeFixed, ModeDynamic, ModeStored} {
			comp, err := Compress(src, Options{Mode: mode})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(comp)
			if len(comp) > 4 {
				bad := append([]byte{}, comp...)
				bad[len(bad)/2] ^= 0x10
				f.Add(bad)
			}
		}
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data, InflateOptions{MaxOutput: 1 << 20})
		if err != nil {
			return
		}
		// Anything that decodes must round-trip through our encoder.
		comp, err := Compress(out, Options{})
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decompress(comp, InflateOptions{MaxOutput: 1 << 21})
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(back, out) {
			t.Fatal("lossless invariant violated")
		}
	})
}

func FuzzGzipUnwrap(f *testing.F) {
	gz, _ := CompressGzip([]byte("seed data for the gzip fuzzer"), Options{})
	f.Add(gz)
	f.Add([]byte{0x1F, 0x8B, 8, 0x1F}) // FEXTRA+FNAME+FHCRC flags, truncated
	f.Add([]byte{0x1F, 0x8B})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; success implies verified CRC.
		if out, err := DecompressGzip(data, InflateOptions{MaxOutput: 1 << 20}); err == nil {
			_ = out
		}
		if out, err := DecompressGzipMulti(data, InflateOptions{MaxOutput: 1 << 20}); err == nil {
			_ = out
		}
	})
}

func FuzzSessionEqualsOneShot(f *testing.F) {
	for _, src := range [][]byte{
		[]byte("session fuzz seed"), bytes.Repeat([]byte("ab"), 4000), make([]byte, 500),
	} {
		comp, _ := Compress(src, Options{BlockSize: 1024})
		f.Add(comp, uint16(97))
	}
	f.Fuzz(func(t *testing.T, data []byte, chunk16 uint16) {
		chunk := int(chunk16%500) + 1
		oneShot, oneErr := Decompress(data, InflateOptions{MaxOutput: 1 << 20})

		s := NewSession(InflateOptions{MaxOutput: 1 << 20})
		var streamed []byte
		var sessErr error
		for off := 0; off < len(data) || off == 0; off += chunk {
			end := off + chunk
			final := false
			if end >= len(data) {
				end = len(data)
				final = true
			}
			out, err := s.Feed(data[off:end], final)
			if err != nil {
				sessErr = err
				break
			}
			streamed = append(streamed, out...)
			if s.Done() {
				break
			}
			if final {
				break
			}
		}
		// Agreement: if the one-shot path succeeds, the session must
		// produce the same bytes (it may consume less input when the
		// stream has a tail, which one-shot treats as part of the stream).
		if oneErr == nil && sessErr == nil && s.Done() {
			if !bytes.Equal(streamed, oneShot) {
				t.Fatalf("session %d bytes != one-shot %d bytes", len(streamed), len(oneShot))
			}
		}
	})
}
