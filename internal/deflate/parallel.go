package deflate

import (
	"fmt"
	"runtime"
	"sync"
)

// CompressGzipParallel is the software counterpart of "the entire chip of
// cores" (claim C3): it splits src into chunks and compresses them on
// workers goroutines as independent gzip members (the pigz approach),
// concatenated into one valid multi-member stream. It is the strongest
// software baseline this repository can field — and it still loses to one
// accelerator by an order of magnitude, which is the paper's point.
func CompressGzipParallel(src []byte, level, workers, chunkSize int) ([]byte, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunkSize <= 0 {
		chunkSize = 1 << 20
	}
	if len(src) == 0 {
		return CompressGzip(src, Options{Level: level})
	}
	nChunks := (len(src) + chunkSize - 1) / chunkSize
	results := make([][]byte, nChunks)
	errs := make([]error, nChunks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < nChunks; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(src) {
			hi = len(src)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = CompressGzip(part, Options{Level: level})
		}(i, src[lo:hi])
	}
	wg.Wait()
	var total int
	for i := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("deflate: parallel chunk %d: %w", i, errs[i])
		}
		total += len(results[i])
	}
	out := make([]byte, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
