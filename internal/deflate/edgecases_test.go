package deflate

import (
	"bytes"
	"compress/flate"
	"io"
	"testing"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
	"nxzip/internal/lz77"
)

// Crafted-bitstream tests for inflate's dynamic-header corner cases. Each
// helper builds the stream bit by bit so the exact malformation is under
// test (fuzzing finds these probabilistically; these pin them).

// craftDynamicHeader writes BFINAL=1, BTYPE=2 and a code-length prelude
// from explicit (order-position -> 3-bit length) values.
func craftDynamicHeader(hlit, hdist, hclen int, clLens []uint64) *bitio.Writer {
	w := bitio.NewWriter(nil)
	w.WriteBits(1, 1) // BFINAL
	w.WriteBits(2, 2) // dynamic
	w.WriteBits(uint64(hlit), 5)
	w.WriteBits(uint64(hdist), 5)
	w.WriteBits(uint64(hclen), 4)
	for _, v := range clLens {
		w.WriteBits(v, 3)
	}
	return w
}

func TestInflateRejectsHLITOverflow(t *testing.T) {
	// HLIT = 30 -> 287 litlen codes > 286.
	w := craftDynamicHeader(30, 0, 0, []uint64{1, 1, 0, 0})
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("HLIT=287 accepted")
	}
}

func TestInflateRejectsHDISTOverflow(t *testing.T) {
	// HDIST = 30 -> 31 distance codes > 30.
	w := craftDynamicHeader(0, 30, 0, []uint64{1, 1, 0, 0})
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("HDIST=31 accepted")
	}
}

func TestInflateRejectsRepeatAtStart(t *testing.T) {
	// Code-length code where symbol 16 (copy previous) appears first.
	// Prelude: lengths for order {16,17,18,0}: give 16 and 17 one bit each.
	w := craftDynamicHeader(0, 0, 0, []uint64{1, 1, 0, 0})
	// With canonical codes, symbol 16 gets code 0 (1 bit). Emit it first.
	w.WriteBits(0, 1) // CL symbol 16: repeat-previous with nothing before
	w.WriteBits(0, 2) // its 2-bit repeat count
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("repeat-with-no-previous accepted")
	}
}

func TestInflateRejectsOverfullCLCode(t *testing.T) {
	// Three 1-bit code-length codes is over-subscribed.
	w := craftDynamicHeader(0, 0, 1, []uint64{1, 1, 1, 0, 0})
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("over-subscribed CL code accepted")
	}
}

func TestInflateRejectsZeroRunPastTable(t *testing.T) {
	// Zero-run (symbol 18) that overruns the combined lengths table.
	w := craftDynamicHeader(0, 0, 0, []uint64{0, 1, 1, 0}) // syms 17,18 get codes
	// Canonical: sym 17 -> 0, sym 18 -> 1 (1 bit each).
	w.WriteBits(1, 1)   // symbol 18
	w.WriteBits(127, 7) // run of 138 zeros > 258 remaining? 138 < 258 though
	w.WriteBits(1, 1)   // symbol 18 again
	w.WriteBits(127, 7) // second run of 138: 276 > 258 -> overrun
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("zero-run overrun accepted")
	}
}

func TestInflateRejectsMissingEOBCode(t *testing.T) {
	// A table where symbol 256 has no code is undecodable by contract.
	w := craftDynamicHeader(0, 0, 14, nil)
	// HCLEN=18: write order lengths giving code-length symbol 0 -> 1 bit,
	// 8 -> 1 bit (order: 16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1).
	lens := make([]uint64, 18)
	lens[3] = 1 // symbol 0
	lens[4] = 1 // symbol 8
	for _, v := range lens {
		w.WriteBits(v, 3)
	}
	// 257 litlen lengths: 256 entries of 8, then one 0 (symbol 256!),
	// then 1 distance length of 8.
	// CL canonical: sym 0 -> code 0, sym 8 -> code 1.
	for i := 0; i < 256; i++ {
		w.WriteBits(1, 1) // length 8
	}
	w.WriteBits(0, 1) // symbol 256 gets length 0
	w.WriteBits(1, 1) // distance symbol 0: length 8
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("missing end-of-block code accepted")
	}
}

func TestInflateRejectsDistanceTooFar(t *testing.T) {
	// Fixed-table block: match at distance 4 with only 1 byte produced.
	w := bitio.NewWriter(nil)
	bw := NewBlockWriter(w)
	// Hand-roll: literal 'a', then an invalid match. Use writeTokens via
	// crafted token stream? Match(3,4) with 1 byte of history is exactly
	// the corruption; the encoder's Validate-free path permits crafting it
	// through the fixed encoder.
	_ = bw
	fixedLL, _ := huffman.NewEncoder(FixedLitLenLengths())
	fixedD, _ := huffman.NewEncoder(FixedDistLengths())
	w.WriteBits(1, 1) // BFINAL
	w.WriteBits(1, 2) // fixed
	write := func(c huffman.Code) { w.WriteBits(uint64(c.Bits), uint(c.Len)) }
	write(fixedLL.Codes['a'])
	ls, lextra, lnb := LengthSymbol(3)
	write(fixedLL.Codes[ls])
	if lnb > 0 {
		w.WriteBits(uint64(lextra), uint(lnb))
	}
	ds, dextra, dnb := DistSymbol(4)
	write(fixedD.Codes[ds])
	if dnb > 0 {
		w.WriteBits(uint64(dextra), uint(dnb))
	}
	write(fixedLL.Codes[EndOfBlock])
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("distance past start accepted")
	}
	// stdlib agrees this stream is corrupt.
	if _, err := io.ReadAll(flate.NewReader(bytes.NewReader(w.Bytes()))); err == nil {
		t.Fatal("stdlib accepted the crafted stream — test premise wrong")
	}
}

func TestInflateMaxAlphabets(t *testing.T) {
	// A legal stream using the full 286/30 alphabets must decode. Build
	// frequencies hitting every length symbol and many distances.
	var tokens []lz77.Token
	src := make([]byte, 0, 1<<16)
	// All 256 literals.
	for b := 0; b < 256; b++ {
		tokens = append(tokens, lz77.Lit(byte(b)))
		src = append(src, byte(b))
	}
	// Matches of every representable length (3..258).
	for l := lz77.MinMatch; l <= lz77.MaxMatch; l++ {
		tokens = append(tokens, lz77.Match(l, 256))
		start := len(src) - 256
		for j := 0; j < l; j++ {
			src = append(src, src[start+j])
		}
	}
	comp, err := EncodeTokens(tokens, src, ModeDynamic, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("full-alphabet round-trip mismatch")
	}
	// stdlib cross-check.
	sgot, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sgot, src) {
		t.Fatal("stdlib mismatch on full alphabet")
	}
}

func TestInflateEmptyDynamicBlock(t *testing.T) {
	// A dynamic block containing only end-of-block.
	comp, err := EncodeTokens(nil, nil, ModeDynamic, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d bytes", len(got))
	}
}

func TestInflateBlockType3(t *testing.T) {
	w := bitio.NewWriter(nil)
	w.WriteBits(1, 1)
	w.WriteBits(3, 2) // reserved
	if _, err := Decompress(w.Bytes(), InflateOptions{}); err == nil {
		t.Fatal("reserved block type accepted")
	}
}

func TestMaxLengthMatchBoundary(t *testing.T) {
	// Length 258 and length 255 straddle the symbol-285 special case
	// (285 has zero extra bits, 284 has 5).
	src := bytes.Repeat([]byte("x"), 600)
	tokens := []lz77.Token{lz77.Lit('x')}
	tokens = append(tokens, lz77.Match(258, 1), lz77.Match(255, 1), lz77.Match(86, 1))
	comp, err := EncodeTokens(tokens, src, ModeFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("got %d bytes want %d", len(got), len(src))
	}
}
