package deflate

import (
	"fmt"

	"nxzip/internal/bitio"
)

// BlockInfo describes one DEFLATE block for stream inspection.
type BlockInfo struct {
	Index      int
	Final      bool
	Type       int // 0 stored, 1 fixed, 2 dynamic
	HeaderBits int // block header incl. any code-length tables
	DataBits   int // payload bits (symbols + extra)
	Literals   int
	Matches    int
	MatchBytes int
	OutBytes   int
}

// TypeName renders the block type.
func (b BlockInfo) TypeName() string {
	switch b.Type {
	case 0:
		return "stored"
	case 1:
		return "fixed"
	case 2:
		return "dynamic"
	}
	return fmt.Sprintf("type%d", b.Type)
}

// InspectStream walks a raw DEFLATE stream and reports its block
// structure without retaining the plaintext (window-only memory). It is
// the engine behind cmd/nxinspect.
func InspectStream(raw []byte, maxOutput int) ([]BlockInfo, error) {
	if maxOutput <= 0 {
		maxOutput = defaultMaxOutput
	}
	r := bitio.NewReader(raw)
	var (
		infos  []BlockInfo
		window []byte
		total  int
	)
	for {
		startBits := r.BitsConsumed()
		h, err := ReadBlockHeader(r)
		if err != nil {
			return infos, err
		}
		info := BlockInfo{Index: len(infos), Final: h.Final, Type: h.Type}
		switch h.Type {
		case 0:
			lenv, err := r.ReadBits(16)
			if err != nil {
				return infos, fmt.Errorf("%w: stored length", ErrCorrupt)
			}
			nlen, err := r.ReadBits(16)
			if err != nil {
				return infos, fmt.Errorf("%w: stored nlen", ErrCorrupt)
			}
			if uint16(lenv) != ^uint16(nlen) {
				return infos, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
			}
			info.HeaderBits = r.BitsConsumed() - startBits
			payload := make([]byte, lenv)
			if err := r.ReadBytes(payload); err != nil {
				return infos, fmt.Errorf("%w: stored payload", ErrCorrupt)
			}
			info.DataBits = int(lenv) * 8
			info.OutBytes = int(lenv)
			info.Literals = int(lenv)
			window = appendWindowBytes(window, payload)
		default:
			info.HeaderBits = r.BitsConsumed() - startBits
			dataStart := r.BitsConsumed()
			base := len(window)
			buf := append([]byte{}, window...)
			for {
				sym, err := h.LitLen.Decode(r)
				if err != nil {
					return infos, fmt.Errorf("%w: litlen: %v", ErrCorrupt, err)
				}
				if sym == EndOfBlock {
					break
				}
				if sym < 256 {
					buf = append(buf, byte(sym))
					info.Literals++
					continue
				}
				lbase, lnb, ok := LengthFromSymbol(sym)
				if !ok {
					return infos, fmt.Errorf("%w: length symbol %d", ErrCorrupt, sym)
				}
				length := lbase
				if lnb > 0 {
					ex, err := r.ReadBits(uint(lnb))
					if err != nil {
						return infos, fmt.Errorf("%w: length extra", ErrCorrupt)
					}
					length += int(ex)
				}
				dsym, err := h.Dist.Decode(r)
				if err != nil {
					return infos, fmt.Errorf("%w: dist: %v", ErrCorrupt, err)
				}
				dbase, dnb, ok := DistFromSymbol(dsym)
				if !ok {
					return infos, fmt.Errorf("%w: dist symbol %d", ErrCorrupt, dsym)
				}
				dist := dbase
				if dnb > 0 {
					ex, err := r.ReadBits(uint(dnb))
					if err != nil {
						return infos, fmt.Errorf("%w: dist extra", ErrCorrupt)
					}
					dist += int(ex)
				}
				if dist > len(buf) {
					return infos, fmt.Errorf("%w: distance %d past start", ErrCorrupt, dist)
				}
				start := len(buf) - dist
				for j := 0; j < length; j++ {
					buf = append(buf, buf[start+j])
				}
				info.Matches++
				info.MatchBytes += length
				if len(buf)-base > maxOutput {
					return infos, ErrTooLarge
				}
			}
			info.DataBits = r.BitsConsumed() - dataStart
			info.OutBytes = len(buf) - base
			window = appendWindowBytes(nil, buf)
		}
		total += info.OutBytes
		if total > maxOutput {
			return infos, ErrTooLarge
		}
		infos = append(infos, info)
		if info.Final {
			return infos, nil
		}
	}
}

// appendWindowBytes keeps the trailing 32 KiB.
func appendWindowBytes(window, chunk []byte) []byte {
	window = append(window, chunk...)
	const w = 32 << 10
	if len(window) > w {
		window = window[len(window)-w:]
	}
	return window
}
