package deflate

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"nxzip/internal/corpus"
)

func TestParallelCompressRoundTrip(t *testing.T) {
	src := corpusInputs(t)["text"]
	for _, workers := range []int{1, 4, 0} {
		comp, err := CompressGzipParallel(src, 6, workers, 16<<10)
		if err != nil {
			t.Fatal(err)
		}
		// stdlib reads the multi-member stream.
		zr, err := gzip.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("workers=%d: mismatch", workers)
		}
		// Our multi-member reader too.
		got2, err := DecompressGzipMulti(comp, InflateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, src) {
			t.Fatalf("workers=%d: our reader mismatch", workers)
		}
	}
}

func TestParallelCompressEmptyAndTiny(t *testing.T) {
	for _, src := range [][]byte{nil, []byte("x")} {
		comp, err := CompressGzipParallel(src, 6, 4, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressGzipMulti(comp, InflateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("mismatch")
		}
	}
}

func TestParallelCompressRatioNearSerial(t *testing.T) {
	src := corpus.Generate(corpus.Text, 1<<20, 5) // realistic-entropy prose
	par, err := CompressGzipParallel(src, 6, 8, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := CompressGzip(src, Options{Level: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Chunking costs ratio (window resets + per-member framing) but must
	// stay within ~15% at 64 KiB chunks on prose. (Pathologically
	// redundant data loses much more — that is a real pigz-vs-zlib
	// behaviour, not a bug.)
	if float64(len(par)) > 1.15*float64(len(ser)) {
		t.Fatalf("parallel %d vs serial %d: chunking cost too high", len(par), len(ser))
	}
}

func BenchmarkParallelCompress(b *testing.B) {
	src := corpusInputs(b)["text"]
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressGzipParallel(src, 6, 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}
