package deflate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
)

// inflatePasses and skimPasses count full decodes and structure-only walks
// of DEFLATE streams. They exist so tests can assert that a code path
// performs exactly one inflate pass per gzip member (no decode-twice
// regressions on the streaming Reader).
var (
	inflatePasses atomic.Int64
	skimPasses    atomic.Int64
)

// InflatePasses returns the number of full inflate passes performed by
// this package since process start.
func InflatePasses() int64 { return inflatePasses.Load() }

// SkimPasses returns the number of structure-only skim passes performed.
func SkimPasses() int64 { return skimPasses.Load() }

// Decompression errors.
var (
	ErrCorrupt  = errors.New("deflate: corrupt stream")
	ErrTooLarge = errors.New("deflate: output exceeds limit")
)

// InflateOptions bounds decompression.
type InflateOptions struct {
	// MaxOutput caps the decompressed size (0 = 1 GiB default). The
	// accelerator enforces the same bound via the output DDE length; a
	// too-small target buffer yields a CC error, not unbounded growth.
	MaxOutput int
	// Dst, when non-nil, supplies the output backing: decompression
	// appends to Dst[:0], reusing its capacity — the software analogue of
	// the accelerator DMA-ing output into the caller's target DDE. The
	// caller must not alias Dst with the compressed source.
	Dst []byte
}

const defaultMaxOutput = 1 << 30

var (
	fixedDecOnce sync.Once
	fixedLLDec   *huffman.Decoder
	fixedDDec    *huffman.Decoder
)

// fixedDecoders returns the shared RFC 1951 static-table decoders,
// built once: the tables are read-only during Decode, so every inflate
// pass (and every modeled engine) shares one pair.
func fixedDecoders() (*huffman.Decoder, *huffman.Decoder, error) {
	var err error
	fixedDecOnce.Do(func() {
		fixedLLDec, err = huffman.NewDecoder(FixedLitLenLengths(), huffman.DefaultPrimaryBits)
		if err != nil {
			return
		}
		fixedDDec, err = huffman.NewDecoder(FixedDistLengths(), huffman.DefaultPrimaryBits)
	})
	if fixedLLDec == nil || fixedDDec == nil {
		if err == nil {
			err = fmt.Errorf("deflate: fixed decode tables unavailable")
		}
		return nil, nil, err
	}
	return fixedLLDec, fixedDDec, nil
}

// readerPool recycles bit readers: the decoder consumes them through the
// BitSource interface, which pins them to the heap, so a stack value
// would escape anyway — pooling keeps a steady-state inflate into
// opts.Dst allocation-free.
var readerPool = sync.Pool{New: func() any { return new(bitio.Reader) }}

func getReader(src []byte) *bitio.Reader {
	r := readerPool.Get().(*bitio.Reader)
	r.Reset(src)
	return r
}

func putReader(r *bitio.Reader) {
	r.Reset(nil) // drop the src reference before pooling
	readerPool.Put(r)
}

// Decompress inflates a raw DEFLATE stream.
func Decompress(src []byte, opts InflateOptions) ([]byte, error) {
	r := getReader(src)
	defer putReader(r)
	out, err := inflate(r, opts)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressTail inflates a raw DEFLATE stream and also returns the number
// of bytes of src consumed (the stream may be followed by a trailer).
func DecompressTail(src []byte, opts InflateOptions) (out []byte, consumed int, err error) {
	r := getReader(src)
	defer putReader(r)
	out, err = inflate(r, opts)
	if err != nil {
		return nil, 0, err
	}
	r.AlignByte()
	return out, r.BitsConsumed() / 8, nil
}

func inflate(r *bitio.Reader, opts InflateOptions) ([]byte, error) {
	inflatePasses.Add(1)
	maxOut := opts.MaxOutput
	if maxOut <= 0 {
		maxOut = defaultMaxOutput
	}
	var out []byte
	if opts.Dst != nil {
		out = opts.Dst[:0]
	}
	for {
		final, err := r.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("%w: missing block header", ErrCorrupt)
		}
		btype, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("%w: missing block type", ErrCorrupt)
		}
		switch btype {
		case 0: // stored
			r.AlignByte()
			lenv, err := r.ReadBits(16)
			if err != nil {
				return nil, fmt.Errorf("%w: stored length", ErrCorrupt)
			}
			nlen, err := r.ReadBits(16)
			if err != nil {
				return nil, fmt.Errorf("%w: stored nlen", ErrCorrupt)
			}
			if uint16(lenv) != ^uint16(nlen) {
				return nil, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
			}
			if len(out)+int(lenv) > maxOut {
				return nil, ErrTooLarge
			}
			// Grow out and read the payload straight into it — no staging
			// buffer.
			n := len(out)
			for j := 0; j < int(lenv); j++ {
				out = append(out, 0)
			}
			if err := r.ReadBytes(out[n:]); err != nil {
				return nil, fmt.Errorf("%w: stored payload truncated", ErrCorrupt)
			}
		case 1: // fixed Huffman
			fixedLL, fixedD, err := fixedDecoders()
			if err != nil {
				return nil, err
			}
			out, err = inflateBlock(r, out, maxOut, fixedLL, fixedD)
			if err != nil {
				return nil, err
			}
		case 2: // dynamic Huffman
			ll, d, err := readDynamicHeader(r)
			if err != nil {
				return nil, err
			}
			out, err = inflateBlock(r, out, maxOut, ll, d)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: reserved block type 3", ErrCorrupt)
		}
		if final {
			return out, nil
		}
	}
}

// SkimTail walks a raw DEFLATE stream's block structure without
// materializing output: it decodes symbols and tracks only the plaintext
// length, returning that length and the bytes of src consumed. This is
// the cheap boundary-finding pass parallel multi-member decoding uses —
// it needs no 32 KiB window and writes no output bytes, so it costs a
// fraction of a full inflate.
func SkimTail(src []byte, opts InflateOptions) (outLen, consumed int, err error) {
	r := getReader(src)
	defer putReader(r)
	outLen, err = skim(r, opts)
	if err != nil {
		return 0, 0, err
	}
	r.AlignByte()
	return outLen, r.BitsConsumed() / 8, nil
}

func skim(r *bitio.Reader, opts InflateOptions) (int, error) {
	skimPasses.Add(1)
	maxOut := opts.MaxOutput
	if maxOut <= 0 {
		maxOut = defaultMaxOutput
	}
	outLen := 0
	for {
		final, err := r.ReadBool()
		if err != nil {
			return 0, fmt.Errorf("%w: missing block header", ErrCorrupt)
		}
		btype, err := r.ReadBits(2)
		if err != nil {
			return 0, fmt.Errorf("%w: missing block type", ErrCorrupt)
		}
		switch btype {
		case 0: // stored
			r.AlignByte()
			lenv, err := r.ReadBits(16)
			if err != nil {
				return 0, fmt.Errorf("%w: stored length", ErrCorrupt)
			}
			nlen, err := r.ReadBits(16)
			if err != nil {
				return 0, fmt.Errorf("%w: stored nlen", ErrCorrupt)
			}
			if uint16(lenv) != ^uint16(nlen) {
				return 0, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
			}
			if outLen+int(lenv) > maxOut {
				return 0, ErrTooLarge
			}
			buf := make([]byte, lenv)
			if err := r.ReadBytes(buf); err != nil {
				return 0, fmt.Errorf("%w: stored payload truncated", ErrCorrupt)
			}
			outLen += int(lenv)
		case 1: // fixed Huffman
			fixedLL, fixedD, err := fixedDecoders()
			if err != nil {
				return 0, err
			}
			outLen, err = skimBlock(r, outLen, maxOut, fixedLL, fixedD)
			if err != nil {
				return 0, err
			}
		case 2: // dynamic Huffman
			ll, d, err := readDynamicHeader(r)
			if err != nil {
				return 0, err
			}
			outLen, err = skimBlock(r, outLen, maxOut, ll, d)
			if err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("%w: reserved block type 3", ErrCorrupt)
		}
		if final {
			return outLen, nil
		}
	}
}

// skimBlock decodes symbols until end-of-block, tracking length only.
func skimBlock(r *bitio.Reader, outLen, maxOut int, ll, d *huffman.Decoder) (int, error) {
	for {
		sym, err := ll.Decode(r)
		if err != nil {
			return 0, fmt.Errorf("%w: litlen: %v", ErrCorrupt, err)
		}
		if sym < 256 {
			if outLen+1 > maxOut {
				return 0, ErrTooLarge
			}
			outLen++
			continue
		}
		if sym == EndOfBlock {
			return outLen, nil
		}
		base, nb, ok := LengthFromSymbol(sym)
		if !ok {
			return 0, fmt.Errorf("%w: length symbol %d", ErrCorrupt, sym)
		}
		length := base
		if nb > 0 {
			ex, err := r.ReadBits(uint(nb))
			if err != nil {
				return 0, fmt.Errorf("%w: length extra", ErrCorrupt)
			}
			length += int(ex)
		}
		dsym, err := d.Decode(r)
		if err != nil {
			return 0, fmt.Errorf("%w: dist: %v", ErrCorrupt, err)
		}
		dbase, dnb, ok := DistFromSymbol(dsym)
		if !ok {
			return 0, fmt.Errorf("%w: dist symbol %d", ErrCorrupt, dsym)
		}
		dist := dbase
		if dnb > 0 {
			ex, err := r.ReadBits(uint(dnb))
			if err != nil {
				return 0, fmt.Errorf("%w: dist extra", ErrCorrupt)
			}
			dist += int(ex)
		}
		if dist > outLen {
			return 0, fmt.Errorf("%w: distance %d past start", ErrCorrupt, dist)
		}
		if outLen+length > maxOut {
			return 0, ErrTooLarge
		}
		outLen += length
	}
}

// readDynamicHeader parses HLIT/HDIST/HCLEN and the two code tables.
func readDynamicHeader(r *bitio.Reader) (ll, d *huffman.Decoder, err error) {
	hlit, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HLIT", ErrCorrupt)
	}
	hdist, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HDIST", ErrCorrupt)
	}
	hclen, err := r.ReadBits(4)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HCLEN", ErrCorrupt)
	}
	nlit := int(hlit) + 257
	ndist := int(hdist) + 1
	ncl := int(hclen) + 4
	if nlit > NumLitLen {
		return nil, nil, fmt.Errorf("%w: HLIT %d too large", ErrCorrupt, nlit)
	}
	if ndist > NumDist {
		return nil, nil, fmt.Errorf("%w: HDIST %d too large", ErrCorrupt, ndist)
	}
	clLengths := make([]uint8, NumCodeLength)
	for i := 0; i < ncl; i++ {
		v, err := r.ReadBits(3)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CL lengths", ErrCorrupt)
		}
		clLengths[clOrder[i]] = uint8(v)
	}
	clDec, err := huffman.NewDecoder(clLengths, 7)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: CL table: %v", ErrCorrupt, err)
	}
	lengths := make([]uint8, nlit+ndist)
	for i := 0; i < len(lengths); {
		sym, err := clDec.Decode(r)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CL symbol: %v", ErrCorrupt, err)
		}
		switch {
		case sym <= 15:
			lengths[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := r.ReadBits(2)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: repeat extra", ErrCorrupt)
			}
			rep := int(n) + 3
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: repeat overruns table", ErrCorrupt)
			}
			v := lengths[i-1]
			for j := 0; j < rep; j++ {
				lengths[i] = v
				i++
			}
		case sym == 17:
			n, err := r.ReadBits(3)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: zero-run extra", ErrCorrupt)
			}
			rep := int(n) + 3
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: zero run overruns table", ErrCorrupt)
			}
			i += rep
		case sym == 18:
			n, err := r.ReadBits(7)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: zero-run extra", ErrCorrupt)
			}
			rep := int(n) + 11
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: zero run overruns table", ErrCorrupt)
			}
			i += rep
		default:
			return nil, nil, fmt.Errorf("%w: CL symbol %d", ErrCorrupt, sym)
		}
	}
	llLengths := lengths[:nlit]
	dLengths := lengths[nlit:]
	if llLengths[EndOfBlock] == 0 {
		return nil, nil, fmt.Errorf("%w: no end-of-block code", ErrCorrupt)
	}
	ll, err = huffman.NewDecoder(llLengths, huffman.DefaultPrimaryBits)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: litlen table: %v", ErrCorrupt, err)
	}
	d, err = huffman.NewDecoder(dLengths, huffman.DefaultPrimaryBits)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: dist table: %v", ErrCorrupt, err)
	}
	return ll, d, nil
}

// inflateBlock decodes symbols until end-of-block.
func inflateBlock(r *bitio.Reader, out []byte, maxOut int, ll, d *huffman.Decoder) ([]byte, error) {
	for {
		sym, err := ll.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: litlen: %v", ErrCorrupt, err)
		}
		if sym < 256 {
			if len(out)+1 > maxOut {
				return nil, ErrTooLarge
			}
			out = append(out, byte(sym))
			continue
		}
		if sym == EndOfBlock {
			return out, nil
		}
		base, nb, ok := LengthFromSymbol(sym)
		if !ok {
			return nil, fmt.Errorf("%w: length symbol %d", ErrCorrupt, sym)
		}
		length := base
		if nb > 0 {
			ex, err := r.ReadBits(uint(nb))
			if err != nil {
				return nil, fmt.Errorf("%w: length extra", ErrCorrupt)
			}
			length += int(ex)
		}
		dsym, err := d.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: dist: %v", ErrCorrupt, err)
		}
		dbase, dnb, ok := DistFromSymbol(dsym)
		if !ok {
			return nil, fmt.Errorf("%w: dist symbol %d", ErrCorrupt, dsym)
		}
		dist := dbase
		if dnb > 0 {
			ex, err := r.ReadBits(uint(dnb))
			if err != nil {
				return nil, fmt.Errorf("%w: dist extra", ErrCorrupt)
			}
			dist += int(ex)
		}
		if dist > len(out) {
			return nil, fmt.Errorf("%w: distance %d past start", ErrCorrupt, dist)
		}
		if len(out)+length > maxOut {
			return nil, ErrTooLarge
		}
		start := len(out) - dist
		for j := 0; j < length; j++ {
			out = append(out, out[start+j])
		}
	}
}
