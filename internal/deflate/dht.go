package deflate

import (
	"fmt"
	"sync"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
	"nxzip/internal/lz77"
)

// DHT is a dynamic Huffman table: the code lengths for the literal/length
// and distance alphabets. This is exactly the object the accelerator's
// "DHT" interface exchanges with software — the POWER9 NX API lets callers
// supply a canned DHT, ask the engine to generate one from the data, or
// fall back to the fixed table.
//
// The code lengths fully determine the canonical encoders and the
// serialized header, so both are derived once on first use and cached on
// the table (LitLen/Dist must not be mutated after the table is first
// used to encode). DHTs are shared by pointer; they must not be copied
// after first use.
type DHT struct {
	LitLen []uint8 // 257..286 entries (must include EndOfBlock)
	Dist   []uint8 // 1..30 entries

	prepOnce sync.Once
	prepLL   *huffman.Encoder
	prepD    *huffman.Encoder
	prepPlan *headerPlan
	prepErr  error
}

// prepared returns the cached canonical encoders and header plan for the
// table, deriving them on first call. This is what makes the canned-DHT
// request path allocation-free: a long-lived table — exactly how the NX
// library ships canned DHTs — pays table construction once, not per
// request.
func (d *DHT) prepared() (*huffman.Encoder, *huffman.Encoder, *headerPlan, error) {
	d.prepOnce.Do(func() {
		d.prepPlan, d.prepErr = planHeader(d)
		if d.prepErr != nil {
			return
		}
		d.prepLL, d.prepErr = huffman.NewEncoder(padLengths(d.LitLen, NumLitLen))
		if d.prepErr != nil {
			return
		}
		d.prepD, d.prepErr = huffman.NewEncoder(padLengths(d.Dist, NumDist))
	})
	return d.prepLL, d.prepD, d.prepPlan, d.prepErr
}

// CountFrequencies tallies litlen/dist symbol frequencies for a token
// stream, including the end-of-block symbol. The returned slices are sized
// to the full alphabets.
func CountFrequencies(tokens []lz77.Token) (litlen, dist []int64) {
	litlen = make([]int64, NumLitLen)
	dist = make([]int64, NumDist)
	CountFrequenciesInto(litlen, dist, tokens)
	return litlen, dist
}

// CountFrequenciesInto is the allocation-free form of CountFrequencies:
// it tallies into caller-provided full-alphabet slices, which must be
// zeroed by the caller.
func CountFrequenciesInto(litlen, dist []int64, tokens []lz77.Token) {
	for _, t := range tokens {
		if !t.IsMatch() {
			litlen[t.Literal()]++
			continue
		}
		ls, _, _ := LengthSymbol(t.Length())
		litlen[ls]++
		ds, _, _ := DistSymbol(t.Dist())
		dist[ds]++
	}
	litlen[EndOfBlock]++
}

// BuildDHT constructs length-limited Huffman tables from symbol
// frequencies. It guarantees a decodable table: EndOfBlock always gets a
// code, and if no distance symbol occurs, one distance code is still
// emitted (RFC 1951 permits zero but one dummy code maximizes decoder
// compatibility, matching zlib).
func BuildDHT(litlenFreq, distFreq []int64) (*DHT, error) {
	lf := make([]int64, NumLitLen)
	copy(lf, litlenFreq)
	if lf[EndOfBlock] == 0 {
		lf[EndOfBlock] = 1
	}
	df := make([]int64, NumDist)
	copy(df, distFreq)
	used := false
	for _, f := range df {
		if f > 0 {
			used = true
			break
		}
	}
	if !used {
		df[0] = 1
	}
	ll, err := huffman.BuildLengths(lf, maxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("deflate: litlen table: %w", err)
	}
	dl, err := huffman.BuildLengths(df, maxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("deflate: dist table: %w", err)
	}
	return &DHT{LitLen: ll, Dist: dl}, nil
}

// trim returns lengths with trailing zeros removed, but at least min
// entries.
func trim(lengths []uint8, min int) []uint8 {
	n := len(lengths)
	for n > min && lengths[n-1] == 0 {
		n--
	}
	return lengths[:n]
}

// clSymbol is one code-length-alphabet symbol with its extra bits.
type clSymbol struct {
	sym   uint8
	extra uint8
	ebits uint8
}

// runLength encodes a sequence of code lengths into the code-length
// alphabet (symbols 0..15 literal, 16 repeat-prev, 17/18 zero runs).
func runLength(lengths []uint8) []clSymbol {
	var out []clSymbol
	i := 0
	for i < len(lengths) {
		v := lengths[i]
		run := 1
		for i+run < len(lengths) && lengths[i+run] == v {
			run++
		}
		switch {
		case v == 0 && run >= 3:
			for run >= 3 {
				r := run
				if r > 138 {
					r = 138
				}
				if r <= 10 {
					out = append(out, clSymbol{17, uint8(r - 3), 3})
				} else {
					out = append(out, clSymbol{18, uint8(r - 11), 7})
				}
				run -= r
				i += r
			}
			for ; run > 0; run-- {
				out = append(out, clSymbol{0, 0, 0})
				i++
			}
		case v != 0 && run >= 4:
			// Emit the value once, then repeat-prev runs of 3..6.
			out = append(out, clSymbol{v, 0, 0})
			i++
			run--
			for run >= 3 {
				r := run
				if r > 6 {
					r = 6
				}
				out = append(out, clSymbol{16, uint8(r - 3), 2})
				run -= r
				i += r
			}
			for ; run > 0; run-- {
				out = append(out, clSymbol{v, 0, 0})
				i++
			}
		default:
			for ; run > 0; run-- {
				out = append(out, clSymbol{v, 0, 0})
				i++
			}
		}
	}
	return out
}

// headerPlan is a fully-computed dynamic block header, ready to write and
// with a known bit cost (used for stored/fixed/dynamic selection).
type headerPlan struct {
	litlen    []uint8 // trimmed
	dist      []uint8 // trimmed
	clSymbols []clSymbol
	clLengths []uint8 // 19 entries
	clEnc     *huffman.Encoder
	bits      int
}

// planHeader computes the serialized form of a DHT.
func planHeader(d *DHT) (*headerPlan, error) {
	ll := trim(d.LitLen, 257)
	dl := trim(d.Dist, 1)
	if len(ll) > NumLitLen || len(dl) > NumDist {
		return nil, fmt.Errorf("deflate: DHT alphabet too large (%d litlen, %d dist)", len(ll), len(dl))
	}
	combined := make([]uint8, 0, len(ll)+len(dl))
	combined = append(combined, ll...)
	combined = append(combined, dl...)
	syms := runLength(combined)
	clFreq := make([]int64, NumCodeLength)
	for _, s := range syms {
		clFreq[s.sym]++
	}
	clLengths, err := huffman.BuildLengths(clFreq, maxCLCodeLen)
	if err != nil {
		return nil, err
	}
	clEnc, err := huffman.NewEncoder(clLengths)
	if err != nil {
		return nil, err
	}
	// HCLEN: number of code-length-code lengths transmitted, in clOrder,
	// with trailing zeros omitted (min 4).
	hclen := NumCodeLength
	for hclen > 4 && clLengths[clOrder[hclen-1]] == 0 {
		hclen--
	}
	bits := 5 + 5 + 4 + 3*hclen
	for _, s := range syms {
		bits += int(clEnc.Codes[s.sym].Len) + int(s.ebits)
	}
	return &headerPlan{
		litlen: ll, dist: dl, clSymbols: syms,
		clLengths: clLengths, clEnc: clEnc, bits: bits,
	}, nil
}

// write emits the dynamic header (after the 3 block-header bits).
func (h *headerPlan) write(w *bitio.Writer) {
	w.WriteBits(uint64(len(h.litlen)-257), 5)
	w.WriteBits(uint64(len(h.dist)-1), 5)
	hclen := NumCodeLength
	for hclen > 4 && h.clLengths[clOrder[hclen-1]] == 0 {
		hclen--
	}
	w.WriteBits(uint64(hclen-4), 4)
	for i := 0; i < hclen; i++ {
		w.WriteBits(uint64(h.clLengths[clOrder[i]]), 3)
	}
	for _, s := range h.clSymbols {
		c := h.clEnc.Codes[s.sym]
		w.WriteBits(uint64(c.Bits), uint(c.Len))
		if s.ebits > 0 {
			w.WriteBits(uint64(s.extra), uint(s.ebits))
		}
	}
}
