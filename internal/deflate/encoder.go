package deflate

import (
	"fmt"
	"sync"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
	"nxzip/internal/lz77"
)

// BlockMode selects how a DEFLATE block is encoded.
type BlockMode int

const (
	// ModeAuto picks the cheapest of stored/fixed/dynamic, like zlib.
	ModeAuto BlockMode = iota
	// ModeFixed forces the static Huffman table (the accelerator's FHT
	// function code).
	ModeFixed
	// ModeDynamic forces a per-block generated table (the accelerator's
	// DHT-generate function code).
	ModeDynamic
	// ModeStored forces an uncompressed block.
	ModeStored
)

func (m BlockMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFixed:
		return "fht"
	case ModeDynamic:
		return "dht"
	case ModeStored:
		return "stored"
	}
	return fmt.Sprintf("BlockMode(%d)", int(m))
}

// maxStoredBlock is the largest LEN a stored block can carry (RFC 1951).
const maxStoredBlock = 65535

// BlockWriter serializes token streams into DEFLATE blocks on a bit
// stream. It is the shared back end of the software codec and the
// accelerator model's Huffman-encode stage. The frequency scratch lives
// in the struct so a reused BlockWriter counts symbols without
// allocating; the fixed Huffman tables are process-wide (they are
// defined by RFC 1951 and immutable after construction).
type BlockWriter struct {
	w        *bitio.Writer
	wroteEnd bool
	litFreq  [NumLitLen]int64
	distFreq [NumDist]int64
}

var (
	fixedEncOnce sync.Once
	fixedLLEnc   *huffman.Encoder
	fixedDEnc    *huffman.Encoder
)

// fixedEncoders returns the shared RFC 1951 static-table encoders. They
// are read-only after construction, so every BlockWriter (and every
// modeled engine) shares one pair.
func fixedEncoders() (*huffman.Encoder, *huffman.Encoder) {
	fixedEncOnce.Do(func() {
		fl, err := huffman.NewEncoder(FixedLitLenLengths())
		if err != nil {
			panic("deflate: fixed litlen table: " + err.Error())
		}
		fd, err := huffman.NewEncoder(FixedDistLengths())
		if err != nil {
			panic("deflate: fixed dist table: " + err.Error())
		}
		fixedLLEnc, fixedDEnc = fl, fd
	})
	return fixedLLEnc, fixedDEnc
}

// NewBlockWriter wraps a bit writer.
func NewBlockWriter(w *bitio.Writer) *BlockWriter {
	return &BlockWriter{w: w}
}

// Reset retargets the BlockWriter at a (usually freshly reset) bit
// writer and clears the end-of-stream latch, so one BlockWriter can
// serialize many independent streams without reallocation.
func (bw *BlockWriter) Reset(w *bitio.Writer) {
	bw.w = w
	bw.wroteEnd = false
}

// countInto tallies token frequencies into the writer's scratch arrays
// and returns them as slices.
func (bw *BlockWriter) countInto(tokens []lz77.Token) ([]int64, []int64) {
	lf, df := bw.litFreq[:], bw.distFreq[:]
	for i := range lf {
		lf[i] = 0
	}
	for i := range df {
		df[i] = 0
	}
	CountFrequenciesInto(lf, df, tokens)
	return lf, df
}

// WriteBlock emits one block containing tokens (whose expansion is src,
// needed for the stored fallback). final marks BFINAL. A provided dht is
// used for ModeDynamic ("canned" tables); pass nil to generate one from
// the token frequencies.
func (bw *BlockWriter) WriteBlock(tokens []lz77.Token, src []byte, final bool, mode BlockMode, dht *DHT) error {
	if bw.wroteEnd {
		return fmt.Errorf("deflate: write after final block")
	}
	litFreq, distFreq := bw.countInto(tokens)
	fixedLL, fixedD := fixedEncoders()

	// Cost of fixed encoding.
	fixedBits := 3 + bw.costBits(litFreq, distFreq, fixedLL, fixedD)

	// Cost of dynamic encoding. A canned dht carries its encoders and
	// header plan from first use (see DHT.prepared), so the canned path
	// builds no tables per block — only a freshly generated table pays
	// the construction cost, exactly as the hardware builds its DHT
	// on-chip in DHT-generate mode.
	var (
		plan    *headerPlan
		dynBits = int64(1) << 62
		llEnc   *huffman.Encoder
		dEnc    *huffman.Encoder
	)
	if mode == ModeDynamic || mode == ModeAuto {
		useDHT := dht
		var err error
		if useDHT == nil {
			useDHT, err = BuildDHT(litFreq, distFreq)
			if err != nil {
				return err
			}
		}
		if llEnc, dEnc, plan, err = useDHT.prepared(); err != nil {
			return err
		}
		// A canned DHT may lack codes for symbols this block uses; detect
		// and reject (the hardware raises a CC error for this case).
		if err := checkCoverage(litFreq, llEnc, distFreq, dEnc); err != nil {
			return err
		}
		dynBits = 3 + int64(plan.bits) + bw.costBits(litFreq, distFreq, llEnc, dEnc)
	}

	storedBits := storedCost(len(src), bw.w.BitsWritten())

	switch mode {
	case ModeStored:
		bw.writeStoredChain(src, final)
	case ModeFixed:
		bw.writeHeader(final, 1)
		bw.writeTokens(tokens, fixedLL, fixedD)
	case ModeDynamic:
		bw.writeHeader(final, 2)
		plan.write(bw.w)
		bw.writeTokens(tokens, llEnc, dEnc)
	case ModeAuto:
		switch {
		case storedBits <= fixedBits && storedBits <= dynBits:
			bw.writeStoredChain(src, final)
		case fixedBits <= dynBits:
			bw.writeHeader(final, 1)
			bw.writeTokens(tokens, fixedLL, fixedD)
		default:
			bw.writeHeader(final, 2)
			plan.write(bw.w)
			bw.writeTokens(tokens, llEnc, dEnc)
		}
	default:
		return fmt.Errorf("deflate: unknown block mode %d", mode)
	}
	if final {
		bw.wroteEnd = true
	}
	return nil
}

// padLengths extends lengths to n entries with zeros (encoder tables are
// indexed by symbol).
func padLengths(lengths []uint8, n int) []uint8 {
	if len(lengths) >= n {
		return lengths[:n]
	}
	out := make([]uint8, n)
	copy(out, lengths)
	return out
}

// checkCoverage verifies every used symbol has a code.
func checkCoverage(litFreq []int64, ll *huffman.Encoder, distFreq []int64, d *huffman.Encoder) error {
	for sym, f := range litFreq {
		if f > 0 && ll.Codes[sym].Len == 0 {
			return fmt.Errorf("deflate: DHT missing litlen code for symbol %d", sym)
		}
	}
	for sym, f := range distFreq {
		if f > 0 && d.Codes[sym].Len == 0 {
			return fmt.Errorf("deflate: DHT missing dist code for symbol %d", sym)
		}
	}
	return nil
}

// costBits computes the token payload cost (including end-of-block) under
// the given encoders, excluding the 3 header bits and any table header.
func (bw *BlockWriter) costBits(litFreq, distFreq []int64, ll, d *huffman.Encoder) int64 {
	var bits int64
	for sym, f := range litFreq {
		if f == 0 {
			continue
		}
		bits += f * int64(ll.Codes[sym].Len)
		if sym > EndOfBlock {
			_, nb, _ := LengthFromSymbol(sym)
			bits += f * int64(nb)
		}
	}
	for sym, f := range distFreq {
		if f == 0 {
			continue
		}
		bits += f * int64(d.Codes[sym].Len)
		_, nb, _ := DistFromSymbol(sym)
		bits += f * int64(nb)
	}
	return bits
}

func (bw *BlockWriter) writeHeader(final bool, btype uint64) {
	bw.w.WriteBool(final)
	bw.w.WriteBits(btype, 2)
}

func (bw *BlockWriter) writeStored(src []byte, final bool) {
	bw.writeHeader(final, 0)
	bw.w.AlignByte()
	n := uint64(len(src))
	bw.w.WriteBits(n, 16)
	bw.w.WriteBits(^n, 16)
	bw.w.WriteBytes(src)
}

// writeStoredChain emits src as one or more stored blocks, splitting at
// the 64K-1 LEN limit.
func (bw *BlockWriter) writeStoredChain(src []byte, final bool) {
	off := 0
	for {
		end := off + maxStoredBlock
		last := false
		if end >= len(src) {
			end = len(src)
			last = final
		}
		bw.writeStored(src[off:end], last)
		off = end
		if off >= len(src) {
			return
		}
	}
}

// storedCost returns the exact bit cost of writeStoredChain starting at
// bit position pos.
func storedCost(n, pos int) int64 {
	start := pos
	off := 0
	for {
		chunk := n - off
		if chunk > maxStoredBlock {
			chunk = maxStoredBlock
		}
		pos += 3
		pos += (8 - pos%8) % 8
		pos += 32 + 8*chunk
		off += chunk
		if off >= n {
			return int64(pos - start)
		}
	}
}

func (bw *BlockWriter) writeTokens(tokens []lz77.Token, ll, d *huffman.Encoder) {
	w := bw.w
	for _, t := range tokens {
		if !t.IsMatch() {
			c := ll.Codes[t.Literal()]
			w.WriteBits(uint64(c.Bits), uint(c.Len))
			continue
		}
		ls, lextra, lnb := LengthSymbol(t.Length())
		c := ll.Codes[ls]
		w.WriteBits(uint64(c.Bits), uint(c.Len))
		if lnb > 0 {
			w.WriteBits(uint64(lextra), uint(lnb))
		}
		ds, dextra, dnb := DistSymbol(t.Dist())
		dc := d.Codes[ds]
		w.WriteBits(uint64(dc.Bits), uint(dc.Len))
		if dnb > 0 {
			w.WriteBits(uint64(dextra), uint(dnb))
		}
	}
	eob := ll.Codes[EndOfBlock]
	w.WriteBits(uint64(eob.Bits), uint(eob.Len))
}

// Options configures the one-shot software compressor.
type Options struct {
	Level     int       // 1..9, zlib-equivalent (default 6)
	Mode      BlockMode // block strategy (default ModeAuto)
	BlockSize int       // bytes of input per block (default 128 KiB)
	DHT       *DHT      // optional canned table for ModeDynamic
}

func (o *Options) fill() {
	if o.Level == 0 {
		o.Level = 6
	}
	if o.BlockSize == 0 {
		o.BlockSize = 128 << 10
	}
}

// Compress is the one-shot software DEFLATE encoder (raw stream, no gzip
// or zlib framing). It is the reproduction's "zlib on a core" baseline.
func Compress(src []byte, opts Options) ([]byte, error) {
	opts.fill()
	w := bitio.NewWriter(make([]byte, 0, len(src)/2+64))
	bw := NewBlockWriter(w)
	m := lz77.NewSoftMatcher(lz77.LevelParams(opts.Level))
	if err := compressTokens(bw, src, opts, func(chunk []byte) []lz77.Token {
		return m.Tokenize(nil, chunk)
	}); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// CompressWithTokenizer runs the block pipeline with a caller-supplied
// tokenizer (the accelerator model passes the hardware matcher here).
func CompressWithTokenizer(src []byte, opts Options, tokenize func([]byte) []lz77.Token) ([]byte, error) {
	opts.fill()
	w := bitio.NewWriter(make([]byte, 0, len(src)/2+64))
	bw := NewBlockWriter(w)
	if err := compressTokens(bw, src, opts, tokenize); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

func compressTokens(bw *BlockWriter, src []byte, opts Options, tokenize func([]byte) []lz77.Token) error {
	if len(src) == 0 {
		return bw.WriteBlock(nil, nil, true, opts.Mode, opts.DHT)
	}
	for off := 0; off < len(src); off += opts.BlockSize {
		end := off + opts.BlockSize
		final := false
		if end >= len(src) {
			end = len(src)
			final = true
		}
		// Note: blocks are tokenized independently (window does not span
		// blocks). This matches the accelerator's request-at-a-time
		// operation and costs a small amount of ratio at block borders.
		tokens := tokenize(src[off:end])
		if err := bw.WriteBlock(tokens, src[off:end], final, opts.Mode, opts.DHT); err != nil {
			return err
		}
	}
	return nil
}

// EncodeTokens serializes a complete token stream as a single final
// DEFLATE block (the accelerator emits one block per request). src is the
// tokens' expansion, needed for the stored fallback in ModeAuto.
func EncodeTokens(tokens []lz77.Token, src []byte, mode BlockMode, dht *DHT) ([]byte, error) {
	w := bitio.NewWriter(make([]byte, 0, len(src)/2+64))
	bw := NewBlockWriter(w)
	if err := bw.WriteBlock(tokens, src, true, mode, dht); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// EncodeTokensStream serializes tokens as one stream segment. When final,
// the block carries BFINAL and the stream ends. Otherwise the block is
// non-final and is followed by an empty stored block (zlib's sync flush),
// which both byte-aligns the segment — so per-request outputs concatenate
// into a single valid DEFLATE stream — and lets the decoder make progress
// at the request boundary. This is how the accelerator's library composes
// one long stream from buffer-sized requests.
func EncodeTokensStream(tokens []lz77.Token, src []byte, mode BlockMode, dht *DHT, final bool) ([]byte, error) {
	var e StreamEncoder
	return e.EncodeStream(make([]byte, 0, len(src)/2+64), tokens, src, mode, dht, final)
}

// StreamEncoder is a reusable stream-segment serializer: it owns the bit
// writer and block writer (with their scratch) so a long-lived holder —
// the modeled engine keeps one per engine — encodes segment after
// segment with zero allocations, appending each into a caller-supplied
// buffer. The zero value is ready to use; a StreamEncoder is not safe
// for concurrent use.
type StreamEncoder struct {
	w  bitio.Writer
	bw BlockWriter
}

// NewStreamEncoder returns an empty encoder.
func NewStreamEncoder() *StreamEncoder { return &StreamEncoder{} }

// EncodeStream appends one stream segment (see EncodeTokensStream for
// the segment semantics) to dst and returns the extended slice.
func (e *StreamEncoder) EncodeStream(dst []byte, tokens []lz77.Token, src []byte, mode BlockMode, dht *DHT, final bool) ([]byte, error) {
	e.w.ResetTo(dst)
	e.bw.Reset(&e.w)
	if err := e.bw.WriteBlock(tokens, src, final, mode, dht); err != nil {
		return nil, err
	}
	if !final {
		e.bw.writeStored(nil, false) // sync flush
	}
	return e.w.Bytes(), nil
}
