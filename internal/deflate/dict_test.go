package deflate

import (
	"bytes"
	"compress/zlib"
	"io"
	"strings"
	"testing"
)

var (
	testDict = []byte(strings.Repeat("GET /api/v2/resource HTTP/1.1\r\nAccept: application/json\r\n", 20))
	testMsg  = []byte("GET /api/v2/resource HTTP/1.1\r\nAccept: application/json\r\nX-Req: 42\r\n\r\n")
)

func TestZlibDictRoundTrip(t *testing.T) {
	comp, err := CompressZlibDict(testMsg, testDict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressZlibDict(comp, testDict, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, testMsg) {
		t.Fatal("mismatch")
	}
}

func TestZlibDictImprovesRatio(t *testing.T) {
	withDict, err := CompressZlibDict(testMsg, testDict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompressZlib(testMsg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The message is almost entirely dictionary content; FDICT should
	// shrink it drastically.
	if len(withDict) >= len(without)*2/3 {
		t.Fatalf("dict stream %d not well below plain %d", len(withDict), len(without))
	}
}

func TestZlibDictInteropWithStdlib(t *testing.T) {
	// stdlib zlib reads our FDICT stream given the same dictionary.
	comp, err := CompressZlibDict(testMsg, testDict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zlib.NewReaderDict(bytes.NewReader(comp), testDict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, testMsg) {
		t.Fatal("stdlib mismatch")
	}
	// And we read stdlib's FDICT stream.
	var buf bytes.Buffer
	zw, err := zlib.NewWriterLevelDict(&buf, zlib.BestCompression, testDict)
	if err != nil {
		t.Fatal(err)
	}
	zw.Write(testMsg)
	zw.Close()
	got2, err := DecompressZlibDict(buf.Bytes(), testDict, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, testMsg) {
		t.Fatal("stdlib->ours mismatch")
	}
}

func TestZlibDictWrongDictionary(t *testing.T) {
	comp, _ := CompressZlibDict(testMsg, testDict, Options{})
	if _, err := DecompressZlibDict(comp, []byte("wrong dictionary"), InflateOptions{}); err == nil {
		t.Fatal("wrong dictionary accepted")
	}
}

func TestZlibDictPlainStreamPassesThrough(t *testing.T) {
	comp, _ := CompressZlib(testMsg, Options{})
	got, err := DecompressZlibDict(comp, nil, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, testMsg) {
		t.Fatal("non-FDICT stream mishandled")
	}
}

func TestUnwrapDictParsesHeader(t *testing.T) {
	comp, _ := CompressZlibDict(testMsg, testDict, Options{})
	_, _, dictID, hasDict, err := ZlibUnwrapDict(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !hasDict || dictID == 0 {
		t.Fatalf("hasDict=%v dictID=%08x", hasDict, dictID)
	}
	// Plain stream: no dict.
	plain, _ := CompressZlib(testMsg, Options{})
	_, _, _, hasDict2, err := ZlibUnwrapDict(plain)
	if err != nil {
		t.Fatal(err)
	}
	if hasDict2 {
		t.Fatal("plain stream claims dict")
	}
}
