package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nxzip/internal/bitio"
	"nxzip/internal/lz77"
)

func corpusInputs(tb testing.TB) map[string][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(1234))
	random := make([]byte, 80000)
	rng.Read(random)
	text := []byte(strings.Repeat("It was the best of times, it was the worst of times. ", 2000))
	jsonish := bytes.Repeat([]byte(`{"ts":1700000000,"level":"INFO","msg":"request served","latency_us":123}`+"\n"), 900)
	skewed := make([]byte, 60000)
	for i := range skewed {
		skewed[i] = byte(rng.Intn(3)) * 17
	}
	return map[string][]byte{
		"empty":   {},
		"one":     {42},
		"tiny":    []byte("hello hello hello"),
		"text":    text,
		"jsonish": jsonish,
		"random":  random,
		"zeros":   make([]byte, 100000),
		"skewed":  skewed,
		"exact64k": func() []byte {
			b := make([]byte, 65535)
			rng.Read(b)
			return b
		}(),
	}
}

// stdlibInflate decodes a raw DEFLATE stream with compress/flate.
func stdlibInflate(tb testing.TB, data []byte) []byte {
	tb.Helper()
	r := flate.NewReader(bytes.NewReader(data))
	out, err := io.ReadAll(r)
	if err != nil {
		tb.Fatalf("stdlib inflate: %v", err)
	}
	return out
}

func TestCompressRoundTripAllModes(t *testing.T) {
	for name, src := range corpusInputs(t) {
		for _, mode := range []BlockMode{ModeAuto, ModeFixed, ModeDynamic, ModeStored} {
			comp, err := Compress(src, Options{Level: 6, Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", name, mode, err)
			}
			// Our inflater.
			got, err := Decompress(comp, InflateOptions{})
			if err != nil {
				t.Fatalf("%s/%s: our inflate: %v", name, mode, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s/%s: our inflate mismatch", name, mode)
			}
			// Cross-validation: stdlib must accept our bits.
			if sgot := stdlibInflate(t, comp); !bytes.Equal(sgot, src) {
				t.Fatalf("%s/%s: stdlib inflate mismatch", name, mode)
			}
		}
	}
}

func TestCompressAllLevels(t *testing.T) {
	src := corpusInputs(t)["text"]
	var prevLen int
	for level := 1; level <= 9; level++ {
		comp, err := Compress(src, Options{Level: level})
		if err != nil {
			t.Fatal(err)
		}
		if got := stdlibInflate(t, comp); !bytes.Equal(got, src) {
			t.Fatalf("level %d: mismatch", level)
		}
		if level > 1 && len(comp) > prevLen*11/10 {
			t.Fatalf("level %d output (%d) much larger than level %d (%d)", level, len(comp), level-1, prevLen)
		}
		prevLen = len(comp)
	}
}

func TestInflateStdlibOutput(t *testing.T) {
	// Our inflater must accept zlib-family encoder output (stdlib flate).
	for name, src := range corpusInputs(t) {
		for _, lvl := range []int{flate.BestSpeed, flate.DefaultCompression, flate.BestCompression, flate.HuffmanOnly} {
			var buf bytes.Buffer
			fw, err := flate.NewWriter(&buf, lvl)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fw.Write(src); err != nil {
				t.Fatal(err)
			}
			if err := fw.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := Decompress(buf.Bytes(), InflateOptions{})
			if err != nil {
				t.Fatalf("%s/level %d: %v", name, lvl, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s/level %d: mismatch", name, lvl)
			}
		}
	}
}

func TestHWTokenizerThroughBlockWriter(t *testing.T) {
	// The accelerator path: hardware matcher tokens through the same block
	// writer, decodable by stdlib.
	hw := lz77.NewHWMatcher(lz77.P9HWParams())
	for name, src := range corpusInputs(t) {
		comp, err := CompressWithTokenizer(src, Options{Mode: ModeDynamic}, func(chunk []byte) []lz77.Token {
			toks, _ := hw.Tokenize(nil, chunk)
			return toks
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := stdlibInflate(t, comp); !bytes.Equal(got, src) {
			t.Fatalf("%s: mismatch", name)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	for name, src := range corpusInputs(t) {
		gz, err := CompressGzip(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressGzip(gz, InflateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: mismatch", name)
		}
		// stdlib gzip must accept our framing and bits.
		zr, err := gzip.NewReader(bytes.NewReader(gz))
		if err != nil {
			t.Fatalf("%s: stdlib gzip header: %v", name, err)
		}
		sgot, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: stdlib gzip body: %v", name, err)
		}
		if !bytes.Equal(sgot, src) {
			t.Fatalf("%s: stdlib gzip mismatch", name)
		}
	}
}

func TestGzipReadStdlibOutput(t *testing.T) {
	src := corpusInputs(t)["jsonish"]
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = "test.json" // exercise FNAME parsing
	zw.Comment = "with comment"
	zw.Extra = []byte{1, 2, 3}
	if _, err := zw.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := DecompressGzip(buf.Bytes(), InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
}

func TestZlibRoundTrip(t *testing.T) {
	src := corpusInputs(t)["text"]
	z, err := CompressZlib(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressZlib(z, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
	// stdlib zlib accepts ours.
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sgot, src) {
		t.Fatal("stdlib mismatch")
	}
	// and we accept stdlib's.
	var buf bytes.Buffer
	sw := zlib.NewWriter(&buf)
	sw.Write(src)
	sw.Close()
	got2, err := DecompressZlib(buf.Bytes(), InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, src) {
		t.Fatal("stdlib->ours mismatch")
	}
}

func TestGzipDetectsCorruption(t *testing.T) {
	src := corpusInputs(t)["text"]
	gz, _ := CompressGzip(src, Options{})
	// CRC corruption.
	bad := append([]byte{}, gz...)
	bad[len(bad)-5] ^= 0xFF
	if _, err := DecompressGzip(bad, InflateOptions{}); err == nil {
		t.Fatal("corrupt CRC accepted")
	}
	// ISIZE corruption.
	bad2 := append([]byte{}, gz...)
	bad2[len(bad2)-1] ^= 0x01
	if _, err := DecompressGzip(bad2, InflateOptions{}); err == nil {
		t.Fatal("corrupt ISIZE accepted")
	}
	// Magic corruption.
	bad3 := append([]byte{}, gz...)
	bad3[0] = 0
	if _, err := DecompressGzip(bad3, InflateOptions{}); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestInflateRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rejected := 0
	for i := 0; i < 200; i++ {
		garbage := make([]byte, rng.Intn(200)+1)
		rng.Read(garbage)
		if _, err := Decompress(garbage, InflateOptions{MaxOutput: 1 << 20}); err != nil {
			rejected++
		}
	}
	// Random bytes occasionally form a valid tiny stream; the vast
	// majority must be rejected cleanly (no panic).
	if rejected < 150 {
		t.Fatalf("only %d/200 garbage streams rejected", rejected)
	}
}

func TestInflateOutputLimit(t *testing.T) {
	src := make([]byte, 100000)
	comp, _ := Compress(src, Options{})
	if _, err := Decompress(comp, InflateOptions{MaxOutput: 1000}); err != ErrTooLarge {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestDecompressTail(t *testing.T) {
	src := []byte("tail test data, tail test data")
	comp, _ := Compress(src, Options{})
	withJunk := append(append([]byte{}, comp...), 0xDE, 0xAD)
	out, consumed, err := DecompressTail(withJunk, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("mismatch")
	}
	if consumed != len(comp) {
		t.Fatalf("consumed %d, want %d", consumed, len(comp))
	}
}

func TestCannedDHT(t *testing.T) {
	// Build a DHT from one sample, use it to encode a similar message
	// (the accelerator's canned-DHT mode).
	sample := []byte(strings.Repeat("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n", 100))
	similar := []byte(strings.Repeat("GET /about.html HTTP/1.1\r\nHost: example.org\r\n\r\n", 120))
	m := lz77.NewSoftMatcher(lz77.LevelParams(6))
	lf, df := CountFrequencies(m.Tokenize(nil, sample))
	// Give every symbol a nonzero floor so the canned table covers
	// anything the similar message can produce.
	for i := range lf {
		lf[i]++
	}
	for i := range df {
		df[i]++
	}
	dht, err := BuildDHT(lf, df)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compress(similar, Options{Mode: ModeDynamic, DHT: dht})
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, comp); !bytes.Equal(got, similar) {
		t.Fatal("canned DHT stream mismatch")
	}
}

func TestCannedDHTMissingSymbol(t *testing.T) {
	// A canned table with no code for 'z' must be rejected when the data
	// needs it.
	lf := make([]int64, NumLitLen)
	lf['a'] = 10
	lf[EndOfBlock] = 1
	df := make([]int64, NumDist)
	dht, err := BuildDHT(lf, df)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compress([]byte("zzz"), Options{Mode: ModeDynamic, DHT: dht, Level: 1})
	if err == nil {
		t.Fatal("missing-symbol DHT accepted")
	}
}

func TestAutoPicksStoredForRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 30000)
	rng.Read(src)
	auto, _ := Compress(src, Options{Mode: ModeAuto})
	if len(auto) > len(src)+200 {
		t.Fatalf("auto mode expanded random data: %d -> %d", len(src), len(auto))
	}
}

func TestMultiBlockStream(t *testing.T) {
	src := corpusInputs(t)["text"]
	comp, err := Compress(src, Options{BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, comp); !bytes.Equal(got, src) {
		t.Fatal("multi-block mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte, level8 uint8, mode8 uint8) bool {
		level := int(level8%9) + 1
		mode := BlockMode(mode8 % 4)
		comp, err := Compress(src, Options{Level: level, Mode: mode})
		if err != nil {
			return false
		}
		got, err := Decompress(comp, InflateOptions{})
		if err != nil {
			return false
		}
		return bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoredChainOver64K(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := make([]byte, 200000)
	rng.Read(src)
	comp, err := Compress(src, Options{Mode: ModeStored, BlockSize: len(src)})
	if err != nil {
		t.Fatal(err)
	}
	if got := stdlibInflate(t, comp); !bytes.Equal(got, src) {
		t.Fatal("stored chain mismatch")
	}
}

func TestSymbolTables(t *testing.T) {
	for l := lz77.MinMatch; l <= lz77.MaxMatch; l++ {
		sym, extra, nb := LengthSymbol(l)
		base, nb2, ok := LengthFromSymbol(sym)
		if !ok || nb != nb2 {
			t.Fatalf("length %d: symbol metadata disagrees", l)
		}
		if base+int(extra) != l {
			t.Fatalf("length %d: base %d + extra %d", l, base, extra)
		}
		if int(extra) >= 1<<nb {
			t.Fatalf("length %d: extra %d overflows %d bits", l, extra, nb)
		}
	}
	for d := 1; d <= lz77.WindowSize; d++ {
		sym, extra, nb := DistSymbol(d)
		base, nb2, ok := DistFromSymbol(sym)
		if !ok || nb != nb2 {
			t.Fatalf("dist %d: symbol metadata disagrees", d)
		}
		if base+int(extra) != d {
			t.Fatalf("dist %d: base %d + extra %d", d, base, extra)
		}
		if int(extra) >= 1<<nb {
			t.Fatalf("dist %d: extra %d overflows %d bits", d, extra, nb)
		}
	}
}

func TestWriteAfterFinal(t *testing.T) {
	w := newTestWriter()
	bw := NewBlockWriter(w)
	if err := bw.WriteBlock(nil, nil, true, ModeFixed, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBlock(nil, nil, true, ModeFixed, nil); err == nil {
		t.Fatal("write after final accepted")
	}
}

func BenchmarkCompressLevel1(b *testing.B) { benchCompress(b, Options{Level: 1}) }
func BenchmarkCompressLevel6(b *testing.B) { benchCompress(b, Options{Level: 6}) }
func BenchmarkCompressLevel9(b *testing.B) { benchCompress(b, Options{Level: 9}) }
func BenchmarkDecompress(b *testing.B) {
	src := corpusInputs(b)["text"]
	comp, _ := Compress(src, Options{})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, InflateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCompress(b *testing.B, opts Options) {
	src := corpusInputs(b)["text"]
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func newTestWriter() *bitio.Writer { return bitio.NewWriter(nil) }

func TestInspectStream(t *testing.T) {
	src := corpusInputs(t)["text"]
	comp, err := Compress(src, Options{BlockSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := InspectStream(comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != (len(src)+32<<10-1)/(32<<10) {
		t.Fatalf("blocks = %d", len(infos))
	}
	var total, bits int
	for i, b := range infos {
		total += b.OutBytes
		bits += b.HeaderBits + b.DataBits
		if (b.Final) != (i == len(infos)-1) {
			t.Fatalf("final flag wrong at block %d", i)
		}
		if b.Literals+b.MatchBytes != b.OutBytes {
			t.Fatalf("block %d: literals %d + match bytes %d != out %d",
				i, b.Literals, b.MatchBytes, b.OutBytes)
		}
	}
	if total != len(src) {
		t.Fatalf("inspected %d bytes, want %d", total, len(src))
	}
	// All bits accounted for (stream may have byte-align padding at end).
	if bits > len(comp)*8 || bits < (len(comp)-1)*8 {
		t.Fatalf("bits %d vs stream %d", bits, len(comp)*8)
	}
}

func TestInspectStreamStoredAndFixed(t *testing.T) {
	for _, mode := range []BlockMode{ModeStored, ModeFixed} {
		comp, err := Compress([]byte("inspect me, inspect me"), Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		infos, err := InspectStream(comp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 1 {
			t.Fatalf("%v: %d blocks", mode, len(infos))
		}
		wantType := 0
		if mode == ModeFixed {
			wantType = 1
		}
		if infos[0].Type != wantType {
			t.Fatalf("%v: type %d", mode, infos[0].Type)
		}
	}
}

func TestInspectStreamCorrupt(t *testing.T) {
	if _, err := InspectStream([]byte{0x07, 0xFF}, 0); err == nil {
		t.Fatal("corrupt stream inspected cleanly")
	}
	src := make([]byte, 100000)
	comp, _ := Compress(src, Options{})
	if _, err := InspectStream(comp, 1000); err != ErrTooLarge {
		t.Fatalf("limit not enforced: %v", err)
	}
}
