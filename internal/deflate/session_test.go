package deflate

import (
	"bytes"
	"compress/flate"
	"math/rand"
	"testing"
)

// feedInPieces drives a Session with chunkSizes-byte pieces of comp.
func feedInPieces(t *testing.T, comp []byte, chunk int, opts InflateOptions) []byte {
	t.Helper()
	s := NewSession(opts)
	var out []byte
	for off := 0; off < len(comp); off += chunk {
		end := off + chunk
		final := false
		if end >= len(comp) {
			end = len(comp)
			final = true
		}
		got, err := s.Feed(comp[off:end], final)
		if err != nil {
			t.Fatalf("feed at %d: %v", off, err)
		}
		out = append(out, got...)
	}
	if !s.Done() {
		t.Fatal("session not done after final feed")
	}
	return out
}

func TestSessionSingleShot(t *testing.T) {
	src := corpusInputs(t)["text"]
	comp, err := Compress(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := feedInPieces(t, comp, len(comp), InflateOptions{})
	if !bytes.Equal(got, src) {
		t.Fatal("mismatch")
	}
}

func TestSessionByteAtATime(t *testing.T) {
	src := []byte("the stream arrives one byte at a time, one byte at a time.")
	comp, err := Compress(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := feedInPieces(t, comp, 1, InflateOptions{})
	if !bytes.Equal(got, src) {
		t.Fatalf("mismatch: %q", got)
	}
}

func TestSessionRandomChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range []string{"text", "random", "zeros", "jsonish"} {
		src := corpusInputs(t)[name]
		comp, err := Compress(src, Options{BlockSize: 32 << 10})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(InflateOptions{})
		var out []byte
		off := 0
		for off < len(comp) {
			n := rng.Intn(5000) + 1
			if off+n > len(comp) {
				n = len(comp) - off
			}
			final := off+n == len(comp)
			got, err := s.Feed(comp[off:off+n], final)
			if err != nil {
				t.Fatalf("%s: feed: %v", name, err)
			}
			out = append(out, got...)
			off += n
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%s: mismatch", name)
		}
	}
}

func TestSessionCrossBlockWindow(t *testing.T) {
	// Data whose matches cross block boundaries: the session window must
	// carry history between Feed commits.
	base := bytes.Repeat([]byte("windowdata0123456789"), 400)
	comp, err := Compress(base, Options{BlockSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	got := feedInPieces(t, comp, 111, InflateOptions{})
	if !bytes.Equal(got, base) {
		t.Fatal("cross-block window mismatch")
	}
}

func TestSessionStdlibInput(t *testing.T) {
	src := corpusInputs(t)["jsonish"]
	var buf bytes.Buffer
	fw, _ := flate.NewWriter(&buf, flate.BestCompression)
	fw.Write(src)
	fw.Close()
	got := feedInPieces(t, buf.Bytes(), 777, InflateOptions{})
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib stream mismatch")
	}
}

func TestSessionTail(t *testing.T) {
	src := []byte("payload with trailer")
	comp, _ := Compress(src, Options{})
	withTrailer := append(append([]byte{}, comp...), 0xAA, 0xBB, 0xCC)
	s := NewSession(InflateOptions{})
	out, err := s.Feed(withTrailer, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("mismatch")
	}
	if tail := s.Tail(); !bytes.Equal(tail, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("tail = % x", tail)
	}
}

func TestSessionTruncatedFinal(t *testing.T) {
	src := corpusInputs(t)["text"]
	comp, _ := Compress(src, Options{})
	s := NewSession(InflateOptions{})
	if _, err := s.Feed(comp[:len(comp)/2], true); err == nil {
		t.Fatal("truncated final feed accepted")
	}
}

func TestSessionDataAfterDone(t *testing.T) {
	comp, _ := Compress([]byte("x"), Options{})
	s := NewSession(InflateOptions{})
	if _, err := s.Feed(comp, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed([]byte{1}, true); err == nil {
		t.Fatal("data after done accepted")
	}
}

func TestSessionOutputLimit(t *testing.T) {
	src := make([]byte, 200000)
	comp, _ := Compress(src, Options{})
	s := NewSession(InflateOptions{MaxOutput: 1000})
	if _, err := s.Feed(comp, true); err != ErrTooLarge {
		t.Fatalf("got %v", err)
	}
}

func TestSessionProducedCount(t *testing.T) {
	src := corpusInputs(t)["skewed"]
	comp, _ := Compress(src, Options{BlockSize: 8192})
	s := NewSession(InflateOptions{})
	var total int
	for off := 0; off < len(comp); off += 900 {
		end := off + 900
		if end > len(comp) {
			end = len(comp)
		}
		out, err := s.Feed(comp[off:end], end == len(comp))
		if err != nil {
			t.Fatal(err)
		}
		total += len(out)
	}
	if total != len(src) || s.Produced() != len(src) {
		t.Fatalf("produced %d/%d, want %d", total, s.Produced(), len(src))
	}
}

func BenchmarkSessionFeed(b *testing.B) {
	src := corpusInputs(b)["text"]
	comp, _ := Compress(src, Options{BlockSize: 16 << 10})
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		s := NewSession(InflateOptions{})
		for off := 0; off < len(comp); off += 4096 {
			end := off + 4096
			if end > len(comp) {
				end = len(comp)
			}
			if _, err := s.Feed(comp[off:end], end == len(comp)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
