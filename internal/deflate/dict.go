package deflate

import (
	"encoding/binary"
	"fmt"

	"nxzip/internal/checksum"
	"nxzip/internal/lz77"
)

// Preset-dictionary (FDICT) zlib streams, RFC 1950 §2.2. A dictionary is
// just pre-agreed LZ history: the compressor may reference it from the
// first byte, and the stream header carries the dictionary's Adler-32 so
// the decompressor can verify it holds the same bytes. On the
// accelerator, this maps directly onto the history-replay mechanism
// (CRB.History).

// ZlibWrapDict frames a raw DEFLATE stream as zlib with FDICT set.
func ZlibWrapDict(deflated, plain, dict []byte) []byte {
	out := make([]byte, 0, len(deflated)+10)
	cmf := byte(0x78)
	flg := byte(0x80 | 0x20) // FLEVEL=2, FDICT=1
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	out = append(out, cmf, flg)
	var dictID [4]byte
	binary.BigEndian.PutUint32(dictID[:], checksum.SumAdler32(dict))
	out = append(out, dictID[:]...)
	out = append(out, deflated...)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], checksum.SumAdler32(plain))
	return append(out, tail[:]...)
}

// ZlibUnwrapDict parses a zlib stream that may carry FDICT, returning the
// DEFLATE payload, the expected plaintext Adler-32, the dictionary id
// (zero when FDICT is clear), and whether a dictionary is required.
func ZlibUnwrapDict(src []byte) (deflated []byte, wantAdler, dictID uint32, hasDict bool, err error) {
	if len(src) < 6 {
		return nil, 0, 0, false, fmt.Errorf("%w: zlib stream too short", ErrBadMagic)
	}
	cmf, flg := src[0], src[1]
	if cmf&0x0F != 8 {
		return nil, 0, 0, false, fmt.Errorf("%w: zlib CM %d", ErrBadMagic, cmf&0x0F)
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return nil, 0, 0, false, fmt.Errorf("%w: zlib FCHECK", ErrBadMagic)
	}
	pos := 2
	if flg&0x20 != 0 {
		if len(src) < 10 {
			return nil, 0, 0, false, fmt.Errorf("%w: truncated DICTID", ErrBadMagic)
		}
		dictID = binary.BigEndian.Uint32(src[2:6])
		hasDict = true
		pos = 6
	}
	if len(src) < pos+4 {
		return nil, 0, 0, false, fmt.Errorf("%w: zlib stream too short", ErrBadMagic)
	}
	return src[pos : len(src)-4], binary.BigEndian.Uint32(src[len(src)-4:]), dictID, hasDict, nil
}

// CompressZlibDict compresses src against a preset dictionary using the
// software matcher and frames it with FDICT.
func CompressZlibDict(src, dict []byte, opts Options) ([]byte, error) {
	opts.fill()
	m := lz77.NewSoftMatcher(lz77.LevelParams(opts.Level))
	tokens := m.TokenizeWithHistory(nil, dict, src)
	mode := opts.Mode
	var body []byte
	var err error
	if mode == ModeAuto {
		// Auto cannot use its stored arm (stored blocks cannot express
		// cross-dictionary matches), so choose the cheaper of fixed and
		// dynamic explicitly — dynamic headers dominate tiny dictionary
		// hits.
		fixed, errF := EncodeTokens(tokens, src, ModeFixed, nil)
		dynamic, errD := EncodeTokens(tokens, src, ModeDynamic, opts.DHT)
		switch {
		case errF != nil:
			return nil, errF
		case errD != nil:
			return nil, errD
		case len(fixed) <= len(dynamic):
			body = fixed
		default:
			body = dynamic
		}
	} else {
		body, err = EncodeTokens(tokens, src, mode, opts.DHT)
		if err != nil {
			return nil, err
		}
	}
	return ZlibWrapDict(body, src, dict), nil
}

// DecompressZlibDict inflates a zlib stream, supplying dict when the
// header demands one. The dictionary's Adler-32 must match the DICTID.
func DecompressZlibDict(src, dict []byte, opts InflateOptions) ([]byte, error) {
	body, wantAdler, dictID, hasDict, err := ZlibUnwrapDict(src)
	if err != nil {
		return nil, err
	}
	var out []byte
	if hasDict {
		if got := checksum.SumAdler32(dict); got != dictID {
			return nil, fmt.Errorf("%w: dictionary adler %08x, stream wants %08x", ErrBadChecksum, got, dictID)
		}
		s := NewSessionWithWindow(opts, dict)
		out, err = s.Feed(body, true)
		if err != nil {
			return nil, err
		}
	} else {
		out, err = Decompress(body, opts)
		if err != nil {
			return nil, err
		}
	}
	if got := checksum.SumAdler32(out); got != wantAdler {
		return nil, fmt.Errorf("%w: adler %08x, want %08x", ErrBadChecksum, got, wantAdler)
	}
	return out, nil
}

// NewSessionWithWindow creates a Session whose history window is
// pre-seeded (preset dictionaries, request resume).
func NewSessionWithWindow(opts InflateOptions, window []byte) *Session {
	s := NewSession(opts)
	if len(window) > lz77.WindowSize {
		window = window[len(window)-lz77.WindowSize:]
	}
	s.window = append([]byte{}, window...)
	return s
}
