package deflate

import (
	"fmt"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
)

// BlockHeader is the parsed header of one DEFLATE block, exposed for the
// speculative-decode study (internal/specdec), which needs the symbol
// decoders and the payload bit position to analyze lane synchronization.
type BlockHeader struct {
	Final  bool
	Type   int // 0 stored, 1 fixed, 2 dynamic
	LitLen *huffman.Decoder
	Dist   *huffman.Decoder
}

// ReadBlockHeader parses a block header from r, leaving r positioned at
// the first payload bit (or the first stored byte).
func ReadBlockHeader(r *bitio.Reader) (*BlockHeader, error) {
	final, err := r.ReadBool()
	if err != nil {
		return nil, fmt.Errorf("%w: missing block header", ErrCorrupt)
	}
	btype, err := r.ReadBits(2)
	if err != nil {
		return nil, fmt.Errorf("%w: missing block type", ErrCorrupt)
	}
	h := &BlockHeader{Final: final, Type: int(btype)}
	switch btype {
	case 0:
		r.AlignByte()
		return h, nil
	case 1:
		h.LitLen, err = huffman.NewDecoder(FixedLitLenLengths(), huffman.DefaultPrimaryBits)
		if err != nil {
			return nil, err
		}
		h.Dist, err = huffman.NewDecoder(FixedDistLengths(), huffman.DefaultPrimaryBits)
		if err != nil {
			return nil, err
		}
		return h, nil
	case 2:
		h.LitLen, h.Dist, err = readDynamicHeader(r)
		if err != nil {
			return nil, err
		}
		return h, nil
	}
	return nil, fmt.Errorf("%w: reserved block type 3", ErrCorrupt)
}
