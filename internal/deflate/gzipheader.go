package deflate

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"nxzip/internal/checksum"
)

// GzipHeader carries the optional RFC 1952 header fields. The accelerator
// writes a minimal header itself; richer headers are composed by the
// library around the engine output, which is what this type supports.
type GzipHeader struct {
	Name    string // FNAME: original file name (ISO 8859-1, no NUL)
	Comment string // FCOMMENT
	Extra   []byte // FEXTRA payload
	ModTime time.Time
	OS      byte // RFC 1952 OS code; 255 = unknown
	// HeaderCRC adds the FHCRC 16-bit header checksum.
	HeaderCRC bool
}

// Append serializes the header.
func (h GzipHeader) Append(dst []byte) ([]byte, error) {
	if strings.ContainsRune(h.Name, 0) || strings.ContainsRune(h.Comment, 0) {
		return nil, fmt.Errorf("deflate: gzip header strings must not contain NUL")
	}
	if len(h.Extra) > 0xFFFF {
		return nil, fmt.Errorf("deflate: FEXTRA too large (%d bytes)", len(h.Extra))
	}
	start := len(dst)
	var flg byte
	if len(h.Extra) > 0 {
		flg |= gzFEXTRA
	}
	if h.Name != "" {
		flg |= gzFNAME
	}
	if h.Comment != "" {
		flg |= gzFCOMMENT
	}
	if h.HeaderCRC {
		flg |= gzFHCRC
	}
	var mtime uint32
	if !h.ModTime.IsZero() && h.ModTime.Unix() > 0 {
		mtime = uint32(h.ModTime.Unix())
	}
	os := h.OS
	if os == 0 {
		os = 255
	}
	dst = append(dst, 0x1F, 0x8B, 8, flg)
	dst = binary.LittleEndian.AppendUint32(dst, mtime)
	dst = append(dst, 0, os)
	if len(h.Extra) > 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Extra)))
		dst = append(dst, h.Extra...)
	}
	if h.Name != "" {
		dst = append(dst, h.Name...)
		dst = append(dst, 0)
	}
	if h.Comment != "" {
		dst = append(dst, h.Comment...)
		dst = append(dst, 0)
	}
	if h.HeaderCRC {
		crc := checksum.Sum32(dst[start:])
		dst = binary.LittleEndian.AppendUint16(dst, uint16(crc))
	}
	return dst, nil
}

// ParseGzipHeaderFull decodes the header fields at the start of src,
// returning the parsed header and its byte length. FHCRC, when present,
// is verified.
func ParseGzipHeaderFull(src []byte) (GzipHeader, int, error) {
	var h GzipHeader
	if len(src) < 10 {
		return h, 0, fmt.Errorf("%w: gzip header too short", ErrBadMagic)
	}
	if src[0] != 0x1F || src[1] != 0x8B || src[2] != 8 {
		return h, 0, fmt.Errorf("%w: not gzip", ErrBadMagic)
	}
	flg := src[3]
	if mtime := binary.LittleEndian.Uint32(src[4:8]); mtime != 0 {
		h.ModTime = time.Unix(int64(mtime), 0)
	}
	h.OS = src[9]
	pos := 10
	if flg&gzFEXTRA != 0 {
		if pos+2 > len(src) {
			return h, 0, fmt.Errorf("%w: truncated FEXTRA", ErrBadMagic)
		}
		n := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2
		if pos+n > len(src) {
			return h, 0, fmt.Errorf("%w: truncated FEXTRA payload", ErrBadMagic)
		}
		h.Extra = append([]byte{}, src[pos:pos+n]...)
		pos += n
	}
	readString := func() (string, error) {
		end := pos
		for {
			if end >= len(src) {
				return "", fmt.Errorf("%w: truncated string field", ErrBadMagic)
			}
			if src[end] == 0 {
				break
			}
			end++
		}
		s := string(src[pos:end])
		pos = end + 1
		return s, nil
	}
	var err error
	if flg&gzFNAME != 0 {
		if h.Name, err = readString(); err != nil {
			return h, 0, err
		}
	}
	if flg&gzFCOMMENT != 0 {
		if h.Comment, err = readString(); err != nil {
			return h, 0, err
		}
	}
	if flg&gzFHCRC != 0 {
		if pos+2 > len(src) {
			return h, 0, fmt.Errorf("%w: truncated FHCRC", ErrBadMagic)
		}
		want := binary.LittleEndian.Uint16(src[pos:])
		if got := uint16(checksum.Sum32(src[:pos])); got != want {
			return h, 0, fmt.Errorf("%w: header CRC %04x, want %04x", ErrBadChecksum, got, want)
		}
		h.HeaderCRC = true
		pos += 2
	}
	return h, pos, nil
}

// GzipWrapHeader frames a raw DEFLATE stream with a full header.
func GzipWrapHeader(deflated, plain []byte, h GzipHeader) ([]byte, error) {
	out, err := h.Append(make([]byte, 0, len(deflated)+64))
	if err != nil {
		return nil, err
	}
	out = append(out, deflated...)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:4], checksum.Sum32(plain))
	binary.LittleEndian.PutUint32(tail[4:8], uint32(len(plain)))
	return append(out, tail[:]...), nil
}
