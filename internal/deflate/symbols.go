// Package deflate implements the DEFLATE compressed data format (RFC 1951)
// plus the gzip (RFC 1952) and zlib (RFC 1950) framings, from scratch, in
// both directions. The encoder consumes LZ77 token streams from either the
// software or the hardware matcher, so the same block writer backs the
// software baseline and the accelerator model.
package deflate

import "nxzip/internal/lz77"

// Alphabet sizes (RFC 1951 §3.2.5/3.2.7).
const (
	NumLitLen     = 286 // literal/length symbols 0..285 (286/287 reserved)
	NumDist       = 30  // distance symbols 0..29
	NumCodeLength = 19  // code-length alphabet 0..18
	EndOfBlock    = 256
	maxCodeLen    = 15
	maxCLCodeLen  = 7
)

// lengthBase[s] / lengthExtra[s] describe length symbol 257+s.
var lengthBase = [29]uint16{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint8{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

// distBase[s] / distExtra[s] describe distance symbol s.
var distBase = [30]uint16{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var distExtra = [30]uint8{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// clOrder is the transmission order of code-length-code lengths
// (RFC 1951 §3.2.7).
var clOrder = [NumCodeLength]uint8{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// lengthSym maps a match length (3..258) to its symbol (257..285).
var lengthSym [lz77.MaxMatch + 1]uint16

// distSymSmall maps distances 1..256 directly; larger distances use
// distSymLarge indexed by (dist-1)>>7, mirroring zlib's two-level d_code.
var (
	distSymSmall [257]uint8
	distSymLarge [256]uint8
)

func init() {
	for s := 0; s < 29; s++ {
		lo := int(lengthBase[s])
		hi := lz77.MaxMatch
		if s < 28 {
			hi = int(lengthBase[s+1]) - 1
		}
		for l := lo; l <= hi; l++ {
			lengthSym[l] = uint16(257 + s)
		}
	}
	lengthSym[lz77.MaxMatch] = 285
	for s := 0; s < NumDist; s++ {
		lo := int(distBase[s])
		hi := lz77.WindowSize
		if s < NumDist-1 {
			hi = int(distBase[s+1]) - 1
		}
		for d := lo; d <= hi; d++ {
			if d <= 256 {
				distSymSmall[d] = uint8(s)
			}
			idx := (d - 1) >> 7
			if idx < 256 {
				distSymLarge[idx] = uint8(s)
			}
		}
	}
}

// LengthSymbol returns the litlen symbol and extra-bit value/count for a
// match length.
func LengthSymbol(length int) (sym int, extra uint32, nbits uint8) {
	s := lengthSym[length]
	i := int(s) - 257
	return int(s), uint32(length) - uint32(lengthBase[i]), lengthExtra[i]
}

// DistSymbol returns the distance symbol and extra-bit value/count for a
// match distance.
func DistSymbol(dist int) (sym int, extra uint32, nbits uint8) {
	var s int
	if dist <= 256 {
		s = int(distSymSmall[dist])
	} else {
		s = int(distSymLarge[(dist-1)>>7])
	}
	return s, uint32(dist) - uint32(distBase[s]), distExtra[s]
}

// LengthFromSymbol decodes a length symbol's base and extra-bit count.
func LengthFromSymbol(sym int) (base int, nbits uint8, ok bool) {
	if sym < 257 || sym > 285 {
		return 0, 0, false
	}
	return int(lengthBase[sym-257]), lengthExtra[sym-257], true
}

// DistFromSymbol decodes a distance symbol's base and extra-bit count.
func DistFromSymbol(sym int) (base int, nbits uint8, ok bool) {
	if sym < 0 || sym >= NumDist {
		return 0, 0, false
	}
	return int(distBase[sym]), distExtra[sym], true
}

// FixedLitLenLengths returns the static-Huffman literal/length code lengths
// (RFC 1951 §3.2.6). 288 entries: symbols 286/287 participate in code
// construction even though they never appear in valid data.
func FixedLitLenLengths() []uint8 {
	l := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		l[i] = 8
	}
	for i := 144; i <= 255; i++ {
		l[i] = 9
	}
	for i := 256; i <= 279; i++ {
		l[i] = 7
	}
	for i := 280; i <= 287; i++ {
		l[i] = 8
	}
	return l
}

// FixedDistLengths returns the static distance code lengths: 32 five-bit
// codes (30/31 reserved but encoded).
func FixedDistLengths() []uint8 {
	l := make([]uint8, 32)
	for i := range l {
		l[i] = 5
	}
	return l
}
