package deflate

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
	"time"
)

func TestGzipHeaderRoundTrip(t *testing.T) {
	h := GzipHeader{
		Name:      "data.json",
		Comment:   "nightly export",
		Extra:     []byte{1, 2, 3, 4},
		ModTime:   time.Unix(1700000000, 0),
		OS:        3, // unix
		HeaderCRC: true,
	}
	raw, err := h.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := ParseGzipHeaderFull(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("parsed %d of %d bytes", n, len(raw))
	}
	if got.Name != h.Name || got.Comment != h.Comment || !bytes.Equal(got.Extra, h.Extra) {
		t.Fatalf("fields: %+v", got)
	}
	if !got.ModTime.Equal(h.ModTime) || got.OS != h.OS || !got.HeaderCRC {
		t.Fatalf("meta: %+v", got)
	}
}

func TestGzipHeaderStdlibInterop(t *testing.T) {
	src := []byte("header interop payload, header interop payload")
	body, err := Compress(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := GzipWrapHeader(body, src, GzipHeader{
		Name: "x.txt", Comment: "c", ModTime: time.Unix(1600000000, 0), OS: 3, HeaderCRC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if zr.Name != "x.txt" || zr.Comment != "c" {
		t.Fatalf("stdlib parsed name=%q comment=%q", zr.Name, zr.Comment)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("payload mismatch")
	}
	// And our full-stream reader still accepts it.
	got2, err := DecompressGzip(full, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, src) {
		t.Fatal("our decode mismatch")
	}
}

func TestGzipHeaderParsesStdlibOutput(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = "from-stdlib.bin"
	zw.Comment = "stdlib header"
	zw.ModTime = time.Unix(1500000000, 0)
	zw.Write([]byte("zz"))
	zw.Close()
	h, _, err := ParseGzipHeaderFull(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "from-stdlib.bin" || h.Comment != "stdlib header" {
		t.Fatalf("parsed %+v", h)
	}
	if h.ModTime.Unix() != 1500000000 {
		t.Fatalf("mtime %v", h.ModTime)
	}
}

func TestGzipHeaderValidation(t *testing.T) {
	if _, err := (GzipHeader{Name: "bad\x00name"}).Append(nil); err == nil {
		t.Fatal("NUL in name accepted")
	}
	if _, err := (GzipHeader{Extra: make([]byte, 70000)}).Append(nil); err == nil {
		t.Fatal("oversized FEXTRA accepted")
	}
}

func TestGzipHeaderCRCDetectsCorruption(t *testing.T) {
	raw, err := GzipHeader{Name: "n", HeaderCRC: true}.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF // corrupt the name
	if _, _, err := ParseGzipHeaderFull(raw); err == nil {
		t.Fatal("corrupt header accepted despite FHCRC")
	}
}
