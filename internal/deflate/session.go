package deflate

import (
	"fmt"

	"nxzip/internal/bitio"
	"nxzip/internal/huffman"
	"nxzip/internal/lz77"
)

// Session is a resumable DEFLATE decoder: input arrives in arbitrary
// chunks, output is produced as soon as whole blocks decode, and the
// 32 KiB window is carried across calls. This models the accelerator's
// decompression suspend/resume state (bit position + history window),
// which the paper identifies as the state that must be saved when a
// stream spans multiple requests.
//
// Commit granularity is one DEFLATE block: a block is only committed when
// either the caller has signalled end of input or at least 64 bits of
// input remain after it, which guarantees no lookup inside the block ever
// read past the real input (PeekBits pads with zeros, so a mid-block
// truncation could otherwise mis-decode rather than fail).
type Session struct {
	opts InflateOptions

	in       []byte // accumulated unconsumed-by-commit input
	bitsUsed int    // committed bit position within in
	window   []byte // last 32 KiB of output
	produced int    // total bytes produced
	done     bool
	fixedLL  *huffman.Decoder
	fixedD   *huffman.Decoder
}

// NewSession creates an empty session.
func NewSession(opts InflateOptions) *Session {
	return &Session{opts: opts}
}

// Done reports whether the final block has been decoded.
func (s *Session) Done() bool { return s.done }

// Produced reports the total plaintext bytes emitted so far.
func (s *Session) Produced() int { return s.produced }

// Feed appends compressed input and decodes as many whole blocks as can
// be safely committed, returning the newly produced plaintext. final
// declares that no more input will arrive. Feed may be called with nil p
// to drain after setting final.
func (s *Session) Feed(p []byte, final bool) ([]byte, error) {
	if s.done {
		if len(p) != 0 {
			return nil, fmt.Errorf("deflate: data after final block")
		}
		return nil, nil
	}
	s.in = append(s.in, p...)

	maxOut := s.opts.MaxOutput
	if maxOut <= 0 {
		maxOut = defaultMaxOutput
	}

	var out []byte
	for {
		r := bitio.NewReader(s.in)
		if err := r.SkipBits(uint(s.bitsUsed)); err != nil {
			return out, fmt.Errorf("%w: lost position", ErrCorrupt)
		}
		chunk, finalBlock, err := s.tryBlock(r, final)
		if err == errNeedMore {
			if final {
				return out, fmt.Errorf("%w: truncated stream", ErrCorrupt)
			}
			s.compact()
			return out, nil
		}
		if err != nil {
			return out, err
		}
		// Commit.
		if s.produced+len(chunk) > maxOut {
			return out, ErrTooLarge
		}
		s.produced += len(chunk)
		out = append(out, chunk...)
		s.appendWindow(chunk)
		s.bitsUsed = r.BitsConsumed()
		if finalBlock {
			s.done = true
			s.compact()
			return out, nil
		}
	}
}

// errNeedMore is an internal signal: the block could not be committed yet.
var errNeedMore = fmt.Errorf("deflate: need more input")

// tryBlock decodes one block starting at r's position, using the session
// window for back-references. It does not mutate session state.
func (s *Session) tryBlock(r *bitio.Reader, final bool) (chunk []byte, finalBlock bool, err error) {
	finalBit, err := r.ReadBool()
	if err != nil {
		return nil, false, errNeedMore
	}
	btype, err := r.ReadBits(2)
	if err != nil {
		return nil, false, errNeedMore
	}

	// Decode into a buffer seeded with the window so distances resolve;
	// strip the window prefix afterwards.
	base := len(s.window)
	buf := append([]byte{}, s.window...)

	switch btype {
	case 0:
		r.AlignByte()
		lenv, err := r.ReadBits(16)
		if err != nil {
			return nil, false, errNeedMore
		}
		nlen, err := r.ReadBits(16)
		if err != nil {
			return nil, false, errNeedMore
		}
		if uint16(lenv) != ^uint16(nlen) {
			return nil, false, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
		}
		payload := make([]byte, lenv)
		if err := r.ReadBytes(payload); err != nil {
			return nil, false, errNeedMore
		}
		buf = append(buf, payload...)
	case 1:
		if s.fixedLL == nil {
			s.fixedLL, err = huffman.NewDecoder(FixedLitLenLengths(), huffman.DefaultPrimaryBits)
			if err != nil {
				return nil, false, err
			}
			s.fixedD, err = huffman.NewDecoder(FixedDistLengths(), huffman.DefaultPrimaryBits)
			if err != nil {
				return nil, false, err
			}
		}
		buf, err = inflateBlock(r, buf, 1<<62, s.fixedLL, s.fixedD)
		if err != nil {
			return nil, false, classify(err, r, final)
		}
	case 2:
		ll, d, err := readDynamicHeader(r)
		if err != nil {
			return nil, false, classify(err, r, final)
		}
		buf, err = inflateBlock(r, buf, 1<<62, ll, d)
		if err != nil {
			return nil, false, classify(err, r, final)
		}
	default:
		return nil, false, fmt.Errorf("%w: reserved block type 3", ErrCorrupt)
	}

	// Safety margin: without end-of-input knowledge, only commit when the
	// decode provably never consumed zero-padding.
	if !final && r.BitsRemaining() < 64 {
		return nil, false, errNeedMore
	}
	return buf[base:], finalBit, nil
}

// classify turns a decode error into errNeedMore when it may have been
// caused by truncation rather than corruption.
func classify(err error, r *bitio.Reader, final bool) error {
	if final && r.BitsRemaining() >= 64 {
		return err
	}
	if !final {
		// Could be a genuine corruption, but with more input pending we
		// cannot distinguish; retry after the next Feed.
		return errNeedMore
	}
	return err
}

// appendWindow maintains the 32 KiB history.
func (s *Session) appendWindow(chunk []byte) {
	s.window = append(s.window, chunk...)
	if len(s.window) > lz77.WindowSize {
		s.window = s.window[len(s.window)-lz77.WindowSize:]
	}
}

// compact drops committed whole bytes from the input buffer.
func (s *Session) compact() {
	drop := s.bitsUsed / 8
	if drop == 0 {
		return
	}
	s.in = append(s.in[:0], s.in[drop:]...)
	s.bitsUsed -= drop * 8
}

// TailBits reports how many unconsumed bits remain buffered (useful for
// locating a trailer after Done).
func (s *Session) TailBits() int {
	return len(s.in)*8 - s.bitsUsed
}

// Tail returns the unconsumed bytes after the final block, byte-aligned
// (the gzip trailer, when the caller framed the stream).
func (s *Session) Tail() []byte {
	if !s.done {
		return nil
	}
	off := (s.bitsUsed + 7) / 8
	if off > len(s.in) {
		return nil
	}
	return s.in[off:]
}
