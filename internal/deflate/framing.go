package deflate

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nxzip/internal/checksum"
)

// Framing errors.
var (
	ErrBadMagic    = errors.New("deflate: bad stream magic")
	ErrBadChecksum = errors.New("deflate: checksum mismatch")
	ErrBadLength   = errors.New("deflate: length mismatch")
)

// gzip header flag bits (RFC 1952).
const (
	gzFTEXT    = 1 << 0
	gzFHCRC    = 1 << 1
	gzFEXTRA   = 1 << 2
	gzFNAME    = 1 << 3
	gzFCOMMENT = 1 << 4
)

// GzipWrap frames a raw DEFLATE stream as gzip: 10-byte header plus
// CRC32/ISIZE trailer computed over the original plaintext. The
// accelerator's "wrap" function codes perform exactly this framing inline.
func GzipWrap(deflated []byte, plain []byte) []byte {
	out := make([]byte, 0, len(deflated)+18)
	// magic, CM=8 (deflate), FLG=0, MTIME=0, XFL=0, OS=255 (unknown)
	out = append(out, 0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255)
	out = append(out, deflated...)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:4], checksum.Sum32(plain))
	binary.LittleEndian.PutUint32(tail[4:8], uint32(len(plain)))
	return append(out, tail[:]...)
}

// AppendGzipHeader appends the canonical 10-byte gzip header (the one
// GzipWrap emits) to dst. Together with AppendGzipTrailer it lets an
// encoder frame in place — header, then DEFLATE body, then trailer — so
// wrapping costs no extra copy or allocation, exactly as the hardware's
// wrap function codes frame inline on the output DMA path.
func AppendGzipHeader(dst []byte) []byte {
	return append(dst, 0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255)
}

// AppendGzipTrailer appends the CRC32/ISIZE gzip trailer for a plaintext
// with the given checksum and length.
func AppendGzipTrailer(dst []byte, crc uint32, isize int) []byte {
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:4], crc)
	binary.LittleEndian.PutUint32(tail[4:8], uint32(isize))
	return append(dst, tail[:]...)
}

// AppendZlibHeader appends the 2-byte zlib header ZlibWrap emits.
func AppendZlibHeader(dst []byte) []byte {
	cmf := byte(0x78)
	flg := byte(0x80)
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	return append(dst, cmf, flg)
}

// AppendZlibTrailer appends the big-endian Adler-32 zlib trailer.
func AppendZlibTrailer(dst []byte, adler uint32) []byte {
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], adler)
	return append(dst, tail[:]...)
}

// GzipUnwrap parses a gzip stream, returning the raw DEFLATE payload and
// the expected CRC32/ISIZE from the trailer. It tolerates the optional
// header fields so it can consume streams from other producers.
func GzipUnwrap(src []byte) (deflated []byte, wantCRC uint32, wantSize uint32, err error) {
	if len(src) < 18 {
		return nil, 0, 0, fmt.Errorf("%w: gzip stream too short", ErrBadMagic)
	}
	if src[0] != 0x1F || src[1] != 0x8B {
		return nil, 0, 0, fmt.Errorf("%w: not gzip", ErrBadMagic)
	}
	if src[2] != 8 {
		return nil, 0, 0, fmt.Errorf("%w: unknown compression method %d", ErrBadMagic, src[2])
	}
	flg := src[3]
	pos := 10
	if flg&gzFEXTRA != 0 {
		if pos+2 > len(src) {
			return nil, 0, 0, fmt.Errorf("%w: truncated FEXTRA", ErrBadMagic)
		}
		xlen := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2 + xlen
	}
	for _, bit := range []byte{gzFNAME, gzFCOMMENT} {
		if flg&bit == 0 {
			continue
		}
		for {
			if pos >= len(src) {
				return nil, 0, 0, fmt.Errorf("%w: truncated string field", ErrBadMagic)
			}
			if src[pos] == 0 {
				pos++
				break
			}
			pos++
		}
	}
	if flg&gzFHCRC != 0 {
		pos += 2
	}
	if pos+8 > len(src) {
		return nil, 0, 0, fmt.Errorf("%w: truncated gzip stream", ErrBadMagic)
	}
	body := src[pos : len(src)-8]
	tail := src[len(src)-8:]
	return body, binary.LittleEndian.Uint32(tail[0:4]), binary.LittleEndian.Uint32(tail[4:8]), nil
}

// CompressGzip compresses and gzip-frames in one shot.
func CompressGzip(src []byte, opts Options) ([]byte, error) {
	body, err := Compress(src, opts)
	if err != nil {
		return nil, err
	}
	return GzipWrap(body, src), nil
}

// DecompressGzip unwraps and inflates a gzip stream, verifying CRC32 and
// ISIZE.
func DecompressGzip(src []byte, opts InflateOptions) ([]byte, error) {
	body, wantCRC, wantSize, err := GzipUnwrap(src)
	if err != nil {
		return nil, err
	}
	out, err := Decompress(body, opts)
	if err != nil {
		return nil, err
	}
	if uint32(len(out)) != wantSize {
		return nil, fmt.Errorf("%w: ISIZE %d, got %d bytes", ErrBadLength, wantSize, len(out))
	}
	if got := checksum.Sum32(out); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC32 %08x, want %08x", ErrBadChecksum, got, wantCRC)
	}
	return out, nil
}

// ZlibWrap frames a raw DEFLATE stream as zlib (RFC 1950) with the default
// 32K window and an Adler-32 trailer over the plaintext.
func ZlibWrap(deflated []byte, plain []byte) []byte {
	out := make([]byte, 0, len(deflated)+6)
	cmf := byte(0x78) // CM=8, CINFO=7 (32K window)
	flg := byte(0x80) // FLEVEL=2 (default), FDICT=0
	// FCHECK makes (cmf<<8 | flg) a multiple of 31.
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	out = append(out, cmf, flg)
	out = append(out, deflated...)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], checksum.SumAdler32(plain))
	return append(out, tail[:]...)
}

// ZlibUnwrap parses a zlib stream, returning the raw DEFLATE payload and
// the expected Adler-32.
func ZlibUnwrap(src []byte) (deflated []byte, wantAdler uint32, err error) {
	if len(src) < 6 {
		return nil, 0, fmt.Errorf("%w: zlib stream too short", ErrBadMagic)
	}
	cmf, flg := src[0], src[1]
	if cmf&0x0F != 8 {
		return nil, 0, fmt.Errorf("%w: zlib CM %d", ErrBadMagic, cmf&0x0F)
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return nil, 0, fmt.Errorf("%w: zlib FCHECK", ErrBadMagic)
	}
	if flg&0x20 != 0 {
		return nil, 0, fmt.Errorf("%w: preset dictionary unsupported", ErrBadMagic)
	}
	return src[2 : len(src)-4], binary.BigEndian.Uint32(src[len(src)-4:]), nil
}

// CompressZlib compresses and zlib-frames in one shot.
func CompressZlib(src []byte, opts Options) ([]byte, error) {
	body, err := Compress(src, opts)
	if err != nil {
		return nil, err
	}
	return ZlibWrap(body, src), nil
}

// DecompressZlib unwraps and inflates a zlib stream, verifying Adler-32.
func DecompressZlib(src []byte, opts InflateOptions) ([]byte, error) {
	body, want, err := ZlibUnwrap(src)
	if err != nil {
		return nil, err
	}
	out, err := Decompress(body, opts)
	if err != nil {
		return nil, err
	}
	if got := checksum.SumAdler32(out); got != want {
		return nil, fmt.Errorf("%w: adler %08x, want %08x", ErrBadChecksum, got, want)
	}
	return out, nil
}

// ParseGzipHeader returns the length of the gzip header at the start of
// src (including optional fields), without touching the payload.
func ParseGzipHeader(src []byte) (int, error) {
	if len(src) < 10 {
		return 0, fmt.Errorf("%w: gzip header too short", ErrBadMagic)
	}
	if src[0] != 0x1F || src[1] != 0x8B || src[2] != 8 {
		return 0, fmt.Errorf("%w: not gzip", ErrBadMagic)
	}
	flg := src[3]
	pos := 10
	if flg&gzFEXTRA != 0 {
		if pos+2 > len(src) {
			return 0, fmt.Errorf("%w: truncated FEXTRA", ErrBadMagic)
		}
		pos += 2 + int(binary.LittleEndian.Uint16(src[pos:]))
	}
	for _, bit := range []byte{gzFNAME, gzFCOMMENT} {
		if flg&bit == 0 {
			continue
		}
		for {
			if pos >= len(src) {
				return 0, fmt.Errorf("%w: truncated string field", ErrBadMagic)
			}
			if src[pos] == 0 {
				pos++
				break
			}
			pos++
		}
	}
	if flg&gzFHCRC != 0 {
		pos += 2
	}
	if pos > len(src) {
		return 0, fmt.Errorf("%w: truncated header", ErrBadMagic)
	}
	return pos, nil
}

// DecompressGzipTail inflates the FIRST gzip member of src in a single
// pass, verifying its CRC32 and ISIZE, and returns the plaintext plus the
// total bytes consumed (header + DEFLATE stream + trailer). Bytes beyond
// the first member are left untouched, so multi-member streams decode by
// repeated calls — each member is inflated exactly once.
func DecompressGzipTail(src []byte, opts InflateOptions) ([]byte, int, error) {
	hlen, err := ParseGzipHeader(src)
	if err != nil {
		return nil, 0, err
	}
	body, used, err := DecompressTail(src[hlen:], opts)
	if err != nil {
		return nil, 0, err
	}
	trailerAt := hlen + used
	if trailerAt+8 > len(src) {
		return nil, 0, fmt.Errorf("%w: truncated gzip trailer", ErrBadMagic)
	}
	wantCRC := binary.LittleEndian.Uint32(src[trailerAt:])
	wantSize := binary.LittleEndian.Uint32(src[trailerAt+4:])
	if uint32(len(body)) != wantSize {
		return nil, 0, fmt.Errorf("%w: member ISIZE %d, got %d", ErrBadLength, wantSize, len(body))
	}
	if got := checksum.Sum32(body); got != wantCRC {
		return nil, 0, fmt.Errorf("%w: member CRC32 %08x, want %08x", ErrBadChecksum, got, wantCRC)
	}
	return body, trailerAt + 8, nil
}

// SkimGzipMember locates the end of the first gzip member of src without
// materializing its plaintext: a structure-only walk of the DEFLATE
// stream. It returns the member's plaintext length and total encoded
// length (header + stream + trailer), verifying ISIZE (CRC32 requires the
// bytes, so it is left to the real decode). maxOutput bounds the walk so
// a decompression bomb is rejected before any output is buffered.
func SkimGzipMember(src []byte, maxOutput int) (plainLen, consumed int, err error) {
	hlen, err := ParseGzipHeader(src)
	if err != nil {
		return 0, 0, err
	}
	n, used, err := SkimTail(src[hlen:], InflateOptions{MaxOutput: maxOutput})
	if err != nil {
		return 0, 0, err
	}
	trailerAt := hlen + used
	if trailerAt+8 > len(src) {
		return 0, 0, fmt.Errorf("%w: truncated gzip trailer", ErrBadMagic)
	}
	if wantSize := binary.LittleEndian.Uint32(src[trailerAt+4:]); uint32(n) != wantSize {
		return 0, 0, fmt.Errorf("%w: member ISIZE %d, got %d", ErrBadLength, wantSize, n)
	}
	return n, trailerAt + 8, nil
}

// DecompressGzipMulti inflates a gzip stream that may consist of multiple
// concatenated members (which RFC 1952 defines as equivalent to the
// concatenation of the plaintexts). Each member's CRC32 and ISIZE are
// verified, each member is inflated exactly once, and the MaxOutput
// budget is threaded into every member's inflate so a single bombing
// member trips the limit during its decode rather than after. The
// accelerator's streaming writer emits one member per submitted request,
// so this is the matching reader.
func DecompressGzipMulti(src []byte, opts InflateOptions) ([]byte, error) {
	limit := opts.MaxOutput
	if limit <= 0 {
		limit = defaultMaxOutput
	}
	var out []byte
	for len(src) > 0 {
		// Remaining budget for this member; floor of 1 so an exactly-spent
		// budget still admits empty members (the cumulative check below
		// catches any overshoot).
		budget := limit - len(out)
		if budget < 1 {
			budget = 1
		}
		body, consumed, err := DecompressGzipTail(src, InflateOptions{MaxOutput: budget})
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
		if len(out) > limit {
			return nil, ErrTooLarge
		}
		src = src[consumed:]
	}
	return out, nil
}
