package obs

import (
	"bytes"
	"math"
	"testing"

	"nxzip/internal/telemetry"
)

// FuzzPromRoundTrip drives WriteProm → ParseProm with adversarial label
// values and float values: everything WriteProm emits must parse back,
// and the counter/histogram-count samples must round-trip exactly. The
// seeds pin the historically tricky escapes — a label ending in a
// backslash (which must not swallow the closing quote), embedded
// quotes, newlines, '#' and '}' inside quoted values (which must not
// truncate the series at the exemplar-comment or brace scan), and
// non-finite histogram sums.
func FuzzPromRoundTrip(f *testing.F) {
	f.Add("t5/interactive/ok", int64(7), 123.5, uint64(42))
	f.Add(`trailing\`, int64(-1), math.Inf(1), uint64(1))
	f.Add(`quo"te`, int64(0), math.NaN(), uint64(0))
	f.Add("new\nline", int64(1<<40), -0.0, uint64(9))
	f.Add(`br}ace{#`, int64(-1<<40), 1e-300, uint64(3))
	f.Add(" spaced out ", int64(5), 2.25, uint64(7))
	f.Fuzz(func(t *testing.T, label string, cval int64, hval float64, req uint64) {
		bounds := telemetry.BucketBounds()
		h := telemetry.HistogramSnapshot{
			Name: "nx.fuzz_us", Label: label,
			Count: 3, Sum: hval, P50: hval, P95: hval, P99: hval,
			Buckets:   make([]int64, len(bounds)),
			Exemplars: make([]telemetry.Exemplar, len(bounds)+1),
		}
		for i := range h.Buckets {
			h.Buckets[i] = 3
		}
		h.Exemplars[len(bounds)] = telemetry.Exemplar{Req: req, Value: hval}
		snap := &telemetry.Snapshot{
			Counters:   []telemetry.CounterSnapshot{{Name: "nx.fuzz", Label: label, Value: cval}},
			Gauges:     []telemetry.GaugeSnapshot{{Name: "nx.fuzzg", Label: label, Value: cval, Max: cval}},
			Histograms: []telemetry.HistogramSnapshot{h},
		}
		var buf bytes.Buffer
		if err := WriteProm(&buf, snap); err != nil {
			t.Fatalf("WriteProm: %v", err)
		}
		out, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ParseProm rejected WriteProm output: %v\n%s", err, buf.String())
		}
		ckey := PromSeries("nx.fuzz", label)
		got, ok := out[ckey]
		if !ok {
			t.Fatalf("counter series %q missing from %d parsed samples\n%s", ckey, len(out), buf.String())
		}
		if got != float64(cval) {
			t.Fatalf("counter %q = %v, want %v", ckey, got, float64(cval))
		}
		hkey := series(promName("nx.fuzz_us")+"_count", label, "", "")
		if got, ok := out[hkey]; !ok || got != 3 {
			t.Fatalf("histogram count %q = %v (present %v), want 3", hkey, got, ok)
		}
	})
}
