package obs

import (
	"fmt"
	"time"
)

// burn.go implements multi-window, multi-burn-rate SLO alerting over
// the Sampler's window ring (the standard SRE-workbook construction).
// Two error budgets are tracked: the shed ratio (fraction of presented
// work the admission gate refuses, budget ShedBudget) and the
// queue-wait budget (fraction of requests whose queue wait exceeds
// QueueBudgetUS, budget QueueViolationBudget). For each, a burn rate is
// the measured error fraction over a lookback window divided by the
// budget — burn 1.0 exhausts the budget exactly at the SLO period; burn
// 14.4 exhausts a 30-day budget in ~2 days. An alert fires only when
// BOTH a short and a long window burn above the threshold: the long
// window proves the problem is material, the short window makes the
// alert reset quickly once the cause stops. The fast pair (5m/1h at
// 14.4) pages; the slow pair (30m/6h at 6) tickets.

// BurnSLO names one tracked error budget.
type BurnSLO string

const (
	// BurnShed: admission-gate refusals against ShedBudget.
	BurnShed BurnSLO = "shed-ratio"
	// BurnQueue: queue waits beyond QueueBudgetUS against
	// QueueViolationBudget.
	BurnQueue BurnSLO = "queue-wait"
)

// BurnConfig parameterises the evaluator. Zero values take the shipped
// SRE-workbook defaults; tests and the E25 experiment compress the
// windows to seconds.
type BurnConfig struct {
	// Fast (paging) window pair and threshold.
	FastShort time.Duration // default 5m
	FastLong  time.Duration // default 1h
	FastRate  float64       // default 14.4
	// Slow (ticketing) window pair and threshold.
	SlowShort time.Duration // default 30m
	SlowLong  time.Duration // default 6h
	SlowRate  float64       // default 6
	// ShedBudget is the SLO's allowed shed fraction (default 0.25,
	// matching the MaxShedRatio rule).
	ShedBudget float64
	// QueueViolationBudget is the allowed fraction of requests with
	// queue wait over QueueBudgetUS (default 0.05).
	QueueViolationBudget float64
	// MinRequests gates evaluation: a lookback window with fewer
	// presented requests than this is too thin to alert on (default 10).
	MinRequests int64
}

// DefaultBurnConfig returns the shipped policy.
func DefaultBurnConfig() BurnConfig {
	return BurnConfig{
		FastShort: 5 * time.Minute, FastLong: time.Hour, FastRate: 14.4,
		SlowShort: 30 * time.Minute, SlowLong: 6 * time.Hour, SlowRate: 6,
		ShedBudget:           0.25,
		QueueViolationBudget: 0.05,
		MinRequests:          10,
	}
}

// withDefaults fills zero fields from the shipped policy.
func (c BurnConfig) withDefaults() BurnConfig {
	d := DefaultBurnConfig()
	if c.FastShort <= 0 {
		c.FastShort = d.FastShort
	}
	if c.FastLong <= 0 {
		c.FastLong = d.FastLong
	}
	if c.FastRate <= 0 {
		c.FastRate = d.FastRate
	}
	if c.SlowShort <= 0 {
		c.SlowShort = d.SlowShort
	}
	if c.SlowLong <= 0 {
		c.SlowLong = d.SlowLong
	}
	if c.SlowRate <= 0 {
		c.SlowRate = d.SlowRate
	}
	if c.ShedBudget <= 0 {
		c.ShedBudget = d.ShedBudget
	}
	if c.QueueViolationBudget <= 0 {
		c.QueueViolationBudget = d.QueueViolationBudget
	}
	if c.MinRequests <= 0 {
		c.MinRequests = d.MinRequests
	}
	return c
}

// BurnAlert is the evaluation of one (SLO, speed) pair.
type BurnAlert struct {
	SLO   BurnSLO `json:"slo"`
	Speed string  `json:"speed"` // "fast" or "slow"
	// Firing reports whether both windows burn at or above Rate.
	Firing bool `json:"firing"`
	// ShortBurn / LongBurn are the measured burn rates (error fraction
	// over budget) in the short and long lookback windows.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	// Rate is the firing threshold for this pair.
	Rate float64 `json:"rate"`
	// Short / Long are the lookback window lengths.
	Short time.Duration `json:"short_ns"`
	Long  time.Duration `json:"long_ns"`
	// Tenant is the label of the top offender in the short window — the
	// tenant contributing the most budget-relevant errors — when one
	// contributes a strict majority; "" otherwise.
	Tenant string `json:"tenant,omitempty"`
}

// Detail renders the alert the way the event bus and nxtop show it.
func (a BurnAlert) Detail() string {
	state := "resolved"
	if a.Firing {
		state = "firing"
	}
	s := fmt.Sprintf("%s %s burn %s: %.1fx over %v and %.1fx over %v (threshold %.1fx)",
		a.SLO, a.Speed, state, a.ShortBurn, a.Short, a.LongBurn, a.Long, a.Rate)
	if a.Tenant != "" {
		s += ", top offender " + a.Tenant
	}
	return s
}

// burnAccum sums the budget-relevant numerators and denominators of a
// window span.
type burnAccum struct {
	presented int64 // completions + sheds (shed SLI denominator)
	shed      int64
	queueObs  int64
	queueOver int64
	byTenant  map[string]*burnAccum // short-window offender attribution
}

func (b *burnAccum) add(w *Window, tenants bool) {
	b.presented += w.Requests + w.Shed
	b.shed += w.Shed
	b.queueObs += w.QueueObs
	b.queueOver += w.QueueOver
	if !tenants {
		return
	}
	for i := range w.Tenants {
		tw := &w.Tenants[i]
		if b.byTenant == nil {
			b.byTenant = make(map[string]*burnAccum)
		}
		t := b.byTenant[tw.Tenant]
		if t == nil {
			t = &burnAccum{}
			b.byTenant[tw.Tenant] = t
		}
		t.presented += tw.Requests + tw.Shed
		t.shed += tw.Shed
		t.queueObs += tw.QueueObs
		t.queueOver += tw.QueueOver
	}
}

// burn returns the burn rate of one SLO over the accumulated span.
func (b *burnAccum) burn(slo BurnSLO, cfg BurnConfig) float64 {
	switch slo {
	case BurnShed:
		if b.presented == 0 {
			return 0
		}
		return float64(b.shed) / float64(b.presented) / cfg.ShedBudget
	case BurnQueue:
		if b.queueObs == 0 {
			return 0
		}
		return float64(b.queueOver) / float64(b.queueObs) / cfg.QueueViolationBudget
	}
	return 0
}

// errors returns the SLO's error numerator (for offender attribution).
func (b *burnAccum) errors(slo BurnSLO) int64 {
	if slo == BurnShed {
		return b.shed
	}
	return b.queueOver
}

// accumulate sums the windows whose end falls within lookback of now.
// Windows straddling the boundary count whole — at sampler granularity
// the error is one interval, and counting whole keeps sums monotone.
func accumulate(windows []Window, now time.Time, lookback time.Duration, tenants bool) burnAccum {
	var acc burnAccum
	cutoff := now.Add(-lookback)
	for i := range windows {
		if windows[i].End.After(cutoff) {
			acc.add(&windows[i], tenants)
		}
	}
	return acc
}

// topOffender returns the tenant label holding a strict majority of the
// SLO's errors in the accumulated span, "" when none dominates.
func topOffender(acc *burnAccum, slo BurnSLO) string {
	total := acc.errors(slo)
	if total <= 0 {
		return ""
	}
	best, bestN := "", int64(0)
	for t, b := range acc.byTenant {
		if n := b.errors(slo); n > bestN {
			best, bestN = t, n
		}
	}
	if bestN*2 > total {
		return best
	}
	return ""
}

// EvaluateBurn computes all four (SLO, speed) alerts over the window
// ring. now anchors the lookbacks (pass time.Now() outside tests). The
// result is deterministic and stateless; edge-triggering lives in the
// server, which compares successive evaluations.
func EvaluateBurn(windows []Window, cfg BurnConfig, now time.Time) []BurnAlert {
	cfg = cfg.withDefaults()
	type pair struct {
		speed       string
		short, long time.Duration
		rate        float64
	}
	pairs := []pair{
		{"fast", cfg.FastShort, cfg.FastLong, cfg.FastRate},
		{"slow", cfg.SlowShort, cfg.SlowLong, cfg.SlowRate},
	}
	var out []BurnAlert
	for _, slo := range []BurnSLO{BurnShed, BurnQueue} {
		for _, p := range pairs {
			short := accumulate(windows, now, p.short, true)
			long := accumulate(windows, now, p.long, false)
			a := BurnAlert{
				SLO: slo, Speed: p.speed,
				Short: p.short, Long: p.long, Rate: p.rate,
				ShortBurn: short.burn(slo, cfg),
				LongBurn:  long.burn(slo, cfg),
			}
			a.Firing = a.ShortBurn >= p.rate && a.LongBurn >= p.rate &&
				long.presented >= cfg.MinRequests
			if a.Firing {
				a.Tenant = topOffender(&short, slo)
			}
			out = append(out, a)
		}
	}
	return out
}
