package obs

import (
	"strings"
	"testing"
	"time"

	"nxzip/internal/telemetry"
)

// --- multi-window burn-rate evaluation ---

// burnCfg is the compressed test policy: fast 300ms/1s at 1.5x, slow
// 600ms/2s at 1.2x.
func burnCfg() BurnConfig {
	return BurnConfig{
		FastShort: 300 * time.Millisecond, FastLong: time.Second, FastRate: 1.5,
		SlowShort: 600 * time.Millisecond, SlowLong: 2 * time.Second, SlowRate: 1.2,
		ShedBudget:           0.25,
		QueueViolationBudget: 0.05,
		MinRequests:          10,
	}
}

// burnWindows builds n consecutive 100ms windows ending at now, each
// cloned from proto (with Start/End filled in).
func burnWindows(now time.Time, n int, proto Window) []Window {
	out := make([]Window, n)
	for i := range out {
		w := proto
		w.End = now.Add(-time.Duration(n-1-i) * 100 * time.Millisecond)
		w.Start = w.End.Add(-100 * time.Millisecond)
		out[i] = w
	}
	return out
}

func alertFor(t *testing.T, alerts []BurnAlert, slo BurnSLO, speed string) BurnAlert {
	t.Helper()
	for _, a := range alerts {
		if a.SLO == slo && a.Speed == speed {
			return a
		}
	}
	t.Fatalf("no %s/%s alert in %v", slo, speed, alerts)
	return BurnAlert{}
}

func TestBurnFiresOnShedStormWithOffender(t *testing.T) {
	now := time.Now()
	// 1s of storm: 60 completions + 140 sheds per window (70% shed,
	// burn 2.8x over a 0.25 budget), with t7 holding 120 of each
	// window's sheds — a strict majority.
	storm := burnWindows(now, 10, Window{
		Requests: 60, Shed: 140,
		Tenants: []TenantWindow{
			{Tenant: "t1", Requests: 40, Shed: 20},
			{Tenant: "t7", Requests: 20, Shed: 120},
		},
	})
	// Preceded by 1s of clean traffic.
	clean := burnWindows(now.Add(-time.Second), 10, Window{Requests: 100})
	windows := append(clean, storm...)

	alerts := EvaluateBurn(windows, burnCfg(), now)
	if len(alerts) != 4 {
		t.Fatalf("got %d alerts, want 4", len(alerts))
	}
	fast := alertFor(t, alerts, BurnShed, "fast")
	if !fast.Firing {
		t.Fatalf("shed/fast not firing: %+v", fast)
	}
	if fast.ShortBurn < 2.7 || fast.ShortBurn > 2.9 {
		t.Fatalf("shed/fast short burn %.2f, want ~2.8", fast.ShortBurn)
	}
	if fast.Tenant != "t7" {
		t.Fatalf("shed/fast top offender %q, want t7", fast.Tenant)
	}
	slow := alertFor(t, alerts, BurnShed, "slow")
	if !slow.Firing || slow.Tenant != "t7" {
		t.Fatalf("shed/slow: %+v", slow)
	}
	// No queue-wait data: those alerts stay quiet.
	for _, speed := range []string{"fast", "slow"} {
		if a := alertFor(t, alerts, BurnQueue, speed); a.Firing {
			t.Fatalf("queue/%s firing with no queue data: %+v", speed, a)
		}
	}
	// The alert renders its state and offender for the event bus.
	if d := fast.Detail(); !containsAll(d, "firing", "t7", "shed-ratio") {
		t.Fatalf("Detail missing fields: %q", d)
	}
}

func TestBurnQuietOnHealthyTraffic(t *testing.T) {
	now := time.Now()
	windows := burnWindows(now, 20, Window{Requests: 100, QueueObs: 100})
	for _, a := range EvaluateBurn(windows, burnCfg(), now) {
		if a.Firing {
			t.Fatalf("alert firing on clean traffic: %+v", a)
		}
		if a.Tenant != "" {
			t.Fatalf("quiet alert names a tenant: %+v", a)
		}
	}
}

func TestBurnMinRequestsGate(t *testing.T) {
	now := time.Now()
	// 75% shed ratio but only 8 presented requests per long window —
	// too thin to page on.
	windows := burnWindows(now, 4, Window{Requests: 1, Shed: 1})
	cfg := burnCfg()
	cfg.MinRequests = 1000
	for _, a := range EvaluateBurn(windows, cfg, now) {
		if a.Firing {
			t.Fatalf("alert fired under MinRequests: %+v", a)
		}
	}
}

func TestBurnNoMajorityNoOffender(t *testing.T) {
	now := time.Now()
	// Two tenants split the sheds exactly: neither holds a strict
	// majority, so the alert fires unattributed.
	windows := burnWindows(now, 20, Window{
		Requests: 20, Shed: 80,
		Tenants: []TenantWindow{
			{Tenant: "t1", Shed: 40},
			{Tenant: "t2", Shed: 40},
		},
	})
	fast := alertFor(t, EvaluateBurn(windows, burnCfg(), now), BurnShed, "fast")
	if !fast.Firing {
		t.Fatalf("shed/fast not firing: %+v", fast)
	}
	if fast.Tenant != "" {
		t.Fatalf("split sheds attributed to %q, want none", fast.Tenant)
	}
}

func TestBurnQueueWaitSLO(t *testing.T) {
	now := time.Now()
	// Half of all queue waits over budget: 0.5/0.05 = 10x burn, with t3
	// holding nearly all violations.
	windows := burnWindows(now, 20, Window{
		Requests: 100, QueueObs: 100, QueueOver: 50,
		Tenants: []TenantWindow{
			{Tenant: "t3", QueueObs: 60, QueueOver: 48},
			{Tenant: "t9", QueueObs: 40, QueueOver: 2},
		},
	})
	alerts := EvaluateBurn(windows, burnCfg(), now)
	fast := alertFor(t, alerts, BurnQueue, "fast")
	if !fast.Firing {
		t.Fatalf("queue/fast not firing: %+v", fast)
	}
	if fast.ShortBurn < 9.9 || fast.ShortBurn > 10.1 {
		t.Fatalf("queue/fast burn %.2f, want ~10", fast.ShortBurn)
	}
	if fast.Tenant != "t3" {
		t.Fatalf("queue offender %q, want t3", fast.Tenant)
	}
	if a := alertFor(t, alerts, BurnShed, "fast"); a.Firing {
		t.Fatalf("shed alert firing with zero sheds: %+v", a)
	}
}

func TestBurnConfigDefaults(t *testing.T) {
	got := BurnConfig{}.withDefaults()
	want := DefaultBurnConfig()
	if got != want {
		t.Fatalf("withDefaults() = %+v, want %+v", got, want)
	}
	// A partially-set config keeps its explicit fields.
	cfg := BurnConfig{FastRate: 2}.withDefaults()
	if cfg.FastRate != 2 || cfg.SlowRate != want.SlowRate {
		t.Fatalf("partial defaults: %+v", cfg)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

// --- tenant window derivation ---

func TestTenantWindowsFromDelta(t *testing.T) {
	bounds := telemetry.BucketBounds()
	buckets := func(count, under int64) []int64 {
		b := make([]int64, len(bounds))
		for i := range b {
			if i >= queueBudgetIdx {
				b[i] = under
			} else {
				b[i] = under / 2
			}
		}
		return b
	}
	d := &telemetry.Snapshot{Histograms: []telemetry.HistogramSnapshot{
		{Name: tenantLatencyMetric, Label: "t5/interactive/ok", Count: 10},
		{Name: tenantLatencyMetric, Label: "t5/interactive/shed", Count: 5},
		{Name: tenantLatencyMetric, Label: "t5/batch/ok", Count: 3},
		{Name: tenantQueueWaitMetric, Label: "t5", Count: 13, Buckets: buckets(13, 8), P50: 40, P99: 900},
		{Name: tenantLatencyMetric, Label: "tover/batch/ok", Count: 2},
		{Name: "nx.queue_wait_us", Label: "", Count: 99}, // not a tenant row
	}}
	rows := tenantWindows(d, 2.0)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (t5, tover): %+v", len(rows), rows)
	}
	t5 := rows[0]
	if t5.Tenant != "t5" {
		t.Fatalf("rows not sorted by label: %+v", rows)
	}
	if t5.Requests != 13 || t5.Shed != 5 {
		t.Fatalf("t5 requests/shed = %d/%d, want 13/5", t5.Requests, t5.Shed)
	}
	if want := 5.0 / 18.0; t5.ShedRatio != want {
		t.Fatalf("t5 shed ratio %.3f, want %.3f", t5.ShedRatio, want)
	}
	if t5.ReqPerSec != 6.5 {
		t.Fatalf("t5 req/s %.2f, want 6.5 (13 over 2s)", t5.ReqPerSec)
	}
	if t5.QueueObs != 13 || t5.QueueOver != 5 {
		t.Fatalf("t5 queue obs/over = %d/%d, want 13/5", t5.QueueObs, t5.QueueOver)
	}
	if t5.QueueP50 != 40 || t5.QueueP99 != 900 {
		t.Fatalf("t5 queue percentiles %+v", t5)
	}
	if rows[1].Tenant != "tover" || rows[1].Requests != 2 {
		t.Fatalf("overflow row: %+v", rows[1])
	}
}

func TestTenantOfLabelShapes(t *testing.T) {
	cases := map[string]string{
		"t5":                  "t5",
		"t5/interactive/ok":   "t5",
		"tover":               "tover",
		"tover/batch/shed":    "tover",
		"t5/extra/deep/row":   "",
		"drawer0/cp1":         "",
		"":                    "",
		"x9":                  "",
		"t5!/interactive/ok":  "",
		"t12/background/shed": "t12",
	}
	for in, want := range cases {
		if got := tenantOf(in); got != want {
			t.Errorf("tenantOf(%q) = %q, want %q", in, got, want)
		}
	}
}
