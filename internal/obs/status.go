package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nxzip/internal/stats"
	"nxzip/internal/telemetry"
)

// status.go defines the digested /snapshot document and the terminal
// rendering cmd/nxtop draws from it. Keeping the renderer here (instead
// of in the command) lets the package tests cover it and keeps nxtop a
// thin poll loop.

// DeviceStatus is one device's operational state at snapshot time.
// Cycle counters are cumulative; consumers diff consecutive polls for
// instantaneous utilization (Util carries the lifetime ratio as a
// fallback for the first frame).
type DeviceStatus struct {
	Label   string `json:"label"`
	Healthy bool   `json:"healthy"`
	// Draining marks a device under graceful drain: admission stopped by
	// operator decision (not the breaker), waiting for in-flight work.
	Draining    bool    `json:"draining,omitempty"`
	Dispatched  int64   `json:"dispatched"`
	Load        int64   `json:"load"`      // in-flight picks + FIFO occupancy
	Occupancy   int     `json:"occupancy"` // receive-FIFO depth now
	Credits     int     `json:"credits"`   // send-window credits available across open windows
	Requests    int64   `json:"requests"`
	InBytes     int64   `json:"in_bytes"`
	OutBytes    int64   `json:"out_bytes"`
	BusyCycles  int64   `json:"busy_cycles"`
	TotalCycles int64   `json:"total_cycles"` // modelled cycles since device creation
	Quarantines int64   `json:"quarantines"`
	Util        float64 `json:"util"` // lifetime busy/total
}

// Totals are the node-wide aggregates nxtop's header line shows.
type Totals struct {
	Requests     int64 `json:"requests"`
	InBytes      int64 `json:"in_bytes"`
	OutBytes     int64 `json:"out_bytes"`
	Fallbacks    int64 `json:"fallbacks"`
	Redispatches int64 `json:"redispatches"`
	Quarantines  int64 `json:"quarantines"`
	Readmissions int64 `json:"readmissions"`
	// Shed counts requests refused by the admission gate (all classes);
	// Drains counts graceful-drain starts.
	Shed   int64 `json:"shed"`
	Drains int64 `json:"drains"`
}

// AdmissionClassStatus is one priority class's admission counters.
type AdmissionClassStatus struct {
	Class    string `json:"class"`
	Admitted int64  `json:"admitted"`
	Shed     int64  `json:"shed"`
	Degraded int64  `json:"degraded"` // routed to software by the brownout ladder
}

// AdmissionStatus digests the admission gate for /snapshot and nxtop's
// overload panel. Produced by the root package (obs only defines the
// shape, keeping the dependency pointing one way, exactly as with
// FlightStatus).
type AdmissionStatus struct {
	// Level is the brownout ladder rung: "normal", "shed-background",
	// "shed-batch", "saturated".
	Level string `json:"level"`
	// Pressure is the gate's smoothed occupancy signal in [0,~2].
	Pressure    float64                `json:"pressure"`
	Inflight    int                    `json:"inflight"`
	MaxInflight int                    `json:"max_inflight"`
	Queued      int                    `json:"queued"`
	Evicted     int64                  `json:"evicted"` // CoDel + timeout queue evictions
	Classes     []AdmissionClassStatus `json:"classes,omitempty"`
}

// TenantQuota is one tenant's standing at the admission gate: weight,
// fair share and inflight occupancy. Produced by the root package from
// the admission controller (obs only defines the shape).
type TenantQuota struct {
	ID       uint64  `json:"id"`
	Weight   int     `json:"weight"`
	Inflight int     `json:"inflight"`
	Share    float64 `json:"share"`
	Active   bool    `json:"active"`
}

// TenantDoc is one tenant's row in the /tenants document and nxtop's
// tenant panel: the accounting plane's windowed rates joined with the
// admission gate's quota standing and the burn-rate verdict.
type TenantDoc struct {
	// Tenant is the series label ("t5", or the shared overflow label).
	Tenant string `json:"tenant"`
	// ID is the numeric view identity (0 for the overflow label).
	ID        uint64  `json:"id,omitempty"`
	ReqPerSec float64 `json:"req_per_sec"`
	Requests  int64   `json:"requests"`
	Shed      int64   `json:"shed"`
	ShedRatio float64 `json:"shed_ratio"`
	QueueP50  float64 `json:"queue_p50_us"`
	QueueP99  float64 `json:"queue_p99_us"`
	// Quota standing (zero before EnableAdmission or for tenants the
	// gate has evicted as idle).
	Weight   int     `json:"weight,omitempty"`
	Inflight int     `json:"inflight,omitempty"`
	Share    float64 `json:"share,omitempty"`
	// Burning lists the SLOs of firing burn alerts naming this tenant as
	// top offender.
	Burning []BurnSLO `json:"burning,omitempty"`
}

// TenantsDoc is the /tenants JSON document.
type TenantsDoc struct {
	Name string    `json:"name"`
	Time time.Time `json:"time"`
	// Window is the sampling window the rates cover.
	Window  Window      `json:"window"`
	Tenants []TenantDoc `json:"tenants"`
	// Burn is the latest multi-window burn-rate evaluation (all four
	// SLO/speed pairs, firing or not).
	Burn []BurnAlert `json:"burn,omitempty"`
}

// parseTenantID recovers the numeric view identity from a tenant label
// ("t5" → 5). The overflow label and malformed labels return (0,
// false).
func parseTenantID(label string) (uint64, bool) {
	if len(label) < 2 || label[0] != 't' {
		return 0, false
	}
	var id uint64
	for i := 1; i < len(label); i++ {
		if label[i] < '0' || label[i] > '9' {
			return 0, false
		}
		id = id*10 + uint64(label[i]-'0')
	}
	return id, true
}

// BuildTenants joins one window's per-tenant breakdown with the
// admission gate's quota table and the current burn alerts into the
// /tenants rows. Tenants known only to the gate (registered but idle
// this window) still get a row, so quota standing is never hidden by a
// quiet interval.
func BuildTenants(w Window, quotas []TenantQuota, burn []BurnAlert) []TenantDoc {
	byID := make(map[uint64]*TenantQuota, len(quotas))
	for i := range quotas {
		byID[quotas[i].ID] = &quotas[i]
	}
	seen := make(map[uint64]bool)
	out := make([]TenantDoc, 0, len(w.Tenants)+len(quotas))
	for _, tw := range w.Tenants {
		d := TenantDoc{
			Tenant: tw.Tenant, ReqPerSec: tw.ReqPerSec,
			Requests: tw.Requests, Shed: tw.Shed, ShedRatio: tw.ShedRatio,
			QueueP50: tw.QueueP50, QueueP99: tw.QueueP99,
		}
		if id, ok := parseTenantID(tw.Tenant); ok {
			d.ID = id
			seen[id] = true
			if q := byID[id]; q != nil {
				d.Weight, d.Inflight, d.Share = q.Weight, q.Inflight, q.Share
			}
		}
		out = append(out, d)
	}
	for i := range quotas {
		q := &quotas[i]
		if seen[q.ID] {
			continue
		}
		out = append(out, TenantDoc{
			Tenant: fmt.Sprintf("t%d", q.ID), ID: q.ID,
			Weight: q.Weight, Inflight: q.Inflight, Share: q.Share,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	for _, a := range burn {
		if !a.Firing || a.Tenant == "" {
			continue
		}
		for i := range out {
			if out[i].Tenant != a.Tenant {
				continue
			}
			dup := false
			for _, s := range out[i].Burning {
				if s == a.SLO {
					dup = true
				}
			}
			if !dup {
				out[i].Burning = append(out[i].Burning, a.SLO)
			}
		}
	}
	return out
}

// FlightStatus digests the flight recorder for /snapshot and nxtop:
// how much history is in memory, the rolling tail thresholds, the
// postmortem trail, and the slowest recent requests. Produced by
// internal/flightrec (obs only defines the shape, keeping the
// dependency pointing one way).
type FlightStatus struct {
	// Requests is the total number of requests digested.
	Requests uint64 `json:"requests"`
	// Retained is how many requests currently hold full spans.
	Retained int `json:"retained"`
	// P99TotalUS / P99QueueUS are the recorder's rolling p99s (µs).
	P99TotalUS  float64 `json:"p99_total_us"`
	P99QueueUS  float64 `json:"p99_queue_us"`
	Postmortems int64   `json:"postmortems"`
	// LastTrigger/LastReason describe the most recent postmortem.
	LastTrigger time.Time `json:"last_trigger,omitempty"`
	LastReason  string    `json:"last_reason,omitempty"`
	// Slowest is the "slowest recent requests" feed, worst first.
	Slowest []telemetry.Digest `json:"slowest,omitempty"`
}

// StatusDoc is the /snapshot JSON document: identity, SLO verdict,
// per-device state, node totals, the sampler's recent windows, the
// recent event tail, and the full merged metrics snapshot.
type StatusDoc struct {
	Name          string              `json:"name"`
	Time          time.Time           `json:"time"`
	Healthy       bool                `json:"healthy"`
	Health        HealthReport        `json:"health"`
	Devices       []DeviceStatus      `json:"devices"`
	Totals        Totals              `json:"totals"`
	Admission     *AdmissionStatus    `json:"admission,omitempty"`
	Flight        *FlightStatus       `json:"flight,omitempty"`
	Tenants       []TenantDoc         `json:"tenants,omitempty"`
	Burn          []BurnAlert         `json:"burn,omitempty"`
	Windows       []Window            `json:"windows,omitempty"`
	Events        []Event             `json:"events,omitempty"`
	EventsDropped int64               `json:"events_dropped"`
	Metrics       *telemetry.Snapshot `json:"metrics,omitempty"`
}

// TotalsFromSnapshot digests the node-wide counters a header line needs.
func TotalsFromSnapshot(snap *telemetry.Snapshot) Totals {
	if snap == nil {
		return Totals{}
	}
	return Totals{
		Requests:     snap.Counter("nx.requests", ""),
		InBytes:      snap.Counter("nx.in_bytes", ""),
		OutBytes:     snap.Counter("nx.out_bytes", ""),
		Fallbacks:    snap.Counter("nxzip.fallbacks", ""),
		Redispatches: snap.Counter("nxzip.redispatches", ""),
		Quarantines:  snap.CounterSum("topology.quarantines"),
		Readmissions: snap.CounterSum("topology.readmissions"),
		Shed:         snap.CounterSum("admission.shed"),
		Drains:       snap.CounterSum("topology.drains"),
	}
}

// utilOf returns busy/total from cycle deltas between prev and cur
// (lifetime ratio when prev is absent or stale).
func utilOf(prev *DeviceStatus, cur DeviceStatus) float64 {
	if prev != nil && cur.TotalCycles > prev.TotalCycles && cur.BusyCycles >= prev.BusyCycles {
		return float64(cur.BusyCycles-prev.BusyCycles) / float64(cur.TotalCycles-prev.TotalCycles)
	}
	return cur.Util
}

// RenderText draws one dashboard frame of cur onto w. prev, when
// non-nil, is the previous poll of the same node and sharpens
// utilization from a lifetime average to the inter-poll delta.
func RenderText(w io.Writer, prev, cur *StatusDoc) {
	state := "HEALTHY"
	if !cur.Healthy {
		state = "UNHEALTHY"
	}
	healthyDevs := 0
	for _, d := range cur.Devices {
		if d.Healthy {
			healthyDevs++
		}
	}
	fmt.Fprintf(w, "nxtop — %s — %s — %s (%d/%d devices healthy)\n",
		cur.Name, cur.Time.Format("15:04:05"), state, healthyDevs, len(cur.Devices))
	for _, r := range cur.Health.Rules {
		if !r.OK {
			fmt.Fprintf(w, "  SLO FAIL %-18s %s (%s)\n", r.Name, r.Expr, r.Detail)
		}
	}

	t := cur.Totals
	fmt.Fprintf(w, "totals: %d req, in %s, out %s, %d fallback, %d redispatch, %d quarantine / %d readmit, %d shed, %d drains\n",
		t.Requests, stats.Bytes(t.InBytes), stats.Bytes(t.OutBytes),
		t.Fallbacks, t.Redispatches, t.Quarantines, t.Readmissions, t.Shed, t.Drains)

	// Overload panel: the admission gate's ladder rung and per-class
	// counters (only when admission is enabled on the node).
	if adm := cur.Admission; adm != nil {
		fmt.Fprintf(w, "admission: %s  pressure %.2f  inflight %d/%d  queued %d  evicted %d\n",
			adm.Level, adm.Pressure, adm.Inflight, adm.MaxInflight, adm.Queued, adm.Evicted)
		for _, c := range adm.Classes {
			if c.Admitted == 0 && c.Shed == 0 && c.Degraded == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-12s admitted %-10d shed %-10d degraded %d\n",
				c.Class, c.Admitted, c.Shed, c.Degraded)
		}
	}
	if n := len(cur.Windows); n > 0 {
		lw := cur.Windows[n-1]
		fmt.Fprintf(w, "window: %s  %.0f req/s  queue p50/p95/p99 %s/%s/%s µs\n",
			stats.Rate(lw.GBs*1e9), lw.ReqPerSec,
			fmt.Sprintf("%.0f", lw.QueueP50), fmt.Sprintf("%.0f", lw.QueueP95), fmt.Sprintf("%.0f", lw.QueueP99))
	}

	// Burn-rate panel: any firing multi-window alert, top offender named.
	for _, a := range cur.Burn {
		if a.Firing {
			fmt.Fprintf(w, "BURN %s\n", a.Detail())
		}
	}

	// Tenant panel: the accounting plane's per-tenant windowed rates
	// joined with quota standing (only when tenant series exist).
	if len(cur.Tenants) > 0 {
		fmt.Fprintf(w, "\n%-8s %8s %8s %6s %7s %10s %-10s\n",
			"tenant", "req/s", "shed%", "share", "weight", "p99-queue", "burn")
		for _, td := range cur.Tenants {
			burn := "-"
			if len(td.Burning) > 0 {
				burn = ""
				for i, s := range td.Burning {
					if i > 0 {
						burn += ","
					}
					burn += string(s)
				}
			}
			fmt.Fprintf(w, "%-8s %8.0f %8.1f %6.2f %7d %8.0fµs %-10s\n",
				td.Tenant, td.ReqPerSec, 100*td.ShedRatio, td.Share, td.Weight, td.QueueP99, burn)
		}
	}

	var prevDevs map[string]*DeviceStatus
	if prev != nil {
		prevDevs = make(map[string]*DeviceStatus, len(prev.Devices))
		for i := range prev.Devices {
			prevDevs[prev.Devices[i].Label] = &prev.Devices[i]
		}
	}
	fmt.Fprintf(w, "\n%-14s %-5s %6s %6s %7s %9s %10s %10s %5s\n",
		"device", "state", "util%", "fifo", "credits", "load", "dispatched", "requests", "quar")
	for _, d := range cur.Devices {
		st := "ok"
		switch {
		case d.Draining:
			st = "DRAIN"
		case !d.Healthy:
			st = "QUAR"
		}
		fmt.Fprintf(w, "%-14s %-5s %6.1f %6d %7d %9d %10d %10d %5d\n",
			d.Label, st, 100*utilOf(prevDevs[d.Label], d),
			d.Occupancy, d.Credits, d.Load, d.Dispatched, d.Requests, d.Quarantines)
	}

	// Flight recorder: postmortem trail plus the slowest recent requests.
	if f := cur.Flight; f != nil {
		fmt.Fprintf(w, "\nflight: %d req digested, %d retained, p99 total/queue %.0f/%.0fµs, %d postmortems",
			f.Requests, f.Retained, f.P99TotalUS, f.P99QueueUS, f.Postmortems)
		if f.Postmortems > 0 {
			fmt.Fprintf(w, " (last %s: %s)", f.LastTrigger.Format("15:04:05"), f.LastReason)
		}
		fmt.Fprintln(w)
		if len(f.Slowest) > 0 {
			fmt.Fprintf(w, "%-8s %-16s %-14s %-7s %-11s %10s %10s %8s %4s %-8s\n",
				"req", "op", "device", "tenant", "prio", "total-µs", "queue-µs", "in", "att", "outcome")
			for _, d := range f.Slowest {
				tenant := "-"
				if d.Tenant != 0 {
					tenant = fmt.Sprintf("t%d", d.Tenant)
				}
				prio := d.Priority
				if prio == "" {
					prio = "-"
				}
				fmt.Fprintf(w, "%-8d %-16s %-14s %-7s %-11s %10.0f %10.0f %8s %4d %-8s\n",
					d.Req, d.Op, d.Device, tenant, prio, d.TotalUS, d.QueueUS,
					stats.Bytes(int64(d.InBytes)), d.Attempts, d.Outcome.String())
			}
		}
	}

	// Recent windows, newest last — a glance at how rates are trending.
	if n := len(cur.Windows); n > 1 {
		fmt.Fprintf(w, "\n%-10s %10s %10s %12s %9s\n", "window", "req/s", "rate", "p99-queue", "fallback")
		start := n - 5
		if start < 0 {
			start = 0
		}
		for _, lw := range cur.Windows[start:] {
			fmt.Fprintf(w, "%-10s %10.0f %10s %10.0fµs %9d\n",
				lw.End.Format("15:04:05"), lw.ReqPerSec, stats.Rate(lw.GBs*1e9), lw.QueueP99, lw.Fallbacks)
		}
	}

	if len(cur.Events) > 0 {
		fmt.Fprintf(w, "\nevents (last %d, %d dropped):\n", len(cur.Events), cur.EventsDropped)
		start := len(cur.Events) - 8
		if start < 0 {
			start = 0
		}
		for _, e := range cur.Events[start:] {
			if e.Req != 0 {
				fmt.Fprintf(w, "  %s  %-11s %-14s req=%d %s\n",
					e.Time.Format("15:04:05.000"), e.Type, e.Device, e.Req, e.Detail)
			} else {
				fmt.Fprintf(w, "  %s  %-11s %-14s %s\n",
					e.Time.Format("15:04:05.000"), e.Type, e.Device, e.Detail)
			}
		}
	}
}
