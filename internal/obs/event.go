// Package obs is the operational observability layer over the
// telemetry registry and the topology health model: a structured event
// bus for the control-plane transitions an operator cares about
// (quarantine, readmission, probes, failover, software fallback,
// credit leaks, engine hangs), a windowed sampler that turns lifetime
// aggregates into rates over time, a small SLO rule engine, and an HTTP
// exposition server (/metrics Prometheus text, /snapshot JSON, /events
// JSONL stream, /healthz) that cmd/nxtop and load balancers poll.
//
// The package depends only on internal/telemetry and internal/stats, so
// every layer of the stack (vas, nx, topology, the root package) can
// publish events without an import cycle. All publish paths are
// nil-receiver safe: with no bus attached an emission site costs one
// nil check, the same contract telemetry and faultinject already keep.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventType classifies a control-plane event.
type EventType string

// The event vocabulary. Data-plane completions are not events — they
// are counters; events mark the rarer transitions that change how the
// node serves traffic.
const (
	// EventQuarantine: the health scoreboard opened a device's breaker.
	EventQuarantine EventType = "quarantine"
	// EventReadmit: a quarantined device passed its probes and rejoined.
	EventReadmit EventType = "readmit"
	// EventProbe: a live request was admitted to a quarantined device as
	// a half-open probe.
	EventProbe EventType = "probe"
	// EventFailover: a request failed on one device and was re-dispatched
	// to another.
	EventFailover EventType = "failover"
	// EventFallback: a request was completed by the software codec
	// because no healthy device could serve it (Metrics.Degraded).
	EventFallback EventType = "fallback"
	// EventCreditLeak: a completion's send-window credit was swallowed
	// (injected or modelled leak) — enough of these wedge the window.
	EventCreditLeak EventType = "credit-leak"
	// EventEngineHang: an engine dropped a dequeued request without
	// writing its CSB; the watchdog reclaimed the credit.
	EventEngineHang EventType = "engine-hang"
	// EventShed: the admission gate refused a request under overload
	// (brownout, quota, queue overflow or CoDel eviction).
	EventShed EventType = "shed"
	// EventDrain: a device entered or completed graceful drain (Detail
	// distinguishes the phases).
	EventDrain EventType = "drain"
	// EventBurnRate: a multi-window burn-rate alert changed state — an
	// SLO error budget is burning fast enough to exhaust within its
	// window (or stopped). Tenant carries the top offender when one
	// stands out; Detail carries the windows, rates and budget.
	EventBurnRate EventType = "burn-rate"
)

// Event is one typed record on the bus. Device carries the topology
// label of the device involved ("chip0", "drawer1/cp2"); empty when the
// event is node-scoped.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type EventType `json:"type"`
	// Req links the event to the root-level request that triggered it
	// (the CRB.ReqID minted by the public API); 0 for events with no
	// originating request (periodic probes, sampler-driven transitions).
	Req uint64 `json:"req,omitempty"`
	// Tenant is the view identity the event concerns: the refused
	// request's tenant on EventShed, the top-offending tenant on
	// EventBurnRate. 0 for tenant-blind events.
	Tenant uint64 `json:"tenant,omitempty"`
	Device string `json:"device,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// tailLen bounds the ring of recent events the bus keeps for /snapshot
// and late subscribers.
const tailLen = 256

// Bus fans events out to bounded subscriber channels. Publish never
// blocks: a subscriber that cannot keep up loses events and its drop
// counter advances, so slow consumers degrade themselves, not the
// publishing request path. All methods are nil-receiver safe.
type Bus struct {
	mu   sync.Mutex
	subs []*Subscription
	tail []Event // ring of the most recent events
	next int     // ring write position once len(tail) == tailLen
	seq  atomic.Uint64

	published atomic.Int64
	dropped   atomic.Int64
}

// NewBus builds an empty bus.
func NewBus() *Bus { return &Bus{} }

// Publish stamps the event (sequence number, and time if unset) and
// delivers it to every subscriber that has channel capacity. Safe for
// concurrent use; a nil bus ignores the event.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	e.Seq = b.seq.Add(1)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.published.Add(1)
	b.mu.Lock()
	if len(b.tail) < tailLen {
		b.tail = append(b.tail, e)
	} else {
		b.tail[b.next] = e
		b.next = (b.next + 1) % tailLen
	}
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Published returns the number of events published over the bus's
// lifetime (0 on a nil bus).
func (b *Bus) Published() int64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Dropped returns the total events lost across all subscribers — a
// monotone counter, never reset.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Tail returns up to n of the most recent events, oldest first. A nil
// bus returns nil.
func (b *Bus) Tail(n int) []Event {
	if b == nil || n <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, n)
	if len(b.tail) < tailLen {
		start := len(b.tail) - n
		if start < 0 {
			start = 0
		}
		out = append(out, b.tail[start:]...)
		return out
	}
	if n > tailLen {
		n = tailLen
	}
	for i := tailLen - n; i < tailLen; i++ {
		out = append(out, b.tail[(b.next+i)%tailLen])
	}
	return out
}

// Subscribe registers a bounded subscriber channel (buffer clamps to at
// least 1). Close the subscription to stop delivery.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{bus: b, ch: make(chan Event, buffer)}
	if b != nil {
		b.mu.Lock()
		b.subs = append(b.subs, s)
		b.mu.Unlock()
	}
	return s
}

// Subscription is one bounded consumer of the bus.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Int64
	closed  atomic.Bool
}

// C returns the event channel. It is closed by Subscription.Close, not
// by the bus.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full
// channel — monotone, never reset.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscription and closes its channel. Idempotent.
func (s *Subscription) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.bus != nil {
		s.bus.mu.Lock()
		for i, sub := range s.bus.subs {
			if sub == s {
				s.bus.subs = append(s.bus.subs[:i], s.bus.subs[i+1:]...)
				break
			}
		}
		// Publishers hold the bus lock while sending, so closing under it
		// cannot race a send on the closed channel.
		close(s.ch)
		s.bus.mu.Unlock()
		return
	}
	close(s.ch)
}

// EventLog drains a subscription to a writer as JSON lines — the
// event-log sink behind nxzip's -events flag. Build with NewEventLog;
// Close flushes nothing (each event is written as it arrives) but
// reports how many events the subscription dropped.
type EventLog struct {
	sub  *Subscription
	done chan struct{}
	err  error
}

// NewEventLog subscribes to bus with the given channel buffer and
// starts a goroutine writing one JSON object per line to w.
func NewEventLog(bus *Bus, w io.Writer, buffer int) *EventLog {
	l := &EventLog{sub: bus.Subscribe(buffer), done: make(chan struct{})}
	enc := json.NewEncoder(w)
	go func() {
		defer close(l.done)
		for e := range l.sub.C() {
			if err := enc.Encode(e); err != nil {
				l.err = err
				return
			}
		}
	}()
	return l
}

// Close stops the log and returns the first write error, if any, along
// with the number of events dropped while the log was attached.
func (l *EventLog) Close() (dropped int64, err error) {
	l.sub.Close()
	<-l.done
	return l.sub.Dropped(), l.err
}
