package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nxzip/internal/telemetry"
)

// --- event bus ---

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: EventQuarantine, Device: fmt.Sprintf("chip%d", i)})
	}
	for i := 0; i < 5; i++ {
		select {
		case e := <-sub.C():
			if e.Seq != uint64(i+1) {
				t.Fatalf("event %d: seq %d, want %d", i, e.Seq, i+1)
			}
			if e.Device != fmt.Sprintf("chip%d", i) {
				t.Fatalf("event %d: device %q", i, e.Device)
			}
			if e.Time.IsZero() {
				t.Fatalf("event %d: zero timestamp", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d never delivered", i)
		}
	}
	if got := b.Published(); got != 5 {
		t.Fatalf("Published = %d, want 5", got)
	}
	if got := b.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}

func TestBusDropsWhenSubscriberFull(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: EventProbe})
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription Dropped = %d, want 8", got)
	}
	if got := b.Dropped(); got != 8 {
		t.Fatalf("bus Dropped = %d, want 8", got)
	}
	// The two buffered events still deliver.
	if e := <-sub.C(); e.Seq != 1 {
		t.Fatalf("first delivered seq = %d, want 1", e.Seq)
	}
}

func TestBusTailWraps(t *testing.T) {
	b := NewBus()
	total := tailLen + 50
	for i := 0; i < total; i++ {
		b.Publish(Event{Type: EventFailover, Detail: fmt.Sprintf("e%d", i)})
	}
	tail := b.Tail(10)
	if len(tail) != 10 {
		t.Fatalf("Tail(10) returned %d events", len(tail))
	}
	for i, e := range tail {
		wantSeq := uint64(total - 10 + i + 1)
		if e.Seq != wantSeq {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, e.Seq, wantSeq)
		}
	}
	if got := b.Tail(2 * tailLen); len(got) != tailLen {
		t.Fatalf("oversized Tail returned %d, want %d", len(got), tailLen)
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: EventFallback}) // must not panic
	if b.Published() != 0 || b.Dropped() != 0 || b.Tail(5) != nil {
		t.Fatal("nil bus accessors not zero")
	}
	sub := b.Subscribe(1)
	sub.Close()
	sub.Close() // idempotent
}

func TestBusConcurrentPublishSubscribeClose(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Type: EventEngineHang})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe(4)
			for i := 0; i < 20; i++ {
				select {
				case <-sub.C():
				case <-time.After(10 * time.Millisecond):
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
	if got := b.Published(); got != 800 {
		t.Fatalf("Published = %d, want 800", got)
	}
}

// lockedBuffer synchronizes test reads against the EventLog goroutine's
// writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestEventLogWritesJSONL(t *testing.T) {
	b := NewBus()
	var buf lockedBuffer
	log := NewEventLog(b, &buf, 64)
	b.Publish(Event{Type: EventQuarantine, Device: "chip1", Detail: "three strikes"})
	b.Publish(Event{Type: EventReadmit, Device: "chip1"})
	// Drain: wait for the log goroutine to consume both before closing.
	deadline := time.Now().Add(time.Second)
	for strings.Count(buf.String(), "\n") < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	dropped, err := log.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e.Type != EventQuarantine || e.Device != "chip1" {
		t.Fatalf("decoded %+v", e)
	}
}

// --- prometheus exposition ---

func testSnapshot() *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Counters: []telemetry.CounterSnapshot{
			{Name: "nx.requests", Value: 100},
			{Name: "nx.requests", Label: "drawer0/cp1", Value: 60},
			{Name: "vas.pastes", Value: 123},
		},
		Gauges: []telemetry.GaugeSnapshot{
			{Name: "topology.healthy_devices", Value: 3, Max: 4},
			{Name: "vas.fifo_occupancy", Label: `odd"label\n`, Value: 7, Max: 12},
		},
		Histograms: []telemetry.HistogramSnapshot{
			{Name: "nx.queue_wait_us", Count: 10, Sum: 55.5, Mean: 5.55, P50: 5, P95: 9, P99: 9.9},
		},
	}
	s.Sort()
	return s
}

func TestPromRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if err := WriteProm(&buf, snap); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	series, err := ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}
	checks := map[string]float64{
		PromSeries("nx.requests", ""):                   100,
		PromSeries("nx.requests", "drawer0/cp1"):        60,
		PromSeries("vas.pastes", ""):                    123,
		PromSeries("topology.healthy_devices", ""):      3,
		"topology_healthy_devices_max":                  4,
		PromSeries("vas.fifo_occupancy", `odd"label\n`): 7,
		"nx_queue_wait_us_p99":                          9.9,
		`nx_queue_wait_us_bucket{le="+Inf"}`:            10,
		"nx_queue_wait_us_sum":                          55.5,
		"nx_queue_wait_us_count":                        10,
	}
	for key, want := range checks {
		got, ok := series[key]
		if !ok {
			t.Errorf("series %s missing; exposition:\n%s", key, buf.String())
			continue
		}
		if got != want {
			t.Errorf("series %s = %v, want %v", key, got, want)
		}
	}
}

func TestPromTypeHeadersOncePerFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[line]++
		}
	}
	for header, n := range seen {
		if n != 1 {
			t.Errorf("%q emitted %d times", header, n)
		}
	}
	if seen["# TYPE nx_requests counter"] != 1 || seen["# TYPE nx_queue_wait_us histogram"] != 1 ||
		seen["# TYPE nx_queue_wait_us_p99 gauge"] != 1 {
		t.Fatalf("expected families missing: %v", seen)
	}
}

// TestPromHistogramBuckets drives a live registry histogram through the
// exposition and back: cumulative bucket counts must round-trip, agree
// with _count at +Inf, and be monotone non-decreasing over the ladder.
func TestPromHistogramBuckets(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("nx.queue_wait_us")
	values := []float64{0.5, 3, 3, 40, 700, 9e3, 2e5, 6e8}
	for _, v := range values {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	series, err := ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}
	bounds := telemetry.BucketBounds()
	prev := 0.0
	for _, b := range bounds {
		key := fmt.Sprintf(`nx_queue_wait_us_bucket{le="%s"}`, promFloat(b))
		got, ok := series[key]
		if !ok {
			t.Fatalf("bucket %s missing; exposition:\n%s", key, buf.String())
		}
		if got < prev {
			t.Fatalf("bucket %s = %v decreased below %v", key, got, prev)
		}
		want := 0
		for _, v := range values {
			if v <= b {
				want++
			}
		}
		if got != float64(want) {
			t.Fatalf("bucket %s = %v, want %d", key, got, want)
		}
		prev = got
	}
	if inf := series[`nx_queue_wait_us_bucket{le="+Inf"}`]; inf != float64(len(values)) {
		t.Fatalf("+Inf bucket = %v, want %d", inf, len(values))
	}
	if series["nx_queue_wait_us_count"] != float64(len(values)) {
		t.Fatalf("count = %v", series["nx_queue_wait_us_count"])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, in := range []string{"noval", "name{unclosed 3"} {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm(%q) accepted malformed input", in)
		}
	}
}

func TestPromNameFolding(t *testing.T) {
	if got := promName("nx.engine.stage_cycles"); got != "nx_engine_stage_cycles" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_lives" {
		t.Fatalf("leading digit: %q", got)
	}
}

// --- SLO rules ---

func snapWith(fallbacks, requests int64, p99 float64, obsCount int64) *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Counters: []telemetry.CounterSnapshot{
			{Name: "nx.requests", Value: requests},
			{Name: "nxzip.fallbacks", Value: fallbacks},
		},
		Histograms: []telemetry.HistogramSnapshot{
			{Name: "nx.queue_wait_us", Count: obsCount, P99: p99},
		},
	}
	s.Sort()
	return s
}

func TestSLOHealthyNode(t *testing.T) {
	in := Inputs{Snap: snapWith(1, 99, 50, 99), HealthyDevices: 4, Devices: 4}
	rep := Evaluate(in, DefaultRules())
	if !rep.Healthy {
		t.Fatalf("healthy node evaluated unhealthy: %+v", rep)
	}
	if len(rep.Rules) != 4 {
		t.Fatalf("rule count %d", len(rep.Rules))
	}
}

func TestSLOMinHealthyFraction(t *testing.T) {
	r := MinHealthyFraction(0.5)
	if ok, _, _ := r.Check(Inputs{HealthyDevices: 1, Devices: 4}); ok {
		t.Fatal("1/4 healthy passed a 0.5 floor")
	}
	if ok, v, _ := r.Check(Inputs{HealthyDevices: 2, Devices: 4}); !ok || v != 0.5 {
		t.Fatalf("2/4 healthy: ok=%v v=%v", ok, v)
	}
	if ok, _, _ := r.Check(Inputs{Devices: 0}); ok {
		t.Fatal("zero devices passed")
	}
}

func TestSLOFallbackRatio(t *testing.T) {
	r := MaxFallbackRatio(0.10)
	if ok, _, _ := r.Check(Inputs{Snap: snapWith(50, 50, 0, 0)}); ok {
		t.Fatal("50% degraded passed a 10% bound")
	}
	if ok, _, _ := r.Check(Inputs{Snap: snapWith(0, 0, 0, 0)}); !ok {
		t.Fatal("idle node failed")
	}
	if ok, _, _ := r.Check(Inputs{}); !ok {
		t.Fatal("nil snapshot failed")
	}
}

func TestSLOHistogramP99(t *testing.T) {
	r := MaxHistogramP99("nx.queue_wait_us", 100)
	if ok, v, _ := r.Check(Inputs{Snap: snapWith(0, 1, 500, 10)}); ok || v != 500 {
		t.Fatalf("p99 500 passed bound 100 (v=%v)", v)
	}
	if ok, _, _ := r.Check(Inputs{Snap: snapWith(0, 1, 0, 0)}); !ok {
		t.Fatal("empty histogram failed")
	}
}

// --- windows / sampler ---

func TestSamplerWindows(t *testing.T) {
	var mu sync.Mutex
	requests, inBytes := int64(0), int64(0)
	snap := func() *telemetry.Snapshot {
		mu.Lock()
		defer mu.Unlock()
		s := &telemetry.Snapshot{Counters: []telemetry.CounterSnapshot{
			{Name: "nx.requests", Value: requests},
			{Name: "nx.in_bytes", Value: inBytes},
		}}
		s.Sort()
		return s
	}
	s := NewSampler(snap, 4)
	s.Tick() // baseline
	mu.Lock()
	requests, inBytes = 10, 1<<20
	mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	w := s.Tick()
	if w.Requests != 10 || w.InBytes != 1<<20 {
		t.Fatalf("window deltas: %+v", w)
	}
	if w.ReqPerSec <= 0 || w.GBs <= 0 {
		t.Fatalf("window rates not derived: %+v", w)
	}
	// Ring bounds: capacity 4, ticks beyond it evict the oldest.
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if got := len(s.Windows()); got != 4 {
		t.Fatalf("ring length %d, want 4", got)
	}
	if last := s.Last(); last.Requests != 0 {
		t.Fatalf("idle window carried requests: %+v", last)
	}
}

func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(func() *telemetry.Snapshot { return &telemetry.Snapshot{} }, 8)
	s.Start(time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for len(s.Windows()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if len(s.Windows()) < 2 {
		t.Fatal("interval goroutine never ticked")
	}
	s.Stop() // idempotent
}

// --- delta (telemetry) as consumed by obs ---

func TestSnapshotDelta(t *testing.T) {
	prev := &telemetry.Snapshot{
		Counters:   []telemetry.CounterSnapshot{{Name: "nx.requests", Value: 10}},
		Histograms: []telemetry.HistogramSnapshot{{Name: "h", Count: 4, Sum: 40}},
	}
	cur := &telemetry.Snapshot{
		Counters: []telemetry.CounterSnapshot{
			{Name: "nx.requests", Value: 25},
			{Name: "nx.new_counter", Value: 7},
		},
		Gauges:     []telemetry.GaugeSnapshot{{Name: "g", Value: 3, Max: 9}},
		Histograms: []telemetry.HistogramSnapshot{{Name: "h", Count: 10, Sum: 100}},
	}
	prev.Sort()
	cur.Sort()
	d := cur.Delta(prev)
	if got := d.Counter("nx.requests", ""); got != 15 {
		t.Fatalf("counter delta %d", got)
	}
	if got := d.Counter("nx.new_counter", ""); got != 7 {
		t.Fatalf("absent-in-prev counter %d", got)
	}
	if got := d.Gauge("g", ""); got != 3 {
		t.Fatalf("gauge carried %d", got)
	}
	h, ok := d.Histogram("h", "")
	if !ok || h.Count != 6 || h.Sum != 60 || h.Mean != 10 {
		t.Fatalf("histogram delta %+v ok=%v", h, ok)
	}
	// Nil prev = full values.
	full := cur.Delta(nil)
	if got := full.Counter("nx.requests", ""); got != 25 {
		t.Fatalf("nil-prev delta %d", got)
	}
}

// --- server endpoints ---

func startTestServer(t *testing.T, bus *Bus, healthy, total int, snap func() *telemetry.Snapshot) *Server {
	t.Helper()
	if snap == nil {
		snap = testSnapshot
	}
	srv := NewServer(Options{
		Addr:     "127.0.0.1:0",
		Name:     "test-node",
		Snapshot: snap,
		Devices: func() []DeviceStatus {
			return []DeviceStatus{{Label: "chip0", Healthy: true, BusyCycles: 50, TotalCycles: 100, Util: 0.5}}
		},
		Health: func() (int, int) { return healthy, total },
		Bus:    bus,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerMetricsEndpoint(t *testing.T) {
	srv := startTestServer(t, nil, 4, 4, nil)
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	series, err := ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if series[PromSeries("nx.requests", "")] != 100 {
		t.Fatalf("nx_requests = %v", series[PromSeries("nx.requests", "")])
	}
}

func TestServerSnapshotEndpoint(t *testing.T) {
	bus := NewBus()
	bus.Publish(Event{Type: EventQuarantine, Device: "chip0"})
	srv := startTestServer(t, bus, 4, 4, nil)
	resp, err := http.Get("http://" + srv.Addr() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Name != "test-node" || !doc.Healthy {
		t.Fatalf("doc header: %+v", doc)
	}
	if len(doc.Devices) != 1 || doc.Devices[0].Label != "chip0" {
		t.Fatalf("devices: %+v", doc.Devices)
	}
	if len(doc.Events) != 1 || doc.Events[0].Type != EventQuarantine {
		t.Fatalf("events: %+v", doc.Events)
	}
	if doc.Totals.Requests != 100 {
		t.Fatalf("totals: %+v", doc.Totals)
	}
	if doc.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
}

func TestServerHealthzFlips(t *testing.T) {
	healthy := 4
	var mu sync.Mutex
	srv := NewServer(Options{
		Addr:     "127.0.0.1:0",
		Snapshot: func() *telemetry.Snapshot { return &telemetry.Snapshot{} },
		Health: func() (int, int) {
			mu.Lock()
			defer mu.Unlock()
			return healthy, 4
		},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func() (int, HealthReport) {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}
	if code, rep := get(); code != http.StatusOK || !rep.Healthy {
		t.Fatalf("healthy: code %d rep %+v", code, rep)
	}
	mu.Lock()
	healthy = 1 // 1/4 < 0.5
	mu.Unlock()
	code, rep := get()
	if code != http.StatusServiceUnavailable || rep.Healthy {
		t.Fatalf("majority-quarantine: code %d rep %+v", code, rep)
	}
	mu.Lock()
	healthy = 3
	mu.Unlock()
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("recovered: code %d", code)
	}
}

func TestServerEventsStream(t *testing.T) {
	bus := NewBus()
	srv := startTestServer(t, bus, 4, 4, nil)
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		// Give the handler a moment to subscribe before publishing.
		time.Sleep(20 * time.Millisecond)
		bus.Publish(Event{Type: EventFailover, Device: "chip2", Detail: "re-dispatching"})
	}()
	dec := json.NewDecoder(resp.Body)
	var e Event
	if err := dec.Decode(&e); err != nil {
		t.Fatalf("stream decode: %v", err)
	}
	if e.Type != EventFailover || e.Device != "chip2" {
		t.Fatalf("streamed %+v", e)
	}
}

func TestServerEventsWithoutBus(t *testing.T) {
	srv := startTestServer(t, nil, 4, 4, nil)
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-bus /events status %d", resp.StatusCode)
	}
}

// --- status rendering ---

func TestRenderTextSmoke(t *testing.T) {
	cur := &StatusDoc{
		Name: "render-node", Time: time.Unix(1000, 0), Healthy: false,
		Health: HealthReport{Rules: []RuleResult{{Name: "healthy-devices", Expr: "x >= 0.5", OK: false, Detail: "1/4 healthy"}}},
		Devices: []DeviceStatus{
			{Label: "chip0", Healthy: true, BusyCycles: 75, TotalCycles: 100, Util: 0.75},
			{Label: "chip1", Healthy: false, Quarantines: 2},
		},
		Totals:  Totals{Requests: 42, InBytes: 1 << 20},
		Windows: []Window{{ReqPerSec: 10, GBs: 0.5, QueueP99: 120}, {ReqPerSec: 12, GBs: 0.6, QueueP99: 130}},
		Events:  []Event{{Seq: 1, Type: EventQuarantine, Device: "chip1", Detail: "three strikes"}},
	}
	prev := &StatusDoc{Devices: []DeviceStatus{{Label: "chip0", BusyCycles: 25, TotalCycles: 50}}}
	var buf bytes.Buffer
	RenderText(&buf, prev, cur)
	out := buf.String()
	for _, want := range []string{"render-node", "UNHEALTHY", "SLO FAIL", "chip0", "QUAR", "quarantine", "three strikes"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Delta utilization: (75-25)/(100-50) = 100%, not the lifetime 75%.
	if !strings.Contains(out, "100.0") {
		t.Errorf("expected delta-based utilization 100.0:\n%s", out)
	}
	// First frame (no prev) falls back to lifetime Util without panicking.
	buf.Reset()
	RenderText(&buf, nil, cur)
	if !strings.Contains(buf.String(), "75.0") {
		t.Errorf("lifetime utilization missing:\n%s", buf.String())
	}
}

func TestTotalsFromSnapshot(t *testing.T) {
	tot := TotalsFromSnapshot(testSnapshot())
	if tot.Requests != 100 {
		t.Fatalf("totals %+v", tot)
	}
	if z := TotalsFromSnapshot(nil); z != (Totals{}) {
		t.Fatalf("nil snapshot totals %+v", z)
	}
}
