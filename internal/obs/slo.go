package obs

import (
	"fmt"

	"nxzip/internal/telemetry"
)

// slo.go is the health policy behind /healthz: a small rule engine
// evaluated over the merged snapshot and the topology health counts, so
// load balancers and tests can gate on one status code instead of
// scraping and thresholding metrics themselves.

// Inputs is what one evaluation sees: the merged node snapshot, the
// health scoreboard's device counts, and the sampler's recent windows.
type Inputs struct {
	Snap           *telemetry.Snapshot
	HealthyDevices int
	Devices        int
	Windows        []Window
}

// Rule is one SLO check. Check returns whether the rule holds, the
// measured value, and a human-readable detail for the report.
type Rule struct {
	Name  string
	Expr  string // the rule as an operator would write it, for the report
	Check func(Inputs) (ok bool, value float64, detail string)
}

// RuleResult is one rule's outcome in a health report.
type RuleResult struct {
	Name   string  `json:"name"`
	Expr   string  `json:"expr"`
	OK     bool    `json:"ok"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
}

// HealthReport is the /healthz body: overall verdict plus every rule's
// result.
type HealthReport struct {
	Healthy bool         `json:"healthy"`
	Rules   []RuleResult `json:"rules"`
}

// Evaluate runs every rule; the node is healthy iff all hold.
func Evaluate(in Inputs, rules []Rule) HealthReport {
	rep := HealthReport{Healthy: true}
	for _, r := range rules {
		ok, v, detail := r.Check(in)
		rep.Rules = append(rep.Rules, RuleResult{Name: r.Name, Expr: r.Expr, OK: ok, Value: v, Detail: detail})
		if !ok {
			rep.Healthy = false
		}
	}
	return rep
}

// MinHealthyFraction requires healthy_devices/devices >= min. A node
// with no devices at all fails (there is nothing to serve hardware
// requests).
func MinHealthyFraction(min float64) Rule {
	return Rule{
		Name: "healthy-devices",
		Expr: fmt.Sprintf("healthy_devices/devices >= %g", min),
		Check: func(in Inputs) (bool, float64, string) {
			if in.Devices == 0 {
				return false, 0, "no devices"
			}
			f := float64(in.HealthyDevices) / float64(in.Devices)
			return f >= min, f, fmt.Sprintf("%d/%d healthy", in.HealthyDevices, in.Devices)
		},
	}
}

// MaxFallbackRatio bounds the fraction of completed operations that
// degraded to the software codec: nxzip.fallbacks / (nx.requests +
// nxzip.fallbacks). Idle nodes (no traffic yet) pass.
func MaxFallbackRatio(max float64) Rule {
	return Rule{
		Name: "degraded-fallback",
		Expr: fmt.Sprintf("fallbacks/(requests+fallbacks) <= %g", max),
		Check: func(in Inputs) (bool, float64, string) {
			if in.Snap == nil {
				return true, 0, "no snapshot"
			}
			fb := in.Snap.Counter("nxzip.fallbacks", "")
			req := in.Snap.Counter("nx.requests", "")
			total := fb + req
			if total == 0 {
				return true, 0, "no traffic"
			}
			f := float64(fb) / float64(total)
			return f <= max, f, fmt.Sprintf("%d of %d degraded", fb, total)
		},
	}
}

// MaxHistogramP99 bounds a histogram's p99 (over its recent sample
// ring). An absent or empty histogram passes — no observations means
// nothing violated the bound.
func MaxHistogramP99(name string, bound float64) Rule {
	return Rule{
		Name: "p99-" + name,
		Expr: fmt.Sprintf("p99(%s) <= %g", name, bound),
		Check: func(in Inputs) (bool, float64, string) {
			if in.Snap == nil {
				return true, 0, "no snapshot"
			}
			h, ok := in.Snap.Histogram(name, "")
			if !ok || h.Count == 0 {
				return true, 0, "no observations"
			}
			return h.P99 <= bound, h.P99, fmt.Sprintf("p99 %.1f over %d observations", h.P99, h.Count)
		},
	}
}

// MaxShedRatio bounds the fraction of offered requests refused by the
// admission gate: admission.shed / (admission.admitted + admission.shed),
// summed over every priority class. Shedding background traffic under a
// short burst is the gate working as designed; a sustained ratio above
// the bound means the node is running brownout as a steady state. Nodes
// without admission enabled (no counters) pass.
func MaxShedRatio(max float64) Rule {
	return Rule{
		Name: "overload-shed",
		Expr: fmt.Sprintf("shed/(admitted+shed) <= %g", max),
		Check: func(in Inputs) (bool, float64, string) {
			if in.Snap == nil {
				return true, 0, "no snapshot"
			}
			shed := in.Snap.CounterSum("admission.shed")
			admitted := in.Snap.CounterSum("admission.admitted")
			total := shed + admitted
			if total == 0 {
				return true, 0, "no gated traffic"
			}
			f := float64(shed) / float64(total)
			return f <= max, f, fmt.Sprintf("%d of %d shed", shed, total)
		},
	}
}

// DefaultRules is the shipped SLO: at least half the devices healthy,
// at most 10% of operations degraded to software, queue wait p99 under
// 100 ms, and at most 25% of gated traffic shed — generous bounds meant
// to catch broken, not busy.
func DefaultRules() []Rule {
	return []Rule{
		MinHealthyFraction(0.5),
		MaxFallbackRatio(0.10),
		MaxHistogramP99("nx.queue_wait_us", 100_000),
		MaxShedRatio(0.25),
	}
}
