package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nxzip/internal/telemetry"
)

// prom.go renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4) and parses it back — the round-trip
// the obs-demo target and the acceptance tests check.
//
// Mapping: instrument names keep their registry spelling with
// non-metric characters folded to '_' ("nx.requests" → "nx_requests");
// registry labels land under a single "label" key, so the per-device
// rows of a merged node snapshot become label="drawer0/cp1/…" series
// and the aggregate rows stay unlabeled. Counters map to counter,
// gauges to two gauge series (value plus <name>_max for the high-water
// mark), histograms to native Prometheus histograms — cumulative
// <name>_bucket{le="…"} series over the registry's fixed bucket ladder
// plus the le="+Inf", _sum and _count samples — so server-side
// histogram_quantile works across scrapes and instances. The sample
// ring's point-in-time percentiles remain available as <name>_p50 /
// _p95 / _p99 gauge families (snapshots without bucket data, e.g.
// synthetic ones, emit only the +Inf bucket).

// promName folds a registry instrument name into the Prometheus metric
// name charset [a-zA-Z0-9_:].
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series renders one sample line: name, optional registry label,
// optional extra label pair (quantile), and the value.
func series(name, label, extraKey, extraVal string) string {
	var parts []string
	if label != "" {
		parts = append(parts, `label="`+promLabel(label)+`"`)
	}
	if extraKey != "" {
		parts = append(parts, extraKey+`="`+extraVal+`"`)
	}
	if len(parts) == 0 {
		return name
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// promFloat formats a value the way Prometheus expects (no exponent
// surprises for the integer-valued counters).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the snapshot as Prometheus text exposition. The
// snapshot's name-then-label ordering means each family's TYPE header
// is emitted exactly once, immediately before its samples.
func WriteProm(w io.Writer, snap *telemetry.Snapshot) error {
	bw := bufio.NewWriter(w)
	last := ""
	for _, c := range snap.Counters {
		name := promName(c.Name)
		if name != last {
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			last = name
		}
		fmt.Fprintf(bw, "%s %d\n", series(name, c.Label, "", ""), c.Value)
	}
	for i := 0; i < len(snap.Gauges); {
		j := i
		for j < len(snap.Gauges) && snap.Gauges[j].Name == snap.Gauges[i].Name {
			j++
		}
		name := promName(snap.Gauges[i].Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, g := range snap.Gauges[i:j] {
			fmt.Fprintf(bw, "%s %d\n", series(name, g.Label, "", ""), g.Value)
		}
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n", name)
		for _, g := range snap.Gauges[i:j] {
			fmt.Fprintf(bw, "%s %d\n", series(name+"_max", g.Label, "", ""), g.Max)
		}
		i = j
	}
	bounds := telemetry.BucketBounds()
	for i := 0; i < len(snap.Histograms); {
		j := i
		for j < len(snap.Histograms) && snap.Histograms[j].Name == snap.Histograms[i].Name {
			j++
		}
		name := promName(snap.Histograms[i].Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, h := range snap.Histograms[i:j] {
			// Exemplars render as OpenMetrics-style suffixes on the bucket
			// lines: `… # {req_id="42"} <value>` — the RequestID of the most
			// recent request to land in the bucket, resolvable against the
			// flight recorder's digest ring.
			ex := h.Exemplars
			if len(ex) != len(bounds)+1 {
				ex = nil
			}
			if len(h.Buckets) == len(bounds) {
				for k, b := range bounds {
					fmt.Fprintf(bw, "%s %d", series(name+"_bucket", h.Label, "le", promFloat(b)), h.Buckets[k])
					if ex != nil && ex[k].Req != 0 {
						fmt.Fprintf(bw, " # {req_id=\"%d\"} %s", ex[k].Req, promFloat(ex[k].Value))
					}
					fmt.Fprintln(bw)
				}
			}
			fmt.Fprintf(bw, "%s %d", series(name+"_bucket", h.Label, "le", "+Inf"), h.Count)
			if ex != nil && ex[len(bounds)].Req != 0 {
				fmt.Fprintf(bw, " # {req_id=\"%d\"} %s", ex[len(bounds)].Req, promFloat(ex[len(bounds)].Value))
			}
			fmt.Fprintln(bw)
			fmt.Fprintf(bw, "%s %s\n", series(name+"_sum", h.Label, "", ""), promFloat(h.Sum))
			fmt.Fprintf(bw, "%s %d\n", series(name+"_count", h.Label, "", ""), h.Count)
		}
		for _, p := range []struct {
			suffix string
			value  func(telemetry.HistogramSnapshot) float64
		}{
			{"p50", func(h telemetry.HistogramSnapshot) float64 { return h.P50 }},
			{"p95", func(h telemetry.HistogramSnapshot) float64 { return h.P95 }},
			{"p99", func(h telemetry.HistogramSnapshot) float64 { return h.P99 }},
		} {
			fname := name + "_" + p.suffix
			fmt.Fprintf(bw, "# TYPE %s gauge\n", fname)
			for _, h := range snap.Histograms[i:j] {
				fmt.Fprintf(bw, "%s %s\n", series(fname, h.Label, "", ""), promFloat(p.value(h)))
			}
		}
		i = j
	}
	return bw.Flush()
}

// promScan walks a sample line tracking quote state (with proper
// backslash-escape handling — a label value ending in an escaped
// backslash must not be read as an escaped quote) and brace depth,
// reporting the last space and the first '#' seen outside both. Either
// is -1 when absent.
func promScan(line string) (lastSpace, comment int) {
	lastSpace, comment = -1, -1
	depth := 0
	inQuote, esc := false, false
	for i := 0; i < len(line); i++ {
		ch := line[i]
		if inQuote {
			switch {
			case esc:
				esc = false
			case ch == '\\':
				esc = true
			case ch == '"':
				inQuote = false
			}
			continue
		}
		switch ch {
		case '"':
			inQuote = true
		case '{':
			depth++
		case '}':
			depth--
		case ' ':
			if depth == 0 {
				lastSpace = i
			}
		case '#':
			if depth == 0 {
				return lastSpace, i
			}
		}
	}
	return lastSpace, -1
}

// ParseProm reads Prometheus text exposition and returns every sample
// keyed by its series text exactly as WriteProm renders it (name plus
// sorted-as-written label set). It understands the subset WriteProm
// emits — including the OpenMetrics exemplar suffixes on bucket lines,
// which are stripped — enough for the round-trip checks and the
// obs-demo parse gate — and rejects malformed sample lines.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// An exemplar rides the sample line after a '#' outside quotes and
		// braces; the sample itself ends there.
		if _, comment := promScan(line); comment >= 0 {
			line = strings.TrimSpace(line[:comment])
		}
		// The series may contain spaces inside quoted label values; the
		// value is everything after the last space outside braces.
		cut, _ := promScan(line)
		if cut < 0 {
			return nil, fmt.Errorf("obs: prom line %d: no value: %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:cut])
		v, err := strconv.ParseFloat(strings.TrimSpace(line[cut+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: bad value: %q", lineNo, line)
		}
		if key == "" {
			return nil, fmt.Errorf("obs: prom line %d: empty series: %q", lineNo, line)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// PromSeries returns the series key WriteProm uses for a plain
// counter/gauge sample — test helpers compare snapshot values against
// ParseProm output through it.
func PromSeries(name, label string) string {
	return series(promName(name), label, "", "")
}
