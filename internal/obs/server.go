package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nxzip/internal/telemetry"
)

// server.go is the exposition surface: a plain net/http server over the
// closures the root package supplies. Endpoints:
//
//	GET /metrics   Prometheus text exposition of the merged snapshot
//	GET /snapshot  StatusDoc JSON (devices, totals, windows, events, SLO)
//	GET /healthz   200/503 by the SLO rule engine, HealthReport body
//	GET /events    live event stream, one JSON object per line
//
// The server owns a Sampler (started with the listener) so windowed
// rates exist even when nothing polls /snapshot.

// Options configures a Server. Snapshot is required; the rest degrade
// gracefully when absent (no Devices closure → empty device table, no
// Bus → /events answers 503, nil Rules → DefaultRules).
type Options struct {
	// Addr is the listen address (":8090", "127.0.0.1:0").
	Addr string
	// Name identifies the node in /snapshot (host name, "nxbench", …).
	Name string
	// Snapshot returns the current merged node snapshot.
	Snapshot func() *telemetry.Snapshot
	// Devices returns the per-device status table.
	Devices func() []DeviceStatus
	// Health returns the health scoreboard's healthy/total device counts.
	Health func() (healthy, total int)
	// Bus is the node's event bus (may be nil).
	Bus *Bus
	// Rules is the SLO policy for /healthz (nil → DefaultRules).
	Rules []Rule
	// SampleInterval is the window sampler period (<=0 → 1s).
	SampleInterval time.Duration
	// RingCap bounds the window ring (<=0 → default).
	RingCap int
	// Flight returns the flight recorder's status for /snapshot (nil →
	// no flight section).
	Flight func() *FlightStatus
	// Admission returns the admission gate's status for /snapshot (nil
	// closure or nil result → no admission section).
	Admission func() *AdmissionStatus
	// Tenants returns the admission gate's per-tenant quota table for
	// /tenants and /snapshot (nil → rows come from the accounting-plane
	// windows alone).
	Tenants func() []TenantQuota
	// Burn parameterises the multi-window burn-rate evaluator (zero →
	// DefaultBurnConfig). Evaluated on every watcher tick; state changes
	// publish EventBurnRate on Bus.
	Burn BurnConfig
	// Postmortems, when non-nil, is mounted at /debug/postmortems — the
	// flight recorder's bundle browser.
	Postmortems http.Handler
	// OnTransition fires whenever the SLO verdict changes, including the
	// first evaluation (a transition from unknown). The server checks on
	// every health evaluation — the periodic watcher tick, /healthz and
	// /snapshot — so a flip is noticed within one SampleInterval even
	// with no pollers. Called from those paths: keep it brief or hand
	// off. The flight recorder's postmortem trigger hangs off the
	// healthy→unhealthy edge.
	OnTransition func(healthy bool, rep HealthReport)
}

// Server serves the observability endpoints for one node.
type Server struct {
	opt     Options
	sampler *Sampler
	srv     *http.Server

	// healthState is the last SLO verdict: 0 unknown, 1 healthy,
	// 2 unhealthy. Transitions fire Options.OnTransition exactly once
	// per edge regardless of which evaluation path noticed it.
	healthState atomic.Int32
	stopWatch   chan struct{}
	stopOnce    sync.Once

	// burnMu guards the edge-trigger state and the latest evaluation of
	// the burn-rate alerts.
	burnMu     sync.Mutex
	burnFiring map[string]bool
	burnLast   []BurnAlert

	mu sync.Mutex
	ln net.Listener
}

// NewServer builds a server from opts without binding the listener.
func NewServer(opts Options) *Server {
	if opts.Rules == nil {
		opts.Rules = DefaultRules()
	}
	if opts.Name == "" {
		opts.Name = "nxzip"
	}
	s := &Server{opt: opts, sampler: NewSampler(opts.Snapshot, opts.RingCap),
		stopWatch: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/tenants", s.handleTenants)
	if opts.Postmortems != nil {
		mux.Handle("/debug/postmortems", opts.Postmortems)
		mux.Handle("/debug/postmortems/", opts.Postmortems)
	}
	s.srv = &http.Server{Handler: mux}
	return s
}

// Start binds the listener and begins serving and sampling. It returns
// once the listener is bound; Addr is valid afterwards.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opt.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.sampler.Tick() // establish the delta baseline
	s.sampler.Start(s.opt.SampleInterval)
	go s.srv.Serve(ln)
	go s.watchHealth()
	return nil
}

// watchHealth evaluates the SLO rules on the sample interval so health
// transitions (and the postmortem trigger behind them) fire even when
// nothing polls /healthz.
func (s *Server) watchHealth() {
	iv := s.opt.SampleInterval
	if iv <= 0 {
		iv = time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.stopWatch:
			return
		case <-t.C:
			s.noteHealth(Evaluate(s.inputs(s.opt.Snapshot()), s.opt.Rules))
			s.noteBurn(EvaluateBurn(s.sampler.Windows(), s.opt.Burn, time.Now()))
		}
	}
}

// noteBurn records the latest burn evaluation and publishes
// EventBurnRate on each state edge (firing and resolving) — once per
// (SLO, speed) pair, never per tick.
func (s *Server) noteBurn(alerts []BurnAlert) {
	s.burnMu.Lock()
	if s.burnFiring == nil {
		s.burnFiring = make(map[string]bool)
	}
	var edges []BurnAlert
	for _, a := range alerts {
		key := string(a.SLO) + "/" + a.Speed
		// A missing map entry reads as not-firing, so the initial
		// not-firing evaluation produces no resolve edge.
		if s.burnFiring[key] != a.Firing {
			s.burnFiring[key] = a.Firing
			edges = append(edges, a)
		}
	}
	s.burnLast = alerts
	s.burnMu.Unlock()
	for _, a := range edges {
		e := Event{Type: EventBurnRate, Detail: a.Detail()}
		if id, ok := parseTenantID(a.Tenant); ok {
			e.Tenant = id
		}
		s.opt.Bus.Publish(e)
	}
}

// BurnAlerts returns the latest burn-rate evaluation (nil before the
// first watcher tick).
func (s *Server) BurnAlerts() []BurnAlert {
	s.burnMu.Lock()
	defer s.burnMu.Unlock()
	out := make([]BurnAlert, len(s.burnLast))
	copy(out, s.burnLast)
	return out
}

// tenantRows assembles the joined tenant table for /tenants and
// /snapshot from the last window, the quota closure, and the latest
// burn alerts.
func (s *Server) tenantRows() ([]TenantDoc, Window, []BurnAlert) {
	var quotas []TenantQuota
	if s.opt.Tenants != nil {
		quotas = s.opt.Tenants()
	}
	last := s.sampler.Last()
	burn := s.BurnAlerts()
	return BuildTenants(last, quotas, burn), last, burn
}

// noteHealth records the verdict and fires OnTransition on each edge.
// Every evaluation path funnels through here, so /healthz pollers and
// the periodic watcher cannot double-fire one transition.
func (s *Server) noteHealth(rep HealthReport) {
	cur := int32(1)
	if !rep.Healthy {
		cur = 2
	}
	if s.healthState.Swap(cur) == cur {
		return
	}
	if s.opt.OnTransition != nil {
		s.opt.OnTransition(rep.Healthy, rep)
	}
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Sampler exposes the server's window sampler (for tests and for
// embedding its windows in reports).
func (s *Server) Sampler() *Sampler { return s.sampler }

// Close stops the sampler, the health watcher, and the listener.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stopWatch) })
	s.sampler.Stop()
	return s.srv.Close()
}

// inputs assembles the SLO evaluation inputs from the closures.
func (s *Server) inputs(snap *telemetry.Snapshot) Inputs {
	in := Inputs{Snap: snap, Windows: s.sampler.Windows()}
	if s.opt.Health != nil {
		in.HealthyDevices, in.Devices = s.opt.Health()
	}
	return in
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.opt.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, snap)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.opt.Snapshot()
	rep := Evaluate(s.inputs(snap), s.opt.Rules)
	s.noteHealth(rep)
	doc := StatusDoc{
		Name:          s.opt.Name,
		Time:          time.Now(),
		Healthy:       rep.Healthy,
		Health:        rep,
		Totals:        TotalsFromSnapshot(snap),
		Windows:       s.sampler.Windows(),
		Events:        s.opt.Bus.Tail(32),
		EventsDropped: s.opt.Bus.Dropped(),
		Metrics:       snap,
	}
	if s.opt.Devices != nil {
		doc.Devices = s.opt.Devices()
	}
	if s.opt.Flight != nil {
		doc.Flight = s.opt.Flight()
	}
	if s.opt.Admission != nil {
		doc.Admission = s.opt.Admission()
	}
	doc.Tenants, _, doc.Burn = s.tenantRows()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := Evaluate(s.inputs(s.opt.Snapshot()), s.opt.Rules)
	s.noteHealth(rep)
	w.Header().Set("Content-Type", "application/json")
	if !rep.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(rep)
}

// handleTenants serves the per-tenant accounting view: windowed rates
// from the tenant plane joined with admission quota standing and the
// burn-rate verdict.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	rows, last, burn := s.tenantRows()
	doc := TenantsDoc{
		Name: s.opt.Name, Time: time.Now(),
		Window: last, Tenants: rows, Burn: burn,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleEvents streams the bus as JSON lines until the client
// disconnects. The subscription buffer absorbs bursts; events beyond it
// are dropped (and counted) rather than stalling publishers.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opt.Bus == nil {
		http.Error(w, "no event bus attached", http.StatusServiceUnavailable)
		return
	}
	sub := s.opt.Bus.Subscribe(tailLen)
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
