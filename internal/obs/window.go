package obs

import (
	"sync"
	"time"

	"nxzip/internal/telemetry"
)

// window.go turns the registry's lifetime aggregates into rates over
// time: a Sampler polls the merged node snapshot on an interval, diffs
// consecutive snapshots (telemetry.Snapshot.Delta) and keeps a bounded
// ring of per-window samples, so throughput, request rate and queue-
// wait percentiles become time series a dashboard can plot.

// Window is one sampling interval's worth of activity, derived from the
// delta between two consecutive snapshots. Rates use the wall-clock
// window duration. QueueP50/P95/P99 are the queue-wait percentiles of
// the snapshot's bounded sample ring at window end (recent-biased, not
// strictly within-window); MeanQueueUS is exact within the window
// (delta sum over delta count).
type Window struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Deltas of the aggregate counters over the window.
	Requests     int64 `json:"requests"`
	InBytes      int64 `json:"in_bytes"`
	OutBytes     int64 `json:"out_bytes"`
	Fallbacks    int64 `json:"fallbacks"`
	Redispatches int64 `json:"redispatches"`
	Quarantines  int64 `json:"quarantines"`
	// Derived rates.
	ReqPerSec float64 `json:"req_per_sec"`
	GBs       float64 `json:"gbs"` // uncompressed-side bytes per second / 1e9
	// Queue-wait latency, µs.
	MeanQueueUS float64 `json:"mean_queue_us"`
	QueueP50    float64 `json:"queue_p50_us"`
	QueueP95    float64 `json:"queue_p95_us"`
	QueueP99    float64 `json:"queue_p99_us"`
}

// defaultRingCap bounds the window ring: at the server's default
// 1-second interval this keeps the most recent two minutes.
const defaultRingCap = 120

// Sampler computes Windows from a snapshot source. Drive it manually
// with Tick (tests, one-shot tools) or start the interval goroutine
// with Start/Stop. Safe for concurrent use.
type Sampler struct {
	snap func() *telemetry.Snapshot

	mu    sync.Mutex
	prev  *telemetry.Snapshot
	prevT time.Time
	ring  []Window
	cap   int

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over snap keeping up to ringCap windows
// (<=0 takes the default). The first Tick establishes the baseline
// snapshot and yields a window covering activity since then.
func NewSampler(snap func() *telemetry.Snapshot, ringCap int) *Sampler {
	if ringCap <= 0 {
		ringCap = defaultRingCap
	}
	return &Sampler{snap: snap, cap: ringCap}
}

// Tick takes one sample: snapshot, delta against the previous sample,
// append to the ring. It returns the new window.
func (s *Sampler) Tick() Window {
	cur := s.snap()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := cur.Delta(s.prev)
	w := Window{
		Start:        s.prevT,
		End:          now,
		Requests:     d.Counter("nx.requests", ""),
		InBytes:      d.Counter("nx.in_bytes", ""),
		OutBytes:     d.Counter("nx.out_bytes", ""),
		Fallbacks:    d.Counter("nxzip.fallbacks", ""),
		Redispatches: d.Counter("nxzip.redispatches", ""),
		Quarantines:  d.CounterSum("topology.quarantines"),
	}
	if s.prevT.IsZero() {
		w.Start = now
	}
	if dur := w.End.Sub(w.Start).Seconds(); dur > 0 {
		bytes := w.InBytes
		if w.OutBytes > bytes {
			bytes = w.OutBytes
		}
		w.ReqPerSec = float64(w.Requests) / dur
		w.GBs = float64(bytes) / dur / 1e9
	}
	if h, ok := d.Histogram("nx.queue_wait_us", ""); ok {
		w.MeanQueueUS = h.Mean
		w.QueueP50, w.QueueP95, w.QueueP99 = h.P50, h.P95, h.P99
	}
	s.prev, s.prevT = cur, now
	if len(s.ring) >= s.cap {
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:len(s.ring)-1]
	}
	s.ring = append(s.ring, w)
	return w
}

// Windows returns a copy of the ring, oldest first.
func (s *Sampler) Windows() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Window, len(s.ring))
	copy(out, s.ring)
	return out
}

// Last returns the most recent window (zero Window when none yet).
func (s *Sampler) Last() Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return Window{}
	}
	return s.ring[len(s.ring)-1]
}

// Start launches the interval goroutine (no-op if already running).
func (s *Sampler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stop halts the interval goroutine and waits for it to exit.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
