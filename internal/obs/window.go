package obs

import (
	"sort"
	"strings"
	"sync"
	"time"

	"nxzip/internal/telemetry"
)

// window.go turns the registry's lifetime aggregates into rates over
// time: a Sampler polls the merged node snapshot on an interval, diffs
// consecutive snapshots (telemetry.Snapshot.Delta) and keeps a bounded
// ring of per-window samples, so throughput, request rate and queue-
// wait percentiles become time series a dashboard can plot.

// Window is one sampling interval's worth of activity, derived from the
// delta between two consecutive snapshots. Rates use the wall-clock
// window duration. QueueP50/P95/P99 are the queue-wait percentiles of
// the snapshot's bounded sample ring at window end (recent-biased, not
// strictly within-window); MeanQueueUS is exact within the window
// (delta sum over delta count).
type Window struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Deltas of the aggregate counters over the window.
	Requests     int64 `json:"requests"`
	InBytes      int64 `json:"in_bytes"`
	OutBytes     int64 `json:"out_bytes"`
	Fallbacks    int64 `json:"fallbacks"`
	Redispatches int64 `json:"redispatches"`
	Quarantines  int64 `json:"quarantines"`
	// Admission-gate deltas (0 when no gate is enabled).
	Admitted int64 `json:"admitted,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	// Derived rates.
	ReqPerSec float64 `json:"req_per_sec"`
	GBs       float64 `json:"gbs"` // uncompressed-side bytes per second / 1e9
	// Queue-wait latency, µs.
	MeanQueueUS float64 `json:"mean_queue_us"`
	QueueP50    float64 `json:"queue_p50_us"`
	QueueP95    float64 `json:"queue_p95_us"`
	QueueP99    float64 `json:"queue_p99_us"`
	// QueueOver / QueueObs are the within-window queue-wait observations
	// above QueueBudgetUS and in total, from the delta bucket rows — the
	// numerator and denominator of the queue-wait burn SLI.
	QueueOver int64 `json:"queue_over,omitempty"`
	QueueObs  int64 `json:"queue_obs,omitempty"`
	// Tenants breaks the window down per tenant label, from the delta of
	// the tenant accounting plane's labeled rows. Sorted by label; nil
	// when no tenant series exist.
	Tenants []TenantWindow `json:"tenants,omitempty"`
}

// TenantWindow is one tenant's share of a sampling window.
type TenantWindow struct {
	// Tenant is the series label ("t5", or the shared overflow label).
	Tenant string `json:"tenant"`
	// Requests / Shed are the tenant's within-window completions and
	// admission-gate refusals (from the latency vec's outcome cells).
	Requests  int64   `json:"requests"`
	Shed      int64   `json:"shed"`
	ReqPerSec float64 `json:"req_per_sec"`
	// ShedRatio is Shed over the tenant's total presented work
	// (completions + sheds).
	ShedRatio float64 `json:"shed_ratio"`
	// Queue-wait percentiles (µs) of the tenant's sample ring at window
	// end (recent-biased, like the global percentiles).
	QueueP50 float64 `json:"queue_p50_us"`
	QueueP99 float64 `json:"queue_p99_us"`
	// QueueOver / QueueObs mirror the window-level burn SLI per tenant.
	QueueOver int64 `json:"queue_over,omitempty"`
	QueueObs  int64 `json:"queue_obs,omitempty"`
}

// defaultRingCap bounds the window ring: at the server's default
// 1-second interval this keeps the most recent two minutes.
const defaultRingCap = 120

// QueueBudgetUS is the queue-wait SLO threshold: a request whose queue
// wait exceeds this many microseconds counts against the latency error
// budget. It must sit exactly on a telemetry bucket bound so the
// violation count falls out of the delta bucket rows. Matches the
// MaxHistogramP99 objective in DefaultRules.
const QueueBudgetUS = 100_000

// Metric names of the root package's tenant accounting plane. Spelled
// here (rather than imported) because obs sits below the root package;
// the root-level acceptance tests pin both spellings.
const (
	tenantLatencyMetric   = "nxzip.tenant.latency_us"
	tenantQueueWaitMetric = "nxzip.tenant.queue_wait_us"
)

// queueBudgetIdx locates QueueBudgetUS in the fixed bucket ladder once.
var queueBudgetIdx = sort.SearchFloat64s(telemetry.BucketBounds(), QueueBudgetUS)

// overBudget returns how many of a histogram's (delta) observations
// exceeded QueueBudgetUS, from the cumulative bucket rows.
func overBudget(h telemetry.HistogramSnapshot) int64 {
	if queueBudgetIdx >= len(h.Buckets) {
		return 0
	}
	return h.Count - h.Buckets[queueBudgetIdx]
}

// tenantOf extracts the tenant segment of a tenant-plane row label:
// latency rows are "t<id>/<class>/<outcome>", queue-wait rows are bare
// "t<id>". Returns "" for labels that are not tenant rows (defensive —
// the two metric families only ever carry these shapes).
func tenantOf(label string) string {
	t := label
	if i := strings.IndexByte(label, '/'); i >= 0 {
		if strings.Count(label, "/") != 2 {
			return ""
		}
		t = label[:i]
	}
	if t == "" {
		return ""
	}
	if t[0] != 't' {
		return ""
	}
	for i := 1; i < len(t); i++ {
		if t[i] < '0' || t[i] > '9' {
			// The overflow label ("tover") is a valid tenant bucket too.
			if t[i] < 'a' || t[i] > 'z' {
				return ""
			}
		}
	}
	return t
}

// outcomeOf returns the outcome segment of a latency-row label, "" when
// absent.
func outcomeOf(label string) string {
	if i := strings.LastIndexByte(label, '/'); i >= 0 {
		return label[i+1:]
	}
	return ""
}

// tenantWindows derives the per-tenant breakdown of one window from the
// delta's tenant-plane rows. dur is the window length in seconds.
func tenantWindows(d *telemetry.Snapshot, dur float64) []TenantWindow {
	byTenant := make(map[string]*TenantWindow)
	get := func(label string) *TenantWindow {
		t := tenantOf(label)
		if t == "" {
			return nil
		}
		tw := byTenant[t]
		if tw == nil {
			tw = &TenantWindow{Tenant: t}
			byTenant[t] = tw
		}
		return tw
	}
	for _, h := range d.Histograms {
		switch h.Name {
		case tenantLatencyMetric:
			tw := get(h.Label)
			if tw == nil {
				continue
			}
			if outcomeOf(h.Label) == "shed" {
				tw.Shed += h.Count
			} else {
				tw.Requests += h.Count
			}
		case tenantQueueWaitMetric:
			tw := get(h.Label)
			if tw == nil {
				continue
			}
			tw.QueueObs += h.Count
			tw.QueueOver += overBudget(h)
			// The delta keeps the current snapshot's ring percentiles —
			// recent-biased, same contract as the window-level percentiles.
			tw.QueueP50, tw.QueueP99 = h.P50, h.P99
		}
	}
	if len(byTenant) == 0 {
		return nil
	}
	out := make([]TenantWindow, 0, len(byTenant))
	for _, tw := range byTenant {
		if total := tw.Requests + tw.Shed; total > 0 {
			tw.ShedRatio = float64(tw.Shed) / float64(total)
		}
		if dur > 0 {
			tw.ReqPerSec = float64(tw.Requests) / dur
		}
		out = append(out, *tw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Sampler computes Windows from a snapshot source. Drive it manually
// with Tick (tests, one-shot tools) or start the interval goroutine
// with Start/Stop. Safe for concurrent use.
type Sampler struct {
	snap func() *telemetry.Snapshot

	mu    sync.Mutex
	prev  *telemetry.Snapshot
	prevT time.Time
	ring  []Window
	cap   int

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over snap keeping up to ringCap windows
// (<=0 takes the default). The first Tick establishes the baseline
// snapshot and yields a window covering activity since then.
func NewSampler(snap func() *telemetry.Snapshot, ringCap int) *Sampler {
	if ringCap <= 0 {
		ringCap = defaultRingCap
	}
	return &Sampler{snap: snap, cap: ringCap}
}

// Tick takes one sample: snapshot, delta against the previous sample,
// append to the ring. It returns the new window.
func (s *Sampler) Tick() Window {
	cur := s.snap()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := cur.Delta(s.prev)
	w := Window{
		Start:        s.prevT,
		End:          now,
		Requests:     d.Counter("nx.requests", ""),
		InBytes:      d.Counter("nx.in_bytes", ""),
		OutBytes:     d.Counter("nx.out_bytes", ""),
		Fallbacks:    d.Counter("nxzip.fallbacks", ""),
		Redispatches: d.Counter("nxzip.redispatches", ""),
		Quarantines:  d.CounterSum("topology.quarantines"),
		Admitted:     d.CounterSum("admission.admitted"),
		Shed:         d.CounterSum("admission.shed"),
	}
	if s.prevT.IsZero() {
		w.Start = now
	}
	dur := w.End.Sub(w.Start).Seconds()
	if dur > 0 {
		bytes := w.InBytes
		if w.OutBytes > bytes {
			bytes = w.OutBytes
		}
		w.ReqPerSec = float64(w.Requests) / dur
		w.GBs = float64(bytes) / dur / 1e9
	}
	if h, ok := d.Histogram("nx.queue_wait_us", ""); ok {
		w.MeanQueueUS = h.Mean
		w.QueueP50, w.QueueP95, w.QueueP99 = h.P50, h.P95, h.P99
		w.QueueObs = h.Count
		w.QueueOver = overBudget(h)
	}
	w.Tenants = tenantWindows(d, dur)
	s.prev, s.prevT = cur, now
	if len(s.ring) >= s.cap {
		copy(s.ring, s.ring[1:])
		s.ring = s.ring[:len(s.ring)-1]
	}
	s.ring = append(s.ring, w)
	return w
}

// Windows returns a copy of the ring, oldest first.
func (s *Sampler) Windows() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Window, len(s.ring))
	copy(out, s.ring)
	return out
}

// Last returns the most recent window (zero Window when none yet).
func (s *Sampler) Last() Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return Window{}
	}
	return s.ring[len(s.ring)-1]
}

// Start launches the interval goroutine (no-op if already running).
func (s *Sampler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stop halts the interval goroutine and waits for it to exit.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
