package flightrec

// postmortem.go turns the recorder's in-memory history into a durable
// JSONL bundle at the moment the node goes unhealthy. The trigger is
// wired to the SLO engine's healthy→unhealthy transition (and is also
// callable directly); each bundle is written atomically (temp file +
// rename) into a bounded directory, so a flapping node cannot fill the
// disk and a half-written bundle is never visible.
//
// Bundle format: one JSON object per line, each tagged with "kind":
//
//	meta      trigger time, reason, bundle ordinal, digest seq
//	config    the node configuration
//	health    the SLO report at trigger time
//	device    one line per device status
//	digest    one line per recent request digest (oldest first)
//	span      one line per retained span (full lifecycle stages)
//	event     one line per event-bus tail entry
//	snapshot  the merged metrics snapshot
//
// Everything is snapshotted under the recorder lock into memory first,
// then encoded and written with no locks held, so a trigger never
// stalls the request path on disk I/O.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nxzip/internal/obs"
	"nxzip/internal/telemetry"
)

// bundlePrefix names postmortem files: <prefix><unix-nanos>.jsonl.
// Lexicographic order over the fixed-width timestamp is age order.
const bundlePrefix = "postmortem-"

type pmLine struct {
	Kind string `json:"kind"`

	// meta
	Time    time.Time `json:"time,omitempty"`
	Reason  string    `json:"reason,omitempty"`
	Ordinal int64     `json:"ordinal,omitempty"`
	Seq     uint64    `json:"seq,omitempty"`

	// payload sections (one non-nil per line)
	Config   any                 `json:"config,omitempty"`
	Health   any                 `json:"health,omitempty"`
	Device   *obs.DeviceStatus   `json:"device,omitempty"`
	Digest   *telemetry.Digest   `json:"digest,omitempty"`
	Span     *telemetry.Span     `json:"span,omitempty"`
	Event    *obs.Event          `json:"event,omitempty"`
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// TriggerPostmortem captures the recorder's state into a bundle. The
// returned path is "" when no Dir is configured (the trigger still
// counts and timestamps). Concurrent triggers serialize; each produces
// its own bundle.
func (r *Recorder) TriggerPostmortem(reason string) (string, error) {
	now := time.Now()
	ordinal := r.pmCount.Add(1)
	r.pmMu.Lock()
	r.lastAt, r.lastReason = now, reason
	r.pmMu.Unlock()

	if r.opt.Dir == "" {
		return "", nil
	}

	// Snapshot everything into memory first. Retained spans must be
	// serialized under the recorder lock — eviction recycles them.
	var lines []pmLine
	lines = append(lines, pmLine{Kind: "meta", Time: now, Reason: reason, Ordinal: ordinal, Seq: r.ring.Seq()})

	r.mu.Lock()
	srcs := r.srcs
	r.mu.Unlock()
	if srcs.Config != nil {
		lines = append(lines, pmLine{Kind: "config", Config: srcs.Config()})
	}
	if srcs.Health != nil {
		lines = append(lines, pmLine{Kind: "health", Health: srcs.Health()})
	}
	if srcs.Devices != nil {
		for _, d := range srcs.Devices() {
			d := d
			lines = append(lines, pmLine{Kind: "device", Device: &d})
		}
	}
	for _, d := range r.ring.Snapshot(0) {
		d := d
		lines = append(lines, pmLine{Kind: "digest", Digest: &d})
	}
	// Serialize retained spans to JSON inside the lock, park the raw
	// bytes, and emit them after: the span pointers are only stable
	// while held.
	var spanRaw []json.RawMessage
	r.mu.Lock()
	held := int(r.retNext)
	if held > len(r.ret) {
		held = len(r.ret)
	}
	for i := 0; i < held; i++ {
		idx := (r.retNext - uint64(held) + uint64(i)) % uint64(len(r.ret))
		e := &r.ret[idx]
		if !e.used {
			continue
		}
		for _, s := range e.spans {
			if raw, err := json.Marshal(s); err == nil {
				spanRaw = append(spanRaw, raw)
			}
		}
	}
	r.mu.Unlock()
	if srcs.Events != nil {
		for _, e := range srcs.Events(256) {
			e := e
			lines = append(lines, pmLine{Kind: "event", Event: &e})
		}
	}
	if srcs.Snapshot != nil {
		lines = append(lines, pmLine{Kind: "snapshot", Snapshot: srcs.Snapshot()})
	}

	if err := os.MkdirAll(r.opt.Dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s%020d.jsonl", bundlePrefix, now.UnixNano())
	path := filepath.Join(r.opt.Dir, name)
	tmp, err := os.CreateTemp(r.opt.Dir, ".pm-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	werr := func() error {
		for _, ln := range lines {
			if ln.Kind == "event" || ln.Kind == "snapshot" {
				continue // events and snapshot go after spans, below
			}
			if err := enc.Encode(ln); err != nil {
				return err
			}
		}
		for _, raw := range spanRaw {
			if _, err := fmt.Fprintf(w, `{"kind":"span","span":%s}`+"\n", raw); err != nil {
				return err
			}
		}
		for _, ln := range lines {
			if ln.Kind != "event" && ln.Kind != "snapshot" {
				continue
			}
			if err := enc.Encode(ln); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	r.pruneBundles()
	return path, nil
}

// pruneBundles deletes the oldest bundles beyond MaxBundles.
func (r *Recorder) pruneBundles() {
	names := r.bundleNames()
	for len(names) > r.opt.MaxBundles {
		os.Remove(filepath.Join(r.opt.Dir, names[0]))
		names = names[1:]
	}
}

// bundleNames lists bundle file names, oldest first.
func (r *Recorder) bundleNames() []string {
	ents, err := os.ReadDir(r.opt.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), bundlePrefix) && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Bundles lists postmortem bundle paths, oldest first.
func (r *Recorder) Bundles() []string {
	names := r.bundleNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(r.opt.Dir, n)
	}
	return out
}

// PostmortemCount returns how many times the trigger fired.
func (r *Recorder) PostmortemCount() int64 { return r.pmCount.Load() }

// LastTrigger returns when and why the trigger last fired (zero time
// when it never has).
func (r *Recorder) LastTrigger() (time.Time, string) {
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return r.lastAt, r.lastReason
}

// Handler serves the postmortem directory: GET <mount> lists bundles
// as JSON (newest first); GET <mount>/<name> streams one bundle. The
// handler is mounted by obs.Server at /debug/postmortems.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/postmortems"), "/")
		if name == "" {
			names := r.bundleNames()
			// Newest first: operators want the latest incident on top.
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			type entry struct {
				Name string `json:"name"`
				Size int64  `json:"size"`
			}
			out := struct {
				Count       int64     `json:"count"`
				LastTrigger time.Time `json:"last_trigger,omitempty"`
				LastReason  string    `json:"last_reason,omitempty"`
				Bundles     []entry   `json:"bundles"`
			}{Count: r.pmCount.Load(), Bundles: []entry{}}
			out.LastTrigger, out.LastReason = r.LastTrigger()
			for _, n := range names {
				e := entry{Name: n}
				if fi, err := os.Stat(filepath.Join(r.opt.Dir, n)); err == nil {
					e.Size = fi.Size()
				}
				out.Bundles = append(out.Bundles, e)
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(out)
			return
		}
		if strings.Contains(name, "/") || !strings.HasPrefix(name, bundlePrefix) {
			http.Error(w, "no such bundle", http.StatusNotFound)
			return
		}
		f, err := os.Open(filepath.Join(r.opt.Dir, name))
		if err != nil {
			http.Error(w, "no such bundle", http.StatusNotFound)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := f.WriteTo(w); err != nil {
			return
		}
	})
}
