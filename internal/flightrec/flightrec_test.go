package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nxzip/internal/obs"
	"nxzip/internal/telemetry"
)

// okDigest builds a clean first-try digest for request req.
func okDigest(req uint64, totalUS float64) *telemetry.Digest {
	return &telemetry.Digest{
		Req: req, Op: "compress", Device: "dev0",
		InBytes: 64 << 10, OutBytes: 20 << 10,
		QueueUS: 2, TotalUS: totalUS,
		Attempts: 1, Outcome: telemetry.OutcomeOK,
	}
}

func TestRetentionPredicates(t *testing.T) {
	r := New(Options{})
	emitSpan := func(req uint64) {
		s := r.Tracer().Start("compress", 1, 0)
		s.ReqID = req
		r.Tracer().Finish(s)
	}

	// Clean first-try request: digest recorded, spans recycled.
	emitSpan(1)
	r.Complete(okDigest(1, 100))
	if got := len(r.RetainedRequests()); got != 0 {
		t.Fatalf("clean request retained: %d entries", got)
	}

	// Errored request: retained with its span.
	emitSpan(2)
	d := okDigest(2, 100)
	d.Outcome = telemetry.OutcomeError
	r.Complete(d)

	// Degraded request: retained.
	emitSpan(3)
	d = okDigest(3, 100)
	d.Outcome = telemetry.OutcomeDegraded
	r.Complete(d)

	// Re-dispatched request (failover): retained even though it ended OK.
	emitSpan(4)
	d = okDigest(4, 100)
	d.Attempts = 2
	r.Complete(d)

	ret := r.RetainedRequests()
	if len(ret) != 3 {
		t.Fatalf("retained %d requests, want 3", len(ret))
	}
	for i, want := range []uint64{2, 3, 4} {
		if ret[i].Digest.Req != want {
			t.Errorf("retained[%d].Req = %d, want %d", i, ret[i].Digest.Req, want)
		}
		if len(ret[i].Spans) != 1 || ret[i].Spans[0].ReqID != want {
			t.Errorf("retained[%d] spans not chained to req %d", i, want)
		}
	}
	if r.Seq() != 4 {
		t.Fatalf("Seq = %d, want 4", r.Seq())
	}
}

func TestSlowPredicateGatedByMinSamples(t *testing.T) {
	r := New(Options{MinSamples: 16, Window: 64})
	// Before MinSamples, even a wild outlier is not "slow".
	d := okDigest(1, 1e6)
	r.Complete(d)
	if len(r.RetainedRequests()) != 0 {
		t.Fatal("outlier retained before MinSamples")
	}
	// Feed a uniform baseline past MinSamples and the first recalc.
	for i := uint64(2); i <= 70; i++ {
		r.Complete(okDigest(i, 100))
	}
	p99t, _ := r.P99s()
	if p99t <= 0 {
		t.Fatalf("p99 not established: %v", p99t)
	}
	before := len(r.RetainedRequests())
	r.Complete(okDigest(1000, 50*p99t))
	if len(r.RetainedRequests()) != before+1 {
		t.Fatal("slow outlier not retained after MinSamples")
	}
	r.Complete(okDigest(1001, p99t/2))
	if len(r.RetainedRequests()) != before+1 {
		t.Fatal("fast request wrongly retained")
	}
}

// TestSamplerDeterminism feeds the identical completion sequence into
// two independent recorders and requires identical retention decisions
// and identical rolling p99s — the sampler must be a pure function of
// its input stream.
func TestSamplerDeterminism(t *testing.T) {
	run := func() ([]uint64, float64, float64) {
		r := New(Options{MinSamples: 32, Window: 128})
		for i := uint64(1); i <= 400; i++ {
			d := okDigest(i, float64(50+(i*37)%200)) // deterministic sawtooth
			if i%97 == 0 {
				d.Attempts = 2
			}
			if i%131 == 0 {
				d.Outcome = telemetry.OutcomeDegraded
			}
			r.Complete(d)
		}
		var kept []uint64
		for _, e := range r.RetainedRequests() {
			kept = append(kept, e.Digest.Req)
		}
		p99t, p99q := r.P99s()
		return kept, p99t, p99q
	}
	k1, t1, q1 := run()
	k2, t2, q2 := run()
	if t1 != t2 || q1 != q2 {
		t.Fatalf("p99s diverged: (%v,%v) vs (%v,%v)", t1, q1, t2, q2)
	}
	if len(k1) == 0 || len(k1) != len(k2) {
		t.Fatalf("retention diverged: %d vs %d requests", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("retention diverged at %d: req %d vs %d", i, k1[i], k2[i])
		}
	}
}

// TestDigestRingMonotonicity hammers Complete from many goroutines and
// checks the ring's sequence numbers come out strictly increasing and
// dense — the -race soak for the digest path.
func TestDigestRingMonotonicity(t *testing.T) {
	r := New(Options{DigestRing: 256})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Complete(okDigest(uint64(w*perWorker+i+1), 100))
			}
		}(w)
	}
	wg.Wait()
	if r.Seq() != workers*perWorker {
		t.Fatalf("Seq = %d, want %d", r.Seq(), workers*perWorker)
	}
	held := r.Digests(0)
	if len(held) != 256 {
		t.Fatalf("ring holds %d, want 256", len(held))
	}
	for i := 1; i < len(held); i++ {
		if held[i].Seq != held[i-1].Seq+1 {
			t.Fatalf("ring seq not dense at %d: %d then %d", i, held[i-1].Seq, held[i].Seq)
		}
	}
	if held[len(held)-1].Seq != workers*perWorker {
		t.Fatalf("newest seq = %d, want %d", held[len(held)-1].Seq, workers*perWorker)
	}
}

// TestPendingCollision puts two live requests in the same pending slot:
// the newer claims it; the evicted one still retains digest-only.
func TestPendingCollision(t *testing.T) {
	r := New(Options{Pending: 4})
	tr := r.Tracer()
	emit := func(req uint64) {
		s := tr.Start("compress", 1, 0)
		s.ReqID = req
		tr.Finish(s)
	}
	emit(3)
	emit(7) // 7 % 4 == 3 % 4: evicts request 3's span
	d := okDigest(3, 100)
	d.Outcome = telemetry.OutcomeError
	r.Complete(d)
	d = okDigest(7, 100)
	d.Outcome = telemetry.OutcomeError
	r.Complete(d)

	ret := r.RetainedRequests()
	if len(ret) != 2 {
		t.Fatalf("retained %d, want 2", len(ret))
	}
	if len(ret[0].Spans) != 0 {
		t.Errorf("evicted request 3 kept %d spans, want digest-only", len(ret[0].Spans))
	}
	if len(ret[1].Spans) != 1 {
		t.Errorf("request 7 kept %d spans, want 1", len(ret[1].Spans))
	}
}

func testSources(reg *telemetry.Registry) Sources {
	return Sources{
		Snapshot: func() *telemetry.Snapshot { return reg.Snapshot() },
		Devices: func() []obs.DeviceStatus {
			return []obs.DeviceStatus{{Label: "dev0", Healthy: false}, {Label: "dev1", Healthy: true}}
		},
		Events: func(n int) []obs.Event {
			return []obs.Event{{Type: obs.EventFailover, Device: "dev0", Req: 9, Detail: "test"}}
		},
		Config: func() any { return map[string]int{"devices": 2} },
		Health: func() any { return map[string]bool{"healthy": false} },
	}
}

// TestPostmortemBundleCompleteness triggers a bundle and checks every
// section kind appears and parses, and that the retained request's
// span made it in with its ReqID intact.
func TestPostmortemBundleCompleteness(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Dir: dir})
	reg := telemetry.NewRegistry()
	reg.Counter("nx.requests").Add(5)
	r.SetSources(testSources(reg))

	tr := r.Tracer()
	s := tr.Start("compress", 1, 0)
	s.ReqID = 9
	s.Hop = 1
	tr.Finish(s)
	d := okDigest(9, 100)
	d.Attempts = 2
	r.Complete(d)
	r.Complete(okDigest(10, 100))

	path, err := r.TriggerPostmortem("test trigger")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	kinds := map[string]int{}
	var spanReq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ln struct {
			Kind   string `json:"kind"`
			Reason string `json:"reason"`
			Seq    uint64 `json:"seq"`
			Span   *struct {
				Req uint64 `json:"req"`
				Hop int    `json:"hop"`
			} `json:"span"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bundle line not JSON: %v", err)
		}
		kinds[ln.Kind]++
		if ln.Kind == "meta" {
			if ln.Reason != "test trigger" || ln.Seq != 2 {
				t.Errorf("meta = %+v", ln)
			}
		}
		if ln.Kind == "span" {
			spanReq = ln.Span.Req
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"meta", "config", "health", "device", "digest", "span", "event", "snapshot"} {
		if kinds[k] == 0 {
			t.Errorf("bundle missing kind %q (have %v)", k, kinds)
		}
	}
	if kinds["digest"] != 2 || kinds["device"] != 2 {
		t.Errorf("counts: %v", kinds)
	}
	if spanReq != 9 {
		t.Errorf("retained span req = %d, want 9", spanReq)
	}
	if n := r.PostmortemCount(); n != 1 {
		t.Errorf("PostmortemCount = %d", n)
	}
	if _, reason := r.LastTrigger(); reason != "test trigger" {
		t.Errorf("LastTrigger reason = %q", reason)
	}
}

// TestPostmortemDirBounded triggers more bundles than MaxBundles and
// checks the oldest are pruned.
func TestPostmortemDirBounded(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Dir: dir, MaxBundles: 2})
	var last string
	for i := 0; i < 5; i++ {
		p, err := r.TriggerPostmortem(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		last = p
		time.Sleep(time.Millisecond) // distinct UnixNano names
	}
	got := r.Bundles()
	if len(got) != 2 {
		t.Fatalf("dir holds %d bundles, want 2: %v", len(got), got)
	}
	if got[len(got)-1] != last {
		t.Fatalf("newest bundle pruned: kept %v, last written %s", got, last)
	}
}

func TestTriggerWithoutDir(t *testing.T) {
	r := New(Options{})
	path, err := r.TriggerPostmortem("memory only")
	if err != nil || path != "" {
		t.Fatalf("TriggerPostmortem() = (%q, %v), want (\"\", nil)", path, err)
	}
	if r.PostmortemCount() != 1 {
		t.Fatal("memory-only trigger did not count")
	}
}

// TestHandler exercises the /debug/postmortems listing and bundle fetch,
// including traversal rejection.
func TestHandler(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Dir: dir})
	r.Complete(okDigest(1, 100))
	if _, err := r.TriggerPostmortem("handler test"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/postmortems")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Count   int64 `json:"count"`
		Bundles []struct {
			Name string `json:"name"`
			Size int64  `json:"size"`
		} `json:"bundles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if listing.Count != 1 || len(listing.Bundles) != 1 || listing.Bundles[0].Size <= 0 {
		t.Fatalf("listing = %+v", listing)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/postmortems/" + listing.Bundles[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	body := bufio.NewScanner(resp.Body)
	var lines int
	for body.Scan() {
		lines++
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || lines < 2 {
		t.Fatalf("bundle fetch: status %d, %d lines", resp.StatusCode, lines)
	}

	for _, bad := range []string{"/debug/postmortems/../secret", "/debug/postmortems/nope.jsonl"} {
		resp, err := srv.Client().Get(srv.URL + strings.ReplaceAll(bad, "..", "%2e%2e"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s: status %d, want 404", bad, resp.StatusCode)
		}
	}

	// Directory contents stay confined to bundle files.
	if err := os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = srv.Client().Get(srv.URL + "/debug/postmortems/unrelated.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("non-bundle file served: status %d", resp.StatusCode)
	}
}

// TestCloseStopsIntake verifies a closed recorder drops work instead of
// corrupting state.
func TestCloseStopsIntake(t *testing.T) {
	r := New(Options{})
	r.Complete(okDigest(1, 100))
	r.Close()
	if seq := r.Complete(okDigest(2, 100)); seq != 0 {
		t.Fatalf("Complete after Close returned seq %d", seq)
	}
	if r.Seq() != 1 {
		t.Fatalf("Seq moved after Close: %d", r.Seq())
	}
}
