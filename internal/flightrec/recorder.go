// Package flightrec is the always-on flight recorder: bounded-overhead
// request history that is already in memory when something goes wrong.
//
// Two tiers, one per cost class:
//
//   - A digest ring records a fixed-size Digest for EVERY root-level
//     request — identity, size, device, queue-wait, latency, attempts,
//     outcome — at the cost of one locked struct copy. This is the index
//     a postmortem greps first.
//   - A tail-based sampler retains full telemetry spans only for the
//     interesting requests: errored, degraded (software fallback),
//     re-dispatched (failover), or slow relative to the rolling p99 of
//     queue-wait or total latency. Everything else is recycled back to
//     the pooled tracer, so the steady-state request path stays
//     allocation-free with the recorder attached.
//
// The recorder is a telemetry.Sink: Finish(span) parks the span in a
// fixed pending table keyed by RequestID; the root API's Complete(digest)
// call decides retention once the request's final outcome is known —
// that is what "tail-based" means: the keep/drop decision happens at the
// tail of the request, not at its head.
//
// Postmortems (postmortem.go) snapshot the rings plus node state into a
// JSONL bundle when the SLO engine flips unhealthy, bounding the window
// between "it broke" and "we captured why".
package flightrec

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nxzip/internal/obs"
	"nxzip/internal/telemetry"
)

// Options sizes the recorder. Every bound has a default chosen so the
// whole recorder is a few hundred KiB; all state is allocated up front.
type Options struct {
	// DigestRing is how many per-request digests the ring holds
	// (<=0 → 4096).
	DigestRing int
	// Retained bounds the full spans kept by the tail sampler
	// (<=0 → 64 requests; each request may hold several spans).
	Retained int
	// Pending sizes the table of in-flight requests awaiting their
	// retention decision (<=0 → 512 slots).
	Pending int
	// SlowFactor scales the rolling p99 for the slow-request predicate:
	// a request is slow when total latency or queue wait exceeds
	// SlowFactor × the respective p99 (<=0 → 1.0).
	SlowFactor float64
	// MinSamples gates the slow predicate until the latency window has
	// seen this many requests (<=0 → 128).
	MinSamples int
	// Window is the rolling latency window length (<=0 → 512).
	Window int
	// Dir is where postmortem bundles land ("" disables disk bundles;
	// TriggerPostmortem still counts and reports).
	Dir string
	// MaxBundles bounds the postmortem directory; the oldest bundle is
	// deleted to admit a new one (<=0 → 8).
	MaxBundles int
}

func (o Options) withDefaults() Options {
	if o.DigestRing <= 0 {
		o.DigestRing = 4096
	}
	if o.Retained <= 0 {
		o.Retained = 64
	}
	if o.Pending <= 0 {
		o.Pending = 512
	}
	if o.SlowFactor <= 0 {
		o.SlowFactor = 1.0
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 128
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.MaxBundles <= 0 {
		o.MaxBundles = 8
	}
	return o
}

// pendSpanCap bounds the spans parked per in-flight request: the
// original dispatch plus failover hops and a fault resubmit all fit; a
// pathological request beyond it drops (and recycles) the extras.
const pendSpanCap = 8

// recalcEvery is how many completions pass between p99 recomputations —
// the sort cost is amortized so Complete stays O(1) in the common case.
const recalcEvery = 64

type pendSlot struct {
	req   uint64
	spans []*telemetry.Span // preallocated, cap pendSpanCap
}

// Retained is one tail-sampled request: its digest plus every span the
// request produced (original dispatch, failover hops, fault resubmits).
type Retained struct {
	Digest telemetry.Digest
	Spans  []*telemetry.Span
}

type retEntry struct {
	used  bool
	d     telemetry.Digest
	spans []*telemetry.Span // preallocated, cap pendSpanCap
}

// Sources are the node-state closures a postmortem bundle snapshots.
// All fields are optional; absent sources simply leave their section out
// of the bundle. Set once at wiring time, before traffic.
type Sources struct {
	// Snapshot returns the node's merged metrics snapshot.
	Snapshot func() *telemetry.Snapshot
	// Devices returns the per-device status table.
	Devices func() []obs.DeviceStatus
	// Events returns up to n recent bus events, oldest first.
	Events func(n int) []obs.Event
	// Config returns the node configuration (any JSON-encodable value).
	Config func() any
	// Health returns the SLO report that triggered (or would trigger)
	// the postmortem.
	Health func() any
}

// Recorder is the flight recorder. It implements telemetry.Sink; wire
// it with NewPooledTracer(rec) (or rec.Tracer()) so consumed spans
// recycle. All methods are safe for concurrent use.
type Recorder struct {
	opt  Options
	ring *telemetry.DigestRing

	tracer atomic.Pointer[telemetry.Tracer]

	mu      sync.Mutex
	pend    []pendSlot
	ret     []retEntry
	retNext uint64 // total retentions ever; ret[(retNext-1) % len] newest

	// Rolling latency windows in microseconds, plus the amortized p99s.
	totWin    []float64
	queueWin  []float64
	winNext   uint64
	scratch   []float64
	p99Tot    float64
	p99Queue  float64
	sinceCalc int

	srcs Sources

	closed atomic.Bool

	// Postmortem state (postmortem.go).
	pmCount    atomic.Int64
	pmMu       sync.Mutex
	lastAt     time.Time
	lastReason string
}

// New builds a recorder with all state preallocated.
func New(opts Options) *Recorder {
	o := opts.withDefaults()
	r := &Recorder{
		opt:      o,
		ring:     telemetry.NewDigestRing(o.DigestRing),
		pend:     make([]pendSlot, o.Pending),
		ret:      make([]retEntry, o.Retained),
		totWin:   make([]float64, o.Window),
		queueWin: make([]float64, o.Window),
		scratch:  make([]float64, o.Window),
	}
	for i := range r.pend {
		r.pend[i].spans = make([]*telemetry.Span, 0, pendSpanCap)
	}
	for i := range r.ret {
		r.ret[i].spans = make([]*telemetry.Span, 0, pendSpanCap)
	}
	return r
}

// SetSources installs the node-state closures postmortem bundles read.
func (r *Recorder) SetSources(s Sources) {
	r.mu.Lock()
	r.srcs = s
	r.mu.Unlock()
}

// Tracer returns the recorder's pooled tracer, creating it on first
// call. Spans it hands out flow back through Emit and recycle.
func (r *Recorder) Tracer() *telemetry.Tracer {
	if t := r.tracer.Load(); t != nil {
		return t
	}
	t := telemetry.NewPooledTracer(r)
	if r.tracer.CompareAndSwap(nil, t) {
		return t
	}
	return r.tracer.Load()
}

// Emit parks a finished span until its request's Complete call decides
// retention. Spans without a RequestID cannot be correlated and recycle
// immediately. Implements telemetry.Sink.
func (r *Recorder) Emit(s *telemetry.Span) {
	if s == nil || r.closed.Load() {
		return
	}
	if s.ReqID == 0 {
		r.recycle(s)
		return
	}
	r.mu.Lock()
	slot := &r.pend[s.ReqID%uint64(len(r.pend))]
	if slot.req != s.ReqID {
		// Slot collision or first span of a new request: evict whatever
		// was parked (its request will simply retain digest-only if it
		// turns out interesting) and claim the slot.
		for _, old := range slot.spans {
			r.recycle(old)
		}
		slot.spans = slot.spans[:0]
		slot.req = s.ReqID
	}
	if len(slot.spans) < cap(slot.spans) {
		slot.spans = append(slot.spans, s)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.recycle(s)
}

// Close marks the recorder closed; further Emits recycle immediately.
// Implements telemetry.Sink.
func (r *Recorder) Close() error {
	r.closed.Store(true)
	return nil
}

func (r *Recorder) recycle(s *telemetry.Span) {
	r.tracer.Load().Recycle(s) // nil-safe: no tracer yet → drop to GC
}

// Complete records the request's digest (stamping its Seq) and makes
// the tail-sampling decision for any spans parked under d.Req: retain
// the whole request history when it erred, degraded, re-dispatched, or
// ran slow relative to the rolling p99s; recycle otherwise. This is the
// one call the root API makes per request after the outcome is known.
func (r *Recorder) Complete(d *telemetry.Digest) uint64 {
	if r.closed.Load() {
		return 0
	}
	seq := r.ring.Record(d)
	r.mu.Lock()
	i := r.winNext % uint64(len(r.totWin))
	r.totWin[i] = d.TotalUS
	r.queueWin[i] = d.QueueUS
	r.winNext++
	r.sinceCalc++
	if r.sinceCalc >= recalcEvery {
		r.sinceCalc = 0
		r.recalcLocked()
	}
	retain := d.Outcome != telemetry.OutcomeOK || d.Attempts > 1 || r.slowLocked(d)
	slot := &r.pend[d.Req%uint64(len(r.pend))]
	if slot.req == d.Req && d.Req != 0 {
		if retain {
			r.retainLocked(d, slot.spans)
		} else {
			for _, s := range slot.spans {
				r.recycleLocked(s)
			}
		}
		slot.req = 0
		slot.spans = slot.spans[:0]
	} else if retain {
		r.retainLocked(d, nil)
	}
	r.mu.Unlock()
	return seq
}

// recycleLocked recycles under r.mu (Recycle takes no recorder locks,
// so there is no inversion).
func (r *Recorder) recycleLocked(s *telemetry.Span) { r.recycle(s) }

// retainLocked moves the request into the retained ring, evicting (and
// recycling) the oldest retained request when full.
func (r *Recorder) retainLocked(d *telemetry.Digest, spans []*telemetry.Span) {
	e := &r.ret[r.retNext%uint64(len(r.ret))]
	r.retNext++
	if e.used {
		for _, old := range e.spans {
			r.recycleLocked(old)
		}
	}
	e.used = true
	e.d = *d
	e.spans = append(e.spans[:0], spans...)
}

// recalcLocked recomputes the rolling p99s from the latency windows.
func (r *Recorder) recalcLocked() {
	n := int(r.winNext)
	if n > len(r.totWin) {
		n = len(r.totWin)
	}
	if n == 0 {
		return
	}
	r.p99Tot = p99Of(r.scratch[:n], r.totWin[:n])
	r.p99Queue = p99Of(r.scratch[:n], r.queueWin[:n])
}

func p99Of(scratch, win []float64) float64 {
	copy(scratch, win)
	slices.Sort(scratch)
	return scratch[(len(scratch)*99)/100]
}

func (r *Recorder) slowLocked(d *telemetry.Digest) bool {
	if r.winNext < uint64(r.opt.MinSamples) {
		return false
	}
	return d.TotalUS > r.opt.SlowFactor*r.p99Tot ||
		d.QueueUS > r.opt.SlowFactor*r.p99Queue
}

// Digests returns up to n recent digests, oldest first (n<=0: all held).
func (r *Recorder) Digests(n int) []telemetry.Digest { return r.ring.Snapshot(n) }

// Slowest returns up to n held digests by descending total latency.
func (r *Recorder) Slowest(n int) []telemetry.Digest { return r.ring.Slowest(n) }

// Seq returns the total number of requests digested.
func (r *Recorder) Seq() uint64 { return r.ring.Seq() }

// P99s returns the recorder's rolling p99 of total latency and queue
// wait, in microseconds (zero until MinSamples requests complete and
// the first recalculation runs).
func (r *Recorder) P99s() (totalUS, queueUS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.p99Tot, r.p99Queue
}

// RetainedRequests returns copies of the tail-sampled requests, oldest
// first. Span pointers stay owned by the recorder: they are only valid
// until eviction, so callers wanting to keep one must serialize it now
// (Status and the postmortem writer do exactly that).
func (r *Recorder) RetainedRequests() []Retained {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := int(r.retNext)
	if held > len(r.ret) {
		held = len(r.ret)
	}
	out := make([]Retained, 0, held)
	for i := 0; i < held; i++ {
		idx := (r.retNext - uint64(held) + uint64(i)) % uint64(len(r.ret))
		e := &r.ret[idx]
		if !e.used {
			continue
		}
		out = append(out, Retained{Digest: e.d, Spans: append([]*telemetry.Span(nil), e.spans...)})
	}
	return out
}

// Status digests the recorder for dashboards and /snapshot.
func (r *Recorder) Status() *obs.FlightStatus {
	r.mu.Lock()
	retained := int(r.retNext)
	if retained > len(r.ret) {
		retained = len(r.ret)
	}
	p99t, p99q := r.p99Tot, r.p99Queue
	r.mu.Unlock()
	r.pmMu.Lock()
	lastAt, lastReason := r.lastAt, r.lastReason
	r.pmMu.Unlock()
	return &obs.FlightStatus{
		Requests:    r.ring.Seq(),
		Retained:    retained,
		P99TotalUS:  p99t,
		P99QueueUS:  p99q,
		Postmortems: r.pmCount.Load(),
		LastTrigger: lastAt,
		LastReason:  lastReason,
		Slowest:     r.ring.Slowest(5),
	}
}
