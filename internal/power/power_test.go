package power

import "testing"

func TestAreaClaimC1(t *testing.T) {
	if f := P9().AreaFraction(); f >= 0.005 {
		t.Fatalf("P9 accelerator area fraction %.4f, paper claims < 0.5%%", f)
	}
}

func TestSpeedupClaimC2(t *testing.T) {
	// Abstract: 388x over zlib software on a core. The model must land in
	// that regime at the level the paper measured (best compression).
	s := P9().SpeedupSingleCore(9)
	if s < 300 || s < 0 || s > 480 {
		t.Fatalf("single-core speedup %.0f outside the 388x regime", s)
	}
}

func TestSpeedupClaimC3(t *testing.T) {
	// Abstract: 13x over the entire chip of cores.
	s := P9().SpeedupWholeChip(9)
	if s < 9 || s > 17 {
		t.Fatalf("whole-chip speedup %.1f outside the 13x regime", s)
	}
}

func TestClaimC5Doubling(t *testing.T) {
	p9, z15 := P9(), Z15()
	ratio := z15.AccelCompRate / p9.AccelCompRate
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("z15/P9 rate ratio %.2f, paper claims doubling", ratio)
	}
}

func TestClaimC6MaxSystem(t *testing.T) {
	agg := Z15().SystemAggregateRate(Z15MaxChips)
	if agg < 260e9 || agg > 300e9 {
		t.Fatalf("max z15 aggregate %.0f GB/s, paper claims up to 280", agg/1e9)
	}
}

func TestEfficiencyDominance(t *testing.T) {
	m := P9()
	aw, am := m.AccelEfficiency()
	sw, sm := m.SoftwareEfficiency(6)
	if aw < 50*sw {
		t.Fatalf("accel %.2f GB/s/W vs sw %.4f: expected >50x", aw, sw)
	}
	if am < 50*sm {
		t.Fatalf("accel %.2f GB/s/mm2 vs sw %.4f: expected >50x", am, sm)
	}
}

func TestEnergyPerByte(t *testing.T) {
	accel, core := P9().EnergyPerByte(6)
	if accel >= core {
		t.Fatalf("accelerator energy/byte %.3e not below core %.3e", accel, core)
	}
	// Ratio should be two to three orders of magnitude.
	if core/accel < 100 {
		t.Fatalf("energy advantage only %.0fx", core/accel)
	}
}

func TestUnknownLevel(t *testing.T) {
	if P9().SpeedupSingleCore(3) != 0 {
		t.Fatal("unknown level should yield 0")
	}
	if P9().SpeedupWholeChip(3) != 0 {
		t.Fatal("unknown level should yield 0")
	}
}
