// Package power holds the analytic area/power/energy model and the
// software-baseline calibration constants. The paper reports these as
// measured constants of the shipped silicon (claim C1: one accelerator is
// under 0.5% of POWER9 chip area); this package reproduces the *derived*
// quantities — GB/s per watt, GB/s per mm², energy per byte, and the
// core-ensemble comparisons — from those inputs.
//
// Every constant is a documented calibration input, not a measurement made
// by this repository.
package power

// ChipModel describes one processor chip and its accelerator.
type ChipModel struct {
	Name string

	// Chip geometry.
	ChipAreaMM2  float64
	Cores        int
	CoreAreaMM2  float64 // per core incl. private caches
	AccelAreaMM2 float64 // one compression accelerator

	// Power.
	CorePowerW  float64 // per core running the software codec
	AccelPowerW float64 // accelerator active power

	// Throughput calibration.
	AccelCompRate   float64         // effective accelerator compression B/s
	AccelDecompRate float64         // effective decompression B/s
	SWCompRate      map[int]float64 // zlib level -> per-core B/s
	SWDecompRate    float64         // per-core inflate B/s
	SMTScaling      float64         // chip-level multithreading yield factor
}

// P9 returns the POWER9 model: 24-core 695 mm² chip, NX unit under 0.5%
// of area, ~8 GB/s compression.
func P9() ChipModel {
	return ChipModel{
		Name:            "POWER9",
		ChipAreaMM2:     695,
		Cores:           24,
		CoreAreaMM2:     16.5,
		AccelAreaMM2:    3.0, // 0.43% of chip
		CorePowerW:      6.0,
		AccelPowerW:     2.5,
		AccelCompRate:   7.5e9,
		AccelDecompRate: 6.0e9,
		SWCompRate: map[int]float64{
			1: 110e6,
			6: 42e6,
			9: 20e6,
		},
		SWDecompRate: 250e6,
		SMTScaling:   1.2, // SMT4 throughput yield beyond 1 thread/core
	}
}

// Z15 returns the z15 model: 12-core CP chip with the on-chip NXU at
// double the POWER9 rate; a maximal system carries 20 CP chips.
func Z15() ChipModel {
	return ChipModel{
		Name:            "z15",
		ChipAreaMM2:     696,
		Cores:           12,
		CoreAreaMM2:     25,
		AccelAreaMM2:    4.0,
		CorePowerW:      9.0,
		AccelPowerW:     3.5,
		AccelCompRate:   14.0e9,
		AccelDecompRate: 12.0e9,
		SWCompRate: map[int]float64{
			1: 140e6,
			6: 55e6,
			9: 25e6,
		},
		SWDecompRate: 320e6,
		SMTScaling:   1.25,
	}
}

// Z15MaxChips is the maximally configured z15 topology (5 CPC drawers x 4
// CP chips), behind the 280 GB/s aggregate claim (C6).
const Z15MaxChips = 20

// AreaFraction returns the accelerator's share of chip area.
func (m ChipModel) AreaFraction() float64 {
	return m.AccelAreaMM2 / m.ChipAreaMM2
}

// SpeedupSingleCore is claim C2's quantity: accelerator rate over one
// core's software rate at the given zlib level.
func (m ChipModel) SpeedupSingleCore(level int) float64 {
	sw := m.SWCompRate[level]
	if sw == 0 {
		return 0
	}
	return m.AccelCompRate / sw
}

// ChipSoftwareRate is the whole chip's aggregate software compression
// throughput at a zlib level: all cores, SMT yield applied.
func (m ChipModel) ChipSoftwareRate(level int) float64 {
	return m.SWCompRate[level] * float64(m.Cores) * m.SMTScaling
}

// SpeedupWholeChip is claim C3's quantity.
func (m ChipModel) SpeedupWholeChip(level int) float64 {
	chip := m.ChipSoftwareRate(level)
	if chip == 0 {
		return 0
	}
	return m.AccelCompRate / chip
}

// AccelEfficiency returns (GB/s per watt, GB/s per mm²) for the
// accelerator.
func (m ChipModel) AccelEfficiency() (perWatt, perMM2 float64) {
	return m.AccelCompRate / 1e9 / m.AccelPowerW, m.AccelCompRate / 1e9 / m.AccelAreaMM2
}

// SoftwareEfficiency returns the same metrics for the core ensemble at a
// zlib level.
func (m ChipModel) SoftwareEfficiency(level int) (perWatt, perMM2 float64) {
	rate := m.ChipSoftwareRate(level) / 1e9
	return rate / (m.CorePowerW * float64(m.Cores)),
		rate / (m.CoreAreaMM2 * float64(m.Cores))
}

// EnergyPerByte returns joules per input byte for the accelerator and for
// a single software core at a zlib level.
func (m ChipModel) EnergyPerByte(level int) (accel, core float64) {
	return m.AccelPowerW / m.AccelCompRate, m.CorePowerW / m.SWCompRate[level]
}

// SystemAggregateRate returns the aggregate compression bandwidth of n
// chips' accelerators.
func (m ChipModel) SystemAggregateRate(n int) float64 {
	return m.AccelCompRate * float64(n)
}
