package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev()-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestPercentiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 0.1 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInsertions(t *testing.T) {
	var s Samples
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(1000)
	for _, v := range perm {
		s.Add(float64(v))
	}
	if got := s.Percentile(50); math.Abs(got-499.5) > 1 {
		t.Fatalf("P50 = %v", got)
	}
	// Add after sort must re-sort.
	s.Add(-1000)
	if got := s.Percentile(0); got != -1000 {
		t.Fatalf("P0 after late add = %v", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var s Samples
	s.Add(42)
	for _, p := range []float64{-5, 0, 1, 50, 99, 100, 250} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("P%v of single sample = %v, want 42", p, got)
		}
	}
}

func TestPercentileEndpointsExact(t *testing.T) {
	var s Samples
	for _, v := range []float64{7, 3, 11, 5} {
		s.Add(v)
	}
	// p<=0 and p>=100 are exact order statistics, never interpolated or
	// extrapolated — even for out-of-range p.
	if got := s.Percentile(0); got != 3 {
		t.Fatalf("P0 = %v, want min 3", got)
	}
	if got := s.Percentile(-10); got != 3 {
		t.Fatalf("P-10 = %v, want min 3", got)
	}
	if got := s.Percentile(100); got != 11 {
		t.Fatalf("P100 = %v, want max 11", got)
	}
	if got := s.Percentile(1000); got != 11 {
		t.Fatalf("P1000 = %v, want max 11", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Samples
	s.Add(10)
	s.Add(20)
	// rank = 0.5 between the two samples.
	if got := s.Percentile(50); got != 15 {
		t.Fatalf("P50 of {10,20} = %v, want 15", got)
	}
	if got := s.Percentile(25); got != 12.5 {
		t.Fatalf("P25 of {10,20} = %v, want 12.5", got)
	}
}

func TestPercentileNaN(t *testing.T) {
	var s Samples
	s.Add(1)
	s.Add(2)
	s.Add(3)
	// NaN must not panic or poison rank arithmetic; defined as p=0.
	if got := s.Percentile(math.NaN()); got != 1 {
		t.Fatalf("P(NaN) = %v, want min 1", got)
	}
}

func TestSamplesMeanEmpty(t *testing.T) {
	var s Samples
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty samples not zero")
	}
}

func TestRateFormat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{15.5e9, "GB/s"}, {40e6, "MB/s"}, {1500, "KB/s"}, {10, "B/s"},
	}
	for _, c := range cases {
		if got := Rate(c.v); !strings.HasSuffix(got, c.want) {
			t.Fatalf("Rate(%v) = %q", c.v, got)
		}
	}
}

func TestBytesFormat(t *testing.T) {
	if got := Bytes(3 << 30); got != "3.00 GiB" {
		t.Fatalf("got %q", got)
	}
	if got := Bytes(512); got != "512 B" {
		t.Fatalf("got %q", got)
	}
}
