// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming summaries, percentile estimation over recorded
// samples, and human-readable rate formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming count/sum/mean/min/max/variance (Welford).
type Summary struct {
	n        int64
	sum      float64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Sum returns the running total of every observation (0 for empty).
// Unlike Mean()*N(), it accumulates directly, so consumers deriving
// rates from snapshot deltas get exact differences.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Samples records individual observations for percentile queries.
// Percentile sorts lazily, so Add and Percentile calls may interleave
// freely: an Add after a Percentile marks the set dirty and the next
// Percentile re-sorts. Not safe for concurrent use (Percentile mutates
// the sample order); callers that share a Samples across goroutines must
// hold their own lock.
type Samples struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Samples) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of recorded observations.
func (s *Samples) N() int { return len(s.xs) }

// Percentile returns the p-th percentile using linear interpolation
// between closest ranks: rank = p/100 * (N-1), and the result
// interpolates between the two samples bracketing that rank.
//
// Edge behavior, by definition of the closest-rank method:
//   - empty set: returns 0 (there is no data to interpolate)
//   - single sample: every percentile is that sample
//   - p <= 0 (and NaN): the minimum; p >= 100: the maximum — the
//     endpoints are exact order statistics, never extrapolated
func (s *Samples) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	// NaN fails both comparisons below and would poison the rank
	// arithmetic (int(NaN) is platform-defined); treat it as p=0.
	if math.IsNaN(p) || p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the mean of recorded observations.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Rate formats a bytes-per-second figure with a binary-friendly unit.
func Rate(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
	case bytesPerSec >= 1e6:
		return fmt.Sprintf("%.2f MB/s", bytesPerSec/1e6)
	case bytesPerSec >= 1e3:
		return fmt.Sprintf("%.2f KB/s", bytesPerSec/1e3)
	}
	return fmt.Sprintf("%.0f B/s", bytesPerSec)
}

// Bytes formats a byte count.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
