// Package queueing is a discrete-event simulator for system-level
// experiments: many clients sharing one or more accelerators through a
// FIFO queue. It reproduces the paper's scaling and multi-tenant results —
// aggregate throughput versus number of accelerators (the 280 GB/s maximal
// z15 topology), latency distributions under sharing, and the whole-chip
// software-versus-one-accelerator comparison.
package queueing

import (
	"container/heap"
	"math"
	"math/rand"

	"nxzip/internal/stats"
)

// Request is one job moving through the system.
type Request struct {
	ID       int64
	Source   int // client/tenant index
	Bytes    int
	Priority int     // higher = served first (0 default)
	Arrive   float64 // seconds
	Start    float64
	Done     float64
}

// ServiceFunc returns the service time in seconds for a request on a
// given server. Deterministic functions model the accelerator (line rate +
// fixed overhead); rate-based functions model software cores.
type ServiceFunc func(r *Request, server int) float64

// SizeFunc draws a request size in bytes.
type SizeFunc func(rng *rand.Rand) int

// FixedSize returns a SizeFunc for constant-size requests.
func FixedSize(n int) SizeFunc { return func(*rand.Rand) int { return n } }

// Config describes the service side of the system.
type Config struct {
	Servers  int
	Service  ServiceFunc
	QueueCap int     // 0 = unbounded; otherwise arrivals beyond cap are rejected
	Duration float64 // simulated seconds
	Seed     int64
	Sources  int // number of tenants (for per-source stats); >= 1
	// Priority maps a source to its queue priority (nil = all equal).
	// Higher priorities are always dispatched first, FIFO within a level
	// — the NX high/normal receive-FIFO discipline.
	Priority func(source int) int
	// SizeFor, when non-nil, overrides the SizeFunc per source (tenants
	// with different request profiles).
	SizeFor func(source int, rng *rand.Rand) int
}

// Result aggregates simulation output.
type Result struct {
	Completed   int64
	Rejected    int64
	BytesServed int64
	// Throughput is bytes served per simulated second.
	Throughput float64
	// Latency is the end-to-end sojourn time (queue + service), seconds.
	Latency *stats.Samples
	// PerSource sojourn-time samples indexed by source.
	PerSource []*stats.Samples
	// Utilization is the busy fraction per server.
	Utilization []float64
	// MeanQueueLen is the time-averaged queue length.
	MeanQueueLen float64
}

// event kinds
const (
	evArrival = iota
	evDeparture
)

type event struct {
	at     float64
	kind   int
	req    *Request
	server int
	seq    int64 // tiebreak for determinism
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// sim is the shared simulation core.
type sim struct {
	cfg    Config
	rng    *rand.Rand
	events eventHeap
	seq    int64
	queue  []*Request
	busy   []bool
	busyT  []float64 // accumulated busy time per server
	res    Result
	qInt   float64 // integral of queue length over time
	lastT  float64
	nextID int64
	onDone func(r *Request, now float64) // closed-loop hook
}

func newSim(cfg Config) *sim {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 1
	}
	s := &sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		busy:  make([]bool, cfg.Servers),
		busyT: make([]float64, cfg.Servers),
	}
	s.res.Latency = &stats.Samples{}
	for i := 0; i < cfg.Sources; i++ {
		s.res.PerSource = append(s.res.PerSource, &stats.Samples{})
	}
	return s
}

func (s *sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *sim) advance(now float64) {
	s.qInt += float64(len(s.queue)) * (now - s.lastT)
	s.lastT = now
}

// dispatch assigns queued work to idle servers.
func (s *sim) dispatch(now float64) {
	for len(s.queue) > 0 {
		srv := -1
		for i, b := range s.busy {
			if !b {
				srv = i
				break
			}
		}
		if srv < 0 {
			return
		}
		// Highest priority first, FIFO within a level (first max wins).
		best := 0
		for i := 1; i < len(s.queue); i++ {
			if s.queue[i].Priority > s.queue[best].Priority {
				best = i
			}
		}
		req := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		req.Start = now
		svc := s.cfg.Service(req, srv)
		if svc < 0 {
			svc = 0
		}
		s.busy[srv] = true
		s.busyT[srv] += svc
		s.push(&event{at: now + svc, kind: evDeparture, req: req, server: srv})
	}
}

func (s *sim) arrive(req *Request, now float64) {
	if s.cfg.QueueCap > 0 && len(s.queue) >= s.cfg.QueueCap {
		s.res.Rejected++
		if s.onDone != nil {
			// Closed-loop clients retry after a think time even when
			// rejected, otherwise the population would leak.
			s.onDone(req, now)
		}
		return
	}
	s.queue = append(s.queue, req)
	s.dispatch(now)
}

func (s *sim) run() Result {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.cfg.Duration {
			break
		}
		s.advance(e.at)
		switch e.kind {
		case evArrival:
			s.arrive(e.req, e.at)
		case evDeparture:
			s.busy[e.server] = false
			e.req.Done = e.at
			s.res.Completed++
			s.res.BytesServed += int64(e.req.Bytes)
			lat := e.req.Done - e.req.Arrive
			s.res.Latency.Add(lat)
			if e.req.Source < len(s.res.PerSource) {
				s.res.PerSource[e.req.Source].Add(lat)
			}
			if s.onDone != nil {
				s.onDone(e.req, e.at)
			}
			s.dispatch(e.at)
		}
	}
	s.advance(s.cfg.Duration)
	s.res.Throughput = float64(s.res.BytesServed) / s.cfg.Duration
	for i := range s.busyT {
		u := s.busyT[i] / s.cfg.Duration
		if u > 1 {
			u = 1
		}
		s.res.Utilization = append(s.res.Utilization, u)
	}
	s.res.MeanQueueLen = s.qInt / s.cfg.Duration
	return s.res
}

// SimulateOpen runs an open system: Poisson arrivals at ratePerSec split
// evenly across cfg.Sources tenants, sizes drawn from size.
func SimulateOpen(cfg Config, ratePerSec float64, size SizeFunc) Result {
	s := newSim(cfg)
	// Pre-generate arrivals per source so tenancy is explicit.
	perSrc := ratePerSec / float64(max(1, cfg.Sources))
	for src := 0; src < max(1, cfg.Sources); src++ {
		t := 0.0
		for {
			t += expDraw(s.rng, perSrc)
			if t > cfg.Duration {
				break
			}
			s.nextID++
			s.push(&event{at: t, kind: evArrival, req: &Request{
				ID: s.nextID, Source: src, Bytes: s.sizeOf(src, size), Arrive: t,
				Priority: s.priorityOf(src),
			}})
		}
	}
	return s.run()
}

func (s *sim) priorityOf(src int) int {
	if s.cfg.Priority == nil {
		return 0
	}
	return s.cfg.Priority(src)
}

func (s *sim) sizeOf(src int, fallback SizeFunc) int {
	if s.cfg.SizeFor != nil {
		return s.cfg.SizeFor(src, s.rng)
	}
	return fallback(s.rng)
}

// SimulateClosed runs a closed system: clients cycles of
// think → submit → wait. thinkSec of zero models saturating callers.
func SimulateClosed(cfg Config, clients int, thinkSec float64, size SizeFunc) Result {
	if clients <= 0 {
		clients = 1
	}
	cfg.Sources = clients
	s := newSim(cfg)
	s.onDone = func(r *Request, now float64) {
		t := now + thinkSec
		if t > cfg.Duration {
			return
		}
		s.nextID++
		s.push(&event{at: t, kind: evArrival, req: &Request{
			ID: s.nextID, Source: r.Source, Bytes: s.sizeOf(r.Source, size), Arrive: t,
			Priority: s.priorityOf(r.Source),
		}})
	}
	for c := 0; c < clients; c++ {
		t := expDraw(s.rng, 1/math.Max(thinkSec, 1e-9)) * 0.01 // staggered start
		s.nextID++
		s.push(&event{at: t, kind: evArrival, req: &Request{
			ID: s.nextID, Source: c, Bytes: s.sizeOf(c, size), Arrive: t,
			Priority: s.priorityOf(c),
		}})
	}
	return s.run()
}

func expDraw(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / rate
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AcceleratorService builds a ServiceFunc from a fixed per-request
// overhead and a line rate, the accelerator's first-order service model.
func AcceleratorService(overheadSec float64, bytesPerSec float64) ServiceFunc {
	return func(r *Request, _ int) float64 {
		return overheadSec + float64(r.Bytes)/bytesPerSec
	}
}

// CoreService models a software codec at the given throughput.
func CoreService(bytesPerSec float64) ServiceFunc {
	return func(r *Request, _ int) float64 {
		return float64(r.Bytes) / bytesPerSec
	}
}

// UniformSize draws sizes uniformly in [lo, hi].
func UniformSize(lo, hi int) SizeFunc {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand) int {
		return lo + rng.Intn(hi-lo+1)
	}
}

// BimodalSize models the RPC-plus-bulk mixture common in datacenter
// compression offload: a fraction smallWeight of requests of smallBytes,
// the rest of largeBytes.
func BimodalSize(smallBytes, largeBytes int, smallWeight float64) SizeFunc {
	return func(rng *rand.Rand) int {
		if rng.Float64() < smallWeight {
			return smallBytes
		}
		return largeBytes
	}
}
