package queueing

import (
	"math"
	"math/rand"
	"testing"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestOpenMM1SanityAgainstTheory(t *testing.T) {
	// M/D/1 with deterministic service: mean wait Wq = rho*S/(2(1-rho)).
	const (
		svc  = 0.001 // 1 ms deterministic
		rate = 500.0 // rho = 0.5
	)
	cfg := Config{Servers: 1, Duration: 2000, Seed: 42,
		Service: func(r *Request, _ int) float64 { return svc }}
	res := SimulateOpen(cfg, rate, FixedSize(1000))
	rho := rate * svc
	theory := svc + rho*svc/(2*(1-rho)) // sojourn = service + wait
	got := res.Latency.Mean()
	if math.Abs(got-theory)/theory > 0.10 {
		t.Fatalf("M/D/1 sojourn %.6f, theory %.6f", got, theory)
	}
	if u := res.Utilization[0]; math.Abs(u-rho) > 0.05 {
		t.Fatalf("utilization %.3f, want ~%.3f", u, rho)
	}
}

func TestConservation(t *testing.T) {
	cfg := Config{Servers: 2, Duration: 100, Seed: 1,
		Service: AcceleratorService(10e-6, 8e9)}
	res := SimulateOpen(cfg, 2000, FixedSize(64<<10))
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.BytesServed != res.Completed*64<<10 {
		t.Fatalf("bytes %d != completed %d * size", res.BytesServed, res.Completed)
	}
	if int64(res.Latency.N()) != res.Completed {
		t.Fatalf("latency samples %d != completed %d", res.Latency.N(), res.Completed)
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	mk := func(servers int) float64 {
		cfg := Config{Servers: servers, Duration: 50, Seed: 3,
			Service: AcceleratorService(5e-6, 8e9)}
		// Saturating closed load: 4 clients per server, no think time.
		res := SimulateClosed(cfg, 4*servers, 0, FixedSize(1<<20))
		return res.Throughput
	}
	t1, t4 := mk(1), mk(4)
	if t4 < 3.2*t1 {
		t.Fatalf("4 servers give %.2fx of 1 server", t4/t1)
	}
	// One saturated accelerator should approach its line rate.
	if t1 < 0.8*8e9 {
		t.Fatalf("single-server throughput %.2e below 80%% of line rate", t1)
	}
}

func TestClosedLoopLatencyRisesWithClients(t *testing.T) {
	mk := func(clients int) float64 {
		cfg := Config{Servers: 1, Duration: 20, Seed: 7,
			Service: AcceleratorService(5e-6, 8e9)}
		res := SimulateClosed(cfg, clients, 0, FixedSize(256<<10))
		return res.Latency.Percentile(99)
	}
	if l64, l1 := mk(64), mk(1); l64 < 8*l1 {
		t.Fatalf("P99 with 64 clients (%.2e) should far exceed 1 client (%.2e)", l64, l1)
	}
}

func TestQueueCapRejects(t *testing.T) {
	cfg := Config{Servers: 1, Duration: 10, Seed: 5, QueueCap: 4,
		Service: func(r *Request, _ int) float64 { return 0.1 }}
	res := SimulateOpen(cfg, 100, FixedSize(1000)) // heavy overload
	if res.Rejected == 0 {
		t.Fatal("no rejections under overload with bounded queue")
	}
}

func TestPerSourceFairness(t *testing.T) {
	// Equal tenants through one FIFO should see similar mean latency.
	cfg := Config{Servers: 1, Duration: 200, Seed: 11, Sources: 4,
		Service: AcceleratorService(5e-6, 8e9)}
	res := SimulateOpen(cfg, 4000, FixedSize(128<<10))
	means := make([]float64, 4)
	for i, s := range res.PerSource {
		if s.N() == 0 {
			t.Fatalf("source %d starved", i)
		}
		means[i] = s.Mean()
	}
	for i := 1; i < 4; i++ {
		if means[i] > 1.5*means[0] || means[0] > 1.5*means[i] {
			t.Fatalf("unfair FIFO: %v", means)
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	cfg := Config{Servers: 2, Duration: 30, Seed: 13,
		Service: AcceleratorService(1e-5, 8e9)}
	a := SimulateOpen(cfg, 1000, FixedSize(64<<10))
	b := SimulateOpen(cfg, 1000, FixedSize(64<<10))
	if a.Completed != b.Completed || a.Throughput != b.Throughput {
		t.Fatal("same seed, different results")
	}
}

func TestMeanQueueLenPositiveUnderLoad(t *testing.T) {
	cfg := Config{Servers: 1, Duration: 50, Seed: 17,
		Service: func(r *Request, _ int) float64 { return 0.0009 }}
	res := SimulateOpen(cfg, 900, FixedSize(1)) // rho=0.81
	if res.MeanQueueLen <= 0 {
		t.Fatal("queue never formed at rho=0.81")
	}
}

func TestSizeHelpers(t *testing.T) {
	rng := newTestRNG()
	u := UniformSize(100, 200)
	for i := 0; i < 1000; i++ {
		v := u(rng)
		if v < 100 || v > 200 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
	// Reversed bounds are normalized.
	r := UniformSize(200, 100)
	if v := r(rng); v < 100 || v > 200 {
		t.Fatalf("reversed bounds: %d", v)
	}
	b := BimodalSize(10, 1000, 0.9)
	small := 0
	for i := 0; i < 10000; i++ {
		if b(rng) == 10 {
			small++
		}
	}
	if small < 8500 || small > 9500 {
		t.Fatalf("bimodal small fraction %d/10000", small)
	}
}

func TestBimodalLatencyBifurcates(t *testing.T) {
	cfg := Config{Servers: 1, Duration: 30, Seed: 4,
		Service: AcceleratorService(5e-6, 8e9)}
	res := SimulateOpen(cfg, 3000, BimodalSize(4<<10, 1<<20, 0.8))
	// P50 is a small request (fast), P99 includes queueing behind bulk.
	if res.Latency.Percentile(99) < 3*res.Latency.Percentile(50) {
		t.Fatalf("no bifurcation: p50 %v p99 %v",
			res.Latency.Percentile(50), res.Latency.Percentile(99))
	}
}

func TestPriorityDiscipline(t *testing.T) {
	// Source 0 is high priority with sparse small requests; sources 1..4
	// saturate with bulk. With priority, source 0's latency approaches
	// bare service time; without, it queues behind the bulk work.
	base := Config{Servers: 1, Duration: 20, Seed: 6, Sources: 5,
		Service: AcceleratorService(5e-6, 8e9)}
	mk := func(pri bool) float64 {
		cfg := base
		if pri {
			cfg.Priority = func(src int) int {
				if src == 0 {
					return 1
				}
				return 0
			}
		}
		res := SimulateClosed(cfg, 5, 100e-6, BimodalSize(16<<10, 2<<20, 0.5))
		return res.PerSource[0].Percentile(99)
	}
	withPri, without := mk(true), mk(false)
	if withPri >= without {
		t.Fatalf("priority P99 %.2e not below FIFO P99 %.2e", withPri, without)
	}
	// FIFO order within a priority level is preserved (determinism).
	cfg := base
	cfg.Priority = func(int) int { return 0 }
	a := SimulateClosed(cfg, 5, 100e-6, FixedSize(64<<10))
	cfg.Priority = nil
	b := SimulateClosed(base, 5, 100e-6, FixedSize(64<<10))
	if a.Completed != b.Completed {
		t.Fatalf("uniform priority changed behaviour: %d vs %d", a.Completed, b.Completed)
	}
}
