package specdec

import (
	"testing"

	"nxzip/internal/corpus"
	"nxzip/internal/deflate"
	"nxzip/internal/lz77"
)

// blockFor compresses a corpus class into a single dynamic-table block.
func blockFor(tb testing.TB, k corpus.Kind, size int) []byte {
	tb.Helper()
	src := corpus.Generate(k, size, 7)
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	toks, _ := m.Tokenize(nil, src)
	out, err := deflate.EncodeTokens(toks, src, deflate.ModeDynamic, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

func TestAnalyzeTextSelfSynchronizes(t *testing.T) {
	an, err := Analyze(blockFor(t, corpus.Text, 64<<10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.Trials < 1000 {
		t.Fatalf("only %d trials", an.Trials)
	}
	// Huffman self-synchronization is strong on skewed codes: the vast
	// majority of blind starts re-align.
	if an.SyncRate < 0.8 {
		t.Fatalf("sync rate %.2f too low", an.SyncRate)
	}
	if an.MeanSyncBits <= 0 || an.MeanSyncBits > 400 {
		t.Fatalf("mean sync %.1f bits implausible", an.MeanSyncBits)
	}
	t.Logf("text: sync %.1f%%, mean %.1f bits / %.1f symbols, max %d bits",
		an.SyncRate*100, an.MeanSyncBits, an.MeanSyncSyms, an.MaxSyncBits)
}

func TestAnalyzeAcrossCorpora(t *testing.T) {
	for _, k := range []corpus.Kind{corpus.JSONLogs, corpus.DNA, corpus.Binary} {
		an, err := Analyze(blockFor(t, k, 32<<10), 0)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if an.SyncRate < 0.5 {
			t.Fatalf("%s: sync rate %.2f", k, an.SyncRate)
		}
		t.Logf("%-8s sync %.1f%% mean %.1f bits", k, an.SyncRate*100, an.MeanSyncBits)
	}
}

func TestAnalyzeFixedTableBlock(t *testing.T) {
	src := corpus.Generate(corpus.Source, 32<<10, 3)
	m := lz77.NewHWMatcher(lz77.P9HWParams())
	toks, _ := m.Tokenize(nil, src)
	out, err := deflate.EncodeTokens(toks, src, deflate.ModeFixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if an.SyncRate <= 0 {
		t.Fatal("no synchronization on fixed-table block")
	}
}

func TestAnalyzeRejectsStored(t *testing.T) {
	src := make([]byte, 1000)
	out, err := deflate.EncodeTokens(nil, src, deflate.ModeStored, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(out, 0); err == nil {
		t.Fatal("stored block accepted")
	}
}

func TestSpeedupModel(t *testing.T) {
	an, err := Analyze(blockFor(t, corpus.Text, 64<<10), 0)
	if err != nil {
		t.Fatal(err)
	}
	// One lane = 1.0 by definition.
	if s := an.Speedup(1, 4096); s != 1 {
		t.Fatalf("1-lane speedup %v", s)
	}
	// More lanes help, with diminishing returns per lane.
	s2 := an.Speedup(2, 4096)
	s8 := an.Speedup(8, 4096)
	if s2 <= 1 || s8 <= s2 {
		t.Fatalf("speedups not increasing: %v %v", s2, s8)
	}
	if s8 > 8 {
		t.Fatalf("8-lane speedup %v exceeds lane count", s8)
	}
	// Bigger segments amortize the sync prefix better.
	if an.Speedup(8, 8192) <= an.Speedup(8, 1024) {
		t.Fatal("segment-size scaling inverted")
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	a := &Analysis{}
	if a.Speedup(4, 1000) != 1 {
		t.Fatal("no-trials speedup must be 1")
	}
}
