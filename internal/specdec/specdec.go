// Package specdec studies the decompression-side microarchitecture: a
// speculative, multi-lane Huffman decoder.
//
// DEFLATE decoding is inherently serial — each variable-length codeword's
// position depends on all previous lengths — which caps a naive decoder at
// one symbol per cycle. The accelerator's decompressor (like other
// hardware DEFLATE decoders) exploits Huffman *self-synchronization*:
// a decoder that starts at a wrong bit offset usually re-aligns with the
// true codeword grid within a few symbols. N lanes decode N consecutive
// segments of the stream concurrently; lane k starts blind at its
// segment's first bit, and once lane k-1 reaches lane k's segment, the
// speculative work from the first self-synchronized boundary onward is
// valid and everything before it is replayed serially.
//
// This package measures, on real compressed streams, the quantities that
// size such a decoder: the probability of synchronization, the expected
// synchronization distance, and the resulting effective speedup for a
// given lane count and segment size. It justifies the DecodeBytesPerCycle
// constants in the pipeline model and provides ablation A6.
package specdec

import (
	"errors"
	"fmt"

	"nxzip/internal/bitio"
	"nxzip/internal/deflate"
)

// symbolTrace records the true decode: every symbol's starting bit offset
// within the payload.
type symbolTrace struct {
	boundaries map[int]bool // bit offset -> is a symbol start
	endBit     int          // offset after end-of-block symbol
	symbols    int
}

// traceBlock decodes the block payload at r (positioned after the
// header) and records the codeword grid.
func traceBlock(r *bitio.Reader, h *deflate.BlockHeader) (*symbolTrace, error) {
	tr := &symbolTrace{boundaries: make(map[int]bool)}
	for {
		pos := r.BitsConsumed()
		tr.boundaries[pos] = true
		sym, err := h.LitLen.Decode(r)
		if err != nil {
			return nil, err
		}
		tr.symbols++
		if sym == deflate.EndOfBlock {
			tr.endBit = r.BitsConsumed()
			return tr, nil
		}
		if sym > deflate.EndOfBlock {
			if err := skipMatch(r, h, sym); err != nil {
				return nil, err
			}
		}
	}
}

// skipMatch consumes the extra-length bits, distance code and extra
// distance bits of a match whose length symbol was just read.
func skipMatch(r *bitio.Reader, h *deflate.BlockHeader, lenSym int) error {
	_, nb, ok := deflate.LengthFromSymbol(lenSym)
	if !ok {
		return errors.New("specdec: bad length symbol")
	}
	if nb > 0 {
		if _, err := r.ReadBits(uint(nb)); err != nil {
			return err
		}
	}
	dsym, err := h.Dist.Decode(r)
	if err != nil {
		return err
	}
	_, dnb, ok := deflate.DistFromSymbol(dsym)
	if !ok {
		return errors.New("specdec: bad dist symbol")
	}
	if dnb > 0 {
		if _, err := r.ReadBits(uint(dnb)); err != nil {
			return err
		}
	}
	return nil
}

// LaneResult describes one speculative lane start.
type LaneResult struct {
	StartBit int
	Synced   bool
	SyncBits int // bits consumed before hitting a true boundary
	SyncSyms int // speculative symbols decoded before sync
}

// Analysis aggregates a block's speculative-decode behaviour.
type Analysis struct {
	Symbols      int
	PayloadBits  int
	Trials       int
	SyncRate     float64 // fraction of random starts that synchronize
	MeanSyncBits float64 // mean bits to synchronization (synced trials)
	MeanSyncSyms float64
	MaxSyncBits  int
}

// Analyze compresses nothing itself: give it a raw single-block DEFLATE
// stream (from deflate.EncodeTokens) and it measures self-synchronization
// by starting a speculative decode at every trial-th bit offset.
func Analyze(stream []byte, stride int) (*Analysis, error) {
	if stride <= 0 {
		stride = 13 // odd stride samples all bit phases
	}
	r := bitio.NewReader(stream)
	h, err := deflate.ReadBlockHeader(r)
	if err != nil {
		return nil, err
	}
	if h.Type == 0 {
		return nil, errors.New("specdec: stored blocks have no codeword grid")
	}
	headerBits := r.BitsConsumed()
	tr, err := traceBlock(r, h)
	if err != nil {
		return nil, fmt.Errorf("specdec: trace: %w", err)
	}
	an := &Analysis{Symbols: tr.symbols, PayloadBits: tr.endBit - headerBits}

	var sumBits, sumSyms float64
	for start := headerBits + 1; start < tr.endBit-16; start += stride {
		if tr.boundaries[start] {
			continue // already aligned; speculation trivially correct
		}
		an.Trials++
		lane := speculateFrom(stream, h, tr, start)
		if lane.Synced {
			sumBits += float64(lane.SyncBits)
			sumSyms += float64(lane.SyncSyms)
			if lane.SyncBits > an.MaxSyncBits {
				an.MaxSyncBits = lane.SyncBits
			}
			an.SyncRate++
		}
	}
	if an.Trials > 0 {
		synced := an.SyncRate
		an.SyncRate /= float64(an.Trials)
		if synced > 0 {
			an.MeanSyncBits = sumBits / synced
			an.MeanSyncSyms = sumSyms / synced
		}
	}
	return an, nil
}

// speculateFrom runs one speculative lane.
func speculateFrom(stream []byte, h *deflate.BlockHeader, tr *symbolTrace, startBit int) LaneResult {
	res := LaneResult{StartBit: startBit}
	r := bitio.NewReader(stream)
	if err := r.SkipBits(uint(startBit)); err != nil {
		return res
	}
	const maxSpecSyms = 4096
	for n := 0; n < maxSpecSyms; n++ {
		pos := r.BitsConsumed()
		if pos >= tr.endBit {
			return res // ran off the block without syncing
		}
		if tr.boundaries[pos] {
			res.Synced = true
			res.SyncBits = pos - startBit
			res.SyncSyms = n
			return res
		}
		sym, err := h.LitLen.Decode(r)
		if err != nil {
			return res // invalid code: lane dies (counts as unsynced)
		}
		if sym == deflate.EndOfBlock {
			return res
		}
		if sym > deflate.EndOfBlock {
			if err := skipMatch(r, h, sym); err != nil {
				return res
			}
		}
	}
	return res
}

// Speedup estimates the effective decode speedup of an N-lane decoder
// with the given segment size in bits, from the measured sync behaviour:
// lane 0 is always useful; each other lane contributes its segment minus
// the expected resynchronization prefix (which lane k-1 must re-decode
// serially), and an unsynchronized lane contributes nothing.
func (a *Analysis) Speedup(lanes, segmentBits int) float64 {
	if lanes <= 1 || a.Trials == 0 {
		return 1
	}
	useful := float64(segmentBits) // lane 0
	for k := 1; k < lanes; k++ {
		gain := a.SyncRate * (float64(segmentBits) - a.MeanSyncBits)
		if gain > 0 {
			useful += gain
		}
	}
	return useful / float64(segmentBits)
}
