// Package ame simulates Active Memory Expansion, the POWER use-case the
// NX 842 engine exists for: the OS keeps cold pages 842-compressed in a
// memory pool and expands them on access, presenting more logical memory
// than physically installed. The simulator runs real 842
// compression/decompression on page contents (so expansion factors are
// honest, not assumed) and charges engine cycles through the pipeline
// model, reproducing the expansion-vs-overhead trade-off curve that sizing
// an AME deployment requires.
package ame

import (
	"container/list"
	"fmt"
	"math/rand"

	"nxzip/internal/pipeline"
	"nxzip/internal/x842"
)

// Config sizes the simulated machine.
type Config struct {
	PageSize      int // bytes per page (POWER AME works on 4 KiB)
	PhysicalPages int // physical page frames available
	// UncompressedTarget is the number of frames kept for the working set
	// (the rest hold the compressed pool).
	UncompressedTarget int
	// Engine is the 842 engine timing model.
	Engine pipeline.Config
}

// DefaultConfig returns a small machine: 25% of frames uncompressed.
func DefaultConfig() Config {
	return Config{
		PageSize:           4096,
		PhysicalPages:      1024,
		UncompressedTarget: 256,
		Engine:             pipeline.P9(),
	}
}

// pageState tracks one logical page.
type pageState struct {
	id         int
	data       []byte // uncompressed contents when resident
	compressed []byte // 842 stream when in the pool
	lruElem    *list.Element
}

// Stats accumulates simulation results.
type Stats struct {
	Accesses        int64
	Expansions      int64 // compressed-page touches (decompress on access)
	Compressions    int64 // pages pushed into the pool
	EngineCycles    int64 // 842 engine work
	PoolBytes       int64 // current compressed pool occupancy
	UncompBytes     int64 // current resident bytes
	LogicalBytes    int64 // total logical memory represented
	FailedToCompact int64 // pages whose 842 stream did not fit (kept raw)
}

// ExpansionFactor is logical memory over physical memory in use.
func (s Stats) ExpansionFactor() float64 {
	phys := s.PoolBytes + s.UncompBytes
	if phys == 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(phys)
}

// ExpansionRate is the fraction of accesses that had to decompress.
func (s Stats) ExpansionRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Expansions) / float64(s.Accesses)
}

// Pool is the AME state machine.
type Pool struct {
	cfg   Config
	pages map[int]*pageState
	lru   *list.List // front = most recently used resident page
	stats Stats
}

// New builds an empty pool.
func New(cfg Config) *Pool {
	if cfg.PageSize <= 0 {
		cfg = DefaultConfig()
	}
	return &Pool{cfg: cfg, pages: make(map[int]*pageState), lru: list.New()}
}

// AddPage registers a logical page with the given contents. New pages
// start resident; the pool compresses cold pages as pressure builds.
func (p *Pool) AddPage(id int, contents []byte) error {
	if len(contents) != p.cfg.PageSize {
		return fmt.Errorf("ame: page %d is %d bytes, want %d", id, len(contents), p.cfg.PageSize)
	}
	if _, ok := p.pages[id]; ok {
		return fmt.Errorf("ame: page %d already present", id)
	}
	ps := &pageState{id: id, data: append([]byte{}, contents...)}
	p.pages[id] = ps
	ps.lruElem = p.lru.PushFront(ps)
	p.stats.LogicalBytes += int64(p.cfg.PageSize)
	p.stats.UncompBytes += int64(p.cfg.PageSize)
	p.balance()
	return nil
}

// Touch accesses a page, expanding it if compressed. It returns the page
// contents and the engine cycles charged for this access.
func (p *Pool) Touch(id int) ([]byte, int64, error) {
	ps, ok := p.pages[id]
	if !ok {
		return nil, 0, fmt.Errorf("ame: no page %d", id)
	}
	p.stats.Accesses++
	var cycles int64
	if ps.data == nil {
		// Expand: run the real 842 decode and charge decompress time.
		out, err := x842.Decompress(ps.compressed, p.cfg.PageSize+64)
		if err != nil {
			return nil, 0, fmt.Errorf("ame: pool corruption on page %d: %w", id, err)
		}
		b := p.cfg.Engine.Decompress(len(ps.compressed), len(out), 0)
		cycles = b.Total
		p.stats.EngineCycles += cycles
		p.stats.Expansions++
		p.stats.PoolBytes -= int64(len(ps.compressed))
		p.stats.UncompBytes += int64(p.cfg.PageSize)
		ps.data = out
		ps.compressed = nil
	}
	// LRU maintenance: an expanded page re-enters the resident list.
	if ps.lruElem == nil {
		ps.lruElem = p.lru.PushFront(ps)
	} else {
		p.lru.MoveToFront(ps.lruElem)
	}
	p.balance()
	return ps.data, cycles, nil
}

// balance compresses LRU-tail pages until the resident set fits the
// target.
func (p *Pool) balance() {
	for p.residentCount() > p.cfg.UncompressedTarget {
		elem := p.lru.Back()
		if elem == nil {
			return
		}
		ps := elem.Value.(*pageState)
		if ps.data == nil {
			// Already compressed page lingering in the list; drop it from
			// the LRU (it re-enters on expansion).
			p.lru.Remove(elem)
			ps.lruElem = nil
			continue
		}
		comp := x842.Compress(ps.data)
		b := p.cfg.Engine.Compress(len(ps.data), len(comp), int64(len(ps.data)/p.cfg.Engine.LZBytesPerCycle+1), 0, false)
		p.stats.EngineCycles += b.Total
		p.stats.Compressions++
		if len(comp) >= p.cfg.PageSize {
			// Incompressible page: keep it raw but move it off the hot end
			// so balance doesn't spin on it.
			p.stats.FailedToCompact++
			p.lru.MoveToFront(ps.lruElem)
			return
		}
		ps.compressed = comp
		ps.data = nil
		p.lru.Remove(elem)
		ps.lruElem = nil
		p.stats.PoolBytes += int64(len(comp))
		p.stats.UncompBytes -= int64(p.cfg.PageSize)
	}
}

// residentCount is the number of uncompressed pages.
func (p *Pool) residentCount() int {
	return p.lru.Len()
}

// Stats returns a snapshot.
func (p *Pool) Stats() Stats { return p.stats }

// Workload drives a pool with a skewed page-access pattern (a fraction of
// hot pages receiving most accesses — the regime where AME wins).
type Workload struct {
	Pages       int
	HotFraction float64 // fraction of pages that are hot
	HotWeight   float64 // fraction of accesses going to hot pages
	Accesses    int
	Seed        int64
}

// Run populates a pool with pages built from contents (cycled) and plays
// the access pattern, returning the final stats.
func (w Workload) Run(p *Pool, pageContents func(id int) []byte) (Stats, error) {
	for id := 0; id < w.Pages; id++ {
		if err := p.AddPage(id, pageContents(id)); err != nil {
			return Stats{}, err
		}
	}
	rng := rand.New(rand.NewSource(w.Seed))
	hot := int(float64(w.Pages) * w.HotFraction)
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < w.Accesses; i++ {
		var id int
		if rng.Float64() < w.HotWeight {
			id = rng.Intn(hot)
		} else {
			id = hot + rng.Intn(w.Pages-hot)
		}
		if id >= w.Pages {
			id = w.Pages - 1
		}
		if _, _, err := p.Touch(id); err != nil {
			return Stats{}, err
		}
	}
	return p.Stats(), nil
}
