package ame

import (
	"bytes"
	"testing"

	"nxzip/internal/corpus"
)

func textPage(id int) []byte {
	return corpus.Generate(corpus.Text, 4096, int64(id))
}

func randomPage(id int) []byte {
	return corpus.Generate(corpus.Random, 4096, int64(id))
}

func zeroPage(int) []byte { return make([]byte, 4096) }

func TestAddAndTouchResident(t *testing.T) {
	p := New(DefaultConfig())
	want := textPage(1)
	if err := p.AddPage(1, want); err != nil {
		t.Fatal(err)
	}
	got, cycles, err := p.Touch(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("contents changed")
	}
	if cycles != 0 {
		t.Fatalf("resident touch cost %d cycles", cycles)
	}
}

func TestPageValidation(t *testing.T) {
	p := New(DefaultConfig())
	if err := p.AddPage(1, make([]byte, 100)); err == nil {
		t.Fatal("wrong-size page accepted")
	}
	p.AddPage(1, textPage(1))
	if err := p.AddPage(1, textPage(1)); err == nil {
		t.Fatal("duplicate page accepted")
	}
	if _, _, err := p.Touch(99); err == nil {
		t.Fatal("missing page touched")
	}
}

func TestPressureCompressesColdPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UncompressedTarget = 8
	p := New(cfg)
	for id := 0; id < 64; id++ {
		if err := p.AddPage(id, textPage(id)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Compressions == 0 {
		t.Fatal("no pages compressed under pressure")
	}
	if st.PoolBytes == 0 {
		t.Fatal("pool empty")
	}
	if f := st.ExpansionFactor(); f <= 1.2 {
		t.Fatalf("expansion factor %.2f on compressible pages", f)
	}
	// Touching a cold page expands it, costs cycles, and returns the
	// exact original bytes.
	got, cycles, err := p.Touch(0) // page 0 is the coldest
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("expansion was free")
	}
	if !bytes.Equal(got, textPage(0)) {
		t.Fatal("expansion corrupted page")
	}
	if p.Stats().Expansions != 1 {
		t.Fatalf("expansions = %d", p.Stats().Expansions)
	}
}

func TestIncompressiblePagesKeptRaw(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UncompressedTarget = 4
	p := New(cfg)
	for id := 0; id < 16; id++ {
		if err := p.AddPage(id, randomPage(id)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.FailedToCompact == 0 {
		t.Fatal("random pages compacted for free?")
	}
	if f := st.ExpansionFactor(); f > 1.2 {
		t.Fatalf("expansion %.2f on incompressible data", f)
	}
	// All pages still intact.
	for id := 0; id < 16; id++ {
		got, _, err := p.Touch(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, randomPage(id)) {
			t.Fatalf("page %d corrupted", id)
		}
	}
}

func TestZeroPagesExpandMassively(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UncompressedTarget = 4
	p := New(cfg)
	for id := 0; id < 64; id++ {
		p.AddPage(id, zeroPage(id))
	}
	if f := p.Stats().ExpansionFactor(); f < 10 {
		t.Fatalf("expansion %.2f on zero pages", f)
	}
}

func TestWorkloadSkewKeepsExpansionRateLow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UncompressedTarget = 64
	p := New(cfg)
	st, err := Workload{
		Pages: 256, HotFraction: 0.2, HotWeight: 0.9,
		Accesses: 5000, Seed: 3,
	}.Run(p, textPage)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != 5000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	// 20% of 256 = 51 hot pages fit in the 64 resident frames: the hot
	// set stays expanded, so the expansion rate must be well below the
	// cold access share.
	if r := st.ExpansionRate(); r > 0.25 {
		t.Fatalf("expansion rate %.2f too high for a cached hot set", r)
	}
	// 842 on prose reaches ~1.5x per page; with a quarter of frames held
	// uncompressed the pool-level factor lands near 1.3.
	if f := st.ExpansionFactor(); f < 1.25 {
		t.Fatalf("expansion factor %.2f", f)
	}
	if st.EngineCycles <= 0 {
		t.Fatal("no engine cycles charged")
	}
}

func TestWorkloadUniformThrashes(t *testing.T) {
	mk := func(hotWeight float64) float64 {
		cfg := DefaultConfig()
		cfg.UncompressedTarget = 32
		p := New(cfg)
		st, err := Workload{
			Pages: 256, HotFraction: 0.1, HotWeight: hotWeight,
			Accesses: 4000, Seed: 9,
		}.Run(p, textPage)
		if err != nil {
			t.Fatal(err)
		}
		return st.ExpansionRate()
	}
	skewed, uniform := mk(0.95), mk(0.1)
	if uniform <= skewed {
		t.Fatalf("uniform access (%.3f) should thrash more than skewed (%.3f)", uniform, skewed)
	}
}

func TestConservationInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UncompressedTarget = 16
	p := New(cfg)
	st, err := Workload{Pages: 128, HotFraction: 0.3, HotWeight: 0.8, Accesses: 2000, Seed: 1}.Run(p, textPage)
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalBytes != 128*4096 {
		t.Fatalf("logical bytes %d", st.LogicalBytes)
	}
	if st.UncompBytes < 0 || st.PoolBytes < 0 {
		t.Fatalf("negative occupancy: %d / %d", st.UncompBytes, st.PoolBytes)
	}
	if st.UncompBytes+st.PoolBytes > st.LogicalBytes {
		t.Fatal("physical use exceeds logical: accounting broken")
	}
	if got := int64(p.residentCount()) * 4096; got != st.UncompBytes {
		t.Fatalf("resident bytes %d vs LRU count %d", st.UncompBytes, got)
	}
}
