package x842

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, name string, src []byte) []byte {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatalf("%s: decompress: %v", name, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s: round-trip mismatch (%d vs %d bytes)", name, len(got), len(src))
	}
	return comp
}

func TestRoundTripBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	random := make([]byte, 40000)
	rng.Read(random)
	patterned := make([]byte, 40000)
	for i := range patterned {
		patterned[i] = byte(i / 64)
	}
	cases := map[string][]byte{
		"empty":     {},
		"one":       {0xAB},
		"seven":     []byte("1234567"),
		"eight":     []byte("12345678"),
		"nine":      []byte("123456789"),
		"zeros":     make([]byte, 8192),
		"repeat":    bytes.Repeat([]byte("ABCDEFGH"), 3000),
		"random":    random,
		"patterned": patterned,
		"text":      bytes.Repeat([]byte("the 842 format works on 8-byte phrases. "), 500),
	}
	for name, src := range cases {
		roundTrip(t, name, src)
	}
}

func TestCompressesZeros(t *testing.T) {
	src := make([]byte, 65536)
	comp := roundTrip(t, "zeros", src)
	if len(comp) > len(src)/50 {
		t.Fatalf("zeros compressed to %d bytes, want < 2%%", len(comp))
	}
}

func TestCompressesRepeats(t *testing.T) {
	src := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 8192)
	comp := roundTrip(t, "repeats", src)
	if len(comp) > len(src)/40 {
		t.Fatalf("repeats compressed to %d bytes of %d", len(comp), len(src))
	}
}

func TestRandomDataExpansionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 32768)
	rng.Read(src)
	comp := roundTrip(t, "random", src)
	// Worst case per phrase: 5 op bits + 64 data bits = 69/64 expansion.
	if len(comp) > len(src)*69/64+16 {
		t.Fatalf("expansion %d -> %d exceeds template bound", len(src), len(comp))
	}
}

func TestFifoReferencesAcrossWindow(t *testing.T) {
	// Chunks recur at spacings straddling each fifo window size.
	var src []byte
	marker := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	filler := make([]byte, 8)
	rng := rand.New(rand.NewSource(5))
	for _, gap := range []int{16, 256, 504, 512, 2040, 2048, 4096} {
		src = append(src, marker...)
		for i := 0; i < gap; i += 8 {
			rng.Read(filler)
			src = append(src, filler...)
		}
		src = append(src, marker...)
	}
	roundTrip(t, "fifo windows", src)
}

func TestRepeatRunLongerThanMax(t *testing.T) {
	// More than 64 repeats forces multiple repeat ops.
	src := bytes.Repeat([]byte("REPEATME"), 1000)
	roundTrip(t, "long repeat", src)
}

func TestShortDataAllLengths(t *testing.T) {
	for tail := 0; tail < 8; tail++ {
		src := append(bytes.Repeat([]byte{9}, 32), make([]byte, tail)...)
		for i := range src[32:] {
			src[32+i] = byte(i + 1)
		}
		roundTrip(t, "tail", src)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	panicked := 0
	for i := 0; i < 300; i++ {
		garbage := make([]byte, rng.Intn(100)+1)
		rng.Read(garbage)
		func() {
			defer func() {
				if recover() != nil {
					panicked++
				}
			}()
			_, _ = Decompress(garbage, 1<<20)
		}()
	}
	if panicked > 0 {
		t.Fatalf("%d/300 garbage inputs caused panics", panicked)
	}
}

func TestDecompressTruncated(t *testing.T) {
	src := bytes.Repeat([]byte("TRUNCATE"), 100)
	comp := Compress(src)
	for cut := 1; cut < len(comp); cut += 7 {
		if _, err := Decompress(comp[:cut], 0); err == nil {
			// A truncated stream may decode cleanly only if the cut
			// happens to land after an END op, which never occurs here
			// because END is the final operation.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecompressOutputLimit(t *testing.T) {
	src := make([]byte, 100000)
	comp := Compress(src)
	if _, err := Decompress(comp, 100); err == nil {
		t.Fatal("output limit not enforced")
	}
}

func TestRepeatWithNoPrevious(t *testing.T) {
	w := &msbWriter{}
	w.writeBits(opRepeat, opBits)
	w.writeBits(3, repeatBits)
	w.writeBits(opEnd, opBits)
	if _, err := Decompress(w.bytes(), 0); err == nil {
		t.Fatal("repeat with no previous phrase accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(src)
		got, err := Decompress(comp, 0)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripStructuredProperty(t *testing.T) {
	// Inputs with heavy chunk reuse to exercise all index paths.
	rng := rand.New(rand.NewSource(8))
	dict := make([][]byte, 16)
	for i := range dict {
		dict[i] = make([]byte, 2)
		rng.Read(dict[i])
	}
	for trial := 0; trial < 100; trial++ {
		var src []byte
		n := rng.Intn(6000)
		for len(src) < n {
			src = append(src, dict[rng.Intn(len(dict))]...)
		}
		roundTrip(t, "structured", src)
	}
}

func TestResolveIndexSymmetry(t *testing.T) {
	// fifoIndex (encoder) and resolveIndex (decoder) must be inverse for
	// every valid candidate/total pair.
	for _, chunk := range []int{2, 4, 8} {
		fsize := map[int]int{2: fifo2Size, 4: fifo4Size, 8: fifo8Size}[chunk]
		for total := chunk; total < 3*fsize; total += chunk * 3 {
			for cand := 0; cand+chunk <= total; cand += chunk {
				idx := fifoIndex(cand, total, chunk, fsize)
				if idx < 0 {
					continue
				}
				got, err := resolveIndex(idx, total, chunk, fsize)
				if err != nil {
					t.Fatalf("chunk %d total %d cand %d: %v", chunk, total, cand, err)
				}
				if got != cand {
					t.Fatalf("chunk %d total %d cand %d: resolved to %d", chunk, total, cand, got)
				}
			}
		}
	}
}

func TestMSBBitIO(t *testing.T) {
	w := &msbWriter{}
	w.writeBits(0b10110, 5)
	w.writeBits(0b001, 3)
	got := w.bytes()
	if len(got) != 1 || got[0] != 0b10110001 {
		t.Fatalf("got %08b", got[0])
	}
	r := &msbReader{data: got}
	v, err := r.readBits(5)
	if err != nil || v != 0b10110 {
		t.Fatalf("read %05b err %v", v, err)
	}
	v, err = r.readBits(3)
	if err != nil || v != 0b001 {
		t.Fatalf("read %03b err %v", v, err)
	}
	if _, err := r.readBits(1); err != ErrTruncated {
		t.Fatalf("expected ErrTruncated, got %v", err)
	}
}

func TestTemplateTableConsistency(t *testing.T) {
	// Every template's actions must cover exactly 8 bytes.
	for op, tmpl := range templates {
		total := 0
		for _, a := range tmpl {
			total += actionBytes[a]
		}
		if total != 8 {
			t.Fatalf("template %#x covers %d bytes", op, total)
		}
	}
}

func TestD8Roundtrip(t *testing.T) {
	// A phrase with no possible matches uses the D8 template; verify the
	// 57/7 split is lossless for values with high bits set.
	var src [16]byte
	binary.BigEndian.PutUint64(src[0:], 0xFFFFFFFFFFFFFFFF)
	binary.BigEndian.PutUint64(src[8:], 0x8000000000000001)
	roundTrip(t, "d8", src[:])
}

func BenchmarkCompress842(b *testing.B) {
	src := bytes.Repeat([]byte("the 842 format works on 8-byte phrases. "), 1600)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompress842(b *testing.B) {
	src := bytes.Repeat([]byte("the 842 format works on 8-byte phrases. "), 1600)
	comp := Compress(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, 0); err != nil {
			b.Fatal(err)
		}
	}
}
