package x842

import (
	"bytes"
	"testing"
)

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("12345678"))
	f.Add(bytes.Repeat([]byte("ABCD"), 100))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			src = src[:1<<16]
		}
		comp := Compress(src)
		got, err := Decompress(comp, 0)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round-trip mismatch")
		}
	})
}

func FuzzDecompressRobust(f *testing.F) {
	comp := Compress(bytes.Repeat([]byte("8bytesat"), 64))
	f.Add(comp)
	bad := append([]byte{}, comp...)
	if len(bad) > 3 {
		bad[3] ^= 0x55
	}
	f.Add(bad)
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Invariant: never panic, never exceed the output bound.
		out, err := Decompress(data, 1<<18)
		if err == nil && len(out) > 1<<18 {
			t.Fatalf("output %d exceeds bound", len(out))
		}
	})
}
