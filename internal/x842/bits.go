// Package x842 implements the IBM 842 compression format, the second
// engine in the POWER NX accelerator (used by AIX/Linux for active memory
// expansion and zswap). 842 trades ratio for extreme simplicity: input is
// processed in 8-byte phrases, each encoded by a 5-bit template that mixes
// literal data with short back-references into small ring buffers
// ("fifos") of recently seen 2-, 4- and 8-byte chunks.
//
// The format follows the Linux kernel's software 842 implementation
// (lib/842): 26 data templates plus OP_REPEAT, OP_ZEROS, OP_SHORT_DATA and
// OP_END, an MSB-first bit stream, and ring-buffer index semantics with
// fifo sizes of 512/2048/2048 bytes for 2/4/8-byte chunks.
package x842

import "errors"

// ErrTruncated is returned when the stream ends mid-operation.
var ErrTruncated = errors.New("x842: truncated stream")

// msbWriter packs bits MSB-first (842's bit order, unlike DEFLATE).
type msbWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func (w *msbWriter) writeBits(v uint64, n uint) {
	if n > 57 {
		panic("x842: writeBits count out of range")
	}
	v &= (1 << n) - 1
	w.acc |= v << (64 - w.nacc - n)
	w.nacc += n
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
		w.nacc -= 8
	}
}

// bytes flushes with zero padding to the next byte and returns the buffer.
func (w *msbWriter) bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// msbReader consumes bits MSB-first.
type msbReader struct {
	data []byte
	pos  int
	acc  uint64
	nacc uint
}

func (r *msbReader) readBits(n uint) (uint64, error) {
	if n > 57 {
		panic("x842: readBits count out of range")
	}
	for r.nacc < n {
		if r.pos >= len(r.data) {
			return 0, ErrTruncated
		}
		r.acc |= uint64(r.data[r.pos]) << (56 - r.nacc)
		r.pos++
		r.nacc += 8
	}
	v := r.acc >> (64 - n)
	r.acc <<= n
	r.nacc -= n
	return v, nil
}
