package x842

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Stream opcodes (5 bits). 0x00..0x19 are data templates; the rest are
// control operations.
const (
	opRepeat    = 0x1B // repeat previous 8-byte phrase, 6-bit count
	opZeros     = 0x1C // eight zero bytes
	opShortData = 0x1D // 3-bit count, then count literal bytes (tail)
	opEnd       = 0x1E // end of stream

	opBits        = 5
	repeatBits    = 6
	shortDataBits = 3
	maxRepeat     = 1 << repeatBits
)

// Template actions.
const (
	actD8 = iota // 64 bits of literal data
	actD4        // 32 bits of literal data
	actD2        // 16 bits of literal data
	actI2        // 8-bit index into the 2-byte fifo
	actI4        // 9-bit index into the 4-byte fifo
	actI8        // 8-bit index into the 8-byte fifo
	actN0        // no action (template padding)
)

// action bit costs and chunk sizes.
var (
	actionBits  = [7]uint{64, 32, 16, 8, 9, 8, 0}
	actionBytes = [7]int{8, 4, 2, 2, 4, 8, 0}
)

// fifo geometry: entries * chunk size = window bytes.
const (
	i2Bits, i4Bits, i8Bits = 8, 9, 8
	fifo2Size              = (1 << i2Bits) * 2 // 512 B
	fifo4Size              = (1 << i4Bits) * 4 // 2048 B
	fifo8Size              = (1 << i8Bits) * 8 // 2048 B
)

// templates maps opcode -> four actions, in phrase order. This is the
// table from the 842 specification (and lib/842/842.h).
var templates = [26][4]uint8{
	{actD8, actN0, actN0, actN0}, // 0x00
	{actD4, actD2, actI2, actN0}, // 0x01
	{actD4, actI2, actD2, actN0}, // 0x02
	{actD4, actI2, actI2, actN0}, // 0x03
	{actD4, actI4, actN0, actN0}, // 0x04
	{actD2, actI2, actD4, actN0}, // 0x05
	{actD2, actI2, actD2, actI2}, // 0x06
	{actD2, actI2, actI2, actD2}, // 0x07
	{actD2, actI2, actI2, actI2}, // 0x08
	{actD2, actI2, actI4, actN0}, // 0x09
	{actI2, actD2, actD4, actN0}, // 0x0A
	{actI2, actD4, actI2, actN0}, // 0x0B
	{actI2, actD2, actI2, actD2}, // 0x0C
	{actI2, actD2, actI2, actI2}, // 0x0D
	{actI2, actD2, actI4, actN0}, // 0x0E
	{actI2, actI2, actD4, actN0}, // 0x0F
	{actI2, actI2, actD2, actI2}, // 0x10
	{actI2, actI2, actI2, actD2}, // 0x11
	{actI2, actI2, actI2, actI2}, // 0x12
	{actI2, actI2, actI4, actN0}, // 0x13
	{actI4, actD4, actN0, actN0}, // 0x14
	{actI4, actD2, actI2, actN0}, // 0x15
	{actI4, actI2, actD2, actN0}, // 0x16
	{actI4, actI2, actI2, actN0}, // 0x17
	{actI4, actI4, actN0, actN0}, // 0x18
	{actI8, actN0, actN0, actN0}, // 0x19
}

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("x842: corrupt stream")

// Compress encodes src in 842 format. The output always ends with OP_END
// and is padded to a byte boundary.
func Compress(src []byte) []byte {
	w := &msbWriter{buf: make([]byte, 0, len(src)/2+16)}
	e := &encoder{w: w, src: src}
	e.run()
	return w.bytes()
}

type encoder struct {
	w   *msbWriter
	src []byte
	// hash maps from chunk value to the most recent aligned position.
	h2  map[uint16]int
	h4  map[uint32]int
	h8  map[uint64]int
	pos int
}

func (e *encoder) run() {
	e.h2 = make(map[uint16]int)
	e.h4 = make(map[uint32]int)
	e.h8 = make(map[uint64]int)
	src := e.src
	var prev uint64
	havePrev := false
	for e.pos+8 <= len(src) {
		chunk := binary.BigEndian.Uint64(src[e.pos:])
		if havePrev && chunk == prev {
			// Collapse a run of identical phrases into repeat ops.
			count := 0
			for count < maxRepeat && e.pos+8 <= len(src) &&
				binary.BigEndian.Uint64(src[e.pos:]) == chunk {
				count++
				e.indexPhrase(e.pos)
				e.pos += 8
			}
			e.w.writeBits(opRepeat, opBits)
			e.w.writeBits(uint64(count-1), repeatBits)
			continue
		}
		if chunk == 0 {
			e.w.writeBits(opZeros, opBits)
			e.indexPhrase(e.pos)
			e.pos += 8
			prev, havePrev = 0, true
			continue
		}
		e.encodePhrase(e.pos)
		e.indexPhrase(e.pos)
		e.pos += 8
		prev, havePrev = chunk, true
	}
	if tail := len(src) - e.pos; tail > 0 {
		e.w.writeBits(opShortData, opBits)
		e.w.writeBits(uint64(tail), shortDataBits)
		for _, b := range src[e.pos:] {
			e.w.writeBits(uint64(b), 8)
		}
	}
	e.w.writeBits(opEnd, opBits)
}

// fifoIndex returns the stream index for a candidate position, or -1 if
// the candidate has fallen out of the ring window. total is the number of
// phrase-aligned bytes emitted so far.
func fifoIndex(cand, total, chunk, fsize int) int {
	if cand < 0 || cand+chunk > total {
		return -1
	}
	if total-cand > fsize {
		return -1
	}
	return (cand % fsize) / chunk
}

// sub-chunk availability for the current phrase.
type phrasePlan struct {
	i2 [4]int // index or -1 per 2-byte quarter
	i4 [2]int // per 4-byte half
	i8 int
}

func (e *encoder) plan(pos int) phrasePlan {
	var p phrasePlan
	total := pos // bytes fully emitted (phrase-aligned since pos is)
	src := e.src
	for q := 0; q < 4; q++ {
		v := binary.BigEndian.Uint16(src[pos+2*q:])
		cand, ok := e.h2[v]
		p.i2[q] = -1
		if ok {
			p.i2[q] = fifoIndex(cand, total, 2, fifo2Size)
		}
	}
	for h := 0; h < 2; h++ {
		v := binary.BigEndian.Uint32(src[pos+4*h:])
		cand, ok := e.h4[v]
		p.i4[h] = -1
		if ok {
			p.i4[h] = fifoIndex(cand, total, 4, fifo4Size)
		}
	}
	v := binary.BigEndian.Uint64(src[pos:])
	p.i8 = -1
	if cand, ok := e.h8[v]; ok {
		p.i8 = fifoIndex(cand, total, 8, fifo8Size)
	}
	return p
}

// encodePhrase picks the cheapest template for the 8 bytes at pos and
// writes it.
func (e *encoder) encodePhrase(pos int) {
	p := e.plan(pos)
	bestOp, bestCost := 0x00, uint(opBits)+64 // D8 fallback
	for op := 1; op < len(templates); op++ {
		cost, ok := templateCost(templates[op], p)
		if ok && cost < bestCost {
			bestOp, bestCost = op, cost
		}
	}
	e.w.writeBits(uint64(bestOp), opBits)
	e.writeActions(templates[bestOp], p, pos)
}

// templateCost returns the bit cost of a template given availability.
func templateCost(t [4]uint8, p phrasePlan) (uint, bool) {
	cost := uint(opBits)
	off := 0 // byte offset inside phrase
	for _, a := range t {
		switch a {
		case actI2:
			if p.i2[off/2] < 0 {
				return 0, false
			}
		case actI4:
			if p.i4[off/4] < 0 {
				return 0, false
			}
		case actI8:
			if p.i8 < 0 {
				return 0, false
			}
		}
		cost += actionBits[a]
		off += actionBytes[a]
	}
	return cost, true
}

func (e *encoder) writeActions(t [4]uint8, p phrasePlan, pos int) {
	off := 0
	src := e.src
	for _, a := range t {
		switch a {
		case actD8:
			// 64 bits exceed the single-call limit; split high 57 + low 7.
			v := binary.BigEndian.Uint64(src[pos+off:])
			e.w.writeBits(v>>7, 57)
			e.w.writeBits(v&0x7F, 7)
		case actD4:
			e.w.writeBits(uint64(binary.BigEndian.Uint32(src[pos+off:])), 32)
		case actD2:
			e.w.writeBits(uint64(binary.BigEndian.Uint16(src[pos+off:])), 16)
		case actI2:
			e.w.writeBits(uint64(p.i2[off/2]), i2Bits)
		case actI4:
			e.w.writeBits(uint64(p.i4[off/4]), i4Bits)
		case actI8:
			e.w.writeBits(uint64(p.i8), i8Bits)
		}
		off += actionBytes[a]
	}
}

// indexPhrase records the phrase's sub-chunks in the hash tables.
func (e *encoder) indexPhrase(pos int) {
	src := e.src
	for q := 0; q < 4; q++ {
		e.h2[binary.BigEndian.Uint16(src[pos+2*q:])] = pos + 2*q
	}
	for h := 0; h < 2; h++ {
		e.h4[binary.BigEndian.Uint32(src[pos+4*h:])] = pos + 4*h
	}
	e.h8[binary.BigEndian.Uint64(src[pos:])] = pos
}

// Decompress decodes an 842 stream. maxOutput bounds the result
// (0 = 256 MiB default).
func Decompress(src []byte, maxOutput int) ([]byte, error) {
	if maxOutput <= 0 {
		maxOutput = 256 << 20
	}
	r := &msbReader{data: src}
	out := make([]byte, 0, len(src)*2)
	for {
		op, err := r.readBits(opBits)
		if err != nil {
			return nil, fmt.Errorf("%w: opcode", ErrCorrupt)
		}
		switch {
		case op < uint64(len(templates)):
			if len(out)+8 > maxOutput {
				return nil, fmt.Errorf("x842: output exceeds %d bytes", maxOutput)
			}
			out, err = decodePhrase(r, out, templates[op])
			if err != nil {
				return nil, err
			}
		case op == opRepeat:
			n, err := r.readBits(repeatBits)
			if err != nil {
				return nil, fmt.Errorf("%w: repeat count", ErrCorrupt)
			}
			if len(out) < 8 {
				return nil, fmt.Errorf("%w: repeat with no previous phrase", ErrCorrupt)
			}
			count := int(n) + 1
			if len(out)+8*count > maxOutput {
				return nil, fmt.Errorf("x842: output exceeds %d bytes", maxOutput)
			}
			phrase := out[len(out)-8:]
			var tmp [8]byte
			copy(tmp[:], phrase)
			for i := 0; i < count; i++ {
				out = append(out, tmp[:]...)
			}
		case op == opZeros:
			if len(out)+8 > maxOutput {
				return nil, fmt.Errorf("x842: output exceeds %d bytes", maxOutput)
			}
			out = append(out, 0, 0, 0, 0, 0, 0, 0, 0)
		case op == opShortData:
			n, err := r.readBits(shortDataBits)
			if err != nil {
				return nil, fmt.Errorf("%w: short-data count", ErrCorrupt)
			}
			if n == 0 {
				return nil, fmt.Errorf("%w: zero-length short data", ErrCorrupt)
			}
			for i := uint64(0); i < n; i++ {
				b, err := r.readBits(8)
				if err != nil {
					return nil, fmt.Errorf("%w: short data", ErrCorrupt)
				}
				if len(out)+1 > maxOutput {
					return nil, fmt.Errorf("x842: output exceeds %d bytes", maxOutput)
				}
				out = append(out, byte(b))
			}
		case op == opEnd:
			return out, nil
		default:
			return nil, fmt.Errorf("%w: reserved opcode %#x", ErrCorrupt, op)
		}
	}
}

func decodePhrase(r *msbReader, out []byte, t [4]uint8) ([]byte, error) {
	phraseStart := len(out)
	for _, a := range t {
		switch a {
		case actN0:
		case actD8:
			hi, err := r.readBits(57)
			if err != nil {
				return nil, fmt.Errorf("%w: D8", ErrCorrupt)
			}
			lo, err := r.readBits(7)
			if err != nil {
				return nil, fmt.Errorf("%w: D8", ErrCorrupt)
			}
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], hi<<7|lo)
			out = append(out, b[:]...)
		case actD4:
			v, err := r.readBits(32)
			if err != nil {
				return nil, fmt.Errorf("%w: D4", ErrCorrupt)
			}
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(v))
			out = append(out, b[:]...)
		case actD2:
			v, err := r.readBits(16)
			if err != nil {
				return nil, fmt.Errorf("%w: D2", ErrCorrupt)
			}
			out = append(out, byte(v>>8), byte(v))
		case actI2, actI4, actI8:
			bits, chunk, fsize := uint(i2Bits), 2, fifo2Size
			if a == actI4 {
				bits, chunk, fsize = i4Bits, 4, fifo4Size
			} else if a == actI8 {
				bits, chunk, fsize = i8Bits, 8, fifo8Size
			}
			idx, err := r.readBits(bits)
			if err != nil {
				return nil, fmt.Errorf("%w: index", ErrCorrupt)
			}
			offset, err := resolveIndex(int(idx), phraseStart, chunk, fsize)
			if err != nil {
				return nil, err
			}
			out = append(out, out[offset:offset+chunk]...)
		}
	}
	return out, nil
}

// resolveIndex converts a ring-buffer index into an absolute offset, using
// the same section arithmetic as the kernel decoder. total is the number
// of phrase-aligned bytes produced before the current phrase.
func resolveIndex(idx, total, chunk, fsize int) (int, error) {
	offset := idx * chunk
	if total > fsize {
		section := total - total%fsize
		pos := total - section
		if offset >= pos {
			section -= fsize
		}
		offset += section
	}
	if offset < 0 || offset+chunk > total {
		return 0, fmt.Errorf("%w: index references %d beyond %d", ErrCorrupt, offset, total)
	}
	return offset, nil
}
