package huffman

import (
	"math"
	"math/rand"
	"testing"
)

// weightedLength computes sum(freq_i * len_i).
func weightedLength(freqs []int64, lengths []uint8) int64 {
	var total int64
	for i, f := range freqs {
		total += f * int64(lengths[i])
	}
	return total
}

// entropyBits computes the Shannon bound sum(-f log2(f/N)) for the
// message.
func entropyBits(freqs []int64) float64 {
	var n int64
	for _, f := range freqs {
		n += f
	}
	if n == 0 {
		return 0
	}
	var h float64
	for _, f := range freqs {
		if f == 0 {
			continue
		}
		p := float64(f) / float64(n)
		h += -float64(f) * math.Log2(p)
	}
	return h
}

// bruteForceOptimal finds the optimal prefix-code cost for tiny alphabets
// by exhaustive Huffman construction (which is optimal by definition —
// this re-derives it with a simple O(n^2) min-merge to cross-check the
// heap/tiebreak implementation).
func bruteForceOptimal(freqs []int64) int64 {
	var weights []int64
	for _, f := range freqs {
		if f > 0 {
			weights = append(weights, f)
		}
	}
	if len(weights) <= 1 {
		if len(weights) == 1 {
			return weights[0] // single symbol: 1 bit each
		}
		return 0
	}
	var cost int64
	for len(weights) > 1 {
		// find two smallest
		i1, i2 := 0, 1
		if weights[i2] < weights[i1] {
			i1, i2 = i2, i1
		}
		for j := 2; j < len(weights); j++ {
			if weights[j] < weights[i1] {
				i2 = i1
				i1 = j
			} else if weights[j] < weights[i2] {
				i2 = j
			}
		}
		merged := weights[i1] + weights[i2]
		cost += merged
		// remove i1, i2 (order-safe)
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		weights = append(weights[:i2], weights[i2+1:]...)
		weights = append(weights[:i1], weights[i1+1:]...)
		weights = append(weights, merged)
	}
	return cost
}

// TestOptimalAgainstBruteForce: when the 15-bit limit does not bind, the
// built code's weighted length must equal the true Huffman optimum.
func TestOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(24) + 2
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(100))
		}
		live := 0
		for _, f := range freqs {
			if f > 0 {
				live++
			}
		}
		if live < 2 {
			continue
		}
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// With <= 25 similar-magnitude weights the natural depth stays
		// well under 15, so the limiter cannot have engaged unless the
		// weights are wildly skewed — skip those rare cases.
		maxLen := uint8(0)
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen >= 15 {
			continue
		}
		got := weightedLength(freqs, lengths)
		want := bruteForceOptimal(freqs)
		if got != want {
			t.Fatalf("trial %d: weighted length %d, optimal %d (freqs %v)", trial, got, want, freqs)
		}
	}
}

// TestEntropyBound: any prefix code costs at least the Shannon entropy,
// and an optimal Huffman code costs less than entropy + 1 bit/symbol.
func TestEntropyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200) + 2
		freqs := make([]int64, n)
		var total int64
		for i := range freqs {
			freqs[i] = int64(rng.Intn(1000))
			total += freqs[i]
		}
		if total == 0 {
			continue
		}
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(weightedLength(freqs, lengths))
		h := entropyBits(freqs)
		if got < h-1e-6 {
			t.Fatalf("trial %d: code %f bits beats entropy %f", trial, got, h)
		}
		if got > h+float64(total)+1e-6 {
			t.Fatalf("trial %d: code %f bits exceeds entropy+1/symbol bound (%f + %d)", trial, got, h, total)
		}
	}
}

// TestLimitedCodeCloseToOptimal: even when the length limit binds hard,
// the repaired code must stay within a small factor of optimal.
func TestLimitedCodeCloseToOptimal(t *testing.T) {
	// Heavily skewed: powers of 4 force deep trees.
	freqs := make([]int64, 16)
	f := int64(1)
	for i := range freqs {
		freqs[i] = f
		f *= 4
	}
	limited, err := BuildLengths(freqs, 7) // forces repair
	if err != nil {
		t.Fatal(err)
	}
	free, err := BuildLengths(freqs, 32)
	if err != nil {
		t.Fatal(err)
	}
	lcost := weightedLength(freqs, limited)
	fcost := weightedLength(freqs, free)
	if lcost < fcost {
		t.Fatalf("limited code cheaper than unconstrained: %d < %d", lcost, fcost)
	}
	if float64(lcost) > 1.30*float64(fcost) {
		t.Fatalf("limited code %d more than 30%% above optimal %d", lcost, fcost)
	}
	for _, l := range limited {
		if l > 7 {
			t.Fatalf("limit violated: %d", l)
		}
	}
}

// TestDecoderEncoderTableAgreement: the decoder must accept exactly the
// codes the encoder assigns, for random valid length vectors.
func TestDecoderEncoderTableAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100) + 2
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(50) + 1)
		}
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := NewEncoder(lengths)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(lengths, 9)
		if err != nil {
			t.Fatal(err)
		}
		if dec.NumSymbols() != n {
			t.Fatalf("decoder sees %d symbols, want %d", dec.NumSymbols(), n)
		}
		// Spot-check a handful of symbols end to end.
		for k := 0; k < 16; k++ {
			sym := rng.Intn(n)
			c := enc.Codes[sym]
			src := &singleCode{v: uint64(c.Bits), n: uint(c.Len)}
			got, err := dec.Decode(src)
			if err != nil {
				t.Fatalf("decode sym %d: %v", sym, err)
			}
			if got != sym {
				t.Fatalf("decode got %d want %d", got, sym)
			}
		}
	}
}

// singleCode is a BitSource yielding one code then zeros.
type singleCode struct {
	v    uint64
	n    uint
	used uint
}

func (s *singleCode) PeekBits(n uint) (uint64, uint) {
	rem := s.n - s.used
	v := s.v >> s.used
	if n < rem {
		return v & ((1 << n) - 1), n
	}
	return v, rem
}

func (s *singleCode) SkipBits(n uint) error {
	s.used += n
	return nil
}
