package huffman

import "fmt"

// Code is one canonical Huffman code: the code bits (already bit-reversed
// for LSB-first emission into a DEFLATE stream) and its length in bits.
type Code struct {
	Bits uint16 // reversed code value, ready for bitio.Writer.WriteBits
	Len  uint8  // 0 means the symbol has no code
}

// Encoder maps symbols to canonical codes.
type Encoder struct {
	Codes   []Code
	Lengths []uint8
}

// NewEncoder assigns canonical codes to the given code lengths, following
// the DEFLATE convention: shorter codes first, ties broken by symbol order,
// codes counted upward within each length.
func NewEncoder(lengths []uint8) (*Encoder, error) {
	maxLen := uint8(0)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen == 0 {
		return &Encoder{Codes: make([]Code, len(lengths)), Lengths: lengths}, nil
	}
	if maxLen > 31 {
		return nil, fmt.Errorf("huffman: code length %d too large", maxLen)
	}
	counts := make([]uint32, maxLen+1)
	for _, l := range lengths {
		counts[l]++
	}
	counts[0] = 0
	// first code of each length
	next := make([]uint32, maxLen+2)
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + counts[l-1]) << 1
		next[l] = code
	}
	// over-subscription check
	if k := KraftSum(lengths, int(maxLen)); k > 1<<maxLen {
		return nil, fmt.Errorf("huffman: over-subscribed code (kraft %d > %d)", k, 1<<maxLen)
	}
	codes := make([]Code, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		c := next[l]
		next[l]++
		codes[sym] = Code{Bits: uint16(reverse16(uint16(c), uint(l))), Len: l}
	}
	return &Encoder{Codes: codes, Lengths: lengths}, nil
}

func reverse16(v uint16, n uint) uint16 {
	var out uint16
	for i := uint(0); i < n; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}

// TotalBits returns the encoded size in bits of a message with the given
// per-symbol frequencies under this code (without any header cost).
func (e *Encoder) TotalBits(freqs []int64) int64 {
	var total int64
	for sym, f := range freqs {
		if f == 0 {
			continue
		}
		total += f * int64(e.Codes[sym].Len)
	}
	return total
}
