package huffman

import (
	"fmt"
	"sort"
)

// BuildLengthsOptimal computes *optimal* length-limited Huffman code
// lengths with the package-merge algorithm (Larmore & Hirschberg 1990).
//
// BuildLengths uses the zlib-style overflow repair, which is what cheap
// hardware table generators implement: build the unconstrained tree, clamp,
// and re-balance. Package-merge is provably optimal under the limit but
// needs O(n·maxBits) sorted merges — more area/latency than a DHT
// generator wants to spend. Ablation A9 measures how little ratio the
// heuristic actually gives up, which is exactly why the hardware can
// afford it.
func BuildLengthsOptimal(freqs []int64, maxBits int) ([]uint8, error) {
	if maxBits < 1 || maxBits > 32 {
		return nil, fmt.Errorf("huffman: maxBits %d out of range", maxBits)
	}
	n := len(freqs)
	lengths := make([]uint8, n)
	type item struct {
		sym  int
		freq int64
	}
	var live []item
	for i, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			live = append(live, item{i, f})
		}
	}
	switch len(live) {
	case 0:
		return lengths, nil
	case 1:
		lengths[live[0].sym] = 1
		return lengths, nil
	}
	if len(live) > 1<<maxBits {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d bits", len(live), maxBits)
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].freq != live[j].freq {
			return live[i].freq < live[j].freq
		}
		return live[i].sym < live[j].sym
	})

	// node is a coin in package-merge: either an original symbol (leaf)
	// or a package of two nodes from the previous level.
	type node struct {
		weight int64
		// count[i] tallies how many times leaf i (index into live)
		// participates in this package. To keep memory sane we track leaf
		// multiplicity via child pointers instead.
		left, right *node
		leaf        int // index into live, -1 for packages
	}
	mkLeafRow := func() []*node {
		row := make([]*node, len(live))
		for i, it := range live {
			row[i] = &node{weight: it.freq, leaf: i}
		}
		return row
	}

	// Level by level: prev = packages+leaves of level l+1 merged pairwise,
	// each level also contains all original leaves.
	prev := mkLeafRow()
	for level := 1; level < maxBits; level++ {
		var packages []*node
		for i := 0; i+1 < len(prev); i += 2 {
			packages = append(packages, &node{
				weight: prev[i].weight + prev[i+1].weight,
				left:   prev[i], right: prev[i+1],
				leaf: -1,
			})
		}
		leaves := mkLeafRow()
		merged := make([]*node, 0, len(packages)+len(leaves))
		li, pi := 0, 0
		for li < len(leaves) || pi < len(packages) {
			switch {
			case pi >= len(packages):
				merged = append(merged, leaves[li])
				li++
			case li >= len(leaves):
				merged = append(merged, packages[pi])
				pi++
			case leaves[li].weight <= packages[pi].weight:
				merged = append(merged, leaves[li])
				li++
			default:
				merged = append(merged, packages[pi])
				pi++
			}
		}
		prev = merged
	}

	// Take the first 2(n-1) items of the final row; each leaf occurrence
	// adds one bit to that symbol's length.
	take := 2 * (len(live) - 1)
	if take > len(prev) {
		return nil, fmt.Errorf("huffman: package-merge underflow (%d of %d)", take, len(prev))
	}
	depth := make([]int, len(live))
	var count func(nd *node)
	count = func(nd *node) {
		if nd.leaf >= 0 {
			depth[nd.leaf]++
			return
		}
		count(nd.left)
		count(nd.right)
	}
	for i := 0; i < take; i++ {
		count(prev[i])
	}
	for i, d := range depth {
		if d < 1 || d > maxBits {
			return nil, fmt.Errorf("huffman: package-merge produced depth %d for symbol %d", d, live[i].sym)
		}
		lengths[live[i].sym] = uint8(d)
	}
	if k := KraftSum(lengths, maxBits); k != 1<<maxBits {
		return nil, fmt.Errorf("huffman: package-merge kraft %d != %d", k, 1<<maxBits)
	}
	return lengths, nil
}
