package huffman

import (
	"math/rand"
	"testing"
)

func TestPackageMergeMatchesHuffmanWhenUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40) + 2
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(200))
		}
		live := 0
		for _, f := range freqs {
			if f > 0 {
				live++
			}
		}
		if live < 2 {
			continue
		}
		opt, err := BuildLengthsOptimal(freqs, 20)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		heur, err := BuildLengths(freqs, 20)
		if err != nil {
			t.Fatal(err)
		}
		if weightedLength(freqs, opt) != weightedLength(freqs, heur) {
			// With a loose limit both must be exactly optimal.
			t.Fatalf("trial %d: package-merge %d != huffman %d",
				trial, weightedLength(freqs, opt), weightedLength(freqs, heur))
		}
	}
}

func TestPackageMergeNeverWorseThanRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	worseCount := 0
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60) + 4
		freqs := make([]int64, n)
		// Skewed frequencies to engage the limit.
		f := int64(1)
		for i := range freqs {
			freqs[i] = f
			if rng.Intn(2) == 0 {
				f = f*2 + int64(rng.Intn(3))
			}
		}
		maxBits := rng.Intn(6) + 6 // 6..11: tight limits
		if n > 1<<maxBits {
			continue
		}
		opt, err := BuildLengthsOptimal(freqs, maxBits)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		heur, err := BuildLengths(freqs, maxBits)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range opt {
			if int(l) > maxBits {
				t.Fatalf("trial %d: optimal length %d exceeds %d", trial, l, maxBits)
			}
			_ = i
		}
		co, ch := weightedLength(freqs, opt), weightedLength(freqs, heur)
		if co > ch {
			t.Fatalf("trial %d: package-merge %d worse than repair %d", trial, co, ch)
		}
		if co < ch {
			worseCount++
		}
	}
	t.Logf("heuristic repair was suboptimal in %d/300 constrained trials", worseCount)
}

func TestPackageMergeEdgeCases(t *testing.T) {
	// Empty and single-symbol inputs.
	l, err := BuildLengthsOptimal(make([]int64, 5), 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range l {
		if v != 0 {
			t.Fatal("zero-frequency symbol coded")
		}
	}
	freqs := make([]int64, 5)
	freqs[2] = 7
	l, err = BuildLengthsOptimal(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	if l[2] != 1 {
		t.Fatalf("single symbol length %d", l[2])
	}
	// Too many symbols for the limit.
	if _, err := BuildLengthsOptimal([]int64{1, 1, 1, 1, 1}, 2); err == nil {
		t.Fatal("5 symbols in 2 bits accepted")
	}
	if _, err := BuildLengthsOptimal([]int64{-1}, 15); err == nil {
		t.Fatal("negative frequency accepted")
	}
	// Exactly 2^maxBits symbols: all lengths == maxBits.
	eq := make([]int64, 8)
	for i := range eq {
		eq[i] = 1
	}
	l, err = BuildLengthsOptimal(eq, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range l {
		if v != 3 {
			t.Fatalf("lengths %v, want all 3", l)
		}
	}
}

func TestPackageMergeProducesValidPrefixCode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		freqs := make([]int64, 286)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(10000))
		}
		lengths, err := BuildLengthsOptimal(freqs, 15)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewEncoder(lengths); err != nil {
			t.Fatalf("trial %d: encoder rejects optimal lengths: %v", trial, err)
		}
		if _, err := NewDecoder(lengths, 9); err != nil {
			t.Fatalf("trial %d: decoder rejects optimal lengths: %v", trial, err)
		}
	}
}

func BenchmarkPackageMerge286(b *testing.B) {
	freqs := make([]int64, 286)
	rng := rand.New(rand.NewSource(1))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(10000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLengthsOptimal(freqs, 15); err != nil {
			b.Fatal(err)
		}
	}
}
