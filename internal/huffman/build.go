// Package huffman implements canonical, length-limited Huffman codes as
// used by DEFLATE and by the dynamic-Huffman-table (DHT) generator inside
// the POWER9/z15 compression accelerator.
//
// The package is format-agnostic: it turns symbol frequencies into code
// lengths (bounded by a maximum bit length), assigns canonical codes, and
// builds fast decode tables. DEFLATE-specific serialization of the tables
// lives in the deflate package.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"
)

// MaxBitsDeflate is the DEFLATE code-length ceiling for literal/length and
// distance alphabets.
const MaxBitsDeflate = 15

// buildNode is a node in the Huffman construction heap.
type buildNode struct {
	weight int64
	// depth-tiebreak: prefer shallower subtrees so the tree stays balanced
	// and rarely violates the length limit in the first place.
	depth int32
	sym   int32 // >= 0 for leaves, -1 for internal
	left  int32 // index into nodes
	right int32
}

type buildHeap struct {
	idx   []int32
	nodes []buildNode
}

func (h *buildHeap) Len() int { return len(h.idx) }
func (h *buildHeap) Less(i, j int) bool {
	a, b := h.nodes[h.idx[i]], h.nodes[h.idx[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return a.depth < b.depth
}
func (h *buildHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *buildHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int32)) }
func (h *buildHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// BuildLengths computes Huffman code lengths for the given symbol
// frequencies, limited to maxBits. Symbols with zero frequency get length
// zero (no code). If only one symbol has nonzero frequency it is assigned
// length 1, matching DEFLATE's requirement that every used code be at
// least one bit.
//
// If the unconstrained Huffman tree exceeds maxBits, lengths are flattened
// with the standard overflow-repair pass (the same approach zlib uses),
// preserving the Kraft inequality so the result is always a valid prefix
// code.
func BuildLengths(freqs []int64, maxBits int) ([]uint8, error) {
	if maxBits < 1 || maxBits > 32 {
		return nil, fmt.Errorf("huffman: maxBits %d out of range", maxBits)
	}
	n := len(freqs)
	lengths := make([]uint8, n)
	var live []int32
	for i, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", i)
		}
		if f > 0 {
			live = append(live, int32(i))
		}
	}
	switch len(live) {
	case 0:
		return lengths, nil
	case 1:
		lengths[live[0]] = 1
		return lengths, nil
	}
	if len(live) > (1 << maxBits) {
		return nil, fmt.Errorf("huffman: %d symbols cannot fit in %d bits", len(live), maxBits)
	}

	nodes := make([]buildNode, 0, 2*len(live))
	h := &buildHeap{nodes: nil}
	for _, s := range live {
		nodes = append(nodes, buildNode{weight: freqs[s], sym: s, left: -1, right: -1})
	}
	h.nodes = nodes
	h.idx = make([]int32, len(live))
	for i := range h.idx {
		h.idx[i] = int32(i)
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int32)
		b := heap.Pop(h).(int32)
		d := h.nodes[a].depth
		if h.nodes[b].depth > d {
			d = h.nodes[b].depth
		}
		h.nodes = append(h.nodes, buildNode{
			weight: h.nodes[a].weight + h.nodes[b].weight,
			depth:  d + 1,
			sym:    -1,
			left:   a,
			right:  b,
		})
		heap.Push(h, int32(len(h.nodes)-1))
	}
	root := h.idx[0]
	assignDepths(h.nodes, root, 0, lengths)
	repairOverflow(lengths, freqs, maxBits)
	return lengths, nil
}

// assignDepths walks the tree iteratively (inputs can be large alphabets)
// and records leaf depths.
func assignDepths(nodes []buildNode, root int32, depth uint8, lengths []uint8) {
	type frame struct {
		node  int32
		depth uint8
	}
	stack := []frame{{root, depth}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.node]
		if nd.sym >= 0 {
			lengths[nd.sym] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
}

// repairOverflow caps code lengths at maxBits and restores the Kraft
// equality by demoting the least-frequent short codes.
func repairOverflow(lengths []uint8, freqs []int64, maxBits int) {
	overflow := false
	for _, l := range lengths {
		if int(l) > maxBits {
			overflow = true
			break
		}
	}
	if !overflow {
		return
	}
	// Count codes per length, clamping.
	counts := make([]int, maxBits+1)
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxBits {
			lengths[i] = uint8(maxBits)
		}
		counts[lengths[i]]++
	}
	// Kraft sum in units of 2^-maxBits.
	kraft := 0
	for l := 1; l <= maxBits; l++ {
		kraft += counts[l] << (maxBits - l)
	}
	limit := 1 << maxBits
	// While over-subscribed, move one code from the deepest under-limit
	// level down a level and promote one maxBits code as its sibling; the
	// Kraft sum drops by exactly 1 per step (zlib's gen_bitlen repair).
	for kraft > limit {
		l := maxBits - 1
		for counts[l] == 0 {
			l--
		}
		counts[l]--
		counts[l+1] += 2
		counts[maxBits]--
		kraft--
	}
	// Reassign lengths to symbols: sort live symbols by frequency ascending
	// so the least frequent get the longest codes, then deal lengths from
	// longest to shortest according to counts.
	type symFreq struct {
		sym  int
		freq int64
	}
	var live []symFreq
	for i, l := range lengths {
		if l != 0 {
			live = append(live, symFreq{i, freqs[i]})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].freq != live[j].freq {
			return live[i].freq < live[j].freq
		}
		return live[i].sym < live[j].sym
	})
	li := 0
	for l := maxBits; l >= 1; l-- {
		for c := 0; c < counts[l]; c++ {
			lengths[live[li].sym] = uint8(l)
			li++
		}
	}
}

// KraftSum returns the Kraft-inequality sum of the code lengths in units
// of 2^-maxBits; a complete prefix code sums to exactly 1<<maxBits, and any
// valid prefix code sums to at most that.
func KraftSum(lengths []uint8, maxBits int) int {
	sum := 0
	for _, l := range lengths {
		if l == 0 {
			continue
		}
		sum += 1 << (maxBits - int(l))
	}
	return sum
}
