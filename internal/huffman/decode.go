package huffman

import (
	"errors"
	"fmt"
)

// ErrInvalidCode is returned when the input bits do not correspond to any
// symbol in the code.
var ErrInvalidCode = errors.New("huffman: invalid code in stream")

// Decoder decodes canonical Huffman codes from LSB-first bit streams using
// a two-level table: a primary table of primaryBits entries resolves all
// short codes in one lookup, and longer codes chain to per-prefix
// sub-tables. This mirrors both zlib's inflate tables and the parallel
// lookup structures used in hardware decoders.
type Decoder struct {
	primaryBits uint
	maxLen      uint8
	primary     []decodeEntry
	sub         []decodeEntry
	numSyms     int
}

// decodeEntry packs either a direct symbol hit or a sub-table link.
//
//	sym >= 0:  symbol, nbits = code length
//	sym == -1: link, off/index into sub, nbits = sub-table bits
//	sym == -2: invalid (unassigned code space)
type decodeEntry struct {
	sym   int32
	nbits uint8
	off   uint32
}

const (
	// DefaultPrimaryBits is a good table size for DEFLATE alphabets:
	// 9 bits covers the literal/length alphabet's common codes and is the
	// same root size zlib uses (ENOUGH tables with 9-bit roots).
	DefaultPrimaryBits = 9
)

// NewDecoder builds a decoder for the canonical code defined by lengths.
// Length-zero symbols have no code. The code may be incomplete (Kraft sum
// below capacity); unassigned code space decodes to ErrInvalidCode.
func NewDecoder(lengths []uint8, primaryBits uint) (*Decoder, error) {
	if primaryBits < 1 || primaryBits > 15 {
		return nil, fmt.Errorf("huffman: primaryBits %d out of range", primaryBits)
	}
	maxLen := uint8(0)
	n := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
		if l > 0 {
			n++
		}
	}
	if maxLen > MaxBitsDeflate {
		return nil, fmt.Errorf("huffman: code length %d exceeds %d", maxLen, MaxBitsDeflate)
	}
	d := &Decoder{primaryBits: primaryBits, maxLen: maxLen, numSyms: n}
	d.primary = make([]decodeEntry, 1<<primaryBits)
	for i := range d.primary {
		d.primary[i].sym = -2
	}
	if maxLen == 0 {
		return d, nil
	}
	if k := KraftSum(lengths, int(maxLen)); k > 1<<maxLen {
		return nil, fmt.Errorf("huffman: over-subscribed code")
	}

	// Canonical code assignment, identical to NewEncoder.
	counts := make([]uint32, maxLen+1)
	for _, l := range lengths {
		counts[l]++
	}
	counts[0] = 0
	next := make([]uint32, maxLen+2)
	code := uint32(0)
	for l := uint8(1); l <= maxLen; l++ {
		code = (code + counts[l-1]) << 1
		next[l] = code
	}

	// Pre-create sub-tables for every primary prefix that has long codes.
	subBits := uint(0)
	if uint(maxLen) > primaryBits {
		subBits = uint(maxLen) - primaryBits
	}
	subIndex := make(map[uint32]uint32) // primary prefix -> sub offset

	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		c := next[l]
		next[l]++
		rev := uint32(reverse16(uint16(c), uint(l)))
		if uint(l) <= primaryBits {
			// Fill every primary slot whose low l bits equal rev.
			step := uint32(1) << l
			for i := rev; i < uint32(len(d.primary)); i += step {
				d.primary[i] = decodeEntry{sym: int32(sym), nbits: l}
			}
			continue
		}
		// Long code: low primaryBits select the link; remaining high bits
		// index the sub-table.
		prefix := rev & ((1 << primaryBits) - 1)
		off, ok := subIndex[prefix]
		if !ok {
			off = uint32(len(d.sub))
			subIndex[prefix] = off
			for i := 0; i < 1<<subBits; i++ {
				d.sub = append(d.sub, decodeEntry{sym: -2})
			}
			d.primary[prefix] = decodeEntry{sym: -1, nbits: uint8(subBits), off: off}
		}
		high := rev >> primaryBits
		extra := uint(l) - primaryBits
		step := uint32(1) << extra
		for i := high; i < 1<<subBits; i += step {
			d.sub[off+i] = decodeEntry{sym: int32(sym), nbits: l}
		}
	}
	return d, nil
}

// BitSource is the minimal bit-reader interface the decoder consumes. It is
// satisfied by *bitio.Reader.
type BitSource interface {
	PeekBits(n uint) (v uint64, avail uint)
	SkipBits(n uint) error
}

// Decode reads one symbol. It consumes exactly the code's length in bits.
func (d *Decoder) Decode(src BitSource) (int, error) {
	v, avail := src.PeekBits(d.primaryBits)
	e := d.primary[v]
	if e.sym >= 0 {
		if uint(e.nbits) > avail {
			return 0, ErrInvalidCode // truncated stream
		}
		if err := src.SkipBits(uint(e.nbits)); err != nil {
			return 0, err
		}
		return int(e.sym), nil
	}
	if e.sym == -2 {
		return 0, ErrInvalidCode
	}
	// Sub-table path.
	total := d.primaryBits + uint(e.nbits)
	v2, avail2 := src.PeekBits(total)
	sub := d.sub[e.off+uint32(v2>>d.primaryBits)]
	if sub.sym < 0 {
		return 0, ErrInvalidCode
	}
	if uint(sub.nbits) > avail2 {
		return 0, ErrInvalidCode
	}
	if err := src.SkipBits(uint(sub.nbits)); err != nil {
		return 0, err
	}
	return int(sub.sym), nil
}

// MaxLen reports the longest code length in the table.
func (d *Decoder) MaxLen() uint8 { return d.maxLen }

// NumSymbols reports how many symbols have codes.
func (d *Decoder) NumSymbols() int { return d.numSyms }
