package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nxzip/internal/bitio"
)

func TestBuildLengthsEmpty(t *testing.T) {
	lengths, err := BuildLengths(make([]int64, 10), 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l != 0 {
			t.Fatal("zero-frequency symbol got a code")
		}
	}
}

func TestBuildLengthsSingle(t *testing.T) {
	freqs := make([]int64, 5)
	freqs[3] = 100
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[3] != 1 {
		t.Fatalf("single symbol got length %d, want 1", lengths[3])
	}
}

func TestBuildLengthsTwo(t *testing.T) {
	lengths, err := BuildLengths([]int64{7, 0, 3}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[0] != 1 || lengths[2] != 1 || lengths[1] != 0 {
		t.Fatalf("lengths = %v", lengths)
	}
}

func TestBuildLengthsClassic(t *testing.T) {
	// Fibonacci-ish frequencies give a maximally skewed tree.
	freqs := []int64{1, 1, 2, 3, 5, 8, 13, 21}
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	if k := KraftSum(lengths, 15); k != 1<<15 {
		t.Fatalf("kraft = %d, want complete code", k)
	}
	// Most frequent symbol must have the shortest code.
	for i := 0; i < 7; i++ {
		if lengths[i] < lengths[i+1] {
			t.Fatalf("monotonicity violated: %v", lengths)
		}
	}
}

func TestBuildLengthsLimitRepair(t *testing.T) {
	// Exponential frequencies force an unconstrained depth > 7, so the
	// limiter must kick in.
	freqs := make([]int64, 20)
	f := int64(1)
	for i := range freqs {
		freqs[i] = f
		f *= 2
	}
	lengths, err := BuildLengths(freqs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lengths {
		if l == 0 || l > 7 {
			t.Fatalf("symbol %d length %d out of [1,7]", i, l)
		}
	}
	if k := KraftSum(lengths, 7); k != 1<<7 {
		t.Fatalf("kraft = %d after repair, want %d", k, 1<<7)
	}
}

func TestBuildLengthsErrors(t *testing.T) {
	if _, err := BuildLengths([]int64{-1}, 15); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if _, err := BuildLengths([]int64{1, 1, 1}, 1); err == nil {
		t.Fatal("3 symbols in 1 bit accepted")
	}
	if _, err := BuildLengths([]int64{1}, 0); err == nil {
		t.Fatal("maxBits=0 accepted")
	}
}

// TestOptimality compares the weighted length of the built code against a
// plain (unlimited) Huffman cost bound for cases the limit doesn't bind.
func TestOptimalityKraft(t *testing.T) {
	f := func(raw []uint16) bool {
		freqs := make([]int64, len(raw))
		live := 0
		for i, v := range raw {
			freqs[i] = int64(v)
			if v > 0 {
				live++
			}
		}
		if live > 1<<15 {
			return true
		}
		lengths, err := BuildLengths(freqs, 15)
		if err != nil {
			return false
		}
		// Validity: every live symbol has a code, Kraft holds.
		for i, fq := range freqs {
			if (fq > 0) != (lengths[i] > 0) {
				return false
			}
		}
		return KraftSum(lengths, 15) <= 1<<15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderCanonicalOrder(t *testing.T) {
	// lengths: a=2 b=1 c=3 d=3  => canonical codes b=0, a=10, c=110, d=111
	lengths := []uint8{2, 1, 3, 3}
	e, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		bits uint16 // unreversed canonical value
		n    uint8
	}{{0b10, 2}, {0b0, 1}, {0b110, 3}, {0b111, 3}}
	for sym, w := range want {
		got := e.Codes[sym]
		if got.Len != w.n {
			t.Fatalf("sym %d len = %d want %d", sym, got.Len, w.n)
		}
		if rev := reverse16(got.Bits, uint(got.Len)); rev != w.bits {
			t.Fatalf("sym %d code = %b want %b", sym, rev, w.bits)
		}
	}
}

func TestEncoderOverSubscribed(t *testing.T) {
	if _, err := NewEncoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("over-subscribed code accepted")
	}
}

func TestEncoderTotalBits(t *testing.T) {
	e, err := NewEncoder([]uint8{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	got := e.TotalBits([]int64{10, 5, 0})
	if got != 10*1+5*2 {
		t.Fatalf("TotalBits = %d", got)
	}
}

func TestDecoderRejectsOverSubscribed(t *testing.T) {
	if _, err := NewDecoder([]uint8{1, 1, 1}, 9); err == nil {
		t.Fatal("over-subscribed accepted")
	}
}

func TestDecoderIncompleteCode(t *testing.T) {
	// Single symbol of length 2: half of code space unassigned.
	d, err := NewDecoder([]uint8{2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(nil)
	w.WriteBits(0b11, 2) // not a valid code (only 00 assigned)
	r := bitio.NewReader(w.Bytes())
	if _, err := d.Decode(r); err != ErrInvalidCode {
		t.Fatalf("got %v, want ErrInvalidCode", err)
	}
}

func roundTripSymbols(t *testing.T, lengths []uint8, primaryBits uint, symbols []int) {
	t.Helper()
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, primaryBits)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(nil)
	for _, s := range symbols {
		c := enc.Codes[s]
		if c.Len == 0 {
			t.Fatalf("symbol %d has no code", s)
		}
		w.WriteBits(uint64(c.Bits), uint(c.Len))
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range symbols {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	freqs := make([]int64, 286) // DEFLATE litlen alphabet size
	rng := rand.New(rand.NewSource(7))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(1000))
	}
	freqs[256] = 1 // end-of-block always present
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	var symbols []int
	for i, f := range freqs {
		if f > 0 {
			symbols = append(symbols, i)
		}
	}
	for i := 0; i < 2000; i++ {
		symbols = append(symbols, symbols[rng.Intn(len(symbols))])
	}
	for _, pb := range []uint{1, 6, 9, 15} {
		roundTripSymbols(t, lengths, pb, symbols)
	}
}

func TestRoundTripPropertyRandomCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(60) + 2
		freqs := make([]int64, n)
		for i := range freqs {
			freqs[i] = int64(rng.Intn(50))
		}
		live := 0
		for _, f := range freqs {
			if f > 0 {
				live++
			}
		}
		if live == 0 {
			freqs[0] = 1
			live = 1
		}
		maxBits := rng.Intn(10) + 6 // 6..15
		lengths, err := BuildLengths(freqs, maxBits)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var symbols []int
		for i, f := range freqs {
			if f > 0 {
				for j := int64(0); j < f; j++ {
					symbols = append(symbols, i)
				}
			}
		}
		rng.Shuffle(len(symbols), func(i, j int) { symbols[i], symbols[j] = symbols[j], symbols[i] })
		roundTripSymbols(t, lengths, 9, symbols)
	}
}

func TestPrefixFreeProperty(t *testing.T) {
	// Canonical codes from valid lengths must be prefix-free: verify by
	// pairwise prefix comparison on a moderate alphabet.
	freqs := make([]int64, 30)
	rng := rand.New(rand.NewSource(3))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(100) + 1)
	}
	lengths, err := BuildLengths(freqs, 9)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	type cv struct {
		code uint16 // canonical (unreversed)
		n    uint8
	}
	var codes []cv
	for sym, c := range enc.Codes {
		if c.Len == 0 {
			continue
		}
		codes = append(codes, cv{reverse16(c.Bits, uint(c.Len)), enc.Lengths[sym]})
	}
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			a, b := codes[i], codes[j]
			if a.n > b.n {
				continue
			}
			// a is a prefix of b if b's top a.n bits equal a.code
			if uint16(b.code>>(b.n-a.n)) == a.code {
				t.Fatalf("code %d is prefix of code %d", i, j)
			}
		}
	}
}

func TestDecoderMetadata(t *testing.T) {
	d, err := NewDecoder([]uint8{3, 3, 2, 3, 3, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxLen() != 3 || d.NumSymbols() != 6 {
		t.Fatalf("MaxLen=%d NumSymbols=%d", d.MaxLen(), d.NumSymbols())
	}
}

func BenchmarkBuildLengths286(b *testing.B) {
	freqs := make([]int64, 286)
	rng := rand.New(rand.NewSource(1))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(10000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLengths(freqs, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	freqs := make([]int64, 286)
	rng := rand.New(rand.NewSource(1))
	for i := range freqs {
		freqs[i] = int64(rng.Intn(10000) + 1)
	}
	lengths, _ := BuildLengths(freqs, 15)
	enc, _ := NewEncoder(lengths)
	dec, _ := NewDecoder(lengths, 9)
	w := bitio.NewWriter(nil)
	const nsym = 4096
	for i := 0; i < nsym; i++ {
		c := enc.Codes[rng.Intn(286)]
		w.WriteBits(uint64(c.Bits), uint(c.Len))
	}
	data := w.Bytes()
	b.SetBytes(nsym)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(data)
		for j := 0; j < nsym; j++ {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
