package faultinject

import (
	"math"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	for _, c := range Classes() {
		if inj.Decide(c) {
			t.Fatalf("nil injector fired %s", c)
		}
		if inj.Injected(c) != 0 {
			t.Fatalf("nil injector counted %s", c)
		}
	}
	if inj.Offline() {
		t.Fatal("nil injector offline")
	}
	inj.SetOffline(true) // must not panic
	inj.SetProfile(Uniform(1))
	if inj.TotalInjected() != 0 {
		t.Fatal("nil injector total")
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := New(42, Uniform(0.3))
	b := New(42, Uniform(0.3))
	for i := 0; i < 10000; i++ {
		c := Class(i % int(classCount))
		if a.Decide(c) != b.Decide(c) {
			t.Fatalf("draw %d diverged between same-seed injectors", i)
		}
	}
	if a.TotalInjected() != b.TotalInjected() {
		t.Fatalf("totals diverged: %d vs %d", a.TotalInjected(), b.TotalInjected())
	}
}

func TestRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		inj := New(7, Profile{EngineHang: rate})
		const n = 20000
		fired := 0
		for i := 0; i < n; i++ {
			if inj.Decide(EngineHang) {
				fired++
			}
		}
		got := float64(fired) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %.2f: observed %.3f", rate, got)
		}
		// Classes at rate 0 must never fire.
		if inj.Decide(CreditLeak) {
			t.Error("zero-rate class fired")
		}
	}
}

func TestConcurrentDecide(t *testing.T) {
	inj := New(99, Uniform(0.5))
	var wg sync.WaitGroup
	const (
		goroutines = 8
		perG       = 5000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inj.Decide(CRCError)
			}
		}()
	}
	wg.Wait()
	got := inj.Injected(CRCError)
	want := float64(goroutines * perG / 2)
	if math.Abs(float64(got)-want) > want*0.1 {
		t.Fatalf("concurrent fire count %d, want ~%.0f", got, want)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("mild")
	if err != nil || p.CRCError != 0.01 || p.EngineHang != 0.01 {
		t.Fatalf("mild: %+v err %v", p, err)
	}
	p, err = ParseProfile("crc-error=0.25, engine-hang=0.5")
	if err != nil || p.CRCError != 0.25 || p.EngineHang != 0.5 || p.DataCheck != 0 {
		t.Fatalf("explicit: %+v err %v", p, err)
	}
	if _, err = ParseProfile("bogus-class=0.1"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err = ParseProfile("crc-error=7"); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if _, err = ParseProfile("notaprofile"); err == nil {
		t.Fatal("bare unknown name accepted")
	}
	if p, err = ParseProfile("off"); err != nil || p != (Profile{}) {
		t.Fatalf("off: %+v err %v", p, err)
	}
}

func TestOfflineToggle(t *testing.T) {
	inj := New(1, Profile{})
	if inj.Offline() {
		t.Fatal("fresh injector offline")
	}
	inj.SetOffline(true)
	if !inj.Offline() {
		t.Fatal("SetOffline(true) ignored")
	}
	inj.SetOffline(false)
	if inj.Offline() {
		t.Fatal("SetOffline(false) ignored")
	}
}

func TestSetProfileSwap(t *testing.T) {
	inj := New(3, Profile{})
	for i := 0; i < 100; i++ {
		if inj.Decide(TransFault) {
			t.Fatal("empty profile fired")
		}
	}
	inj.SetProfile(Profile{TransFault: 1})
	if !inj.Decide(TransFault) {
		t.Fatal("rate-1 class did not fire")
	}
}
