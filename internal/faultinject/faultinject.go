// Package faultinject is the failure model of the accelerator
// reproduction: a deterministic, seedable injector that the device,
// engine, NMMU and VAS layers consult at well-defined hook points to
// force the unhappy paths a production deployment must survive — CSB
// error completion codes (CRC mismatch, data check, invalid CRB),
// translation-fault storms, paste-rejection storms, credit leaks,
// engine hangs (no CSB write), and whole-device offlining.
//
// The wiring mirrors internal/telemetry: each layer holds an
// atomic.Pointer[faultinject.Injector] that is nil by default, and every
// Injector method is nil-receiver safe, so a disabled injector costs
// exactly one atomic load plus a nil check on the hot path — no
// allocation, no branch on configuration data, no lock.
//
// Determinism: decisions come from a splitmix64 stream seeded at
// construction. Concurrent callers interleave draws nondeterministically,
// but the multiset of values drawn is a pure function of the seed, so
// single-goroutine tests replay exactly and concurrent chaos runs are
// statistically reproducible.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Class enumerates the injectable fault classes. Each maps to one hook
// point in the stack.
type Class int

const (
	// CRCError forces a successful engine completion into a CRC-mismatch
	// CSB (the engine's read-back verify failed) — retryable: the input
	// is intact and a resubmission usually succeeds.
	CRCError Class = iota
	// DataCheck forces a data-check completion (CSB reports the stream
	// invalid). On compression this can only be a flake; on decompression
	// it is indistinguishable from genuinely corrupt input, which is why
	// the fallback layer re-checks in software before giving up.
	DataCheck
	// InvalidCRB forces a malformed-request completion.
	InvalidCRB
	// TransFault forces a translation fault from the NMMU even for
	// resident pages. At high rates this is the fault storm the
	// submit-side round cap (ErrFaultStorm) exists for.
	TransFault
	// PasteReject forces the switchboard to bounce a paste (CR0 busy)
	// regardless of credits or FIFO depth — a paste-rejection storm.
	PasteReject
	// CreditLeak makes a completion swallow the send-window credit
	// instead of returning it; enough leaks wedge the window.
	CreditLeak
	// EngineHang makes the engine drop a dequeued request without ever
	// writing its CSB.
	EngineHang

	classCount
)

func (c Class) String() string {
	switch c {
	case CRCError:
		return "crc-error"
	case DataCheck:
		return "data-check"
	case InvalidCRB:
		return "invalid-crb"
	case TransFault:
		return "trans-fault"
	case PasteReject:
		return "paste-reject"
	case CreditLeak:
		return "credit-leak"
	case EngineHang:
		return "engine-hang"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes returns every injectable class, in declaration order.
func Classes() []Class {
	cs := make([]Class, classCount)
	for i := range cs {
		cs[i] = Class(i)
	}
	return cs
}

// Profile sets the per-class injection probability (0..1). The zero
// Profile injects nothing.
type Profile struct {
	CRCError    float64
	DataCheck   float64
	InvalidCRB  float64
	TransFault  float64
	PasteReject float64
	CreditLeak  float64
	EngineHang  float64
}

// Rate returns the probability configured for class c.
func (p Profile) Rate(c Class) float64 {
	switch c {
	case CRCError:
		return p.CRCError
	case DataCheck:
		return p.DataCheck
	case InvalidCRB:
		return p.InvalidCRB
	case TransFault:
		return p.TransFault
	case PasteReject:
		return p.PasteReject
	case CreditLeak:
		return p.CreditLeak
	case EngineHang:
		return p.EngineHang
	}
	return 0
}

// setRate sets the probability for class c (clamped to [0,1]).
func (p *Profile) setRate(c Class, r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	switch c {
	case CRCError:
		p.CRCError = r
	case DataCheck:
		p.DataCheck = r
	case InvalidCRB:
		p.InvalidCRB = r
	case TransFault:
		p.TransFault = r
	case PasteReject:
		p.PasteReject = r
	case CreditLeak:
		p.CreditLeak = r
	case EngineHang:
		p.EngineHang = r
	}
}

// Uniform returns a profile injecting every class at the same rate —
// the x-axis of the E19 graceful-degradation sweep.
func Uniform(rate float64) Profile {
	var p Profile
	for c := Class(0); c < classCount; c++ {
		p.setRate(c, rate)
	}
	return p
}

// Named chaos profiles for the -chaos CLI flag.
var namedProfiles = map[string]Profile{
	"off":         {},
	"mild":        Uniform(0.01),
	"heavy":       Uniform(0.10),
	"cc-errors":   {CRCError: 0.10, DataCheck: 0.05, InvalidCRB: 0.02},
	"fault-storm": {TransFault: 0.50},
	"paste-storm": {PasteReject: 0.80},
	"credit-leak": {CreditLeak: 0.20},
	"hang":        {EngineHang: 0.10},
}

// ProfileNames lists the named profiles, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(namedProfiles))
	for n := range namedProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseProfile resolves a -chaos flag value: a named profile ("mild",
// "heavy", "fault-storm", ...) or an explicit "class=rate,class=rate"
// list ("crc-error=0.1,engine-hang=0.05").
func ParseProfile(s string) (Profile, error) {
	if p, ok := namedProfiles[s]; ok {
		return p, nil
	}
	var p Profile
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("faultinject: bad profile term %q (want class=rate or one of %s)",
				kv, strings.Join(ProfileNames(), ", "))
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate < 0 || rate > 1 {
			return p, fmt.Errorf("faultinject: bad rate %q for %q (want 0..1)", v, k)
		}
		found := false
		for c := Class(0); c < classCount; c++ {
			if c.String() == k {
				p.setRate(c, rate)
				found = true
				break
			}
		}
		if !found {
			return p, fmt.Errorf("faultinject: unknown fault class %q", k)
		}
	}
	return p, nil
}

// Injector is one device's fault source. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops / false), so layers
// consult a possibly-nil pointer without guarding.
type Injector struct {
	state atomic.Uint64 // splitmix64 stream position

	// thresholds[c] is the uint64 cut-off a draw is compared against —
	// precomputed so Decide is one atomic add, one mix, one compare.
	// Swapped wholesale by SetProfile.
	thresholds atomic.Pointer[[classCount]uint64]
	profile    atomic.Pointer[Profile]

	offline atomic.Bool

	injected [classCount]atomic.Int64
}

// New builds an injector seeded deterministically.
func New(seed int64, p Profile) *Injector {
	inj := &Injector{}
	inj.state.Store(uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567) // spread small seeds
	inj.SetProfile(p)
	return inj
}

// SetProfile replaces the active profile. Safe during traffic.
func (i *Injector) SetProfile(p Profile) {
	if i == nil {
		return
	}
	var th [classCount]uint64
	for c := Class(0); c < classCount; c++ {
		r := p.Rate(c)
		switch {
		case r <= 0:
			th[c] = 0
		case r >= 1:
			th[c] = ^uint64(0)
		default:
			th[c] = uint64(r * float64(^uint64(0)))
		}
	}
	i.thresholds.Store(&th)
	i.profile.Store(&p)
}

// Profile returns the active profile (zero Profile on nil).
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{}
	}
	return *i.profile.Load()
}

// splitmix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Decide draws once from the stream and reports whether a fault of class
// c fires. Nil receivers never fire and draw nothing.
func (i *Injector) Decide(c Class) bool {
	if i == nil {
		return false
	}
	th := (*i.thresholds.Load())[c]
	if th == 0 {
		return false // rate 0: don't burn a draw, keeps off-classes free
	}
	v := mix(i.state.Add(0x9E3779B97F4A7C15))
	if v <= th {
		i.injected[c].Add(1)
		return true
	}
	return false
}

// SetOffline marks the whole device as gone (true) or back (false) —
// the chaos harness's kill/revive switch.
func (i *Injector) SetOffline(off bool) {
	if i != nil {
		i.offline.Store(off)
	}
}

// Offline reports whether the device is currently offlined.
func (i *Injector) Offline() bool { return i != nil && i.offline.Load() }

// Injected reports how many faults of class c have fired.
func (i *Injector) Injected(c Class) int64 {
	if i == nil {
		return 0
	}
	return i.injected[c].Load()
}

// TotalInjected sums fired faults across every class.
func (i *Injector) TotalInjected() int64 {
	var n int64
	for c := Class(0); c < classCount; c++ {
		n += i.Injected(c)
	}
	return n
}
