package topology

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Policy selects which device a request lands on. Pick receives the
// node (for load inspection), the submitting address-space id, and the
// node-context id of the submitter; it returns a device index. Pick
// must be safe for concurrent use.
type Policy interface {
	Name() string
	Pick(n *Node, pid int, ctx uint64) int
}

// RoundRobin returns the default policy: a node-global atomic cursor
// spreads consecutive requests evenly across devices regardless of who
// submits them. Exact balance, no load feedback.
func RoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next atomic.Int64 }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Pick(n *Node, _ int, _ uint64) int {
	return int((p.next.Add(1) - 1) % int64(n.Size()))
}

// LeastLoaded returns the credit-aware policy: each pick scans the
// devices and takes the one with the smallest load — in-flight
// dispatched requests plus receive-FIFO occupancy (Node.Load), the
// model's view of how many credits the device is holding. The scan
// starts at a rotating offset so ties break fairly instead of always
// favouring device 0.
func LeastLoaded() Policy { return &leastLoaded{} }

type leastLoaded struct{ rot atomic.Int64 }

func (p *leastLoaded) Name() string { return "least-loaded" }

func (p *leastLoaded) Pick(n *Node, _ int, _ uint64) int {
	k := n.Size()
	start := int((p.rot.Add(1) - 1) % int64(k))
	best, bestLoad := start, n.Load(start)
	for j := 1; j < k; j++ {
		i := (start + j) % k
		if l := n.Load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// Affinity returns the locality policy: every (pid, context) pair hashes
// to a stable device, so a context's requests always land on the same
// accelerator — its NMMU stays warm for that address space and streams
// never migrate. Different contexts scatter by hash; balance is
// statistical, not exact.
func Affinity() Policy { return affinity{} }

type affinity struct{}

func (affinity) Name() string { return "affinity" }

func (affinity) Pick(n *Node, pid int, ctx uint64) int {
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(pid))
	binary.LittleEndian.PutUint64(b[8:16], ctx)
	h.Write(b[:])
	return int(h.Sum64() % uint64(n.Size()))
}

// ParsePolicy maps a policy name (a -dispatch flag value) to a Policy:
// "round-robin"/"rr" (also ""), "least-loaded"/"ll", "affinity".
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "round-robin", "rr":
		return RoundRobin(), nil
	case "least-loaded", "ll":
		return LeastLoaded(), nil
	case "affinity":
		return Affinity(), nil
	}
	return nil, fmt.Errorf("topology: unknown dispatch policy %q (want round-robin, least-loaded or affinity)", name)
}
