// Package topology models multi-accelerator nodes: the paper's headline
// system numbers (claim C5, z15 doubling the per-unit POWER9 rate, and
// claim C6, a maximally configured z15 reaching 280 GB/s aggregate) are
// about *many* accelerators per system — one NX unit per POWER9 chip,
// one zEDC unit per z15 CP chip, four CP chips per drawer, up to five
// drawers. This package turns the single-device model into a node: a
// declarative Shape describes how many devices a node carries and how
// they are configured, Node instantiates one nx.Device per entry (each
// with its own VAS switchboard, NMMU, engines and telemetry registry),
// and a pluggable dispatch Policy routes every submission to a device —
// round-robin, credit/occupancy-aware least-loaded, or PID/context
// affinity.
//
// Cross-device observability stays coherent: Node.MetricsSnapshot merges
// the per-device registries into one snapshot with device-labeled rows
// plus aggregate rows under the original names, so single-device
// consumers read unchanged totals; Node.StartTrace installs one shared
// tracer (one span-id sequence, one sink) across every device.
package topology

import (
	"fmt"

	"sync"
	"sync/atomic"

	"nxzip/internal/nmmu"
	"nxzip/internal/nx"
	"nxzip/internal/obs"
	"nxzip/internal/telemetry"
	"nxzip/internal/vas"
)

// DeviceSpec describes one accelerator instance within a node. The
// label names the device in merged telemetry ("chip0", "drawer1/cp2").
type DeviceSpec struct {
	Label  string
	Config nx.DeviceConfig
}

// Shape is a declarative node topology: a name plus the devices the node
// carries. Build one with P9Node / Z15Node / Single / Custom, or
// assemble the struct directly for arbitrary heterogeneous nodes.
type Shape struct {
	Name    string
	Devices []DeviceSpec
}

// Size returns the device count.
func (s Shape) Size() int { return len(s.Devices) }

// P9Node describes a POWER9 node of the given chip count, one NX GZIP
// unit per chip (labels "chip0".."chipN-1"). Counts below 1 clamp to 1.
func P9Node(chips int) Shape {
	if chips < 1 {
		chips = 1
	}
	s := Shape{Name: fmt.Sprintf("p9-node-%dchip", chips)}
	for i := 0; i < chips; i++ {
		s.Devices = append(s.Devices, DeviceSpec{
			Label: fmt.Sprintf("chip%d", i), Config: nx.P9Device(),
		})
	}
	return s
}

// z15ChipsPerDrawer is the CP-chip count of one z15 CPC drawer; each CP
// chip carries one on-chip zEDC unit. The maximal machine is 5 drawers.
const z15ChipsPerDrawer = 4

// Z15Node describes a z15 node of the given drawer count, four CP chips
// (one zEDC unit each) per drawer — Z15Node(5) is the maximal topology
// behind claim C6. Labels are "drawer0/cp0".."drawerD-1/cp3". Counts
// below 1 clamp to 1.
func Z15Node(drawers int) Shape {
	if drawers < 1 {
		drawers = 1
	}
	s := Shape{Name: fmt.Sprintf("z15-node-%ddrawer", drawers)}
	for d := 0; d < drawers; d++ {
		for c := 0; c < z15ChipsPerDrawer; c++ {
			s.Devices = append(s.Devices, DeviceSpec{
				Label: fmt.Sprintf("drawer%d/cp%d", d, c), Config: nx.Z15Device(),
			})
		}
	}
	return s
}

// Single describes a one-device node — the shape behind the classic
// single-accelerator API.
func Single(cfg nx.DeviceConfig) Shape {
	return Shape{Name: "single", Devices: []DeviceSpec{{Label: "dev0", Config: cfg}}}
}

// Custom assembles an arbitrary shape from explicit specs. Specs with an
// empty label are labeled by index ("dev<i>").
func Custom(name string, specs ...DeviceSpec) Shape {
	s := Shape{Name: name}
	for i, spec := range specs {
		if spec.Label == "" {
			spec.Label = fmt.Sprintf("dev%d", i)
		}
		s.Devices = append(s.Devices, spec)
	}
	return s
}

// Node is an instantiated device pool: one nx.Device per shape entry,
// plus the dispatch state every submission routes through. Safe for
// concurrent use.
type Node struct {
	shape    Shape
	devs     []*nx.Device
	policy   Policy
	inflight []atomic.Int64
	ctxSeq   atomic.Uint64

	// caps caches each device's advertised codec set (zero = all), so
	// capability filtering on the pick path is one mask test with no
	// device indirection.
	caps []nx.CodecSet

	// reg holds node-scope instruments (dispatch counters and whatever
	// callers register); per-device instruments live in each device's own
	// registry and are merged at snapshot time.
	reg      *telemetry.Registry
	dispatch []*telemetry.Counter // topology.dispatch{<device label>}

	// Health scoreboard (health.go): one circuit breaker per device plus
	// the instruments that make quarantine activity visible in snapshots.
	hp           HealthPolicy
	health       []devHealth
	quarantines  []*telemetry.Counter // topology.quarantines{<device label>}
	readmissions []*telemetry.Counter // topology.readmissions{<device label>}
	probes       []*telemetry.Counter // topology.probes{<device label>}
	drains       []*telemetry.Counter // topology.drains{<device label>}
	healthyGauge *telemetry.Gauge     // topology.healthy_devices
	// acceptingGauge tracks devices eligible for new work — neither
	// quarantined nor draining. Both the breaker and drain.go move it,
	// each only when the other bit is clear.
	acceptingGauge *telemetry.Gauge // topology.accepting_devices

	// bus, when attached, receives the scoreboard's state transitions
	// (quarantine, readmission, probe admissions). Publish is nil-safe, so
	// the hot path pays one atomic load when no bus is attached.
	bus atomic.Pointer[obs.Bus]
}

// New instantiates a node: every device of the shape is built, each with
// its own switchboard, MMU, engines and registry. A nil policy defaults
// to round-robin; an empty shape defaults to a single P9 device.
func New(shape Shape, policy Policy) *Node {
	if len(shape.Devices) == 0 {
		shape = P9Node(1)
	}
	if policy == nil {
		policy = RoundRobin()
	}
	n := &Node{
		shape:    shape,
		policy:   policy,
		inflight: make([]atomic.Int64, len(shape.Devices)),
		reg:      telemetry.NewRegistry(),
		hp:       DefaultHealthPolicy(),
		health:   make([]devHealth, len(shape.Devices)),
	}
	vec := n.reg.CounterVec("topology.dispatch")
	qVec := n.reg.CounterVec("topology.quarantines")
	rVec := n.reg.CounterVec("topology.readmissions")
	pVec := n.reg.CounterVec("topology.probes")
	dVec := n.reg.CounterVec("topology.drains")
	for _, spec := range shape.Devices {
		n.devs = append(n.devs, nx.NewDevice(spec.Config))
		n.caps = append(n.caps, spec.Config.Engine.Codecs)
		n.dispatch = append(n.dispatch, vec.With(spec.Label))
		n.quarantines = append(n.quarantines, qVec.With(spec.Label))
		n.readmissions = append(n.readmissions, rVec.With(spec.Label))
		n.probes = append(n.probes, pVec.With(spec.Label))
		n.drains = append(n.drains, dVec.With(spec.Label))
	}
	n.healthyGauge = n.reg.Gauge("topology.healthy_devices")
	n.healthyGauge.Set(int64(len(n.devs)))
	n.acceptingGauge = n.reg.Gauge("topology.accepting_devices")
	n.acceptingGauge.Set(int64(len(n.devs)))
	return n
}

// Size returns the device count.
func (n *Node) Size() int { return len(n.devs) }

// Shape returns the node's topology description.
func (n *Node) Shape() Shape { return n.shape }

// Device returns device i (strict bounds: out of range panics, as a
// slice index would).
func (n *Node) Device(i int) *nx.Device { return n.devs[i] }

// Label returns device i's telemetry label.
func (n *Node) Label(i int) string { return n.shape.Devices[i].Label }

// Policy returns the dispatch policy.
func (n *Node) Policy() Policy { return n.policy }

// Registry exposes the node-scope registry: node-level instruments
// (stream-layer counters, dispatch counts) registered here appear
// unprefixed in MetricsSnapshot alongside the merged device registries.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Capable reports whether device i advertises every codec in need (a
// zero advertised set serves everything; a zero need set asks nothing).
func (n *Node) Capable(i int, need nx.CodecSet) bool { return n.caps[i].Supports(need) }

// AnyCapable reports whether any device — healthy or not — could serve
// a request requiring need. Distinguishes "wrong hardware"
// (ErrNoCapableDevice, retrying is pointless) from "all quarantined"
// (ErrNoHealthyDevice, the pool may recover).
func (n *Node) AnyCapable(need nx.CodecSet) bool {
	for i := range n.caps {
		if n.caps[i].Supports(need) {
			return true
		}
	}
	return false
}

// CapableCount returns how many devices advertise every codec in need.
func (n *Node) CapableCount(need nx.CodecSet) int {
	count := 0
	for i := range n.caps {
		if n.caps[i].Supports(need) {
			count++
		}
	}
	return count
}

// Load reports device i's dispatch load: requests picked but not yet
// released plus the device's receive-FIFO occupancy. The least-loaded
// policy ranks devices by it.
func (n *Node) Load(i int) int64 {
	return n.inflight[i].Load() + int64(n.devs[i].Switchboard().Occupancy())
}

// Dispatched reports how many requests the dispatcher has routed to
// device i over the node's lifetime.
func (n *Node) Dispatched(i int) int64 { return n.dispatch[i].Value() }

// VASStats aggregates every device switchboard's counters (see
// vas.Stats.Add for the aggregation semantics).
func (n *Node) VASStats() vas.Stats {
	var agg vas.Stats
	for _, d := range n.devs {
		agg = agg.Add(d.Switchboard().Stats())
	}
	return agg
}

// SetEventBus attaches an event bus to the node and to every device
// (engine hangs and credit leaks publish under each device's label).
// Passing nil detaches everywhere.
func (n *Node) SetEventBus(bus *obs.Bus) {
	n.bus.Store(bus)
	for i, d := range n.devs {
		if bus == nil {
			d.SetEventBus(nil, "")
		} else {
			d.SetEventBus(bus, n.shape.Devices[i].Label)
		}
	}
}

// Bus returns the attached event bus, or nil when none is attached.
func (n *Node) Bus() *obs.Bus { return n.bus.Load() }

// StartTrace installs one shared tracer across every device: spans from
// all devices interleave in one sink with one id sequence, exactly like
// the single-device Device.StartTrace.
func (n *Node) StartTrace(sink telemetry.Sink) {
	n.InstallTracer(telemetry.NewTracer(sink))
}

// InstallTracer installs an existing tracer across every device — the
// flight recorder uses this to attach its pooled tracer (whose spans
// recycle through the recorder) instead of a fresh unpooled one.
func (n *Node) InstallTracer(t *telemetry.Tracer) {
	for _, d := range n.devs {
		d.InstallTracer(t)
	}
}

// StopTrace uninstalls tracing from every device and closes the shared
// sink exactly once.
func (n *Node) StopTrace() error {
	var shared *telemetry.Tracer
	for _, d := range n.devs {
		if t := d.RemoveTracer(); shared == nil {
			shared = t
		}
	}
	return shared.Close()
}

// MetricsSnapshot returns one coherent snapshot of the whole node. A
// one-device node yields exactly the device's own snapshot (identical to
// the pre-topology layout) plus the node-scope instruments. Multi-device
// nodes merge the per-device snapshots: every instrument appears under
// its device-prefixed label and again as an aggregate row under the
// original name+label summed across devices (telemetry.MergeSnapshots),
// so totals like nx.requests read the same whether the node has one
// device or twenty.
func (n *Node) MetricsSnapshot() *telemetry.Snapshot {
	var snap *telemetry.Snapshot
	if len(n.devs) == 1 {
		snap = n.devs[0].MetricsSnapshot()
	} else {
		labeled := make([]telemetry.LabeledSnapshot, len(n.devs))
		for i, d := range n.devs {
			labeled[i] = telemetry.LabeledSnapshot{Label: n.shape.Devices[i].Label, Snap: d.MetricsSnapshot()}
		}
		snap = telemetry.MergeSnapshots(labeled)
	}
	snap.Append(n.reg.Snapshot())
	snap.Sort()
	return snap
}

// Context is a process's view of the node: one nx.Context (address
// space + VAS send window) per device, plus the dispatch hook that
// routes each request. Like nx.Context it is safe for concurrent use;
// callers wanting per-worker windows open one node Context per worker.
type Context struct {
	node   *Node
	id     uint64
	pid    nmmu.PID
	ctxs   []*nx.Context
	closed atomic.Bool
}

// OpenContext registers pid on every device and opens one send window
// per device.
func (n *Node) OpenContext(pid nmmu.PID) *Context {
	c := &Context{
		node: n,
		id:   n.ctxSeq.Add(1),
		pid:  pid,
		ctxs: make([]*nx.Context, len(n.devs)),
	}
	for i, d := range n.devs {
		c.ctxs[i] = d.OpenContext(pid)
		// The node context's ID is the tenant identity the admission gate
		// quotas on; stamping it into each device context threads it onto
		// every span this view produces.
		c.ctxs[i].SetTenant(c.id)
	}
	return c
}

// SetPriorityName publishes the admission-class name this view's
// requests carry to every device context, so spans started afterwards
// are stamped with it.
func (c *Context) SetPriorityName(name string) {
	for _, ctx := range c.ctxs {
		ctx.SetPriorityName(name)
	}
}

// PID returns the context's address-space id.
func (c *Context) PID() nmmu.PID { return c.pid }

// ID returns the context's node-unique identity (the tenant key of the
// admission gate's per-view quotas).
func (c *Context) ID() uint64 { return c.id }

// Size returns the device count.
func (c *Context) Size() int { return len(c.ctxs) }

// Primary returns device 0's context — the compatibility view the
// single-accelerator API is built on.
func (c *Context) Primary() *nx.Context { return c.ctxs[0] }

// At returns device i's context.
func (c *Context) At(i int) *nx.Context { return c.ctxs[i] }

// deflateNeed is the capability requirement of the classic
// single-format entry points (Pick, PickAvail, PickIndexAvail,
// PickSticky): they all submit DEFLATE work, so on a mixed-capability
// node they must route past devices that only serve other codecs.
var deflateNeed = nx.Codecs(nx.CodecDeflate)

// pickIndex resolves the policy's choice for DEFLATE work — see
// pickIndexFor.
func (c *Context) pickIndex() (int, bool) { return c.pickIndexFor(deflateNeed) }

// pickIndexFor resolves the policy's choice through the capability mask
// and the health scoreboard: the picked device must advertise every
// codec in need and be admissible (healthy, or quarantined with a probe
// due); otherwise the scan wraps to the next capable admissible device.
// The capability test runs first — admit spends probe admissions, which
// must not leak to devices the request could never run on. ok=false
// means no device qualifies — the chosen index is the policy's original
// pick, for callers that submit anyway.
func (c *Context) pickIndexFor(need nx.CodecSet) (int, bool) {
	i := c.node.policy.Pick(c.node, int(c.pid), c.id)
	if i < 0 || i >= len(c.ctxs) {
		i = 0
	}
	if c.node.Capable(i, need) && c.node.admit(i) {
		return i, true
	}
	for j := 1; j < len(c.ctxs); j++ {
		if k := (i + j) % len(c.ctxs); c.node.Capable(k, need) && c.node.admit(k) {
			return k, true
		}
	}
	return i, false
}

// acquire counts device i in-flight and returns its context plus the
// release closure. The release takes the submission's outcome and feeds
// the health scoreboard; it is idempotent.
func (c *Context) acquire(i int) (*nx.Context, func(error)) {
	c.AcquireIndex(i)
	var once sync.Once
	return c.ctxs[i], func(err error) {
		once.Do(func() { c.ReleaseIndex(i, err) })
	}
}

// PickIndexAvail is PickAvail by index: it routes one request through
// the policy and health scoreboard and returns the chosen device index,
// or ErrNoHealthyDevice when nothing is admissible. Paired with
// AcquireIndex/ReleaseIndex it is the allocation-free dispatch path —
// no context pointer, no release closure — used by the pooled one-shot
// and batch submitters (the index also keys At and Device for buffer
// mapping on the right MMU).
func (c *Context) PickIndexAvail() (int, error) {
	return c.PickIndexCodec(deflateNeed)
}

// PickIndexCodec is PickIndexAvail for an explicit codec requirement:
// only devices advertising every codec in need are considered. It
// distinguishes a pool with no such hardware (ErrNoCapableDevice —
// degrade to software now, re-dispatching is pointless) from one whose
// capable devices are all quarantined (ErrNoHealthyDevice).
func (c *Context) PickIndexCodec(need nx.CodecSet) (int, error) {
	i, ok := c.pickIndexFor(need)
	if !ok {
		if !c.node.AnyCapable(need) {
			return 0, ErrNoCapableDevice
		}
		return 0, ErrNoHealthyDevice
	}
	return i, nil
}

// AcquireIndex counts one dispatch against device i (in-flight load +
// dispatch counter). Every AcquireIndex must be paired with exactly one
// ReleaseIndex carrying the submission's outcome.
func (c *Context) AcquireIndex(i int) {
	c.node.inflight[i].Add(1)
	c.node.dispatch[i].Inc()
}

// ReleaseIndex ends a dispatch acquired with AcquireIndex, feeding the
// outcome into the health scoreboard. Unlike Pick's release closure it
// is not idempotent: call it exactly once per acquire.
func (c *Context) ReleaseIndex(i int, err error) {
	c.ReleaseIndexReq(i, err, 0)
}

// ReleaseIndexReq is ReleaseIndex carrying the root RequestID, so a
// quarantine or readmission provoked by this outcome is attributable to
// the request that tripped it (the event's Req field).
func (c *Context) ReleaseIndexReq(i int, err error, req uint64) {
	c.node.inflight[i].Add(-1)
	c.node.ReportResultReq(i, err, req)
}

// Pick routes one request: the node policy selects a device (filtered
// through the health scoreboard), and Pick returns that device's context
// plus a release function the caller runs with the submission's outcome —
// release(nil) for success, release(err) to feed failures into the
// quarantine logic. Device selection must happen before buffers are
// mapped — a VA mapped on one device's MMU means nothing to another —
// which is why submission helpers take the picked context. When every
// device is quarantined Pick still returns the policy's choice (callers
// that would rather fall back to software use PickAvail).
func (c *Context) Pick() (*nx.Context, func(error)) {
	i, _ := c.pickIndex()
	return c.acquire(i)
}

// PickAvail is Pick for failover-aware callers: when no device is
// admissible (all quarantined, no probe due) it reports
// ErrNoHealthyDevice instead of returning a doomed context, so the
// caller can take the software path immediately.
func (c *Context) PickAvail() (*nx.Context, func(error), error) {
	i, ok := c.pickIndex()
	if !ok {
		return nil, nil, ErrNoHealthyDevice
	}
	ctx, release := c.acquire(i)
	return ctx, release, nil
}

// PickSticky routes a whole stream: the policy assigns a device once (at
// stream construction — segments share history or resume state, so they
// stay put) and only the pick itself is counted against the device's
// in-flight load. Stream owners feed per-segment outcomes through
// ReportFor and migrate with PickStickyAvoid on failure.
func (c *Context) PickSticky() *nx.Context {
	i, _ := c.pickIndex()
	c.node.dispatch[i].Inc()
	return c.ctxs[i]
}

// IndexOf returns the device index owning ctx, or -1 when ctx is not one
// of this node context's members.
func (c *Context) IndexOf(ctx *nx.Context) int {
	for i, m := range c.ctxs {
		if m == ctx {
			return i
		}
	}
	return -1
}

// ReportFor feeds one submission outcome for the device owning ctx into
// the health scoreboard — the sticky-pick counterpart of Pick's release
// closure.
func (c *Context) ReportFor(ctx *nx.Context, err error) {
	c.node.ReportResult(c.IndexOf(ctx), err)
}

// PickStickyAvoid re-pins a stream after its device failed: it returns
// an admissible context other than avoid, preferring the policy's
// choice. With no admissible alternative it reports ErrNoHealthyDevice
// (the stream falls back to software). Streams can migrate because
// history and resume state travel in the CRB, not in the device.
func (c *Context) PickStickyAvoid(avoid *nx.Context) (*nx.Context, error) {
	start := c.node.policy.Pick(c.node, int(c.pid), c.id)
	if start < 0 || start >= len(c.ctxs) {
		start = 0
	}
	for j := 0; j < len(c.ctxs); j++ {
		k := (start + j) % len(c.ctxs)
		if c.ctxs[k] != avoid && c.node.Capable(k, deflateNeed) && c.node.admit(k) {
			c.node.dispatch[k].Inc()
			return c.ctxs[k], nil
		}
	}
	return nil, ErrNoHealthyDevice
}

// SubmitBatch submits per-device batches concurrently: groups[i] is the
// batch bound for device i (route entries with PickIndexAvail so the
// dispatch policy and health scoreboard choose the device); nil or empty
// groups are skipped. Each non-empty group costs its device one paste,
// one send-window credit and one FIFO round regardless of size — the
// batched small-request path — and distinct devices run their groups in
// parallel. Returns per-device submission errors indexed like groups;
// per-entry status is in each entry's CSB and Err. Dispatch accounting
// and health feedback are handled here, one acquire/release per entry.
func (c *Context) SubmitBatch(groups [][]nx.BatchEntry) []error {
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		if i >= len(c.ctxs) || len(groups[i]) == 0 {
			continue
		}
		for range groups[i] {
			c.AcquireIndex(i)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := groups[i]
			err := c.ctxs[i].SubmitBatch(g)
			errs[i] = err
			for k := range g {
				outcome := err
				if outcome == nil {
					outcome = g[k].Err
				}
				c.ReleaseIndexReq(i, outcome, g[k].CRB.ReqID)
			}
		}(i)
	}
	wg.Wait()
	return errs
}

// Close releases every device window. Idempotent and safe against
// double close, like nx.Context.Close.
func (c *Context) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, ctx := range c.ctxs {
		ctx.Close()
	}
}
