// Package topology models multi-accelerator nodes: the paper's headline
// system numbers (claim C5, z15 doubling the per-unit POWER9 rate, and
// claim C6, a maximally configured z15 reaching 280 GB/s aggregate) are
// about *many* accelerators per system — one NX unit per POWER9 chip,
// one zEDC unit per z15 CP chip, four CP chips per drawer, up to five
// drawers. This package turns the single-device model into a node: a
// declarative Shape describes how many devices a node carries and how
// they are configured, Node instantiates one nx.Device per entry (each
// with its own VAS switchboard, NMMU, engines and telemetry registry),
// and a pluggable dispatch Policy routes every submission to a device —
// round-robin, credit/occupancy-aware least-loaded, or PID/context
// affinity.
//
// Cross-device observability stays coherent: Node.MetricsSnapshot merges
// the per-device registries into one snapshot with device-labeled rows
// plus aggregate rows under the original names, so single-device
// consumers read unchanged totals; Node.StartTrace installs one shared
// tracer (one span-id sequence, one sink) across every device.
package topology

import (
	"fmt"

	"sync/atomic"

	"nxzip/internal/nmmu"
	"nxzip/internal/nx"
	"nxzip/internal/telemetry"
	"nxzip/internal/vas"
)

// DeviceSpec describes one accelerator instance within a node. The
// label names the device in merged telemetry ("chip0", "drawer1/cp2").
type DeviceSpec struct {
	Label  string
	Config nx.DeviceConfig
}

// Shape is a declarative node topology: a name plus the devices the node
// carries. Build one with P9Node / Z15Node / Single / Custom, or
// assemble the struct directly for arbitrary heterogeneous nodes.
type Shape struct {
	Name    string
	Devices []DeviceSpec
}

// Size returns the device count.
func (s Shape) Size() int { return len(s.Devices) }

// P9Node describes a POWER9 node of the given chip count, one NX GZIP
// unit per chip (labels "chip0".."chipN-1"). Counts below 1 clamp to 1.
func P9Node(chips int) Shape {
	if chips < 1 {
		chips = 1
	}
	s := Shape{Name: fmt.Sprintf("p9-node-%dchip", chips)}
	for i := 0; i < chips; i++ {
		s.Devices = append(s.Devices, DeviceSpec{
			Label: fmt.Sprintf("chip%d", i), Config: nx.P9Device(),
		})
	}
	return s
}

// z15ChipsPerDrawer is the CP-chip count of one z15 CPC drawer; each CP
// chip carries one on-chip zEDC unit. The maximal machine is 5 drawers.
const z15ChipsPerDrawer = 4

// Z15Node describes a z15 node of the given drawer count, four CP chips
// (one zEDC unit each) per drawer — Z15Node(5) is the maximal topology
// behind claim C6. Labels are "drawer0/cp0".."drawerD-1/cp3". Counts
// below 1 clamp to 1.
func Z15Node(drawers int) Shape {
	if drawers < 1 {
		drawers = 1
	}
	s := Shape{Name: fmt.Sprintf("z15-node-%ddrawer", drawers)}
	for d := 0; d < drawers; d++ {
		for c := 0; c < z15ChipsPerDrawer; c++ {
			s.Devices = append(s.Devices, DeviceSpec{
				Label: fmt.Sprintf("drawer%d/cp%d", d, c), Config: nx.Z15Device(),
			})
		}
	}
	return s
}

// Single describes a one-device node — the shape behind the classic
// single-accelerator API.
func Single(cfg nx.DeviceConfig) Shape {
	return Shape{Name: "single", Devices: []DeviceSpec{{Label: "dev0", Config: cfg}}}
}

// Custom assembles an arbitrary shape from explicit specs. Specs with an
// empty label are labeled by index ("dev<i>").
func Custom(name string, specs ...DeviceSpec) Shape {
	s := Shape{Name: name}
	for i, spec := range specs {
		if spec.Label == "" {
			spec.Label = fmt.Sprintf("dev%d", i)
		}
		s.Devices = append(s.Devices, spec)
	}
	return s
}

// Node is an instantiated device pool: one nx.Device per shape entry,
// plus the dispatch state every submission routes through. Safe for
// concurrent use.
type Node struct {
	shape    Shape
	devs     []*nx.Device
	policy   Policy
	inflight []atomic.Int64
	ctxSeq   atomic.Uint64

	// reg holds node-scope instruments (dispatch counters and whatever
	// callers register); per-device instruments live in each device's own
	// registry and are merged at snapshot time.
	reg      *telemetry.Registry
	dispatch []*telemetry.Counter // topology.dispatch{<device label>}
}

// New instantiates a node: every device of the shape is built, each with
// its own switchboard, MMU, engines and registry. A nil policy defaults
// to round-robin; an empty shape defaults to a single P9 device.
func New(shape Shape, policy Policy) *Node {
	if len(shape.Devices) == 0 {
		shape = P9Node(1)
	}
	if policy == nil {
		policy = RoundRobin()
	}
	n := &Node{
		shape:    shape,
		policy:   policy,
		inflight: make([]atomic.Int64, len(shape.Devices)),
		reg:      telemetry.NewRegistry(),
	}
	vec := n.reg.CounterVec("topology.dispatch")
	for _, spec := range shape.Devices {
		n.devs = append(n.devs, nx.NewDevice(spec.Config))
		n.dispatch = append(n.dispatch, vec.With(spec.Label))
	}
	return n
}

// Size returns the device count.
func (n *Node) Size() int { return len(n.devs) }

// Shape returns the node's topology description.
func (n *Node) Shape() Shape { return n.shape }

// Device returns device i (strict bounds: out of range panics, as a
// slice index would).
func (n *Node) Device(i int) *nx.Device { return n.devs[i] }

// Label returns device i's telemetry label.
func (n *Node) Label(i int) string { return n.shape.Devices[i].Label }

// Policy returns the dispatch policy.
func (n *Node) Policy() Policy { return n.policy }

// Registry exposes the node-scope registry: node-level instruments
// (stream-layer counters, dispatch counts) registered here appear
// unprefixed in MetricsSnapshot alongside the merged device registries.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Load reports device i's dispatch load: requests picked but not yet
// released plus the device's receive-FIFO occupancy. The least-loaded
// policy ranks devices by it.
func (n *Node) Load(i int) int64 {
	return n.inflight[i].Load() + int64(n.devs[i].Switchboard().Occupancy())
}

// Dispatched reports how many requests the dispatcher has routed to
// device i over the node's lifetime.
func (n *Node) Dispatched(i int) int64 { return n.dispatch[i].Value() }

// VASStats aggregates every device switchboard's counters (see
// vas.Stats.Add for the aggregation semantics).
func (n *Node) VASStats() vas.Stats {
	var agg vas.Stats
	for _, d := range n.devs {
		agg = agg.Add(d.Switchboard().Stats())
	}
	return agg
}

// StartTrace installs one shared tracer across every device: spans from
// all devices interleave in one sink with one id sequence, exactly like
// the single-device Device.StartTrace.
func (n *Node) StartTrace(sink telemetry.Sink) {
	t := telemetry.NewTracer(sink)
	for _, d := range n.devs {
		d.InstallTracer(t)
	}
}

// StopTrace uninstalls tracing from every device and closes the shared
// sink exactly once.
func (n *Node) StopTrace() error {
	var shared *telemetry.Tracer
	for _, d := range n.devs {
		if t := d.RemoveTracer(); shared == nil {
			shared = t
		}
	}
	return shared.Close()
}

// MetricsSnapshot returns one coherent snapshot of the whole node. A
// one-device node yields exactly the device's own snapshot (identical to
// the pre-topology layout) plus the node-scope instruments. Multi-device
// nodes merge the per-device snapshots: every instrument appears under
// its device-prefixed label and again as an aggregate row under the
// original name+label summed across devices (telemetry.MergeSnapshots),
// so totals like nx.requests read the same whether the node has one
// device or twenty.
func (n *Node) MetricsSnapshot() *telemetry.Snapshot {
	var snap *telemetry.Snapshot
	if len(n.devs) == 1 {
		snap = n.devs[0].MetricsSnapshot()
	} else {
		labeled := make([]telemetry.LabeledSnapshot, len(n.devs))
		for i, d := range n.devs {
			labeled[i] = telemetry.LabeledSnapshot{Label: n.shape.Devices[i].Label, Snap: d.MetricsSnapshot()}
		}
		snap = telemetry.MergeSnapshots(labeled)
	}
	snap.Append(n.reg.Snapshot())
	snap.Sort()
	return snap
}

// Context is a process's view of the node: one nx.Context (address
// space + VAS send window) per device, plus the dispatch hook that
// routes each request. Like nx.Context it is safe for concurrent use;
// callers wanting per-worker windows open one node Context per worker.
type Context struct {
	node   *Node
	id     uint64
	pid    nmmu.PID
	ctxs   []*nx.Context
	closed atomic.Bool
}

// OpenContext registers pid on every device and opens one send window
// per device.
func (n *Node) OpenContext(pid nmmu.PID) *Context {
	c := &Context{
		node: n,
		id:   n.ctxSeq.Add(1),
		pid:  pid,
		ctxs: make([]*nx.Context, len(n.devs)),
	}
	for i, d := range n.devs {
		c.ctxs[i] = d.OpenContext(pid)
	}
	return c
}

// PID returns the context's address-space id.
func (c *Context) PID() nmmu.PID { return c.pid }

// Size returns the device count.
func (c *Context) Size() int { return len(c.ctxs) }

// Primary returns device 0's context — the compatibility view the
// single-accelerator API is built on.
func (c *Context) Primary() *nx.Context { return c.ctxs[0] }

// At returns device i's context.
func (c *Context) At(i int) *nx.Context { return c.ctxs[i] }

// Pick routes one request: the node policy selects a device, and Pick
// returns that device's context plus a release function the caller runs
// when the request has completed. Device selection must happen before
// buffers are mapped — a VA mapped on one device's MMU means nothing to
// another — which is why submission helpers take the picked context.
func (c *Context) Pick() (*nx.Context, func()) {
	i := c.node.policy.Pick(c.node, int(c.pid), c.id)
	if i < 0 || i >= len(c.ctxs) {
		i = 0
	}
	infl := &c.node.inflight[i]
	infl.Add(1)
	c.node.dispatch[i].Inc()
	return c.ctxs[i], func() { infl.Add(-1) }
}

// PickSticky routes a whole stream: the policy assigns a device once (at
// stream construction — segments share history or resume state, so they
// stay put) and only the pick itself is counted against the device's
// in-flight load.
func (c *Context) PickSticky() *nx.Context {
	ctx, done := c.Pick()
	done()
	return ctx
}

// Close releases every device window. Idempotent and safe against
// double close, like nx.Context.Close.
func (c *Context) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, ctx := range c.ctxs {
		ctx.Close()
	}
}
