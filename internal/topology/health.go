package topology

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nxzip/internal/faultinject"
	"nxzip/internal/nx"
	"nxzip/internal/obs"
)

// ErrNoHealthyDevice is returned by PickAvail when every device of the
// node is quarantined and none is due for a probe — the signal the
// failover layer uses to fall back to the software path.
var ErrNoHealthyDevice = errors.New("topology: no healthy device available")

// ErrNoCapableDevice is returned by the codec-aware picks when no
// device of the node — healthy or quarantined — advertises the codec a
// request requires: the pool has the wrong hardware, so failover
// re-dispatch is pointless and the caller degrades to software
// immediately.
var ErrNoCapableDevice = errors.New("topology: no device supports the requested codec")

// HealthPolicy configures the per-device health scoreboard: when a
// device is quarantined and how it earns its way back.
type HealthPolicy struct {
	// FailureThreshold is the number of consecutive device-local failures
	// (hangs, CRC flakes, fault storms, busy/deadline exhaustion) that
	// quarantines a device. ErrDeviceOffline quarantines immediately.
	FailureThreshold int
	// ProbeInterval is the minimum wait between probe admissions of a
	// quarantined device: once it elapses, the next pick routes a single
	// live request to the device as a probe (circuit-breaker half-open).
	ProbeInterval time.Duration
	// ProbeSuccesses is the number of consecutive successful probes
	// required to readmit a quarantined device.
	ProbeSuccesses int
}

// DefaultHealthPolicy returns the shipped scoreboard configuration.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		FailureThreshold: 3,
		ProbeInterval:    5 * time.Millisecond,
		ProbeSuccesses:   1,
	}
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	def := DefaultHealthPolicy()
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = def.FailureThreshold
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = def.ProbeInterval
	}
	if p.ProbeSuccesses <= 0 {
		p.ProbeSuccesses = def.ProbeSuccesses
	}
	return p
}

// devHealth is one device's scoreboard entry — a small circuit breaker:
// healthy (closed) until FailureThreshold consecutive failures, then
// quarantined (open) with probe admissions every ProbeInterval
// (half-open) until ProbeSuccesses consecutive successes readmit it.
type devHealth struct {
	mu          sync.Mutex
	quarantined bool
	consecFails int
	probeOK     int
	lastProbe   time.Time
	// draining is the graceful-drain bit (drain.go): an operator
	// decision orthogonal to the breaker — admit refuses the device, but
	// there are no probes and only Undrain clears it.
	draining bool
}

// countsAgainstHealth reports whether a submission error indicts the
// device (rather than the request): transient device-local failures and
// timeouts feed the scoreboard; data-plane completions and caller
// cancellation do not.
func countsAgainstHealth(err error) bool {
	return nx.Retryable(err) || errors.Is(err, nx.ErrDeadlineExceeded)
}

// admit reports whether device i may receive a request right now:
// healthy devices always, quarantined devices only when a probe is due
// (in which case the request doubles as the probe), draining devices
// never — a drain must quiesce, so not even probes are admitted.
func (n *Node) admit(i int) bool {
	h := &n.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return false
	}
	if !h.quarantined {
		return true
	}
	if time.Since(h.lastProbe) >= n.hp.ProbeInterval {
		h.lastProbe = time.Now()
		n.probes[i].Inc()
		n.bus.Load().Publish(obs.Event{Type: obs.EventProbe, Device: n.shape.Devices[i].Label,
			Detail: "live request admitted to quarantined device as probe"})
		return true
	}
	return false
}

// ReportResult feeds one submission outcome for device i into the
// scoreboard. A nil error is a success; device-local failures count
// toward quarantine and ErrDeviceOffline quarantines immediately.
func (n *Node) ReportResult(i int, err error) { n.ReportResultReq(i, err, 0) }

// ReportResultReq is ReportResult carrying the root RequestID of the
// submission, stamped onto any quarantine/readmission event this
// outcome provokes so the incident links back to the request.
func (n *Node) ReportResultReq(i int, err error, req uint64) {
	if i < 0 || i >= len(n.health) {
		return
	}
	h := &n.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case err == nil:
		h.consecFails = 0
		if h.quarantined {
			h.probeOK++
			if h.probeOK >= n.hp.ProbeSuccesses {
				h.quarantined = false
				h.probeOK = 0
				n.readmissions[i].Inc()
				n.healthyGauge.Add(1)
				if !h.draining {
					n.acceptingGauge.Add(1)
				}
				n.bus.Load().Publish(obs.Event{Type: obs.EventReadmit, Device: n.shape.Devices[i].Label,
					Req:    req,
					Detail: fmt.Sprintf("readmitted after %d successful probes", n.hp.ProbeSuccesses)})
			}
		}
	case countsAgainstHealth(err):
		h.consecFails++
		h.probeOK = 0
		if errors.Is(err, nx.ErrDeviceOffline) && h.consecFails < n.hp.FailureThreshold {
			h.consecFails = n.hp.FailureThreshold
		}
		if !h.quarantined && h.consecFails >= n.hp.FailureThreshold {
			h.quarantined = true
			h.lastProbe = time.Now()
			n.quarantines[i].Inc()
			n.healthyGauge.Add(-1)
			if !h.draining {
				n.acceptingGauge.Add(-1)
			}
			n.bus.Load().Publish(obs.Event{Type: obs.EventQuarantine, Device: n.shape.Devices[i].Label,
				Req:    req,
				Detail: fmt.Sprintf("after %d consecutive failures: %v", h.consecFails, err)})
		} else if h.quarantined {
			// A failed probe restarts the interval.
			h.lastProbe = time.Now()
		}
	}
}

// Quarantined reports whether device i is currently quarantined.
func (n *Node) Quarantined(i int) bool {
	h := &n.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quarantined
}

// HealthyCount returns the number of non-quarantined devices.
func (n *Node) HealthyCount() int {
	count := 0
	for i := range n.health {
		if !n.Quarantined(i) {
			count++
		}
	}
	return count
}

// SetHealthPolicy replaces the scoreboard configuration. Call before
// traffic; fields are read without locking afterwards.
func (n *Node) SetHealthPolicy(hp HealthPolicy) { n.hp = hp.withDefaults() }

// HealthPolicy returns the active scoreboard configuration.
func (n *Node) HealthPolicy() HealthPolicy { return n.hp }

// InstallInjectors builds one fault injector per device — seeds derived
// deterministically from seed so runs replay — installs them across
// every device layer, and returns them so the chaos harness can flip
// profiles or offline individual devices mid-run.
func (n *Node) InstallInjectors(seed int64, p faultinject.Profile) []*faultinject.Injector {
	injs := make([]*faultinject.Injector, len(n.devs))
	for i, d := range n.devs {
		injs[i] = faultinject.New(seed+int64(i)*0x5DEECE66D, p)
		d.SetInjector(injs[i])
	}
	return injs
}
