package topology

import (
	"sync"
	"testing"

	"nxzip/internal/nmmu"
	"nxzip/internal/nx"
	"nxzip/internal/telemetry"
)

func TestShapes(t *testing.T) {
	p9 := P9Node(2)
	if p9.Size() != 2 || p9.Devices[0].Label != "chip0" || p9.Devices[1].Label != "chip1" {
		t.Fatalf("P9Node(2) = %+v", p9)
	}
	z15 := Z15Node(5)
	if z15.Size() != 20 {
		t.Fatalf("Z15Node(5) has %d devices, want 20 (5 drawers x 4 CP chips)", z15.Size())
	}
	if got := z15.Devices[19].Label; got != "drawer4/cp3" {
		t.Fatalf("last z15 label = %q", got)
	}
	if s := Single(nx.P9Device()); s.Size() != 1 || s.Devices[0].Label != "dev0" {
		t.Fatalf("Single = %+v", s)
	}
	c := Custom("mix", DeviceSpec{Config: nx.P9Device()}, DeviceSpec{Label: "z", Config: nx.Z15Device()})
	if c.Devices[0].Label != "dev0" || c.Devices[1].Label != "z" {
		t.Fatalf("Custom labels = %q, %q", c.Devices[0].Label, c.Devices[1].Label)
	}
	// Degenerate shapes clamp instead of panicking.
	if P9Node(0).Size() != 1 || Z15Node(-1).Size() != 4 {
		t.Fatal("clamping broken")
	}
	if New(Shape{}, nil).Size() != 1 {
		t.Fatal("empty shape did not default to one device")
	}
}

// TestRoundRobinBalanceRace drives many goroutines through Pick and
// checks no request is lost and the distribution is exactly balanced.
// Run under -race this is the dispatcher's concurrency regression test.
func TestRoundRobinBalanceRace(t *testing.T) {
	const (
		devices    = 4
		goroutines = 8
		perG       = 50
	)
	n := New(P9Node(devices), RoundRobin())
	nctx := n.OpenContext(1)
	defer nctx.Close()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, done := nctx.Pick()
				if ctx == nil {
					t.Error("Pick returned nil context")
				}
				done(nil)
			}
		}()
	}
	wg.Wait()

	var total int64
	for i := 0; i < devices; i++ {
		total += n.Dispatched(i)
		if got, want := n.Dispatched(i), int64(goroutines*perG/devices); got != want {
			t.Fatalf("device %d dispatched %d, want exactly %d (round-robin)", i, got, want)
		}
		if load := n.Load(i); load != 0 {
			t.Fatalf("device %d load %d after all releases", i, load)
		}
	}
	if total != goroutines*perG {
		t.Fatalf("dispatched %d total, want %d — requests lost or duplicated", total, goroutines*perG)
	}
}

// TestLeastLoadedRace checks the credit-aware policy spreads concurrent
// work across every device and loses nothing.
func TestLeastLoadedRace(t *testing.T) {
	const (
		devices    = 4
		goroutines = 8
		perG       = 50
	)
	n := New(P9Node(devices), LeastLoaded())
	nctx := n.OpenContext(1)
	defer nctx.Close()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, done := nctx.Pick()
				done(nil)
			}
		}()
	}
	wg.Wait()

	var total int64
	for i := 0; i < devices; i++ {
		c := n.Dispatched(i)
		total += c
		if c == 0 {
			t.Fatalf("device %d never picked by least-loaded", i)
		}
	}
	if total != goroutines*perG {
		t.Fatalf("dispatched %d total, want %d", total, goroutines*perG)
	}
}

// TestAffinitySticky checks that one context always lands on one device
// while many contexts scatter.
func TestAffinitySticky(t *testing.T) {
	n := New(P9Node(4), Affinity())
	nctx := n.OpenContext(1)
	defer nctx.Close()
	first := nctx.PickSticky()
	for i := 0; i < 20; i++ {
		if got := nctx.PickSticky(); got != first {
			t.Fatalf("pick %d moved devices under affinity", i)
		}
	}
	// Distinct contexts hash apart: with 64 contexts over 4 devices the
	// chance of all landing on one device is (1/4)^63 — any spread proves
	// the hash is consuming the context id.
	seen := map[*nx.Context]bool{first: true}
	for pid := 2; pid <= 65; pid++ {
		c := n.OpenContext(nmmu.PID(pid))
		seen[c.PickSticky()] = true
		c.Close()
	}
	if len(seen) < 2 {
		t.Fatal("64 contexts all hashed to one device")
	}
}

// TestDispatchThroughDevicesRace submits real compression requests from
// many goroutines through a multi-device node and reconciles the merged
// telemetry against the per-device registries: nothing lost, aggregate =
// sum of parts.
func TestDispatchThroughDevicesRace(t *testing.T) {
	const (
		goroutines = 4
		perG       = 6
	)
	n := New(Z15Node(1), RoundRobin()) // 4 devices
	nctx := n.OpenContext(1)
	defer nctx.Close()

	src := make([]byte, 16<<10)
	for i := range src {
		src[i] = byte(i % 251)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, done := nctx.Pick()
				_, _, err := ctx.Compress(src, nx.FCCompressDHT, nx.WrapGzip, true)
				done(nil)
				if err != nil {
					t.Errorf("compress: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	snap := n.MetricsSnapshot()
	const want = goroutines * perG
	if got := snap.Counter("nx.requests", ""); got != want {
		t.Fatalf("aggregate nx.requests = %d, want %d", got, want)
	}
	var perDevice int64
	for i := 0; i < n.Size(); i++ {
		c := snap.Counter("nx.requests", n.Label(i))
		if c == 0 {
			t.Fatalf("device %s received no requests under round-robin", n.Label(i))
		}
		perDevice += c
	}
	if perDevice != want {
		t.Fatalf("per-device rows sum to %d, want %d", perDevice, want)
	}
	if got := n.VASStats().Completes; got != want {
		t.Fatalf("aggregate VAS completes = %d, want %d", got, want)
	}
	if got := snap.Counter("topology.dispatch", n.Label(0)); got == 0 {
		t.Fatal("node-scope dispatch counter missing from merged snapshot")
	}
}

// TestSingleDeviceSnapshotCompat pins the compatibility contract: a
// one-device node's snapshot keeps the exact pre-topology layout (plain
// labels, no device prefixes).
func TestSingleDeviceSnapshotCompat(t *testing.T) {
	n := New(Single(nx.P9Device()), nil)
	nctx := n.OpenContext(1)
	defer nctx.Close()
	ctx, done := nctx.Pick()
	if _, _, err := ctx.Compress([]byte("hello hello hello"), nx.FCCompressFHT, nx.WrapGzip, true); err != nil {
		t.Fatal(err)
	}
	done(nil)
	snap := n.MetricsSnapshot()
	if got := snap.Counter("nx.requests", ""); got != 1 {
		t.Fatalf("nx.requests = %d under plain label, want 1", got)
	}
	for _, c := range snap.Counters {
		if c.Name == "nx.requests" && c.Label != "" {
			t.Fatalf("one-device node emitted prefixed row %q", c.Label)
		}
	}
}

func TestSharedTraceClosesOnce(t *testing.T) {
	n := New(P9Node(3), nil)
	sink := telemetry.NewCollectSink()
	n.StartTrace(sink)
	for i := 0; i < n.Size(); i++ {
		if n.Device(i).Tracer() == nil {
			t.Fatalf("device %d has no tracer after StartTrace", i)
		}
	}
	if err := n.StopTrace(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.Size(); i++ {
		if n.Device(i).Tracer() != nil {
			t.Fatalf("device %d still traced after StopTrace", i)
		}
	}
	// A second stop must not double-close the sink.
	if err := n.StopTrace(); err != nil {
		t.Fatalf("second StopTrace: %v", err)
	}
}

func TestContextCloseIdempotent(t *testing.T) {
	n := New(P9Node(2), nil)
	nctx := n.OpenContext(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); nctx.Close() }()
	}
	wg.Wait()
	nctx.Close() // and once more, serially
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"": "round-robin", "rr": "round-robin", "round-robin": "round-robin",
		"ll": "least-loaded", "least-loaded": "least-loaded",
		"affinity": "affinity",
	} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("%q -> %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
