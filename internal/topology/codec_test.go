package topology

import (
	"errors"
	"testing"

	"nxzip/internal/nx"
)

// mixedShape is a two-device shape: dev0 deflate-only, dev1 all-codec.
func mixedShape() Shape {
	d0 := nx.P9Device()
	d0.Engine.Codecs = nx.Codecs(nx.CodecDeflate)
	d1 := nx.P9Device()
	d1.Engine.Codecs = nx.Codecs(nx.CodecDeflate, nx.Codec842, nx.CodecLZ4)
	return Custom("mixed", DeviceSpec{Config: d0}, DeviceSpec{Config: d1})
}

func TestCapabilityAccessors(t *testing.T) {
	n := New(mixedShape(), RoundRobin())
	lz4Need := nx.Codecs(nx.CodecLZ4)
	if n.Capable(0, lz4Need) {
		t.Fatal("deflate-only device reported LZ4-capable")
	}
	if !n.Capable(1, lz4Need) || !n.AnyCapable(lz4Need) {
		t.Fatal("all-codec device not reported LZ4-capable")
	}
	if got := n.CapableCount(lz4Need); got != 1 {
		t.Fatalf("CapableCount(lz4) = %d, want 1", got)
	}
	if got := n.CapableCount(nx.Codecs(nx.CodecDeflate)); got != 2 {
		t.Fatalf("CapableCount(deflate) = %d, want 2", got)
	}
}

// TestPickIndexCodecRouting: codec-filtered picks land only on capable
// devices; an impossible need reports ErrNoCapableDevice (permanent —
// go straight to software) rather than ErrNoHealthyDevice (transient).
func TestPickIndexCodecRouting(t *testing.T) {
	n := New(mixedShape(), RoundRobin())
	nctx := n.OpenContext(1)
	defer nctx.Close()

	lz4Need := nx.Codecs(nx.CodecLZ4)
	for i := 0; i < 10; i++ {
		k, err := nctx.PickIndexCodec(lz4Need)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 {
			t.Fatalf("LZ4 pick landed on device %d", k)
		}
		nctx.AcquireIndex(k)
		nctx.ReleaseIndex(k, nil)
	}

	// Deflate picks use both devices.
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		k, err := nctx.PickIndexCodec(nx.Codecs(nx.CodecDeflate))
		if err != nil {
			t.Fatal(err)
		}
		seen[k] = true
		nctx.AcquireIndex(k)
		nctx.ReleaseIndex(k, nil)
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("deflate picks did not spread: %v", seen)
	}

	// No device anywhere serves a deflate+842+lz4 single request on a
	// deflate-only node: permanent capability miss.
	d := nx.P9Device()
	d.Engine.Codecs = nx.Codecs(nx.CodecDeflate)
	n2 := New(Custom("flat", DeviceSpec{Config: d}), RoundRobin())
	nctx2 := n2.OpenContext(1)
	defer nctx2.Close()
	_, err := nctx2.PickIndexCodec(lz4Need)
	if !errors.Is(err, ErrNoCapableDevice) {
		t.Fatalf("deflate-only node pick for lz4 = %v, want ErrNoCapableDevice", err)
	}
}

// TestQuarantinedCapableDevice: when the only capable device is
// quarantined the pick fails with ErrNoHealthyDevice — the caller may
// retry later, unlike the permanent ErrNoCapableDevice.
func TestQuarantinedCapableDevice(t *testing.T) {
	n := New(mixedShape(), RoundRobin())
	nctx := n.OpenContext(1)
	defer nctx.Close()

	// Drive failures into device 1 until the scoreboard quarantines it.
	lz4Need := nx.Codecs(nx.CodecLZ4)
	failure := errors.New("injected device failure")
	for i := 0; i < 100 && !n.Quarantined(1); i++ {
		k, err := nctx.PickIndexCodec(lz4Need)
		if err != nil {
			break
		}
		nctx.AcquireIndex(k)
		nctx.ReleaseIndex(k, failure)
	}
	if !n.Quarantined(1) {
		t.Skip("scoreboard did not quarantine under synthetic failures")
	}
	_, err := nctx.PickIndexCodec(lz4Need)
	if err == nil {
		// A probe admission may let one through; drive it to failure and
		// retry once.
		_, err = nctx.PickIndexCodec(lz4Need)
	}
	if err != nil && !errors.Is(err, ErrNoHealthyDevice) {
		t.Fatalf("quarantined capable device pick = %v, want ErrNoHealthyDevice", err)
	}
}
