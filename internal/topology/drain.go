package topology

import (
	"errors"
	"fmt"
	"time"

	"nxzip/internal/obs"
)

// Graceful drain: a draining device stops receiving new work — admit
// refuses it exactly as it refuses a quarantined device with no probe
// due, so every pick path (pickIndexFor, PickStickyAvoid, the batch
// router) routes around it for free — while in-flight CRBs run to
// completion. Unlike quarantine, drain is an operator decision, not a
// health verdict: there are no probes, no readmission, and the device
// only rejoins on an explicit Undrain. Drain and quarantine are
// independent bits — a device can be both (chaos kills racing a drain),
// and clearing one does not clear the other.

// ErrDrainTimeout is returned when a drain's quiesce wait expires with
// work still in flight; the device stays draining (admission remains
// stopped) so the caller can wait again or undrain.
var ErrDrainTimeout = errors.New("topology: drain timed out with requests still in flight")

// StartDrain stops admission to device i. It reports whether this call
// initiated the drain (false: already draining).
func (n *Node) StartDrain(i int) bool {
	h := &n.health[i]
	h.mu.Lock()
	if h.draining {
		h.mu.Unlock()
		return false
	}
	h.draining = true
	wasAccepting := !h.quarantined
	h.mu.Unlock()
	n.drains[i].Inc()
	if wasAccepting {
		n.acceptingGauge.Add(-1)
	}
	n.bus.Load().Publish(obs.Event{Type: obs.EventDrain, Device: n.shape.Devices[i].Label,
		Detail: "drain started: admission stopped, waiting for in-flight requests"})
	return true
}

// Undrain resumes admission to device i (no-op when not draining).
func (n *Node) Undrain(i int) {
	h := &n.health[i]
	h.mu.Lock()
	if !h.draining {
		h.mu.Unlock()
		return
	}
	h.draining = false
	accepting := !h.quarantined
	h.mu.Unlock()
	if accepting {
		n.acceptingGauge.Add(1)
	}
	n.bus.Load().Publish(obs.Event{Type: obs.EventDrain, Device: n.shape.Devices[i].Label,
		Detail: "undrained: admission resumed"})
}

// Draining reports whether device i is draining.
func (n *Node) Draining(i int) bool {
	h := &n.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Accepting reports whether device i is currently eligible for new
// work: not draining and not quarantined (probe admissions aside).
func (n *Node) Accepting(i int) bool {
	h := &n.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.draining && !h.quarantined
}

// AcceptingCount returns the number of devices eligible for new work —
// the capacity denominator of the admission gate's pressure signal.
func (n *Node) AcceptingCount() int {
	count := 0
	for i := range n.health {
		if n.Accepting(i) {
			count++
		}
	}
	return count
}

// quiescePoll is how often Quiesce re-checks a draining device's load.
const quiescePoll = 200 * time.Microsecond

// Quiesce blocks until device i has no in-flight dispatches and an
// empty receive FIFO, or the timeout expires (ErrDrainTimeout; the
// drain stays active). Call after StartDrain — with admission stopped,
// Load is monotone non-increasing apart from probe traffic, which
// StartDrain does not admit.
func (n *Node) Quiesce(i int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for n.Load(i) > 0 {
		if time.Now().After(deadline) {
			n.bus.Load().Publish(obs.Event{Type: obs.EventDrain, Device: n.shape.Devices[i].Label,
				Detail: fmt.Sprintf("drain timed out after %v with load %d still in flight", timeout, n.Load(i))})
			return ErrDrainTimeout
		}
		time.Sleep(quiescePoll)
	}
	n.bus.Load().Publish(obs.Event{Type: obs.EventDrain, Device: n.shape.Devices[i].Label,
		Detail: "drain complete: device quiesced with zero in-flight requests"})
	return nil
}
