package lz4

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts compress→decompress identity on arbitrary input.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("1234567890123"))
	f.Add(bytes.Repeat([]byte("ABCD"), 100))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			src = src[:1<<16]
		}
		comp := Compress(src)
		if len(comp) > CompressBound(len(src)) {
			t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
		}
		got, err := Decompress(comp, 0)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
		}
	})
}

// FuzzBlockDecode feeds arbitrary bytes to the block decoder: it must
// never panic and never produce output beyond the stated budget.
func FuzzBlockDecode(f *testing.F) {
	f.Add(Compress([]byte("seed corpus for the lz4 decoder")))
	f.Add(Compress(bytes.Repeat([]byte{7}, 1000)))
	f.Add([]byte{0x10, 'a', 0x01, 0x00})
	f.Add([]byte{0xF0, 0xff, 0xff, 0x00})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, blk []byte) {
		const budget = 1 << 18
		out, err := Decompress(blk, budget)
		if err == nil && len(out) > budget {
			t.Fatalf("%d bytes escaped the %d budget", len(out), budget)
		}
	})
}
