// Package lz4 implements the LZ4 block format in pure Go: a
// byte-aligned LZ77 variant with 4-bit token fields, 255-continuation
// length extension and 16-bit match offsets. It is the repo's second
// software block engine next to internal/x842 and deliberately mirrors
// that package's API — Compress returns a self-contained block,
// Decompress bounds its output and wraps every failure in ErrCorrupt —
// so the nx engine drives both through one per-codec dispatch table.
//
// The format follows the LZ4 block specification: each sequence is a
// token byte (high nibble literal length, low nibble match length - 4),
// optional length-extension bytes, the literals, a 2-byte little-endian
// offset, and optional match-length extension. A block ends on a
// literals-only sequence; encoders keep the last five bytes literal and
// never start a match within twelve bytes of the end.
package lz4

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports an undecodable block. All Decompress errors wrap it.
var ErrCorrupt = errors.New("lz4: corrupt block")

// DefaultMaxOutput bounds decompression when the caller does not: a
// decompression bomb stops here instead of exhausting memory.
const DefaultMaxOutput = 256 << 20

const (
	minMatch = 4
	// mfLimit: a match may not start within the last 12 bytes of input;
	// the final lastLiterals bytes are always emitted as literals.
	mfLimit      = 12
	lastLiterals = 5
	hashLog      = 16
	hashShift    = 32 - hashLog
	maxOffset    = 65535
	// maxSeqLen bounds a single decoded length field so a hostile
	// 255-run cannot overflow the accumulator.
	maxSeqLen = 1 << 30
)

// CompressBound returns the worst-case compressed size for n input
// bytes (incompressible data pays one token per 255-byte literal run).
func CompressBound(n int) int { return n + n/255 + 16 }

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func hash4(u uint32) uint32 { return (u * 2654435761) >> hashShift }

// Compress encodes src as one LZ4 block using a single-probe hash-table
// match finder (the greedy fast path of the reference encoder). The
// result is always decodable by Decompress; empty input produces the
// one-byte empty block.
func Compress(src []byte) []byte {
	dst := make([]byte, 0, CompressBound(len(src)))
	n := len(src)
	if n == 0 {
		// A single zero token: no literals, no match — the empty block.
		return append(dst, 0)
	}
	if n < mfLimit+1 {
		return appendLiterals(dst, src)
	}

	// Positions are stored +1 so the zero value means "empty slot".
	var table [1 << hashLog]int32
	anchor := 0
	si := 0
	limit := n - mfLimit
	for si < limit {
		h := hash4(load32(src, si))
		cand := int(table[h]) - 1
		table[h] = int32(si + 1)
		if cand < 0 || si-cand > maxOffset || load32(src, cand) != load32(src, si) {
			si++
			continue
		}
		// Extend the verified 4-byte seed forward, stopping short of the
		// mandatory literal tail.
		maxEnd := n - lastLiterals
		mlen := minMatch
		for si+mlen < maxEnd && src[cand+mlen] == src[si+mlen] {
			mlen++
		}
		dst = appendSequence(dst, src[anchor:si], si-cand, mlen)
		si += mlen
		anchor = si
		if si < limit {
			// Re-prime the table just behind the cursor so back-to-back
			// matches chain without a literal gap.
			table[hash4(load32(src, si-2))] = int32(si - 1)
		}
	}
	return appendLiterals(dst, src[anchor:])
}

// appendLen emits a 255-continuation extension for v (the amount above
// the token nibble's 15).
func appendLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// appendLiterals emits a literals-only sequence — the block terminator.
func appendLiterals(dst, lits []byte) []byte {
	ll := len(lits)
	if ll >= 15 {
		dst = append(dst, 0xF0)
		dst = appendLen(dst, ll-15)
	} else {
		dst = append(dst, byte(ll)<<4)
	}
	return append(dst, lits...)
}

// appendSequence emits one token + literals + offset + match sequence.
func appendSequence(dst, lits []byte, offset, mlen int) []byte {
	ll := len(lits)
	ml := mlen - minMatch
	var token byte
	if ll >= 15 {
		token = 0xF0
	} else {
		token = byte(ll) << 4
	}
	if ml >= 15 {
		token |= 0x0F
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if ll >= 15 {
		dst = appendLen(dst, ll-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLen(dst, ml-15)
	}
	return dst
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// readLen accumulates a 255-continuation length extension starting at
// *si, returning base plus the extension.
func readLen(src []byte, si *int, base int) (int, error) {
	v := base
	for {
		if *si >= len(src) {
			return 0, corrupt("truncated length at %d", *si)
		}
		b := src[*si]
		*si++
		v += int(b)
		if v > maxSeqLen {
			return 0, corrupt("length overflow")
		}
		if b != 255 {
			return v, nil
		}
	}
}

// Decompress decodes one LZ4 block. Output is bounded by maxOutput
// (DefaultMaxOutput when <= 0); exceeding the bound, running off either
// buffer, or referencing data before the output start all fail with an
// error wrapping ErrCorrupt. The decoder is deliberately more permissive
// than the encoder-side end-condition rules: any sequence stream that
// stays in bounds decodes.
func Decompress(src []byte, maxOutput int) ([]byte, error) {
	if maxOutput <= 0 {
		maxOutput = DefaultMaxOutput
	}
	if len(src) == 0 {
		return nil, corrupt("empty block")
	}
	est := 3 * len(src)
	if est > maxOutput {
		est = maxOutput
	}
	if est > 1<<22 {
		est = 1 << 22
	}
	out := make([]byte, 0, est)
	si := 0
	for {
		if si >= len(src) {
			return nil, corrupt("truncated block at %d", si)
		}
		token := src[si]
		si++
		ll := int(token >> 4)
		if ll == 15 {
			var err error
			ll, err = readLen(src, &si, ll)
			if err != nil {
				return nil, err
			}
		}
		if ll > len(src)-si {
			return nil, corrupt("literal run of %d overruns input", ll)
		}
		if len(out)+ll > maxOutput {
			return nil, corrupt("output exceeds %d-byte budget", maxOutput)
		}
		out = append(out, src[si:si+ll]...)
		si += ll
		if si == len(src) {
			// A block ends on a literals-only sequence.
			return out, nil
		}
		if len(src)-si < 2 {
			return nil, corrupt("truncated offset at %d", si)
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > len(out) {
			return nil, corrupt("offset %d outside %d decoded bytes", offset, len(out))
		}
		ml := int(token & 0x0F)
		if ml == 15 {
			var err error
			ml, err = readLen(src, &si, ml)
			if err != nil {
				return nil, err
			}
		}
		ml += minMatch
		if len(out)+ml > maxOutput {
			return nil, corrupt("output exceeds %d-byte budget", maxOutput)
		}
		// Byte-at-a-time copy: offsets smaller than the match length
		// replicate the overlap region, which is the format's RLE idiom.
		start := len(out) - offset
		for i := 0; i < ml; i++ {
			out = append(out, out[start+i])
		}
	}
}
