package lz4

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp, 0)
	if err != nil {
		t.Fatalf("Decompress(%d-byte block): %v", len(comp), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	comp := roundTrip(t, nil)
	if len(comp) != 1 || comp[0] != 0 {
		t.Fatalf("empty block = %x, want 00", comp)
	}
}

func TestRoundTripSmall(t *testing.T) {
	for _, s := range []string{"a", "ab", "hello", "123456789012", "1234567890123"} {
		roundTrip(t, []byte(s))
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 512))
	comp := roundTrip(t, src)
	if len(comp) >= len(src)/4 {
		t.Fatalf("repetitive text compressed to %d of %d bytes — match finder broken", len(comp), len(src))
	}
}

func TestRoundTripRLE(t *testing.T) {
	// Overlap copies: a run of one byte decodes via offset 1.
	src := bytes.Repeat([]byte{0x42}, 1<<16)
	comp := roundTrip(t, src)
	if len(comp) > 300 {
		t.Fatalf("64 KiB run compressed to %d bytes — overlap matches not used", len(comp))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20200530))
	for _, n := range []int{1, 13, 100, 4096, 1 << 17} {
		src := make([]byte, n)
		rng.Read(src)
		comp := roundTrip(t, src)
		if len(comp) > CompressBound(n) {
			t.Fatalf("n=%d: compressed %d exceeds bound %d", n, len(comp), CompressBound(n))
		}
	}
}

func TestRoundTripStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b bytes.Buffer
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for b.Len() < 1<<18 {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteByte(' ')
	}
	roundTrip(t, b.Bytes())
}

func TestLongLengthFields(t *testing.T) {
	// Literal and match lengths that need several 255-extension bytes.
	src := append(bytes.Repeat([]byte{7}, 5000), make([]byte, 5000)...)
	rng := rand.New(rand.NewSource(2))
	tail := make([]byte, 1000)
	rng.Read(tail)
	roundTrip(t, append(src, tail...))
}

func TestMaxOutputBudget(t *testing.T) {
	src := bytes.Repeat([]byte{9}, 1<<16)
	comp := Compress(src)
	if _, err := Decompress(comp, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("budget overflow error = %v, want ErrCorrupt", err)
	}
	if out, err := Decompress(comp, 1<<16); err != nil || len(out) != 1<<16 {
		t.Fatalf("exact budget: %d bytes, err %v", len(out), err)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"truncated literal": {0x50, 'a', 'b'},
		"missing offset":    {0x11, 'a', 0x01},
		"zero offset":       {0x10, 'a', 0x00, 0x00},
		"huge offset":       {0x10, 'a', 0xff, 0xff},
		"dangling length":   {0xF0, 0xff, 0xff},
	}
	for name, blk := range cases {
		if _, err := Decompress(blk, 0); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecompressBitFlips(t *testing.T) {
	src := []byte(strings.Repeat("abcdefgh", 200))
	comp := Compress(src)
	for i := range comp {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0x80
		out, err := Decompress(mut, 1<<20)
		// Any outcome is fine except a panic or an unbounded buffer.
		if err == nil && len(out) > 1<<20 {
			t.Fatalf("flip at %d: %d bytes escaped the budget", i, len(out))
		}
	}
}
