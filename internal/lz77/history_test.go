package lz77

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestHWHistoryFindsCrossBoundaryMatches(t *testing.T) {
	// src repeats content that only exists in history: without history the
	// tokens are all literals, with it they are matches.
	history := bytes.Repeat([]byte("0123456789abcdef"), 64)
	src := history[:512]
	m := NewHWMatcher(P9HWParams())
	plain, _ := m.Tokenize(nil, append([]byte{}, src...))
	withHist, _ := m.TokenizeWithHistory(nil, history, src)
	if err := ValidateWithHistory(withHist, history, src); err != nil {
		t.Fatal(err)
	}
	sPlain, sHist := Summarize(plain), Summarize(withHist)
	if sHist.MatchBytes <= sPlain.MatchBytes {
		t.Fatalf("history gave %d match bytes, plain %d", sHist.MatchBytes, sPlain.MatchBytes)
	}
}

func TestHWHistoryDistancesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	history := make([]byte, 10000)
	rng.Read(history)
	src := append(append([]byte{}, history[2000:4000]...), history[100:300]...)
	m := NewHWMatcher(P9HWParams())
	tokens, st := m.TokenizeWithHistory(nil, history, src)
	if err := ValidateWithHistory(tokens, history, src); err != nil {
		t.Fatal(err)
	}
	if st.Beats <= int64(len(src)/8) {
		t.Fatalf("beats %d do not include history replay", st.Beats)
	}
	for _, tok := range tokens {
		if tok.IsMatch() && tok.Dist() > WindowSize {
			t.Fatalf("distance %d out of window", tok.Dist())
		}
	}
}

func TestHWHistoryEmptyEqualsPlain(t *testing.T) {
	src := []byte("no history here, no history here")
	m := NewHWMatcher(P9HWParams())
	a, _ := m.Tokenize(nil, src)
	b, _ := m.TokenizeWithHistory(nil, nil, src)
	if len(a) != len(b) {
		t.Fatalf("token streams differ: %d vs %d", len(a), len(b))
	}
}

func TestHWHistoryLongerThanWindowTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	history := make([]byte, 3*WindowSize)
	rng.Read(history)
	src := history[:1000] // only reachable if untruncated (3 windows back)
	m := NewHWMatcher(P9HWParams())
	tokens, _ := m.TokenizeWithHistory(nil, history, src)
	// Must still be valid relative to the TRUNCATED history semantics:
	// ValidateWithHistory uses the full history slice, and truncated
	// distances always land inside the last WindowSize bytes, so
	// validation passes either way.
	if err := ValidateWithHistory(tokens, history, src); err != nil {
		t.Fatal(err)
	}
	for _, tok := range tokens {
		if tok.IsMatch() && tok.Dist() > WindowSize {
			t.Fatalf("distance %d beyond window", tok.Dist())
		}
	}
}

func TestSoftHistory(t *testing.T) {
	history := bytes.Repeat([]byte("lorem ipsum dolor sit amet "), 100)
	src := append([]byte("fresh start "), history[:400]...)
	m := NewSoftMatcher(LevelParams(6))
	tokens := m.TokenizeWithHistory(nil, history, src)
	if err := ValidateWithHistory(tokens, history, src); err != nil {
		t.Fatal(err)
	}
	s := Summarize(tokens)
	if s.MatchBytes < 300 {
		t.Fatalf("only %d match bytes against history", s.MatchBytes)
	}
}

func TestSoftHistoryStraddleSplit(t *testing.T) {
	// Construct data where a match naturally straddles the boundary.
	history := bytes.Repeat([]byte("ABCDEFGH"), 10)
	src := bytes.Repeat([]byte("ABCDEFGH"), 10)
	m := NewSoftMatcher(LevelParams(6))
	tokens := m.TokenizeWithHistory(nil, history, src)
	if err := ValidateWithHistory(tokens, history, src); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hw := NewHWMatcher(Z15HWParams())
	sw := NewSoftMatcher(LevelParams(4))
	words := []string{"alpha", "beta", "gamma", " ", "\n", "12345"}
	for trial := 0; trial < 50; trial++ {
		var hb, sb bytes.Buffer
		for hb.Len() < rng.Intn(4000) {
			hb.WriteString(words[rng.Intn(len(words))])
		}
		for sb.Len() < rng.Intn(4000)+1 {
			sb.WriteString(words[rng.Intn(len(words))])
		}
		history, src := hb.Bytes(), sb.Bytes()
		ht, _ := hw.TokenizeWithHistory(nil, history, src)
		if err := ValidateWithHistory(ht, history, src); err != nil {
			t.Fatalf("hw trial %d: %v", trial, err)
		}
		stoks := sw.TokenizeWithHistory(nil, history, src)
		if err := ValidateWithHistory(stoks, history, src); err != nil {
			t.Fatalf("sw trial %d: %v", trial, err)
		}
	}
}
