// Package lz77 implements the string-matching stage of DEFLATE twice:
//
//   - a software matcher modelled on zlib's deflate (hash chains, lazy
//     matching, level presets), which is the paper's software baseline, and
//   - a hardware matcher modelled on the POWER9/z15 accelerator's LZ stage
//     (banked hash tables probed once per position, bounded candidate sets,
//     wide per-cycle input), which also produces cycle-level statistics.
//
// Both emit the same token stream, which the deflate package turns into
// DEFLATE blocks.
package lz77

import "fmt"

const (
	// MinMatch and MaxMatch are DEFLATE's match length bounds.
	MinMatch = 3
	MaxMatch = 258
	// WindowSize is DEFLATE's maximum backward distance.
	WindowSize = 32 << 10
)

// Token is one LZ77 output symbol: either a literal byte or a
// (length, distance) back-reference. Packed into 32 bits:
//
//	bit 31        1 = match, 0 = literal
//	match:        bits 23..15 = length-3 (0..255), bits 14..0 = dist-1
//	literal:      bits 7..0 = byte value
type Token uint32

const matchFlag Token = 1 << 31

// Lit constructs a literal token.
func Lit(b byte) Token { return Token(b) }

// Match constructs a match token. Length must be in [MinMatch, MaxMatch]
// and dist in [1, WindowSize].
func Match(length, dist int) Token {
	if length < MinMatch || length > MaxMatch {
		panic(fmt.Sprintf("lz77: match length %d out of range", length))
	}
	if dist < 1 || dist > WindowSize {
		panic(fmt.Sprintf("lz77: match distance %d out of range", dist))
	}
	return matchFlag | Token(length-MinMatch)<<15 | Token(dist-1)
}

// IsMatch reports whether t is a back-reference.
func (t Token) IsMatch() bool { return t&matchFlag != 0 }

// Literal returns the literal byte; only valid when !IsMatch.
func (t Token) Literal() byte { return byte(t) }

// Length returns the match length; only valid when IsMatch.
func (t Token) Length() int { return int(t>>15&0xFF) + MinMatch }

// Dist returns the match distance; only valid when IsMatch.
func (t Token) Dist() int { return int(t&0x7FFF) + 1 }

func (t Token) String() string {
	if t.IsMatch() {
		return fmt.Sprintf("<%d,%d>", t.Length(), t.Dist())
	}
	return fmt.Sprintf("'%c'", t.Literal())
}

// Expand reconstructs the original bytes from a token stream, appending to
// dst. It is the reference semantics for both matchers and is used by tests
// and by the decompression path's verification mode.
func Expand(dst []byte, tokens []Token) ([]byte, error) {
	for i, t := range tokens {
		if !t.IsMatch() {
			dst = append(dst, t.Literal())
			continue
		}
		d, l := t.Dist(), t.Length()
		if d > len(dst) {
			return nil, fmt.Errorf("lz77: token %d references %d bytes back with only %d produced", i, d, len(dst))
		}
		// Byte-at-a-time copy: overlapping copies (d < l) must replicate.
		start := len(dst) - d
		for j := 0; j < l; j++ {
			dst = append(dst, dst[start+j])
		}
	}
	return dst, nil
}

// Validate checks that tokens exactly reproduce src.
func Validate(tokens []Token, src []byte) error {
	out, err := Expand(make([]byte, 0, len(src)), tokens)
	if err != nil {
		return err
	}
	if len(out) != len(src) {
		return fmt.Errorf("lz77: expanded %d bytes, want %d", len(out), len(src))
	}
	for i := range out {
		if out[i] != src[i] {
			return fmt.Errorf("lz77: mismatch at byte %d", i)
		}
	}
	return nil
}

// Summary describes a token stream for ratio analysis.
type Summary struct {
	Literals    int
	Matches     int
	MatchBytes  int // bytes covered by matches
	TotalTokens int
}

// Summarize computes stream statistics.
func Summarize(tokens []Token) Summary {
	var s Summary
	for _, t := range tokens {
		s.TotalTokens++
		if t.IsMatch() {
			s.Matches++
			s.MatchBytes += t.Length()
		} else {
			s.Literals++
		}
	}
	return s
}
