package lz77

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestOptimalCorrectness(t *testing.T) {
	m := NewOptimalMatcher()
	for name, src := range testInputs(t) {
		// The reference matcher is an analysis tool, not a production
		// path; keep per-input work bounded so the suite stays fast.
		if len(src) > 20000 {
			src = src[:20000]
		}
		tokens := m.Tokenize(nil, src)
		if err := Validate(tokens, src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestOptimalBeatsGreedyAndLazy(t *testing.T) {
	// Cost-model comparison: the optimal parse must cost no more than
	// either production matcher under the same fixed model.
	costOf := func(tokens []Token) int64 {
		var c int64
		for _, tok := range tokens {
			if tok.IsMatch() {
				c += int64(tokenCost(tok.Length(), tok.Dist()))
			} else {
				c += litCostBits
			}
		}
		return c
	}
	rng := rand.New(rand.NewSource(3))
	words := []string{"alpha", "beta", "gamma", "delta", " ", "the ", "compression "}
	for trial := 0; trial < 6; trial++ {
		var sb bytes.Buffer
		for sb.Len() < 10000 {
			sb.WriteString(words[rng.Intn(len(words))])
		}
		src := sb.Bytes()
		opt := costOf(NewOptimalMatcher().Tokenize(nil, src))
		hw, _ := NewHWMatcher(P9HWParams()).Tokenize(nil, src)
		sw := NewSoftMatcher(LevelParams(9)).Tokenize(nil, src)
		if hwCost := costOf(hw); opt > hwCost {
			t.Fatalf("trial %d: optimal %d > hw %d", trial, opt, hwCost)
		}
		if swCost := costOf(sw); opt > swCost {
			t.Fatalf("trial %d: optimal %d > sw-9 %d", trial, opt, swCost)
		}
	}
}

func TestOptimalDegenerateInputsFast(t *testing.T) {
	m := NewOptimalMatcher()
	// Long zero run: the depth cap must keep this fast and correct.
	src := make([]byte, 100000)
	tokens := m.Tokenize(nil, src)
	if err := Validate(tokens, src); err != nil {
		t.Fatal(err)
	}
	s := Summarize(tokens)
	if s.Matches == 0 || s.MatchBytes < len(src)*9/10 {
		t.Fatalf("zeros barely matched: %+v", s)
	}
}

func BenchmarkOptimalParse(b *testing.B) {
	src := testInputs(b)["text"]
	m := NewOptimalMatcher()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		m.Tokenize(nil, src)
	}
}
